package aigre

import (
	"context"
	"fmt"
	"time"

	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/sched"
)

// Script presets for Batch.Script and the -batch manifest, mirroring the
// single-network entry points Resyn2, RfResyn, and CompressRS.
const (
	// ScriptResyn2 is ABC's resyn2 sequence.
	ScriptResyn2 = flow.Resyn2
	// ScriptRfResyn is the paper's rf_resyn sequence.
	ScriptRfResyn = flow.RfResyn
	// ScriptCompressRS is the compress2rs-style resubstitution sequence.
	ScriptCompressRS = flow.CompressRS
)

// Batch is one job in a RunBatch call: a network and the script to run on
// it. The input network is not mutated.
type Batch struct {
	// Name labels the job in the report (default: the network name).
	Name string
	// AIG is the input network.
	AIG *Network
	// Script is the command script, e.g. ScriptResyn2 or "b; rw; rfz".
	Script string
	// Priority orders admission when more jobs are queued than may run at
	// once: higher starts first, ties in submission order.
	Priority int
	// Workers caps how many pool workers a single kernel launch of this job
	// may occupy (0 = the whole pool). The shared budget bounds total
	// concurrency regardless.
	Workers int
	// Options selects engine parameters for this job. Options.Workers is
	// ignored (the pool is shared; use Batch.Workers for the lease cap).
	// Options.FaultPlans is a chaos/test facility: the plans are injected
	// into each attempt's leased device, with fire-progress carried across
	// supervised retries (ignored for partitioned jobs, which manage their
	// own leases). Options.Partition is honored: the job then optimizes
	// partition-parallel, fanning its partitions onto the batch's shared
	// pool, and BatchResult.Partition carries the report.
	Options Options
}

// Policy governs supervision of every job in a batch: per-job deadlines,
// classified retry with exponential backoff, watchdog preemption of stuck
// jobs, and quarantine of jobs that exhaust their retry budget. The zero
// Policy supervises nothing: one attempt per job, no deadline, no watchdog.
type Policy struct {
	// JobTimeout is the per-attempt deadline of one job (0 = none). It is
	// distinct from cancelling RunBatch's ctx: a timed-out attempt may be
	// retried, and other jobs keep running.
	JobTimeout time.Duration
	// Retries is each job's retry budget: how many extra attempts its
	// transient failures (aborted kernel launches, full hash tables,
	// seam-gate rollbacks, deadline kills, watchdog preemptions) may
	// consume. A job that exhausts the budget is quarantined. For a
	// partitioned job the budget is shared with its per-partition jobs.
	Retries int
	// RetryDegraded also retries attempts that completed but recorded
	// transient-class incidents, discarding the degraded result in the
	// hope of a clean pass; the last degraded result stands when the
	// budget runs dry.
	RetryDegraded bool
	// Backoff is the delay before a job's first retry, doubling each
	// further retry with ±50% jitter (default 5ms); MaxBackoff caps the
	// doubling (default 500ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// StuckTimeout arms the watchdog: a job whose kernel-launch heartbeat
	// advances nothing for this long is preempted and, with no budget
	// left, quarantined (0 = no watchdog).
	StuckTimeout time.Duration
	// Seed makes retry jitter deterministic; 0 is a valid seed.
	Seed int64
}

// JobEvent is one live supervision event, delivered via
// BatchOptions.OnEvent: an attempt starting, a contained incident, a retry
// with its backoff, a watchdog preemption, a deadline timeout, a
// quarantine, or the final outcome.
type JobEvent struct {
	// Job is the Batch.Name of the job the event belongs to.
	Job string
	// Attempt is the 1-based attempt ordinal, when the event is tied to one.
	Attempt int
	// Event is the supervision event name: "attempt", "incident", "retry",
	// "preempt", "timeout", "quarantine", "done", "fail", or "cancel".
	Event string
	// Class is the failure classification for incident/retry events.
	Class string
	// Detail is the human-readable note (error text, preemption cause).
	Detail string
	// Backoff is the delay before the retry, for retry events.
	Backoff time.Duration
	Time    time.Time
}

func (p Policy) internal() sched.Policy {
	return sched.Policy{
		JobTimeout:    p.JobTimeout,
		Retries:       p.Retries,
		RetryDegraded: p.RetryDegraded,
		Backoff:       p.Backoff,
		MaxBackoff:    p.MaxBackoff,
		StuckTimeout:  p.StuckTimeout,
		Seed:          p.Seed,
	}
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers is the shared pool budget: the total number of host worker
	// goroutines serving every job's kernel launches (0 = GOMAXPROCS). At no
	// point do the jobs together occupy more than this many workers.
	Workers int
	// MaxConcurrentJobs bounds how many jobs are in flight at once
	// (0 = Workers). The pool already bounds host parallelism; this knob
	// bounds memory held by in-flight networks.
	MaxConcurrentJobs int
	// SharedCache, when set, is the resynthesis cache every job of this batch
	// uses, overriding each job's Options.Cache — an opt-in way to let jobs
	// over similar designs reuse each other's factoring work. The cache is
	// concurrency-safe and results remain bit-identical with or without it.
	// BatchMetrics.CacheStats reports the batch-wide traffic delta.
	SharedCache *Cache
	// Policy supervises every job of the batch (zero = unsupervised).
	Policy Policy
	// JournalPath, when non-empty, appends every supervision event —
	// attempts, contained incidents, retries, preemptions, timeouts,
	// quarantines, final outcomes — to a JSONL journal file that survives
	// the process and can be replayed with internal/journal.Replay (or any
	// JSONL reader). The file is created if missing, appended otherwise.
	JournalPath string
	// OnEvent, when set, receives every supervision event of the batch or
	// engine — the same stream JournalPath persists — as it happens, with
	// or without a journal file. Calls are serialized in journal order and
	// run on the supervised job's own path: keep the callback fast and
	// non-blocking (hand the event to a channel or bus), or it will stall
	// the fleet. The aigred daemon's live progress streams hang off this.
	OnEvent func(JobEvent)
}

// BatchResult reports one job of a batch.
type BatchResult struct {
	Name   string
	Script string
	// AIG is the optimized network; on a cancelled job the partial result
	// (after the last completed command), nil only if the script failed to
	// parse.
	AIG *Network
	// Err is nil on success, wraps ctx.Err() on cancellation, or reports a
	// script error. Contained engine failures appear in Incidents, not Err.
	Err error
	// Cancelled reports that Err traces back to external cancellation (the
	// batch ctx); deadline kills report TimedOut instead.
	Cancelled bool
	// TimedOut reports that Err traces back to an expired deadline — the
	// job's Policy.JobTimeout or the batch ctx's own deadline.
	TimedOut bool
	// Quarantined reports the job was withdrawn as poison: a retryable
	// failure class exhausted its retry budget, or the watchdog caught it
	// stuck with no budget left.
	Quarantined bool
	// Attempts is how many supervised attempts ran (1 when unsupervised);
	// Preemptions how many of them the watchdog preempted as stuck.
	Attempts    int
	Preemptions int

	Queued  time.Duration // submission -> start
	Wall    time.Duration // start -> finish, host time
	Modeled time.Duration // modeled device time (parallel jobs)

	NodesBefore, LevelsBefore int
	NodesAfter, LevelsAfter   int

	Timings   []flow.CommandTiming
	Incidents []flow.Incident
	// Profile is the per-kernel device profile of a parallel job (nil for
	// sequential and partitioned jobs); see gpu.FormatProfile for a printable
	// table.
	Profile []gpu.KernelProfile
	// CacheStats is the resynthesis-cache traffic observed while the job ran.
	// The counters are cache-global: under a shared cache the delta includes
	// concurrently running jobs' traffic.
	CacheStats CacheStats
	// Partition is the partition-parallel report of a job whose
	// Options.Partition was enabled (nil otherwise).
	Partition *PartitionReport
}

// BatchMetrics aggregates fleet statistics of one RunBatch call.
type BatchMetrics struct {
	// Workers is the shared pool budget W.
	Workers int
	// Finished, Failed, Cancelled, TimedOut, and Quarantined partition the
	// jobs by final outcome; Retries counts extra attempts fleet-wide.
	Finished, Failed, Cancelled    int
	TimedOut, Quarantined, Retries int
	// PeakWorkers is the observed host-concurrency high-water mark; the
	// shared-budget invariant keeps it at or below Workers.
	PeakWorkers int
	// PeakQueueDepth is the deepest the admission queue got.
	PeakQueueDepth int
	// Wall spans first submission to last completion; JobWall sums per-job
	// host time (their ratio is the job-level concurrency); Modeled sums the
	// jobs' modeled device time.
	Wall, JobWall, Modeled time.Duration
	// Utilization is the fraction of the worker budget kept busy executing
	// kernel bodies: busy-time / (Wall * Workers).
	Utilization float64
	// CacheStats is the batch-wide resynthesis-cache traffic delta when
	// BatchOptions.SharedCache was set (zero otherwise).
	CacheStats CacheStats
}

// RunBatch optimizes many networks concurrently over one shared, bounded
// worker budget: opts.Workers host goroutines serve the kernel launches of
// every job, so N jobs never use more host parallelism than one job with
// that many workers would.
//
// Results come back in job order. A failing or cancelled job never fails
// the batch — its BatchResult carries the error. Cancelling ctx cancels the
// whole batch: running jobs stop at the next kernel-launch boundary and
// queued jobs return immediately, all marked Cancelled.
//
// The call errors only on a malformed batch: no jobs, a nil network, or a
// script that does not parse.
func RunBatch(ctx context.Context, jobs []Batch, opts BatchOptions) ([]BatchResult, BatchMetrics, error) {
	if len(jobs) == 0 {
		return nil, BatchMetrics{}, fmt.Errorf("aigre: empty batch")
	}
	// Validate the whole batch before admitting anything, so a malformed job
	// fails the call without running its siblings.
	for i, b := range jobs {
		if b.AIG == nil {
			return nil, BatchMetrics{}, fmt.Errorf("aigre: batch job %d (%s) has no network", i, b.Name)
		}
		if err := b.check(); err != nil {
			return nil, BatchMetrics{}, fmt.Errorf("aigre: batch job %d (%s): %w", i, b.Name, err)
		}
	}
	e, err := NewEngine(ctx, opts)
	if err != nil {
		return nil, BatchMetrics{}, err
	}
	defer e.Close()
	tickets := make([]*JobTicket, len(jobs))
	for i, b := range jobs {
		t, err := e.Submit(ctx, b)
		if err != nil {
			return nil, BatchMetrics{}, fmt.Errorf("aigre: batch job %d (%s): %w", i, b.Name, err)
		}
		tickets[i] = t
	}
	out := make([]BatchResult, len(jobs))
	for i, t := range tickets {
		out[i] = t.Wait()
	}
	return out, e.Metrics(), nil
}
