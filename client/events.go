package client

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Event is one entry of a job's progress stream: a durable queue transition
// ("pending", "leased", "done", ...) or a live supervision event
// ("attempt", "incident", "retry", "preempt", "timeout", "quarantine").
type Event struct {
	// ID is the SSE event id; pass the last seen one when resuming.
	ID string `json:"id"`
	// Seq is the job-local 1-based event index.
	Seq int `json:"seq"`
	// Job is the queue job id.
	Job string `json:"job"`
	// Type is the transition or supervision event name.
	Type string `json:"type"`
	// Attempt stamps supervision events with the attempt ordinal.
	Attempt int `json:"attempt,omitempty"`
	// Class is the incident/retry failure class, when known.
	Class string `json:"class,omitempty"`
	// Detail is the human-readable note.
	Detail string    `json:"detail,omitempty"`
	Time   time.Time `json:"time"`
}

// EventStream is one SSE subscription to a job's events. Receive from C
// until it closes (terminal event, disconnect, or Close), then check Err.
type EventStream struct {
	// C delivers events in order. Closed when the stream ends.
	C <-chan Event

	cancel context.CancelFunc
	err    error
	done   chan struct{}
}

// Close tears down the stream; safe to call more than once.
func (s *EventStream) Close() {
	s.cancel()
	<-s.done
}

// Err reports why the stream ended: nil for a server-closed stream (the job
// went terminal), the transport error otherwise. Valid once C is closed.
func (s *EventStream) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Events opens the job's SSE progress stream, resuming after lastID when
// non-empty ("" streams the job's full history). The daemon replays any
// missed events first, then continues live; the stream ends after the
// terminal queue event.
func (c *Client) Events(ctx context.Context, id, lastID string) (*EventStream, error) {
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		cancel()
		return nil, decodeError(resp)
	}
	ch := make(chan Event, 16)
	s := &EventStream{C: ch, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		defer close(ch)
		defer resp.Body.Close()
		s.err = readSSE(resp.Body, ch)
		if ctx.Err() != nil {
			s.err = nil // deliberate Close/cancel, not a transport failure
		}
	}()
	return s, nil
}

// readSSE parses the text/event-stream wire format: "id:"/"event:"/"data:"
// fields accumulated until a blank line dispatches the event. Only the data
// payload is decoded — it carries the full Event as JSON.
func readSSE(body interface{ Read([]byte) (int, error) }, ch chan<- Event) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				var ev Event
				if json.Unmarshal([]byte(data.String()), &ev) == nil {
					ch <- ev
				}
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n') // multi-line data field
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/retry:/comments — the JSON payload carries
			// everything this client needs.
		}
	}
	return sc.Err()
}
