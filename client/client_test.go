package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestErrorEnvelopeDecoding checks that the daemon's typed JSON envelope
// surfaces as *Error with code, message, and retry hint — and that a
// non-envelope body (proxy, panic page) degrades to the raw text.
func TestErrorEnvelopeDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/j-missing":
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such job"}}`)
		case "/v1/jobs":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"saturated","message":"full","retry_after_ms":1500}}`)
		default:
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, "upstream exploded")
		}
	}))
	defer ts.Close()
	c := New(ts.URL)

	_, err := c.Get(context.Background(), "j-missing")
	var e *Error
	if !errors.As(err, &e) || e.Code != "not_found" || e.Status != 404 || e.IsRetryable() {
		t.Fatalf("not_found: %#v", err)
	}
	_, err = c.Submit(context.Background(), SubmitRequest{Script: "b"})
	if !errors.As(err, &e) || e.Code != "saturated" || e.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("saturated: %#v", err)
	}
	_, err = c.Stats(context.Background())
	if !errors.As(err, &e) || e.Code != "" || e.Message != "upstream exploded" || e.Status != 502 {
		t.Fatalf("raw body: %#v", err)
	}
}

// TestEventsParsesSSE checks the wire parser: id/event/data framing, resume
// header forwarding, and channel closure at end of stream.
func TestEventsParsesSSE(t *testing.T) {
	var gotLast string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotLast = r.Header.Get("Last-Event-ID")
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: boot-1\nevent: pending\ndata: {\"id\":\"boot-1\",\"seq\":1,\"job\":\"j-1\",\"type\":\"pending\"}\n\n")
		fmt.Fprint(w, ": heartbeat comment\n\n")
		fmt.Fprint(w, "id: boot-2\nevent: done\ndata: {\"id\":\"boot-2\",\"seq\":2,\"job\":\"j-1\",\"type\":\"done\"}\n\n")
	}))
	defer ts.Close()

	s, err := New(ts.URL).Events(context.Background(), "j-1", "boot-0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var evs []Event
	for ev := range s.C {
		evs = append(evs, ev)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if gotLast != "boot-0" {
		t.Errorf("Last-Event-ID not forwarded: %q", gotLast)
	}
	if len(evs) != 2 || evs[0].Type != "pending" || evs[1].Type != "done" || evs[1].Seq != 2 {
		t.Fatalf("parsed events: %+v", evs)
	}
}

// TestWaitFallsBackToPolling checks that Wait still resolves when the events
// endpoint is unavailable (an older daemon or an SSE-stripping proxy).
func TestWaitFallsBackToPolling(t *testing.T) {
	polls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/j-1/events":
			w.WriteHeader(http.StatusNotImplemented)
			fmt.Fprint(w, `{"error":{"code":"internal","message":"no sse here"}}`)
		case "/v1/jobs/j-1":
			polls++
			state := StateLeased
			if polls >= 2 {
				state = StateDone
			}
			fmt.Fprintf(w, `{"id":"j-1","state":%q,"leases":1}`, state)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j, err := New(ts.URL).Wait(ctx, "j-1")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone || polls < 2 {
		t.Fatalf("job %+v after %d polls", j, polls)
	}
}
