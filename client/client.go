// Package client is the Go client of the aigred daemon's v1 HTTP API.
//
// It wraps submission, queries, result fetches, and the Server-Sent-Events
// progress stream behind typed methods, and converts the daemon's JSON
// error envelope into *Error values carrying the machine-readable code and
// retry hint. The package speaks only the public wire protocol — it shares
// no types with the daemon's internals, so it can be vendored into other
// programs as-is.
//
//	c := client.New("http://127.0.0.1:8080")
//	ack, err := c.Submit(ctx, client.SubmitRequest{Script: "b; rw", AIGER: payload})
//	job, err := c.Wait(ctx, ack.ID) // streams events, polls as fallback
//	result, _, err := c.Result(ctx, ack.ID)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Job states reported by the daemon.
const (
	StatePending     = "pending"
	StateLeased      = "leased"
	StateDone        = "done"
	StateFailed      = "failed"
	StateQuarantined = "quarantined"
	StateCancelled   = "cancelled"
)

// Terminal reports whether state is final: a job in a terminal state will
// never change again.
func Terminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateQuarantined, StateCancelled:
		return true
	}
	return false
}

// Client talks to one aigred daemon. The zero value is not usable; construct
// with New. Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8080"),
// using http.DefaultClient.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
}

// WithHTTPClient replaces the underlying *http.Client (timeouts, transports,
// test doubles) and returns the client for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// Error is a non-2xx daemon response, decoded from the v1 JSON error
// envelope {"error": {"code", "message", "retry_after_ms"}}.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code: "saturated", "rate_limited",
	// "draining", "not_found", "invalid_argument", "not_ready", ...
	Code string
	// Message is the human-readable explanation.
	Message string
	// RetryAfter is the daemon's retry hint, when it gave one.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("aigred: HTTP %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("aigred: %s: %s", e.Code, e.Message)
}

// IsRetryable reports whether waiting and retrying can succeed (saturation,
// rate limits, drains — anything with a retry hint).
func (e *Error) IsRetryable() bool { return e.RetryAfter > 0 }

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	Name     string `json:"name,omitempty"`
	Script   string `json:"script"`
	Priority int    `json:"priority,omitempty"`
	// Parallel overrides the daemon's default engine choice when non-nil.
	Parallel *bool    `json:"parallel,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	Client   string   `json:"client,omitempty"`
	Inject   []string `json:"inject,omitempty"`
	// AIGER is the input network (binary or ASCII AIGER bytes; the JSON
	// encoding base64s it automatically).
	AIGER []byte `json:"aiger"`
}

// Ack is the submission acknowledgment: by the time it arrives the job is
// durably queued and survives a daemon crash.
type Ack struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// Session is the queryable execution record of a finished (or in-flight)
// job.
type Session struct {
	Attempts     int           `json:"attempts,omitempty"`
	Preemptions  int           `json:"preemptions,omitempty"`
	NodesBefore  int           `json:"nodes_before,omitempty"`
	LevelsBefore int           `json:"levels_before,omitempty"`
	NodesAfter   int           `json:"nodes_after,omitempty"`
	LevelsAfter  int           `json:"levels_after,omitempty"`
	QueuedNS     time.Duration `json:"queued_ns,omitempty"`
	WallNS       time.Duration `json:"wall_ns,omitempty"`
	ModeledNS    time.Duration `json:"modeled_ns,omitempty"`
	// Result is the content address of the optimized AIGER in the daemon's
	// blob store; fetch it with Client.Result.
	Result      string `json:"result,omitempty"`
	ResultBytes int    `json:"result_bytes,omitempty"`
}

// Job is one queued job as reported by GET /v1/jobs/{id}.
type Job struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Script    string    `json:"script"`
	State     string    `json:"state"`
	Detail    string    `json:"detail,omitempty"`
	Priority  int       `json:"priority,omitempty"`
	Parallel  bool      `json:"parallel,omitempty"`
	Client    string    `json:"client,omitempty"`
	Leases    int       `json:"leases"`
	Submitted time.Time `json:"submitted"`
	Updated   time.Time `json:"updated"`
	Session   *Session  `json:"session,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j Job) Terminal() bool { return Terminal(j.State) }

// QueueStats mirrors the daemon's queue counters from GET /v1/stats.
type QueueStats struct {
	Pending     int   `json:"pending"`
	Leased      int   `json:"leased"`
	Done        int   `json:"done"`
	Failed      int   `json:"failed"`
	Quarantined int   `json:"quarantined"`
	Cancelled   int   `json:"cancelled"`
	Recovered   int   `json:"recovered,omitempty"`
	Torn        int   `json:"torn,omitempty"`
	Compactions int   `json:"compactions,omitempty"`
	WALBytes    int64 `json:"wal_bytes,omitempty"`
}

// Active is the queue depth: jobs not yet terminal.
func (s QueueStats) Active() int { return s.Pending + s.Leased }

// Stats is the GET /v1/stats response (engine metrics are left as raw JSON;
// their shape belongs to the engine, not this API).
type Stats struct {
	Queue    QueueStats      `json:"queue"`
	Store    StoreStats      `json:"store"`
	Engine   json.RawMessage `json:"engine"`
	Draining bool            `json:"draining"`
}

// StoreStats sizes the daemon's result blob store.
type StoreStats struct {
	Blobs int   `json:"blobs"`
	Bytes int64 `json:"bytes"`
}

// Submit durably enqueues a job. The returned Ack carries the daemon-minted
// job id; a non-2xx response surfaces as *Error.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (Ack, error) {
	var ack Ack
	body, err := json.Marshal(req)
	if err != nil {
		return ack, err
	}
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body), &ack)
	return ack, err
}

// Get fetches one job's current state and session.
func (c *Client) Get(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &j)
	return j, err
}

// ListOptions filter GET /v1/jobs. Zero values mean "no filter" (the daemon
// still bounds an unlimited listing to its default page size).
type ListOptions struct {
	State  string
	Client string
	Limit  int
}

// List fetches jobs in submission order, filtered server-side.
func (c *Client) List(ctx context.Context, opts ListOptions) ([]Job, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", opts.State)
	}
	if opts.Client != "" {
		q.Set("client", opts.Client)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var jobs []Job
	err := c.doJSON(ctx, http.MethodGet, path, nil, &jobs)
	return jobs, err
}

// Stats fetches the daemon's queue, store, and engine statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Result fetches a finished job's optimized network as raw AIGER bytes,
// together with its content digest. A job that is not yet terminal yields
// *Error with code "not_ready"; one that ended without output, "no_result".
func (c *Client) Result(ctx context.Context, id string) (data []byte, digest string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", decodeError(resp)
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	return data, resp.Header.Get("X-Aigred-Digest"), nil
}

// Wait blocks until the job reaches a terminal state and returns its final
// record. It follows the job's SSE event stream (reconnecting with the last
// seen event id, so daemon restarts and dropped connections lose nothing)
// and degrades to polling when streaming is unavailable.
func (c *Client) Wait(ctx context.Context, id string) (Job, error) {
	lastID := ""
	for {
		stream, err := c.Events(ctx, id, lastID)
		if err != nil {
			if e, ok := err.(*Error); ok && e.Code == "not_found" {
				return Job{}, err
			}
			// Streaming unavailable (proxy, old daemon): poll instead.
			j, gerr := c.Get(ctx, id)
			if gerr != nil {
				return j, gerr
			}
			if j.Terminal() {
				return j, nil
			}
			select {
			case <-ctx.Done():
				return Job{}, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		for ev := range stream.C {
			lastID = ev.ID
			if Terminal(ev.Type) {
				stream.Close()
				return c.Get(ctx, id)
			}
		}
		stream.Close()
		if err := ctx.Err(); err != nil {
			return Job{}, err
		}
		// Stream ended without a terminal event (daemon restart, overflow
		// cut): reconnect from the last seen id.
	}
}

// doJSON issues a request and decodes a 2xx JSON response into out; non-2xx
// responses decode into *Error.
func (c *Client) doJSON(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into *Error, tolerating non-envelope
// bodies (proxies, panics) by falling back to the raw text.
func decodeError(resp *http.Response) error {
	e := &Error{Status: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var envelope struct {
		Error struct {
			Code         string `json:"code"`
			Message      string `json:"message"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Code != "" {
		e.Code = envelope.Error.Code
		e.Message = envelope.Error.Message
		if envelope.Error.RetryAfterMS > 0 {
			e.RetryAfter = time.Duration(envelope.Error.RetryAfterMS) * time.Millisecond
		}
		return e
	}
	e.Message = strings.TrimSpace(string(raw))
	return e
}
