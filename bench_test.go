// Benchmarks regenerating the paper's tables and figures as testing.B
// targets (see DESIGN.md's experiment index; cmd/experiments prints the
// full formatted tables). One benchmark per experiment artifact:
//
//	BenchmarkTable1SeqPart*   — Table I, sequential-part time per algorithm
//	BenchmarkTable2Balance*   — Table II, balancing (ABC-style vs GPU)
//	BenchmarkTable2Refactor*  — Table II, refactoring (ABC-style vs GPU x2)
//	BenchmarkTable3RfResyn*   — Table III, the rf_resyn sequence
//	BenchmarkTable3Resyn2*    — Table III, the resyn2 sequence
//	BenchmarkFig7Scaling/N    — Figure 7, GPU rf_resyn across sizes
//	BenchmarkFig8Breakdown    — Figure 8, per-command modeled breakdown
//	BenchmarkPartitionMillion — partition-parallel million-node AIG, W1 vs W8
//
// GPU-side benchmarks report the modeled device time as "modeled-ns/op"
// next to the host wall time (see DESIGN.md for the substitution).
package aigre_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"aigre"
	"aigre/internal/aig"
	"aigre/internal/balance"
	"aigre/internal/bench"
	"aigre/internal/dedup"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/hashtable"
	"aigre/internal/refactor"
	"aigre/internal/rewrite"
)

// benchCase builds one representative benchmark of moderate size (the suite
// mid-weight: a 32-bit multiplier, ~10k nodes).
func benchCase(b *testing.B) *aig.AIG {
	b.Helper()
	a, ok := bench.ByName("multiplier", 1)
	if !ok {
		b.Fatal("missing benchmark circuit")
	}
	return a
}

func reportModeled(b *testing.B, total gpu.Stats) {
	b.ReportMetric(float64(total.ModeledTime.Nanoseconds())/float64(b.N), "modeled-ns/op")
	b.ReportMetric(float64(total.SeqTime.Nanoseconds())/float64(b.N), "seqpart-ns/op")
}

func BenchmarkTable1SeqPartGPURewrite(b *testing.B) {
	a := benchCase(b)
	var total gpu.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := gpu.New(0)
		rewrite.Parallel(d, a, rewrite.Options{})
		total.Add(d.Stats())
	}
	reportModeled(b, total)
}

func BenchmarkTable1SeqPartRefactorSeqReplace(b *testing.B) {
	a := benchCase(b)
	var total gpu.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := gpu.New(0)
		refactor.Parallel(d, a, refactor.Options{SequentialReplacement: true})
		total.Add(d.Stats())
	}
	reportModeled(b, total)
}

func BenchmarkTable1SeqPartRefactorProposed(b *testing.B) {
	a := benchCase(b)
	var total gpu.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := gpu.New(0)
		out, _ := refactor.Parallel(d, a, refactor.Options{})
		dedup.Run(d, out)
		total.Add(d.Stats())
	}
	reportModeled(b, total)
}

func BenchmarkTable2BalanceABC(b *testing.B) {
	a := benchCase(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balance.Sequential(a)
	}
}

func BenchmarkTable2BalanceGPU(b *testing.B) {
	a := benchCase(b)
	var total gpu.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := gpu.New(0)
		balance.Parallel(d, a)
		total.Add(d.Stats())
	}
	reportModeled(b, total)
}

func BenchmarkTable2RefactorABC(b *testing.B) {
	a := benchCase(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refactor.Sequential(a, refactor.Options{})
	}
}

func BenchmarkTable2RefactorGPUx2(b *testing.B) {
	a := benchCase(b)
	var total gpu.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := gpu.New(0)
		cur, _ := refactor.Parallel(d, a, refactor.Options{})
		cur, _ = refactor.Parallel(d, cur, refactor.Options{})
		dedup.Run(d, cur)
		total.Add(d.Stats())
	}
	reportModeled(b, total)
}

func benchSequence(b *testing.B, script string, parallel bool, rwzPasses int) {
	a := benchCase(b)
	var total gpu.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := flow.Config{Parallel: parallel, RwzPasses: rwzPasses}
		if parallel {
			cfg.Device = gpu.New(0)
		}
		if _, err := flow.Run(context.Background(), a, script, cfg); err != nil {
			b.Fatal(err)
		}
		if parallel {
			total.Add(cfg.Device.Stats())
		}
	}
	if parallel {
		reportModeled(b, total)
	}
}

func BenchmarkTable3RfResynABC(b *testing.B) { benchSequence(b, flow.RfResyn, false, 1) }
func BenchmarkTable3RfResynGPU(b *testing.B) { benchSequence(b, flow.RfResyn, true, 1) }
func BenchmarkTable3Resyn2ABC(b *testing.B)  { benchSequence(b, flow.Resyn2, false, 1) }
func BenchmarkTable3Resyn2GPU(b *testing.B)  { benchSequence(b, flow.Resyn2, true, 2) }

func BenchmarkFig7Scaling(b *testing.B) {
	base := bench.Multiplier(12)
	for doubles := 0; doubles <= 4; doubles++ {
		a := base
		for i := 0; i < doubles; i++ {
			a = bench.Double(a)
		}
		b.Run(fmt.Sprintf("nodes=%d", a.NumAnds()), func(b *testing.B) {
			b.ReportAllocs()
			var total gpu.Stats
			for i := 0; i < b.N; i++ {
				cfg := flow.Config{Parallel: true, Device: gpu.New(0)}
				if _, err := flow.Run(context.Background(), a, flow.RfResyn, cfg); err != nil {
					b.Fatal(err)
				}
				total.Add(cfg.Device.Stats())
			}
			reportModeled(b, total)
		})
	}
}

func BenchmarkFig8Breakdown(b *testing.B) {
	a := benchCase(b)
	var bTime, rwTime, rfTime, ddTime float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := flow.Config{Parallel: true, Device: gpu.New(0), RwzPasses: 2}
		res, err := flow.Run(context.Background(), a, flow.Resyn2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		bd := flow.Breakdown(res.Timings)
		bTime += bd["b"].Seconds()
		rwTime += bd["rw"].Seconds()
		rfTime += bd["rf"].Seconds()
		ddTime += bd["dedup"].Seconds()
	}
	n := float64(b.N)
	b.ReportMetric(bTime/n*1e9, "b-ns/op")
	b.ReportMetric(rwTime/n*1e9, "rw-ns/op")
	b.ReportMetric(rfTime/n*1e9, "rf-ns/op")
	b.ReportMetric(ddTime/n*1e9, "dedup-ns/op")
}

// BenchmarkHashTableLinearVsChained compares the paper's linear-probing
// table against the chained design of [9] (DESIGN.md ablation 5).
func BenchmarkHashTableLinearVsChained(b *testing.B) {
	// Implemented in internal/hashtable benchmarks; this target exists so a
	// single `go test -bench=.` run at the repository root covers it too.
	a := benchCase(b)
	keys := make([]uint64, 0, a.NumAnds())
	a.ForEachAnd(func(id int32) {
		keys = append(keys, aig.Key(a.Fanin0(id), a.Fanin1(id)))
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ht := hashtable.New(len(keys))
			for j, k := range keys {
				ht.InsertUnique(k, uint32(j))
			}
			for _, k := range keys {
				ht.Query(k)
			}
		}
	})
	b.Run("chained", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ct := hashtable.NewChained(2 * len(keys))
			for j, k := range keys {
				ct.InsertUnique(k, uint32(j))
			}
			for _, k := range keys {
				ct.Query(k)
			}
		}
	})
}

// BenchmarkPublicAPIResyn2 exercises the exported entry point end to end.
func BenchmarkPublicAPIResyn2(b *testing.B) {
	n := aigre.FromInternal(benchCase(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Resyn2(context.Background(), aigre.Options{Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// deepNarrowMillion builds (once per process) the million-node deep/narrow
// AIG of the partition benchmarks: 64 independent 16000-node output chains,
// the adversarial shape for kernel-level parallelism.
var deepNarrowMillion = struct {
	once sync.Once
	a    *aig.AIG
}{}

func deepNarrowCase(b *testing.B) *aig.AIG {
	b.Helper()
	deepNarrowMillion.once.Do(func() { deepNarrowMillion.a = bench.DeepNarrow(64, 4000) })
	return deepNarrowMillion.a
}

// BenchmarkPartitionMillionW1/W2/W4/W8 measure partition-parallel
// optimization of a million-node AIG across worker budgets (the BENCH_N.json
// scaling artifact): same split into eight ~128k-node cone partitions, the
// worker budget alone varies. ns/op shows the wall speedup on multicore
// hosts — bench.sh derives speedup and parallel-efficiency columns from the
// W-row ratios — and the queued-ns/op metric (total time partitions sat
// waiting for a worker) captures the same scaling even on hosts with fewer
// cores than workers, where wall time cannot improve.
func benchPartitionMillion(b *testing.B, workers int) {
	n := aigre.FromInternal(deepNarrowCase(b))
	var queued, jobWall time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := n.Run(context.Background(), "b; rw", aigre.Options{
			Workers: workers,
			Partition: aigre.PartitionOptions{
				Mode:       aigre.PartitionCones,
				TargetSize: 1 << 17,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Partition == nil || len(res.Partition.Parts) < 2 {
			b.Fatalf("expected a multi-partition run, got %+v", res.Partition)
		}
		for _, p := range res.Partition.Parts {
			queued += p.QueuedNS
			jobWall += p.WallNS
		}
	}
	b.ReportMetric(float64(queued.Nanoseconds())/float64(b.N), "queued-ns/op")
	b.ReportMetric(float64(jobWall.Nanoseconds())/float64(b.N), "jobwall-ns/op")
}

func BenchmarkPartitionMillionW1(b *testing.B) { benchPartitionMillion(b, 1) }
func BenchmarkPartitionMillionW2(b *testing.B) { benchPartitionMillion(b, 2) }
func BenchmarkPartitionMillionW4(b *testing.B) { benchPartitionMillion(b, 4) }
func BenchmarkPartitionMillionW8(b *testing.B) { benchPartitionMillion(b, 8) }
