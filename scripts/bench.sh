#!/bin/sh
# Benchmark-regression harness: rerun the paper-table benchmarks with
# -benchmem, compare ns/op and allocs/op against the recorded pre-cache
# baseline (scripts/bench_baseline.txt), write the combined report to
# BENCH_<N>.json, and fail the run on gross regressions:
#
#   - allocs/op more than 10% above baseline (allocation counts are
#     deterministic, so even small regressions are real), or
#   - ns/op more than 50% above a baseline of at least 100ms. Sub-100ms
#     single-iteration wall times swing 2-3x with GC state inherited from
#     earlier benchmarks in the same process, so for those the time ratio is
#     reported but never gates.
#
# Run from anywhere; `make bench` is an alias. Override the iteration count
# with BENCHTIME (default 1x, matching how the baseline was recorded). The
# report lands in BENCH_<N>.json where N comes from scripts/pr_sequence, or
# — when that file is absent — one past the highest BENCH_<N>.json already
# recorded, so each PR's run auto-appends a fresh artifact next to the
# earlier ones; BENCH_OUT overrides the path entirely.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BASELINE=scripts/bench_baseline.txt
if [ -f scripts/pr_sequence ]; then
    SEQ=$(cat scripts/pr_sequence)
else
    SEQ=$(ls BENCH_*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -1)
    SEQ=$((${SEQ:-0} + 1))
fi
OUT="${BENCH_OUT:-BENCH_${SEQ}.json}"
CUR=$(mktemp)
trap 'rm -f "$CUR"' EXIT

echo "bench: running Table/Fig/Partition benchmarks (-benchtime=$BENCHTIME -benchmem)..." >&2
go test -run '^$' -bench 'Table|Fig8|PartitionMillion' -benchmem -benchtime="$BENCHTIME" -timeout 30m . | tee "$CUR" >&2

awk -v baseline="$BASELINE" -v out="$OUT" -v benchtime="$BENCHTIME" '
function parseline(line, vals,   n, parts, i, key) {
    # "BenchmarkX  N  123 ns/op  456 B/op  789 allocs/op  [extra metrics]"
    # Custom b.ReportMetric columns (e.g. queued-ns/op, modeled-ns/op) are
    # carried into the JSON as "<metric>_per_op" so per-benchmark scaling
    # signals survive in the BENCH_<N>.json artifact.
    n = split(line, parts, /[ \t]+/)
    vals["name"] = parts[1]
    vals["extras"] = ""
    for (i = 3; i < n; i += 2) {
        if (parts[i+1] == "ns/op")          { vals["ns"] = parts[i] }
        else if (parts[i+1] == "B/op")      { vals["bytes"] = parts[i] }
        else if (parts[i+1] == "allocs/op") { vals["allocs"] = parts[i] }
        else if (parts[i+1] ~ /\/op$/) {
            key = parts[i+1]
            sub(/\/op$/, "", key)
            gsub(/[^A-Za-z0-9]/, "_", key)
            vals["extras"] = vals["extras"] sprintf(", \"%s_per_op\": %s", key, parts[i])
        }
    }
}
BEGIN {
    while ((getline line < baseline) > 0) {
        if (line !~ /^Benchmark/) continue
        delete v; parseline(line, v)
        base_ns[v["name"]] = v["ns"]
        base_allocs[v["name"]] = v["allocs"]
        base_bytes[v["name"]] = v["bytes"]
    }
    close(baseline)
}
/^Benchmark/ {
    delete v; parseline($0, v)
    names[++count] = v["name"]
    cur_ns[v["name"]] = v["ns"]
    cur_allocs[v["name"]] = v["allocs"]
    cur_bytes[v["name"]] = v["bytes"]
    cur_extras[v["name"]] = v["extras"]
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime > out
    fails = 0
    # The W1 wall time anchors the multicore-scaling columns: every
    # PartitionMillionW<N> row gets speedup = W1/WN and
    # parallel_efficiency = speedup/N derived from this same run.
    w1 = 0
    for (i = 1; i <= count; i++) {
        s = names[i]; sub(/^Benchmark/, "", s); sub(/-[0-9]+$/, "", s)
        if (s == "PartitionMillionW1") w1 = cur_ns[names[i]]
    }
    for (i = 1; i <= count; i++) {
        name = names[i]
        # Strip the Benchmark prefix and the per-run iteration suffix go
        # sometimes appends (BenchmarkFoo-8).
        short = name; sub(/^Benchmark/, "", short); sub(/-[0-9]+$/, "", short)
        full = "Benchmark" short
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s", \
            short, cur_ns[name], cur_bytes[name], cur_allocs[name], cur_extras[name] > out
        wrow = 0
        if (short ~ /^PartitionMillionW[0-9]+$/ && w1 > 0) {
            wrow = short; sub(/^PartitionMillionW/, "", wrow); wrow += 0
            speedup = w1 / cur_ns[name]
            printf ", \"speedup\": %.3f, \"parallel_efficiency\": %.3f", \
                speedup, speedup / wrow > out
        }
        # A W8 wall above W1 means adding workers made the run slower — the
        # exact failure mode the partition path exists to avoid.
        wreg = (short == "PartitionMillionW8" && w1 > 0 && cur_ns[name] + 0 > w1 + 0)
        if (full in base_allocs) {
            ns_ratio = cur_ns[name] / base_ns[full]
            allocs_ratio = (base_allocs[full] > 0) ? cur_allocs[name] / base_allocs[full] : 1
            printf ", \"baseline_ns_per_op\": %s, \"baseline_allocs_per_op\": %s", \
                base_ns[full], base_allocs[full] > out
            printf ", \"ns_ratio\": %.3f, \"allocs_ratio\": %.3f", ns_ratio, allocs_ratio > out
            status = "ok"
            if (allocs_ratio > 1.10) { status = "allocs-regression"; fails++ }
            if (ns_ratio > 1.50 && base_ns[full] >= 100000000) { status = "time-regression"; fails++ }
            if (wreg) status = "regression"
            printf ", \"status\": \"%s\"", status > out
            printf "bench: %-40s ns/op %12s -> %12s (x%.2f)  allocs/op %9s -> %9s (x%.2f)  %s\n", \
                short, base_ns[full], cur_ns[name], ns_ratio, \
                base_allocs[full], cur_allocs[name], allocs_ratio, status
        } else {
            printf ", \"status\": \"%s\"", wreg ? "regression" : "no-baseline" > out
            printf "bench: %-40s (no baseline)%s\n", short, wreg ? "  W8-slower-than-W1 REGRESSION" : ""
        }
        printf "%s\n", (i < count) ? "}," : "}" > out
    }
    printf "  ],\n  \"regressions\": %d\n}\n", fails > out
    close(out)
    if (fails > 0) {
        printf "bench: FAIL — %d gross regression(s) vs %s\n", fails, baseline
        exit 1
    }
    printf "bench: PASS — report written to %s\n", out
}
' "$CUR"
