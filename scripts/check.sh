#!/bin/sh
# Tier-1 verification: build, vet (findings fail the run), the full test
# suite under the race detector — which includes the fault-injection and
# rollback tests of internal/gpu and internal/flow — and a short fuzz smoke
# of the AIGER parser. Run from anywhere; `make check` is an alias.
set -eu
cd "$(dirname "$0")/.."
set -x
go build ./...
go vet ./...
go test -race ./...
# Fault-injection / recovery paths, explicitly, under -race.
go test -race -run 'Fault|Guard|TableFull' ./internal/gpu/ ./internal/flow/ ./internal/hashtable/
# Fuzz smoke: the AIGER parser must never panic on arbitrary input.
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/aiger/
