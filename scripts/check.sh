#!/bin/sh
# Tier-1 verification: gofmt gate, build, vet (findings fail the run), the
# full test suite under the race detector — which includes the
# fault-injection and rollback tests of internal/gpu and internal/flow —
# the million-node partition smoke, the partition seam-conflict stress, and
# a short fuzz smoke of the AIGER parser. Run from anywhere; `make check` is
# an alias.
set -eu
cd "$(dirname "$0")/.."
# gofmt gate: fail on any unformatted file.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi
set -x
go build ./...
go vet ./...
go test -race ./...
# Fault-injection / recovery paths, explicitly, under -race.
go test -race -run 'Fault|Guard|TableFull' ./internal/gpu/ ./internal/flow/ ./internal/hashtable/
# Resynthesis cache: concurrent mixed NPN/program traffic on one cache and
# the 8-job shared-cache batch stress, explicitly, under -race.
go test -race -run 'TestConcurrentMixedTraffic|TestSharedCacheBatchStress|TestCachedRunsMatchUncached' ./internal/rcache/ .
# Batch scheduler: shared-budget stress and cancellation, explicitly, under
# -race (concurrent jobs over a tiny pool must respect the worker budget and
# stop promptly on cancel, with no goroutine leaks).
go test -race -run 'Pool|Engine|Lease|RunBatch|Cancel' ./internal/sched/ ./internal/gpu/ .
# Partition-parallel optimization: the million-node deep/narrow smoke (cone
# partitioning of an AIG the kernel-level parallelism cannot touch) and the
# seam-conflict stress — 8 partitions racing over a 2-worker pool in parallel
# mode — explicitly, under -race.
go test -timeout 20m -run 'TestPartitionMillionNodeSmoke' .
go test -race -run 'TestPartitionStressRace|TestResolveRollsBack|TestPartitionedBatchJob' ./internal/partition/ .
# Multicore scaling smoke: a reduced deep/narrow run at 1 vs 4 workers must
# get faster with workers (skips itself on <4-CPU runners, where wall time
# cannot improve; the BenchmarkPartitionMillionW* rows carry the full story).
go test -timeout 10m -run 'TestPartitionScalingSmoke' .
# Pooled strash determinism (reuse-after-Put must be bit-identical), the
# parallel seam stitch (structural identity with the sequential stitch,
# worker-count independence), and the concurrent min-insert primitive it
# rides on, explicitly, under -race.
go test -race -run 'TestStrashTable|TestStrashPoolDeterminism|TestRebuildStrashSizing' ./internal/aig/
go test -race -run 'TestParallelStitch|TestConcurrentInsertMin|TestInsertMinFull' ./internal/partition/ ./internal/hashtable/
# Supervision chaos gate: a randomized (but seeded and printed, hence
# reproducible) fault schedule over an 8-job batch under -race — kernel
# panics, typed hashtable-full failures, silent corruptions, and one poison
# job the watchdog must preempt and quarantine. Surviving outputs must stay
# CEC-equivalent to a fault-free run and the journal must replay the full
# supervision history. Override the seed with CHAOS_SEED=n to reproduce.
CHAOS_SEED="${CHAOS_SEED:-$(date +%s)}"
echo "chaos gate seed: $CHAOS_SEED"
go test -race -count=1 -run 'TestChaosBatchSupervision' -chaos-seed="$CHAOS_SEED" .
# Supervision/journal concurrency, explicitly, under -race.
go test -race -count=1 -run 'TestConcurrentIncidentAppendStress|TestConcurrentAppend' ./internal/sched/ ./internal/journal/
# Durable queue: WAL replay reconstruction, torn-record tolerance, the
# concurrent lease/resolve stress with exactly-once cross-checks, the
# weighted-fair leasing properties, and the compaction suite (shrink +
# equivalent replay, crash-during-compaction stale-temp recovery, live
# threshold), under -race.
go test -race -count=1 ./internal/queue/
go test -race -count=1 -run 'TestWeightedFairLeasing|TestIdleClientDoesNotBankCredit|TestCompactShrinksAndReplaysEquivalently|TestCrashDuringCompactionIgnoresStaleTemp' ./internal/queue/
# Daemon v1 surface: the event bus (resume, overflow), the content-addressed
# result store (dedup, GC, digest validation), and the typed Go client (SSE
# parsing, error envelope, poll fallback), under -race.
go test -race -count=1 ./internal/bus/ ./internal/store/ ./client/
# v1 API e2e: SSE streaming with Last-Event-ID exact-suffix resume, result
# retrieval with digest checks, list filters, error envelope, deprecation
# headers on the flat aliases.
go test -race -count=1 -run 'TestSSEResume|TestResultEndpoint|TestListFilters|TestErrorEnvelope|TestV1RoutesAndDeprecation' ./cmd/aigred/
# Daemon smoke gate: the aigred e2e pair — crash the daemon mid-batch with
# jobs leased (hard os.Exit, no checkpoint), restart against the same queue
# file, and assert every job reaches exactly one terminal state with no
# re-execution of completed work, the restart-forced compaction shrinks the
# WAL, every completed job's result is still retrievable from the store,
# and the SSE stream resumes across a disconnect with no gap; then SIGTERM
# a daemon with a job in flight and assert the drain finishes it, refuses
# new submissions with the typed draining error, leaves the backlog durably
# pending, and exits 0.
go test -race -count=1 -run 'TestDaemonCrashRecovery|TestDaemonDrainSmoke' ./cmd/aigred/
# Fuzz smoke: the AIGER parser must never panic on arbitrary input.
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/aiger/
