package aigre_test

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"aigre"
	"aigre/internal/bench"
)

func buildAPICircuit(t testing.TB) *aigre.Network {
	n := aigre.New(8)
	rng := rand.New(rand.NewSource(3))
	acc := n.PI(0)
	for i := 1; i < 8; i++ {
		acc = n.AddAnd(acc, n.PI(i))
	}
	n.AddPO(acc)
	for o := 0; o < 3; o++ {
		x := n.PI(rng.Intn(8))
		sum := aigre.Const0
		for c := 0; c < 4; c++ {
			sum = n.AddOr(sum, n.AddAnd(x, n.PI(rng.Intn(8))))
		}
		n.AddPO(sum)
	}
	n.AddPO(n.AddMux(n.PI(0), n.PI(1), n.AddXor(n.PI(2), n.PI(3))))
	n.SetName("api-test")
	return n
}

func TestPublicAPIConstruction(t *testing.T) {
	n := buildAPICircuit(t)
	s := n.Stats()
	if s.PIs != 8 || s.POs != 5 || s.Nodes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if n.Name() != "api-test" {
		t.Errorf("name = %q", n.Name())
	}
}

func TestPublicAPIOptimizations(t *testing.T) {
	n := buildAPICircuit(t)
	for _, parallel := range []bool{false, true} {
		for name, run := range map[string]func() (aigre.Result, error){
			"balance": func() (aigre.Result, error) {
				return n.Balance(context.Background(), aigre.Options{Parallel: parallel})
			},
			"refactor": func() (aigre.Result, error) {
				return n.Refactor(context.Background(), aigre.Options{Parallel: parallel, Passes: 2})
			},
			"rewrite": func() (aigre.Result, error) {
				return n.Rewrite(context.Background(), aigre.Options{Parallel: parallel})
			},
			"resyn2": func() (aigre.Result, error) { return n.Resyn2(context.Background(), aigre.Options{Parallel: parallel}) },
			"rf_resyn": func() (aigre.Result, error) {
				return n.RfResyn(context.Background(), aigre.Options{Parallel: parallel})
			},
			"resub": func() (aigre.Result, error) { return n.Resub(context.Background(), aigre.Options{Parallel: parallel}) },
			"compress": func() (aigre.Result, error) {
				return n.CompressRS(context.Background(), aigre.Options{Parallel: parallel})
			},
		} {
			res, err := run()
			if err != nil {
				t.Fatalf("%s(parallel=%v): %v", name, parallel, err)
			}
			eq, err := res.AIG.EquivalentTo(n)
			if err != nil || !eq {
				t.Fatalf("%s(parallel=%v) not equivalent: %v", name, parallel, err)
			}
			if res.AIG.Stats().Nodes > n.Stats().Nodes {
				t.Errorf("%s(parallel=%v) grew the network", name, parallel)
			}
		}
	}
}

func TestPublicAPIBalanceLevelsAgree(t *testing.T) {
	n := aigre.FromInternal(bench.Sin(12))
	seq, err := n.Balance(context.Background(), aigre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := n.Balance(context.Background(), aigre.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.AIG.Stats().Levels != par.AIG.Stats().Levels {
		t.Errorf("Property 3 violated at the API level: %d vs %d",
			seq.AIG.Stats().Levels, par.AIG.Stats().Levels)
	}
}

func TestPublicAPIAIGERRoundTrip(t *testing.T) {
	n := buildAPICircuit(t)
	var buf bytes.Buffer
	if err := n.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := aigre.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := back.EquivalentTo(n)
	if err != nil || !eq {
		t.Fatalf("round trip changed function: %v", err)
	}

	dir := t.TempDir()
	for _, name := range []string{"x.aig", "x.aag"} {
		path := filepath.Join(dir, name)
		if err := n.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := aigre.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if eq, err := back.EquivalentTo(n); err != nil || !eq {
			t.Fatalf("%s round trip changed function: %v", name, err)
		}
	}
}

func TestPublicAPIRunScript(t *testing.T) {
	n := buildAPICircuit(t)
	res, err := n.Run(context.Background(), "b; rfz; b", aigre.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) != 3 {
		t.Errorf("timings = %d", len(res.Timings))
	}
	if _, err := n.Run(context.Background(), "b; bogus", aigre.Options{}); err == nil {
		t.Error("invalid script accepted")
	}
}

func TestPublicAPIDedup(t *testing.T) {
	n := buildAPICircuit(t)
	res, err := n.Dedup(context.Background(), aigre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq, err := res.AIG.EquivalentTo(n); err != nil || !eq {
		t.Fatalf("dedup changed function: %v", err)
	}
}

func TestPublicAPIClone(t *testing.T) {
	n := buildAPICircuit(t)
	c := n.Clone()
	c.AddPO(aigre.Const1)
	if n.Stats().POs == c.Stats().POs {
		t.Error("clone not independent")
	}
}
