// Package aigre is a logic-optimization library for And-Inverter Graphs
// (AIGs), reproducing the system of "Rethinking AIG Resynthesis in Parallel"
// (Liu & Young, DAC 2023): parallel refactoring and AND-balancing with
// data-race-free parallel replacement, parallel rewriting in the style of
// NovelRewrite, the de-duplication/dangling cleanup pass, ABC-style
// sequential baselines for all three algorithms, and fully parallelized
// optimization sequences (resyn2, rf_resyn).
//
// The parallel algorithms are expressed as kernels over a simulated
// massively-parallel device (see the gpu execution model in DESIGN.md); on a
// multi-core host they run on a goroutine pool, and the device additionally
// reports modeled GPU time from work/span instrumentation.
//
// Quick start:
//
//	n, _ := aigre.ReadFile("design.aig")
//	res, _ := n.Resyn2(context.Background(), aigre.Options{Parallel: true})
//	fmt.Println(res.AIG.Stats())
//	res.AIG.WriteFile("design_opt.aig")
//
// Every optimization entry point takes a context.Context first; cancelling
// it aborts the run between kernel launches and commands, returning the
// partial Result together with an error wrapping ctx.Err(). RunBatch (see
// batch.go) runs many networks concurrently over one shared, bounded worker
// budget.
package aigre

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"aigre/internal/aig"
	"aigre/internal/aiger"
	"aigre/internal/balance"
	"aigre/internal/cec"
	"aigre/internal/dedup"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/rcache"
	"aigre/internal/refactor"
	"aigre/internal/resub"
	"aigre/internal/rewrite"
)

// Cache is a resynthesis cache: it memoizes NPN canonization for rewriting
// cuts and factored programs for refactoring cones, keyed by the exact cone
// function. Optimization results are bit-identical with or without a cache —
// it only cuts host wall-clock — and a Cache is safe for concurrent use, so
// one may be shared across passes, runs, and jobs.
//
// A nil Cache in Options selects a process-wide default cache. Use NewCache
// to isolate a run (for reproducible per-run statistics) and
// DisabledCache to turn memoization off entirely.
type Cache struct{ c *rcache.Cache }

// NewCache returns an empty resynthesis cache with the default capacity.
func NewCache() *Cache { return &Cache{c: rcache.New()} }

// DisabledCache returns a cache that never stores or hits: every lookup is a
// miss. Useful for measuring the cache's effect and in tests.
func DisabledCache() *Cache { return &Cache{c: rcache.Disabled()} }

// Stats returns a snapshot of the cache's lifetime counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return cacheStatsOf(c.c.Snapshot())
}

// CacheStats reports resynthesis-cache traffic. Hits/Misses/Evictions count
// the program compartment (refactoring cones); NpnHits/NpnMisses count the
// NPN-canonization compartment (rewriting cuts); Entries is the current
// number of cached programs.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	NpnHits   int64 `json:"npn_hits"`
	NpnMisses int64 `json:"npn_misses"`
	Entries   int   `json:"entries"`
}

// HitRate is Hits / (Hits + Misses) for the program compartment; 0 with no
// lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func cacheStatsOf(st rcache.Stats) CacheStats {
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		NpnHits: st.NpnHits, NpnMisses: st.NpnMisses, Entries: st.Entries,
	}
}

// Network is a combinational And-Inverter Graph.
type Network struct {
	aig *aig.AIG
}

// Stats summarizes a network.
type Stats struct {
	Name   string
	PIs    int
	POs    int
	Nodes  int // AND nodes
	Levels int // delay
}

func (s Stats) String() string {
	return fmt.Sprintf("%-16s i/o = %5d/%5d  and = %8d  lev = %5d", s.Name, s.PIs, s.POs, s.Nodes, s.Levels)
}

// Options selects the execution mode and algorithm parameters for the
// optimization entry points.
type Options struct {
	// Parallel runs the paper's GPU-parallel algorithms; false runs the
	// ABC-style sequential baselines.
	Parallel bool
	// Workers is the number of host worker goroutines backing the simulated
	// device (0 = GOMAXPROCS).
	Workers int
	// MaxCut is the refactoring cut-size limit (default 12, the paper's
	// setting).
	MaxCut int
	// ZeroGain accepts zero-gain replacements in the sequential engines
	// (parallel engines always accept them; Section III-D). In script runs
	// it makes the sequential rw/rf commands behave like rwz/rfz.
	ZeroGain bool
	// Passes repeats the algorithm (the paper evaluates parallel
	// refactoring with 2 passes in Table II). In script runs it sets the
	// parallel refactoring passes per rf/rfz command. Default 1.
	Passes int
	// RwzPasses is the number of parallel rewriting passes per rwz command
	// inside sequences (the paper's GPU resyn2 uses 2). Default 2 for
	// Resyn2, 1 elsewhere.
	RwzPasses int
	// Verify upgrades the per-command functional gate of script runs from
	// random-simulation sampling to a full combinational equivalence check
	// (the CLI -verify flag). Complete but potentially much slower.
	Verify bool
	// GateRounds is the number of 64-pattern sampling rounds of the default
	// per-command equivalence gate in script runs (0 = 4; negative disables
	// the gate).
	GateRounds int
	// FaultPlans installs deterministic fault injections on the simulated
	// device backing this run (a chaos-testing facility: each plan panics or
	// corrupts the Nth kernel launch matching a name pattern, exercising the
	// guarded rollback path). See gpu.FaultPlan.
	FaultPlans []gpu.FaultPlan
	// Cache is the resynthesis cache consulted by the rewriting and
	// refactoring engines (nil = a process-wide default cache). Results are
	// bit-identical with or without it. See Cache.
	Cache *Cache
	// Partition, when its Mode is not PartitionOff, makes Run (and the
	// sequence entry points built on it) optimize partition-parallel: the
	// network is split into size-bounded partitions, each partition runs the
	// script as an independent prioritized job over a bounded worker pool
	// sharing one resynthesis cache, and the results are stitched back with
	// seam conflict breaking, equivalence gating, and per-partition rollback.
	// Result.Partition carries the per-partition report. FaultPlans are
	// ignored in partitioned runs (partition jobs lease device capacity from
	// a shared pool). See PartitionOptions.
	Partition PartitionOptions
}

// Result reports an optimization run.
type Result struct {
	AIG *Network
	// Wall is the measured host time.
	Wall time.Duration
	// Modeled is the simulated-device time (parallel mode; equals Wall for
	// sequential runs).
	Modeled time.Duration
	// Timings is the per-command breakdown for sequence runs.
	Timings []flow.CommandTiming
	// Profile is the per-kernel device profile of a parallel run (nil for
	// sequential runs). The modeled times of its rows sum to Modeled
	// exactly; see gpu.FormatProfile for a printable table.
	Profile []gpu.KernelProfile
	// Incidents lists contained failures of a script run: commands that
	// aborted (kernel panic, full hash table) or failed validation, and how
	// the guarded runner degraded them (sequential retry or skip). Empty on
	// a clean run.
	Incidents []flow.Incident
	// CacheStats is the resynthesis-cache traffic observed during this run
	// (a before/after delta of the configured cache; when the cache is shared
	// with concurrent runs the delta includes their traffic too).
	CacheStats CacheStats
	// Partition is the partition-parallel report of a run with
	// Options.Partition enabled (nil otherwise): partitioning mode, seam
	// conflicts found and broken, rollbacks, and one row per partition.
	Partition *PartitionReport
}

// New returns an empty network with the given number of primary inputs.
// Construction proceeds through AddAnd/AddPO using Literals.
func New(numPIs int) *Network {
	a := aig.New(numPIs)
	a.EnableStrash()
	return &Network{aig: a}
}

// FromInternal wraps an internal AIG (used by the cmd/ tools and tests).
//
// Unstable escape hatch: the internal/aig representation changes without
// notice between versions and FromInternal performs no validation — a
// malformed AIG breaks the Network invariants silently. Use Read/ReadFile
// or the construction API (New, AddAnd, AddPO, ...) instead; call Check to
// validate a wrapped AIG.
func FromInternal(a *aig.AIG) *Network { return &Network{aig: a} }

// Internal exposes the underlying AIG (for cmd/ tools and experiments).
//
// Unstable escape hatch: the returned value aliases the Network's state
// (mutating it bypasses every invariant this package maintains) and its
// type belongs to an internal package that changes without notice. Prefer
// the Network methods; call Check after any direct manipulation.
func (n *Network) Internal() *aig.AIG { return n.aig }

// Check validates the network's structural invariants — acyclicity, fanin
// bounds, structural-hash and fanout-count consistency, PO validity —
// without reaching into internals. It is the validation companion of the
// Internal/FromInternal escape hatches; a Network built through the public
// construction and I/O APIs always passes.
func (n *Network) Check() error { return aig.Check(n.aig) }

// Literal is a signal: a node with optional complementation.
type Literal = aig.Lit

// Const0 and Const1 are the constant literals.
const (
	Const0 = aig.ConstFalse
	Const1 = aig.ConstTrue
)

// PI returns the literal of the i-th primary input.
func (n *Network) PI(i int) Literal { return n.aig.PI(i) }

// AddAnd returns the AND of two literals (structurally hashed).
func (n *Network) AddAnd(a, b Literal) Literal { return n.aig.NewAnd(a, b) }

// AddOr returns the OR of two literals.
func (n *Network) AddOr(a, b Literal) Literal { return n.aig.Or(a, b) }

// AddXor returns the XOR of two literals.
func (n *Network) AddXor(a, b Literal) Literal { return n.aig.Xor(a, b) }

// AddMux returns sel ? t : e.
func (n *Network) AddMux(sel, t, e Literal) Literal { return n.aig.Mux(sel, t, e) }

// AddPO makes lit a primary output and returns its index.
func (n *Network) AddPO(lit Literal) int { return n.aig.AddPO(lit) }

// Stats returns the network statistics.
func (n *Network) Stats() Stats {
	s := n.aig.Stats()
	return Stats{Name: n.aig.Name, PIs: s.PIs, POs: s.POs, Nodes: s.Ands, Levels: s.Levels}
}

// Name returns the network name.
func (n *Network) Name() string { return n.aig.Name }

// SetName sets the network name.
func (n *Network) SetName(name string) { n.aig.Name = name }

// Clone returns an independent copy.
func (n *Network) Clone() *Network { return &Network{aig: n.aig.Clone()} }

// Read parses an AIGER stream (binary "aig" or ASCII "aag", auto-detected).
func Read(r io.Reader) (*Network, error) {
	a, err := aiger.Read(r)
	if err != nil {
		return nil, err
	}
	return &Network{aig: a.Rehash()}, nil
}

// ReadFile reads an AIGER file.
func ReadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if n.aig.Name == "" {
		n.aig.Name = strings.TrimSuffix(strings.TrimSuffix(path, ".aig"), ".aag")
	}
	return n, nil
}

// Write emits the network in binary AIGER.
func (n *Network) Write(w io.Writer) error { return aiger.WriteBinary(w, n.aig) }

// WriteASCII emits the network in ASCII AIGER ("aag").
func (n *Network) WriteASCII(w io.Writer) error { return aiger.WriteASCII(w, n.aig) }

// WriteFile writes the network to a file, choosing the format from the
// extension (".aag" = ASCII, anything else binary).
func (n *Network) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".aag") {
		return n.WriteASCII(f)
	}
	return n.Write(f)
}

func (o Options) device() *gpu.Device {
	d := gpu.New(o.Workers)
	if len(o.FaultPlans) > 0 {
		d.InjectFaults(o.FaultPlans...)
	}
	return d
}

func (o Options) passes() int {
	if o.Passes <= 0 {
		return 1
	}
	return o.Passes
}

// rcache resolves the internal cache behind Options.Cache (nil = the
// process-wide default).
func (o Options) rcache() *rcache.Cache {
	if o.Cache != nil {
		return o.Cache.c
	}
	return rcache.Default
}

// flowConfig maps the engine parameters onto a flow.Config (no device: Run
// attaches one for whole-network parallel scripts, partition jobs lease
// device capacity from their pool).
func (o Options) flowConfig() flow.Config {
	return flow.Config{
		Parallel:   o.Parallel,
		MaxCut:     o.MaxCut,
		RwzPasses:  o.RwzPasses,
		RfPasses:   o.Passes,
		ZeroGain:   o.ZeroGain,
		Verify:     o.Verify,
		GateRounds: o.GateRounds,
		Cache:      o.rcache(),
	}
}

// algo describes one single-algorithm entry point for runAlgo: the two
// engines, the pass count, and whether parallel mode appends the Section
// III-F cleanup pass. A nil sequential engine means the algorithm always
// runs on the device (Dedup).
type algo struct {
	parallel   func(d *gpu.Device, a *aig.AIG) *aig.AIG
	sequential func(a *aig.AIG) *aig.AIG
	passes     int
	cleanup    bool
}

// runAlgo is the shared body of Balance, Refactor, Rewrite, Resub, and
// Dedup: device wiring, pass repetition, the parallel cleanup pass, and
// wall/modeled/profile result assembly live here once.
//
// Engine failures are propagated, not swallowed: a kernel abort (surfacing
// as a *gpu.LaunchError panic from the unguarded engines) is returned as an
// error alongside the partial Result, and ctx cancellation — checked
// between passes and, on the device, at every kernel-launch boundary —
// returns ctx.Err() wrapped in the partial Result. Unlike Run, these
// single-algorithm entry points have no checkpoint/rollback/retry layer;
// use Run for guarded execution.
func (n *Network) runAlgo(ctx context.Context, opts Options, al algo) (res Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	parallel := opts.Parallel || al.sequential == nil
	var d *gpu.Device
	if parallel {
		d = opts.device()
		d.Bind(ctx)
	}
	cur := n.aig
	cacheBefore := opts.rcache().Snapshot()
	finish := func(e error) (Result, error) {
		wall := time.Since(start)
		r := Result{AIG: &Network{aig: cur}, Wall: wall, Modeled: wall}
		if parallel {
			r.Modeled = d.Stats().ModeledTime
			r.Profile = d.Profile()
		}
		r.CacheStats = cacheStatsOf(opts.rcache().Snapshot().Sub(cacheBefore))
		return r, e
	}
	defer func() {
		if r := recover(); r != nil {
			e := engineError(r)
			if e == nil {
				panic(r) // not an engine failure: a bug, don't mask it
			}
			res, err = finish(e)
		}
	}()
	passes := al.passes
	if passes <= 0 {
		passes = 1
	}
	for p := 0; p < passes; p++ {
		if cerr := ctx.Err(); cerr != nil {
			return finish(fmt.Errorf("aigre: cancelled after %d of %d passes: %w", p, passes, cerr))
		}
		if parallel {
			cur = al.parallel(d, cur)
		} else {
			cur = al.sequential(cur)
		}
	}
	if parallel && al.cleanup {
		cur, _ = dedup.Run(d, cur)
	}
	return finish(nil)
}

// engineError classifies a panic recovered from an engine call: typed
// kernel failures and launch cancellations become error returns; anything
// else yields nil so the caller re-panics.
func engineError(r any) error {
	e, ok := r.(error)
	if !ok {
		return nil
	}
	var le *gpu.LaunchError
	var ce *gpu.CancelledError
	if errors.As(e, &le) || errors.As(e, &ce) {
		return e
	}
	return nil
}

// Balance runs AND-balancing (delay optimization, Section IV).
func (n *Network) Balance(ctx context.Context, opts Options) (Result, error) {
	return n.runAlgo(ctx, opts, algo{
		parallel:   func(d *gpu.Device, a *aig.AIG) *aig.AIG { out, _ := balance.Parallel(d, a); return out },
		sequential: func(a *aig.AIG) *aig.AIG { out, _ := balance.Sequential(a); return out },
	})
}

// Refactor runs refactoring (Section III). In parallel mode the cleanup
// pass (Section III-F) is included.
func (n *Network) Refactor(ctx context.Context, opts Options) (Result, error) {
	return n.runAlgo(ctx, opts, algo{
		parallel: func(d *gpu.Device, a *aig.AIG) *aig.AIG {
			out, _ := refactor.Parallel(d, a, refactor.Options{MaxCut: opts.MaxCut, Cache: opts.rcache()})
			return out
		},
		sequential: func(a *aig.AIG) *aig.AIG {
			out, _ := refactor.Sequential(a, refactor.Options{MaxCut: opts.MaxCut, ZeroGain: opts.ZeroGain, Cache: opts.rcache()})
			return out
		},
		passes:  opts.passes(),
		cleanup: true,
	})
}

// Rewrite runs rewriting. In parallel mode this follows [9] (parallel
// evaluation, sequential replacement) plus the cleanup pass.
func (n *Network) Rewrite(ctx context.Context, opts Options) (Result, error) {
	return n.runAlgo(ctx, opts, algo{
		parallel: func(d *gpu.Device, a *aig.AIG) *aig.AIG {
			out, _ := rewrite.Parallel(d, a, rewrite.Options{ZeroGain: opts.ZeroGain, Cache: opts.rcache()})
			return out
		},
		sequential: func(a *aig.AIG) *aig.AIG {
			out, _ := rewrite.Sequential(a, rewrite.Options{ZeroGain: opts.ZeroGain, Cache: opts.rcache()})
			return out
		},
		passes:  opts.passes(),
		cleanup: true,
	})
}

// Resub runs resubstitution (the paper's future-work algorithm): nodes are
// re-expressed as functions of existing divisors. In parallel mode the
// divisor search for all nodes runs on the device.
func (n *Network) Resub(ctx context.Context, opts Options) (Result, error) {
	return n.runAlgo(ctx, opts, algo{
		parallel: func(d *gpu.Device, a *aig.AIG) *aig.AIG {
			out, _ := resub.Parallel(d, a, resub.Options{})
			return out
		},
		sequential: func(a *aig.AIG) *aig.AIG {
			out, _ := resub.Sequential(a, resub.Options{})
			return out
		},
		passes:  opts.passes(),
		cleanup: true,
	})
}

// Dedup runs the de-duplication and dangling-node cleanup pass alone. It
// always executes on the device (the pass has no sequential variant).
func (n *Network) Dedup(ctx context.Context, opts Options) (Result, error) {
	return n.runAlgo(ctx, opts, algo{
		parallel: func(d *gpu.Device, a *aig.AIG) *aig.AIG { out, _ := dedup.Run(d, a); return out },
	})
}

// Run executes a command script such as "b; rw; rfz" (see package flow for
// the vocabulary) under the guarded runner: every command is checkpointed,
// validated, and degraded on failure (Result.Incidents lists containments).
//
// Cancelling ctx aborts the script between kernel launches and commands;
// the partial Result (network and timings after the last completed command)
// is returned together with an error wrapping ctx.Err().
func (n *Network) Run(ctx context.Context, script string, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Partition.Mode != PartitionOff {
		return n.runPartitioned(ctx, script, opts)
	}
	cfg := opts.flowConfig()
	if opts.Parallel {
		cfg.Device = opts.device()
	}
	start := time.Now()
	res, err := flow.Run(ctx, n.aig, script, cfg)
	out := Result{
		Wall:       time.Since(start),
		Modeled:    res.TotalModeled,
		Timings:    res.Timings,
		Incidents:  res.Incidents,
		CacheStats: cacheStatsOf(res.CacheStats),
	}
	if res.AIG != nil {
		out.AIG = &Network{aig: res.AIG}
	}
	if cfg.Device != nil {
		out.Profile = cfg.Device.Profile()
	}
	return out, err
}

// Resyn2 runs the resyn2 sequence (b; rw; rf; b; rw; rwz; b; rfz; rwz; b).
// In parallel mode rwz runs two rewriting passes, matching the paper.
func (n *Network) Resyn2(ctx context.Context, opts Options) (Result, error) {
	if opts.RwzPasses == 0 {
		opts.RwzPasses = 2
	}
	return n.Run(ctx, flow.Resyn2, opts)
}

// RfResyn runs the paper's rf_resyn sequence (b; rf; rfz; b; rfz; b).
func (n *Network) RfResyn(ctx context.Context, opts Options) (Result, error) {
	return n.Run(ctx, flow.RfResyn, opts)
}

// CompressRS runs a compress2rs-style sequence that interleaves
// resubstitution with balancing, rewriting and refactoring.
func (n *Network) CompressRS(ctx context.Context, opts Options) (Result, error) {
	return n.Run(ctx, flow.CompressRS, opts)
}

// EquivalentTo checks combinational equivalence against another network
// (random + exhaustive simulation, then SAT).
func (n *Network) EquivalentTo(other *Network) (bool, error) {
	res, err := cec.Check(n.aig, other.aig, cec.Options{})
	if err != nil {
		return false, err
	}
	return res.Equivalent, nil
}
