package aigre_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"aigre"
	"aigre/internal/bench"
	"aigre/internal/sched"
)

// TestEngineSubmitMatchesRunBatch checks the serve-mode path: jobs submitted
// one at a time to an open Engine produce the same networks as the same jobs
// run through RunBatch.
func TestEngineSubmitMatchesRunBatch(t *testing.T) {
	nets := []*aigre.Network{
		aigre.FromInternal(bench.Multiplier(6)),
		aigre.FromInternal(bench.Voter(4)),
		aigre.FromInternal(bench.Adder(12)),
	}
	opts := aigre.Options{Parallel: true}
	jobs := make([]aigre.Batch, len(nets))
	for i, n := range nets {
		jobs[i] = aigre.Batch{AIG: n, Script: aigre.ScriptRfResyn, Options: opts}
	}
	want, _, err := aigre.RunBatch(context.Background(), jobs, aigre.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	e, err := aigre.NewEngine(context.Background(), aigre.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tickets := make([]*aigre.JobTicket, len(jobs))
	for i, b := range jobs {
		tk, err := e.Submit(context.Background(), b)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		r := tk.Wait()
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Name, r.Err)
		}
		if got, w := r.AIG.Stats().Nodes, want[i].AIG.Stats().Nodes; got != w {
			t.Errorf("job %d (%s): %d nodes via Engine, %d via RunBatch", i, r.Name, got, w)
		}
		if r.NodesBefore != want[i].NodesBefore || r.NodesAfter != want[i].NodesAfter {
			t.Errorf("job %d: bookkeeping %d->%d vs %d->%d", i,
				r.NodesBefore, r.NodesAfter, want[i].NodesBefore, want[i].NodesAfter)
		}
	}
	m := e.Metrics()
	if m.Finished != len(jobs) || m.Failed != 0 {
		t.Errorf("metrics %+v, want %d finished", m, len(jobs))
	}
}

// TestEngineSubmitValidates checks that malformed jobs are rejected at
// submission, before anything runs.
func TestEngineSubmitValidates(t *testing.T) {
	e, err := aigre.NewEngine(context.Background(), aigre.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Submit(context.Background(), aigre.Batch{Name: "n", Script: "b"}); err == nil {
		t.Error("nil network accepted")
	}
	n := aigre.FromInternal(bench.Adder(8))
	if _, err := e.Submit(context.Background(), aigre.Batch{AIG: n, Script: "b; zz"}); err == nil {
		t.Error("unparsable script accepted")
	}
	if _, err := e.Submit(context.Background(), aigre.Batch{AIG: n, Script: "b",
		Options: aigre.Options{Partition: aigre.PartitionOptions{Mode: aigre.PartitionMode(99)}}}); err == nil {
		t.Error("unknown partition mode accepted")
	}
	if m := e.Metrics(); m.Finished+m.Failed+m.Cancelled != 0 {
		t.Errorf("rejected submissions ran something: %+v", m)
	}
}

// TestEngineShutdownDrains checks the public drain contract: queued jobs
// resolve with sched.ErrDrained and are never run, and Submit afterwards
// fails with sched.ErrClosed.
func TestEngineShutdownDrains(t *testing.T) {
	e, err := aigre.NewEngine(context.Background(), aigre.BatchOptions{
		Workers: 1, MaxConcurrentJobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// A moderately-sized resyn2 keeps the single job slot busy long enough
	// for the queued job to still be waiting when Shutdown fires.
	busy := aigre.Batch{Name: "busy", AIG: aigre.FromInternal(bench.Multiplier(8)),
		Script: aigre.ScriptResyn2, Options: aigre.Options{Parallel: true}}
	queued := aigre.Batch{Name: "waiting", AIG: aigre.FromInternal(bench.Adder(8)), Script: "b"}
	bt, err := e.Submit(context.Background(), busy)
	if err != nil {
		t.Fatal(err)
	}
	qt, err := e.Submit(context.Background(), queued)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the busy job to leave the queue (start running) so exactly
	// one job is still waiting when the drain fires.
	for deadline := time.Now().Add(10 * time.Second); e.Queued() > 1; {
		if time.Now().After(deadline) {
			t.Fatal("busy job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dropped, ok := e.Shutdown(ctx)
	if dropped != 1 || !ok {
		t.Fatalf("Shutdown = (%d, %v), want (1, true)", dropped, ok)
	}
	if r := bt.Wait(); r.Err != nil {
		t.Fatalf("in-flight job: %v", r.Err)
	}
	r := qt.Wait()
	if !errors.Is(r.Err, sched.ErrDrained) || !r.Cancelled {
		t.Fatalf("queued job: err=%v cancelled=%v, want ErrDrained", r.Err, r.Cancelled)
	}
	if _, err := e.Submit(context.Background(), queued); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("Submit after Shutdown: %v, want ErrClosed", err)
	}
}

// TestEngineOnEvent checks the live supervision stream: with no journal
// file configured, BatchOptions.OnEvent still receives the attempt and
// outcome events of every submitted job, in order, keyed by Batch.Name.
func TestEngineOnEvent(t *testing.T) {
	var mu sync.Mutex
	var events []aigre.JobEvent
	e, err := aigre.NewEngine(context.Background(), aigre.BatchOptions{
		Workers: 2,
		OnEvent: func(ev aigre.JobEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := e.Submit(context.Background(), aigre.Batch{
		Name: "evjob", AIG: aigre.FromInternal(bench.Adder(8)), Script: "b; rw",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := tk.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	e.Close()

	mu.Lock()
	defer mu.Unlock()
	var kinds []string
	for _, ev := range events {
		if ev.Job != "evjob" {
			t.Fatalf("event for unexpected job %q: %+v", ev.Job, ev)
		}
		kinds = append(kinds, ev.Event)
	}
	if len(kinds) < 2 || kinds[0] != "attempt" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("event stream %v, want attempt ... done", kinds)
	}
}
