package aigre

import (
	"context"
	"fmt"
	"time"

	"aigre/internal/partition"
)

// PartitionMode selects how Run splits a network for partition-parallel
// optimization. The zero value PartitionOff runs the script whole-network.
type PartitionMode int

const (
	// PartitionOff disables partitioning (the default).
	PartitionOff PartitionMode = iota
	// PartitionCones clusters primary-output fanin cones into size-bounded
	// partitions, closed under fanin (their only inputs are PIs). Logic
	// shared between clusters is duplicated into each; the stitcher merges
	// the copies back by re-strashing. Best for wide many-output designs and
	// for deep, narrow designs that starve kernel-level parallelism.
	PartitionCones
	// PartitionLevels slices the network into contiguous level windows with
	// no duplication; a window's inputs are PIs and lower-window nodes. Works
	// on single-output designs where cone clustering cannot split.
	PartitionLevels
)

func (m PartitionMode) String() string {
	switch m {
	case PartitionOff:
		return "off"
	case PartitionCones:
		return "cones"
	case PartitionLevels:
		return "levels"
	}
	return fmt.Sprintf("PartitionMode(%d)", int(m))
}

// ParsePartitionMode parses "off", "cones", or "levels".
func ParsePartitionMode(s string) (PartitionMode, error) {
	switch s {
	case "off", "":
		return PartitionOff, nil
	case "cones":
		return PartitionCones, nil
	case "levels":
		return PartitionLevels, nil
	}
	return PartitionOff, fmt.Errorf("aigre: unknown partition mode %q (want off, cones, or levels)", s)
}

// internal maps the public mode onto the partition package's enum.
func (m PartitionMode) internal() (partition.Mode, error) {
	switch m {
	case PartitionCones:
		return partition.Cones, nil
	case PartitionLevels:
		return partition.Levels, nil
	}
	return 0, fmt.Errorf("aigre: partition mode %v is not a partitioning strategy", m)
}

// PartitionOptions configures partition-parallel script runs (see
// Options.Partition).
type PartitionOptions struct {
	// Mode selects the partitioning strategy; PartitionOff (the zero value)
	// runs the script whole-network.
	Mode PartitionMode
	// TargetSize is the partition size bound in AND nodes (0 = 100000). A
	// single output cone larger than the bound still becomes one partition.
	TargetSize int
	// MaxConflictRounds bounds the stitch/rollback loop: each round that the
	// merged network fails the seam equivalence gate rolls back at least one
	// refuted partition and re-stitches; past the bound every remaining
	// optimized partition is rolled back at once (0 = 2).
	MaxConflictRounds int
}

// PartitionStat reports one partition of a partition-parallel run.
type PartitionStat struct {
	Index int `json:"index"`
	// POs is the number of primary outputs the partition drives (cones
	// mode); LevelLo/LevelHi is the level range (levels mode).
	POs     int `json:"pos,omitempty"`
	LevelLo int `json:"level_lo,omitempty"`
	LevelHi int `json:"level_hi,omitempty"`
	// NodesIn and NodesOut count the partition's AND nodes before
	// optimization and as finally stitched (after any rollback).
	NodesIn  int `json:"nodes_in"`
	NodesOut int `json:"nodes_out"`
	// ConflictsBroken counts seam conflicts broken while replaying this
	// partition into the merged network: nodes merged with duplicates another
	// partition already created, or simplified away at the boundary.
	ConflictsBroken int `json:"conflicts_broken"`
	// RolledBack reports that the optimized cone was discarded and the
	// pre-optimization cone stitched instead; Note carries the reason.
	RolledBack bool   `json:"rolled_back,omitempty"`
	Note       string `json:"note,omitempty"`
	// QueuedNS and WallNS are the partition job's scheduling delay and host
	// run time; Incidents counts contained failures inside the job.
	QueuedNS  time.Duration `json:"queued_ns"`
	WallNS    time.Duration `json:"wall_ns"`
	Incidents int           `json:"incidents,omitempty"`
}

// PartitionReport summarizes a partition-parallel run (Result.Partition).
type PartitionReport struct {
	// Mode is the partitioning strategy that ran ("cones" or "levels").
	Mode string `json:"mode"`
	// Parts holds one row per partition.
	Parts []PartitionStat `json:"partitions"`
	// NodesIn/NodesOut are whole-network AND counts before and after.
	NodesIn  int `json:"nodes_in"`
	NodesOut int `json:"nodes_out"`
	// SharedNodes is the duplication cost of the split: the sum of partition
	// sizes minus the live network size (cones mode duplicates logic shared
	// between clusters; levels mode never duplicates).
	SharedNodes int `json:"shared_nodes"`
	// ConflictsFound counts seam conflicts detected across every stitch
	// round; ConflictsBroken those resolved in the final accepted stitch.
	ConflictsFound  int `json:"conflicts_found"`
	ConflictsBroken int `json:"conflicts_broken"`
	// Rollbacks counts partitions whose optimized cone was discarded.
	Rollbacks int `json:"rollbacks"`
	// StitchRounds is the number of stitch attempts (1 = no seam refutation).
	StitchRounds int `json:"stitch_rounds"`
}

func partitionReportOf(r *partition.Result) *PartitionReport {
	rep := &PartitionReport{
		Mode:            r.Mode.String(),
		NodesIn:         r.NodesIn,
		NodesOut:        r.NodesOut,
		SharedNodes:     r.SharedNodes,
		ConflictsFound:  r.ConflictsFound,
		ConflictsBroken: r.ConflictsBroken,
		Rollbacks:       r.Rollbacks,
		StitchRounds:    r.StitchRounds,
	}
	rep.Parts = make([]PartitionStat, len(r.Parts))
	for i, p := range r.Parts {
		rep.Parts[i] = PartitionStat{
			Index:           p.Index,
			POs:             p.POs,
			LevelLo:         p.LevelLo,
			LevelHi:         p.LevelHi,
			NodesIn:         p.NodesIn,
			NodesOut:        p.NodesOut,
			ConflictsBroken: p.Conflicts,
			RolledBack:      p.RolledBack,
			Note:            p.Note,
			QueuedNS:        p.Queued,
			WallNS:          p.Wall,
			Incidents:       p.Incidents,
		}
	}
	return rep
}

// partitionOptions maps Options onto the partition engine's configuration.
func (o Options) partitionOptions(mode partition.Mode) partition.Options {
	return partition.Options{
		Mode:              mode,
		TargetSize:        o.Partition.TargetSize,
		MaxConflictRounds: o.Partition.MaxConflictRounds,
		Workers:           o.Workers,
		Flow:              o.flowConfig(),
	}
}

// runPartitioned is the Options.Partition path of Network.Run: split,
// optimize every partition as a prioritized job over a bounded worker pool,
// stitch with seam conflict breaking, and report per-partition statistics.
func (n *Network) runPartitioned(ctx context.Context, script string, opts Options) (Result, error) {
	mode, err := opts.Partition.Mode.internal()
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	pres, perr := partition.Run(ctx, n.aig, script, opts.partitionOptions(mode))
	out := Result{
		Wall:       time.Since(start),
		Modeled:    pres.Modeled,
		Incidents:  pres.Incidents,
		CacheStats: cacheStatsOf(pres.CacheStats),
	}
	if pres.AIG != nil {
		out.AIG = &Network{aig: pres.AIG}
		out.Partition = partitionReportOf(&pres)
	}
	return out, perr
}
