package aigre

import (
	"context"
	"fmt"
	"io"
	"sync"

	"aigre/internal/flow"
	"aigre/internal/journal"
	"aigre/internal/partition"
	"aigre/internal/sched"
)

// Engine is the serve-mode counterpart of RunBatch: a long-lived fleet that
// accepts jobs one at a time instead of as a fixed slice. Jobs share one
// bounded worker budget, one supervision policy, and (optionally) one
// resynthesis cache and journal, exactly as a batch would. RunBatch itself
// runs on an Engine; daemons such as cmd/aigred keep one open across many
// submissions.
type Engine struct {
	opts BatchOptions
	pool *sched.Pool
	eng  *sched.Engine
	jour *journal.Journal

	mu           sync.Mutex
	n            int // submissions, offsets per-job retry-jitter seeds
	sharedBefore CacheStats
}

// JobTicket is the handle Engine.Submit returns; Wait blocks for the job's
// BatchResult.
type JobTicket struct {
	st *sched.Ticket
	// partition is written by the job's partition runner before the ticket
	// resolves (nil for unpartitioned jobs).
	partition *PartitionReport
}

// Wait blocks until the job finishes and returns its result.
func (t *JobTicket) Wait() BatchResult {
	r := t.st.Wait()
	return batchResultOf(r, t.partition)
}

// Done is closed when the job has finished.
func (t *JobTicket) Done() <-chan struct{} { return t.st.Done() }

// NewEngine starts a serve-mode engine configured like a RunBatch call.
// ctx, when non-nil, cancels every job (queued and running) engine-wide when
// it is done. The engine holds opts.Workers pool workers until Close.
func NewEngine(ctx context.Context, opts BatchOptions) (*Engine, error) {
	var jour *journal.Journal
	if opts.JournalPath != "" {
		var err error
		jour, err = journal.Create(opts.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("aigre: %w", err)
		}
	} else if opts.OnEvent != nil {
		// No journal file wanted, but the live stream still needs the
		// supervisor to emit entries somewhere observable.
		jour = journal.New(io.Discard)
	}
	if opts.OnEvent != nil {
		fn := opts.OnEvent
		jour.Observe(func(e journal.Entry) {
			fn(JobEvent{Job: e.Job, Attempt: e.Attempt, Event: e.Event,
				Class: e.Class, Detail: e.Detail, Backoff: e.Backoff, Time: e.Time})
		})
	}
	e := &Engine{opts: opts, jour: jour}
	if opts.SharedCache != nil {
		e.sharedBefore = opts.SharedCache.Stats()
	}
	e.pool = sched.NewPool(opts.Workers)
	e.eng = sched.NewEngine(ctx, e.pool, sched.Options{
		MaxConcurrentJobs: opts.MaxConcurrentJobs,
		Policy:            opts.Policy.internal(),
		Journal:           jour,
	})
	return e, nil
}

// check validates a job the way RunBatch's up-front pass does, returning the
// bare defect so callers can prefix their own context.
func (b Batch) check() error {
	if b.AIG == nil {
		return fmt.Errorf("has no network")
	}
	if _, err := flow.Parse(b.Script); err != nil {
		return err
	}
	if b.Options.Partition.Mode != PartitionOff {
		if _, err := b.Options.Partition.Mode.internal(); err != nil {
			return err
		}
	}
	return nil
}

// Submit admits one job to the engine. ctx, when non-nil, cancels this job
// alone. The call validates the job (nil network, unparsable script,
// unknown partition mode) before admitting it; after Shutdown or Close it
// returns sched.ErrClosed.
func (e *Engine) Submit(ctx context.Context, b Batch) (*JobTicket, error) {
	if err := b.check(); err != nil {
		return nil, fmt.Errorf("aigre: job %q: %w", b.Name, err)
	}
	e.mu.Lock()
	seq := e.n
	e.n++
	e.mu.Unlock()
	t := &JobTicket{}
	sj := e.convert(b, int64(seq), &t.partition)
	st, err := e.eng.Submit(ctx, sj)
	if err != nil {
		return nil, err
	}
	t.st = st
	return t, nil
}

// Shutdown is the graceful drain: it stops admission, withdraws jobs still
// waiting in the queue without running them — their tickets resolve
// Cancelled with sched.ErrDrained, so a durable queue can checkpoint them —
// and waits until ctx is done for the in-flight jobs to finish. It returns
// how many queued jobs were dropped and whether every in-flight job beat the
// deadline; on ok == false cancel the engine-wide context and Close to reap
// the stragglers.
func (e *Engine) Shutdown(ctx context.Context) (dropped int, ok bool) {
	return e.eng.Shutdown(ctx)
}

// Close stops admission, runs the remaining queue to completion, waits for
// every job, and releases the pool and journal. Use Shutdown first for a
// drain that does not run the backlog.
func (e *Engine) Close() {
	e.eng.Close()
	e.pool.Close()
	e.jour.Close()
}

// Metrics snapshots the fleet statistics accumulated since NewEngine,
// including the shared-cache traffic delta when BatchOptions.SharedCache
// was set.
func (e *Engine) Metrics() BatchMetrics {
	m := e.eng.Metrics()
	bm := BatchMetrics{
		Workers:        m.Workers,
		Finished:       m.Finished,
		Failed:         m.Failed,
		Cancelled:      m.Cancelled,
		TimedOut:       m.TimedOut,
		Quarantined:    m.Quarantined,
		Retries:        m.Retries,
		PeakWorkers:    m.PeakWorkers,
		PeakQueueDepth: m.PeakQueueDepth,
		Wall:           m.Wall,
		JobWall:        m.JobWall,
		Modeled:        m.Modeled,
		Utilization:    m.Utilization(),
	}
	if e.opts.SharedCache != nil {
		after := e.opts.SharedCache.Stats()
		bm.CacheStats = CacheStats{
			Hits:      after.Hits - e.sharedBefore.Hits,
			Misses:    after.Misses - e.sharedBefore.Misses,
			Evictions: after.Evictions - e.sharedBefore.Evictions,
			NpnHits:   after.NpnHits - e.sharedBefore.NpnHits,
			NpnMisses: after.NpnMisses - e.sharedBefore.NpnMisses,
			Entries:   after.Entries,
		}
	}
	return bm
}

// convert builds the sched job for b: engine options merged with the batch's
// shared cache, and — for partitioned jobs — a custom runner that fans the
// partitions onto the engine's shared pool under a retry budget shared with
// the job's own supervised attempts. seq offsets the retry-jitter seed;
// *prp receives the partition report before the job's ticket resolves.
// The caller has already validated b, so the partition mode parses.
func (e *Engine) convert(b Batch, seq int64, prp **PartitionReport) sched.Job {
	o := b.Options
	if o.RwzPasses == 0 && b.Script == flow.Resyn2 {
		o.RwzPasses = 2 // match Resyn2's paper default
	}
	if e.opts.SharedCache != nil {
		o.Cache = e.opts.SharedCache
	}
	sj := sched.Job{
		Name:       b.Name,
		AIG:        b.AIG.aig,
		Script:     b.Script,
		Priority:   b.Priority,
		Workers:    b.Workers,
		Config:     o.flowConfig(),
		FaultPlans: o.FaultPlans,
	}
	if o.Partition.Mode == PartitionOff {
		return sj
	}
	// A partitioned job fans its partitions onto the engine's shared pool
	// via the custom-runner hook, so the whole fleet still respects one
	// worker budget.
	mode, _ := o.Partition.Mode.internal()
	pol := e.opts.Policy.internal()
	in, script, popts := b.AIG.aig, b.Script, o.partitionOptions(mode)
	popts.Workers = b.Workers
	popts.Journal = e.jour
	if pol.Retries > 0 {
		// One budget shared between the job's outer attempts and its
		// per-partition jobs: however the faults land, the job's total
		// retry allowance stays bounded at Policy.Retries.
		budget := sched.NewRetryBudget(pol.Retries)
		jobPol := pol
		jobPol.Budget = budget
		sj.Policy = &jobPol
		popts.Supervise = sched.Policy{
			Retries:    pol.Retries,
			Budget:     budget,
			Backoff:    pol.Backoff,
			MaxBackoff: pol.MaxBackoff,
			Seed:       pol.Seed + seq,
		}
	}
	sj.Custom = func(ctx context.Context, pool *sched.Pool) (flow.Result, error) {
		popts.Pool = pool
		pres, err := partition.Run(ctx, in, script, popts)
		*prp = partitionReportOf(&pres)
		return flow.Result{
			AIG:          pres.AIG,
			TotalWall:    pres.Wall,
			TotalModeled: pres.Modeled,
			Incidents:    pres.Incidents,
			CacheStats:   pres.CacheStats,
		}, err
	}
	return sj
}

// batchResultOf converts a sched result (plus the job's partition report,
// if any) to the public shape.
func batchResultOf(r sched.Result, pr *PartitionReport) BatchResult {
	br := BatchResult{
		Name: r.Name, Script: r.Script,
		Err: r.Err, Cancelled: r.Cancelled,
		TimedOut: r.TimedOut, Quarantined: r.Quarantined,
		Attempts: r.Attempts, Preemptions: r.Preemptions,
		Queued: r.Queued, Wall: r.Wall, Modeled: r.Modeled,
		NodesBefore: r.NodesBefore, LevelsBefore: r.LevelsBefore,
		NodesAfter: r.NodesAfter, LevelsAfter: r.LevelsAfter,
		Timings: r.Timings, Incidents: r.Incidents,
		Profile:    r.Profile,
		CacheStats: cacheStatsOf(r.CacheStats),
		Partition:  pr,
	}
	if r.AIG != nil {
		br.AIG = &Network{aig: r.AIG}
	}
	return br
}

// Queued reports the current admission-queue depth (jobs submitted but not
// yet started).
func (e *Engine) Queued() int { return e.eng.Metrics().QueueDepth }
