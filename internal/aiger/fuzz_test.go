package aiger

import (
	"bytes"
	"math/rand"
	"testing"

	"aigre/internal/aig"
)

// FuzzParse pins the hardening contract of Read: arbitrary bytes must never
// panic, and any input Read accepts must be a structurally valid AIG that
// round-trips through the ASCII writer unchanged.
func FuzzParse(f *testing.F) {
	// Seed with real circuits in both formats (the repository ships no .aag
	// files; examples/ builds its networks programmatically, so we do too).
	for _, nodes := range []int{0, 5, 40} {
		rng := rand.New(rand.NewSource(int64(nodes) + 1))
		a := aig.Random(rng, 4, nodes, 3)
		var ascii, binary bytes.Buffer
		if err := WriteASCII(&ascii, a); err != nil {
			f.Fatal(err)
		}
		if err := WriteBinary(&binary, a); err != nil {
			f.Fatal(err)
		}
		f.Add(ascii.Bytes())
		f.Add(binary.Bytes())
	}
	// Degenerate and hostile shapes: truncated bodies, huge headers,
	// non-canonical orders, bad magic.
	f.Add([]byte("aag 0 0 0 0 0\n"))
	f.Add([]byte("aag 1 1 0 1 0\n2\n2\n"))
	f.Add([]byte("aig 2 1 0 1 1\n4\n\x02\x02"))
	f.Add([]byte("aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n"))
	f.Add([]byte("aag 99999999 99999999 0 0 0\n"))
	f.Add([]byte("aig 2 1 0 1 1\n4\n\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("not-aiger at all"))
	// Newline-free streams: the header (and every later line) is read with a
	// bounded line reader, so these must fail fast instead of buffering the
	// whole stream while searching for '\n'.
	f.Add(bytes.Repeat([]byte("9"), 1<<17))
	f.Add(append([]byte("aag 1 1 0 1 0\n2\n"), bytes.Repeat([]byte("1"), 1<<17)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := aig.Check(a); err != nil {
			t.Fatalf("accepted AIG violates invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteASCII(&buf, a); err != nil {
			t.Fatalf("accepted AIG does not serialize: %v", err)
		}
		b, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if b.NumPIs() != a.NumPIs() || b.NumPOs() != a.NumPOs() || b.NumAnds() != a.NumAnds() {
			t.Fatalf("round-trip changed shape: %d/%d/%d -> %d/%d/%d",
				a.NumPIs(), a.NumPOs(), a.NumAnds(), b.NumPIs(), b.NumPOs(), b.NumAnds())
		}
	})
}
