package aiger

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
)

func TestReadASCIIBasic(t *testing.T) {
	// Half adder: sum = a^b, carry = a&b.
	src := `aag 5 2 0 2 3
2
4
10
6
6 2 4
8 3 5
10 7 9
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPIs() != 2 || a.NumPOs() != 2 || a.NumAnds() != 3 {
		t.Fatalf("stats = %v", a.Stats())
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 != 0, v&2 != 0}
		out := a.EvalOnce(in)
		if out[0] != (in[0] != in[1]) {
			t.Errorf("sum(%v) = %v", in, out[0])
		}
		if out[1] != (in[0] && in[1]) {
			t.Errorf("carry(%v) = %v", in, out[1])
		}
	}
}

func TestReadRejectsLatches(t *testing.T) {
	_, err := Read(strings.NewReader("aag 1 0 1 0 0\n2 3\n"))
	if err == nil || !strings.Contains(err.Error(), "latches") {
		t.Errorf("want latch error, got %v", err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"bogus 1 2 3 4 5\n",
		"aag 1 2\n",
		"aag 2 1 0 0 2\n",       // M != I+A
		"aag 1 1 0 1 0\n4\n9\n", // out literal out of range... header says M=1 so max lit=3
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}

func roundTrip(t *testing.T, a *aig.AIG, binary bool) *aig.AIG {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if binary {
		err = WriteBinary(&buf, a)
	} else {
		err = WriteASCII(&buf, a)
	}
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	return b
}

func simEqual(a, b *aig.AIG, seed int64) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		ins[i] = []uint64{rng.Uint64(), rng.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

func TestQuickRoundTripASCII(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 5, 60, 4)
		b := roundTrip(t, a, false)
		return simEqual(a, b, seed) && a.NumAnds() == b.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripBinary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 100, 3)
		b := roundTrip(t, a, true)
		return simEqual(a, b, seed) && a.NumAnds() == b.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWriteCompactsNonCanonical(t *testing.T) {
	a := aig.New(2)
	a.EnableStrash()
	keep := a.NewAnd(a.PI(0), a.PI(1))
	a.NewAnd(a.PI(0), a.PI(1).Not()) // dangling
	a.AddPO(keep)
	a.EnableFanouts()
	a.SweepDangling()
	b := roundTrip(t, a, true)
	if b.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", b.NumAnds())
	}
	if !simEqual(a, b, 11) {
		t.Errorf("function changed")
	}
}

func TestBinaryDeltaEncoding(t *testing.T) {
	for _, d := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 28} {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeDelta(bw, d); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := readDelta(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("delta %d: %v", d, err)
		}
		if got != d {
			t.Errorf("delta %d round-tripped to %d", d, got)
		}
	}
}
