package aiger

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
)

func TestReadASCIIBasic(t *testing.T) {
	// Half adder: sum = a^b, carry = a&b.
	src := `aag 5 2 0 2 3
2
4
10
6
6 2 4
8 3 5
10 7 9
`
	a, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPIs() != 2 || a.NumPOs() != 2 || a.NumAnds() != 3 {
		t.Fatalf("stats = %v", a.Stats())
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 != 0, v&2 != 0}
		out := a.EvalOnce(in)
		if out[0] != (in[0] != in[1]) {
			t.Errorf("sum(%v) = %v", in, out[0])
		}
		if out[1] != (in[0] && in[1]) {
			t.Errorf("carry(%v) = %v", in, out[1])
		}
	}
}

func TestReadRejectsLatches(t *testing.T) {
	_, err := Read(strings.NewReader("aag 1 0 1 0 0\n2 3\n"))
	if err == nil || !strings.Contains(err.Error(), "latches") {
		t.Errorf("want latch error, got %v", err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"bogus 1 2 3 4 5\n",
		"aag 1 2\n",
		"aag 2 1 0 0 2\n",       // M != I+A
		"aag 1 1 0 1 0\n4\n9\n", // out literal out of range... header says M=1 so max lit=3
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}

func roundTrip(t *testing.T, a *aig.AIG, binary bool) *aig.AIG {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if binary {
		err = WriteBinary(&buf, a)
	} else {
		err = WriteASCII(&buf, a)
	}
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	return b
}

func simEqual(a, b *aig.AIG, seed int64) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	rng := rand.New(rand.NewSource(seed))
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		ins[i] = []uint64{rng.Uint64(), rng.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

func TestQuickRoundTripASCII(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 5, 60, 4)
		b := roundTrip(t, a, false)
		return simEqual(a, b, seed) && a.NumAnds() == b.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripBinary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 100, 3)
		b := roundTrip(t, a, true)
		return simEqual(a, b, seed) && a.NumAnds() == b.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWriteCompactsNonCanonical(t *testing.T) {
	a := aig.New(2)
	a.EnableStrash()
	keep := a.NewAnd(a.PI(0), a.PI(1))
	a.NewAnd(a.PI(0), a.PI(1).Not()) // dangling
	a.AddPO(keep)
	a.EnableFanouts()
	a.SweepDangling()
	b := roundTrip(t, a, true)
	if b.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", b.NumAnds())
	}
	if !simEqual(a, b, 11) {
		t.Errorf("function changed")
	}
}

// TestWriteRejectsCorruptNetwork pins the canonical() error path: a network
// whose compaction fails (a PO pointing at a deleted node, a combinational
// cycle from in-place edits) must yield a write error, not a silently
// corrupt file — and for the cycle, the old unchecked compaction would not
// even have terminated.
func TestWriteRejectsCorruptNetwork(t *testing.T) {
	deadPO := aig.New(2)
	n := deadPO.AddAndUnchecked(deadPO.PI(0), deadPO.PI(1))
	deadPO.EnableFanouts()
	deadPO.SweepDangling() // n is unreferenced: deleted
	deadPO.AddPO(n)        // PO now points at the deleted node

	cyclic := aig.New(1)
	first := cyclic.ExtendSlots(2)
	cyclic.SetFanins(first, aig.MakeLit(first+1, false), cyclic.PI(0))
	cyclic.SetFanins(first+1, aig.MakeLit(first, false), cyclic.PI(0))
	cyclic.AddPO(aig.MakeLit(first, false))

	danglingPO := aig.New(1)
	danglingPO.AddPO(aig.MakeLit(40, false))

	for name, a := range map[string]*aig.AIG{
		"deleted-po-ref": deadPO,
		"cycle":          cyclic,
		"dangling-po":    danglingPO,
	} {
		var buf bytes.Buffer
		if err := WriteASCII(&buf, a); err == nil {
			t.Errorf("%s: WriteASCII accepted a corrupt network", name)
		}
		if err := WriteBinary(&buf, a); err == nil {
			t.Errorf("%s: WriteBinary accepted a corrupt network", name)
		}
	}
}

// TestReadBoundsLines pins the hostile-stream hardening: a newline-free
// stream must fail fast with a bounded allocation instead of being buffered
// wholesale while looking for the end of the "line".
func TestReadBoundsLines(t *testing.T) {
	hostile := strings.Repeat("9", 4<<20) // 4 MiB, no newline anywhere
	cases := map[string]string{
		"header":      hostile,
		"ascii-body":  "aag 1 1 0 1 0\n2\n" + hostile,
		"binary-body": "aig 2 1 0 1 1\n" + hostile,
	}
	for name, src := range cases {
		_, err := Read(strings.NewReader(src))
		if err == nil {
			t.Errorf("%s: accepted a newline-free %d-byte stream", name, len(src))
			continue
		}
		if !strings.Contains(err.Error(), "exceeds") {
			t.Errorf("%s: want bounded-line error, got %v", name, err)
		}
	}
}

// TestQuickRoundTripAfterInPlaceEdits drives the canonical/Compact write
// path: random networks are edited in place with ReplaceNode until they
// contain deleted nodes, then must round-trip through both formats with
// their function intact.
func TestQuickRoundTripAfterInPlaceEdits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 80, 4)
		a.EnableStrash()
		a.EnableFanouts()
		for k := 0; k < 8; k++ {
			var live []int32
			a.ForEachAnd(func(id int32) { live = append(live, id) })
			if len(live) == 0 {
				break
			}
			id := live[rng.Intn(len(live))]
			// Replacing a node by one of its own fanins preserves acyclicity
			// while deleting its MFFC and cascading merges.
			a.ReplaceNode(id, a.Fanin0(id))
		}
		ref := a.Rehash()
		b := roundTrip(t, a, seed%2 == 0)
		if err := aig.Check(b); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return simEqual(ref, b, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripOutOfOrderIDs writes a network whose node ids are not in
// topological order (the parallel replacement engine's ExtendSlots/SetFanins
// idiom leaves such networks behind), which forces the writer through the
// compacting path.
func TestRoundTripOutOfOrderIDs(t *testing.T) {
	a := aig.New(3)
	const n = 10
	first := a.ExtendSlots(n)
	// A fanin chain laid out in reverse id order: node first+k reads node
	// first+k+1, the deepest node reads only PIs.
	for k := 0; k < n-1; k++ {
		a.SetFanins(first+int32(k), aig.MakeLit(first+int32(k)+1, k%2 == 1), a.PI(k%3))
	}
	a.SetFanins(first+n-1, a.PI(0), a.PI(1).Not())
	a.AddPO(aig.MakeLit(first, true))

	ref := a.Rehash()
	for _, binary := range []bool{false, true} {
		b := roundTrip(t, a, binary)
		if err := aig.Check(b); err != nil {
			t.Fatal(err)
		}
		if !simEqual(ref, b, 42) {
			t.Errorf("binary=%v: function changed", binary)
		}
	}
}

func TestBinaryDeltaEncoding(t *testing.T) {
	for _, d := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 28} {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeDelta(bw, d); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := readDelta(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("delta %d: %v", d, err)
		}
		if got != d {
			t.Errorf("delta %d round-tripped to %d", d, got)
		}
	}
}
