// Package aiger reads and writes combinational AIGs in the AIGER format
// (http://fmv.jku.at/aiger/), both the ASCII ("aag") and the binary ("aig")
// variants. Latches are not supported: the optimization algorithms in this
// repository are purely combinational, matching the paper's benchmarks.
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aigre/internal/aig"
)

// maxHeaderCount bounds every AIGER header field: 2^26 nodes is well beyond
// the largest published benchmark suites while keeping a hostile header from
// driving a multi-gigabyte allocation before the body is even read. Slice
// pre-allocation is additionally clamped (maxPrealloc), so declared-but-
// absent body data cannot reserve memory either.
const (
	maxHeaderCount = 1 << 26
	maxPrealloc    = 1 << 20
)

func preallocHint(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// maxLineBytes bounds a single text line (header, literal lines, binary
// output lines). No legal AIGER line within the header limits comes anywhere
// near it; a longer "line" is a hostile or corrupt newline-free stream.
const maxLineBytes = 1 << 16

// readLine reads one '\n'-terminated line of at most maxLineBytes bytes.
// Unlike bufio.Reader.ReadString, it never buffers more than the limit: a
// newline-free stream yields an error instead of allocating the stream into
// memory. The trailing newline, when present, is included (matching
// ReadString), and a final unterminated line is returned alongside io.EOF.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		if len(buf)+len(frag) > maxLineBytes {
			return "", fmt.Errorf("aiger: line exceeds %d bytes", maxLineBytes)
		}
		if err == nil {
			if buf == nil {
				return string(frag), nil
			}
			return string(append(buf, frag...)), nil
		}
		if err == bufio.ErrBufferFull {
			buf = append(buf, frag...)
			continue
		}
		return string(append(buf, frag...)), err
	}
}

// Read parses an AIGER file (ASCII or binary, auto-detected from the magic)
// into an AIG. Symbol tables and comments are skipped.
//
// Read never panics on malformed input: header fields are bounded before any
// allocation, and any residual panic in the construction path is converted
// into an error (the CLI turns it into a one-line diagnostic).
func Read(r io.Reader) (a *aig.AIG, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			a, err = nil, fmt.Errorf("aiger: malformed input: %v", rec)
		}
	}()
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("aiger: reading header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) < 6 {
		return nil, fmt.Errorf("aiger: malformed header %q", strings.TrimSpace(header))
	}
	var nums [5]int
	for i := 0; i < 5; i++ {
		n, err := strconv.Atoi(fields[i+1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", fields[i+1])
		}
		if n > maxHeaderCount {
			return nil, fmt.Errorf("aiger: header field %d exceeds limit %d", n, maxHeaderCount)
		}
		nums[i] = n
	}
	m, in, latches, out, ands := nums[0], nums[1], nums[2], nums[3], nums[4]
	if latches != 0 {
		return nil, fmt.Errorf("aiger: %d latches present; only combinational AIGs are supported", latches)
	}
	if m != in+ands {
		return nil, fmt.Errorf("aiger: header M=%d != I+A=%d", m, in+ands)
	}
	switch fields[0] {
	case "aag":
		return readASCII(br, in, out, ands)
	case "aig":
		return readBinary(br, in, out, ands)
	default:
		return nil, fmt.Errorf("aiger: unknown magic %q", fields[0])
	}
}

func readASCII(br *bufio.Reader, in, out, ands int) (*aig.AIG, error) {
	a := aig.NewCap(in, in+1+preallocHint(ands))
	readLits := func(n int) ([]uint64, error) {
		lits := make([]uint64, 0, preallocHint(n))
		for len(lits) < n {
			line, err := readLine(br)
			if err != nil && len(strings.TrimSpace(line)) == 0 {
				return nil, fmt.Errorf("aiger: unexpected EOF: %w", err)
			}
			for _, f := range strings.Fields(line) {
				v, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("aiger: bad literal %q", f)
				}
				lits = append(lits, v)
			}
		}
		return lits, nil
	}
	inLits, err := readLits(in)
	if err != nil {
		return nil, err
	}
	for i, l := range inLits {
		if l != uint64(2*(i+1)) {
			return nil, fmt.Errorf("aiger: input %d has literal %d, want %d", i, l, 2*(i+1))
		}
	}
	outLits, err := readLits(out)
	if err != nil {
		return nil, err
	}
	andLits, err := readLits(3 * ands)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ands; i++ {
		lhs, rhs0, rhs1 := andLits[3*i], andLits[3*i+1], andLits[3*i+2]
		wantLHS := uint64(2 * (in + 1 + i))
		if lhs != wantLHS {
			return nil, fmt.Errorf("aiger: AND %d lhs=%d, want %d (non-canonical order unsupported)", i, lhs, wantLHS)
		}
		if rhs0 >= lhs || rhs1 >= lhs {
			return nil, fmt.Errorf("aiger: AND %d references later literal", i)
		}
		a.AddAndUnchecked(aig.Lit(rhs0), aig.Lit(rhs1))
	}
	for _, l := range outLits {
		if l > uint64(2*(in+ands))+1 {
			return nil, fmt.Errorf("aiger: output literal %d out of range", l)
		}
		a.AddPO(aig.Lit(l))
	}
	return a, nil
}

func readBinary(br *bufio.Reader, in, out, ands int) (*aig.AIG, error) {
	a := aig.NewCap(in, in+1+preallocHint(ands))
	outLits := make([]uint64, 0, preallocHint(out))
	for i := 0; i < out; i++ {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: reading output %d: %w", i, err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(line), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("aiger: bad output literal %q", strings.TrimSpace(line))
		}
		outLits = append(outLits, v)
	}
	for i := 0; i < ands; i++ {
		lhs := uint64(2 * (in + 1 + i))
		d0, err := readDelta(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: AND %d delta0: %w", i, err)
		}
		d1, err := readDelta(br)
		if err != nil {
			return nil, fmt.Errorf("aiger: AND %d delta1: %w", i, err)
		}
		rhs0 := lhs - d0
		// The format requires lhs > rhs0 >= rhs1, so delta0 must be nonzero
		// (a zero delta would make the node reference itself).
		if d0 == 0 || d0 > lhs || d1 > rhs0 {
			return nil, fmt.Errorf("aiger: AND %d deltas out of range", i)
		}
		rhs1 := rhs0 - d1
		a.AddAndUnchecked(aig.Lit(rhs0), aig.Lit(rhs1))
	}
	for _, l := range outLits {
		if l > uint64(2*(in+ands))+1 {
			return nil, fmt.Errorf("aiger: output literal %d out of range", l)
		}
		a.AddPO(aig.Lit(l))
	}
	return a, nil
}

func readDelta(br *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift > 35 {
			return 0, fmt.Errorf("delta encoding too long")
		}
	}
}

// WriteASCII writes the AIG in the ASCII "aag" format. The AIG must be in
// topological id order with no deleted nodes; call Compact first if in-place
// editing was used.
func WriteASCII(w io.Writer, a *aig.AIG) error {
	a, err := canonical(a)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	in, ands := a.NumPIs(), a.NumAnds()
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", in+ands, in, a.NumPOs(), ands)
	for i := 0; i < in; i++ {
		fmt.Fprintf(bw, "%d\n", 2*(i+1))
	}
	for _, p := range a.POs() {
		fmt.Fprintf(bw, "%d\n", uint32(p))
	}
	for i := 0; i < ands; i++ {
		id := int32(in + 1 + i)
		fmt.Fprintf(bw, "%d %d %d\n", 2*int(id), uint32(a.Fanin0(id)), uint32(a.Fanin1(id)))
	}
	return bw.Flush()
}

// WriteBinary writes the AIG in the binary "aig" format.
func WriteBinary(w io.Writer, a *aig.AIG) error {
	a, err := canonical(a)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	in, ands := a.NumPIs(), a.NumAnds()
	fmt.Fprintf(bw, "aig %d %d 0 %d %d\n", in+ands, in, a.NumPOs(), ands)
	for _, p := range a.POs() {
		fmt.Fprintf(bw, "%d\n", uint32(p))
	}
	for i := 0; i < ands; i++ {
		id := int32(in + 1 + i)
		lhs := uint64(2 * int(id))
		f0, f1 := uint64(a.Fanin0(id)), uint64(a.Fanin1(id))
		if f0 < f1 {
			f0, f1 = f1, f0
		}
		if err := writeDelta(bw, lhs-f0); err != nil {
			return err
		}
		if err := writeDelta(bw, f0-f1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeDelta(bw *bufio.Writer, d uint64) error {
	for d >= 0x80 {
		if err := bw.WriteByte(byte(d&0x7f) | 0x80); err != nil {
			return err
		}
		d >>= 7
	}
	return bw.WriteByte(byte(d))
}

// canonical returns an AIG suitable for writing: topological id order, no
// deleted nodes. When the input already satisfies this, it is returned
// as-is; otherwise a compacted copy is produced. A network the checked
// compaction rejects — dangling PO references, reachable deleted nodes, a
// combinational cycle from in-place edits — yields an error rather than a
// silently corrupt (or, for cycles, never-terminating) write.
func canonical(a *aig.AIG) (*aig.AIG, error) {
	needCompact := false
	if a.NumObjs() != a.NumPIs()+1+a.NumAnds() {
		needCompact = true // deleted nodes present
	} else {
		for i := 0; i < a.NumAnds() && !needCompact; i++ {
			id := int32(a.NumPIs() + 1 + i)
			if int32(a.Fanin0(id).Var()) >= id || int32(a.Fanin1(id).Var()) >= id {
				needCompact = true
			}
		}
	}
	if !needCompact {
		// The fast path skips the traversal, so range-check the POs here:
		// a PO pointing past the last node would otherwise be written as an
		// out-of-range literal.
		for i := 0; i < a.NumPOs(); i++ {
			if v := a.PO(i).Var(); int(v) >= a.NumObjs() {
				return nil, fmt.Errorf("aiger: PO %d references out-of-range node %d", i, v)
			}
		}
		return a, nil
	}
	c, _, err := a.CompactSafe()
	if err != nil {
		return nil, fmt.Errorf("aiger: network is not writable: %w", err)
	}
	return c, nil
}
