package truth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTT(rng *rand.Rand, n int) TT {
	t := New(n)
	for i := range t.Words {
		t.Words[i] = rng.Uint64()
	}
	return t
}

func TestVarPatterns(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for v := 0; v < n; v++ {
			tt := Var(n, v)
			for m := 0; m < 1<<n; m++ {
				want := m>>uint(v)&1 != 0
				if tt.Bit(m) != want {
					t.Fatalf("Var(%d,%d) bit %d = %v", n, v, m, tt.Bit(m))
				}
			}
		}
	}
}

func TestBoolOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 6, 8} {
		x, y := randomTT(rng, n), randomTT(rng, n)
		and := New(n).And(x, y)
		or := New(n).Or(x, y)
		xor := New(n).Xor(x, y)
		not := New(n).Not(x)
		andnot := New(n).AndNot(x, y)
		for m := 0; m < 1<<n; m++ {
			a, b := x.Bit(m), y.Bit(m)
			if and.Bit(m) != (a && b) || or.Bit(m) != (a || b) ||
				xor.Bit(m) != (a != b) || not.Bit(m) != !a ||
				andnot.Bit(m) != (a && !b) {
				t.Fatalf("n=%d op mismatch at minterm %d", n, m)
			}
		}
	}
}

func TestCofactors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 7, 9} {
		x := randomTT(rng, n)
		for v := 0; v < n; v++ {
			c0 := New(n).Cofactor0(x, v)
			c1 := New(n).Cofactor1(x, v)
			for m := 0; m < 1<<n; m++ {
				m0 := m &^ (1 << uint(v))
				m1 := m | 1<<uint(v)
				if c0.Bit(m) != x.Bit(m0) {
					t.Fatalf("n=%d v=%d cofactor0 bit %d", n, v, m)
				}
				if c1.Bit(m) != x.Bit(m1) {
					t.Fatalf("n=%d v=%d cofactor1 bit %d", n, v, m)
				}
			}
		}
	}
}

func TestSupport(t *testing.T) {
	n := 5
	// f = x0 & x3
	f := New(n).And(Var(n, 0), Var(n, 3))
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 3 {
		t.Errorf("Support = %v", sup)
	}
	if Const(n, true).Support() != nil {
		t.Errorf("constant has support")
	}
}

func TestCountOnesAndConsts(t *testing.T) {
	n := 3
	f := Var(n, 0) // 4 of 8 minterms
	if f.CountOnes() != 4 {
		t.Errorf("CountOnes = %d", f.CountOnes())
	}
	if !Const(n, false).IsConst0() || Const(n, false).IsConst1() {
		t.Errorf("const0 misclassified")
	}
	if !Const(n, true).IsConst1() || Const(n, true).IsConst0() {
		t.Errorf("const1 misclassified")
	}
}

func TestISOPSimple(t *testing.T) {
	n := 3
	// f = x0&x1 | !x2
	f := New(n).And(Var(n, 0), Var(n, 1))
	f.Or(f, New(n).Not(Var(n, 2)))
	sop := ISOP(f, TT{})
	if !sop.TT().Equal(f) {
		t.Fatalf("ISOP cover wrong: %v", sop.Cubes)
	}
	if len(sop.Cubes) != 2 {
		t.Errorf("cube count = %d, want 2", len(sop.Cubes))
	}
}

func TestISOPConstants(t *testing.T) {
	for _, n := range []int{0, 2, 7} {
		s0 := ISOP(Const(n, false), TT{})
		if !s0.IsConst0() {
			t.Errorf("n=%d: const0 SOP = %v", n, s0.Cubes)
		}
		s1 := ISOP(Const(n, true), TT{})
		if !s1.IsConst1() {
			t.Errorf("n=%d: const1 SOP = %v", n, s1.Cubes)
		}
	}
}

func TestQuickISOPCoversExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		x := randomTT(rng, n)
		sop := ISOP(x, TT{})
		return sop.TT().Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickISOPWithDontCares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		on := randomTT(rng, n)
		dcRaw := randomTT(rng, n)
		dc := New(n).AndNot(dcRaw, on) // don't-cares disjoint from onset
		sop := ISOP(on, dc)
		cover := sop.TT()
		// onset <= cover <= onset|dc
		lowOK := New(n).AndNot(on, cover).IsConst0()
		upper := New(n).Or(on, dc)
		highOK := New(n).AndNot(cover, upper).IsConst0()
		return lowOK && highOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickISOPIrredundant(t *testing.T) {
	// Dropping any single cube must lose coverage.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		x := randomTT(rng, n)
		sop := ISOP(x, TT{})
		for drop := range sop.Cubes {
			reduced := SOP{NVars: n}
			for i, c := range sop.Cubes {
				if i != drop {
					reduced.Cubes = append(reduced.Cubes, c)
				}
			}
			if reduced.TT().Equal(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinPhaseISOP(t *testing.T) {
	n := 4
	// OR of all variables: positive ISOP has 4 cubes, complement has 1.
	f := New(n)
	for v := 0; v < n; v++ {
		f.Or(f, Var(n, v))
	}
	sop, compl := MinPhaseISOP(f)
	if !compl {
		t.Errorf("complemented phase must win for wide OR")
	}
	if len(sop.Cubes) != 1 {
		t.Errorf("cube count = %d, want 1", len(sop.Cubes))
	}
}

func TestCubeHelpers(t *testing.T) {
	c := Cube{}.WithLit(2, true).WithLit(0, false)
	if c.NumLits() != 2 || !c.HasLit(2, true) || !c.HasLit(0, false) || c.HasLit(1, true) {
		t.Errorf("cube helpers wrong: %v", c)
	}
	if (Cube{}).String() != "<1>" {
		t.Errorf("empty cube string = %q", Cube{}.String())
	}
}

func TestNpn4CanonInvariance(t *testing.T) {
	// All NPN-equivalent functions must share one canonical form.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		tt := uint16(rng.Intn(1 << 16))
		canon, _ := Npn4Canon(tt)
		// Random NPN transform of tt.
		cur := tt
		for v := 0; v < 4; v++ {
			if rng.Intn(2) == 0 {
				cur = npn4FlipVar(cur, v)
			}
		}
		cur = npn4Permute(cur, perms4[rng.Intn(24)])
		if rng.Intn(2) == 0 {
			cur = ^cur
		}
		canon2, _ := Npn4Canon(cur)
		if canon != canon2 {
			t.Fatalf("trial %d: canon %04x != %04x", trial, canon, canon2)
		}
	}
}

func TestNpn4ApplyMatchesCanon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		tt := uint16(rng.Intn(1 << 16))
		canon, tr := Npn4Canon(tt)
		if got := Npn4Apply(tt, tr); got != canon {
			t.Fatalf("Npn4Apply = %04x, want %04x", got, canon)
		}
	}
}

func TestNpn4ClassCount(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates all 65536 functions")
	}
	classes := map[uint16]bool{}
	for f := 0; f < 1<<16; f++ {
		c, _ := Npn4Canon(uint16(f))
		classes[c] = true
	}
	// The number of NPN classes of 4-variable functions is 222.
	if len(classes) != 222 {
		t.Errorf("NPN class count = %d, want 222", len(classes))
	}
}
