package truth

import "fmt"

// Cube is a product term over up to MaxVars variables: bit v of Pos (Neg)
// set means the positive (negative) literal of variable v appears.
type Cube struct {
	Pos, Neg uint16
}

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int {
	n := 0
	for m := c.Pos; m != 0; m &= m - 1 {
		n++
	}
	for m := c.Neg; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// HasLit reports whether the cube contains the literal of variable v with
// the given phase (true = positive).
func (c Cube) HasLit(v int, positive bool) bool {
	if positive {
		return c.Pos>>uint(v)&1 != 0
	}
	return c.Neg>>uint(v)&1 != 0
}

// WithLit returns the cube extended by a literal.
func (c Cube) WithLit(v int, positive bool) Cube {
	if positive {
		c.Pos |= 1 << uint(v)
	} else {
		c.Neg |= 1 << uint(v)
	}
	return c
}

func (c Cube) String() string {
	s := ""
	for v := 0; v < MaxVars; v++ {
		if c.HasLit(v, true) {
			s += fmt.Sprintf("x%d ", v)
		}
		if c.HasLit(v, false) {
			s += fmt.Sprintf("!x%d ", v)
		}
	}
	if s == "" {
		return "<1>"
	}
	return s[:len(s)-1]
}

// SOP is a sum of products.
type SOP struct {
	NVars int
	Cubes []Cube
}

// NumLits returns the total literal count (the classic SOP cost measure).
func (s SOP) NumLits() int {
	n := 0
	for _, c := range s.Cubes {
		n += c.NumLits()
	}
	return n
}

// IsConst0 reports whether the SOP is the empty sum.
func (s SOP) IsConst0() bool { return len(s.Cubes) == 0 }

// IsConst1 reports whether the SOP is a single empty cube.
func (s SOP) IsConst1() bool {
	return len(s.Cubes) == 1 && s.Cubes[0] == Cube{}
}

// TT evaluates the SOP into a truth table (for verification).
func (s SOP) TT() TT {
	res := New(s.NVars)
	tmp := New(s.NVars)
	for _, c := range s.Cubes {
		for i := range tmp.Words {
			tmp.Words[i] = ^uint64(0)
		}
		for v := 0; v < s.NVars; v++ {
			if c.HasLit(v, true) {
				tmp.And(tmp, Var(s.NVars, v))
			}
			if c.HasLit(v, false) {
				tmp.AndNot(tmp, Var(s.NVars, v))
			}
		}
		res.Or(res, tmp)
	}
	return res
}

// isopArena recycles truth-table word buffers across the ISOP recursion,
// which otherwise dominates refactoring runtime with allocations.
type isopArena struct {
	n     int
	words int
	free  []TT
	vars  []TT // cached Var tables
	calls int  // recursion count, for work estimation
}

func newIsopArena(n int) *isopArena {
	a := &isopArena{n: n, words: WordCount(n)}
	a.vars = make([]TT, n)
	for v := 0; v < n; v++ {
		a.vars[v] = Var(n, v)
	}
	return a
}

func (a *isopArena) get() TT {
	if k := len(a.free); k > 0 {
		t := a.free[k-1]
		a.free = a.free[:k-1]
		return t
	}
	return New(a.n)
}

func (a *isopArena) put(ts ...TT) {
	a.free = append(a.free, ts...)
}

// dependsOn checks variable dependence without allocating.
func dependsOn(t TT, v int) bool {
	if v < 6 {
		mask := varMasks[v]
		shift := uint(1) << v
		for _, w := range t.Words {
			if (w&mask)>>shift != w&^mask {
				return true
			}
		}
		return false
	}
	step := 1 << (v - 6)
	for i := 0; i < len(t.Words); i += 2 * step {
		for j := 0; j < step; j++ {
			if t.Words[i+j] != t.Words[i+j+step] {
				return true
			}
		}
	}
	return false
}

// ISOP computes an irredundant sum-of-products of the incompletely
// specified function [onset, onset|dc] using the Minato-Morreale procedure.
// With dc = nil the function is completely specified. The returned SOP
// covers at least the onset and nothing outside onset|dc, and no cube or
// literal can be dropped without losing coverage.
func ISOP(onset TT, dc TT) SOP {
	s, _ := ISOPCount(onset, dc)
	return s
}

// ISOPCount is ISOP returning additionally an elementary-operation estimate
// (recursive calls times table size), used for device-time accounting.
func ISOPCount(onset TT, dc TT) (SOP, int64) {
	n := onset.NVars
	ar := newIsopArena(n)
	lower := ar.get().Copy(onset)
	upper := ar.get().Copy(onset)
	if dc.Words != nil {
		upper.Or(upper, dc)
	}
	cubes, cover := isopRec(ar, lower, upper, n)
	ar.put(lower, upper, cover)
	return SOP{NVars: n, Cubes: cubes}, int64(ar.calls) * int64(12*ar.words)
}

// isopRec returns cubes covering [L, U] plus the truth table of the cover.
// L and U are owned by the caller; the returned cover is arena-allocated
// and owned by the caller.
func isopRec(ar *isopArena, L, U TT, topVar int) ([]Cube, TT) {
	ar.calls++
	if L.IsConst0() {
		cov := ar.get()
		for i := range cov.Words {
			cov.Words[i] = 0
		}
		return nil, cov
	}
	if U.IsConst1() {
		cov := ar.get()
		for i := range cov.Words {
			cov.Words[i] = ^uint64(0)
		}
		return []Cube{{}}, cov
	}
	// Find the top variable either bound depends on.
	v := topVar - 1
	for v >= 0 && !dependsOn(L, v) && !dependsOn(U, v) {
		v--
	}
	if v < 0 {
		// L nonzero and U not tautology with no support left cannot happen
		// for consistent bounds (L <= U).
		panic("truth: ISOP invariant violated (is onset <= upperset?)")
	}
	L0 := ar.get().Cofactor0(L, v)
	L1 := ar.get().Cofactor1(L, v)
	U0 := ar.get().Cofactor0(U, v)
	U1 := ar.get().Cofactor1(U, v)

	// Cubes that must contain !v: needed where the function must be 1 with
	// v=0 but may not be 1 with v=1.
	t0 := ar.get().AndNot(L0, U1)
	c0, cov0 := isopRec(ar, t0, U0, v)
	// Cubes that must contain v.
	t1 := ar.get().AndNot(L1, U0)
	c1, cov1 := isopRec(ar, t1, U1, v)
	// Remaining onset, coverable without v.
	Lstar := t0.AndNot(L0, cov0) // reuse t0
	tmp := t1.AndNot(L1, cov1)   // reuse t1
	Lstar.Or(Lstar, tmp)
	Ustar := tmp.And(U0, U1)
	cs, covs := isopRec(ar, Lstar, Ustar, v)

	cubes := make([]Cube, 0, len(c0)+len(c1)+len(cs))
	for _, c := range c0 {
		cubes = append(cubes, c.WithLit(v, false))
	}
	for _, c := range c1 {
		cubes = append(cubes, c.WithLit(v, true))
	}
	cubes = append(cubes, cs...)

	// cover = cov0&!v | cov1&v | covs
	vt := ar.vars[v]
	cover := cov0.AndNot(cov0, vt) // reuse cov0 as the result
	tmp2 := cov1.And(cov1, vt)
	cover.Or(cover, tmp2)
	cover.Or(cover, covs)
	ar.put(L0, L1, U0, U1, t0, t1, cov1, covs)
	return cubes, cover
}

// MinPhaseISOP computes ISOPs of both the function and its complement and
// returns the cheaper one (by cube count, then literal count) together with
// a flag telling whether the complement was chosen. ABC's refactoring does
// the same to reduce the factored-form size.
func MinPhaseISOP(onset TT) (SOP, bool) {
	s, compl, _ := MinPhaseISOPCount(onset)
	return s, compl
}

// MinPhaseISOPCount is MinPhaseISOP with an operation estimate.
func MinPhaseISOPCount(onset TT) (SOP, bool, int64) {
	pos, opsP := ISOPCount(onset, TT{})
	neg, opsN := ISOPCount(New(onset.NVars).Not(onset), TT{})
	if len(neg.Cubes) < len(pos.Cubes) ||
		(len(neg.Cubes) == len(pos.Cubes) && neg.NumLits() < pos.NumLits()) {
		return neg, true, opsP + opsN
	}
	return pos, false, opsP + opsN
}
