package truth

// NPN canonization of 4-variable functions represented as 16-bit truth
// tables. Rewriting classifies every 4-feasible cut function into one of the
// 222 NPN classes so that one optimized subgraph per class can be reused.

// Npn4Transform describes how a function was mapped to its canonical
// representative: apply the permutation, complement the inputs in InputNeg,
// and complement the output if OutputNeg. Perm[i] gives, for canonical
// input position i, the original variable feeding it.
type Npn4Transform struct {
	Perm      [4]uint8
	InputNeg  uint8 // bit i: original variable i complemented
	OutputNeg bool
}

// Npn4NumPerms is the number of input permutations enumerated by Npn4Canon.
const Npn4NumPerms = 24

var perms4 = [Npn4NumPerms][4]uint8{}

// Npn4Perm returns the i-th input permutation (0 <= i < Npn4NumPerms). The
// enumeration order is fixed, so an index is a compact stand-in for the
// permutation (used by the packed NPN cache in internal/rcache).
func Npn4Perm(i int) [4]uint8 { return perms4[i] }

// Npn4PermIndex returns the index of perm within the enumeration, or -1 if
// perm is not a permutation of {0,1,2,3}.
func Npn4PermIndex(perm [4]uint8) int {
	for i := range perms4 {
		if perms4[i] == perm {
			return i
		}
	}
	return -1
}

func init() {
	i := 0
	var rec func(cur []uint8, rest []uint8)
	rec = func(cur []uint8, rest []uint8) {
		if len(rest) == 0 {
			copy(perms4[i][:], cur)
			i++
			return
		}
		for j := range rest {
			nr := append(append([]uint8{}, rest[:j]...), rest[j+1:]...)
			rec(append(cur, rest[j]), nr)
		}
	}
	rec(nil, []uint8{0, 1, 2, 3})
}

// npn4FlipVar complements variable v of a 16-bit truth table.
func npn4FlipVar(tt uint16, v int) uint16 {
	switch v {
	case 0:
		return (tt&0xAAAA)>>1 | (tt&0x5555)<<1
	case 1:
		return (tt&0xCCCC)>>2 | (tt&0x3333)<<2
	case 2:
		return (tt&0xF0F0)>>4 | (tt&0x0F0F)<<4
	default:
		return tt>>8 | tt<<8
	}
}

// npn4Permute applies a variable permutation: output variable i reads
// original variable perm[i].
func npn4Permute(tt uint16, perm [4]uint8) uint16 {
	var out uint16
	for m := 0; m < 16; m++ {
		// minterm bit i of new order corresponds to original minterm with
		// bit perm[i] set when bit i of m is set.
		orig := 0
		for i := 0; i < 4; i++ {
			if m>>uint(i)&1 != 0 {
				orig |= 1 << uint(perm[i])
			}
		}
		if tt>>uint(orig)&1 != 0 {
			out |= 1 << uint(m)
		}
	}
	return out
}

// Npn4Canon returns the canonical NPN representative of tt (the numerically
// smallest table over all 768 NPN transforms) and the transform that maps
// the original function onto the canonical one.
func Npn4Canon(tt uint16) (uint16, Npn4Transform) {
	best := uint16(0xFFFF)
	var bestTr Npn4Transform
	first := true
	for _, perm := range perms4 {
		for neg := 0; neg < 16; neg++ {
			cur := tt
			for v := 0; v < 4; v++ {
				if neg>>uint(v)&1 != 0 {
					cur = npn4FlipVar(cur, v)
				}
			}
			cur = npn4Permute(cur, perm)
			for _, oneg := range [2]bool{false, true} {
				cand := cur
				if oneg {
					cand = ^cur
				}
				if first || cand < best {
					best = cand
					bestTr = Npn4Transform{Perm: perm, InputNeg: uint8(neg), OutputNeg: oneg}
					first = false
				}
			}
		}
	}
	return best, bestTr
}

// Npn4Apply applies a transform to tt, mapping the original function to the
// canonical domain. Npn4Apply(tt, tr) == canonical when tr was returned by
// Npn4Canon(tt).
func Npn4Apply(tt uint16, tr Npn4Transform) uint16 {
	cur := tt
	for v := 0; v < 4; v++ {
		if tr.InputNeg>>uint(v)&1 != 0 {
			cur = npn4FlipVar(cur, v)
		}
	}
	cur = npn4Permute(cur, tr.Perm)
	if tr.OutputNeg {
		cur = ^cur
	}
	return cur
}
