// Package truth implements bit-parallel truth tables for Boolean functions
// of up to MaxVars variables, together with the irredundant sum-of-products
// (ISOP) computation used by refactoring to resynthesize cone functions.
package truth

import (
	"fmt"
	"math/bits"
)

// MaxVars is the largest supported number of variables. The paper uses
// maximum cut sizes of 11–12 for refactoring; 16 leaves headroom.
const MaxVars = 16

// masks for variables 0..5, whose patterns repeat within one 64-bit word.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// TT is a truth table over NVars variables stored as 2^NVars bits
// (minimum one word).
type TT struct {
	NVars int
	Words []uint64
}

// WordCount returns the number of 64-bit words for an n-variable table.
func WordCount(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// usedMask returns the mask of meaningful bits in the (single) word of a
// table with fewer than 6 variables.
func usedMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << n)) - 1
}

// New returns the constant-false table over n variables.
func New(n int) TT {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truth: %d variables unsupported", n))
	}
	return TT{NVars: n, Words: make([]uint64, WordCount(n))}
}

// Const returns the constant table with the given value.
func Const(n int, value bool) TT {
	t := New(n)
	if value {
		for i := range t.Words {
			t.Words[i] = ^uint64(0)
		}
		t.Words[0] |= 0 // keep full words; Normalize trims on comparison
	}
	return t
}

// Var returns the table of variable v over n variables.
func Var(n, v int) TT {
	if v < 0 || v >= n {
		panic(fmt.Sprintf("truth: variable %d out of range for %d vars", v, n))
	}
	t := New(n)
	if v < 6 {
		for i := range t.Words {
			t.Words[i] = varMasks[v]
		}
		return t
	}
	step := 1 << (v - 6)
	for i := range t.Words {
		if i&step != 0 {
			t.Words[i] = ^uint64(0)
		}
	}
	return t
}

// Clone returns an independent copy.
func (t TT) Clone() TT {
	return TT{NVars: t.NVars, Words: append([]uint64(nil), t.Words...)}
}

// Fill sets t to the constant table with the given value in place.
func (t TT) Fill(value bool) TT {
	w := uint64(0)
	if value {
		w = ^uint64(0)
	}
	for i := range t.Words {
		t.Words[i] = w
	}
	return t
}

// SetVar fills t with the table of variable v in place (Var without the
// allocation).
func (t TT) SetVar(v int) TT {
	if v < 0 || v >= t.NVars {
		panic(fmt.Sprintf("truth: variable %d out of range for %d vars", v, t.NVars))
	}
	if v < 6 {
		for i := range t.Words {
			t.Words[i] = varMasks[v]
		}
		return t
	}
	step := 1 << (v - 6)
	for i := range t.Words {
		if i&step != 0 {
			t.Words[i] = ^uint64(0)
		} else {
			t.Words[i] = 0
		}
	}
	return t
}

// AndCompl stores (x XOR nx) AND (y XOR ny) into t: the AND of the two
// operands with optional input complementation, fused so callers need no
// temporary for the NOT.
func (t TT) AndCompl(x TT, nx bool, y TT, ny bool) TT {
	mx, my := uint64(0), uint64(0)
	if nx {
		mx = ^uint64(0)
	}
	if ny {
		my = ^uint64(0)
	}
	for i := range t.Words {
		t.Words[i] = (x.Words[i] ^ mx) & (y.Words[i] ^ my)
	}
	return t
}

// And stores x AND y into t (t may alias either operand).
func (t TT) And(x, y TT) TT {
	for i := range t.Words {
		t.Words[i] = x.Words[i] & y.Words[i]
	}
	return t
}

// Or stores x OR y into t.
func (t TT) Or(x, y TT) TT {
	for i := range t.Words {
		t.Words[i] = x.Words[i] | y.Words[i]
	}
	return t
}

// Xor stores x XOR y into t.
func (t TT) Xor(x, y TT) TT {
	for i := range t.Words {
		t.Words[i] = x.Words[i] ^ y.Words[i]
	}
	return t
}

// AndNot stores x AND NOT y into t.
func (t TT) AndNot(x, y TT) TT {
	for i := range t.Words {
		t.Words[i] = x.Words[i] &^ y.Words[i]
	}
	return t
}

// Not stores NOT x into t.
func (t TT) Not(x TT) TT {
	for i := range t.Words {
		t.Words[i] = ^x.Words[i]
	}
	return t
}

// Copy stores x into t.
func (t TT) Copy(x TT) TT {
	copy(t.Words, x.Words)
	return t
}

// Equal reports whether two tables over the same variable count are equal.
func (t TT) Equal(o TT) bool {
	m := usedMask(t.NVars)
	for i := range t.Words {
		mask := uint64(^uint64(0))
		if t.NVars < 6 {
			mask = m
		}
		if (t.Words[i]^o.Words[i])&mask != 0 {
			return false
		}
	}
	return true
}

// IsConst0 reports whether the table is constant false.
func (t TT) IsConst0() bool {
	m := usedMask(t.NVars)
	for i, w := range t.Words {
		mask := uint64(^uint64(0))
		if t.NVars < 6 {
			mask = m
		}
		if w&mask != 0 {
			return false
		}
		_ = i
	}
	return true
}

// IsConst1 reports whether the table is constant true.
func (t TT) IsConst1() bool {
	m := usedMask(t.NVars)
	for _, w := range t.Words {
		mask := uint64(^uint64(0))
		if t.NVars < 6 {
			mask = m
		}
		if w&mask != mask {
			return false
		}
	}
	return true
}

// CountOnes returns the number of minterms.
func (t TT) CountOnes() int {
	m := usedMask(t.NVars)
	c := 0
	for _, w := range t.Words {
		if t.NVars < 6 {
			w &= m
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// Bit returns minterm m of the table.
func (t TT) Bit(m int) bool {
	return t.Words[m>>6]>>(uint(m)&63)&1 != 0
}

// SetBit sets minterm m.
func (t TT) SetBit(m int) {
	t.Words[m>>6] |= 1 << (uint(m) & 63)
}

// Cofactor0 stores into t the negative cofactor of x with respect to v
// (the cofactor value is replicated over both halves of v).
func (t TT) Cofactor0(x TT, v int) TT {
	if v < 6 {
		mask := ^varMasks[v]
		shift := uint(1) << v
		for i := range t.Words {
			lo := x.Words[i] & mask
			t.Words[i] = lo | lo<<shift
		}
		return t
	}
	step := 1 << (v - 6)
	for i := 0; i < len(t.Words); i += 2 * step {
		for j := 0; j < step; j++ {
			w := x.Words[i+j]
			t.Words[i+j] = w
			t.Words[i+j+step] = w
		}
	}
	return t
}

// Cofactor1 stores into t the positive cofactor of x with respect to v.
func (t TT) Cofactor1(x TT, v int) TT {
	if v < 6 {
		mask := varMasks[v]
		shift := uint(1) << v
		for i := range t.Words {
			hi := x.Words[i] & mask
			t.Words[i] = hi | hi>>shift
		}
		return t
	}
	step := 1 << (v - 6)
	for i := 0; i < len(t.Words); i += 2 * step {
		for j := 0; j < step; j++ {
			w := x.Words[i+j+step]
			t.Words[i+j] = w
			t.Words[i+j+step] = w
		}
	}
	return t
}

// DependsOn reports whether the function depends on variable v. It compares
// the two cofactors in place without allocating.
func (t TT) DependsOn(v int) bool {
	if t.NVars < 6 {
		// Single word with garbage above the meaningful bits: mask first so
		// tables built through different op sequences agree.
		m := usedMask(t.NVars)
		w := t.Words[0] & m
		shift := uint(1) << v
		return (w&varMasks[v])>>shift != w&^varMasks[v]
	}
	return dependsOn(t, v)
}

// SupportInto writes the indices of the variables the function depends on
// into dst[:0] and returns the extended slice. It performs no allocation
// when dst has sufficient capacity (NVars is always enough).
func (t TT) SupportInto(dst []int) []int {
	dst = dst[:0]
	for v := 0; v < t.NVars; v++ {
		if t.DependsOn(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// Support returns the indices of the variables the function depends on.
// Allocating convenience wrapper around SupportInto.
func (t TT) Support() []int {
	return t.SupportInto(nil)
}

// String renders the table as a hex string (most significant word first),
// trimmed to the meaningful bits.
func (t TT) String() string {
	s := ""
	for i := len(t.Words) - 1; i >= 0; i-- {
		w := t.Words[i]
		if t.NVars < 6 {
			w &= usedMask(t.NVars)
			digits := (1 << t.NVars) / 4
			if digits == 0 {
				digits = 1
			}
			return fmt.Sprintf("%0*x", digits, w)
		}
		s += fmt.Sprintf("%016x", w)
	}
	return s
}
