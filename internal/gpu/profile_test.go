package gpu

import (
	"strings"
	"testing"
	"time"
)

// exercise runs a representative mix of device operations: plain launches,
// every synthetic primitive, and a sequential-overhead phase.
func exercise(d *Device) {
	d.Launch("test/kernel-a", 100, func(tid int) int64 { return int64(tid%3 + 1) })
	d.Launch1("test/kernel-b", 50, func(tid int) {})
	d.Launch("test/kernel-a", 10, func(tid int) int64 { return 2 })
	d.ExclusiveScan("test/scan", []int32{1, 2, 3, 4})
	d.ReduceMax("test/reduce", []int32{5, -2, 9})
	d.ReduceSum("test/reduce", []int32{1, 1, 1})
	d.SortUniqueInt32("test/sort", []int32{3, 1, 3, 2})
	Compact(d, "test/compact", []int{1, 2, 3}, []bool{true, false, true})
	d.AddOverhead("test/seq", 1234)
}

// TestProfileReconcilesWithStats checks the central invariant: the
// per-kernel rows partition Stats exactly, field by field.
func TestProfileReconcilesWithStats(t *testing.T) {
	d := New(2)
	exercise(d)
	rows := d.Profile()
	if len(rows) < 6 {
		t.Fatalf("expected at least 6 distinct kernels, got %d: %v", len(rows), rows)
	}
	total := TotalProfile(rows)
	s := d.Stats()
	if total.Launches != s.Launches || total.Threads != s.Threads ||
		total.Work != s.Work || total.Span != s.Span {
		t.Errorf("profile totals %+v do not reconcile with stats %+v", total, s)
	}
	if total.Modeled != s.ModeledTime {
		t.Errorf("profile modeled %v != stats modeled %v", total.Modeled, s.ModeledTime)
	}
	if total.Seq != s.SeqTime {
		t.Errorf("profile seq %v != stats seq %v", total.Seq, s.SeqTime)
	}
	if total.Wall != s.WallTime {
		t.Errorf("profile wall %v != stats wall %v", total.Wall, s.WallTime)
	}
}

func TestProfileSortedByModeledTime(t *testing.T) {
	d := New(1)
	exercise(d)
	rows := d.Profile()
	for i := 1; i < len(rows); i++ {
		if rows[i].Modeled > rows[i-1].Modeled {
			t.Fatalf("profile not sorted by modeled time: %v before %v", rows[i-1], rows[i])
		}
	}
}

func TestProfileMergesLaunchesByName(t *testing.T) {
	d := New(1)
	d.Launch("same", 5, func(int) int64 { return 1 })
	d.Launch("same", 7, func(int) int64 { return 1 })
	rows := d.Profile()
	if len(rows) != 1 {
		t.Fatalf("expected one row, got %v", rows)
	}
	if rows[0].Kernel != "same" || rows[0].Launches != 2 || rows[0].Threads != 12 {
		t.Errorf("merged row wrong: %+v", rows[0])
	}
}

func TestTraceHookSeesEveryAccounting(t *testing.T) {
	d := New(2)
	var events []TraceEvent
	d.Trace = func(ev TraceEvent) { events = append(events, ev) }
	exercise(d)
	if len(events) == 0 {
		t.Fatal("trace hook never fired")
	}
	var modeled, seq time.Duration
	var launches int
	names := map[string]bool{}
	for _, ev := range events {
		modeled += ev.Modeled
		seq += ev.Seq
		launches += ev.Launches
		names[ev.Kernel] = true
	}
	s := d.Stats()
	if modeled != s.ModeledTime || seq != s.SeqTime || launches != s.Launches {
		t.Errorf("trace sums (modeled=%v seq=%v launches=%d) != stats %+v",
			modeled, seq, launches, s)
	}
	for _, want := range []string{"test/kernel-a", "test/scan", "test/sort", "test/seq", "test/compact/scan"} {
		if !names[want] {
			t.Errorf("trace never saw kernel %q (saw %v)", want, names)
		}
	}
	// The sequential-overhead event is not a kernel launch.
	for _, ev := range events {
		if ev.Kernel == "test/seq" && ev.Launches != 0 {
			t.Errorf("seq overhead event reported %d launches", ev.Launches)
		}
	}
}

func TestNilTraceDoesNotFire(t *testing.T) {
	// The nil-trace fast path must behave identically to the traced path in
	// every accounted number.
	a, b := New(1), New(1)
	b.Trace = func(TraceEvent) {}
	exercise(a)
	exercise(b)
	sa, sb := a.Stats(), b.Stats()
	sa.WallTime, sb.WallTime = 0, 0 // wall time is measured, not modeled
	if sa != sb {
		t.Errorf("trace hook changed accounting: %+v vs %+v", sa, sb)
	}
}

func TestStatsSub(t *testing.T) {
	d := New(1)
	d.Launch("a", 10, func(int) int64 { return 1 })
	before := d.Stats()
	d.Launch("b", 20, func(int) int64 { return 2 })
	delta := d.Stats().Sub(before)
	if delta.Launches != 1 || delta.Threads != 20 || delta.Work != 40 {
		t.Errorf("Sub delta wrong: %+v", delta)
	}
	var again Stats
	again.Add(before)
	again.Add(delta)
	if again != d.Stats() {
		t.Errorf("before + delta != after: %+v vs %+v", again, d.Stats())
	}
}

func TestDiffProfile(t *testing.T) {
	d := New(1)
	d.Launch("a", 10, func(int) int64 { return 1 })
	snap := d.Profile()
	d.Launch("a", 5, func(int) int64 { return 1 })
	d.Launch("b", 3, func(int) int64 { return 1 })
	diff := DiffProfile(d.Profile(), snap)
	if len(diff) != 2 {
		t.Fatalf("diff = %v", diff)
	}
	byName := map[string]KernelProfile{}
	for _, p := range diff {
		byName[p.Kernel] = p
	}
	if byName["a"].Launches != 1 || byName["a"].Threads != 5 {
		t.Errorf("diff row a wrong: %+v", byName["a"])
	}
	if byName["b"].Launches != 1 || byName["b"].Threads != 3 {
		t.Errorf("diff row b wrong: %+v", byName["b"])
	}
	// Unchanged snapshot diffs to nothing.
	if again := DiffProfile(d.Profile(), d.Profile()); len(again) != 0 {
		t.Errorf("self-diff not empty: %v", again)
	}
}

func TestResetStatsClearsProfile(t *testing.T) {
	d := New(1)
	exercise(d)
	d.ResetStats()
	if len(d.Profile()) != 0 {
		t.Errorf("profile survived ResetStats: %v", d.Profile())
	}
	if d.Stats() != (Stats{}) {
		t.Errorf("stats survived ResetStats: %+v", d.Stats())
	}
	// The device keeps working after a reset.
	d.Launch("post-reset", 4, func(int) int64 { return 1 })
	if len(d.Profile()) != 1 {
		t.Errorf("profile broken after reset: %v", d.Profile())
	}
}

func TestFormatProfile(t *testing.T) {
	d := New(1)
	exercise(d)
	out := FormatProfile(d.Profile())
	if !strings.Contains(out, "test/kernel-a") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	// The TOTAL line must carry the exact modeled time of the device.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, d.Stats().ModeledTime.String()) {
		t.Errorf("TOTAL line %q does not contain exact modeled time %v", last, d.Stats().ModeledTime)
	}
}
