package gpu

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLaunchCoversAllThreads(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		d := New(workers)
		const n = 10000
		seen := make([]int32, n)
		d.Launch1("mark", n, func(tid int) {
			atomic.AddInt32(&seen[tid], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: thread %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestLaunchZeroAndSmall(t *testing.T) {
	d := New(4)
	d.Launch1("empty", 0, func(tid int) { t.Error("kernel ran for n=0") })
	ran := false
	d.Launch1("one", 1, func(tid int) { ran = tid == 0 })
	if !ran {
		t.Error("single-thread kernel did not run")
	}
}

func TestWorkSpanAccounting(t *testing.T) {
	d := New(1)
	d.Launch("ops", 4, func(tid int) int64 { return int64(tid + 1) })
	s := d.Stats()
	if s.Work != 1+2+3+4 {
		t.Errorf("Work = %d, want 10", s.Work)
	}
	if s.Span != 4 {
		t.Errorf("Span = %d, want 4 (max thread ops)", s.Span)
	}
	if s.Launches != 1 || s.Threads != 4 {
		t.Errorf("Launches/Threads = %d/%d", s.Launches, s.Threads)
	}
	if s.ModeledTime <= d.Model.LaunchOverhead {
		t.Errorf("modeled time must include op cost: %v", s.ModeledTime)
	}
}

func TestModeledTimeBrent(t *testing.T) {
	d := New(1)
	d.Model = CostModel{Processors: 10, OpTime: 1, LaunchOverhead: 0}
	d.Launch("brent", 25, func(tid int) int64 { return 2 })
	// work/procs + span = 50/10 + 2 = 7ns
	if got := d.Stats().ModeledTime; got != 7 {
		t.Errorf("ModeledTime = %v, want 7ns", got)
	}
}

func TestExclusiveScan(t *testing.T) {
	d := New(2)
	counts := []int32{3, 0, 1, 5, 2}
	offsets, total := d.ExclusiveScan("test/scan", counts)
	want := []int32{0, 3, 3, 4, 9}
	if total != 11 {
		t.Errorf("total = %d", total)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Errorf("offsets = %v, want %v", offsets, want)
			break
		}
	}
	_, zero := d.ExclusiveScan("test/scan", nil)
	if zero != 0 {
		t.Errorf("empty scan total = %d", zero)
	}
}

func TestQuickScanMatchesSequential(t *testing.T) {
	d := New(4)
	f := func(raw []uint8) bool {
		counts := make([]int32, len(raw))
		for i, v := range raw {
			counts[i] = int32(v % 7)
		}
		offsets, total := d.ExclusiveScan("test/scan", counts)
		var sum int32
		for i, c := range counts {
			if offsets[i] != sum {
				return false
			}
			sum += c
		}
		return total == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompact(t *testing.T) {
	d := New(3)
	src := []int{10, 11, 12, 13, 14, 15}
	keep := []bool{true, false, true, false, false, true}
	got := Compact(d, "test/compact", src, keep)
	want := []int{10, 12, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestSortUnique(t *testing.T) {
	d := New(2)
	got := d.SortUniqueInt32("test/sort", []int32{5, 1, 5, 3, 1, 1, 9})
	want := []int32{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

// TestSortUniqueLeavesInputUntouched pins the fixed aliasing contract: the
// caller's slice is neither reordered nor aliased by the result.
func TestSortUniqueLeavesInputUntouched(t *testing.T) {
	d := New(2)
	in := []int32{5, 1, 5, 3, 1, 1, 9}
	orig := append([]int32(nil), in...)
	got := d.SortUniqueInt32("test/sort", in)
	for i := range orig {
		if in[i] != orig[i] {
			t.Fatalf("input mutated: %v (was %v)", in, orig)
		}
	}
	got[0] = -77
	for i := range orig {
		if in[i] != orig[i] {
			t.Fatalf("result aliases input: %v after writing to result", in)
		}
	}
}

func TestReduce(t *testing.T) {
	d := New(2)
	if m := d.ReduceMax("test/reduce", []int32{3, 9, 2}); m != 9 {
		t.Errorf("ReduceMax = %d", m)
	}
	if m := d.ReduceMax("test/reduce", nil); m != math.MinInt32 {
		t.Errorf("ReduceMax(nil) = %d, want MinInt32 identity", m)
	}
	if s := d.ReduceSum("test/reduce", []int32{1, 2, 3}); s != 6 {
		t.Errorf("ReduceSum = %d", s)
	}
}

// TestReduceMaxAllNegative pins the fixed identity: the maximum of an
// all-negative slice is its true maximum, not 0.
func TestReduceMaxAllNegative(t *testing.T) {
	d := New(2)
	if m := d.ReduceMax("test/reduce", []int32{-7, -3, -12}); m != -3 {
		t.Errorf("ReduceMax(all negative) = %d, want -3", m)
	}
}

func TestStatsAddAndReset(t *testing.T) {
	d := New(1)
	d.Launch1("a", 10, func(int) {})
	var total Stats
	total.Add(d.Stats())
	total.Add(d.Stats())
	if total.Launches != 2 || total.Threads != 20 {
		t.Errorf("Add wrong: %+v", total)
	}
	d.ResetStats()
	if d.Stats().Launches != 0 {
		t.Errorf("ResetStats did not clear")
	}
}

func TestLaunchParallelDeterministicOutput(t *testing.T) {
	// Parallel kernels writing disjoint slots must produce identical results
	// regardless of worker count.
	rng := rand.New(rand.NewSource(5))
	input := make([]int64, 5000)
	for i := range input {
		input[i] = rng.Int63n(1000)
	}
	run := func(workers int) []int64 {
		d := New(workers)
		out := make([]int64, len(input))
		d.Launch("square", len(input), func(tid int) int64 {
			out[tid] = input[tid] * input[tid]
			return 1
		})
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic result at %d", i)
		}
	}
}
