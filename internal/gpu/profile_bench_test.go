package gpu

import "testing"

// BenchmarkLaunchOverhead measures the host-side cost of Launch bookkeeping
// with tracing disabled (the nil-Trace fast path: one branch) versus a
// no-op trace hook installed, over a trivially small kernel so the
// accounting dominates.
func BenchmarkLaunchOverhead(b *testing.B) {
	kernel := func(tid int) int64 { return 1 }
	b.Run("trace-nil", func(b *testing.B) {
		d := New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Launch("bench/kernel", 16, kernel)
		}
	})
	b.Run("trace-noop", func(b *testing.B) {
		d := New(1)
		d.Trace = func(TraceEvent) {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Launch("bench/kernel", 16, kernel)
		}
	})
}
