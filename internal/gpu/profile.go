package gpu

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// KernelProfile is the accumulated execution profile of one kernel name: how
// often it launched, how many logical threads and elementary operations it
// accounted, and how much modeled device time (plus measured host wall time)
// it consumed. The per-kernel rows partition Stats exactly: summing any field
// over all rows of Device.Profile reproduces the corresponding Stats field,
// so the profile is the per-kernel breakdown of the paper's Fig. 8 data.
type KernelProfile struct {
	Kernel   string        `json:"kernel"`
	Launches int           `json:"launches"`
	Threads  int64         `json:"threads"`
	Work     int64         `json:"work"`
	Span     int64         `json:"span"`
	Modeled  time.Duration `json:"modeled_ns"`
	Seq      time.Duration `json:"seq_ns"` // host-sequential share of Modeled
	Wall     time.Duration `json:"wall_ns"`
}

// add accumulates other into p (Kernel is left unchanged).
func (p *KernelProfile) add(other KernelProfile) {
	p.Launches += other.Launches
	p.Threads += other.Threads
	p.Work += other.Work
	p.Span += other.Span
	p.Modeled += other.Modeled
	p.Seq += other.Seq
	p.Wall += other.Wall
}

// sub subtracts other from p.
func (p *KernelProfile) sub(other KernelProfile) {
	p.Launches -= other.Launches
	p.Threads -= other.Threads
	p.Work -= other.Work
	p.Span -= other.Span
	p.Modeled -= other.Modeled
	p.Seq -= other.Seq
	p.Wall -= other.Wall
}

func (p KernelProfile) isZero() bool {
	return p.Launches == 0 && p.Threads == 0 && p.Work == 0 && p.Span == 0 &&
		p.Modeled == 0 && p.Seq == 0 && p.Wall == 0
}

// TraceEvent describes one accounted device operation, delivered to the
// Device.Trace hook as it happens: a kernel launch, a synthetic primitive
// (scan, reduce, sort — which model several launches), or an accounted
// host-sequential phase (Launches == 0).
type TraceEvent struct {
	Kernel   string
	Launches int
	Threads  int64
	Work     int64
	Span     int64
	Modeled  time.Duration
	Seq      time.Duration
	Wall     time.Duration
}

// account is the single funnel for all device-time accounting: it updates the
// aggregate Stats, the per-kernel profile, and fires the trace hook. Every
// path that adds to Stats must go through it so that the per-kernel rows
// reconcile with Stats exactly.
func (d *Device) account(name string, launches int, threads, work, span int64, modeled, seq, wall time.Duration) {
	if d.hb != nil {
		d.hb.Beat() // accounted operation completed: the job is alive
	}
	d.stats.Launches += launches
	d.stats.Threads += threads
	d.stats.Work += work
	d.stats.Span += span
	d.stats.ModeledTime += modeled
	d.stats.SeqTime += seq
	d.stats.WallTime += wall
	p := d.profile[name]
	if p == nil {
		if d.profile == nil {
			d.profile = make(map[string]*KernelProfile)
		}
		p = &KernelProfile{Kernel: name}
		d.profile[name] = p
	}
	p.add(KernelProfile{Launches: launches, Threads: threads, Work: work, Span: span,
		Modeled: modeled, Seq: seq, Wall: wall})
	if d.Trace != nil {
		d.Trace(TraceEvent{Kernel: name, Launches: launches, Threads: threads, Work: work,
			Span: span, Modeled: modeled, Seq: seq, Wall: wall})
	}
}

// Profile returns a copy of the accumulated per-kernel profile, sorted by
// modeled time descending (ties broken by kernel name). Summing any field
// over the returned rows equals the corresponding field of Stats exactly.
func (d *Device) Profile() []KernelProfile {
	rows := make([]KernelProfile, 0, len(d.profile))
	for _, p := range d.profile {
		rows = append(rows, *p)
	}
	sortProfile(rows)
	return rows
}

func sortProfile(rows []KernelProfile) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Modeled != rows[j].Modeled {
			return rows[i].Modeled > rows[j].Modeled
		}
		return rows[i].Kernel < rows[j].Kernel
	})
}

// DiffProfile subtracts the snapshot before from after (both as returned by
// Device.Profile) and returns the rows that changed, sorted like Profile.
// Use it to attribute device time to a phase: snapshot, run, diff.
func DiffProfile(after, before []KernelProfile) []KernelProfile {
	prev := make(map[string]KernelProfile, len(before))
	for _, p := range before {
		prev[p.Kernel] = p
	}
	var rows []KernelProfile
	for _, p := range after {
		p.sub(prev[p.Kernel])
		if !p.isZero() {
			rows = append(rows, p)
		}
	}
	sortProfile(rows)
	return rows
}

// TotalProfile sums rows into a single aggregate (Kernel = "TOTAL").
func TotalProfile(rows []KernelProfile) KernelProfile {
	total := KernelProfile{Kernel: "TOTAL"}
	for _, p := range rows {
		total.add(p)
	}
	return total
}

// FormatProfile renders rows as a text table with a trailing TOTAL line. The
// TOTAL modeled time equals Stats().ModeledTime exactly when rows came from
// Device.Profile.
func FormatProfile(rows []KernelProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %9s %12s %14s %10s %14s %14s\n",
		"kernel", "launches", "threads", "work", "span", "modeled", "wall")
	for _, p := range rows {
		fmt.Fprintf(&b, "%-28s %9d %12d %14d %10d %14v %14v\n",
			p.Kernel, p.Launches, p.Threads, p.Work, p.Span, p.Modeled, p.Wall)
	}
	t := TotalProfile(rows)
	fmt.Fprintf(&b, "%-28s %9d %12d %14d %10d %14v %14v\n",
		t.Kernel, t.Launches, t.Threads, t.Work, t.Span, t.Modeled, t.Wall)
	return b.String()
}
