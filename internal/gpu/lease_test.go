package gpu

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// inlineExec is a minimal Executor that runs every task body itself,
// counting calls — a stand-in for the scheduler's worker pool.
type inlineExec struct {
	mu    sync.Mutex
	calls int
	tasks int
}

func (e *inlineExec) Execute(tasks []func()) {
	e.mu.Lock()
	e.calls++
	e.tasks += len(tasks)
	e.mu.Unlock()
	for _, fn := range tasks {
		fn()
	}
}

// TestLeasedDeviceRoutesThroughExecutor checks that a leased device sends
// every launch's worker bodies to the executor (never spawning its own
// goroutines) while keeping full Device semantics: thread coverage, stats,
// and per-kernel profile.
func TestLeasedDeviceRoutesThroughExecutor(t *testing.T) {
	exec := &inlineExec{}
	d := NewLeased(3, exec)
	if d.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", d.Workers())
	}
	const n = 1000
	seen := make([]bool, n)
	var mu sync.Mutex
	d.Launch("lease-test", n, func(tid int) int64 {
		mu.Lock()
		seen[tid] = true
		mu.Unlock()
		return 1
	})
	for tid, ok := range seen {
		if !ok {
			t.Fatalf("thread %d never ran", tid)
		}
	}
	if exec.calls != 1 || exec.tasks != 3 {
		t.Errorf("executor saw %d calls / %d tasks, want 1 / 3", exec.calls, exec.tasks)
	}
	if s := d.Stats(); s.Launches != 1 || s.Work != n {
		t.Errorf("stats = %+v, want 1 launch of %d work", s, int64(n))
	}
	if p := d.Profile(); len(p) != 1 || p[0].Kernel != "lease-test" {
		t.Errorf("profile = %+v", p)
	}
}

// TestBindRefusesLaunchesAfterCancel checks the kernel-launch cancellation
// boundary: once the bound context is done, TryLaunch returns a typed
// *CancelledError wrapping the context error without running any thread,
// and Launch panics with the same value.
func TestBindRefusesLaunchesAfterCancel(t *testing.T) {
	d := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	d.Bind(ctx)

	if err := d.TryLaunch("before", 8, func(int) int64 { return 1 }); err != nil {
		t.Fatalf("launch before cancel failed: %v", err)
	}

	cancel()
	ran := false
	err := d.TryLaunch("after", 8, func(int) int64 { ran = true; return 1 })
	if err == nil {
		t.Fatal("launch after cancel succeeded")
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CancelledError", err, err)
	}
	if ce.Kernel != "after" {
		t.Errorf("kernel = %q, want \"after\"", ce.Kernel)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err %v does not unwrap to context.Canceled", err)
	}
	if ran {
		t.Error("kernel body ran despite cancellation")
	}
	if s := d.Stats(); s.Launches != 1 {
		t.Errorf("refused launch was counted: %+v", s)
	}

	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*CancelledError); !ok {
				t.Errorf("Launch panicked with %T %v, want *CancelledError", r, r)
			}
		}()
		d.Launch("after-panic", 8, func(int) int64 { return 1 })
	}()

	// Rebinding to a live context lifts the refusal.
	d.Bind(context.Background())
	if err := d.TryLaunch("rebound", 8, func(int) int64 { return 1 }); err != nil {
		t.Fatalf("launch after rebind failed: %v", err)
	}
}
