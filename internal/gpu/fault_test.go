package gpu

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTryLaunchRecoversPanic checks that a panicking kernel thread surfaces
// as a typed *LaunchError instead of killing the process, on both the
// single-worker fast path and the goroutine pool.
func TestTryLaunchRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := New(workers)
		err := d.TryLaunch("boom", 1000, func(tid int) int64 {
			if tid == 17 {
				panic("kaboom")
			}
			return 1
		})
		if err == nil {
			t.Fatalf("workers=%d: no error returned", workers)
		}
		var lerr *LaunchError
		if !errors.As(err, &lerr) {
			t.Fatalf("workers=%d: error %T is not *LaunchError", workers, err)
		}
		if lerr.Kernel != "boom" || lerr.Tid != 17 || lerr.Value != "kaboom" {
			t.Errorf("workers=%d: unexpected LaunchError %+v", workers, lerr)
		}
		if len(lerr.Stack) == 0 {
			t.Errorf("workers=%d: LaunchError has no stack", workers)
		}
		if !strings.Contains(lerr.Error(), "boom") {
			t.Errorf("workers=%d: Error() = %q", workers, lerr.Error())
		}
	}
}

// TestLaunchPanicsTyped checks that the infallible Launch re-panics with the
// typed error so a guarded caller can recover it.
func TestLaunchPanicsTyped(t *testing.T) {
	d := New(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Launch did not panic")
		}
		if _, ok := r.(*LaunchError); !ok {
			t.Fatalf("panic value %T is not *LaunchError", r)
		}
	}()
	d.Launch("boom", 4, func(tid int) int64 { panic("x") })
}

// TestLaunchCancellation checks that a panic stops the launch early: with a
// large thread count, a panic at tid 0 must leave most threads unexecuted.
func TestLaunchCancellation(t *testing.T) {
	d := New(4)
	const n = 1 << 20
	var executed int64
	err := d.TryLaunch("cancel", n, func(tid int) int64 {
		if tid == 0 {
			panic("stop")
		}
		atomic.AddInt64(&executed, 1)
		return 1
	})
	if err == nil {
		t.Fatal("no error")
	}
	if got := atomic.LoadInt64(&executed); got >= n-1 {
		t.Errorf("cancellation ineffective: %d of %d threads ran", got, n)
	}
}

// TestErrorPanicUnwraps checks that panicking with an error value lets
// errors.Is see through the LaunchError.
func TestErrorPanicUnwraps(t *testing.T) {
	sentinel := errors.New("sentinel")
	d := New(1)
	err := d.TryLaunch("wrap", 1, func(tid int) int64 { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is failed to unwrap: %v", err)
	}
}

// TestFaultPlanPanic checks deterministic panic injection at the Nth
// matching launch, firing exactly once.
func TestFaultPlanPanic(t *testing.T) {
	d := New(2)
	d.InjectFaults(FaultPlan{Kernel: "target", Nth: 2, Kind: FaultPanic})
	ok := func(name string) error {
		return d.TryLaunch(name, 64, func(tid int) int64 { return 1 })
	}
	if err := ok("other/kernel"); err != nil {
		t.Fatalf("non-matching launch failed: %v", err)
	}
	if err := ok("target/a"); err != nil {
		t.Fatalf("first matching launch failed: %v", err)
	}
	err := ok("target/b")
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("second matching launch: want injected fault, got %v", err)
	}
	if err := ok("target/c"); err != nil {
		t.Fatalf("plan fired more than once: %v", err)
	}
	if d.FaultsArmed() != 0 {
		t.Errorf("FaultsArmed = %d after firing", d.FaultsArmed())
	}
}

// TestFaultPlanCorrupt checks that corruption skips exactly the last thread
// of the target launch and the launch still succeeds.
func TestFaultPlanCorrupt(t *testing.T) {
	d := New(2)
	d.InjectFaults(FaultPlan{Kernel: "fill", Kind: FaultCorrupt})
	const n = 1000
	out := make([]int32, n)
	if err := d.TryLaunch1("fill", n, func(tid int) { out[tid] = 1 }); err != nil {
		t.Fatalf("corrupted launch errored: %v", err)
	}
	for i := 0; i < n-1; i++ {
		if out[i] != 1 {
			t.Fatalf("thread %d skipped unexpectedly", i)
		}
	}
	if out[n-1] != 0 {
		t.Errorf("last thread's write survived; corruption not injected")
	}
	// Second matching launch runs clean.
	if err := d.TryLaunch1("fill", n, func(tid int) { out[tid] = 2 }); err != nil {
		t.Fatal(err)
	}
	if out[n-1] != 2 {
		t.Errorf("second launch corrupted too")
	}
}

// TestFaultClear checks that InjectFaults with no arguments clears plans.
func TestFaultClear(t *testing.T) {
	d := New(1)
	d.InjectFaults(FaultPlan{Kernel: "x", Kind: FaultPanic})
	d.InjectFaults()
	if err := d.TryLaunch("x", 8, func(tid int) int64 { return 1 }); err != nil {
		t.Fatalf("cleared plan still fired: %v", err)
	}
}

// TestAbortedLaunchStillAccounted checks that a failed launch contributes a
// launch count (and any partial work) to the profile, so incident forensics
// line up with the profiler.
func TestAbortedLaunchStillAccounted(t *testing.T) {
	d := New(1)
	before := d.Stats().Launches
	_ = d.TryLaunch("boom", 8, func(tid int) int64 {
		if tid == 4 {
			panic("x")
		}
		return 1
	})
	if got := d.Stats().Launches - before; got != 1 {
		t.Errorf("aborted launch accounted %d launches, want 1", got)
	}
	if d.Stats().Work < 4 {
		t.Errorf("partial work not accounted: %+v", d.Stats())
	}
}

// TestFaultPlanPanicValue checks that a plan's Panic value replaces
// ErrInjectedFault as the recovered panic, so chaos tests can simulate typed
// kernel failures such as a full hash table.
func TestFaultPlanPanicValue(t *testing.T) {
	sentinel := errors.New("table full")
	d := New(2)
	d.InjectFaults(FaultPlan{Kernel: "insert", Kind: FaultPanic, Panic: sentinel})
	err := d.TryLaunch("insert", 64, func(tid int) int64 { return 1 })
	if !errors.Is(err, sentinel) {
		t.Fatalf("injected panic value not surfaced: %v", err)
	}
	if errors.Is(err, ErrInjectedFault) {
		t.Errorf("custom panic value still wrapped ErrInjectedFault")
	}
}

// TestFaultPlanStall checks that a stall plan delays the launch without
// failing it, and that the delay gap is visible through the heartbeat.
func TestFaultPlanStall(t *testing.T) {
	d := New(2)
	hb := &Heartbeat{}
	d.SetHeartbeat(hb)
	d.InjectFaults(FaultPlan{Kernel: "slow", Kind: FaultStall, Stall: 30 * time.Millisecond})
	if err := d.TryLaunch("warm", 8, func(tid int) int64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	last := hb.Last()
	start := time.Now()
	if err := d.TryLaunch("slow", 8, func(tid int) int64 { return 1 }); err != nil {
		t.Fatalf("stalled launch errored: %v", err)
	}
	if got := time.Since(start); got < 30*time.Millisecond {
		t.Errorf("stall not applied: launch took %v", got)
	}
	if !hb.Last().After(last) {
		t.Errorf("heartbeat did not advance across the stalled launch")
	}
}

// TestFaultsSnapshotCarriesProgress checks that Faults() preserves internal
// fire-progress, so re-injecting the snapshot into a fresh device continues
// the Nth-launch countdown instead of restarting it.
func TestFaultsSnapshotCarriesProgress(t *testing.T) {
	d := New(1)
	d.InjectFaults(FaultPlan{Kernel: "k", Nth: 3, Kind: FaultPanic})
	kernel := func(tid int) int64 { return 1 }
	if err := d.TryLaunch("k", 4, kernel); err != nil {
		t.Fatal(err)
	}
	if err := d.TryLaunch("k", 4, kernel); err != nil {
		t.Fatal(err)
	}
	// Two of three matching launches seen; carry the plan to a new device.
	d2 := New(1)
	d2.InjectFaults(d.Faults()...)
	if err := d2.TryLaunch("k", 4, kernel); err == nil {
		t.Fatalf("carried plan did not fire on the 3rd cumulative launch")
	}
	if d2.FaultsArmed() != 0 {
		t.Errorf("FaultsArmed = %d after firing", d2.FaultsArmed())
	}
}

// TestHeartbeatBeats checks the heartbeat counters and the zero-value Last.
func TestHeartbeatBeats(t *testing.T) {
	hb := &Heartbeat{}
	if !hb.Last().IsZero() {
		t.Errorf("fresh heartbeat has non-zero Last")
	}
	d := New(2)
	d.SetHeartbeat(hb)
	if err := d.TryLaunch("k", 16, func(tid int) int64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	// One beat at the launch boundary, one when the launch is accounted.
	if hb.Beats() < 2 {
		t.Errorf("Beats = %d after one launch, want >= 2", hb.Beats())
	}
	if hb.Last().IsZero() {
		t.Errorf("Last still zero after beating")
	}
}
