// Package gpu simulates the execution model of a massively parallel
// processor (a CUDA-style GPU) on the host CPU. It is the substitute for the
// CUDA runtime used by the paper (see DESIGN.md): algorithms are expressed
// as data-parallel kernels with barrier semantics between launches — exactly
// the structure of the paper's GPU refactoring and balancing — and run on a
// goroutine worker pool.
//
// Because the reproduction host may have few cores (the reference machine
// has one), the device additionally records the work and span of every
// kernel launch and derives a modeled device time from a calibrated cost
// model. The modeled time is what the experiment harness reports as "GPU"
// time; wall-clock time is always reported alongside it. See EXPERIMENTS.md
// for the calibration discussion.
package gpu

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel describes the modeled device. Modeled kernel time follows
// Brent's bound:
//
//	LaunchOverhead + (work/Processors + span) * OpTime
//
// where work is the total operation count of the launch and span the
// maximum per-thread count, plus a fixed launch/synchronization overhead.
// This reproduces the two first-order effects in the paper's runtime data:
// launch overhead dominating small AIGs (the Fig. 7 crossover) and
// level-wise algorithms slowing down on deep AIGs (many launches, Fig. 8).
type CostModel struct {
	Processors     int           // concurrent hardware threads (RTX 3090 ~ 10496 CUDA cores)
	OpTime         time.Duration // modeled time per elementary operation per thread
	LaunchOverhead time.Duration // fixed cost per kernel launch
}

// DefaultModel is loosely calibrated to the paper's hardware: an RTX 3090
// with ~10k CUDA cores, a few-microsecond kernel launch overhead, and a
// per-operation cost matching a ~1.4 GHz SM clock with memory-bound access
// patterns (~10 ns per irregular global-memory operation).
var DefaultModel = CostModel{
	Processors:     10496,
	OpTime:         10 * time.Nanosecond,
	LaunchOverhead: 30 * time.Microsecond,
}

// SequentialReference is the modeled per-operation time of the sequential
// baseline on a CPU (~3 GHz, cache-friendly pointer chasing ≈ a few ns/op).
// Experiments use it to convert measured sequential wall-clock into the
// modeled regime when comparing against modeled device time.
const SequentialReference = 4 * time.Nanosecond

// Stats accumulates the execution profile of a device.
type Stats struct {
	Launches    int           // number of kernel launches
	Threads     int64         // total logical threads launched
	Work        int64         // total elementary operations across all threads
	Span        int64         // sum over launches of the max per-thread operations
	ModeledTime time.Duration // per the cost model
	SeqTime     time.Duration // modeled host-sequential portion (AddOverhead)
	WallTime    time.Duration // measured host time inside Launch
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Launches += other.Launches
	s.Threads += other.Threads
	s.Work += other.Work
	s.Span += other.Span
	s.ModeledTime += other.ModeledTime
	s.SeqTime += other.SeqTime
	s.WallTime += other.WallTime
}

func (s Stats) String() string {
	return fmt.Sprintf("launches=%d threads=%d work=%d span=%d modeled=%v wall=%v",
		s.Launches, s.Threads, s.Work, s.Span, s.ModeledTime, s.WallTime)
}

// Device executes kernels. It is safe for use by a single orchestration
// goroutine (kernel launches themselves are internally parallel; two
// concurrent Launch calls on one Device are not supported, matching a CUDA
// stream).
type Device struct {
	Model   CostModel
	workers int
	stats   Stats
}

// New creates a device backed by the given number of worker goroutines
// (0 means GOMAXPROCS) using the default cost model.
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{Model: DefaultModel, workers: workers}
}

// Workers returns the number of host worker goroutines.
func (d *Device) Workers() int { return d.workers }

// Stats returns the accumulated execution profile.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the accumulated profile.
func (d *Device) ResetStats() { d.stats = Stats{} }

// AddOverhead accounts an explicit host-side sequential phase into the
// modeled time (e.g. the sequential replacement step of rewriting).
func (d *Device) AddOverhead(ops int64) {
	d.stats.Work += ops
	d.stats.Span += ops
	dur := time.Duration(ops) * SequentialReference
	d.stats.ModeledTime += dur
	d.stats.SeqTime += dur
}

// Launch runs n logical threads of kernel and blocks until all complete (a
// kernel launch followed by a device barrier). The kernel receives the
// thread id in [0,n) and returns its elementary operation count, which feeds
// the cost model; return 1 when per-thread accounting is not meaningful.
//
// Threads must not communicate except through the data-race-free structures
// provided by this repository (disjoint output slots, the concurrent hash
// table, atomic counters) — run the test suite with -race to validate.
func (d *Device) Launch(name string, n int, kernel func(tid int) int64) {
	if n < 0 {
		panic("gpu: negative thread count")
	}
	start := time.Now()
	var work, maxOps int64
	if n > 0 {
		if d.workers == 1 {
			// Fast path: no goroutines, still the same kernel semantics.
			for tid := 0; tid < n; tid++ {
				ops := kernel(tid)
				work += ops
				if ops > maxOps {
					maxOps = ops
				}
			}
		} else {
			work, maxOps = d.launchParallel(n, kernel)
		}
	}
	d.stats.Launches++
	d.stats.Threads += int64(n)
	d.stats.Work += work
	d.stats.Span += maxOps
	d.stats.ModeledTime += d.Model.LaunchOverhead +
		time.Duration(work/int64(d.Model.Processors)+maxOps)*d.Model.OpTime
	d.stats.WallTime += time.Since(start)
	_ = name
}

func (d *Device) launchParallel(n int, kernel func(tid int) int64) (work, maxOps int64) {
	const chunk = 256
	var next int64
	var wg sync.WaitGroup
	var totalWork, globalMax int64
	workers := d.workers
	if w := (n + chunk - 1) / chunk; w < workers {
		workers = w
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var localWork, localMax int64
			for {
				base := atomic.AddInt64(&next, chunk) - chunk
				if base >= int64(n) {
					break
				}
				end := base + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for tid := base; tid < end; tid++ {
					ops := kernel(int(tid))
					localWork += ops
					if ops > localMax {
						localMax = ops
					}
				}
			}
			atomic.AddInt64(&totalWork, localWork)
			for {
				cur := atomic.LoadInt64(&globalMax)
				if localMax <= cur || atomic.CompareAndSwapInt64(&globalMax, cur, localMax) {
					break
				}
			}
		}()
	}
	wg.Wait()
	return totalWork, globalMax
}

// Launch1 is Launch with unit per-thread cost.
func (d *Device) Launch1(name string, n int, kernel func(tid int)) {
	d.Launch(name, n, func(tid int) int64 {
		kernel(tid)
		return 1
	})
}

// ---------------------------------------------------------------------------
// Device primitives: scan, compact, reduce. These are the standard GPU
// building blocks the paper's algorithms rely on (gathering per-thread cut
// lists into a new frontier array is a scan+scatter).
// ---------------------------------------------------------------------------

// ExclusiveScan computes the exclusive prefix sum of counts into a new slice
// and returns it together with the total. Modeled as a work-efficient device
// scan: its cost is accounted as ~2 ops per element over log-depth passes.
func (d *Device) ExclusiveScan(counts []int32) ([]int32, int32) {
	n := len(counts)
	out := make([]int32, n)
	if n == 0 {
		return out, 0
	}
	// Host execution is a simple linear pass (fastest on CPU); the modeled
	// cost reflects a Blelloch scan on the device.
	var sum int32
	for i, c := range counts {
		out[i] = sum
		sum += c
	}
	d.accountScan(n)
	return out, sum
}

func (d *Device) accountScan(n int) {
	passes := 2 * ceilLog2(n)
	if passes == 0 {
		passes = 1
	}
	d.stats.Launches += passes
	d.stats.Threads += int64(n)
	d.stats.Work += int64(2 * n)
	d.stats.Span += int64(passes)
	waves := int64((n + d.Model.Processors - 1) / d.Model.Processors)
	if waves == 0 {
		waves = 1
	}
	d.stats.ModeledTime += time.Duration(passes)*d.Model.LaunchOverhead +
		time.Duration(waves*int64(passes))*d.Model.OpTime
}

// Compact gathers the elements of src whose keep flag is set into a new
// densely packed slice, preserving order (stream compaction).
func Compact[T any](d *Device, src []T, keep []bool) []T {
	counts := make([]int32, len(src))
	d.Launch1("compact/flags", len(src), func(tid int) {
		if keep[tid] {
			counts[tid] = 1
		}
	})
	offsets, total := d.ExclusiveScan(counts)
	out := make([]T, total)
	d.Launch1("compact/scatter", len(src), func(tid int) {
		if keep[tid] {
			out[offsets[tid]] = src[tid]
		}
	})
	return out
}

// ReduceMax returns the maximum of values (0 for an empty slice), accounted
// as a log-depth device reduction.
func (d *Device) ReduceMax(values []int32) int32 {
	var m int32
	for _, v := range values {
		if v > m {
			m = v
		}
	}
	d.accountScan(len(values))
	return m
}

// ReduceSum returns the sum of values, accounted as a device reduction.
func (d *Device) ReduceSum(values []int32) int64 {
	var s int64
	for _, v := range values {
		s += int64(v)
	}
	d.accountScan(len(values))
	return s
}

// SortUniqueInt32 sorts ids and removes duplicates, modeled as a device
// radix sort + unique compaction. Used for frontier de-duplication.
func (d *Device) SortUniqueInt32(ids []int32) []int32 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	var last int32 = -1
	for _, id := range ids {
		if id != last {
			out = append(out, id)
			last = id
		}
	}
	// Radix sort: ~4 passes over the data plus a unique pass.
	n := len(ids)
	d.stats.Launches += 5
	d.stats.Threads += int64(5 * n)
	d.stats.Work += int64(5 * n)
	d.stats.Span += 5
	waves := int64((n + d.Model.Processors - 1) / d.Model.Processors)
	if waves == 0 {
		waves = 1
	}
	d.stats.ModeledTime += 5*d.Model.LaunchOverhead + time.Duration(5*waves)*d.Model.OpTime
	return out
}

func ceilLog2(x int) int {
	n := 0
	for v := 1; v < x; v <<= 1 {
		n++
	}
	return n
}
