// Package gpu simulates the execution model of a massively parallel
// processor (a CUDA-style GPU) on the host CPU. It is the substitute for the
// CUDA runtime used by the paper (see DESIGN.md): algorithms are expressed
// as data-parallel kernels with barrier semantics between launches — exactly
// the structure of the paper's GPU refactoring and balancing — and run on a
// goroutine worker pool.
//
// Because the reproduction host may have few cores (the reference machine
// has one), the device additionally records the work and span of every
// kernel launch and derives a modeled device time from a calibrated cost
// model. The modeled time is what the experiment harness reports as "GPU"
// time; wall-clock time is always reported alongside it. See EXPERIMENTS.md
// for the calibration discussion.
package gpu

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel describes the modeled device. Modeled kernel time follows
// Brent's bound:
//
//	LaunchOverhead + (work/Processors + span) * OpTime
//
// where work is the total operation count of the launch and span the
// maximum per-thread count, plus a fixed launch/synchronization overhead.
// This reproduces the two first-order effects in the paper's runtime data:
// launch overhead dominating small AIGs (the Fig. 7 crossover) and
// level-wise algorithms slowing down on deep AIGs (many launches, Fig. 8).
type CostModel struct {
	Processors     int           // concurrent hardware threads (RTX 3090 ~ 10496 CUDA cores)
	OpTime         time.Duration // modeled time per elementary operation per thread
	LaunchOverhead time.Duration // fixed cost per kernel launch
}

// DefaultModel is loosely calibrated to the paper's hardware: an RTX 3090
// with ~10k CUDA cores, a few-microsecond kernel launch overhead, and a
// per-operation cost matching a ~1.4 GHz SM clock with memory-bound access
// patterns (~10 ns per irregular global-memory operation).
var DefaultModel = CostModel{
	Processors:     10496,
	OpTime:         10 * time.Nanosecond,
	LaunchOverhead: 30 * time.Microsecond,
}

// SequentialReference is the modeled per-operation time of the sequential
// baseline on a CPU (~3 GHz, cache-friendly pointer chasing ≈ a few ns/op).
// Experiments use it to convert measured sequential wall-clock into the
// modeled regime when comparing against modeled device time.
const SequentialReference = 4 * time.Nanosecond

// Stats accumulates the execution profile of a device.
type Stats struct {
	Launches    int           // number of kernel launches
	Threads     int64         // total logical threads launched
	Work        int64         // total elementary operations across all threads
	Span        int64         // sum over launches of the max per-thread operations
	ModeledTime time.Duration // per the cost model
	SeqTime     time.Duration // modeled host-sequential portion (AddOverhead)
	WallTime    time.Duration // measured host time inside Launch
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Launches += other.Launches
	s.Threads += other.Threads
	s.Work += other.Work
	s.Span += other.Span
	s.ModeledTime += other.ModeledTime
	s.SeqTime += other.SeqTime
	s.WallTime += other.WallTime
}

// Sub returns s minus other: the execution profile accumulated between the
// snapshot other and the snapshot s. Use it to attribute device time to a
// phase: before := d.Stats(); ...; delta := d.Stats().Sub(before).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Launches:    s.Launches - other.Launches,
		Threads:     s.Threads - other.Threads,
		Work:        s.Work - other.Work,
		Span:        s.Span - other.Span,
		ModeledTime: s.ModeledTime - other.ModeledTime,
		SeqTime:     s.SeqTime - other.SeqTime,
		WallTime:    s.WallTime - other.WallTime,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("launches=%d threads=%d work=%d span=%d modeled=%v wall=%v",
		s.Launches, s.Threads, s.Work, s.Span, s.ModeledTime, s.WallTime)
}

// Device executes kernels. It is safe for use by a single orchestration
// goroutine (kernel launches themselves are internally parallel; two
// concurrent Launch calls on one Device are not supported, matching a CUDA
// stream).
type Device struct {
	Model CostModel
	// Trace, when non-nil, is invoked synchronously for every accounted
	// device operation (kernel launch, synthetic primitive, sequential
	// overhead) with its full accounting record. A nil Trace costs a single
	// predictable branch per launch (see BenchmarkLaunchOverhead).
	Trace   func(TraceEvent)
	workers int
	exec    Executor        // nil = spawn goroutines per launch; else a shared pool
	ctx     context.Context // nil = never cancelled; checked at launch boundaries
	hb      *Heartbeat      // nil = no liveness reporting
	stats   Stats
	profile map[string]*KernelProfile
	faults  []FaultPlan
}

// Heartbeat is a liveness signal a device bumps at every kernel-launch
// boundary. A watchdog on another goroutine polls Last(): a job whose
// device heartbeat goes quiet is stuck inside a kernel (or between
// launches) and can be preempted. All methods are safe for concurrent use;
// the beat path is two atomic stores, cheap enough for every launch.
type Heartbeat struct {
	beats atomic.Int64
	last  atomic.Int64 // unix nanoseconds of the latest beat
}

// Beat records a liveness tick now.
func (h *Heartbeat) Beat() {
	h.last.Store(time.Now().UnixNano())
	h.beats.Add(1)
}

// Beats returns the number of ticks recorded so far.
func (h *Heartbeat) Beats() int64 { return h.beats.Load() }

// Last returns the wall-clock time of the latest tick (the zero time before
// the first beat).
func (h *Heartbeat) Last() time.Time {
	ns := h.last.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// SetHeartbeat attaches a liveness heartbeat to the device: every subsequent
// kernel launch and accounted primitive beats it. Several devices may share
// one heartbeat (the partition runner's sub-jobs all report into their
// parent job's). A nil h removes the binding. Like Bind, SetHeartbeat must
// be called from the orchestration goroutine.
func (d *Device) SetHeartbeat(h *Heartbeat) { d.hb = h }

// Executor runs the host worker bodies of a kernel launch on behalf of a
// device. An implementation typically multiplexes many devices over one
// bounded goroutine pool (see internal/sched.Pool), so that N concurrent
// jobs share a fixed host worker budget instead of oversubscribing the
// machine N-fold. Execute must run every task to completion before
// returning — it is the device barrier — and tasks of one call are
// independent (they never block on each other), so running them with any
// degree of concurrency, including sequentially, is correct.
type Executor interface {
	Execute(tasks []func())
}

// New creates a device backed by the given number of worker goroutines
// (0 means GOMAXPROCS) using the default cost model.
func New(workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{Model: DefaultModel, workers: workers}
}

// NewLeased creates a device whose kernel launches draw host workers from
// exec instead of spawning private goroutines: a capped sub-device leased
// from a shared pool. workers bounds the worker bodies submitted per launch
// (the lease size; minimum 1). The leased device keeps its own Stats and
// per-kernel profile, so per-job accounting is unchanged.
func NewLeased(workers int, exec Executor) *Device {
	if workers <= 0 {
		workers = 1
	}
	return &Device{Model: DefaultModel, workers: workers, exec: exec}
}

// Bind attaches a cancellation context to the device. Every subsequent
// Launch/TryLaunch checks it first and refuses to start when the context is
// done, returning (or panicking with, for the infallible wrappers) a
// *CancelledError that wraps ctx.Err(). A nil ctx removes the binding.
// Bind must be called from the orchestration goroutine, like Launch.
func (d *Device) Bind(ctx context.Context) { d.ctx = ctx }

// CancelledError reports a kernel launch refused because the context bound
// to the device (Device.Bind) was cancelled. Unwrap exposes the context
// error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as expected.
type CancelledError struct {
	Kernel string // kernel name passed to Launch
	Err    error  // the context error
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("gpu: kernel %q: launch cancelled: %v", e.Kernel, e.Err)
}

func (e *CancelledError) Unwrap() error { return e.Err }

// Workers returns the number of host worker goroutines.
func (d *Device) Workers() int { return d.workers }

// Stats returns the accumulated execution profile.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the accumulated aggregate and per-kernel profiles.
func (d *Device) ResetStats() {
	d.stats = Stats{}
	d.profile = nil
}

// AddOverhead accounts an explicit host-side sequential phase into the
// modeled time (e.g. the sequential replacement step of rewriting),
// attributed to name in the per-kernel profile (Launches stays 0: this is
// not a kernel).
func (d *Device) AddOverhead(name string, ops int64) {
	dur := time.Duration(ops) * SequentialReference
	d.account(name, 0, 0, ops, ops, dur, dur, 0)
}

// Launch runs n logical threads of kernel and blocks until all complete (a
// kernel launch followed by a device barrier). The kernel receives the
// thread id in [0,n) and returns its elementary operation count, which feeds
// the cost model; return 1 when per-thread accounting is not meaningful.
//
// Threads must not communicate except through the data-race-free structures
// provided by this repository (disjoint output slots, the concurrent hash
// table, atomic counters) — run the test suite with -race to validate.
//
// A panicking kernel thread does not kill the process outright: the panic is
// recovered on its worker goroutine, the rest of the launch is cancelled,
// and Launch re-panics with a typed *LaunchError on the orchestration
// goroutine so a guarded caller (see package flow) can contain the failure.
// Use TryLaunch to receive the error as a return value instead.
func (d *Device) Launch(name string, n int, kernel func(tid int) int64) {
	if err := d.TryLaunch(name, n, kernel); err != nil {
		panic(err)
	}
}

// TryLaunch is Launch returning a *LaunchError (as error) instead of
// panicking when a kernel thread panics. Partial work executed before the
// abort is still accounted to the profile.
func (d *Device) TryLaunch(name string, n int, kernel func(tid int) int64) error {
	if n < 0 {
		panic("gpu: negative thread count")
	}
	if d.ctx != nil {
		if err := d.ctx.Err(); err != nil {
			return &CancelledError{Kernel: name, Err: err}
		}
	}
	if d.hb != nil {
		d.hb.Beat() // launch boundary reached: the job is alive
	}
	kernel = d.applyFault(name, n, kernel)
	start := time.Now()
	var work, maxOps int64
	var lerr *LaunchError
	if n > 0 {
		if d.workers == 1 && d.exec == nil {
			// Fast path: no goroutines, still the same kernel semantics.
			// Leased devices skip it so their work always runs on (and is
			// bounded by) the shared pool.
			for tid := 0; tid < n; tid++ {
				ops, err := runThread(name, tid, kernel)
				if err != nil {
					lerr = err
					break
				}
				work += ops
				if ops > maxOps {
					maxOps = ops
				}
			}
		} else {
			work, maxOps, lerr = d.launchParallel(name, n, kernel)
		}
	}
	modeled := d.Model.LaunchOverhead +
		time.Duration(work/int64(d.Model.Processors)+maxOps)*d.Model.OpTime
	d.account(name, 1, int64(n), work, maxOps, modeled, 0, time.Since(start))
	if lerr != nil {
		return lerr
	}
	return nil
}

// runThread executes one logical thread, converting a kernel panic into a
// *LaunchError with the thread's stack.
func runThread(name string, tid int, kernel func(tid int) int64) (ops int64, lerr *LaunchError) {
	defer func() {
		if r := recover(); r != nil {
			lerr = &LaunchError{Kernel: name, Tid: tid, Value: r, Stack: debug.Stack()}
		}
	}()
	return kernel(tid), nil
}

func (d *Device) launchParallel(name string, n int, kernel func(tid int) int64) (work, maxOps int64, lerr *LaunchError) {
	const chunk = 256
	var next int64
	var totalWork, globalMax int64
	var stop int32          // set when a thread panics; cancels remaining threads
	var firstErr sync.Mutex // guards lerr (failure path only)
	workers := d.workers
	if w := (n + chunk - 1) / chunk; w < workers {
		workers = w
	}
	body := func() {
		var localWork, localMax int64
		for atomic.LoadInt32(&stop) == 0 {
			base := atomic.AddInt64(&next, chunk) - chunk
			if base >= int64(n) {
				break
			}
			end := base + chunk
			if end > int64(n) {
				end = int64(n)
			}
			for tid := base; tid < end; tid++ {
				ops, err := runThread(name, int(tid), kernel)
				if err != nil {
					atomic.StoreInt32(&stop, 1)
					firstErr.Lock()
					if lerr == nil {
						lerr = err
					}
					firstErr.Unlock()
					break
				}
				localWork += ops
				if ops > localMax {
					localMax = ops
				}
			}
			if atomic.LoadInt32(&stop) != 0 {
				break
			}
		}
		atomic.AddInt64(&totalWork, localWork)
		for {
			cur := atomic.LoadInt64(&globalMax)
			if localMax <= cur || atomic.CompareAndSwapInt64(&globalMax, cur, localMax) {
				break
			}
		}
	}
	if d.exec != nil {
		// Leased device: the worker bodies run on the shared pool, which
		// bounds host concurrency across all devices leased from it.
		tasks := make([]func(), workers)
		for i := range tasks {
			tasks[i] = body
		}
		d.exec.Execute(tasks)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				body()
			}()
		}
		wg.Wait()
	}
	return totalWork, globalMax, lerr
}

// Launch1 is Launch with unit per-thread cost.
func (d *Device) Launch1(name string, n int, kernel func(tid int)) {
	d.Launch(name, n, func(tid int) int64 {
		kernel(tid)
		return 1
	})
}

// TryLaunch1 is Launch1 returning a *LaunchError (as error) instead of
// panicking when a kernel thread panics.
func (d *Device) TryLaunch1(name string, n int, kernel func(tid int)) error {
	return d.TryLaunch(name, n, func(tid int) int64 {
		kernel(tid)
		return 1
	})
}

// ---------------------------------------------------------------------------
// Device primitives: scan, compact, reduce. These are the standard GPU
// building blocks the paper's algorithms rely on (gathering per-thread cut
// lists into a new frontier array is a scan+scatter).
// ---------------------------------------------------------------------------

// ExclusiveScan computes the exclusive prefix sum of counts into a new slice
// and returns it together with the total. Modeled as a work-efficient device
// scan: its cost is accounted as ~2 ops per element over log-depth passes,
// attributed to name in the per-kernel profile.
func (d *Device) ExclusiveScan(name string, counts []int32) ([]int32, int32) {
	n := len(counts)
	out := make([]int32, n)
	if n == 0 {
		return out, 0
	}
	// Host execution is a simple linear pass (fastest on CPU); the modeled
	// cost reflects a Blelloch scan on the device.
	var sum int32
	for i, c := range counts {
		out[i] = sum
		sum += c
	}
	d.accountScan(name, n)
	return out, sum
}

// accountScan charges a log-depth device scan/reduction over n elements to
// name.
func (d *Device) accountScan(name string, n int) {
	passes := 2 * ceilLog2(n)
	if passes == 0 {
		passes = 1
	}
	waves := int64((n + d.Model.Processors - 1) / d.Model.Processors)
	if waves == 0 {
		waves = 1
	}
	modeled := time.Duration(passes)*d.Model.LaunchOverhead +
		time.Duration(waves*int64(passes))*d.Model.OpTime
	d.account(name, passes, int64(n), int64(2*n), int64(passes), modeled, 0, 0)
}

// Compact gathers the elements of src whose keep flag is set into a new
// densely packed slice, preserving order (stream compaction). Its three
// internal launches are attributed to name + "/flags", "/scan", "/scatter".
func Compact[T any](d *Device, name string, src []T, keep []bool) []T {
	counts := make([]int32, len(src))
	d.Launch1(name+"/flags", len(src), func(tid int) {
		if keep[tid] {
			counts[tid] = 1
		}
	})
	offsets, total := d.ExclusiveScan(name+"/scan", counts)
	out := make([]T, total)
	d.Launch1(name+"/scatter", len(src), func(tid int) {
		if keep[tid] {
			out[offsets[tid]] = src[tid]
		}
	})
	return out
}

// ReduceMax returns the maximum of values, accounted as a log-depth device
// reduction. The reduction identity is math.MinInt32, which is returned for
// an empty slice — all-negative inputs reduce correctly.
func (d *Device) ReduceMax(name string, values []int32) int32 {
	m := int32(math.MinInt32)
	for _, v := range values {
		if v > m {
			m = v
		}
	}
	d.accountScan(name, len(values))
	return m
}

// ReduceSum returns the sum of values, accounted as a device reduction.
func (d *Device) ReduceSum(name string, values []int32) int64 {
	var s int64
	for _, v := range values {
		s += int64(v)
	}
	d.accountScan(name, len(values))
	return s
}

// SortUniqueInt32 returns a freshly allocated sorted slice of the distinct
// values of ids, leaving ids untouched. Modeled as a device radix sort +
// unique compaction, attributed to name. Used for frontier de-duplication.
func (d *Device) SortUniqueInt32(name string, ids []int32) []int32 {
	sorted := append([]int32(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	var last int32 = -1
	for _, id := range sorted {
		if id != last {
			out = append(out, id)
			last = id
		}
	}
	// Radix sort: ~4 passes over the data plus a unique pass.
	n := len(ids)
	waves := int64((n + d.Model.Processors - 1) / d.Model.Processors)
	if waves == 0 {
		waves = 1
	}
	modeled := 5*d.Model.LaunchOverhead + time.Duration(5*waves)*d.Model.OpTime
	d.account(name, 5, int64(5*n), int64(5*n), 5, modeled, 0, 0)
	return out
}

func ceilLog2(x int) int {
	n := 0
	for v := 1; v < x; v <<= 1 {
		n++
	}
	return n
}
