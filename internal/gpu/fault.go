package gpu

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// LaunchError reports a kernel launch that was aborted because one of its
// logical threads panicked. The panic is recovered on the worker goroutine,
// the remaining threads of the launch are cancelled, and the error surfaces
// on the orchestration goroutine through TryLaunch (or, for the infallible
// Launch wrappers, as a re-panic carrying this typed value so that a guarded
// caller can recover it without losing the process).
type LaunchError struct {
	Kernel string // kernel name passed to Launch
	Tid    int    // logical thread id whose kernel panicked
	Value  any    // the recovered panic value
	Stack  []byte // stack trace of the panicking thread
}

func (e *LaunchError) Error() string {
	return fmt.Sprintf("gpu: kernel %q: thread %d panicked: %v", e.Kernel, e.Tid, e.Value)
}

// Unwrap exposes a panic value that is itself an error (for example
// hashtable.ErrTableFull) to errors.Is / errors.As chains.
func (e *LaunchError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ErrInjectedFault is the panic value used by FaultPanic injections, so
// tests can assert that a recovered incident traces back to the injector.
var ErrInjectedFault = errors.New("gpu: injected fault")

// FaultKind selects what a FaultPlan does to its target launch.
type FaultKind int

const (
	// FaultPanic makes thread 0 of the target launch panic with
	// ErrInjectedFault (or the plan's Panic value, when set), exercising
	// the panic-containment path.
	FaultPanic FaultKind = iota + 1
	// FaultCorrupt silently skips the last thread of the target launch —
	// its writes never happen — modeling a lost or corrupted thread. The
	// launch itself succeeds; downstream invariant and equivalence gates
	// are expected to catch the damage.
	FaultCorrupt
	// FaultStall makes thread 0 of the target launch sleep for the plan's
	// Stall duration (default 250ms) before running, modeling a stuck
	// kernel: the launch eventually completes and the worker is released,
	// but no launch boundary is reached while the stall lasts, so a
	// watchdog polling the device Heartbeat sees the job go quiet and can
	// preempt it (the next launch then refuses with a *CancelledError).
	FaultStall
)

// FaultPlan deterministically injects one fault into the Nth kernel launch
// whose name contains Kernel (substring match). Nth is 1-based; 0 means the
// first match. Each plan fires at most once. Fault injection is a test
// facility: plans are installed with Device.InjectFaults and evaluated on
// the single orchestration goroutine, so the trigger point is exactly
// reproducible across runs and worker counts.
type FaultPlan struct {
	Kernel string
	Nth    int
	Kind   FaultKind
	// Panic, when non-nil, replaces ErrInjectedFault as the panic value of a
	// FaultPanic plan. Chaos tests use it to simulate typed kernel failures
	// (e.g. hashtable.ErrTableFull) without reaching into the engines.
	Panic error
	// Stall is the sleep duration of a FaultStall plan (0 = 250ms).
	Stall time.Duration

	seen int // launches matched so far (internal)
}

// InjectFaults installs fault plans on the device, replacing any previous
// plans. Pass no arguments to clear.
func (d *Device) InjectFaults(plans ...FaultPlan) {
	d.faults = append([]FaultPlan(nil), plans...)
}

// Faults returns a copy of the installed plans, including their internal
// fire-progress, so a supervisor can carry not-yet-fired plans across job
// attempts: snapshot the device before a retry and re-inject into the fresh
// lease, and a plan armed for the Nth matching launch keeps counting from
// where the failed attempt left off.
func (d *Device) Faults() []FaultPlan {
	return append([]FaultPlan(nil), d.faults...)
}

// FaultsArmed reports how many installed plans have not fired yet.
func (d *Device) FaultsArmed() int {
	n := 0
	for i := range d.faults {
		nth := d.faults[i].Nth
		if nth == 0 {
			nth = 1
		}
		if d.faults[i].seen < nth {
			n++
		}
	}
	return n
}

// applyFault checks the installed plans against a launch about to run and,
// when one fires, wraps the kernel accordingly. Called on the orchestration
// goroutine only.
func (d *Device) applyFault(name string, n int, kernel func(tid int) int64) func(tid int) int64 {
	for i := range d.faults {
		p := &d.faults[i]
		if p.Kind == 0 || !strings.Contains(name, p.Kernel) {
			continue
		}
		nth := p.Nth
		if nth == 0 {
			nth = 1
		}
		if p.seen >= nth {
			continue // already fired
		}
		p.seen++
		if p.seen != nth {
			continue
		}
		inner := kernel
		switch p.Kind {
		case FaultPanic:
			val := p.Panic
			return func(tid int) int64 {
				if tid == 0 {
					if val != nil {
						panic(val)
					}
					panic(fmt.Errorf("%w: kernel %q", ErrInjectedFault, name))
				}
				return inner(tid)
			}
		case FaultStall:
			stall := p.Stall
			if stall <= 0 {
				stall = 250 * time.Millisecond
			}
			return func(tid int) int64 {
				if tid == 0 {
					time.Sleep(stall)
				}
				return inner(tid)
			}
		case FaultCorrupt:
			last := n - 1
			return func(tid int) int64 {
				if tid == last {
					return 1 // the thread's writes are lost
				}
				return inner(tid)
			}
		}
	}
	return kernel
}
