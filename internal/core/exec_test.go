package core

import (
	"testing"

	"aigre/internal/aig"
	"aigre/internal/factor"
)

// buildChain constructs x0&x1&x2&x3 as a left-deep chain with fanouts so the
// MFFC boundaries are controlled explicitly.
func buildChain(t *testing.T) (*aig.AIG, []aig.Lit, []aig.Lit) {
	t.Helper()
	a := aig.New(4)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(n1, a.PI(2))
	n3 := a.NewAnd(n2, a.PI(3))
	a.AddPO(n3)
	a.EnableFanouts()
	return a, []aig.Lit{a.PI(0), a.PI(1), a.PI(2), a.PI(3)}, []aig.Lit{n1, n2, n3}
}

func litTree(v int, neg bool) *factor.Tree {
	return &factor.Tree{Kind: factor.KindLit, Var: v, Neg: neg}
}

func andTree(cs ...*factor.Tree) *factor.Tree {
	return &factor.Tree{Kind: factor.KindAnd, Children: cs}
}

func TestMffcMembersBounded(t *testing.T) {
	a, _, nodes := buildChain(t)
	n1, n3 := nodes[0], nodes[2]
	// Full MFFC of n3 is the whole chain.
	full := MffcMembers(a, n3.Var(), nil)
	if len(full) != 3 {
		t.Fatalf("full MFFC size = %d, want 3", len(full))
	}
	// Bounded by leaf n1: the dereference must stop there.
	bounded := MffcMembers(a, n3.Var(), []int32{n1.Var(), 3, 4})
	if len(bounded) != 2 || bounded[n1.Var()] {
		t.Fatalf("bounded MFFC = %v, want {n2,n3}", bounded)
	}
}

func TestDryRunCostCountsMisses(t *testing.T) {
	a, pis, _ := buildChain(t)
	// A tree the network does not contain: (x0&x3)&(x1&x2).
	tree := andTree(andTree(litTree(0, false), litTree(3, false)),
		andTree(litTree(1, false), litTree(2, false)))
	prog := Linearize(tree, false)
	cost := DryRunCost(a, prog, pis, nil)
	if cost != 3 {
		t.Errorf("cost = %d, want 3 fresh nodes", cost)
	}
}

func TestDryRunCostFreeHitsOutsideMffc(t *testing.T) {
	a, pis, nodes := buildChain(t)
	n3 := nodes[2]
	// Rebuild exactly the existing chain: hits at every level are free when
	// no MFFC is given.
	tree := andTree(andTree(andTree(litTree(0, false), litTree(1, false)), litTree(2, false)), litTree(3, false))
	prog := Linearize(tree, false)
	if cost := DryRunCost(a, prog, pis, nil); cost != 0 {
		t.Errorf("cost = %d, want 0 (all strash hits)", cost)
	}
	// With the MFFC of n3 declared, reusing its members must be charged:
	// hitting n3 (the deepest hit) revives its whole chain.
	mffc := MffcMembers(a, n3.Var(), nil)
	if cost := DryRunCost(a, prog, pis, mffc); cost != 3 {
		t.Errorf("cost = %d, want 3 (full revival through the chain)", cost)
	}
}

func TestDryRunCostRevivalCountedOnce(t *testing.T) {
	a, pis, nodes := buildChain(t)
	n3 := nodes[2]
	// Tree that reuses n1 twice: (x0&x1) & ((x0&x1) & x2): after
	// linearization the op (x0&x1) resolves to n1 both times; revival of n1
	// must be charged once, plus the fresh top nodes.
	sub := andTree(litTree(0, false), litTree(1, false))
	tree := andTree(sub, andTree(andTree(litTree(0, false), litTree(1, false)), litTree(2, false)))
	prog := Linearize(tree, false)
	mffc := MffcMembers(a, n3.Var(), nil)
	cost := DryRunCost(a, prog, pis, mffc)
	// Hits: n1 (revive: 1), n2 = (n1&x2) (revive: 1); the top (n1 & n2) is
	// not in the network -> 1 miss. Total 3.
	if cost != 3 {
		t.Errorf("cost = %d, want 3 (n1+n2 revived once, one miss)", cost)
	}
}

func TestBuildProgramAvoidingAbortsOnSelf(t *testing.T) {
	a, pis, nodes := buildChain(t)
	n2 := nodes[1]
	// Rebuilding n2's exact structure must abort (avoid = n2) and leave no
	// dangling nodes behind.
	tree := andTree(andTree(litTree(0, false), litTree(1, false)), litTree(2, false))
	prog := Linearize(tree, false)
	before := a.NumAnds()
	_, ok := BuildProgramAvoiding(a, prog, pis, n2.Var())
	if ok {
		t.Fatalf("reconstruction of the avoided node must fail")
	}
	if a.NumAnds() != before {
		t.Errorf("abort leaked %d nodes", a.NumAnds()-before)
	}
}

func TestBuildProgramAvoidingBuilds(t *testing.T) {
	a, pis, _ := buildChain(t)
	tree := andTree(litTree(0, false), litTree(3, false))
	prog := Linearize(tree, false)
	lit, ok := BuildProgramAvoiding(a, prog, pis, 9999)
	if !ok {
		t.Fatal("build failed")
	}
	if !a.IsAnd(lit.Var()) {
		t.Errorf("result %v is not an AND node", lit)
	}
}

func TestMffcSizeLiveMatchesMembers(t *testing.T) {
	a, _, nodes := buildChain(t)
	n3 := nodes[2]
	if got, want := MffcSizeLive(a, n3.Var()), len(MffcMembers(a, n3.Var(), nil)); got != want {
		t.Errorf("MffcSizeLive = %d, members = %d", got, want)
	}
}
