package core

import (
	"aigre/internal/aig"
	"aigre/internal/factor"
)

// Ref is an operand of a linearized cone program. It encodes, in one int32:
// bit 0 the complement flag, bits 1-2 the kind, the remaining bits an index.
type Ref int32

const (
	refConst Ref = 0 // index unused; complement bit selects true/false
	refLeaf  Ref = 2 // index into the cone's leaf array
	refOp    Ref = 4 // index of an earlier op in the program
	refKind  Ref = 6
)

// MakeRef builds a reference of the given kind.
func MakeRef(kind Ref, idx int, compl bool) Ref {
	r := kind | Ref(idx<<3)
	if compl {
		r |= 1
	}
	return r
}

// ConstRef returns a constant reference (value selects true/false).
func ConstRef(value bool) Ref { return MakeRef(refConst, 0, value) }

// LeafRef returns a reference to cone leaf i, optionally complemented.
func LeafRef(i int, neg bool) Ref { return MakeRef(refLeaf, i, neg) }

// Kind returns the reference kind (refConst, refLeaf or refOp).
func (r Ref) Kind() Ref { return r & refKind }

// Index returns the encoded index.
func (r Ref) Index() int { return int(r >> 3) }

// IsCompl reports whether the reference is complemented.
func (r Ref) IsCompl() bool { return r&1 != 0 }

// Not returns the complemented reference.
func (r Ref) Not() Ref { return r ^ 1 }

// NotCond complements the reference when c is true.
func (r Ref) NotCond(c bool) Ref {
	if c {
		return r ^ 1
	}
	return r
}

// Op is one binary AND in a cone program.
type Op struct{ A, B Ref }

// Program is a linearized factored form: a sequence of AND operations whose
// operands reference constants, cone leaves, or earlier ops. The parallel
// replacement engine executes one op per cone per insertion pass.
type Program struct {
	Ops  []Op
	Root Ref // the cone's output
}

// Linearize flattens a factored tree into a program. compl is folded into
// the returned root reference. Tree variable v maps to leaf v.
func Linearize(t *factor.Tree, compl bool) Program {
	var p Program
	p.Root = p.emit(t).NotCond(compl)
	return p
}

// emit returns the reference computing t, appending ops as needed.
func (p *Program) emit(t *factor.Tree) Ref {
	switch t.Kind {
	case factor.KindConst0:
		return MakeRef(refConst, 0, false)
	case factor.KindConst1:
		return MakeRef(refConst, 0, true)
	case factor.KindLit:
		return MakeRef(refLeaf, t.Var, t.Neg)
	case factor.KindAnd, factor.KindOr:
		isOr := t.Kind == factor.KindOr
		refs := make([]Ref, len(t.Children))
		for i, c := range t.Children {
			refs[i] = p.emit(c)
			if isOr {
				refs[i] = refs[i].Not() // OR via De Morgan
			}
		}
		res := p.balanced(refs)
		if isOr {
			res = res.Not()
		}
		return res
	}
	panic("core: bad factored tree")
}

// balanced combines refs with binary ANDs in a balanced tree.
func (p *Program) balanced(refs []Ref) Ref {
	for len(refs) > 1 {
		next := refs[:0]
		for i := 0; i+1 < len(refs); i += 2 {
			p.Ops = append(p.Ops, Op{refs[i], refs[i+1]})
			next = append(next, MakeRef(refOp, len(p.Ops)-1, false))
		}
		if len(refs)%2 == 1 {
			next = append(next, refs[len(refs)-1])
		}
		refs = next
	}
	return refs[0]
}

// Resolve maps a reference to an AIG literal given the cone's leaf literals
// and the results of earlier ops.
func Resolve(r Ref, leaves []aig.Lit, results []aig.Lit) aig.Lit {
	var l aig.Lit
	switch r.Kind() {
	case refConst:
		l = aig.ConstFalse
	case refLeaf:
		l = leaves[r.Index()]
	case refOp:
		l = results[r.Index()]
	default:
		panic("core: bad ref kind")
	}
	return l.NotCond(r.IsCompl())
}

// NumAnds returns the upper bound on AND nodes the program creates.
func (p Program) NumAnds() int { return len(p.Ops) }
