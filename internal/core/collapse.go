// Package core implements the paper's primary contribution: the parallel
// resynthesis framework of Sections III and IV. It provides
//
//   - the level-wise collapsing driver that partitions an AIG into disjoint
//     cones from POs to PIs using frontier arrays (Section III-B),
//   - the fanout-free-cone (FFC) traversal with best-first expansion and
//     cut-size early stop (Section III-C, Theorem 1),
//   - the data-race-free parallel replacement engine built on the
//     GPU-parallel hash table, with lower-bound gain accounting
//     (Sections III-B(b), III-D, III-E).
//
// Refactoring and balancing are thin clients of this package.
package core

import (
	"fmt"

	"aigre/internal/aig"
	"aigre/internal/gpu"
)

// TraverseFunc identifies the cone rooted at root and returns the node ids
// at which the traversal stopped (the cut of the cone) plus an operation
// count for device-time accounting. It runs inside a kernel: it must only
// read shared state and write state owned by this root.
type TraverseFunc func(root int32) (cut []int32, ops int64)

// LevelWiseCollapse partitions the AIG from POs toward PIs. It maintains a
// frontier array initialized with the PO drivers; each level launches one
// kernel that runs traverse for every frontier root, then gathers the cut
// nodes of all cones into the next frontier, filtering PIs, duplicates, and
// nodes already processed as roots (Section III-B). It returns the roots
// grouped by level.
func LevelWiseCollapse(d *gpu.Device, a *aig.AIG, traverse TraverseFunc) [][]int32 {
	done := make([]bool, a.NumObjs())
	var frontier []int32
	for _, p := range a.POs() {
		if v := p.Var(); a.IsAnd(v) && !done[v] {
			done[v] = true
			frontier = append(frontier, v)
		}
	}
	frontier = d.SortUniqueInt32("collapse/frontier-sort", frontier)
	var batches [][]int32
	cuts := make([][]int32, 0)
	for len(frontier) > 0 {
		batches = append(batches, frontier)
		if cap(cuts) < len(frontier) {
			cuts = make([][]int32, len(frontier))
		}
		cuts = cuts[:len(frontier)]
		d.Launch("collapse/traverse", len(frontier), func(tid int) int64 {
			cut, ops := traverse(frontier[tid])
			cuts[tid] = cut
			return ops
		})
		// Gather cut nodes into the next frontier (scan + scatter on the
		// device; a flat append on the host).
		counts := make([]int32, len(frontier))
		for i, c := range cuts {
			counts[i] = int32(len(c))
		}
		offsets, total := d.ExclusiveScan("collapse/cut-scan", counts)
		gathered := make([]int32, total)
		d.Launch1("collapse/gather", len(frontier), func(tid int) {
			copy(gathered[offsets[tid]:], cuts[tid])
		})
		next := gathered[:0]
		for _, v := range gathered {
			if a.IsAnd(v) && !done[v] {
				next = append(next, v)
				// done is written only on the host between kernels, so this
				// also deduplicates within the gathered batch.
				done[v] = true
			}
		}
		frontier = d.SortUniqueInt32("collapse/frontier-sort", next)
	}
	return batches
}

// Cone is a fanout-free cone identified during collapsing.
type Cone struct {
	Root   int32
	Leaves []int32 // the associated cut, in discovery order
	Nodes  []int32 // interior nodes including the root
}

// FFCCollapser carves disjoint FFCs out of an AIG. Each traversal is a
// best-first search from the root toward the PIs that greedily expands the
// cut node increasing the cut size least, absorbs a node only when every one
// of its fanouts already lies inside the cone (the fanout-free condition),
// and early-stops at MaxCut leaves. When the limit is never reached the
// resulting cone is the root's MFFC restricted to the already-carved
// partition (Section III-C).
type FFCCollapser struct {
	a      *aig.AIG
	refs   []int32 // global reference counts (AND fanouts + PO refs)
	maxCut int
}

// NewFFCCollapser prepares a collapser with the given cut-size limit.
func NewFFCCollapser(a *aig.AIG, maxCut int) *FFCCollapser {
	if maxCut < 2 {
		panic("core: maxCut must be at least 2")
	}
	return &FFCCollapser{a: a, refs: a.FanoutCounts(), maxCut: maxCut}
}

// Collapse partitions the AIG into disjoint FFCs and returns them grouped
// by frontier level. Every AND node reachable from a PO belongs to exactly
// one cone (Theorem 1 guarantees disjointness; VerifyDisjoint checks it).
func (fc *FFCCollapser) Collapse(d *gpu.Device) [][]Cone {
	// Each kernel thread writes only its own root's slot: race-free.
	coneAt := make([]*Cone, fc.a.NumObjs())
	roots := LevelWiseCollapse(d, fc.a, func(root int32) ([]int32, int64) {
		cone, ops := fc.traverse(root)
		coneAt[root] = &cone
		return cone.Leaves, ops
	})
	batches := make([][]Cone, 0, len(roots))
	for _, rs := range roots {
		batch := make([]Cone, 0, len(rs))
		for _, r := range rs {
			batch = append(batch, *coneAt[r])
		}
		batches = append(batches, batch)
	}
	return batches
}

// traverse carves the FFC of root.
func (fc *FFCCollapser) traverse(root int32) (Cone, int64) {
	a := fc.a
	cone := Cone{Root: root, Nodes: []int32{root}}
	inCone := map[int32]bool{root: true}
	// coneRefs[v] = number of edges from cone nodes into v (for v outside
	// the cone). v is absorbable iff coneRefs[v] == refs[v]: all fanouts of
	// v lie inside the cone.
	coneRefs := map[int32]int32{}
	inCut := map[int32]bool{}
	var cut []int32
	ops := int64(1)

	addFanins := func(n int32) {
		for _, f := range [2]aig.Lit{a.Fanin0(n), a.Fanin1(n)} {
			v := f.Var()
			if inCone[v] {
				continue
			}
			coneRefs[v]++
			if !inCut[v] && !a.IsConst(v) {
				inCut[v] = true
				cut = append(cut, v)
			}
		}
	}
	addFanins(root)

	for {
		// Best-first: pick the absorbable cut node whose expansion grows
		// the cut least.
		best := int32(-1)
		bestDelta := 3
		for _, c := range cut {
			if !inCut[c] || !a.IsAnd(c) {
				continue
			}
			ops++
			if coneRefs[c] != fc.refs[c] {
				continue // external fanouts: traversal stops here
			}
			delta := -1
			for _, f := range [2]aig.Lit{a.Fanin0(c), a.Fanin1(c)} {
				v := f.Var()
				if !inCone[v] && !inCut[v] && !a.IsConst(v) {
					delta++
				}
			}
			if delta < bestDelta {
				bestDelta = delta
				best = c
				if delta == -1 {
					break
				}
			}
		}
		cutSize := len(cut)
		if best < 0 || cutSize+bestDelta > fc.maxCut {
			break // nothing absorbable, or early stop at the cut limit
		}
		// Absorb best into the cone.
		inCut[best] = false
		inCone[best] = true
		delete(coneRefs, best)
		cone.Nodes = append(cone.Nodes, best)
		addFanins(best)
		ops += 2
	}
	// Compact the cut list (absorbed entries were unmarked).
	final := cut[:0]
	for _, c := range cut {
		if inCut[c] {
			final = append(final, c)
		}
	}
	cone.Leaves = final
	return cone, ops
}

// VerifyDisjoint checks Theorem 1 on a collapse result: no AND node may
// belong to two cones, and together the cones must cover every AND node
// reachable from the POs.
func VerifyDisjoint(a *aig.AIG, batches [][]Cone) error {
	owner := make([]int32, a.NumObjs())
	for i := range owner {
		owner[i] = -1
	}
	for _, batch := range batches {
		for _, cone := range batch {
			for _, n := range cone.Nodes {
				if owner[n] >= 0 {
					return fmt.Errorf("core: node %d in cones rooted at %d and %d", n, owner[n], cone.Root)
				}
				owner[n] = cone.Root
			}
		}
	}
	for _, id := range a.TopoOrder(true) {
		if owner[id] < 0 {
			return fmt.Errorf("core: reachable node %d not covered by any cone", id)
		}
	}
	return nil
}

// VerifyFFC checks the fanout-free property: every interior (non-root) node
// of each cone has all of its fanouts inside the same cone.
func VerifyFFC(a *aig.AIG, batches [][]Cone) error {
	owner := make([]int32, a.NumObjs())
	for i := range owner {
		owner[i] = -1
	}
	for _, batch := range batches {
		for _, cone := range batch {
			for _, n := range cone.Nodes {
				owner[n] = cone.Root
			}
		}
	}
	refs := make([][]int32, a.NumObjs())
	a.ForEachAnd(func(id int32) {
		refs[a.Fanin0(id).Var()] = append(refs[a.Fanin0(id).Var()], id)
		refs[a.Fanin1(id).Var()] = append(refs[a.Fanin1(id).Var()], id)
	})
	poRef := make([]bool, a.NumObjs())
	for _, p := range a.POs() {
		poRef[p.Var()] = true
	}
	for _, batch := range batches {
		for _, cone := range batch {
			for _, n := range cone.Nodes {
				if n == cone.Root {
					continue
				}
				if poRef[n] {
					return fmt.Errorf("core: interior node %d of cone %d drives a PO", n, cone.Root)
				}
				for _, fo := range refs[n] {
					if owner[fo] != cone.Root {
						return fmt.Errorf("core: interior node %d of cone %d has external fanout %d", n, cone.Root, fo)
					}
				}
			}
		}
	}
	return nil
}
