package core

import "aigre/internal/aig"

// virtualLit marks a dry-run result that does not exist in the AIG yet.
const virtualLit = aig.Lit(0xFFFFFFFE)

// DryRunCost estimates how many new nodes building prog would create,
// counting structural-hash hits on existing nodes as free (DAG-aware
// evaluation, as in ABC's rewriting/refactoring gain). Ops whose operands do
// not exist yet always cost one node.
//
// mffc, when non-nil, holds the MFFC members of the root being replaced
// (see MffcMembers): a structural hit on an MFFC node still resolves to the
// real literal (the node survives if reused), but it and every not-yet-
// revived MFFC node in its transitive fanin are charged one node each,
// because they would otherwise have been deleted. This mirrors ABC's
// dereference-before-counting and keeps gain = mffcSize - cost an exact
// lower bound on the area improvement.
func DryRunCost(a *aig.AIG, prog Program, leaves []aig.Lit, mffc map[int32]bool) int {
	results := make([]aig.Lit, len(prog.Ops))
	cost := 0
	var revived map[int32]bool
	revive := func(root int32) {
		if revived == nil {
			revived = make(map[int32]bool, 8)
		}
		stack := []int32{root}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !mffc[v] || revived[v] {
				continue
			}
			revived[v] = true
			cost++
			stack = append(stack, a.Fanin0(v).Var(), a.Fanin1(v).Var())
		}
	}
	for i, op := range prog.Ops {
		f0 := Resolve(op.A, leaves, results)
		f1 := Resolve(op.B, leaves, results)
		if f0.Regular() == virtualLit || f1.Regular() == virtualLit {
			cost++
			results[i] = virtualLit
			continue
		}
		if lit, ok := a.Lookup(f0, f1); ok {
			results[i] = lit
			if mffc != nil && mffc[lit.Var()] {
				revive(lit.Var())
			}
			continue
		}
		cost++
		results[i] = virtualLit
	}
	return cost
}

// MffcMembers returns the set of MFFC members of root (root included),
// bounded below by the cut leaves: the dereference never crosses a leaf, so
// the set contains exactly the nodes that replacing the cone over those
// leaves would delete. With nil leaves the full MFFC is computed. Uses live
// fanout counts.
func MffcMembers(a *aig.AIG, root int32, leaves []int32) map[int32]bool {
	isLeaf := make(map[int32]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	members := map[int32]bool{root: true}
	dec := map[int32]int32{}
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range [2]aig.Lit{a.Fanin0(cur), a.Fanin1(cur)} {
			v := f.Var()
			if !a.IsAnd(v) || isLeaf[v] {
				continue
			}
			dec[v]++
			if int(dec[v]) == a.FanoutCount(v) {
				members[v] = true
				stack = append(stack, v)
			}
		}
	}
	return members
}

// BuildProgramAvoiding materializes prog in the AIG with structural hashing
// and returns the root literal. If a structural-hash hit reconstructs the
// node avoid itself (the node about to be replaced — substituting it would
// create a cycle), construction is abandoned: speculatively created nodes
// are removed (requires fanout tracking) and ok is false.
func BuildProgramAvoiding(a *aig.AIG, prog Program, leaves []aig.Lit, avoid int32) (lit aig.Lit, ok bool) {
	results := make([]aig.Lit, len(prog.Ops))
	var created []int32
	for i, op := range prog.Ops {
		before := a.NumObjs()
		results[i] = a.NewAnd(Resolve(op.A, leaves, results), Resolve(op.B, leaves, results))
		if a.NumObjs() > before {
			created = append(created, results[i].Var())
		}
		if results[i].Var() == avoid {
			for j := len(created) - 1; j >= 0; j-- {
				a.RemoveIfDangling(created[j])
			}
			return 0, false
		}
	}
	return Resolve(prog.Root, leaves, results), true
}

// MffcSizeLive computes the MFFC size of root against live fanout counts
// (EnableFanouts) without mutating them.
func MffcSizeLive(a *aig.AIG, root int32) int {
	dec := map[int32]int32{}
	size := 1
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range [2]aig.Lit{a.Fanin0(cur), a.Fanin1(cur)} {
			v := f.Var()
			if !a.IsAnd(v) {
				continue
			}
			dec[v]++
			if int(dec[v]) == a.FanoutCount(v) {
				size++
				stack = append(stack, v)
			}
		}
	}
	return size
}
