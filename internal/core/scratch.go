package core

import "aigre/internal/aig"

// EvalScratch amortizes the per-cone working memory of gain evaluation:
// MFFC membership, dry-run costing, and program building. The map-based
// MffcMembers/DryRunCost/BuildProgramAvoiding allocate per call; the methods
// here reuse traversal-stamped arrays so the per-node evaluation loops of
// rewriting and refactoring allocate nothing in steady state. A scratch
// value is not safe for concurrent use; parallel kernels draw one per
// worker from a sync.Pool.
//
// The marking protocol: each MffcMembers call claims a fresh traversal base
// b (trav advances by 4, so bases never collide with earlier cones or with
// the zero value of a grown array). mark[v] == b flags a cut leaf,
// b+1 an MFFC member, b+2 a member revived by a following DryRunCost call.
type EvalScratch struct {
	mark    []int32
	dec     []int32
	decMark []int32
	trav    int32
	stack   []int32
	members []int32
	results []aig.Lit
	created []int32
}

func (s *EvalScratch) ensure(n int) {
	if n <= len(s.mark) {
		return
	}
	c := 2 * len(s.mark)
	if c < n {
		c = n
	}
	// Fresh zeroed arrays; trav restarts above any stale zero stamps.
	s.mark = make([]int32, c)
	s.dec = make([]int32, c)
	s.decMark = make([]int32, c)
	s.trav = 0
}

// MffcMembers computes the MFFC members of root bounded by the cut leaves,
// exactly as the package-level MffcMembers, but into reused storage: the
// returned slice (root first) is valid until the next call. The member set
// stays recorded in the scratch for a following DryRunCost call.
func (s *EvalScratch) MffcMembers(a *aig.AIG, root int32, leaves []int32) []int32 {
	s.ensure(a.NumObjs())
	s.trav += 4
	base := s.trav
	for _, l := range leaves {
		s.mark[l] = base
	}
	s.mark[root] = base + 1
	s.members = append(s.members[:0], root)
	st := append(s.stack[:0], root)
	for len(st) > 0 {
		cur := st[len(st)-1]
		st = st[:len(st)-1]
		for _, f := range [2]aig.Lit{a.Fanin0(cur), a.Fanin1(cur)} {
			v := f.Var()
			if !a.IsAnd(v) || s.mark[v] == base {
				continue
			}
			if s.decMark[v] != base {
				s.decMark[v] = base
				s.dec[v] = 0
			}
			s.dec[v]++
			if int(s.dec[v]) == a.FanoutCount(v) {
				s.mark[v] = base + 1
				s.members = append(s.members, v)
				st = append(st, v)
			}
		}
	}
	s.stack = st
	return s.members
}

// DryRunCost mirrors the package-level DryRunCost against the member set
// recorded by the preceding MffcMembers call on this scratch. It consumes
// the recorded set (members revived here stay revived), matching the
// one-shot evaluate-then-decide usage of the callers.
func (s *EvalScratch) DryRunCost(a *aig.AIG, prog Program, leaves []aig.Lit) int {
	base := s.trav
	results := s.resultsFor(len(prog.Ops))
	cost := 0
	st := s.stack[:0]
	for i, op := range prog.Ops {
		f0 := Resolve(op.A, leaves, results)
		f1 := Resolve(op.B, leaves, results)
		if f0.Regular() == virtualLit || f1.Regular() == virtualLit {
			cost++
			results[i] = virtualLit
			continue
		}
		lit, ok := a.Lookup(f0, f1)
		if !ok {
			cost++
			results[i] = virtualLit
			continue
		}
		results[i] = lit
		if s.mark[lit.Var()] != base+1 {
			continue
		}
		// Revive: the structural hit lands on an MFFC node; it and its
		// not-yet-revived MFFC fanin survive, each charged one node.
		st = append(st[:0], lit.Var())
		for len(st) > 0 {
			v := st[len(st)-1]
			st = st[:len(st)-1]
			if s.mark[v] != base+1 {
				continue
			}
			s.mark[v] = base + 2
			cost++
			st = append(st, a.Fanin0(v).Var(), a.Fanin1(v).Var())
		}
	}
	s.stack = st
	return cost
}

// BuildProgramAvoiding mirrors the package-level BuildProgramAvoiding with
// reused result/undo storage.
func (s *EvalScratch) BuildProgramAvoiding(a *aig.AIG, prog Program, leaves []aig.Lit, avoid int32) (lit aig.Lit, ok bool) {
	results := s.resultsFor(len(prog.Ops))
	created := s.created[:0]
	defer func() { s.created = created }()
	for i, op := range prog.Ops {
		before := a.NumObjs()
		results[i] = a.NewAnd(Resolve(op.A, leaves, results), Resolve(op.B, leaves, results))
		if a.NumObjs() > before {
			created = append(created, results[i].Var())
		}
		if results[i].Var() == avoid {
			for j := len(created) - 1; j >= 0; j-- {
				a.RemoveIfDangling(created[j])
			}
			return 0, false
		}
	}
	return Resolve(prog.Root, leaves, results), true
}

func (s *EvalScratch) resultsFor(n int) []aig.Lit {
	if cap(s.results) < n {
		s.results = make([]aig.Lit, n)
	}
	return s.results[:n]
}
