package core

import (
	"sync/atomic"

	"aigre/internal/aig"
	"aigre/internal/gpu"
	"aigre/internal/hashtable"
)

// Replacement asks the engine to substitute the cone's logic by a program
// over the cone's leaves (leaf i of the program is cone.Leaves[i]).
type Replacement struct {
	Cone *Cone
	Prog Program
}

// ReplaceStats reports what a replacement pass did.
type ReplaceStats struct {
	ConesReplaced   int
	NodesDeleted    int // nodes of the replaced cones
	NodesCreated    int // new nodes physically created
	SharedHits      int // ops satisfied by an existing node in the hash table
	InsertionPasses int
}

// ApplyReplacements performs the paper's parallel replacement stage: the
// cones of all replacements are deleted and their programs inserted through
// the shared hash table, one op per cone per insertion pass, with no data
// race (the cones are disjoint by Theorem 1, so deletions cannot conflict,
// and concurrent creations are resolved by the lock-free table). It returns
// a fresh compacted AIG.
//
// When sequential is true the same algorithm runs as a single host thread
// and its cost is accounted as sequential time on the device — this is the
// "refactoring with sequential replacement" ablation of Table I.
func ApplyReplacements(d *gpu.Device, a *aig.AIG, reps []Replacement, sequential bool) (*aig.AIG, ReplaceStats) {
	var st ReplaceStats
	st.ConesReplaced = len(reps)
	work := a.Clone()

	// Phase 1: mark deleted nodes and boundary (cut) nodes of the replaced
	// cones. Boundary nodes can be leaves of several cones, so they are
	// marked with atomic stores.
	deleted := make([]bool, work.NumObjs())
	boundary := make([]uint32, work.NumObjs())
	launch(d, sequential, "replace/mark", len(reps), func(tid int) int64 {
		r := &reps[tid]
		for _, n := range r.Cone.Nodes {
			deleted[n] = true // cones are disjoint: one writer per node
		}
		for _, l := range r.Cone.Leaves {
			atomic.StoreUint32(&boundary[l], 1)
		}
		return int64(len(r.Cone.Nodes) + len(r.Cone.Leaves))
	})
	for _, r := range reps {
		st.NodesDeleted += len(r.Cone.Nodes)
	}

	// Phase 2: allocate new-node slots (scan over program sizes).
	counts := make([]int32, len(reps))
	for i := range reps {
		counts[i] = int32(len(reps[i].Prog.Ops))
	}
	offsets, total := d.ExclusiveScan("replace/slot-scan", counts)
	firstNew := work.ExtendSlots(int(total))

	// Phase 3: initialize the hash table with the kept nodes and the cut
	// nodes of the replaced cones (Figure 1c).
	ht := hashtable.New(work.NumObjs() + int(total))
	nPIs := int32(work.NumPIs())
	launch(d, sequential, "replace/ht-init", a.NumObjs(), func(tid int) int64 {
		id := int32(tid)
		if !work.IsAnd(id) || work.IsDeleted(id) {
			return 1
		}
		if deleted[id] && boundary[id] == 0 {
			return 1
		}
		// A full table aborts the launch as a typed *gpu.LaunchError wrapping
		// ErrTableFull; the guarded flow layer rolls the pass back.
		if _, _, err := ht.InsertUnique(aig.Key(work.Fanin0(id), work.Fanin1(id)), uint32(id)); err != nil {
			panic(err)
		}
		return 2
	})
	_ = nPIs

	// Phase 4: insertion passes — one new node per cone per pass
	// (Figure 1d-1e), sharing-aware through the table. Per-cone result and
	// leaf-literal arrays are carved out of two flat backing allocations (the
	// op offsets from the slot scan; leaf offsets from a host prefix sum)
	// instead of one allocation per cone.
	results := make([][]aig.Lit, len(reps))
	leafLits := make([][]aig.Lit, len(reps))
	leafOff := make([]int32, len(reps)+1)
	for i := range reps {
		leafOff[i+1] = leafOff[i] + int32(len(reps[i].Cone.Leaves))
	}
	resultsFlat := make([]aig.Lit, int(total))
	leafFlat := make([]aig.Lit, int(leafOff[len(reps)]))
	launch(d, sequential, "replace/prep", len(reps), func(tid int) int64 {
		r := &reps[tid]
		results[tid] = resultsFlat[offsets[tid] : int(offsets[tid])+len(r.Prog.Ops) : int(offsets[tid])+len(r.Prog.Ops)]
		lits := leafFlat[leafOff[tid]:leafOff[tid+1]:leafOff[tid+1]]
		for i, l := range r.Cone.Leaves {
			lits[i] = aig.MakeLit(l, false)
		}
		leafLits[tid] = lits
		return int64(len(lits))
	})
	maxOps := 0
	for i := range reps {
		if n := len(reps[i].Prog.Ops); n > maxOps {
			maxOps = n
		}
	}
	var created, shared int64
	createdPer := make([]int32, len(reps))
	sharedPer := make([]int32, len(reps))
	for pass := 0; pass < maxOps; pass++ {
		launch(d, sequential, "replace/insert", len(reps), func(tid int) int64 {
			r := &reps[tid]
			if pass >= len(r.Prog.Ops) {
				return 1
			}
			op := r.Prog.Ops[pass]
			f0 := Resolve(op.A, leafLits[tid], results[tid])
			f1 := Resolve(op.B, leafLits[tid], results[tid])
			if lit, ok := aig.SimplifyAnd(f0, f1); ok {
				results[tid][pass] = lit
				return 2
			}
			provisional := firstNew + offsets[tid] + int32(pass)
			got, inserted, err := ht.InsertUnique(aig.Key(f0, f1), uint32(provisional))
			if err != nil {
				panic(err)
			}
			if inserted {
				work.SetFanins(provisional, f0, f1)
				results[tid][pass] = aig.MakeLit(provisional, false)
				createdPer[tid]++
			} else {
				results[tid][pass] = aig.MakeLit(int32(got), false)
				sharedPer[tid]++
			}
			return 4
		})
		st.InsertionPasses++
	}
	for i := range reps {
		created += int64(createdPer[i])
		shared += int64(sharedPer[i])
	}
	st.NodesCreated = int(created)
	st.SharedHits = int(shared)

	// Phase 5: build the root map and chase alias chains (a new root that
	// structurally aliases another replaced root).
	rootMap := make([]aig.Lit, work.NumObjs())
	hasMap := make([]bool, work.NumObjs())
	launch(d, sequential, "replace/rootmap", len(reps), func(tid int) int64 {
		r := &reps[tid]
		newRoot := Resolve(r.Prog.Root, leafLits[tid], results[tid])
		if newRoot.Var() == r.Cone.Root && !newRoot.IsCompl() {
			return 1 // identity replacement
		}
		rootMap[r.Cone.Root] = newRoot
		hasMap[r.Cone.Root] = true
		return 1
	})
	chaseRootMap(rootMap, hasMap)

	// Phase 6: redirect every fanin and PO through the root map
	// (Figure 1f: "the old roots are replaced by the new roots").
	launch(d, sequential, "replace/redirect", work.NumObjs(), func(tid int) int64 {
		id := int32(tid)
		if !work.IsAnd(id) {
			return 1
		}
		f0, f1 := work.Fanin0(id), work.Fanin1(id)
		changed := false
		if hasMap[f0.Var()] {
			f0 = rootMap[f0.Var()].NotCond(f0.IsCompl())
			changed = true
		}
		if hasMap[f1.Var()] {
			f1 = rootMap[f1.Var()].NotCond(f1.IsCompl())
			changed = true
		}
		if changed {
			work.SetFanins(id, f0, f1)
		}
		return 2
	})
	for i, p := range work.POs() {
		if hasMap[p.Var()] {
			work.SetPO(i, rootMap[p.Var()].NotCond(p.IsCompl()))
		}
	}

	// Phase 7: drop the old cones and unused provisional slots.
	out, _ := work.Compact()
	return out, st
}

// launch dispatches a kernel either on the device or as an accounted
// host-sequential loop (the Table I ablation).
func launch(d *gpu.Device, sequential bool, name string, n int, kernel func(tid int) int64) {
	if !sequential {
		d.Launch(name, n, kernel)
		return
	}
	var ops int64
	for tid := 0; tid < n; tid++ {
		ops += kernel(tid)
	}
	d.AddOverhead(name+"/seq", ops)
}

// chaseRootMap resolves chains r -> lit(r') where r' is itself a replaced
// root, cutting cycles by dropping an entry (identity replacement).
func chaseRootMap(rootMap []aig.Lit, hasMap []bool) {
	for r := range rootMap {
		if !hasMap[r] {
			continue
		}
		cur := rootMap[r]
		steps := 0
		for hasMap[cur.Var()] && cur.Var() != int32(r) {
			cur = rootMap[cur.Var()].NotCond(cur.IsCompl())
			steps++
			if steps > len(rootMap) {
				break
			}
		}
		if cur.Var() == int32(r) || steps > len(rootMap) {
			// Alias cycle: keep this root as itself.
			hasMap[r] = false
			continue
		}
		rootMap[r] = cur
	}
}
