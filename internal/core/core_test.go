package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/cut"
	"aigre/internal/factor"
	"aigre/internal/gpu"
)

func TestLevelWiseCollapseVisitsEachRootOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := aig.Random(rng, 8, 300, 6)
	d := gpu.New(1)
	seen := map[int32]int{}
	// Trivial traversal: every node is its own cone with its fanins as cut.
	batches := LevelWiseCollapse(d, a, func(root int32) ([]int32, int64) {
		var cutNodes []int32
		for _, f := range [2]aig.Lit{a.Fanin0(root), a.Fanin1(root)} {
			cutNodes = append(cutNodes, f.Var())
		}
		return cutNodes, 1
	})
	total := 0
	for _, b := range batches {
		for _, r := range b {
			seen[r]++
			total++
		}
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("root %d visited %d times", r, c)
		}
	}
	if total != a.CountReachable() {
		t.Errorf("visited %d roots, want %d reachable nodes", total, a.CountReachable())
	}
}

func TestFFCCollapseTheorem1(t *testing.T) {
	// Theorem 1: the identified cones are pairwise disjoint; together with
	// the FFC property and full coverage this is the paper's core claim.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6+rng.Intn(6), 100+rng.Intn(400), 3+rng.Intn(5))
		d := gpu.New(1 + rng.Intn(4))
		fc := NewFFCCollapser(a, 2+rng.Intn(11))
		batches := fc.Collapse(d)
		if err := VerifyDisjoint(a, batches); err != nil {
			t.Log(err)
			return false
		}
		if err := VerifyFFC(a, batches); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFCCollapseRespectsCutLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := aig.Random(rng, 10, 500, 5)
	for _, k := range []int{2, 4, 8, 12} {
		fc := NewFFCCollapser(a, k)
		for _, batch := range fc.Collapse(gpu.New(1)) {
			for _, cone := range batch {
				if len(cone.Leaves) > k {
					t.Fatalf("cone rooted at %d has %d leaves, limit %d", cone.Root, len(cone.Leaves), k)
				}
			}
		}
	}
}

func TestFFCCollapseMatchesMFFCWhenUnbounded(t *testing.T) {
	// With a generous cut limit, the first batch's cones (rooted at PO
	// drivers) must equal the MFFC partition picked greedily from the top:
	// specifically each cone must contain the full MFFC of its root
	// restricted to nodes not in earlier-traversed cones. For PO-driver
	// roots with no overlap, the cone equals the MFFC exactly.
	a := aig.New(4)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(a.PI(1), a.PI(2))
	n3 := a.NewAnd(n1, n2)
	n4 := a.NewAnd(n3, a.PI(3))
	a.AddPO(n4)
	fc := NewFFCCollapser(a, 16)
	batches := fc.Collapse(gpu.New(1))
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %v", batches)
	}
	cone := batches[0][0]
	if len(cone.Nodes) != 4 {
		t.Errorf("cone must absorb the whole MFFC: %v", cone.Nodes)
	}
	_ = n4
}

func TestFFCStopsAtExternalFanout(t *testing.T) {
	// Figure 2 situation: node 3 has an external fanout, so the cone of 7
	// must stop at it.
	a := aig.New(4)
	a.EnableStrash()
	n3 := a.NewAnd(a.PI(0), a.PI(1))
	n4 := a.NewAnd(a.PI(1), a.PI(2))
	n5 := a.NewAnd(n3, n4)
	n7 := a.NewAnd(n5, a.PI(3))
	n6 := a.NewAnd(n3, a.PI(3)) // external fanout of n3
	a.AddPO(n7)
	a.AddPO(n6)
	fc := NewFFCCollapser(a, 16)
	batches := fc.Collapse(gpu.New(1))
	owner := map[int32]int32{}
	for _, b := range batches {
		for _, c := range b {
			for _, n := range c.Nodes {
				owner[n] = c.Root
			}
		}
	}
	if owner[n3.Var()] == n7.Var() {
		t.Errorf("node with external fanout absorbed into wrong cone")
	}
	if owner[n4.Var()] != n7.Var() || owner[n5.Var()] != n7.Var() {
		t.Errorf("MFFC members not absorbed: %v", owner)
	}
}

func TestProgramLinearizeAndResolve(t *testing.T) {
	// (x0 + x1) * !x2 over three leaves.
	tree := &factor.Tree{Kind: factor.KindAnd, Children: []*factor.Tree{
		{Kind: factor.KindOr, Children: []*factor.Tree{
			{Kind: factor.KindLit, Var: 0},
			{Kind: factor.KindLit, Var: 1},
		}},
		{Kind: factor.KindLit, Var: 2, Neg: true},
	}}
	prog := Linearize(tree, false)
	if len(prog.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(prog.Ops))
	}
	// Execute against a scratch AIG.
	a := aig.New(3)
	a.EnableStrash()
	leaves := []aig.Lit{a.PI(0), a.PI(1), a.PI(2)}
	results := make([]aig.Lit, len(prog.Ops))
	for i, op := range prog.Ops {
		results[i] = a.NewAnd(Resolve(op.A, leaves, results), Resolve(op.B, leaves, results))
	}
	root := Resolve(prog.Root, leaves, results)
	a.AddPO(root)
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want := (in[0] || in[1]) && !in[2]
		if a.EvalOnce(in)[0] != want {
			t.Errorf("program eval wrong at %v", in)
		}
	}
}

func TestLinearizeComplement(t *testing.T) {
	tree := &factor.Tree{Kind: factor.KindLit, Var: 0}
	prog := Linearize(tree, true)
	if len(prog.Ops) != 0 || !prog.Root.IsCompl() {
		t.Errorf("complemented literal program wrong: %+v", prog)
	}
}

// reimplementCone builds a Replacement that reimplements the cone's
// function exactly (resynthesized through ISOP+factoring).
func reimplementCone(a *aig.AIG, cone *Cone) Replacement {
	tt := cut.ConeTruth(a, aig.MakeLit(cone.Root, false), cone.Leaves)
	tree, compl := factor.FactorTT(tt)
	return Replacement{Cone: cone, Prog: Linearize(tree, compl)}
}

func TestApplyReplacementsPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 150, 4)
		d := gpu.New(1 + rng.Intn(4))
		fc := NewFFCCollapser(a, 8)
		batches := fc.Collapse(d)
		var reps []Replacement
		for bi := range batches {
			for ci := range batches[bi] {
				cone := &batches[bi][ci]
				if len(cone.Leaves) == 0 {
					continue // constant cone
				}
				reps = append(reps, reimplementCone(a, cone))
			}
		}
		out, st := ApplyReplacements(d, a, reps, rng.Intn(2) == 0)
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		if st.ConesReplaced != len(reps) {
			return false
		}
		return simEqual(a, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestApplyReplacementsSubset(t *testing.T) {
	// Replacing only some cones must also preserve the function.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 7, 200, 5)
		d := gpu.New(2)
		fc := NewFFCCollapser(a, 10)
		batches := fc.Collapse(d)
		var reps []Replacement
		for bi := range batches {
			for ci := range batches[bi] {
				cone := &batches[bi][ci]
				if len(cone.Leaves) == 0 || rng.Intn(2) == 0 {
					continue
				}
				reps = append(reps, reimplementCone(a, cone))
			}
		}
		out, _ := ApplyReplacements(d, a, reps, false)
		return out.Check() == nil && simEqual(a, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestApplyReplacementsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := aig.Random(rng, 5, 80, 3)
	out, st := ApplyReplacements(gpu.New(1), a, nil, false)
	if st.NodesCreated != 0 || st.NodesDeleted != 0 {
		t.Errorf("empty replacement stats: %+v", st)
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func simEqual(a, b *aig.AIG) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i)*104729 + 7))
		ins[i] = []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}
