package refactor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/gpu"
)

func simEqual(a, b *aig.AIG) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i)*6151 + 13))
		ins[i] = []uint64{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

// redundantAIG builds an AIG with deliberately unfactored logic:
// each PO is a flat sum of products sharing divisors, plus duplicated
// structure that refactoring should compress.
func redundantAIG(rng *rand.Rand, nPIs, nPOs int) *aig.AIG {
	a := aig.New(nPIs)
	a.EnableStrash()
	for o := 0; o < nPOs; o++ {
		sum := aig.ConstFalse
		for c := 0; c < 4+rng.Intn(4); c++ {
			cube := aig.ConstTrue
			for l := 0; l < 2+rng.Intn(3); l++ {
				pi := a.PI(rng.Intn(nPIs)).NotCond(rng.Intn(2) == 0)
				cube = a.NewAnd(cube, pi)
			}
			sum = a.Or(sum, cube)
		}
		a.AddPO(sum)
	}
	return a
}

func TestParallelPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6+rng.Intn(4), 120+rng.Intn(200), 4)
		a = a.Rehash()
		d := gpu.New(1 + rng.Intn(4))
		out, _ := Parallel(d, a, Options{MaxCut: 4 + rng.Intn(9)})
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		return simEqual(a, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelNeverIncreasesArea(t *testing.T) {
	// Section III-D: the lower-bound gain guarantees no area increase.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 8, 300, 5).Rehash()
		out, st := Parallel(gpu.New(2), a, Options{})
		return out.NumAnds() <= a.NumAnds() && st.NodesAfter == out.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelReducesRedundantLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := redundantAIG(rng, 8, 6)
	out, st := Parallel(gpu.New(1), a, Options{})
	if out.NumAnds() >= a.NumAnds() {
		t.Errorf("no reduction: %d -> %d (replaced %d cones)", a.NumAnds(), out.NumAnds(), st.ConesReplaced)
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestParallelSequentialReplacementAblation(t *testing.T) {
	// The Table I ablation must produce identical results, only with
	// different time attribution.
	rng := rand.New(rand.NewSource(5))
	a := aig.Random(rng, 8, 250, 4).Rehash()
	dp := gpu.New(2)
	outP, _ := Parallel(dp, a, Options{})
	ds := gpu.New(2)
	outS, _ := Parallel(ds, a, Options{SequentialReplacement: true})
	if err := outS.Check(); err != nil {
		t.Fatal(err)
	}
	if outS.NumAnds() > a.NumAnds() {
		t.Errorf("ablation grew the AIG: %d -> %d", a.NumAnds(), outS.NumAnds())
	}
	if !simEqual(a, outS) || !simEqual(a, outP) {
		t.Errorf("ablation changed function")
	}
	// The ablation performs its replacement on the host, so it must report
	// sequential-part time; the proposed algorithm must not.
	if ds.Stats().SeqTime == 0 {
		t.Errorf("ablation reported no sequential part")
	}
	if dp.Stats().SeqTime != 0 {
		t.Errorf("proposed replacement reported sequential part %v", dp.Stats().SeqTime)
	}
}

func TestSequentialPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6+rng.Intn(4), 100+rng.Intn(200), 4).Rehash()
		out, _ := Sequential(a, Options{ZeroGain: rng.Intn(2) == 0})
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		return simEqual(a, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSequentialNeverIncreasesArea(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 8, 250, 5).Rehash()
		out, _ := Sequential(a, Options{})
		return out.NumAnds() <= a.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSequentialReducesRedundantLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := redundantAIG(rng, 8, 6)
	out, st := Sequential(a, Options{})
	if out.NumAnds() >= a.NumAnds() {
		t.Errorf("no reduction: %d -> %d (%d cones replaced)", a.NumAnds(), out.NumAnds(), st.ConesReplaced)
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestTwoPassesImproveOrMatch(t *testing.T) {
	// The paper runs GPU rf twice because parallel resynthesis cannot see
	// earlier replacements within a pass; a second pass must not hurt.
	rng := rand.New(rand.NewSource(17))
	a := redundantAIG(rng, 10, 8)
	d := gpu.New(1)
	once, _ := Parallel(d, a, Options{})
	twice, _ := Parallel(d, once, Options{})
	if twice.NumAnds() > once.NumAnds() {
		t.Errorf("second pass increased area: %d -> %d", once.NumAnds(), twice.NumAnds())
	}
	if !simEqual(a, twice) {
		t.Errorf("function changed after two passes")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.MaxCut != 12 {
		t.Errorf("default MaxCut = %d, want 12", o.MaxCut)
	}
	o = Options{MaxCut: 99}.normalized()
	if o.MaxCut != 16 {
		t.Errorf("MaxCut must clamp to truth.MaxVars, got %d", o.MaxCut)
	}
}
