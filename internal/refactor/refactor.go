// Package refactor implements AIG refactoring: resynthesis of large cone
// functions through ISOP computation and algebraic factoring.
//
// Two engines are provided. Sequential is the ABC-style baseline (drf): it
// visits nodes in topological order, computes a reconvergence-driven cut,
// resynthesizes the cone function, and replaces the cone in place when the
// DAG-aware gain is non-negative — later nodes benefit from earlier
// replacements. Parallel is the paper's GPU algorithm (Section III): the AIG
// is partitioned into disjoint FFCs by level-wise collapsing, all cones are
// resynthesized concurrently, and the replacement itself is performed in
// parallel without data races through the concurrent hash table.
package refactor

import (
	"encoding/binary"
	"sync"

	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/cut"
	"aigre/internal/factor"
	"aigre/internal/gpu"
	"aigre/internal/truth"
)

// Options controls both engines.
type Options struct {
	// MaxCut bounds the cut size (number of cone leaves). The paper uses 12
	// (11 for log2). Default 12.
	MaxCut int
	// ZeroGain accepts replacements that do not change the node count
	// (ABC's -z). The parallel engine always accepts zero gain, because its
	// gain is a lower bound (Section III-D); the flag only affects the
	// sequential engine.
	ZeroGain bool
	// SequentialReplacement runs the parallel engine's replacement stage as
	// a single host thread: the Table I ablation ("rf w/ seq. replace").
	SequentialReplacement bool
}

// normalized fills in defaults.
func (o Options) normalized() Options {
	if o.MaxCut == 0 {
		o.MaxCut = 12
	}
	if o.MaxCut < 2 {
		o.MaxCut = 2
	}
	if o.MaxCut > truth.MaxVars {
		o.MaxCut = truth.MaxVars
	}
	return o
}

// Stats reports one refactoring pass.
type Stats struct {
	ConesConsidered int
	ConesReplaced   int
	NodesBefore     int
	NodesAfter      int
}

// progCache memoizes resynthesis results by cone function. Arithmetic
// circuits consist of repeated bit slices, so the same cone functions recur
// thousands of times; this implementation factors each distinct function
// once. Programs are immutable once built, so sharing them is safe.
var progCache sync.Map // string (truth table bytes + #leaves) -> progEntry

type progEntry struct {
	prog core.Program
	ops  int64
}

func cacheKey(tt truth.TT, nLeaves int) string {
	buf := make([]byte, 1+8*len(tt.Words))
	buf[0] = byte(nLeaves)
	for i, w := range tt.Words {
		binary.LittleEndian.PutUint64(buf[1+8*i:], w)
	}
	return string(buf)
}

// resynthesize computes a factored-form program for the function of rootLit
// over leaves, together with an operation estimate for device accounting.
func resynthesize(a *aig.AIG, rootLit aig.Lit, leaves []int32) (core.Program, int64) {
	tt := cut.ConeTruth(a, rootLit, leaves)
	// Truth-table computation over the cone: roughly 4 nodes per leaf, one
	// word-vector AND each.
	coneOps := int64(4*(len(leaves)+1)) * int64(len(tt.Words))
	key := cacheKey(tt, len(leaves))
	if p, ok := progCache.Load(key); ok {
		e := p.(progEntry)
		// The device estimate still charges the full resynthesis: the
		// paper's GPU threads do not share a factoring cache; the host-side
		// cache only speeds up this reproduction's wall-clock.
		return e.prog, coneOps + e.ops
	}
	sop, compl, isopOps := truth.MinPhaseISOPCount(tt)
	tree := factor.Factor(sop)
	prog := core.Linearize(tree, compl)
	ops := isopOps + int64(len(sop.Cubes)*len(sop.Cubes)) + int64(len(prog.Ops))
	progCache.Store(key, progEntry{prog, ops})
	return prog, coneOps + ops
}

// Parallel runs one pass of the paper's GPU refactoring and returns the
// optimized AIG. The input must be structurally sound (use Rehash/Compact
// after external loaders); the result is compacted and de-duplicated by the
// caller's post-processing (see package dedup).
func Parallel(d *gpu.Device, a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}

	// Stage 1: collapse into disjoint FFCs (Section III-B a).
	fc := core.NewFFCCollapser(a, opts.MaxCut)
	batches := fc.Collapse(d)
	cones := make([]*core.Cone, 0, 1024)
	for bi := range batches {
		for ci := range batches[bi] {
			cones = append(cones, &batches[bi][ci])
		}
	}
	st.ConesConsidered = len(cones)

	// Stage 2: resynthesize all cones in parallel and evaluate gains
	// (Section III-B b, III-D). gain = deleted nodes - new cone size; the
	// logic sharing among new cones is omitted, making it a lower bound, so
	// zero-gain cones are accepted.
	progs := make([]core.Program, len(cones))
	accept := make([]bool, len(cones))
	d.Launch("refactor/resynth", len(cones), func(tid int) int64 {
		cone := cones[tid]
		if len(cone.Nodes) < 2 {
			return 1 // nothing to gain from a single-node cone
		}
		prog, ops := resynthesize(a, aig.MakeLit(cone.Root, false), cone.Leaves)
		gain := len(cone.Nodes) - prog.NumAnds()
		if gain >= 0 {
			progs[tid] = prog
			accept[tid] = true
		}
		return ops
	})

	// Stage 3: parallel replacement (Section III-B b, Figures 1c-1f).
	var reps []core.Replacement
	for i, ok := range accept {
		if ok {
			reps = append(reps, core.Replacement{Cone: cones[i], Prog: progs[i]})
		}
	}
	st.ConesReplaced = len(reps)
	if opts.SequentialReplacement {
		out := applySequentially(d, a, reps)
		st.NodesAfter = out.NumAnds()
		return out, st
	}
	out, _ := core.ApplyReplacements(d, a, reps, false)
	st.NodesAfter = out.NumAnds()
	return out, st
}

// applySequentially is the Table I ablation: the resynthesized cones are
// inserted one at a time by the host through the incremental replacement
// machinery of [9] (build with structural hashing, revalidate, replace,
// cascade), instead of the paper's parallel replacement. Because refactoring
// cones are much larger than rewriting's 4-input cones, this sequential part
// is correspondingly more expensive — the effect Table I quantifies.
func applySequentially(d *gpu.Device, a *aig.AIG, reps []core.Replacement) *aig.AIG {
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	var ops int64
	for _, r := range reps {
		ops += int64(2*len(r.Cone.Nodes) + len(r.Cone.Leaves) + 8)
		if work.IsDeleted(r.Cone.Root) || !work.IsAnd(r.Cone.Root) {
			continue
		}
		live := true
		for _, l := range r.Cone.Leaves {
			if work.IsDeleted(l) {
				live = false
				break
			}
		}
		if !live {
			continue
		}
		// Earlier replacements may have restructured the region: the leaves
		// must still form a cut of the root (which also guarantees no cycle
		// can arise from structural-hash reuse, since leaf-above-root and
		// root-above-leaf cannot hold simultaneously in a DAG).
		if !validCut(work, r.Cone.Root, r.Cone.Leaves, 4*len(r.Cone.Nodes)+16) {
			continue
		}
		leafLits := make([]aig.Lit, len(r.Cone.Leaves))
		for i, l := range r.Cone.Leaves {
			leafLits[i] = aig.MakeLit(l, false)
		}
		ops += int64(3 * len(r.Prog.Ops))
		newRoot, ok := core.BuildProgramAvoiding(work, r.Prog, leafLits, r.Cone.Root)
		if !ok || newRoot.Var() == r.Cone.Root {
			continue
		}
		work.ReplaceNode(r.Cone.Root, newRoot)
	}
	d.AddOverhead("refactor/seq-replace", ops)
	out, _ := work.Compact()
	return out
}

// validCut reports whether every path from root toward the PIs crosses the
// leaf set, visiting at most budget nodes.
func validCut(a *aig.AIG, root int32, leaves []int32, budget int) bool {
	isLeaf := make(map[int32]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	seen := map[int32]bool{}
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if isLeaf[cur] || seen[cur] {
			continue
		}
		if !a.IsAnd(cur) {
			return false // escaped to a PI or constant
		}
		seen[cur] = true
		if len(seen) > budget {
			return false
		}
		stack = append(stack, a.Fanin0(cur).Var(), a.Fanin1(cur).Var())
	}
	return true
}

// Sequential runs one pass of ABC-style refactoring (drf; drf -z when
// opts.ZeroGain). Replacements are applied immediately, so later cones are
// resynthesized against the already-improved network.
func Sequential(a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	rc := cut.NewReconv(work)
	lastOriginal := int32(work.NumObjs())
	for id := int32(work.NumPIs() + 1); id < lastOriginal; id++ {
		if work.IsDeleted(id) {
			continue
		}
		leaves := rc.Cut(id, opts.MaxCut)
		if len(leaves) < 2 {
			continue
		}
		st.ConesConsidered++
		mffcMembers := core.MffcMembers(work, id, leaves)
		mffc := len(mffcMembers)
		if mffc < 2 {
			continue
		}
		prog, _ := resynthesize(work, aig.MakeLit(id, false), leaves)
		leafLits := make([]aig.Lit, len(leaves))
		for i, l := range leaves {
			leafLits[i] = aig.MakeLit(l, false)
		}
		gain := mffc - core.DryRunCost(work, prog, leafLits, mffcMembers)
		if gain < 0 || (gain == 0 && !opts.ZeroGain) {
			continue
		}
		newRoot, ok := core.BuildProgramAvoiding(work, prog, leafLits, id)
		if !ok || newRoot.Var() == id {
			continue // resynthesis reproduced the node being replaced
		}
		work.ReplaceNode(id, newRoot)
		st.ConesReplaced++
	}
	out, _ := work.Compact()
	st.NodesAfter = out.NumAnds()
	return out, st
}
