// Package refactor implements AIG refactoring: resynthesis of large cone
// functions through ISOP computation and algebraic factoring.
//
// Two engines are provided. Sequential is the ABC-style baseline (drf): it
// visits nodes in topological order, computes a reconvergence-driven cut,
// resynthesizes the cone function, and replaces the cone in place when the
// DAG-aware gain is non-negative — later nodes benefit from earlier
// replacements. Parallel is the paper's GPU algorithm (Section III): the AIG
// is partitioned into disjoint FFCs by level-wise collapsing, all cones are
// resynthesized concurrently, and the replacement itself is performed in
// parallel without data races through the concurrent hash table.
package refactor

import (
	"sync"

	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/cut"
	"aigre/internal/factor"
	"aigre/internal/gpu"
	"aigre/internal/rcache"
	"aigre/internal/truth"
)

// Options controls both engines.
type Options struct {
	// MaxCut bounds the cut size (number of cone leaves). The paper uses 12
	// (11 for log2). Default 12.
	MaxCut int
	// ZeroGain accepts replacements that do not change the node count
	// (ABC's -z). The parallel engine always accepts zero gain, because its
	// gain is a lower bound (Section III-D); the flag only affects the
	// sequential engine.
	ZeroGain bool
	// SequentialReplacement runs the parallel engine's replacement stage as
	// a single host thread: the Table I ablation ("rf w/ seq. replace").
	SequentialReplacement bool
	// Cache memoizes resynthesis by cone function (nil = the process-wide
	// rcache.Default). Programs are immutable once built, so sharing a cache
	// across passes, runs and concurrent jobs is safe; results are identical
	// with or without it.
	Cache *rcache.Cache
}

// normalized fills in defaults.
func (o Options) normalized() Options {
	if o.MaxCut == 0 {
		o.MaxCut = 12
	}
	if o.MaxCut < 2 {
		o.MaxCut = 2
	}
	if o.MaxCut > truth.MaxVars {
		o.MaxCut = truth.MaxVars
	}
	if o.Cache == nil {
		o.Cache = rcache.Default
	}
	return o
}

// Stats reports one refactoring pass.
type Stats struct {
	ConesConsidered int
	ConesReplaced   int
	NodesBefore     int
	NodesAfter      int
}

// scratch bundles one worker's reusable cone-evaluation memory.
type scratch struct {
	cs       cut.Scratch
	es       core.EvalScratch
	leafLits []aig.Lit
	supp     []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// resynthesize computes a factored-form program for the function of rootLit
// over leaves, together with an operation estimate for device accounting.
// Results are memoized in c keyed by the exact cone function, so repeated
// functions — ubiquitous in arithmetic circuits — factor once.
func resynthesize(a *aig.AIG, rootLit aig.Lit, leaves []int32, c *rcache.Cache, s *scratch) (core.Program, int64) {
	tt := s.cs.ConeTruth(a, rootLit, leaves)
	// Truth-table computation over the cone: roughly 4 nodes per leaf, one
	// word-vector AND each.
	coneOps := int64(4*(len(leaves)+1)) * int64(len(tt.Words))
	if e, ok := c.Lookup(tt, len(leaves)); ok {
		// The device estimate still charges the full resynthesis: the
		// paper's GPU threads do not share a factoring cache; the host-side
		// cache only speeds up this reproduction's wall-clock.
		return e.Prog, coneOps + e.Ops
	}
	// Degenerate cone functions shortcut ISOP+factoring entirely; the
	// programs are exactly what the full path would linearize.
	s.supp = tt.SupportInto(s.supp)
	if len(s.supp) == 0 {
		prog := core.Program{Root: core.ConstRef(tt.Bit(0))}
		c.Store(tt, len(leaves), rcache.Entry{Prog: prog, Ops: 1})
		return prog, coneOps + 1
	}
	if len(s.supp) == 1 {
		// f depends on one variable v: f = v or NOT v, decided by the
		// cofactor at v=0 (minterm 0 has every variable at 0).
		prog := core.Program{Root: core.LeafRef(s.supp[0], tt.Bit(0))}
		c.Store(tt, len(leaves), rcache.Entry{Prog: prog, Ops: 1})
		return prog, coneOps + 1
	}
	sop, compl, isopOps := truth.MinPhaseISOPCount(tt)
	tree := factor.Factor(sop)
	prog := core.Linearize(tree, compl)
	ops := isopOps + int64(len(sop.Cubes)*len(sop.Cubes)) + int64(len(prog.Ops))
	c.Store(tt, len(leaves), rcache.Entry{Prog: prog, Ops: ops})
	return prog, coneOps + ops
}

// Parallel runs one pass of the paper's GPU refactoring and returns the
// optimized AIG. The input must be structurally sound (use Rehash/Compact
// after external loaders); the result is compacted and de-duplicated by the
// caller's post-processing (see package dedup).
func Parallel(d *gpu.Device, a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}

	// Stage 1: collapse into disjoint FFCs (Section III-B a).
	fc := core.NewFFCCollapser(a, opts.MaxCut)
	batches := fc.Collapse(d)
	cones := make([]*core.Cone, 0, 1024)
	for bi := range batches {
		for ci := range batches[bi] {
			cones = append(cones, &batches[bi][ci])
		}
	}
	st.ConesConsidered = len(cones)

	// Stage 2: resynthesize all cones in parallel and evaluate gains
	// (Section III-B b, III-D). gain = deleted nodes - new cone size; the
	// logic sharing among new cones is omitted, making it a lower bound, so
	// zero-gain cones are accepted.
	progs := make([]core.Program, len(cones))
	accept := make([]bool, len(cones))
	d.Launch("refactor/resynth", len(cones), func(tid int) int64 {
		cone := cones[tid]
		if len(cone.Nodes) < 2 {
			return 1 // nothing to gain from a single-node cone
		}
		s := scratchPool.Get().(*scratch)
		prog, ops := resynthesize(a, aig.MakeLit(cone.Root, false), cone.Leaves, opts.Cache, s)
		scratchPool.Put(s)
		gain := len(cone.Nodes) - prog.NumAnds()
		if gain >= 0 {
			progs[tid] = prog
			accept[tid] = true
		}
		return ops
	})

	// Stage 3: parallel replacement (Section III-B b, Figures 1c-1f).
	var reps []core.Replacement
	for i, ok := range accept {
		if ok {
			reps = append(reps, core.Replacement{Cone: cones[i], Prog: progs[i]})
		}
	}
	st.ConesReplaced = len(reps)
	if opts.SequentialReplacement {
		out := applySequentially(d, a, reps)
		st.NodesAfter = out.NumAnds()
		return out, st
	}
	out, _ := core.ApplyReplacements(d, a, reps, false)
	st.NodesAfter = out.NumAnds()
	return out, st
}

// applySequentially is the Table I ablation: the resynthesized cones are
// inserted one at a time by the host through the incremental replacement
// machinery of [9] (build with structural hashing, revalidate, replace,
// cascade), instead of the paper's parallel replacement. Because refactoring
// cones are much larger than rewriting's 4-input cones, this sequential part
// is correspondingly more expensive — the effect Table I quantifies.
func applySequentially(d *gpu.Device, a *aig.AIG, reps []core.Replacement) *aig.AIG {
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	var ops int64
	for _, r := range reps {
		ops += int64(2*len(r.Cone.Nodes) + len(r.Cone.Leaves) + 8)
		if work.IsDeleted(r.Cone.Root) || !work.IsAnd(r.Cone.Root) {
			continue
		}
		live := true
		for _, l := range r.Cone.Leaves {
			if work.IsDeleted(l) {
				live = false
				break
			}
		}
		if !live {
			continue
		}
		// Earlier replacements may have restructured the region: the leaves
		// must still form a cut of the root (which also guarantees no cycle
		// can arise from structural-hash reuse, since leaf-above-root and
		// root-above-leaf cannot hold simultaneously in a DAG).
		if !s.cs.ValidCut(work, r.Cone.Root, r.Cone.Leaves, 4*len(r.Cone.Nodes)+16) {
			continue
		}
		s.leafLits = s.leafLits[:0]
		for _, l := range r.Cone.Leaves {
			s.leafLits = append(s.leafLits, aig.MakeLit(l, false))
		}
		ops += int64(3 * len(r.Prog.Ops))
		newRoot, ok := s.es.BuildProgramAvoiding(work, r.Prog, s.leafLits, r.Cone.Root)
		if !ok || newRoot.Var() == r.Cone.Root {
			continue
		}
		work.ReplaceNode(r.Cone.Root, newRoot)
	}
	d.AddOverhead("refactor/seq-replace", ops)
	out, _ := work.Compact()
	work.ReleaseStrash()
	return out
}

// Sequential runs one pass of ABC-style refactoring (drf; drf -z when
// opts.ZeroGain). Replacements are applied immediately, so later cones are
// resynthesized against the already-improved network.
func Sequential(a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	rc := cut.NewReconv(work)
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	lastOriginal := int32(work.NumObjs())
	for id := int32(work.NumPIs() + 1); id < lastOriginal; id++ {
		if work.IsDeleted(id) {
			continue
		}
		leaves := rc.Cut(id, opts.MaxCut)
		if len(leaves) < 2 {
			continue
		}
		st.ConesConsidered++
		members := s.es.MffcMembers(work, id, leaves)
		mffc := len(members)
		if mffc < 2 {
			continue
		}
		prog, _ := resynthesize(work, aig.MakeLit(id, false), leaves, opts.Cache, s)
		s.leafLits = s.leafLits[:0]
		for _, l := range leaves {
			s.leafLits = append(s.leafLits, aig.MakeLit(l, false))
		}
		gain := mffc - s.es.DryRunCost(work, prog, s.leafLits)
		if gain < 0 || (gain == 0 && !opts.ZeroGain) {
			continue
		}
		newRoot, ok := s.es.BuildProgramAvoiding(work, prog, s.leafLits, id)
		if !ok || newRoot.Var() == id {
			continue // resynthesis reproduced the node being replaced
		}
		work.ReplaceNode(id, newRoot)
		st.ConesReplaced++
	}
	out, _ := work.Compact()
	work.ReleaseStrash()
	st.NodesAfter = out.NumAnds()
	return out, st
}
