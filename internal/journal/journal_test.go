package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aigre/internal/flow"
)

// TestAppendReplayRoundTrip checks that entries written to a file replay in
// order with sequence numbers, timestamps, and embedded incidents intact.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	inc := &flow.Incident{Index: 2, Command: "rw", Stage: "launch",
		Kernel: "rewrite/evaluate", Action: "retried-sequential",
		Class: flow.ClassTransient, Attempt: 1, Time: time.Now()}
	events := []Entry{
		{Job: "a", Attempt: 1, Event: EventAttempt},
		{Job: "a", Attempt: 1, Event: EventIncident, Class: flow.ClassTransient, Incident: inc},
		{Job: "a", Attempt: 1, Event: EventRetry, Backoff: 5 * time.Millisecond},
		{Job: "a", Attempt: 2, Event: EventDone},
	}
	for _, e := range events {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, torn, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d on a clean journal", torn)
	}
	if len(got) != len(events) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(events))
	}
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Errorf("entry %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Time.IsZero() {
			t.Errorf("entry %d: zero timestamp", i)
		}
		if e.Event != events[i].Event || e.Job != events[i].Job || e.Attempt != events[i].Attempt {
			t.Errorf("entry %d: %+v does not match appended %+v", i, e, events[i])
		}
	}
	if got[1].Incident == nil || got[1].Incident.Kernel != "rewrite/evaluate" ||
		got[1].Incident.Class != flow.ClassTransient || got[1].Incident.Attempt != 1 {
		t.Errorf("incident did not round-trip: %+v", got[1].Incident)
	}
	if got[2].Backoff != 5*time.Millisecond {
		t.Errorf("backoff did not round-trip: %v", got[2].Backoff)
	}
}

// TestNilJournalIsNoOp checks that a nil journal silently discards appends,
// so call sites never guard against an unconfigured journal.
func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Append(Entry{Job: "x", Event: EventDone}); err != nil {
		t.Fatalf("nil journal Append: %v", err)
	}
	if err := j.AppendSync(Entry{Job: "x", Event: EventDone}); err != nil {
		t.Fatalf("nil journal AppendSync: %v", err)
	}
	if err := j.AppendRecord(struct{ X int }{1}); err != nil {
		t.Fatalf("nil journal AppendRecord: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil journal Close: %v", err)
	}
	var zero Journal
	if err := zero.Append(Entry{Job: "x", Event: EventDone}); err != nil {
		t.Fatalf("zero journal Append: %v", err)
	}
}

// TestTruncatedTailTolerated checks that a torn final line — a process killed
// mid-append — is skipped (and counted) on replay while full lines before it
// survive.
func TestTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Entry{Job: "a", Attempt: i + 1, Event: EventAttempt}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"time":"2026-01-01T00:00:00Z","job":"a","ev`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, torn, err := Replay(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(got))
	}
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
}

// TestCorruptMiddleSkippedWithCount checks that a torn mid-file record — a
// partial page writeback that later successful appends survived — is skipped
// with a count instead of failing the whole replay.
func TestCorruptMiddleSkippedWithCount(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"seq":1,"time":"2026-01-01T00:00:00Z","job":"a","event":"attempt"}` + "\n")
	b.WriteString(`{"seq":2,"time":"2026-01-01T00:00:0` + "\n") // torn mid-file
	b.WriteString("not json at all\n")                          // torn mid-file
	b.WriteString(`{"seq":4,"time":"2026-01-01T00:00:00Z","job":"a","event":"done"}` + "\n")
	got, torn, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("mid-file torn record not tolerated: %v", err)
	}
	if torn != 2 {
		t.Fatalf("torn = %d, want 2", torn)
	}
	if len(got) != 2 || got[0].Event != EventAttempt || got[1].Event != EventDone {
		t.Fatalf("surviving entries wrong: %+v", got)
	}
}

// TestAppendSyncDurable checks the fsync-on-append paths: both the AppendSync
// call and a CreateSync journal produce files whose every line is already
// visible (and whole) without Close.
func TestAppendSyncDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.jsonl")
	j, err := CreateSync(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Job: "a", Event: EventAttempt}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSync(Entry{Job: "a", Event: EventDone}); err != nil {
		t.Fatal(err)
	}
	// Read back while the journal is still open: the appends must already be
	// durable, not sitting in a buffer waiting for Close.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, torn, err := Read(f)
	f.Close()
	if err != nil || torn != 0 {
		t.Fatalf("read-before-close: torn=%d err=%v", torn, err)
	}
	if len(got) != 2 || got[0].Event != EventAttempt || got[1].Event != EventDone {
		t.Fatalf("entries: %+v", got)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordRoundTrip checks the generic record layer used by the daemon's
// write-ahead queue: arbitrary record types round-trip line by line.
func TestRecordRoundTrip(t *testing.T) {
	type rec struct {
		ID    string `json:"id"`
		State string `json:"state"`
		N     int    `json:"n"`
	}
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, err := CreateSync(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{{"j1", "pending", 1}, {"j1", "leased", 2}, {"j1", "done", 3}}
	for _, r := range want {
		if err := j.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, torn, err := ReadRecords[rec](f)
	if err != nil || torn != 0 {
		t.Fatalf("ReadRecords: torn=%d err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestConcurrentAppend hammers one journal from many goroutines under -race
// and checks every line lands whole with a unique sequence number.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := Entry{Job: fmt.Sprintf("job%d", w), Attempt: i + 1, Event: EventIncident,
					Incident: &flow.Incident{Index: i, Command: "rw", Stage: "launch",
						Class: flow.ClassTransient, Time: time.Now()}}
				if err := j.Append(e); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d on a clean journal", torn)
	}
	if len(got) != writers*per {
		t.Fatalf("replayed %d entries, want %d", len(got), writers*per)
	}
	seen := make(map[int64]bool, len(got))
	for _, e := range got {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestAppendToBuffer checks the writer-backed constructor used by tests and
// daemon pipes.
func TestAppendToBuffer(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	if err := j.Append(Entry{Job: "b", Event: EventQuarantine, Detail: "retry budget exhausted"}); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Event != EventQuarantine {
		t.Fatalf("unexpected entries: %+v", got)
	}
}

// TestObserveAndSize checks the live-stream hook and byte accounting: every
// appended entry reaches the observer exactly once, in order, already
// stamped; Size tracks the file length, including records that predate the
// current journal handle.
func TestObserveAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var seen []Entry
	j.Observe(func(e Entry) { seen = append(seen, e) })
	for i := 0; i < 3; i++ {
		if err := j.Append(Entry{Job: "a", Attempt: i + 1, Event: EventAttempt}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("observer saw %d entries, want 3", len(seen))
	}
	for i, e := range seen {
		if e.Seq != int64(i+1) || e.Time.IsZero() || e.Attempt != i+1 {
			t.Errorf("observed entry %d not stamped in order: %+v", i, e)
		}
	}
	sz := j.Size()
	if sz <= 0 {
		t.Fatalf("Size = %d after 3 appends", sz)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != sz {
		t.Fatalf("Size = %d, file length %v (err %v)", sz, st.Size(), err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening the same file seeds Size from the existing length.
	j2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Size() != sz {
		t.Fatalf("reopened Size = %d, want %d", j2.Size(), sz)
	}
	var nilJ *Journal
	nilJ.Observe(func(Entry) {})
	if nilJ.Size() != 0 {
		t.Fatal("nil journal has nonzero size")
	}
}
