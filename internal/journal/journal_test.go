package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aigre/internal/flow"
)

// TestAppendReplayRoundTrip checks that entries written to a file replay in
// order with sequence numbers, timestamps, and embedded incidents intact.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	inc := &flow.Incident{Index: 2, Command: "rw", Stage: "launch",
		Kernel: "rewrite/evaluate", Action: "retried-sequential",
		Class: flow.ClassTransient, Attempt: 1, Time: time.Now()}
	events := []Entry{
		{Job: "a", Attempt: 1, Event: EventAttempt},
		{Job: "a", Attempt: 1, Event: EventIncident, Class: flow.ClassTransient, Incident: inc},
		{Job: "a", Attempt: 1, Event: EventRetry, Backoff: 5 * time.Millisecond},
		{Job: "a", Attempt: 2, Event: EventDone},
	}
	for _, e := range events {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(events))
	}
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Errorf("entry %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Time.IsZero() {
			t.Errorf("entry %d: zero timestamp", i)
		}
		if e.Event != events[i].Event || e.Job != events[i].Job || e.Attempt != events[i].Attempt {
			t.Errorf("entry %d: %+v does not match appended %+v", i, e, events[i])
		}
	}
	if got[1].Incident == nil || got[1].Incident.Kernel != "rewrite/evaluate" ||
		got[1].Incident.Class != flow.ClassTransient || got[1].Incident.Attempt != 1 {
		t.Errorf("incident did not round-trip: %+v", got[1].Incident)
	}
	if got[2].Backoff != 5*time.Millisecond {
		t.Errorf("backoff did not round-trip: %v", got[2].Backoff)
	}
}

// TestNilJournalIsNoOp checks that a nil journal silently discards appends,
// so call sites never guard against an unconfigured journal.
func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Append(Entry{Job: "x", Event: EventDone}); err != nil {
		t.Fatalf("nil journal Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil journal Close: %v", err)
	}
	var zero Journal
	if err := zero.Append(Entry{Job: "x", Event: EventDone}); err != nil {
		t.Fatalf("zero journal Append: %v", err)
	}
}

// TestTruncatedTailTolerated checks that a torn final line — a process killed
// mid-append — is ignored on replay while full lines before it survive.
func TestTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Entry{Job: "a", Attempt: i + 1, Event: EventAttempt}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"time":"2026-01-01T00:00:00Z","job":"a","ev`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := Replay(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(got))
	}
}

// TestCorruptMiddleRejected checks that a malformed line followed by more
// lines is reported as corruption, not silently skipped.
func TestCorruptMiddleRejected(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"seq":1,"time":"2026-01-01T00:00:00Z","job":"a","event":"attempt"}` + "\n")
	b.WriteString("not json\n")
	b.WriteString(`{"seq":3,"time":"2026-01-01T00:00:00Z","job":"a","event":"done"}` + "\n")
	_, err := Read(strings.NewReader(b.String()))
	if err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}

// TestConcurrentAppend hammers one journal from many goroutines under -race
// and checks every line lands whole with a unique sequence number.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := Entry{Job: fmt.Sprintf("job%d", w), Attempt: i + 1, Event: EventIncident,
					Incident: &flow.Incident{Index: i, Command: "rw", Stage: "launch",
						Class: flow.ClassTransient, Time: time.Now()}}
				if err := j.Append(e); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*per {
		t.Fatalf("replayed %d entries, want %d", len(got), writers*per)
	}
	seen := make(map[int64]bool, len(got))
	for _, e := range got {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestAppendToBuffer checks the writer-backed constructor used by tests and
// future daemon pipes.
func TestAppendToBuffer(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf)
	if err := j.Append(Entry{Job: "b", Event: EventQuarantine, Detail: "retry budget exhausted"}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Event != EventQuarantine {
		t.Fatalf("unexpected entries: %+v", got)
	}
}
