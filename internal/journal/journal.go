// Package journal provides a durable append-only JSONL journal for
// supervised job fleets and the daemon's write-ahead queue.
//
// Two layers live here. The generic layer appends arbitrary record types as
// JSON lines (AppendRecord) and reads them back (ReadRecords), tolerating the
// footprints of a crashed process: a torn final line (killed mid-append) and
// torn mid-file records (partially persisted pages followed by later
// successful appends) are skipped with a count rather than failing the read.
// With CreateSync (or AppendSync) every append is fsynced before it returns,
// which is what lets the daemon acknowledge a submission only once it is
// durable.
//
// The Entry layer on top is the supervision journal: every supervision
// event — an attempt starting, a contained flow.Incident, a retry with its
// backoff, a watchdog preemption, a deadline timeout, a quarantine, and the
// final outcome — is appended as one Entry line. The journal is the
// durability half of the supervisor: internal/sched decides what happens to
// a job, the journal records that it happened. internal/queue builds the
// aigred daemon's durable job queue on the generic layer.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"aigre/internal/flow"
)

// Event names recorded in journal entries.
const (
	EventAttempt    = "attempt"    // an attempt of a job started
	EventIncident   = "incident"   // a contained flow.Incident during an attempt
	EventRetry      = "retry"      // a failed/degraded attempt will be retried after Backoff
	EventPreempt    = "preempt"    // the watchdog preempted a stuck attempt
	EventTimeout    = "timeout"    // the per-job deadline expired
	EventQuarantine = "quarantine" // the job exhausted its retry budget and was quarantined
	EventDone       = "done"       // the job finished successfully
	EventFail       = "fail"       // the job failed with a permanent, non-retryable error
	EventCancel     = "cancel"     // the job was cancelled from outside (batch/engine shutdown)
)

// Entry is one supervision-journal line. Seq orders entries within a single
// journal even when wall clocks of concurrent jobs collide; Time orders
// entries across journals and survives into post-mortem tooling.
type Entry struct {
	Seq     int64         `json:"seq"`
	Time    time.Time     `json:"time"`
	Job     string        `json:"job"`
	Attempt int           `json:"attempt,omitempty"`
	Event   string        `json:"event"`
	Class   string        `json:"class,omitempty"`
	Detail  string        `json:"detail,omitempty"`
	Backoff time.Duration `json:"backoff_ns,omitempty"`

	// Incident carries the full contained-failure record for incident
	// events, so the journal alone reconstructs what degraded and why.
	Incident *flow.Incident `json:"incident,omitempty"`
}

// Journal is a concurrency-safe append-only JSONL writer. The zero value and
// a nil *Journal are both valid no-op journals, so call sites never need to
// guard Append behind a nil check.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	f    *os.File // non-nil when the journal owns the file
	sync bool     // fsync after every append
	seq  int64
	size int64       // bytes in the journal (file length when it owns one)
	obs  func(Entry) // observer of appended entries, under mu
}

// Create opens (creating or appending to) a journal file at path. Appends
// are flushed to the OS but not fsynced; use CreateSync for a write-ahead
// journal whose appends must survive power loss before they are acknowledged.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{w: f, f: f}
	if st, err := f.Stat(); err == nil {
		j.size = st.Size()
	}
	return j, nil
}

// CreateSync is Create with fsync-on-append: every Append and AppendRecord
// returns only after the line is durably on disk. This is the write-ahead
// mode: an acknowledgment given after a CreateSync append cannot be lost to
// a crash.
func CreateSync(path string) (*Journal, error) {
	j, err := Create(path)
	if err != nil {
		return nil, err
	}
	j.sync = true
	return j, nil
}

// New wraps an arbitrary writer (a buffer in tests, a pipe in a daemon).
func New(w io.Writer) *Journal {
	return &Journal{w: w}
}

// Observe registers fn to be called with every Entry the journal appends
// (after it is stamped and durably written, honoring the journal's sync
// mode). The callback runs under the journal's lock, so entries are observed
// in append order exactly once; it must not call back into the journal.
// This is the live half of the supervision stream: the file is the durable
// record, the observer feeds in-process subscribers such as the daemon's
// event bus. A nil journal ignores the call.
func (j *Journal) Observe(fn func(Entry)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.obs = fn
	j.mu.Unlock()
}

// Size returns the journal's size in bytes: the underlying file's length
// when the journal owns one (including pre-existing records it was appending
// to), otherwise the bytes written through this journal. A nil journal has
// size 0. Write-ahead users poll this for compaction thresholds.
func (j *Journal) Size() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Append stamps the entry with the next sequence number and the current time
// (when unset) and writes it as one JSON line. Safe for concurrent use; a nil
// journal discards the entry. The line is written with a single Write call so
// concurrent appenders through an os.File never interleave bytes.
func (j *Journal) Append(e Entry) error {
	return j.append(e, false)
}

// AppendSync is Append followed by an fsync of the journal file, regardless
// of whether the journal was opened with CreateSync: the entry is durably on
// disk when AppendSync returns. On a journal without an underlying file
// (New) it is identical to Append.
func (j *Journal) AppendSync(e Entry) error {
	return j.append(e, true)
}

func (j *Journal) append(e Entry, sync bool) error {
	if j == nil || j.w == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if err := j.appendLocked(e, sync); err != nil {
		return err
	}
	if j.obs != nil {
		j.obs(e)
	}
	return nil
}

// AppendRecord writes an arbitrary record as one JSON line, with the same
// atomicity and durability guarantees as Append. Unlike Append it stamps
// nothing: the caller owns the record type and its sequencing. This is the
// generic layer internal/queue builds its write-ahead log on.
func (j *Journal) AppendRecord(v any) error {
	if j == nil || j.w == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(v, false)
}

// appendLocked marshals v, writes it as one line, and honors the journal's
// sync mode (or the per-call sync override). Callers hold j.mu.
func (j *Journal) appendLocked(v any, sync bool) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size += int64(len(line))
	if (sync || j.sync) && j.f != nil {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	return nil
}

// Sync fsyncs the journal file now (a no-op without an underlying file).
func (j *Journal) Sync() error {
	if j == nil || j.f == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Close closes the underlying file, if the journal owns one.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	j.f = nil
	j.w = nil
	return err
}

// ReadRecords decodes JSONL records of type T from r. Torn records — the
// footprints of a crashed writer: a truncated final line, or a partially
// persisted mid-file line followed by later appends — are skipped, and the
// count of skipped lines is returned so callers can surface a warning.
// Only an unreadable stream is an error.
func ReadRecords[T any](r io.Reader) (recs []T, torn int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec T
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn record: skip to the next newline and keep going. A torn
			// *tail* is a process killed mid-append; a torn *mid-file* line
			// is a partial page writeback that later appends survived.
			torn++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, torn, fmt.Errorf("journal: %w", err)
	}
	return recs, torn, nil
}

// Read decodes supervision-journal lines from r, skipping torn records (both
// a truncated final line and torn mid-file lines) and returning how many
// were skipped.
func Read(r io.Reader) ([]Entry, int, error) {
	return ReadRecords[Entry](r)
}

// Replay reads a journal file back, tolerating torn records; the second
// return is the number of torn (skipped) lines.
func Replay(path string) ([]Entry, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}
