// Package journal provides a durable append-only JSONL incident journal for
// supervised job fleets.
//
// Every supervision event — an attempt starting, a contained flow.Incident, a
// retry with its backoff, a watchdog preemption, a deadline timeout, a
// quarantine, and the final outcome — is appended as one JSON line, flushed
// before Append returns. The file therefore survives the process: a crashed
// or killed run leaves a replayable prefix, and Replay tolerates a torn final
// line (a crash mid-write) by ignoring the truncated tail.
//
// The journal is the durability half of the supervisor: internal/sched
// decides what happens to a job, the journal records that it happened. The
// planned aigred daemon reads the same format as its job history.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"aigre/internal/flow"
)

// Event names recorded in journal entries.
const (
	EventAttempt    = "attempt"    // an attempt of a job started
	EventIncident   = "incident"   // a contained flow.Incident during an attempt
	EventRetry      = "retry"      // a failed/degraded attempt will be retried after Backoff
	EventPreempt    = "preempt"    // the watchdog preempted a stuck attempt
	EventTimeout    = "timeout"    // the per-job deadline expired
	EventQuarantine = "quarantine" // the job exhausted its retry budget and was quarantined
	EventDone       = "done"       // the job finished successfully
	EventFail       = "fail"       // the job failed with a permanent, non-retryable error
	EventCancel     = "cancel"     // the job was cancelled from outside (batch/engine shutdown)
)

// Entry is one journal line. Seq orders entries within a single journal even
// when wall clocks of concurrent jobs collide; Time orders entries across
// journals and survives into post-mortem tooling.
type Entry struct {
	Seq     int64         `json:"seq"`
	Time    time.Time     `json:"time"`
	Job     string        `json:"job"`
	Attempt int           `json:"attempt,omitempty"`
	Event   string        `json:"event"`
	Class   string        `json:"class,omitempty"`
	Detail  string        `json:"detail,omitempty"`
	Backoff time.Duration `json:"backoff_ns,omitempty"`

	// Incident carries the full contained-failure record for incident
	// events, so the journal alone reconstructs what degraded and why.
	Incident *flow.Incident `json:"incident,omitempty"`
}

// Journal is a concurrency-safe append-only JSONL writer. The zero value and
// a nil *Journal are both valid no-op journals, so call sites never need to
// guard Append behind a nil check.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	f   *os.File // non-nil when the journal owns the file
	seq int64
}

// Create opens (creating or appending to) a journal file at path.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{w: f, f: f}, nil
}

// New wraps an arbitrary writer (a buffer in tests, a pipe in a daemon).
func New(w io.Writer) *Journal {
	return &Journal{w: w}
}

// Append stamps the entry with the next sequence number and the current time
// (when unset) and writes it as one JSON line. Safe for concurrent use; a nil
// journal discards the entry. The line is written with a single Write call so
// concurrent appenders through an os.File never interleave bytes.
func (j *Journal) Append(e Entry) error {
	if j == nil || j.w == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the underlying file, if the journal owns one.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	j.f = nil
	j.w = nil
	return err
}

// Read decodes journal lines from r. A truncated final line — the footprint
// of a process killed mid-append — is ignored; any other malformed line is an
// error, since it means the file is not a journal.
func Read(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var entries []Entry
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// The malformed line was not the last one: corrupt journal.
			return entries, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("journal: malformed line: %w", err)
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return entries, fmt.Errorf("journal: %w", err)
	}
	return entries, nil
}

// Replay reads a journal file back, tolerating a torn final line.
func Replay(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}
