package bus

import (
	"fmt"
	"sync"
	"testing"
)

func collect(s *Sub, n int) []Event {
	out := make([]Event, 0, n)
	for e := range s.C {
		out = append(out, e)
		if len(out) == n {
			break
		}
	}
	return out
}

// TestPublishSubscribeOrder checks that a subscriber sees every event of its
// job, in publish order, with monotonic per-job sequence numbers — and none
// of another job's.
func TestPublishSubscribeOrder(t *testing.T) {
	b := New("boot1")
	s := b.Subscribe("j1", "")
	defer s.Close()
	for i := 0; i < 5; i++ {
		b.Publish("j1", Event{Type: fmt.Sprintf("e%d", i)})
		b.Publish("other", Event{Type: "noise"})
	}
	got := collect(s, 5)
	for i, e := range got {
		if e.Seq != i+1 || e.Type != fmt.Sprintf("e%d", i) || e.Job != "j1" {
			t.Fatalf("event %d: %+v", i, e)
		}
		if e.ID != fmt.Sprintf("boot1-%d", i+1) {
			t.Fatalf("event %d id %q", i, e.ID)
		}
	}
}

// TestResumeExact checks the no-gap no-duplicate resume contract within one
// incarnation: a subscriber that reconnects with its last seen id receives
// exactly the events after it, interleaved correctly with live publishes.
func TestResumeExact(t *testing.T) {
	b := New("boot1")
	for i := 0; i < 4; i++ {
		b.Publish("j", Event{Type: fmt.Sprintf("e%d", i)})
	}
	s1 := b.Subscribe("j", "")
	first := collect(s1, 2) // client saw e0, e1 then disconnected
	s1.Close()

	b.Publish("j", Event{Type: "e4"})
	s2 := b.Subscribe("j", first[len(first)-1].ID)
	defer s2.Close()
	b.Publish("j", Event{Type: "e5"})

	got := collect(s2, 4) // e2, e3 (replay), e4 (missed), e5 (live)
	for i, e := range got {
		if want := fmt.Sprintf("e%d", i+2); e.Type != want || e.Seq != i+3 {
			t.Fatalf("resumed event %d: %+v, want type %s seq %d", i, e, want, i+3)
		}
	}
}

// TestResumeForeignBoot checks the across-restart contract: an id from a
// different incarnation (or garbage) replays the full history instead of
// silently skipping events.
func TestResumeForeignBoot(t *testing.T) {
	b := New("boot2")
	for i := 0; i < 3; i++ {
		b.Publish("j", Event{Type: fmt.Sprintf("e%d", i)})
	}
	for _, last := range []string{"boot1-2", "garbage", "boot2-notanum", "boot2-99"} {
		s := b.Subscribe("j", last)
		want := 3
		if last == "boot2-99" {
			want = 0 // ahead of us: nothing to replay
			s.Close()
			if len(b.History("j")) != 3 {
				t.Fatal("history corrupted")
			}
			continue
		}
		got := collect(s, want)
		if len(got) != want || got[0].Type != "e0" {
			t.Fatalf("resume %q: got %d events, want full history", last, len(got))
		}
		s.Close()
	}
}

// TestOverflowCutsSubscriber checks that a stalled subscriber is closed with
// Overflowed set rather than blocking the publisher.
func TestOverflowCutsSubscriber(t *testing.T) {
	b := New("boot")
	s := b.Subscribe("j", "")
	for i := 0; i < subBuffer+10; i++ { // never drained: fills the buffer
		b.Publish("j", Event{Type: "e"})
	}
	n := 0
	for range s.C {
		n++
	}
	if n != subBuffer {
		t.Fatalf("drained %d events, want %d buffered before the cut", n, subBuffer)
	}
	if !s.Overflowed() {
		t.Fatal("overflowed subscriber not flagged")
	}
	// Resubscribing replays what was missed.
	s2 := b.Subscribe("j", fmt.Sprintf("boot-%d", n))
	got := collect(s2, 10)
	if len(got) != 10 || got[0].Seq != subBuffer+1 {
		t.Fatalf("post-overflow resume: %d events, first seq %d", len(got), got[0].Seq)
	}
	s2.Close()
}

// TestConcurrentPublishSubscribe hammers one job from concurrent publishers
// and subscribers under -race; every subscriber must see a gap-free suffix.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New("boot")
	const events = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events/4; i++ {
				b.Publish("j", Event{Type: "e"})
			}
		}()
	}
	var subWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			s := b.Subscribe("j", "")
			defer s.Close()
			last := 0
			for e := range s.C {
				if e.Seq != last+1 {
					t.Errorf("gap: seq %d after %d", e.Seq, last)
					return
				}
				last = e.Seq
				if last == events {
					return
				}
			}
		}()
	}
	wg.Wait()
	subWG.Wait()
	if h := b.History("j"); len(h) != events {
		t.Fatalf("history %d, want %d", len(h), events)
	}
}
