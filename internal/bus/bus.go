// Package bus is the aigred daemon's in-process job event bus: the fan-out
// layer between the durable sources of job lifecycle (the write-ahead queue
// log, the supervision journal) and live subscribers (the SSE handlers of
// GET /v1/jobs/{id}/events).
//
// Every published event is appended to the job's in-memory history and
// fanned out to that job's subscribers. Histories are what make Server-Sent
// Events resumable: a subscriber presents the last event id it saw and the
// bus replays everything after it, then splices into the live stream with
// no gap and no duplicate (replay and registration happen under one lock).
//
// Event ids are "<boot>-<n>": n is the job's monotonic event index, boot
// identifies the bus incarnation. Within one incarnation a resume is exact.
// Across a daemon restart the bus is re-seeded from the replayed WAL —
// whose compaction may have collapsed intermediate transitions — so an id
// minted by a previous incarnation no longer names an exact position; the
// bus detects the foreign boot token and replays the job's full (possibly
// collapsed) history instead. Delivery across restarts is therefore
// at-least-once, never lossy: the client re-sees a prefix rather than
// missing a suffix.
package bus

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Event is one job lifecycle or supervision event.
type Event struct {
	// ID is the SSE event id: "<boot>-<seq>".
	ID string `json:"id"`
	// Seq is the job-local monotonic index, 1-based.
	Seq int `json:"seq"`
	// Job is the queue job id.
	Job string `json:"job"`
	// Type is the transition or supervision event name: a queue state
	// ("pending", "leased", "done", "failed", "quarantined", "cancelled")
	// or a journal event ("attempt", "incident", "retry", "preempt",
	// "timeout", "quarantine").
	Type string `json:"type"`
	// Attempt stamps supervision events with the attempt ordinal.
	Attempt int `json:"attempt,omitempty"`
	// Class is the incident/retry failure class, when known.
	Class string `json:"class,omitempty"`
	// Detail is the human-readable transition note.
	Detail string    `json:"detail,omitempty"`
	Time   time.Time `json:"time"`
}

// Sub is one subscription to a job's event stream. Receive from C until it
// is closed; a close with Overflowed() true means the subscriber fell too
// far behind and must resubscribe with its last seen id.
type Sub struct {
	C <-chan Event

	bus      *Bus
	job      string
	ch       chan Event
	closed   bool
	overflow bool
}

// Bus is the event hub. All methods are safe for concurrent use.
type Bus struct {
	mu   sync.Mutex
	boot string
	hist map[string][]Event
	subs map[string]map[*Sub]struct{}
}

// New creates a bus. boot tokens a bus incarnation and prefixes every event
// id; a restarted daemon gets a new token, which is how resume detects that
// per-incarnation indexes are no longer comparable.
func New(boot string) *Bus {
	return &Bus{
		boot: boot,
		hist: make(map[string][]Event),
		subs: make(map[string]map[*Sub]struct{}),
	}
}

// subBuffer is the per-subscriber channel slack beyond the replayed history.
// Events are rare (a handful per job attempt), so a subscriber this far
// behind is effectively gone; it is closed with Overflowed set instead of
// blocking the publisher.
const subBuffer = 256

// Publish appends an event for job to its history and delivers it to the
// job's subscribers. The bus stamps Seq, ID, and (when zero) Time; Job is
// taken from the argument, overriding whatever is in e.
func (b *Bus) Publish(job string, e Event) Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	e.Job = job
	e.Seq = len(b.hist[job]) + 1
	e.ID = fmt.Sprintf("%s-%d", b.boot, e.Seq)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.hist[job] = append(b.hist[job], e)
	for s := range b.subs[job] {
		select {
		case s.ch <- e:
		default:
			// Subscriber stalled: cut it loose rather than block the
			// publisher (which may hold queue or journal locks upstream).
			s.overflow = true
			b.dropLocked(s)
		}
	}
	return e
}

// History returns a copy of the job's event history.
func (b *Bus) History(job string) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.hist[job]...)
}

// Subscribe returns a subscription to job's events that first replays
// history after lastID, then continues live with no gap or duplicate.
// lastID semantics: "" replays the full history; an id minted by this bus
// incarnation resumes exactly after it; an id from another incarnation (or
// garbage) replays the full history — at-least-once across restarts.
func (b *Bus) Subscribe(job, lastID string) *Sub {
	b.mu.Lock()
	defer b.mu.Unlock()
	after := b.cursor(job, lastID)
	replay := b.hist[job][after:]
	s := &Sub{
		bus: b,
		job: job,
		ch:  make(chan Event, len(replay)+subBuffer),
	}
	s.C = s.ch
	for _, e := range replay {
		s.ch <- e // fits: the channel was sized for the replay
	}
	if b.subs[job] == nil {
		b.subs[job] = make(map[*Sub]struct{})
	}
	b.subs[job][s] = struct{}{}
	return s
}

// cursor resolves lastID to an index into job's history: events after that
// index are to be (re)delivered.
func (b *Bus) cursor(job, lastID string) int {
	if lastID == "" {
		return 0
	}
	boot, seqStr, ok := strings.Cut(lastID, "-")
	if !ok || boot != b.boot {
		return 0 // foreign incarnation: replay everything
	}
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq < 0 {
		return 0
	}
	if n := len(b.hist[job]); seq > n {
		return n // client is ahead of us (clock skew on ids): deliver nothing stale
	}
	return seq
}

func (b *Bus) dropLocked(s *Sub) {
	if s.closed {
		return
	}
	s.closed = true
	delete(b.subs[s.job], s)
	close(s.ch)
}

// Close unsubscribes. Safe to call more than once; C is closed.
func (s *Sub) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	s.bus.dropLocked(s)
}

// Overflowed reports whether the bus cut this subscription loose because it
// fell behind. Valid after C is closed; resubscribe with the last seen id.
func (s *Sub) Overflowed() bool {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.overflow
}
