package sat

import (
	"math/rand"
	"testing"
)

func TestStressRandomCNF(t *testing.T) {
	for seed := int64(0); seed < 3000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nVars := 6 + rng.Intn(9)
		nClauses := 10 + rng.Intn(60)
		var cnf [][]Lit
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		okAdd := true
		for c := 0; c < nClauses; c++ {
			k := 1 + rng.Intn(4)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
			if !s.AddClause(cl...) {
				okAdd = false
			}
		}
		got := s.Solve()
		want := bruteForce(nVars, cnf)
		_ = okAdd
		if want && got != Sat {
			t.Fatalf("seed %d: solver says %v, brute force says SAT", seed, got)
		}
		if !want && got != Unsat {
			t.Fatalf("seed %d: solver says %v, brute force says UNSAT", seed, got)
		}
	}
}
