package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if s.Solve() != Sat {
		t.Fatal("single unit must be sat")
	}
	if !s.Value(a) {
		t.Errorf("model wrong")
	}
}

func TestUnitConflict(t *testing.T) {
	s := New()
	a := s.NewVar()
	ok1 := s.AddClause(MkLit(a, false))
	ok2 := s.AddClause(MkLit(a, true))
	if ok1 && ok2 && s.Solve() != Unsat {
		t.Fatal("x & !x must be unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause must report unsat")
	}
	if s.Solve() != Unsat {
		t.Fatal("solver must stay unsat")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	vars := make([]int, 10)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// x0 & (x_i -> x_{i+1}) & !x9 is unsat.
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	s.AddClause(MkLit(vars[9], true))
	if s.Solve() != Unsat {
		t.Fatal("implication chain must be unsat")
	}
}

func TestXorChainSat(t *testing.T) {
	s := New()
	n := 8
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Tseitin XOR pairs: x_i ^ x_{i+1} = 1.
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(vars[i], false), MkLit(vars[i+1], false))
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], true))
	}
	if s.Solve() != Sat {
		t.Fatal("xor chain must be sat")
	}
	for i := 0; i+1 < n; i++ {
		if s.Value(vars[i]) == s.Value(vars[i+1]) {
			t.Fatalf("model violates xor at %d", i)
		}
	}
}

// pigeonhole encodes n+1 pigeons into n holes (unsat).
func pigeonhole(n int) *Solver {
	s := New()
	v := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		v[p] = make([]int, n)
		for h := 0; h < n; h++ {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(v[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("php(%d) = %v, want Unsat", n, got)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(8)
	s.ConflictBudget = 10
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budget-limited solve = %v, want Unknown", got)
	}
}

// bruteForce checks satisfiability of a CNF over <= 16 vars by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 != 0
				if val != l.IsNeg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestQuickRandom3SATMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(6)
		nClauses := 3 + rng.Intn(30)
		var cnf [][]Lit
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for c := 0; c < nClauses; c++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForce(nVars, cnf)
		if want {
			if got != Sat {
				return false
			}
			// Verify the model satisfies every clause.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.Value(l.Var()) != l.IsNeg() {
						sat = true
						break
					}
				}
				if !sat {
					return false
				}
			}
			return true
		}
		return got == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveAssuming(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a | b
	if s.SolveAssuming([]Lit{MkLit(a, true)}) != Sat {
		t.Fatal("assuming !a should be sat (b true)")
	}
	if !s.Value(b) {
		t.Errorf("b must be true under !a")
	}
	if s.SolveAssuming([]Lit{MkLit(a, true), MkLit(b, true)}) != Unsat {
		t.Errorf("assuming !a & !b must be unsat")
	}
	// Solver must remain reusable.
	if s.Solve() != Sat {
		t.Errorf("solver not reusable after assumptions")
	}
}
