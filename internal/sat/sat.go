// Package sat implements a small CDCL (conflict-driven clause learning) SAT
// solver: two-literal watching, first-UIP conflict analysis with clause
// learning, VSIDS-style decision activities, phase saving, and geometric
// restarts. It is the decision engine behind the combinational equivalence
// checker (package cec) that validates every optimization result, standing
// in for the external checker the paper uses (see DESIGN.md).
package sat

// Lit is a solver literal: 2*var + sign (sign 1 = negated). Variables are
// 0-based.
type Lit int32

// MkLit builds a literal.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// IsNeg reports whether the literal is negated.
func (l Lit) IsNeg() bool { return l&1 != 0 }

// Not complements the literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Status is the result of Solve.
type Status int

const (
	// Unknown means the conflict budget was exhausted.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the instance is unsatisfiable.
	Unsat
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// Solver is a CDCL SAT solver. Create with New, add variables and clauses,
// then call Solve.
type Solver struct {
	clauses  []*clause
	learned  []*clause
	watches  [][]*clause // literal -> watching clauses
	assign   []lbool     // variable -> value
	level    []int32     // variable -> decision level
	reason   []*clause   // variable -> implying clause
	activity []float64
	phase    []bool // saved phases
	trail    []Lit
	trailLim []int32 // decision-level boundaries in trail
	qhead    int
	varInc   float64
	claInc   float64
	order    []int // lazily maintained decision candidates (simple max scan)

	// ConflictBudget bounds the search (0 = unlimited). When exceeded,
	// Solve returns Unknown.
	ConflictBudget int64
	conflicts      int64
	unsat          bool // top-level conflict detected during AddClause
}

// New creates an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1}
}

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.watches = append(s.watches, nil, nil)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assign) }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.IsNeg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause. Returns false when the formula became trivially
// unsatisfiable at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	// Simplify: drop duplicate/false literals, detect tautologies.
	seen := map[Lit]bool{}
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if seen[l.Not()] {
			return true // tautology
		}
		if seen[l] {
			continue
		}
		switch s.valueLit(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.IsNeg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.phase[v] = !l.IsNeg()
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		ws := s.watches[p]
		s.watches[p] = nil
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is lits[1].
			if c.lits[0].Not() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.valueLit(c.lits[0]) == lTrue {
				s.watches[p] = append(s.watches[p], c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			s.watches[p] = append(s.watches[p], c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watchers.
				s.watches[p] = append(s.watches[p], ws[i+1:]...)
				s.qhead = len(s.trail)
				return c
			}
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int32) {
	learnt := []Lit{0} // slot for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	for {
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot of the reason
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal on the trail at the current level.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()
	// Backtrack level: highest level among the other literals.
	var back int32
	for _, q := range learnt[1:] {
		if s.level[q.Var()] > back {
			back = s.level[q.Var()]
		}
	}
	return learnt, back
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) bumpClause(c *clause) {
	if c == nil || !c.learned {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learned {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) backtrack(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// decide picks the unassigned variable with maximum activity.
func (s *Solver) decide() (Lit, bool) {
	best, bestAct := -1, -1.0
	for v := range s.assign {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best < 0 {
		return 0, false
	}
	return MkLit(best, !s.phase[best]), true
}

// Solve runs the CDCL search.
func (s *Solver) Solve() Status {
	return s.SolveAssuming(nil)
}

// SolveAssuming runs the search under the given assumptions (checked as
// level-stacked decisions; conflicting assumptions yield Unsat).
func (s *Solver) SolveAssuming(assumptions []Lit) Status {
	if s.unsat {
		return Unsat
	}
	if c := s.propagate(); c != nil {
		return Unsat
	}
	restartLimit := int64(100)
	conflictsAtRestart := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsAtRestart++
			if s.decisionLevel() == int32(len(assumptions)) {
				// Conflict under assumptions only (or at the root).
				if len(assumptions) == 0 {
					s.unsat = true
				}
				s.backtrack(0)
				return Unsat
			}
			learnt, back := s.analyze(confl)
			if back < int32(len(assumptions)) {
				back = int32(len(assumptions))
				// The learned clause may be falsified at the assumption
				// level; re-checked by propagate after enqueue below.
			}
			s.backtrack(back)
			if len(learnt) == 1 {
				s.backtrack(0)
				if !s.enqueue(learnt[0], nil) {
					s.unsat = true
					return Unsat
				}
				// Re-apply assumptions from scratch next iteration.
				if len(assumptions) > 0 {
					continue
				}
			} else {
				c := &clause{lits: learnt, learned: true}
				s.learned = append(s.learned, c)
				s.watch(c)
				if !s.enqueue(learnt[0], c) {
					s.backtrack(0)
					if len(assumptions) == 0 {
						s.unsat = true
					}
					return Unsat
				}
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.ConflictBudget > 0 && s.conflicts > s.ConflictBudget {
				s.backtrack(0)
				return Unknown
			}
			if conflictsAtRestart >= restartLimit {
				conflictsAtRestart = 0
				restartLimit = restartLimit * 3 / 2
				s.backtrack(int32(len(assumptions)))
			}
			continue
		}
		// Apply pending assumptions as decisions.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already satisfied: open an empty level to keep indexing.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				s.backtrack(0)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.enqueue(a, nil)
			}
			continue
		}
		l, ok := s.decide()
		if !ok {
			return Sat // all variables assigned
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.enqueue(l, nil)
	}
}

// Value returns the model value of variable v after Sat.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// NumConflicts returns the number of conflicts encountered so far.
func (s *Solver) NumConflicts() int64 { return s.conflicts }

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearned returns the number of learned clauses.
func (s *Solver) NumLearned() int { return len(s.learned) }
