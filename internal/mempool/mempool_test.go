package mempool

import "testing"

func TestGetPutRoundTrip(t *testing.T) {
	var p SlicePool[int]
	s := p.Get(4)
	if len(s) != 4 || cap(s) < 4 {
		t.Fatalf("Get(4) = len %d cap %d", len(s), cap(s))
	}
	s[0] = 42
	p.Put(s)
	r := p.Get(2)
	if len(r) != 2 {
		t.Fatalf("Get(2) = len %d", len(r))
	}
	// Contents are explicitly arbitrary; GetZeroed clears them.
	p.Put(r)
	z := p.GetZeroed(3)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %d", i, v)
		}
	}
}

func TestPutNilAndEmptyAreNoOps(t *testing.T) {
	var p SlicePool[byte]
	p.Put(nil)
	p.Put([]byte{})
	if s := p.Get(1); len(s) != 1 {
		t.Fatalf("Get(1) after no-op Puts = len %d", len(s))
	}
}

func TestGetLargerThanPooled(t *testing.T) {
	var p SlicePool[int32]
	p.Put(make([]int32, 8))
	big := p.Get(100)
	if len(big) != 100 {
		t.Fatalf("Get(100) = len %d", len(big))
	}
}

// TestSteadyStateDoesNotAllocate is the reason this package exists: a warm
// Get/Put cycle must not box slice headers into fresh heap allocations.
func TestSteadyStateDoesNotAllocate(t *testing.T) {
	var p SlicePool[uint64]
	p.Put(make([]uint64, 0, 64))
	avg := testing.AllocsPerRun(100, func() {
		s := p.Get(32)
		p.Put(s)
	})
	if avg != 0 {
		t.Errorf("warm Get/Put allocates %.1f objects per cycle, want 0", avg)
	}
}
