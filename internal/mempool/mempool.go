// Package mempool provides tiny typed free-lists for the slice scratch
// buffers the optimization kernels re-acquire on every cone / every launch.
// It is a thin veneer over sync.Pool: concurrency-safe, GC-friendly (idle
// buffers are reclaimed under memory pressure), and generic so each kernel
// package declares pools for exactly the element types it recycles
// ([]int32, []bool, []aig.Lit, []uint64, ...).
package mempool

import "sync"

// SlicePool recycles slices of T. The zero value is ready to use.
//
// sync.Pool stores interface values, and boxing a slice header into an
// interface heap-allocates 24 bytes — which would make every Put cost an
// allocation and defeat the pool. The pool therefore stores *[]T boxes and
// recycles the boxes themselves through a second free-list, so a steady-state
// Get/Put cycle allocates nothing.
type SlicePool[T any] struct {
	full  sync.Pool // *[]T boxes holding a recycled backing array
	empty sync.Pool // *[]T boxes with a nil slice, awaiting the next Put
}

// Get returns a slice of length n. The contents are arbitrary (whatever the
// previous user left behind); callers that need zeroed memory use GetZeroed.
func (p *SlicePool[T]) Get(n int) []T {
	if v := p.full.Get(); v != nil {
		b := v.(*[]T)
		s := *b
		*b = nil
		p.empty.Put(b)
		if cap(s) >= n {
			return s[:n]
		}
	}
	if n < 8 {
		return make([]T, n, 8)
	}
	return make([]T, n)
}

// GetZeroed returns a slice of length n with every element set to the zero
// value of T.
func (p *SlicePool[T]) GetZeroed(n int) []T {
	s := p.Get(n)
	clear(s)
	return s
}

// Put returns a slice to the pool. Passing nil or zero-capacity slices is a
// no-op. The caller must not use s afterwards.
func (p *SlicePool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	b, _ := p.empty.Get().(*[]T)
	if b == nil {
		b = new([]T)
	}
	*b = s[:0]
	p.full.Put(b)
}
