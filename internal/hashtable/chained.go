package hashtable

import (
	"sync/atomic"
)

// ChainedTable is a lock-free chained hash table in the style of the
// primitive hashing used by the earlier GPU rewriting work [9]. It exists
// for the head-to-head benchmark against the linear-probing Table (the paper
// argues linear probing benefits more from memory locality); algorithms in
// this repository use Table.
type ChainedTable struct {
	heads []int32 // bucket -> first entry index, -1 when empty
	next  []int32 // entry -> next entry index
	keys  []uint64
	vals  []uint32
	n     int64 // allocated entries
	mask  uint64
}

// NewChained creates a chained table able to hold capacity entries.
func NewChained(capacity int) *ChainedTable {
	if capacity < 4 {
		capacity = 4
	}
	buckets := 1
	for buckets < capacity {
		buckets <<= 1
	}
	t := &ChainedTable{
		heads: make([]int32, buckets),
		next:  make([]int32, capacity),
		keys:  make([]uint64, capacity),
		vals:  make([]uint32, capacity),
		mask:  uint64(buckets - 1),
	}
	for i := range t.heads {
		t.heads[i] = -1
	}
	return t
}

// Len returns the number of entries.
func (t *ChainedTable) Len() int { return int(atomic.LoadInt64(&t.n)) }

// InsertUnique inserts (key, val) if absent; semantics match
// Table.InsertUnique, including the ErrTableFull return when the entry pool
// is exhausted.
func (t *ChainedTable) InsertUnique(key uint64, val uint32) (uint32, bool, error) {
	if key == 0 {
		panic("hashtable: zero key is reserved")
	}
	b := hashBucket(key, t.mask)
	// First scan the existing chain.
	for e := atomic.LoadInt32(&t.heads[b]); e >= 0; e = atomic.LoadInt32(&t.next[e]) {
		if atomic.LoadUint64(&t.keys[e]) == key {
			return atomic.LoadUint32(&t.vals[e]), false, nil
		}
	}
	// Allocate an entry and publish it at the head; on CAS failure rescan
	// the newly prepended entries.
	e := atomic.AddInt64(&t.n, 1) - 1
	if int(e) >= len(t.keys) {
		atomic.AddInt64(&t.n, -1)
		return InvalidValue, false, ErrTableFull
	}
	atomic.StoreUint64(&t.keys[e], key)
	atomic.StoreUint32(&t.vals[e], val)
	for {
		head := atomic.LoadInt32(&t.heads[b])
		atomic.StoreInt32(&t.next[e], head)
		if atomic.CompareAndSwapInt32(&t.heads[b], head, int32(e)) {
			return val, true, nil
		}
		// Another thread inserted concurrently; check whether it was our key.
		for f := atomic.LoadInt32(&t.heads[b]); f >= 0 && f != head; f = atomic.LoadInt32(&t.next[f]) {
			if atomic.LoadUint64(&t.keys[f]) == key {
				return atomic.LoadUint32(&t.vals[f]), false, nil
			}
		}
	}
}

// Query returns the value for key, or (InvalidValue, false) when absent.
func (t *ChainedTable) Query(key uint64) (uint32, bool) {
	b := hashBucket(key, t.mask)
	for e := atomic.LoadInt32(&t.heads[b]); e >= 0; e = atomic.LoadInt32(&t.next[e]) {
		if atomic.LoadUint64(&t.keys[e]) == key {
			return atomic.LoadUint32(&t.vals[e]), true
		}
	}
	return InvalidValue, false
}

func hashBucket(key uint64, mask uint64) uint64 {
	k := key
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k & mask
}
