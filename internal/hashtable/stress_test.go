package hashtable

import (
	"sync"
	"sync/atomic"
	"testing"

	"aigre/internal/gpu"
)

// TestConcurrentInsertAndDumpStress exercises the documented contract that
// Dump is safe to run concurrently with InsertUnique: writer goroutines
// insert disjoint key ranges while a reader repeatedly dumps the host path.
// Run with -race to validate the atomic loads in the host sweep. Every
// intermediate dump must be a consistent subset (valid values, no
// duplicates), and the final dump must be complete.
func TestConcurrentInsertAndDumpStress(t *testing.T) {
	const (
		writers       = 4
		keysPerWriter = 2000
	)
	ht := New(writers * keysPerWriter)
	var done int32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= keysPerWriter; k++ {
				key := uint64(w*keysPerWriter + k)
				ht.InsertUnique(key, uint32(key*3))
			}
		}()
	}
	go func() {
		wg.Wait()
		atomic.StoreInt32(&done, 1)
	}()

	check := func(dump []KV) {
		seen := make(map[uint64]bool, len(dump))
		for _, kv := range dump {
			if kv.Key == 0 || kv.Key > uint64(writers*keysPerWriter) {
				t.Fatalf("dump contains invalid key %d", kv.Key)
			}
			if kv.Val == InvalidValue {
				t.Fatalf("dump observed unpublished value for key %d", kv.Key)
			}
			if kv.Val != uint32(kv.Key*3) {
				t.Fatalf("key %d has value %d, want %d", kv.Key, kv.Val, uint32(kv.Key*3))
			}
			if seen[kv.Key] {
				t.Fatalf("key %d dumped twice", kv.Key)
			}
			seen[kv.Key] = true
		}
	}
	for atomic.LoadInt32(&done) == 0 {
		check(ht.Dump(nil))
	}
	final := ht.Dump(nil)
	check(final)
	if len(final) != writers*keysPerWriter {
		t.Fatalf("final dump has %d entries, want %d", len(final), writers*keysPerWriter)
	}
}

// TestConcurrentInsertAndDeviceDumpStress is the same race against the
// device-kernel dump path.
func TestConcurrentInsertAndDeviceDumpStress(t *testing.T) {
	const keys = 4000
	ht := New(keys)
	d := gpu.New(2)
	var done int32
	go func() {
		for k := 1; k <= keys; k++ {
			ht.InsertUnique(uint64(k), uint32(k))
		}
		atomic.StoreInt32(&done, 1)
	}()
	for atomic.LoadInt32(&done) == 0 {
		for _, kv := range ht.Dump(d) {
			if kv.Val == InvalidValue || kv.Val != uint32(kv.Key) {
				t.Fatalf("device dump saw inconsistent entry %v", kv)
			}
		}
	}
	if got := len(ht.Dump(d)); got != keys {
		t.Fatalf("final device dump has %d entries, want %d", got, keys)
	}
}
