package hashtable

import (
	"math/rand"
	"testing"
)

func benchKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
	}
	return keys
}

func BenchmarkLinearInsertQuery(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New(len(keys))
		for j, k := range keys {
			t.InsertUnique(k, uint32(j))
		}
		for _, k := range keys {
			t.Query(k)
		}
	}
}

func BenchmarkChainedInsertQuery(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewChained(2 * len(keys))
		for j, k := range keys {
			t.InsertUnique(k, uint32(j))
		}
		for _, k := range keys {
			t.Query(k)
		}
	}
}

func BenchmarkLinearQueryHit(b *testing.B) {
	keys := benchKeys(1 << 16)
	t := New(len(keys))
	for j, k := range keys {
		t.InsertUnique(k, uint32(j))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Query(keys[i&(len(keys)-1)])
	}
}

func BenchmarkDump(b *testing.B) {
	keys := benchKeys(1 << 14)
	t := New(len(keys))
	for j, k := range keys {
		t.InsertUnique(k, uint32(j))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Dump(nil)
	}
}
