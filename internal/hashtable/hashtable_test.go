package hashtable

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"aigre/internal/gpu"
)

func TestInsertQueryBasic(t *testing.T) {
	ht := New(16)
	v, ins, err := ht.InsertUnique(42, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ins || v != 7 {
		t.Fatalf("first insert = (%d,%v)", v, ins)
	}
	v, ins, _ = ht.InsertUnique(42, 9)
	if ins || v != 7 {
		t.Fatalf("duplicate insert = (%d,%v), want existing 7", v, ins)
	}
	if v, ok := ht.Query(42); !ok || v != 7 {
		t.Errorf("Query = (%d,%v)", v, ok)
	}
	if _, ok := ht.Query(43); ok {
		t.Errorf("absent key found")
	}
	if ht.Len() != 1 {
		t.Errorf("Len = %d", ht.Len())
	}
}

func TestUpdate(t *testing.T) {
	ht := New(8)
	ht.InsertUnique(5, 1)
	ht.Update(5, 2)
	if v, _ := ht.Query(5); v != 2 {
		t.Errorf("after update Query = %d", v)
	}
}

func TestZeroKeyPanics(t *testing.T) {
	ht := New(8)
	defer func() {
		if recover() == nil {
			t.Errorf("zero key must panic")
		}
	}()
	ht.InsertUnique(0, 1)
}

func TestCollisionHeavyFill(t *testing.T) {
	ht := New(1024)
	for i := uint64(1); i <= 1024; i++ {
		ht.InsertUnique(i, uint32(i))
	}
	for i := uint64(1); i <= 1024; i++ {
		if v, ok := ht.Query(i); !ok || v != uint32(i) {
			t.Fatalf("key %d -> (%d,%v)", i, v, ok)
		}
	}
	if ht.LoadFactor() > 0.51 {
		t.Errorf("load factor %f too high", ht.LoadFactor())
	}
}

func TestConcurrentInsertUniqueWinner(t *testing.T) {
	// Many goroutines race to insert the same keys with different values;
	// exactly one value must win per key and every thread must observe it.
	ht := New(4096)
	const goroutines = 8
	const keys = 1000
	results := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			res := make([]uint32, keys)
			for k := 1; k <= keys; k++ {
				v, _, _ := ht.InsertUnique(uint64(k), uint32(g*keys+k))
				res[k-1] = v
			}
			results[g] = res
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		want := results[0][k]
		for g := 1; g < goroutines; g++ {
			if results[g][k] != want {
				t.Fatalf("key %d: thread %d saw %d, thread 0 saw %d", k+1, g, results[g][k], want)
			}
		}
	}
	if ht.Len() != keys {
		t.Errorf("Len = %d, want %d", ht.Len(), keys)
	}
}

// TestConcurrentInsertMinDeterministic drives the parallel stitcher's merge
// primitive from many racing goroutines: whatever the scheduling, every key
// must end at the minimum value any thread offered — the property that makes
// a batch of InsertMin calls equivalent to a sequential first-encounter
// replay of the same batch.
func TestConcurrentInsertMinDeterministic(t *testing.T) {
	ht := New(4096)
	const goroutines = 8
	const keys = 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			// Visit the keys in a per-thread order so slot claims and CAS-min
			// races interleave differently every run.
			for _, k := range rng.Perm(keys) {
				if err := ht.InsertMin(uint64(k+1), uint32((g+1)*10_000+k)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		want := uint32(10_000 + k) // goroutine 0's offer is the global minimum
		if v, ok := ht.Query(uint64(k + 1)); !ok || v != want {
			t.Fatalf("key %d -> (%d,%v), want %d", k+1, v, ok, want)
		}
	}
	if ht.Len() != keys {
		t.Errorf("Len = %d, want %d", ht.Len(), keys)
	}
}

// TestInsertMinFull checks that InsertMin degrades exactly like InsertUnique:
// ErrTableFull for new keys on a full table, while lowering present keys
// still succeeds.
func TestInsertMinFull(t *testing.T) {
	ht := New(4)
	cap := ht.Cap()
	var inserted []uint64
	for k := uint64(1); ; k++ {
		if err := ht.InsertMin(k, uint32(k)); err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatal(err)
			}
			break
		}
		inserted = append(inserted, k)
		if len(inserted) > cap {
			t.Fatal("table never filled")
		}
	}
	if err := ht.InsertMin(inserted[0], 0); err != nil {
		t.Errorf("lowering a present key on a full table failed: %v", err)
	}
	if v, _ := ht.Query(inserted[0]); v != 0 {
		t.Errorf("value not lowered: %d", v)
	}
}

// TestTableFullReturnsError checks the typed degradation path: a table at
// capacity must return ErrTableFull for new keys (never panic), while
// lookups of present keys still succeed.
func TestTableFullReturnsError(t *testing.T) {
	ht := New(4) // 8 slots; full detection trips at 7 occupied
	var inserted []uint64
	var sawFull bool
	for k := uint64(1); k <= 16; k++ {
		_, ins, err := ht.InsertUnique(k, uint32(k))
		if err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawFull = true
			continue
		}
		if ins {
			inserted = append(inserted, k)
		}
	}
	if !sawFull {
		t.Fatal("table never reported full")
	}
	if len(inserted) != ht.Cap()-1 {
		t.Errorf("inserted %d keys into %d slots, want %d (one reserved empty)",
			len(inserted), ht.Cap(), ht.Cap()-1)
	}
	// Present keys still resolve on the full table, via Query and via
	// InsertUnique's lookup path.
	for _, k := range inserted {
		if v, ok := ht.Query(k); !ok || v != uint32(k) {
			t.Fatalf("key %d lost on full table", k)
		}
		if v, ins, err := ht.InsertUnique(k, 999); err != nil || ins || v != uint32(k) {
			t.Fatalf("present-key insert on full table = (%d,%v,%v)", v, ins, err)
		}
	}
	// Rehash recovers: after growing, new keys insert again.
	ht.Rehash(64)
	if _, ins, err := ht.InsertUnique(1000, 1); err != nil || !ins {
		t.Fatalf("insert after rehash = (%v,%v)", ins, err)
	}
}

// TestConcurrentFullDetection races many goroutines against a tiny table:
// no panic, at least one ErrTableFull, and one slot stays reserved.
func TestConcurrentFullDetection(t *testing.T) {
	ht := New(8) // 16 slots
	const goroutines = 8
	var wg sync.WaitGroup
	var fulls int64
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for k := 1; k <= 64; k++ {
				_, _, err := ht.InsertUnique(uint64(g*64+k), uint32(k))
				if err != nil {
					atomic.AddInt64(&fulls, 1)
				}
			}
		}()
	}
	wg.Wait()
	if fulls == 0 {
		t.Error("no ErrTableFull under concurrent overflow")
	}
	if ht.Len() >= ht.Cap() {
		t.Errorf("occupancy %d reached capacity %d; reserved slot lost", ht.Len(), ht.Cap())
	}
}

func TestChainedTableFullReturnsError(t *testing.T) {
	ct := NewChained(4)
	var sawFull bool
	for k := uint64(1); k <= 16; k++ {
		_, _, err := ct.InsertUnique(k, uint32(k))
		if err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("chained table never reported full")
	}
}

func TestDumpMatchesContents(t *testing.T) {
	ht := New(256)
	rng := rand.New(rand.NewSource(2))
	want := map[uint64]uint32{}
	for i := 0; i < 200; i++ {
		k := uint64(rng.Intn(500) + 1)
		v := uint32(rng.Intn(1000))
		got, ins, _ := ht.InsertUnique(k, v)
		if ins {
			want[k] = v
		} else if want[k] != got {
			t.Fatalf("existing value mismatch")
		}
	}
	for _, dev := range []*gpu.Device{nil, gpu.New(2)} {
		dump := ht.Dump(dev)
		if len(dump) != len(want) {
			t.Fatalf("dump len = %d, want %d", len(dump), len(want))
		}
		for _, kv := range dump {
			if want[kv.Key] != kv.Val {
				t.Errorf("dump entry %d=%d, want %d", kv.Key, kv.Val, want[kv.Key])
			}
		}
	}
}

func TestRehashPreservesEntries(t *testing.T) {
	ht := New(8)
	for i := uint64(1); i <= 8; i++ {
		ht.InsertUnique(i*7, uint32(i))
	}
	ht.Rehash(1000)
	if ht.Len() != 8 {
		t.Fatalf("Len after rehash = %d", ht.Len())
	}
	for i := uint64(1); i <= 8; i++ {
		if v, ok := ht.Query(i * 7); !ok || v != uint32(i) {
			t.Errorf("key %d lost after rehash", i*7)
		}
	}
	if ht.Cap() < 2000 {
		t.Errorf("Cap = %d after Rehash(1000)", ht.Cap())
	}
}

func TestQuickTableMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ht := New(512)
		ref := map[uint64]uint32{}
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(200) + 1)
			v := uint32(rng.Intn(1 << 20))
			got, ins, _ := ht.InsertUnique(k, v)
			if prev, ok := ref[k]; ok {
				if ins || got != prev {
					return false
				}
			} else {
				if !ins || got != v {
					return false
				}
				ref[k] = v
			}
		}
		for k, v := range ref {
			if got, ok := ht.Query(k); !ok || got != v {
				return false
			}
		}
		return ht.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestChainedBasic(t *testing.T) {
	ct := NewChained(128)
	v, ins, _ := ct.InsertUnique(10, 3)
	if !ins || v != 3 {
		t.Fatalf("insert = (%d,%v)", v, ins)
	}
	v, ins, _ = ct.InsertUnique(10, 5)
	if ins || v != 3 {
		t.Fatalf("dup insert = (%d,%v)", v, ins)
	}
	if v, ok := ct.Query(10); !ok || v != 3 {
		t.Errorf("Query = (%d,%v)", v, ok)
	}
	if _, ok := ct.Query(11); ok {
		t.Errorf("absent key found")
	}
}

func TestChainedConcurrent(t *testing.T) {
	ct := NewChained(1 << 14)
	const goroutines = 8
	const keys = 500
	var wg sync.WaitGroup
	results := make([][]uint32, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			res := make([]uint32, keys)
			for k := 1; k <= keys; k++ {
				v, _, _ := ct.InsertUnique(uint64(k), uint32(g*keys+k))
				res[k-1] = v
			}
			results[g] = res
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		// Under chaining, concurrent same-key inserts may briefly create
		// duplicate entries; the first chain hit decides. All queries after
		// the racing window must agree.
		v, ok := ct.Query(uint64(k + 1))
		if !ok {
			t.Fatalf("key %d missing", k+1)
		}
		_ = v
	}
}

func TestResetReusesArrays(t *testing.T) {
	ht := New(16)
	for k := uint64(1); k <= 10; k++ {
		ht.InsertUnique(k, uint32(k))
	}
	ht.Reset()
	if ht.Len() != 0 {
		t.Fatalf("Len after Reset = %d", ht.Len())
	}
	for k := uint64(1); k <= 10; k++ {
		if _, ok := ht.Query(k); ok {
			t.Fatalf("key %d survived Reset", k)
		}
	}
	// The table is fully usable again at its original capacity.
	for k := uint64(100); k < 110; k++ {
		if _, ins, err := ht.InsertUnique(k, uint32(k)); err != nil || !ins {
			t.Fatalf("reinsert %d after Reset: ins=%v err=%v", k, ins, err)
		}
	}
	if ht.Len() != 10 {
		t.Errorf("Len after reinsert = %d", ht.Len())
	}
}

func TestSizeFor(t *testing.T) {
	for _, tc := range []struct{ hint, want int }{
		{0, 8}, {1, 8}, {4, 8}, {5, 16}, {8, 16}, {9, 32}, {1000, 2048},
	} {
		if got := SizeFor(tc.hint); got != tc.want {
			t.Errorf("SizeFor(%d) = %d, want %d", tc.hint, got, tc.want)
		}
		if New(tc.hint).Cap() != SizeFor(tc.hint) {
			t.Errorf("New(%d).Cap() != SizeFor(%d)", tc.hint, tc.hint)
		}
	}
}
