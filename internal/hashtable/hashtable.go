// Package hashtable implements the paper's GPU-parallel hash table
// (Section III-E): an open-addressing table with linear probing whose
// batched insert and query operations are lock-free and safe to call from
// thousands of concurrent kernel threads. It is the backbone of
// sharing-aware node creation during parallel replacement, of parallel
// structural hashing, and of the de-duplication pass.
//
// Compared to the chained design used by the earlier GPU rewriting work [9],
// linear probing keeps probes within consecutive memory, benefiting from
// locality; the package also provides a chained variant so the two designs
// can be benchmarked head-to-head (see DESIGN.md).
package hashtable

import (
	"errors"
	"sync/atomic"

	"aigre/internal/aig"
	"aigre/internal/gpu"
)

const (
	emptyKey   = uint64(0)
	invalidVal = ^uint32(0)
)

// ErrTableFull is returned by InsertUnique when the table has no free slot
// left for a new key. Kernel callers propagate it by panicking with the
// error, which the gpu layer converts into a typed *gpu.LaunchError (the
// guarded flow layer then rolls the pass back); host callers such as the
// de-duplication pass recover by rehashing into a larger table. The table
// reserves one empty slot so that probe loops always terminate, full or not.
var ErrTableFull = errors.New("hashtable: table full")

// InvalidValue is returned by Query for absent keys. Values equal to
// InvalidValue must not be inserted.
const InvalidValue = invalidVal

// Table is a fixed-capacity concurrent hash table from non-zero uint64 keys
// to uint32 values. The zero key is reserved as the empty marker; AIG
// structural keys are never zero for real AND nodes (an AND of two
// constant-false literals is simplified away before hashing).
//
// All methods except Rehash are safe for concurrent use.
type Table struct {
	keys []uint64
	vals []uint32
	mask uint64
	n    int64 // occupied slots
}

// New creates a table able to hold at least capacityHint entries at a load
// factor of at most 1/2.
func New(capacityHint int) *Table {
	if capacityHint < 4 {
		capacityHint = 4
	}
	size := 1
	for size < 2*capacityHint {
		size <<= 1
	}
	t := &Table{
		keys: make([]uint64, size),
		vals: make([]uint32, size),
		mask: uint64(size - 1),
	}
	for i := range t.vals {
		t.vals[i] = invalidVal
	}
	return t
}

// SizeFor returns the slot count New(capacityHint) would allocate. Callers
// that pool tables use it to match a recycled table against the exact size a
// fresh one would have, keeping pooled and unpooled behavior identical.
func SizeFor(capacityHint int) int {
	if capacityHint < 4 {
		capacityHint = 4
	}
	size := 1
	for size < 2*capacityHint {
		size <<= 1
	}
	return size
}

// Reset empties the table in place, reusing the existing arrays — the
// allocation-free alternative to New for per-pass tables. Not safe for
// concurrent use; call between kernel launches.
func (t *Table) Reset() {
	clear(t.keys)
	for i := range t.vals {
		t.vals[i] = invalidVal
	}
	atomic.StoreInt64(&t.n, 0)
}

// Len returns the number of entries.
func (t *Table) Len() int { return int(atomic.LoadInt64(&t.n)) }

// Cap returns the number of slots.
func (t *Table) Cap() int { return len(t.keys) }

// InsertUnique inserts (key, val) if key is absent and returns the value now
// associated with key together with whether this call inserted it. This is
// the paper's shareable-node discovery primitive: create a candidate node
// id, InsertUnique(key, id); if the returned value differs from id, an
// equivalent node already exists and the candidate should be discarded.
//
// When the table cannot accommodate a new key it returns ErrTableFull
// instead of inserting (looking up a key that is already present still
// succeeds on a full table). Occupancy is reserved atomically before the
// slot CAS, so concurrent inserts can never fill the final slot: at least
// one empty slot remains and every probe loop terminates.
func (t *Table) InsertUnique(key uint64, val uint32) (uint32, bool, error) {
	if key == emptyKey {
		panic("hashtable: zero key is reserved")
	}
	if val == invalidVal {
		panic("hashtable: invalid value")
	}
	i := aig.HashKey(key) & t.mask
	for probes := 0; probes <= len(t.keys); probes++ {
		k := atomic.LoadUint64(&t.keys[i])
		if k == emptyKey {
			// Reserve occupancy before claiming the slot, keeping one slot
			// permanently empty (atomic full-detection).
			if atomic.AddInt64(&t.n, 1) >= int64(len(t.keys)) {
				atomic.AddInt64(&t.n, -1)
				return invalidVal, false, ErrTableFull
			}
			if atomic.CompareAndSwapUint64(&t.keys[i], emptyKey, key) {
				atomic.StoreUint32(&t.vals[i], val)
				return val, true, nil
			}
			atomic.AddInt64(&t.n, -1) // lost the slot race; release the claim
			k = atomic.LoadUint64(&t.keys[i])
		}
		if k == key {
			return t.waitVal(i), false, nil
		}
		i = (i + 1) & t.mask
	}
	return invalidVal, false, ErrTableFull
}

// InsertMin inserts (key, val) if key is absent; when key is present it
// lowers the stored value to min(stored, val). Unlike InsertUnique's
// first-caller-wins race, the winning value is determined by the values
// alone, so a batch of concurrent InsertMin calls leaves the table in a
// state independent of scheduling — the deterministic-merge primitive of
// the parallel seam stitcher (the minimum node id in a batch of structural
// duplicates wins, matching a sequential first-encounter replay of the same
// batch). Returns ErrTableFull exactly as InsertUnique does.
func (t *Table) InsertMin(key uint64, val uint32) error {
	if key == emptyKey {
		panic("hashtable: zero key is reserved")
	}
	if val == invalidVal {
		panic("hashtable: invalid value")
	}
	i := aig.HashKey(key) & t.mask
	for probes := 0; probes <= len(t.keys); probes++ {
		k := atomic.LoadUint64(&t.keys[i])
		if k == emptyKey {
			if atomic.AddInt64(&t.n, 1) >= int64(len(t.keys)) {
				atomic.AddInt64(&t.n, -1)
				return ErrTableFull
			}
			if atomic.CompareAndSwapUint64(&t.keys[i], emptyKey, key) {
				atomic.StoreUint32(&t.vals[i], val)
				return nil
			}
			atomic.AddInt64(&t.n, -1) // lost the slot race; release the claim
			k = atomic.LoadUint64(&t.keys[i])
		}
		if k == key {
			for {
				cur := atomic.LoadUint32(&t.vals[i])
				if cur == invalidVal {
					// The slot claimant has not yet published its value; the
					// only transition out of invalidVal is that publication,
					// so spin rather than race its plain store.
					continue
				}
				if cur <= val {
					return nil
				}
				if atomic.CompareAndSwapUint32(&t.vals[i], cur, val) {
					return nil
				}
			}
		}
		i = (i + 1) & t.mask
	}
	return ErrTableFull
}

// waitVal spins until the slot's value has been published by the inserting
// thread. The window between the key CAS and the value store is a few
// instructions, so the spin is effectively bounded.
func (t *Table) waitVal(i uint64) uint32 {
	for {
		if v := atomic.LoadUint32(&t.vals[i]); v != invalidVal {
			return v
		}
	}
}

// Query returns the value for key, or (InvalidValue, false) when absent.
func (t *Table) Query(key uint64) (uint32, bool) {
	if key == emptyKey {
		return invalidVal, false
	}
	i := aig.HashKey(key) & t.mask
	for probes := 0; probes <= len(t.keys); probes++ {
		k := atomic.LoadUint64(&t.keys[i])
		if k == emptyKey {
			return invalidVal, false
		}
		if k == key {
			return t.waitVal(i), true
		}
		i = (i + 1) & t.mask
	}
	return invalidVal, false
}

// Update stores val for key, which must already be present. Used by the
// de-duplication pass to repoint an entry at the surviving node.
func (t *Table) Update(key uint64, val uint32) {
	if key == emptyKey {
		panic("hashtable: zero key is reserved")
	}
	i := aig.HashKey(key) & t.mask
	for probes := 0; probes <= len(t.keys); probes++ {
		k := atomic.LoadUint64(&t.keys[i])
		if k == emptyKey {
			panic("hashtable: Update of absent key")
		}
		if k == key {
			atomic.StoreUint32(&t.vals[i], val)
			return
		}
		i = (i + 1) & t.mask
	}
	panic("hashtable: Update probed full table")
}

// KV is one key-value pair.
type KV struct {
	Key uint64
	Val uint32
}

// Dump gathers all entries into a densely packed slice using device stream
// compaction (Section III-E: "dumping all the key-value pairs concurrently
// to a consecutively stored array"). Pass a device to account the cost; a
// nil device performs a plain host-side sweep.
func (t *Table) Dump(d *gpu.Device) []KV {
	if d == nil {
		// Atomic loads: Dump may run concurrently with InsertUnique (the
		// documented contract), and a slot's value is published after its
		// key CAS — waitVal closes that window.
		out := make([]KV, 0, t.Len())
		for i := range t.keys {
			if k := atomic.LoadUint64(&t.keys[i]); k != emptyKey {
				out = append(out, KV{k, t.waitVal(uint64(i))})
			}
		}
		return out
	}
	keep := make([]bool, len(t.keys))
	src := make([]KV, len(t.keys))
	d.Launch1("hashtable/dump-flags", len(t.keys), func(i int) {
		if k := atomic.LoadUint64(&t.keys[i]); k != emptyKey {
			keep[i] = true
			src[i] = KV{k, t.waitVal(uint64(i))}
		}
	})
	return gpu.Compact(d, "hashtable/dump", src, keep)
}

// Rehash grows the table to hold at least capacityHint entries. Not safe
// for concurrent use; call between kernel launches.
func (t *Table) Rehash(capacityHint int) {
	old := t.Dump(nil)
	if capacityHint < len(old) {
		capacityHint = len(old)
	}
	*t = *New(capacityHint)
	for _, kv := range old {
		t.InsertUnique(kv.Key, kv.Val)
	}
}

// LoadFactor returns the current occupancy fraction.
func (t *Table) LoadFactor() float64 {
	return float64(t.Len()) / float64(len(t.keys))
}
