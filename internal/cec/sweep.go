package cec

import (
	"fmt"
	"math/rand"

	"aigre/internal/aig"
	"aigre/internal/sat"
)

// satMiter proves or refutes output equivalence through SAT sweeping (the
// approach of ABC's cec/fraig): the two networks are merged over shared PIs,
// random simulation groups internal nodes into candidate-equivalence
// classes, and candidates are proven with small budgeted SAT calls in
// topological order, merging proven nodes so later proofs become local.
// Arithmetic-circuit miters (multipliers, dividers) that are hopeless for a
// monolithic CDCL call dissolve under sweeping because optimized networks
// share almost all internal structure with their originals.
func satMiter(a, b *aig.AIG, opts Options) (Result, error) {
	nPIs := a.NumPIs()
	// Merge both networks over shared PIs with structural hashing.
	m := aig.NewCap(nPIs, a.NumObjs()+b.NumObjs())
	m.EnableStrash()
	litsA := copyInto(m, a)
	litsB := copyInto(m, b)

	sw := newSweeper(m, opts)
	sw.run()

	// Compare swept outputs.
	for o := range litsA {
		la := sw.mapLit(litsA[o])
		lb := sw.mapLit(litsB[o])
		if la == lb {
			continue
		}
		// Residual miter on the swept network.
		verdict, cex := sw.prove(la, lb, opts.SATConflictBudget)
		switch verdict {
		case sat.Unsat:
			continue
		case sat.Sat:
			return Result{Method: "sat", Counterexample: cex, FailingOutput: o}, nil
		default:
			return Result{FailingOutput: o}, fmt.Errorf("cec: SAT budget exhausted on output %d", o)
		}
	}
	return Result{Equivalent: true, Method: "sat", FailingOutput: -1}, nil
}

// sweeper rebuilds the merged network bottom-up, merging nodes proven
// equivalent.
type sweeper struct {
	src    *aig.AIG
	dst    *aig.AIG   // swept network
	remap  []aig.Lit  // src node -> dst literal
	sim    [][]uint64 // dst node -> simulation words
	simW   int
	class  map[uint64]aig.Lit // normalized signature -> representative dst lit
	rng    *rand.Rand
	budget int64
}

func newSweeper(m *aig.AIG, opts Options) *sweeper {
	const simWords = 4
	sw := &sweeper{
		src:    m,
		dst:    aig.NewCap(m.NumPIs(), m.NumObjs()),
		remap:  make([]aig.Lit, m.NumObjs()),
		simW:   simWords,
		class:  make(map[uint64]aig.Lit, m.NumAnds()),
		rng:    rand.New(rand.NewSource(opts.Seed + 0xCEC)),
		budget: 2000,
	}
	sw.dst.EnableStrash()
	sw.sim = make([][]uint64, 1, m.NumObjs())
	sw.sim[0] = make([]uint64, simWords) // constant false
	for i := 1; i <= m.NumPIs(); i++ {
		w := make([]uint64, simWords)
		for j := range w {
			w[j] = sw.rng.Uint64()
		}
		sw.sim = append(sw.sim, w)
		sw.remap[i] = aig.MakeLit(int32(i), false)
		sw.registerClass(aig.MakeLit(int32(i), false))
	}
	sw.registerClass(aig.ConstFalse)
	return sw
}

func (sw *sweeper) mapLit(l aig.Lit) aig.Lit {
	return sw.remap[l.Var()].NotCond(l.IsCompl())
}

// simOf returns the simulation words of a dst literal.
func (sw *sweeper) simOf(l aig.Lit) []uint64 {
	base := sw.sim[l.Var()]
	if !l.IsCompl() {
		return base
	}
	out := make([]uint64, sw.simW)
	for i, w := range base {
		out[i] = ^w
	}
	return out
}

// signature returns the phase-normalized hash of a dst literal's simulation
// and the phase flag (true when the complement was hashed).
func (sw *sweeper) signature(l aig.Lit) (uint64, bool) {
	words := sw.simOf(l)
	phase := words[0]&1 != 0
	var h uint64 = 14695981039346656037
	for _, w := range words {
		if phase {
			w = ^w
		}
		h ^= w
		h *= 1099511628211
	}
	return h, phase
}

func (sw *sweeper) registerClass(l aig.Lit) {
	h, phase := sw.signature(l)
	if _, ok := sw.class[h]; !ok {
		sw.class[h] = l.NotCond(phase) // store the phase-true representative
	}
}

// run processes src nodes in topological order. The merged network carries
// its outputs as literal lists rather than POs, so every live node is swept.
func (sw *sweeper) run() {
	for _, id := range sw.src.TopoOrder(false) {
		f0 := sw.mapLit(sw.src.Fanin0(id))
		f1 := sw.mapLit(sw.src.Fanin1(id))
		before := sw.dst.NumObjs()
		lit := sw.dst.NewAnd(f0, f1)
		if sw.dst.NumObjs() > before {
			// Fresh node: simulate it.
			w := make([]uint64, sw.simW)
			s0 := sw.simOf(f0)
			s1 := sw.simOf(f1)
			for i := range w {
				w[i] = s0[i] & s1[i]
			}
			sw.sim = append(sw.sim, w)
			// Try to merge with the candidate class representative.
			h, phase := sw.signature(lit)
			if rep, ok := sw.class[h]; ok {
				cand := rep.NotCond(phase) // candidate equal literal
				if cand.Var() != lit.Var() && sameWords(sw.simOf(lit), sw.simOf(cand)) {
					if verdict, _ := sw.prove(lit, cand, sw.budget); verdict == sat.Unsat {
						sw.remap[id] = cand
						continue
					}
				}
			} else {
				sw.class[h] = lit.NotCond(phase)
			}
		}
		sw.remap[id] = lit
	}
}

func sameWords(x, y []uint64) bool {
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// prove runs a budgeted SAT check that la != lb is unsatisfiable on the
// swept network. On Sat it returns a counterexample over the PIs.
func (sw *sweeper) prove(la, lb aig.Lit, budget int64) (sat.Status, []bool) {
	s := sat.New()
	nodeVar := map[int32]int{}
	var encode func(root int32) int
	encode = func(root int32) int {
		if v, ok := nodeVar[root]; ok {
			return v
		}
		stack := []int32{root}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			if _, ok := nodeVar[id]; ok {
				stack = stack[:len(stack)-1]
				continue
			}
			if !sw.dst.IsAnd(id) {
				v := s.NewVar()
				nodeVar[id] = v
				if sw.dst.IsConst(id) {
					s.AddClause(sat.MkLit(v, true))
				}
				stack = stack[:len(stack)-1]
				continue
			}
			f0, f1 := sw.dst.Fanin0(id), sw.dst.Fanin1(id)
			v0, ok0 := nodeVar[f0.Var()]
			v1, ok1 := nodeVar[f1.Var()]
			if !ok0 {
				stack = append(stack, f0.Var())
				continue
			}
			if !ok1 {
				stack = append(stack, f1.Var())
				continue
			}
			v := s.NewVar()
			nodeVar[id] = v
			l0 := sat.MkLit(v0, f0.IsCompl())
			l1 := sat.MkLit(v1, f1.IsCompl())
			c := sat.MkLit(v, false)
			s.AddClause(c.Not(), l0)
			s.AddClause(c.Not(), l1)
			s.AddClause(c, l0.Not(), l1.Not())
			stack = stack[:len(stack)-1]
		}
		return nodeVar[root]
	}
	sla := sat.MkLit(encode(la.Var()), la.IsCompl())
	slb := sat.MkLit(encode(lb.Var()), lb.IsCompl())
	// Assert sla != slb.
	s.AddClause(sla, slb)
	s.AddClause(sla.Not(), slb.Not())
	s.ConflictBudget = budget
	st := s.Solve()
	if st != sat.Sat {
		return st, nil
	}
	cex := make([]bool, sw.dst.NumPIs())
	for i := range cex {
		if v, ok := nodeVar[int32(i+1)]; ok {
			cex[i] = s.Value(v)
		}
	}
	return st, cex
}
