package cec_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/cec"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/refactor"
)

// TestSweepMultiplierFlow is a regression test: a monolithic CDCL miter on
// this multiplier-based circuit runs for many minutes, while SAT sweeping
// dissolves it in about a millisecond.
func TestSweepMultiplierFlow(t *testing.T) {
	a, _ := bench.ByName("sin", 1)
	res, err := flow.Run(context.Background(), a, flow.RfResyn, flow.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	eq, err := cec.Check(a, res.AIG, cec.Options{})
	t.Logf("cec took %v method=%s", time.Since(start), eq.Method)
	if err != nil || !eq.Equivalent {
		t.Fatalf("%+v %v", eq, err)
	}
}

// TestSweepWidePIEquivalence is a regression test for a bug where the
// sweeper processed no nodes (the merged network carries outputs as literal
// lists, not POs) and returned vacuous verdicts: a >12-PI circuit optimized
// by parallel refactoring must be proven equivalent through real sweeping,
// and an injected fault must be refuted with a genuine counterexample.
func TestSweepWidePIEquivalence(t *testing.T) {
	const nPIs = 24
	a := aig.New(nPIs)
	a.EnableStrash()
	rng := rand.New(rand.NewSource(7))
	chain := a.PI(0)
	for i := 1; i < nPIs; i++ {
		chain = a.NewAnd(chain, a.PI(i))
	}
	a.AddPO(chain)
	for o := 0; o < 4; o++ {
		sum := aig.ConstFalse
		x := a.PI(rng.Intn(nPIs))
		for c := 0; c < 5; c++ {
			sum = a.Or(sum, a.NewAnd(x, a.PI(rng.Intn(nPIs))))
		}
		a.AddPO(sum)
	}
	d := gpu.New(1)
	out, _ := refactor.Parallel(d, a, refactor.Options{})
	res, err := cec.Check(a, out, cec.Options{ExhaustiveLimit: 8}) // force the SAT path
	if err != nil || !res.Equivalent {
		t.Fatalf("equivalent pair rejected: %+v %v", res, err)
	}
	// Inject a fault: complement one PO.
	bad := out.Clone()
	bad.SetPO(1, bad.PO(1).Not())
	res, err = cec.Check(a, bad, cec.Options{ExhaustiveLimit: 8, RandomRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("faulty pair accepted")
	}
	if res.Counterexample != nil {
		va := a.EvalOnce(res.Counterexample)
		vb := bad.EvalOnce(res.Counterexample)
		if va[res.FailingOutput] == vb[res.FailingOutput] {
			t.Fatal("counterexample does not distinguish")
		}
	}
}
