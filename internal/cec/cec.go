// Package cec implements combinational equivalence checking of AIG pairs,
// used to validate every optimization result (the paper reports "all the
// generated AIGs passed equivalence checking"). Three engines are layered:
// bit-parallel random simulation (fast refutation), exhaustive simulation
// (complete for small PI counts), and a SAT miter per output pair over a
// shared structurally-hashed network (complete in general, budgeted).
package cec

import (
	"fmt"
	"math/rand"

	"aigre/internal/aig"
)

// Options controls the checking effort.
type Options struct {
	// RandomRounds is the number of 64-pattern simulation rounds (default 16).
	RandomRounds int
	// ExhaustiveLimit is the maximum PI count for exhaustive simulation
	// (default 12; 2^12 patterns).
	ExhaustiveLimit int
	// SATConflictBudget bounds each per-output SAT call (default 200000
	// conflicts; Unknown results make Check return an error).
	SATConflictBudget int64
	// Seed for random simulation.
	Seed int64
}

func (o Options) normalized() Options {
	if o.RandomRounds == 0 {
		o.RandomRounds = 16
	}
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 12
	}
	if o.SATConflictBudget == 0 {
		o.SATConflictBudget = 200000
	}
	return o
}

// Result reports the outcome of an equivalence check.
type Result struct {
	Equivalent bool
	// Method that decided the result: "interface", "simulation",
	// "exhaustive", "strash" or "sat".
	Method string
	// Counterexample holds PI values distinguishing the networks when
	// Equivalent is false (nil for interface mismatches).
	Counterexample []bool
	// FailingOutput is the index of a differing PO (-1 if not applicable).
	FailingOutput int
}

// Check decides whether the two AIGs implement the same functions.
func Check(a, b *aig.AIG, opts Options) (Result, error) {
	opts = opts.normalized()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return Result{Equivalent: false, Method: "interface", FailingOutput: -1}, nil
	}
	if a.NumPIs() == 0 {
		// Constant networks: evaluate both directly.
		va := evalConst(a)
		vb := evalConst(b)
		for i := range va {
			if va[i] != vb[i] {
				return Result{Method: "exhaustive", FailingOutput: i}, nil
			}
		}
		return Result{Equivalent: true, Method: "exhaustive", FailingOutput: -1}, nil
	}

	// Stage 1: random simulation.
	if res, refuted := randomRefute(a, b, opts); refuted {
		return res, nil
	}
	// Stage 2: exhaustive simulation for small PI counts.
	if a.NumPIs() <= opts.ExhaustiveLimit {
		return exhaustive(a, b)
	}
	// Stage 3: SAT miter with sweeping.
	res, err := satMiter(a, b, opts)
	if err == nil && !res.Equivalent && res.Counterexample != nil {
		// Defense in depth: a counterexample must actually distinguish the
		// networks; anything else indicates an internal inconsistency.
		va := a.EvalOnce(res.Counterexample)
		vb := b.EvalOnce(res.Counterexample)
		if res.FailingOutput >= 0 && va[res.FailingOutput] == vb[res.FailingOutput] {
			return res, fmt.Errorf("cec: internal error: counterexample does not distinguish output %d", res.FailingOutput)
		}
	}
	return res, err
}

// SampleRefute runs only the random-simulation stage as a cheap one-sided
// gate: it returns (res, true) when the networks are provably inequivalent,
// and (Result{}, false) when sampling found no mismatch — which is NOT a
// proof of equivalence. Interface mismatches refute immediately. The flow
// layer uses this to screen every pass output against its input without
// paying for a full check.
func SampleRefute(a, b *aig.AIG, rounds int, seed int64) (Result, bool) {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return Result{Method: "interface", FailingOutput: -1}, true
	}
	if a.NumPIs() == 0 {
		va, vb := evalConst(a), evalConst(b)
		for i := range va {
			if va[i] != vb[i] {
				return Result{Method: "exhaustive", FailingOutput: i}, true
			}
		}
		return Result{}, false
	}
	if rounds <= 0 {
		rounds = 4
	}
	return randomRefute(a, b, Options{RandomRounds: rounds, Seed: seed})
}

// randomRefute simulates both networks on the same random patterns and
// extracts a counterexample on mismatch.
func randomRefute(a, b *aig.AIG, opts Options) (Result, bool) {
	rng := rand.New(rand.NewSource(opts.Seed + 0x5eed))
	nPIs := a.NumPIs()
	w := opts.RandomRounds
	ins := make([][]uint64, nPIs)
	for i := range ins {
		v := make([]uint64, w)
		for j := range v {
			v[j] = rng.Uint64()
		}
		ins[i] = v
	}
	sa := a.Simulate(ins)
	sb := b.Simulate(ins)
	for o := range sa {
		for j := 0; j < w; j++ {
			if diff := sa[o][j] ^ sb[o][j]; diff != 0 {
				bit := uint(0)
				for diff>>bit&1 == 0 {
					bit++
				}
				cex := make([]bool, nPIs)
				for i := range cex {
					cex[i] = ins[i][j]>>bit&1 != 0
				}
				return Result{Method: "simulation", Counterexample: cex, FailingOutput: o}, true
			}
		}
	}
	return Result{}, false
}

// exhaustive simulates all 2^n input patterns.
func exhaustive(a, b *aig.AIG) (Result, error) {
	nPIs := a.NumPIs()
	total := 1 << nPIs
	// Pack patterns 64 at a time.
	words := (total + 63) / 64
	ins := make([][]uint64, nPIs)
	for i := range ins {
		v := make([]uint64, words)
		for m := 0; m < total; m++ {
			if m>>uint(i)&1 != 0 {
				v[m>>6] |= 1 << (uint(m) & 63)
			}
		}
		ins[i] = v
	}
	sa := a.Simulate(ins)
	sb := b.Simulate(ins)
	for o := range sa {
		for j := range sa[o] {
			mask := ^uint64(0)
			if j == words-1 && total%64 != 0 {
				mask = (uint64(1) << (uint(total) % 64)) - 1
			}
			if diff := (sa[o][j] ^ sb[o][j]) & mask; diff != 0 {
				bit := uint(0)
				for diff>>bit&1 == 0 {
					bit++
				}
				m := j*64 + int(bit)
				cex := make([]bool, nPIs)
				for i := range cex {
					cex[i] = m>>uint(i)&1 != 0
				}
				return Result{Method: "exhaustive", Counterexample: cex, FailingOutput: o}, nil
			}
		}
	}
	return Result{Equivalent: true, Method: "exhaustive", FailingOutput: -1}, nil
}

// evalConst evaluates a zero-PI network's PO values.
func evalConst(a *aig.AIG) []bool {
	vals := make(map[int32]bool, a.NumObjs())
	vals[0] = false
	for _, id := range a.TopoOrder(true) {
		f0, f1 := a.Fanin0(id), a.Fanin1(id)
		vals[id] = (vals[f0.Var()] != f0.IsCompl()) && (vals[f1.Var()] != f1.IsCompl())
	}
	out := make([]bool, a.NumPOs())
	for i, p := range a.POs() {
		out[i] = vals[p.Var()] != p.IsCompl()
	}
	return out
}

// copyInto strash-copies src into dst (sharing dst's PIs) and returns the
// PO literals.
func copyInto(dst, src *aig.AIG) []aig.Lit {
	mp := make([]aig.Lit, src.NumObjs())
	mp[0] = aig.ConstFalse
	for i := 1; i <= src.NumPIs(); i++ {
		mp[i] = aig.MakeLit(int32(i), false)
	}
	for _, id := range src.TopoOrder(true) {
		f0, f1 := src.Fanin0(id), src.Fanin1(id)
		mp[id] = dst.NewAnd(
			mp[f0.Var()].NotCond(f0.IsCompl()),
			mp[f1.Var()].NotCond(f1.IsCompl()),
		)
	}
	out := make([]aig.Lit, src.NumPOs())
	for i, p := range src.POs() {
		out[i] = mp[p.Var()].NotCond(p.IsCompl())
	}
	return out
}
