package cec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/balance"
	"aigre/internal/gpu"
	"aigre/internal/refactor"
)

func TestEquivalentRestructurings(t *testing.T) {
	// a&(b&c) vs (a&b)&c — structurally different, functionally equal.
	a1 := aig.New(3)
	a1.EnableStrash()
	a1.AddPO(a1.NewAnd(a1.PI(0), a1.NewAnd(a1.PI(1), a1.PI(2))))
	a2 := aig.New(3)
	a2.EnableStrash()
	a2.AddPO(a2.NewAnd(a2.NewAnd(a2.PI(0), a2.PI(1)), a2.PI(2)))
	res, err := Check(a1, a2, Options{})
	if err != nil || !res.Equivalent {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestInequivalentFound(t *testing.T) {
	a1 := aig.New(2)
	a1.EnableStrash()
	a1.AddPO(a1.NewAnd(a1.PI(0), a1.PI(1)))
	a2 := aig.New(2)
	a2.EnableStrash()
	a2.AddPO(a2.Or(a2.PI(0), a2.PI(1)))
	res, err := Check(a1, a2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("AND vs OR reported equivalent")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	// Verify the counterexample distinguishes the networks.
	va := a1.EvalOnce(res.Counterexample)[res.FailingOutput]
	vb := a2.EvalOnce(res.Counterexample)[res.FailingOutput]
	if va == vb {
		t.Errorf("counterexample does not distinguish")
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a1 := aig.New(2)
	a1.AddPO(aig.ConstTrue)
	a2 := aig.New(3)
	a2.AddPO(aig.ConstTrue)
	res, _ := Check(a1, a2, Options{})
	if res.Equivalent || res.Method != "interface" {
		t.Errorf("res=%+v", res)
	}
}

func TestConstNetworks(t *testing.T) {
	a1 := aig.New(0)
	a1.AddPO(aig.ConstTrue)
	a1.AddPO(aig.ConstFalse)
	a2 := aig.New(0)
	a2.AddPO(aig.ConstTrue)
	a2.AddPO(aig.ConstFalse)
	res, err := Check(a1, a2, Options{})
	if err != nil || !res.Equivalent {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	a2.SetPO(1, aig.ConstTrue)
	res, _ = Check(a1, a2, Options{})
	if res.Equivalent || res.FailingOutput != 1 {
		t.Errorf("res=%+v", res)
	}
}

func TestSATMiterOnWidePIs(t *testing.T) {
	// More than ExhaustiveLimit PIs with a subtle (non-random-refutable)
	// difference: equality except on one input pattern.
	n := 16
	build := func(extra bool) *aig.AIG {
		a := aig.New(n)
		a.EnableStrash()
		all := aig.ConstTrue
		for i := 0; i < n; i++ {
			all = a.NewAnd(all, a.PI(i))
		}
		// f = x0 (plus, when extra, flip on the all-ones minterm).
		f := a.PI(0)
		if extra {
			f = a.Xor(f, all)
		}
		a.AddPO(f)
		return a
	}
	eq, err := Check(build(false), build(false), Options{ExhaustiveLimit: 8})
	if err != nil || !eq.Equivalent {
		t.Fatalf("identical networks: %+v %v", eq, err)
	}
	neq, err := Check(build(false), build(true), Options{ExhaustiveLimit: 8, RandomRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if neq.Equivalent {
		t.Fatal("needle-in-haystack difference missed")
	}
	if neq.Method != "sat" && neq.Method != "simulation" {
		t.Errorf("method = %s", neq.Method)
	}
}

func TestQuickOptimizationsPassCEC(t *testing.T) {
	// End-to-end: every optimization engine must produce equivalent AIGs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6+rng.Intn(4), 100+rng.Intn(150), 3).Rehash()
		d := gpu.New(2)
		variants := []*aig.AIG{}
		if out, _ := balance.Sequential(a); out != nil {
			variants = append(variants, out)
		}
		if out, _ := balance.Parallel(d, a); out != nil {
			variants = append(variants, out)
		}
		if out, _ := refactor.Parallel(d, a, refactor.Options{}); out != nil {
			variants = append(variants, out)
		}
		for _, v := range variants {
			res, err := Check(a, v, Options{})
			if err != nil || !res.Equivalent {
				t.Logf("seed %d: %+v %v", seed, res, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
