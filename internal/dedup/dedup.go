// Package dedup implements the paper's post-processing pass (Section III-F):
// de-duplication of structurally identical nodes and dangling-node removal.
//
// Parallel replacement and parallel rewriting can leave duplicate pairs
// behind (Figure 4: when the new root of a resynthesized cone already exists,
// fanouts of the old and new roots may become structurally identical), and
// local functions that do not depend on all leaves leave dangling nodes.
// De-duplication must proceed level-wise from PIs to POs because merging two
// nodes can create new duplicates among their fanouts.
package dedup

import (
	"sync"
	"sync/atomic"

	"aigre/internal/aig"
	"aigre/internal/gpu"
	"aigre/internal/hashtable"
)

// tablePool recycles the pass-scoped hash table between runs. A pooled table
// is reused only when its slot count equals what New would pick for the
// requested capacity, so pooled and unpooled runs behave identically
// (including the deliberate undersized-table rehash path used in tests).
var tablePool sync.Pool

func acquireTable(capacityHint int) *hashtable.Table {
	if t, _ := tablePool.Get().(*hashtable.Table); t != nil && t.Cap() == hashtable.SizeFor(capacityHint) {
		t.Reset()
		return t
	}
	return hashtable.New(capacityHint)
}

// Stats reports one cleanup pass.
type Stats struct {
	DuplicatesMerged int
	TriviallyReduced int // nodes removed by constant propagation
	DanglingRemoved  int
	Levels           int // level batches processed
	Rehashes         int // hash-table growth events (full-table recovery)
}

// Run de-duplicates the AIG level-wise in parallel and removes dangling
// nodes, returning a compacted network.
func Run(d *gpu.Device, a *aig.AIG) (*aig.AIG, Stats) {
	return run(d, a, a.NumAnds()+16)
}

// run is Run with an explicit hash-table capacity hint, so tests can start
// from a deliberately undersized table and exercise the rehash recovery.
func run(d *gpu.Device, a *aig.AIG, tableCap int) (*aig.AIG, Stats) {
	var st Stats
	work := a.Clone()
	n := work.NumObjs()
	levels := work.NodeLevels()
	maxLevel := int32(0)
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	work.ForEachAnd(func(id int32) {
		byLevel[levels[id]] = append(byLevel[levels[id]], id)
	})

	remap := make([]aig.Lit, n)
	for i := range remap {
		remap[i] = aig.MakeLit(int32(i), false)
	}
	ht := acquireTable(tableCap)
	defer tablePool.Put(ht)
	merged := make([]int32, len(byLevel))
	trivial := make([]int32, len(byLevel))
	maxBatch := 0
	for _, b := range byLevel {
		if len(b) > maxBatch {
			maxBatch = len(b)
		}
	}
	// Per-thread counter arrays are sized for the largest level once, instead
	// of being reallocated for every level batch.
	mergedAll := make([]int32, maxBatch)
	trivialAll := make([]int32, maxBatch)

	for lv := int32(1); lv <= maxLevel; lv++ {
		batch := byLevel[lv]
		if len(batch) == 0 {
			continue
		}
		st.Levels++
		var mergedHere, trivialHere int32
		mergedPer := mergedAll[:len(batch)]
		trivialPer := trivialAll[:len(batch)]
		clear(mergedPer)
		clear(trivialPer)
		// A full hash table degrades gracefully: the batch is retried after
		// growing the table (rehashing happens between launches, where
		// single-threaded access is safe). The kernel is idempotent — fanin
		// remaps resolve to the same literals on a retry — so re-running a
		// partially processed batch is sound.
		for {
			var full int32
			d.Launch("dedup/level", len(batch), func(tid int) int64 {
				id := batch[tid]
				f0 := work.Fanin0(id)
				f1 := work.Fanin1(id)
				// Fanins are at lower levels, so their remaps are final.
				nf0 := remap[f0.Var()].NotCond(f0.IsCompl())
				nf1 := remap[f1.Var()].NotCond(f1.IsCompl())
				work.SetFanins(id, nf0, nf1)
				if lit, ok := aig.SimplifyAnd(nf0, nf1); ok {
					remap[id] = lit
					trivialPer[tid] = 1
					return 2
				}
				got, inserted, err := ht.InsertUnique(aig.Key(nf0, nf1), uint32(id))
				if err != nil {
					atomic.StoreInt32(&full, 1)
					return 3
				}
				if !inserted && got != uint32(id) {
					remap[id] = aig.MakeLit(int32(got), false)
					mergedPer[tid] = 1
				}
				return 3
			})
			if atomic.LoadInt32(&full) == 0 {
				break
			}
			st.Rehashes++
			ht.Rehash(2*ht.Len() + len(batch))
			for i := range batch {
				mergedPer[i] = 0
				trivialPer[i] = 0
			}
		}
		for i := range batch {
			mergedHere += mergedPer[i]
			trivialHere += trivialPer[i]
		}
		merged[lv] = mergedHere
		trivial[lv] = trivialHere
	}
	for lv := range merged {
		st.DuplicatesMerged += int(merged[lv])
		st.TriviallyReduced += int(trivial[lv])
	}
	for i, p := range work.POs() {
		work.SetPO(i, remap[p.Var()].NotCond(p.IsCompl()))
	}
	// Dangling-node removal: the paper assigns one thread per zero-fanout
	// node to delete its MFFC; compaction from the POs removes exactly the
	// same nodes. Account it as one sweep kernel.
	d.Launch1("dedup/dangling", work.NumObjs(), func(int) {})
	before := work.NumAnds()
	out, _ := work.Compact()
	st.DanglingRemoved = before - out.NumAnds() - st.DuplicatesMerged - st.TriviallyReduced
	if st.DanglingRemoved < 0 {
		st.DanglingRemoved = 0
	}
	return out, st
}
