package dedup

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/gpu"
)

func simEqual(a, b *aig.AIG) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i)*911 + 3))
		ins[i] = []uint64{r.Uint64(), r.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

func TestDedupMergesCascade(t *testing.T) {
	// Figure 4: duplicates at one level create new duplicates among their
	// fanouts, which the level-wise pass must catch.
	a := aig.New(3)
	x, y, z := a.PI(0), a.PI(1), a.PI(2)
	d1 := a.AddAndUnchecked(x, y)
	d2 := a.AddAndUnchecked(x, y) // duplicate of d1
	u1 := a.AddAndUnchecked(d1, z)
	u2 := a.AddAndUnchecked(d2, z) // becomes duplicate after d1/d2 merge
	top := a.AddAndUnchecked(u1, u2)
	a.AddPO(top)
	out, st := Run(gpu.New(1), a)
	if st.DuplicatesMerged != 2 {
		t.Errorf("DuplicatesMerged = %d, want 2", st.DuplicatesMerged)
	}
	// top = u & u = u after simplification; remaining: d, u.
	if out.NumAnds() != 2 {
		t.Errorf("NumAnds = %d, want 2", out.NumAnds())
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestDedupRemovesDangling(t *testing.T) {
	a := aig.New(2)
	a.EnableStrash()
	keep := a.NewAnd(a.PI(0), a.PI(1))
	a.NewAnd(a.PI(0), a.PI(1).Not()) // dangling
	a.AddPO(keep)
	out, st := Run(gpu.New(1), a)
	if out.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", out.NumAnds())
	}
	if st.DanglingRemoved != 1 {
		t.Errorf("DanglingRemoved = %d, want 1", st.DanglingRemoved)
	}
}

func TestDedupConstantPropagation(t *testing.T) {
	a := aig.New(2)
	x := a.PI(0)
	n1 := a.AddAndUnchecked(x, x.Not()) // const0
	n2 := a.AddAndUnchecked(n1, a.PI(1))
	a.AddPO(n2)
	a.AddPO(n1.Not())
	out, st := Run(gpu.New(1), a)
	if out.NumAnds() != 0 {
		t.Errorf("NumAnds = %d, want 0", out.NumAnds())
	}
	if out.PO(0) != aig.ConstFalse || out.PO(1) != aig.ConstTrue {
		t.Errorf("POs = %v, %v", out.PO(0), out.PO(1))
	}
	if st.TriviallyReduced != 2 {
		t.Errorf("TriviallyReduced = %d, want 2", st.TriviallyReduced)
	}
}

func TestDedupIdempotentOnCleanAIG(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := aig.Random(rng, 8, 300, 5).Rehash()
	out, st := Run(gpu.New(2), a)
	if out.NumAnds() != a.NumAnds() {
		t.Errorf("clean AIG changed: %d -> %d (stats %+v)", a.NumAnds(), out.NumAnds(), st)
	}
}

func TestDedupUndersizedTableRecovers(t *testing.T) {
	// A deliberately undersized hash table must degrade (rehash + retry),
	// never crash, and still produce the same result as a full-size run.
	rng := rand.New(rand.NewSource(11))
	a := aig.New(6)
	lits := make([]aig.Lit, 0, 128)
	for i := 0; i < 6; i++ {
		lits = append(lits, a.PI(i))
	}
	for i := 0; i < 120; i++ {
		f0 := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		f1 := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		if f0.Var() == f1.Var() {
			continue
		}
		lits = append(lits, a.AddAndUnchecked(f0, f1))
	}
	for i := 0; i < 4; i++ {
		a.AddPO(lits[len(lits)-1-rng.Intn(8)])
	}
	for _, workers := range []int{1, 4} {
		out, st := run(gpu.New(workers), a, 4) // 8 slots for a 100+ node AIG
		if st.Rehashes == 0 {
			t.Errorf("workers=%d: undersized table never rehashed", workers)
		}
		ref, refSt := Run(gpu.New(workers), a)
		if refSt.Rehashes != 0 {
			t.Errorf("workers=%d: full-size table rehashed %d times", workers, refSt.Rehashes)
		}
		if out.NumAnds() != ref.NumAnds() {
			t.Errorf("workers=%d: undersized run %d nodes, reference %d",
				workers, out.NumAnds(), ref.NumAnds())
		}
		if !simEqual(a, out) {
			t.Errorf("workers=%d: function changed", workers)
		}
	}
}

func TestQuickDedupMatchesRehash(t *testing.T) {
	// The parallel pass must reach the same node count as the sequential
	// reference (full rehash) and preserve the function.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.New(6)
		// Build an AIG with unchecked duplicates.
		lits := make([]aig.Lit, 0, 64)
		for i := 0; i < 6; i++ {
			lits = append(lits, a.PI(i))
		}
		for i := 0; i < 80; i++ {
			f0 := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
			f1 := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
			if f0.Var() == f1.Var() {
				continue
			}
			lits = append(lits, a.AddAndUnchecked(f0, f1))
		}
		for i := 0; i < 4; i++ {
			a.AddPO(lits[len(lits)-1-rng.Intn(8)])
		}
		par, _ := Run(gpu.New(1+rng.Intn(4)), a)
		ref := a.Rehash()
		if par.NumAnds() != ref.NumAnds() {
			t.Logf("count mismatch: dedup %d vs rehash %d", par.NumAnds(), ref.NumAnds())
			return false
		}
		return simEqual(a, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
