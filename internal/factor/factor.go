// Package factor implements algebraic factoring of sum-of-products
// expressions in the style of MIS [12] (the "standard factoring procedure"
// the paper's refactoring uses to resynthesize cone functions), and the
// construction of AIG subgraphs from factored forms.
package factor

import (
	"fmt"
	"math/bits"
	"sort"

	"aigre/internal/aig"
	"aigre/internal/truth"
)

// Kind discriminates factored-form tree nodes.
type Kind uint8

const (
	KindConst0 Kind = iota
	KindConst1
	KindLit
	KindAnd
	KindOr
)

// Tree is a factored-form expression tree. And/Or nodes are n-ary; Lit
// nodes name an input variable with an optional complement.
type Tree struct {
	Kind     Kind
	Var      int
	Neg      bool
	Children []*Tree
}

func lit(v int, neg bool) *Tree { return &Tree{Kind: KindLit, Var: v, Neg: neg} }

// nary builds an n-ary AND/OR node, collapsing the degenerate arities: a
// single child stands alone, an empty AND is constant true and an empty OR
// constant false.
func nary(k Kind, cs []*Tree) *Tree {
	switch len(cs) {
	case 0:
		if k == KindAnd {
			return &Tree{Kind: KindConst1}
		}
		return &Tree{Kind: KindConst0}
	case 1:
		return cs[0]
	}
	return &Tree{Kind: k, Children: cs}
}

// NumAnds returns the number of 2-input AND nodes needed to build the tree
// without any structural sharing: every n-ary AND/OR contributes n-1 nodes.
func (t *Tree) NumAnds() int {
	switch t.Kind {
	case KindAnd, KindOr:
		n := len(t.Children) - 1
		for _, c := range t.Children {
			n += c.NumAnds()
		}
		return n
	default:
		return 0
	}
}

func (t *Tree) String() string {
	switch t.Kind {
	case KindConst0:
		return "0"
	case KindConst1:
		return "1"
	case KindLit:
		if t.Neg {
			return fmt.Sprintf("!x%d", t.Var)
		}
		return fmt.Sprintf("x%d", t.Var)
	case KindAnd, KindOr:
		sep := "*"
		if t.Kind == KindOr {
			sep = " + "
		}
		s := "("
		for i, c := range t.Children {
			if i > 0 {
				s += sep
			}
			s += c.String()
		}
		return s + ")"
	}
	return "?"
}

// Factor computes a factored form of the SOP using the quick-divisor
// algebraic factoring algorithm (GFACTOR with ONE_LEVEL_0_KERNEL divisors).
func Factor(s truth.SOP) *Tree {
	if s.IsConst0() {
		return &Tree{Kind: KindConst0}
	}
	if s.IsConst1() {
		return &Tree{Kind: KindConst1}
	}
	return gfactor(s.Cubes)
}

// FactorTT computes the min-phase ISOP of tt and factors it, returning the
// tree and whether it implements the complement of tt.
func FactorTT(tt truth.TT) (*Tree, bool) {
	sop, compl := truth.MinPhaseISOP(tt)
	return Factor(sop), compl
}

func gfactor(f []truth.Cube) *Tree {
	if len(f) == 0 {
		return &Tree{Kind: KindConst0}
	}
	if len(f) == 1 {
		return cubeTree(f[0])
	}
	// Divide out the largest common cube first.
	if cc := commonCube(f); cc != (truth.Cube{}) {
		q := divideByCube(f, cc)
		return mulTrees(cubeTree(cc), gfactor(q))
	}
	d := quickDivisor(f)
	if d == nil {
		// No literal appears twice: plain sum of cubes.
		return sumTree(f)
	}
	if len(d) == 1 && cubeNumLits(d[0]) == 1 {
		return literalFactor(f, d[0])
	}
	q, _ := divide(f, d)
	if len(q) == 0 {
		return sumTree(f)
	}
	if len(q) == 1 {
		return literalFactor(f, q[0])
	}
	q = makeCubeFree(q)
	if len(q) >= len(f) {
		// No reduction possible through this divisor; factor on the most
		// frequent literal to guarantee progress.
		v, pos, _ := mostFrequentLiteral(f)
		return literalFactor(f, truth.Cube{}.WithLit(v, pos))
	}
	d2, r2 := divide(f, q)
	if len(d2) == 0 {
		return sumTree(f)
	}
	if cc := commonCube(d2); cc != (truth.Cube{}) {
		// Divisor not cube-free: factor on its best literal instead.
		return literalFactor(f, cc)
	}
	return addTrees(mulTrees(gfactor(d2), gfactor(q)), gfactor(r2))
}

// literalFactor picks the literal of cube c occurring in the most cubes of
// f and factors f as l*(f/l) + remainder.
func literalFactor(f []truth.Cube, c truth.Cube) *Tree {
	v, neg := bestLiteral(f, c)
	l := truth.Cube{}.WithLit(v, !neg)
	q, r := divide(f, []truth.Cube{l})
	return addTrees(mulTrees(lit(v, neg), gfactor(q)), gfactor(r))
}

// bestLiteral returns the variable and phase (neg=true means the negative
// literal) of the literal in cube c appearing most often across f.
func bestLiteral(f []truth.Cube, c truth.Cube) (int, bool) {
	bestV, bestNeg, bestCount := -1, false, -1
	for v := 0; v < truth.MaxVars; v++ {
		for _, phasePos := range [2]bool{true, false} {
			if !c.HasLit(v, phasePos) {
				continue
			}
			count := 0
			for _, cu := range f {
				if cu.HasLit(v, phasePos) {
					count++
				}
			}
			if count > bestCount {
				bestV, bestNeg, bestCount = v, !phasePos, count
			}
		}
	}
	if bestV < 0 {
		panic("factor: bestLiteral on empty cube")
	}
	return bestV, bestNeg
}

// quickDivisor returns a level-0 kernel of f, or nil when f has no literal
// appearing in two or more cubes (no nontrivial kernels).
func quickDivisor(f []truth.Cube) []truth.Cube {
	v, pos, count := mostFrequentLiteral(f)
	if count < 2 {
		return nil
	}
	d := append([]truth.Cube(nil), f...)
	for count >= 2 {
		l := truth.Cube{}.WithLit(v, pos)
		d, _ = divide(d, []truth.Cube{l})
		d = makeCubeFree(d)
		if len(d) <= 1 {
			return d
		}
		v, pos, count = mostFrequentLiteral(d)
	}
	return d
}

func mostFrequentLiteral(f []truth.Cube) (v int, pos bool, count int) {
	var posCount, negCount [truth.MaxVars]int
	for _, c := range f {
		for m := c.Pos; m != 0; m &= m - 1 {
			posCount[bits.TrailingZeros16(m)]++
		}
		for m := c.Neg; m != 0; m &= m - 1 {
			negCount[bits.TrailingZeros16(m)]++
		}
	}
	count = -1
	for i := 0; i < truth.MaxVars; i++ {
		if posCount[i] > count {
			v, pos, count = i, true, posCount[i]
		}
		if negCount[i] > count {
			v, pos, count = i, false, negCount[i]
		}
	}
	return
}

// divide performs algebraic division f / d, returning quotient and
// remainder: f = q*d + r with q maximal.
func divide(f, d []truth.Cube) (q, r []truth.Cube) {
	if len(d) == 0 {
		return nil, f
	}
	// Quotient = intersection over divisor cubes of {fc/dc : dc ⊆ fc}.
	var qset map[truth.Cube]bool
	for _, dc := range d {
		cur := map[truth.Cube]bool{}
		for _, fc := range f {
			if cubeContains(fc, dc) {
				cur[cubeRemove(fc, dc)] = true
			}
		}
		if qset == nil {
			qset = cur
		} else {
			for c := range qset {
				if !cur[c] {
					delete(qset, c)
				}
			}
		}
		if len(qset) == 0 {
			return nil, f
		}
	}
	q = sortedCubes(qset)
	// Remainder = f minus the product q*d.
	prod := map[truth.Cube]bool{}
	for _, qc := range q {
		for _, dc := range d {
			prod[cubeProduct(qc, dc)] = true
		}
	}
	for _, fc := range f {
		if !prod[fc] {
			r = append(r, fc)
		}
	}
	return q, r
}

func divideByCube(f []truth.Cube, c truth.Cube) []truth.Cube {
	out := make([]truth.Cube, 0, len(f))
	for _, fc := range f {
		if cubeContains(fc, c) {
			out = append(out, cubeRemove(fc, c))
		}
	}
	return out
}

// commonCube returns the cube of literals shared by all cubes of f.
func commonCube(f []truth.Cube) truth.Cube {
	if len(f) == 0 {
		return truth.Cube{}
	}
	cc := f[0]
	for _, c := range f[1:] {
		cc.Pos &= c.Pos
		cc.Neg &= c.Neg
	}
	return cc
}

// makeCubeFree divides out the common cube of f.
func makeCubeFree(f []truth.Cube) []truth.Cube {
	cc := commonCube(f)
	if cc == (truth.Cube{}) {
		return f
	}
	return divideByCube(f, cc)
}

func cubeContains(outer, inner truth.Cube) bool {
	return outer.Pos&inner.Pos == inner.Pos && outer.Neg&inner.Neg == inner.Neg
}

func cubeRemove(c, sub truth.Cube) truth.Cube {
	return truth.Cube{Pos: c.Pos &^ sub.Pos, Neg: c.Neg &^ sub.Neg}
}

func cubeProduct(a, b truth.Cube) truth.Cube {
	return truth.Cube{Pos: a.Pos | b.Pos, Neg: a.Neg | b.Neg}
}

func cubeNumLits(c truth.Cube) int { return c.NumLits() }

func sortedCubes(set map[truth.Cube]bool) []truth.Cube {
	out := make([]truth.Cube, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Neg < out[j].Neg
	})
	return out
}

// cubeTree builds the AND tree of a single cube ("1" for the empty cube).
func cubeTree(c truth.Cube) *Tree {
	var lits []*Tree
	for v := 0; v < truth.MaxVars; v++ {
		if c.HasLit(v, true) {
			lits = append(lits, lit(v, false))
		}
		if c.HasLit(v, false) {
			lits = append(lits, lit(v, true))
		}
	}
	if len(lits) == 0 {
		return &Tree{Kind: KindConst1}
	}
	return nary(KindAnd, lits)
}

// sumTree builds the OR of the cube trees of f.
func sumTree(f []truth.Cube) *Tree {
	ts := make([]*Tree, len(f))
	for i, c := range f {
		ts[i] = cubeTree(c)
	}
	return nary(KindOr, ts)
}

func mulTrees(a, b *Tree) *Tree {
	if a.Kind == KindConst1 {
		return b
	}
	if b.Kind == KindConst1 {
		return a
	}
	if a.Kind == KindConst0 || b.Kind == KindConst0 {
		return &Tree{Kind: KindConst0}
	}
	var cs []*Tree
	if a.Kind == KindAnd {
		cs = append(cs, a.Children...)
	} else {
		cs = append(cs, a)
	}
	if b.Kind == KindAnd {
		cs = append(cs, b.Children...)
	} else {
		cs = append(cs, b)
	}
	return nary(KindAnd, cs)
}

func addTrees(a, b *Tree) *Tree {
	if a.Kind == KindConst0 {
		return b
	}
	if b.Kind == KindConst0 {
		return a
	}
	if a.Kind == KindConst1 || b.Kind == KindConst1 {
		return &Tree{Kind: KindConst1}
	}
	var cs []*Tree
	if a.Kind == KindOr {
		cs = append(cs, a.Children...)
	} else {
		cs = append(cs, a)
	}
	if b.Kind == KindOr {
		cs = append(cs, b.Children...)
	} else {
		cs = append(cs, b)
	}
	return nary(KindOr, cs)
}

// BuildAIG constructs the tree in the AIG, mapping tree variable v to
// leaves[v], and returns the root literal. n-ary operators are built as
// balanced binary trees; structural hashing in the target AIG provides
// sharing.
func BuildAIG(a *aig.AIG, t *Tree, leaves []aig.Lit) aig.Lit {
	switch t.Kind {
	case KindConst0:
		return aig.ConstFalse
	case KindConst1:
		return aig.ConstTrue
	case KindLit:
		return leaves[t.Var].NotCond(t.Neg)
	case KindAnd, KindOr:
		lits := make([]aig.Lit, len(t.Children))
		for i, c := range t.Children {
			lits[i] = BuildAIG(a, c, leaves)
		}
		return buildBalanced(a, lits, t.Kind == KindOr)
	}
	panic("factor: bad tree kind")
}

// buildBalanced combines lits with AND (or OR when isOr) as a balanced
// binary tree.
func buildBalanced(a *aig.AIG, lits []aig.Lit, isOr bool) aig.Lit {
	for len(lits) > 1 {
		next := lits[:0]
		for i := 0; i+1 < len(lits); i += 2 {
			if isOr {
				next = append(next, a.Or(lits[i], lits[i+1]))
			} else {
				next = append(next, a.NewAnd(lits[i], lits[i+1]))
			}
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	return lits[0]
}

// Eval computes the truth table of the tree over n variables, for
// verification in tests.
func (t *Tree) Eval(n int) truth.TT {
	switch t.Kind {
	case KindConst0:
		return truth.Const(n, false)
	case KindConst1:
		return truth.Const(n, true)
	case KindLit:
		v := truth.Var(n, t.Var)
		if t.Neg {
			return truth.New(n).Not(v)
		}
		return v
	case KindAnd:
		res := truth.Const(n, true)
		for _, c := range t.Children {
			res.And(res, c.Eval(n))
		}
		return res
	case KindOr:
		res := truth.Const(n, false)
		for _, c := range t.Children {
			res.Or(res, c.Eval(n))
		}
		return res
	}
	panic("factor: bad tree kind")
}
