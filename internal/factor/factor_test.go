package factor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/truth"
)

func randomTT(rng *rand.Rand, n int) truth.TT {
	t := truth.New(n)
	for i := range t.Words {
		t.Words[i] = rng.Uint64()
	}
	return t
}

func TestFactorConstants(t *testing.T) {
	if Factor(truth.SOP{NVars: 3}).Kind != KindConst0 {
		t.Errorf("empty SOP must factor to const0")
	}
	one := truth.SOP{NVars: 3, Cubes: []truth.Cube{{}}}
	if Factor(one).Kind != KindConst1 {
		t.Errorf("tautology must factor to const1")
	}
}

func TestFactorSingleCube(t *testing.T) {
	s := truth.SOP{NVars: 4, Cubes: []truth.Cube{
		truth.Cube{}.WithLit(0, true).WithLit(2, false).WithLit(3, true),
	}}
	tr := Factor(s)
	if !tr.Eval(4).Equal(s.TT()) {
		t.Fatalf("cube factoring wrong: %v", tr)
	}
	if tr.NumAnds() != 2 {
		t.Errorf("NumAnds = %d, want 2 for a 3-literal cube", tr.NumAnds())
	}
}

func TestFactorSharesDivisor(t *testing.T) {
	// f = a*c + a*d + b*c + b*d = (a+b)*(c+d): 8 literals as SOP, 4 after
	// factoring, i.e. 3 AND nodes instead of 7.
	n := 4
	mk := func(v1, v2 int) truth.Cube {
		return truth.Cube{}.WithLit(v1, true).WithLit(v2, true)
	}
	s := truth.SOP{NVars: n, Cubes: []truth.Cube{mk(0, 2), mk(0, 3), mk(1, 2), mk(1, 3)}}
	tr := Factor(s)
	if !tr.Eval(n).Equal(s.TT()) {
		t.Fatalf("factored function differs: %v", tr)
	}
	if got := tr.NumAnds(); got != 3 {
		t.Errorf("NumAnds = %d, want 3 for (a+b)(c+d)", got)
	}
}

func TestFactorCommonCube(t *testing.T) {
	// f = a*b*c + a*b*d = a*b*(c+d)
	n := 4
	c1 := truth.Cube{}.WithLit(0, true).WithLit(1, true).WithLit(2, true)
	c2 := truth.Cube{}.WithLit(0, true).WithLit(1, true).WithLit(3, true)
	s := truth.SOP{NVars: n, Cubes: []truth.Cube{c1, c2}}
	tr := Factor(s)
	if !tr.Eval(n).Equal(s.TT()) {
		t.Fatalf("factored function differs")
	}
	if got := tr.NumAnds(); got != 3 {
		t.Errorf("NumAnds = %d, want 3 for ab(c+d)", got)
	}
}

func TestQuickFactorPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		tt := randomTT(rng, n)
		sop := truth.ISOP(tt, truth.TT{})
		tr := Factor(sop)
		return tr.Eval(n).Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickFactorNeverWorseThanSOP(t *testing.T) {
	// The factored form should never need more AND nodes than the flat SOP.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		tt := randomTT(rng, n)
		sop := truth.ISOP(tt, truth.TT{})
		flat := sumTree(sop.Cubes)
		return Factor(sop).NumAnds() <= flat.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlgebraicDivision(t *testing.T) {
	// f = a*c + a*d + b: f / (c+d) = {a}, remainder {b}
	a := truth.Cube{}.WithLit(0, true)
	b := truth.Cube{}.WithLit(1, true)
	c := truth.Cube{}.WithLit(2, true)
	d := truth.Cube{}.WithLit(3, true)
	f := []truth.Cube{cubeProduct(a, c), cubeProduct(a, d), b}
	q, r := divide(f, []truth.Cube{c, d})
	if len(q) != 1 || q[0] != a {
		t.Errorf("quotient = %v", q)
	}
	if len(r) != 1 || r[0] != b {
		t.Errorf("remainder = %v", r)
	}
}

func TestDivisionNoQuotient(t *testing.T) {
	a := truth.Cube{}.WithLit(0, true)
	b := truth.Cube{}.WithLit(1, true)
	q, r := divide([]truth.Cube{a}, []truth.Cube{b})
	if q != nil || len(r) != 1 {
		t.Errorf("q=%v r=%v", q, r)
	}
}

func TestBuildAIGMatchesTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		tt := randomTT(rng, n)
		tr, compl := FactorTT(tt)
		a := aig.New(n)
		a.EnableStrash()
		leaves := make([]aig.Lit, n)
		for i := range leaves {
			leaves[i] = a.PI(i)
		}
		root := BuildAIG(a, tr, leaves).NotCond(compl)
		a.AddPO(root)
		// Check against the truth table by exhaustive simulation.
		for m := 0; m < 1<<n; m++ {
			in := make([]bool, n)
			for v := 0; v < n; v++ {
				in[v] = m>>uint(v)&1 != 0
			}
			if a.EvalOnce(in)[0] != tt.Bit(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuildAIGNodeBudget(t *testing.T) {
	// Structural hashing may only reduce the node count versus NumAnds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		tt := randomTT(rng, n)
		tr, _ := FactorTT(tt)
		a := aig.New(n)
		a.EnableStrash()
		leaves := make([]aig.Lit, n)
		for i := range leaves {
			leaves[i] = a.PI(i)
		}
		BuildAIG(a, tr, leaves)
		return a.NumAnds() <= tr.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFactorXorQuality(t *testing.T) {
	// XOR has no algebraic structure; factoring must still terminate and be
	// correct, with the flat SOP cost (2 cubes, 4 literals -> 3 ANDs).
	n := 2
	tt := truth.New(n).Xor(truth.Var(n, 0), truth.Var(n, 1))
	tr, compl := FactorTT(tt)
	want := tt
	if compl {
		want = truth.New(n).Not(tt)
	}
	if !tr.Eval(n).Equal(want) {
		t.Fatalf("xor factored wrong")
	}
	if tr.NumAnds() > 3 {
		t.Errorf("xor NumAnds = %d, want <= 3", tr.NumAnds())
	}
}
