package queue

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aigre/internal/flow"
)

func mustSubmit(t *testing.T, q *Queue, id string, priority int) {
	t.Helper()
	err := q.Submit(Spec{ID: id, Script: "b; rw", Priority: priority, AIGER: []byte("aag 0 0 0 0 0\n")})
	if err != nil {
		t.Fatalf("submit %s: %v", id, err)
	}
}

func mustLease(t *testing.T, q *Queue) Spec {
	t.Helper()
	spec, err := q.Lease()
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if spec == nil {
		t.Fatal("lease: queue empty")
	}
	return *spec
}

// TestSubmitLeaseResolveRoundTrip walks one job through its life and checks
// the queue state at each step.
func TestSubmitLeaseResolveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "j1", 0)
	if j, ok := q.Get("j1"); !ok || j.State != Pending {
		t.Fatalf("after submit: %+v ok=%v", j, ok)
	}
	spec := mustLease(t, q)
	if spec.ID != "j1" {
		t.Fatalf("leased %q, want j1", spec.ID)
	}
	if j, _ := q.Get("j1"); j.State != Leased || j.Leases != 1 {
		t.Fatalf("after lease: %+v", j)
	}
	sess := &Session{Attempts: 1, NodesBefore: 10, NodesAfter: 8,
		Incidents: []flow.Incident{{Command: "rw", Stage: "launch", Class: flow.ClassTransient}}}
	if err := q.Resolve("j1", Done, "", sess); err != nil {
		t.Fatal(err)
	}
	j, _ := q.Get("j1")
	if j.State != Done || j.Session == nil || j.Session.NodesAfter != 8 || len(j.Session.Incidents) != 1 {
		t.Fatalf("after resolve: %+v session=%+v", j, j.Session)
	}
	if spec, err := q.Lease(); err != nil || spec != nil {
		t.Fatalf("lease of empty queue: %v, %v", spec, err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityAndFIFOOrder checks lease order: priority descending,
// submission order within a priority.
func TestPriorityAndFIFOOrder(t *testing.T) {
	q, err := Open(filepath.Join(t.TempDir(), "wal.jsonl"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "low1", 0)
	mustSubmit(t, q, "high", 5)
	mustSubmit(t, q, "low2", 0)
	want := []string{"high", "low1", "low2"}
	for _, w := range want {
		if got := mustLease(t, q); got.ID != w {
			t.Fatalf("lease order: got %s, want %s", got.ID, w)
		}
	}
}

// TestReplayReconstructsQueue kills the queue (by just dropping it) at every
// interesting point and checks the replayed state: pending jobs stay
// pending, in-flight leases are checkpointed back to pending exactly once,
// and terminal jobs never come back.
func TestReplayReconstructsQueue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "done", 0)
	mustSubmit(t, q, "inflight", 0)
	mustSubmit(t, q, "waiting", 0)
	mustSubmit(t, q, "poison", 0)
	if got := mustLease(t, q); got.ID != "done" {
		t.Fatalf("leased %s", got.ID)
	}
	if err := q.Resolve("done", Done, "", &Session{Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if got := mustLease(t, q); got.ID != "inflight" {
		t.Fatalf("leased %s", got.ID)
	}
	// "poison" was quarantined in a previous life.
	q2spec := mustLease(t, q) // waiting
	if q2spec.ID != "waiting" {
		t.Fatalf("leased %s", q2spec.ID)
	}
	if err := q.Requeue("waiting", "drain checkpoint"); err != nil {
		t.Fatal(err)
	}
	// A requeued job goes behind jobs already waiting at its priority:
	// poison (still in line) leases before the requeued waiting.
	if got := mustLease(t, q); got.ID != "poison" {
		t.Fatalf("leased %s, want poison", got.ID)
	}
	if got := mustLease(t, q); got.ID != "waiting" {
		t.Fatalf("re-leased %s, want waiting", got.ID)
	}
	if err := q.Resolve("waiting", Done, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve("poison", Quarantined, "stuck", &Session{Attempts: 3, Preemptions: 3}); err != nil {
		t.Fatal(err)
	}
	q.Close() // "crash" with inflight still leased

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1 (stats %+v)", st.Recovered, st)
	}
	if st.Pending != 1 || st.Leased != 0 || st.Done != 2 || st.Quarantined != 1 {
		t.Fatalf("stats after replay: %+v", st)
	}
	if j, _ := r.Get("inflight"); j.State != Pending || j.Leases != 1 {
		t.Fatalf("inflight after replay: %+v", j)
	}
	if j, _ := r.Get("done"); j.State != Done || j.Leases != 1 || j.Session == nil {
		t.Fatalf("done after replay: %+v", j)
	}
	if j, _ := r.Get("poison"); j.State != Quarantined || j.Session == nil || j.Session.Preemptions != 3 {
		t.Fatalf("poison after replay: %+v session=%+v", j, j.Session)
	}
	// The only leasable job is the recovered one — terminal jobs never
	// re-run.
	if got := mustLease(t, r); got.ID != "inflight" {
		t.Fatalf("post-replay lease: %s, want inflight", got.ID)
	}
	if spec, err := r.Lease(); err != nil || spec != nil {
		t.Fatalf("second post-replay lease: %v, %v", spec, err)
	}
}

// TestSaturation checks MaxDepth admission control: the bound counts active
// (pending + leased) jobs and frees up as jobs resolve.
func TestSaturation(t *testing.T) {
	q, err := Open(filepath.Join(t.TempDir(), "wal.jsonl"), Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "a", 0)
	mustSubmit(t, q, "b", 0)
	if err := q.Submit(Spec{ID: "c", Script: "b", AIGER: []byte("x")}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit over depth: %v, want ErrSaturated", err)
	}
	mustLease(t, q)
	// Leased still counts against depth.
	if err := q.Submit(Spec{ID: "c", Script: "b", AIGER: []byte("x")}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit with leased at depth: %v, want ErrSaturated", err)
	}
	if err := q.Resolve("a", Done, "", nil); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "c", 0)
}

// TestTornWALRecordsTolerated corrupts the WAL mid-file and at the tail and
// checks recovery still works, with the damage counted.
func TestTornWALRecordsTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "a", 0)
	mustSubmit(t, q, "b", 0)
	mustLease(t, q)
	q.Resolve("a", Done, "", nil)
	q.Close()

	// Corrupt: insert a torn line in the middle, truncate the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	if len(lines) < 4 {
		t.Fatalf("want >= 4 WAL lines, got %d", len(lines))
	}
	var rebuilt []byte
	rebuilt = append(rebuilt, lines[0]...)
	rebuilt = append(rebuilt, '\n')
	rebuilt = append(rebuilt, []byte(`{"seq":99,"id":"torn","sta`+"\n")...) // torn mid-file
	for _, l := range lines[1:] {
		rebuilt = append(rebuilt, l...)
		rebuilt = append(rebuilt, '\n')
	}
	rebuilt = append(rebuilt, []byte(`{"seq":100,"id":"b","state":"lea`)...) // torn tail
	if err := os.WriteFile(path, rebuilt, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Torn != 2 {
		t.Fatalf("torn = %d, want 2 (stats %+v)", st.Torn, st)
	}
	if st.Done != 1 || st.Pending != 1 {
		t.Fatalf("stats after torn replay: %+v", st)
	}
}

// TestResolveGuards checks the state machine rejects transitions that would
// mean a runner finished a job it never held.
func TestResolveGuards(t *testing.T) {
	q, err := Open(filepath.Join(t.TempDir(), "wal.jsonl"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "a", 0)
	if err := q.Resolve("a", Done, "", nil); err == nil {
		t.Fatal("resolve of pending job did not error")
	}
	if err := q.Resolve("nope", Done, "", nil); err == nil {
		t.Fatal("resolve of unknown job did not error")
	}
	if err := q.Requeue("a", ""); err == nil {
		t.Fatal("requeue of pending job did not error")
	}
	mustLease(t, q)
	if err := q.Resolve("a", Leased, "", nil); err == nil {
		t.Fatal("resolve to non-terminal state did not error")
	}
	if err := q.Resolve("a", Done, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Resolve("a", Done, "", nil); err == nil {
		t.Fatal("double resolve did not error")
	}
	if err := q.Submit(Spec{ID: "a", Script: "b", AIGER: []byte("x")}); err == nil {
		t.Fatal("duplicate submit did not error")
	}
}

// TestConcurrentSubmitLeaseResolve hammers the queue from many goroutines
// under -race and checks every job ends in exactly one terminal state.
func TestConcurrentSubmitLeaseResolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const submitters, per = 4, 25
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("s%d-%d", s, i)
				if err := q.Submit(Spec{ID: id, Script: "b", AIGER: []byte("x"), Priority: i % 3}); err != nil {
					t.Errorf("submit %s: %v", id, err)
				}
			}
		}(s)
	}
	var rg sync.WaitGroup
	for w := 0; w < 4; w++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			idle := 0
			for idle < 50 {
				spec, err := q.Lease()
				if err != nil {
					t.Errorf("lease: %v", err)
					return
				}
				if spec == nil {
					idle++
					time.Sleep(time.Millisecond)
					continue
				}
				idle = 0
				if err := q.Resolve(spec.ID, Done, "", &Session{Attempts: 1}); err != nil {
					t.Errorf("resolve %s: %v", spec.ID, err)
				}
			}
		}()
	}
	wg.Wait()
	rg.Wait()
	st := q.Stats()
	if st.Done != submitters*per || st.Active() != 0 {
		t.Fatalf("stats: %+v, want %d done", st, submitters*per)
	}
	q.Close()

	// Replay and cross-check: one terminal record per job, one lease each.
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rst := r.Stats(); rst.Done != submitters*per || rst.Recovered != 0 {
		t.Fatalf("replayed stats: %+v", rst)
	}
	for _, j := range r.Jobs() {
		if j.Leases != 1 {
			t.Fatalf("job %s: %d leases, want 1", j.Spec.ID, j.Leases)
		}
	}
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}
