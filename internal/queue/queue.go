// Package queue is the aigred daemon's durable write-ahead job queue.
//
// Every state change is appended to a JSONL write-ahead log (via the
// internal/journal generic record layer, in fsync-on-append mode) *before*
// it takes effect in memory: a submission is durable before the client is
// acknowledged, a lease is durable before the job starts executing, and an
// outcome is durable before the job is reported terminal. On restart, Open
// replays the log and reconstructs the queue:
//
//   - jobs whose last record is pending are still pending — they run;
//   - jobs whose last record is leased were in flight when the process died —
//     they are checkpointed back to pending (with an explicit recovery
//     record) and re-run exactly once more;
//   - jobs with a terminal record (done, failed, quarantined, cancelled) are
//     never executed again, and their Session record remains queryable.
//
// Torn log records (a crash mid-append, or a partially persisted page) are
// skipped with a count, never failing recovery.
package queue

import (
	"container/heap"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/journal"
	"aigre/internal/rcache"
)

// State is a job's queue state. Submissions start Pending, move to Leased
// when handed to a runner, and end in exactly one terminal state.
type State string

const (
	// Pending: submitted (or checkpointed back), waiting for a runner.
	Pending State = "pending"
	// Leased: handed to a runner; in flight.
	Leased State = "leased"
	// Done: completed successfully (terminal).
	Done State = "done"
	// Failed: completed with a permanent error (terminal).
	Failed State = "failed"
	// Quarantined: withdrawn as poison by the supervisor (terminal).
	Quarantined State = "quarantined"
	// Cancelled: withdrawn before completion by an operator (terminal).
	Cancelled State = "cancelled"
)

// Terminal reports whether s is a final state: a job in a terminal state is
// never leased (hence never executed) again.
func (s State) Terminal() bool {
	switch s {
	case Done, Failed, Quarantined, Cancelled:
		return true
	}
	return false
}

// Spec describes one submitted job. It is stored whole in the submission's
// WAL record, so a replayed queue can re-run the job without any other state.
type Spec struct {
	// ID is the queue-unique job id (the daemon mints these; see NewID).
	ID string `json:"id"`
	// Name labels the job in reports (default: the id).
	Name string `json:"name,omitempty"`
	// Script is the optimization script, e.g. "b; rw; rf; b" or a preset.
	Script string `json:"script"`
	// Priority orders leasing: higher first, ties in submission order.
	Priority int `json:"priority,omitempty"`
	// Parallel selects the GPU-model engines.
	Parallel bool `json:"parallel,omitempty"`
	// Workers caps the job's device lease (0 = whole pool).
	Workers int `json:"workers,omitempty"`
	// Client identifies the submitter (admission quotas key on this).
	Client string `json:"client,omitempty"`
	// Inject is a chaos-testing facility: deterministic fault plans in the
	// CLI's "kernel-pattern:N:panic|corrupt|stall" syntax, injected into the
	// job's device leases.
	Inject []string `json:"inject,omitempty"`
	// AIGER is the input network payload (binary or ASCII AIGER bytes;
	// base64-encoded in the JSON record).
	AIGER []byte `json:"aiger"`
	// Submitted is the admission time.
	Submitted time.Time `json:"submitted"`
}

// Session is the queryable after-the-fact record of a job's execution,
// persisted in the terminal WAL record so it survives daemon restarts.
type Session struct {
	Attempts    int `json:"attempts,omitempty"`
	Preemptions int `json:"preemptions,omitempty"`

	NodesBefore  int `json:"nodes_before,omitempty"`
	LevelsBefore int `json:"levels_before,omitempty"`
	NodesAfter   int `json:"nodes_after,omitempty"`
	LevelsAfter  int `json:"levels_after,omitempty"`

	QueuedNS  time.Duration `json:"queued_ns,omitempty"`
	WallNS    time.Duration `json:"wall_ns,omitempty"`
	ModeledNS time.Duration `json:"modeled_ns,omitempty"`

	// Incidents are the contained failures of the run, with their
	// supervision Class and Attempt stamps.
	Incidents []flow.Incident `json:"incidents,omitempty"`
	// Profile is the per-kernel device profile of a parallel run.
	Profile []gpu.KernelProfile `json:"profile,omitempty"`
	// Cache is the resynthesis-cache traffic observed while the job ran.
	Cache rcache.Stats `json:"cache"`
}

// Record is one WAL line: job ID moved to State. A Pending record with a
// Spec is a submission; a Pending record without one is a checkpoint
// (drain requeue or crash recovery). Terminal records may carry the Session.
type Record struct {
	Seq     int64     `json:"seq"`
	Time    time.Time `json:"time"`
	ID      string    `json:"id"`
	State   State     `json:"state"`
	Detail  string    `json:"detail,omitempty"`
	Spec    *Spec     `json:"spec,omitempty"`
	Session *Session  `json:"session,omitempty"`
}

// Job is the in-memory view of a queued job.
type Job struct {
	Spec  Spec
	State State
	// Detail explains the latest transition (error text, recovery note).
	Detail string
	// Leases counts how many times the job was handed to a runner, across
	// every incarnation of the queue. A job completed before a crash keeps
	// Leases == 1 after recovery — the exactly-once evidence.
	Leases  int
	Session *Session
	Updated time.Time
}

// Stats counts jobs by state plus recovery diagnostics.
type Stats struct {
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"`
	Cancelled   int `json:"cancelled"`
	// Recovered counts leases abandoned by a crash that Open checkpointed
	// back to pending; Torn counts skipped torn WAL records.
	Recovered int `json:"recovered,omitempty"`
	Torn      int `json:"torn,omitempty"`
}

// Active is the queue depth: jobs not yet in a terminal state.
func (s Stats) Active() int { return s.Pending + s.Leased }

// ErrSaturated is returned by Submit when the queue is at MaxDepth.
var ErrSaturated = errors.New("queue: saturated")

// NewID mints a random job id ("j-" + 12 hex chars). Collisions are
// rejected by Submit, so a (vanishingly unlikely) duplicate is an error,
// not a silent overwrite.
func NewID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived id rather than panicking a daemon.
		return fmt.Sprintf("j-%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Options configures Open.
type Options struct {
	// MaxDepth bounds the number of active (pending + leased) jobs; Submit
	// beyond it returns ErrSaturated (0 = unbounded).
	MaxDepth int
}

// Queue is a durable, concurrency-safe job queue. All methods are safe for
// concurrent use.
type Queue struct {
	mu       sync.Mutex
	wal      *journal.Journal
	jobs     map[string]*Job
	order    []string // submission order, for listing
	pending  pendingHeap
	seq      int64
	maxDepth int
	stats    Stats
}

// Open replays the WAL at path (creating it when missing) and returns the
// reconstructed queue. Leases abandoned by a crash are checkpointed back to
// pending with an explicit recovery record, so the in-flight jobs of a dead
// daemon re-run exactly once more; terminal jobs are never re-run.
func Open(path string, opts Options) (*Queue, error) {
	q := &Queue{
		jobs:     make(map[string]*Job),
		maxDepth: opts.MaxDepth,
	}
	if f, err := os.Open(path); err == nil {
		recs, torn, rerr := journal.ReadRecords[Record](f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("queue: replay %s: %w", path, rerr)
		}
		q.stats.Torn = torn
		for _, rec := range recs {
			q.apply(rec)
			if rec.Seq > q.seq {
				q.seq = rec.Seq
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("queue: %w", err)
	}
	wal, err := journal.CreateSync(path)
	if err != nil {
		return nil, err
	}
	q.wal = wal
	// Crash recovery: a job still marked leased was in flight when the
	// previous process died. Checkpoint it back to pending — durably, so a
	// second crash before it re-runs changes nothing.
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != Leased {
			continue
		}
		if err := q.appendLocked(Record{ID: id, State: Pending,
			Detail: "recovered: lease abandoned by crash"}); err != nil {
			q.wal.Close()
			return nil, err
		}
		q.stats.Recovered++
	}
	return q, nil
}

// apply folds one replayed record into the in-memory state. Replay is
// deliberately forgiving: records that do not fit the state machine (a lease
// of a terminal job, an unknown id) are ignored — the WAL is evidence, not
// an oracle, and a terminal state always wins.
func (q *Queue) apply(rec Record) {
	j := q.jobs[rec.ID]
	switch {
	case rec.State == Pending && rec.Spec != nil:
		if j != nil {
			return // duplicate submission record
		}
		j = &Job{Spec: *rec.Spec, State: Pending, Updated: rec.Time}
		q.jobs[rec.ID] = j
		q.order = append(q.order, rec.ID)
		q.count(Pending, +1)
		heap.Push(&q.pending, pendingRef{id: rec.ID, priority: j.Spec.Priority, seq: rec.Seq})
	case j == nil || j.State.Terminal():
		// Unknown job or post-terminal record: ignore.
	case rec.State == Leased:
		q.count(j.State, -1)
		q.count(Leased, +1)
		j.State = Leased
		j.Leases++
		j.Updated = rec.Time
		q.pending.remove(rec.ID)
	case rec.State == Pending: // checkpoint / recovery
		q.count(j.State, -1)
		q.count(Pending, +1)
		j.State = Pending
		j.Detail = rec.Detail
		j.Updated = rec.Time
		heap.Push(&q.pending, pendingRef{id: rec.ID, priority: j.Spec.Priority, seq: rec.Seq})
	case rec.State.Terminal():
		q.count(j.State, -1)
		q.count(rec.State, +1)
		j.State = rec.State
		j.Detail = rec.Detail
		j.Session = rec.Session
		j.Updated = rec.Time
		q.pending.remove(rec.ID)
	}
}

func (q *Queue) count(s State, d int) {
	switch s {
	case Pending:
		q.stats.Pending += d
	case Leased:
		q.stats.Leased += d
	case Done:
		q.stats.Done += d
	case Failed:
		q.stats.Failed += d
	case Quarantined:
		q.stats.Quarantined += d
	case Cancelled:
		q.stats.Cancelled += d
	}
}

// appendLocked durably appends a record (stamping seq and time) and folds it
// into memory. The WAL write happens first: if it fails, the state does not
// change and the caller reports the error — write-ahead, never behind.
func (q *Queue) appendLocked(rec Record) error {
	q.seq++
	rec.Seq = q.seq
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if err := q.wal.AppendRecord(rec); err != nil {
		q.seq--
		return err
	}
	q.apply(rec)
	return nil
}

// Submit durably admits a job: the submission record is fsynced before
// Submit returns, so an acknowledgment built on it cannot be lost. Returns
// ErrSaturated at MaxDepth and an error on a duplicate or empty id.
func (q *Queue) Submit(spec Spec) error {
	if spec.ID == "" {
		return errors.New("queue: empty job id")
	}
	if spec.Submitted.IsZero() {
		spec.Submitted = time.Now()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, dup := q.jobs[spec.ID]; dup {
		return fmt.Errorf("queue: duplicate job id %q", spec.ID)
	}
	if q.maxDepth > 0 && q.stats.Active() >= q.maxDepth {
		return fmt.Errorf("%w: %d active jobs (max %d)", ErrSaturated, q.stats.Active(), q.maxDepth)
	}
	return q.appendLocked(Record{ID: spec.ID, State: Pending, Spec: &spec})
}

// Lease durably hands the highest-priority pending job to a runner. The
// lease record hits disk before the spec is returned, so a crash during
// execution is recoverable: replay sees the lease and checkpoints the job
// back to pending. Returns (nil, nil) when nothing is pending; a non-nil
// error means the WAL append failed and nothing was leased.
func (q *Queue) Lease() (*Spec, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.pending.Len() > 0 {
		ref := q.pending[0]
		j := q.jobs[ref.id]
		if j == nil || j.State != Pending {
			heap.Pop(&q.pending) // stale ref (requeued under a newer one)
			continue
		}
		if err := q.appendLocked(Record{ID: ref.id, State: Leased}); err != nil {
			return nil, err
		}
		spec := j.Spec
		return &spec, nil
	}
	return nil, nil
}

// Resolve durably records a leased job's terminal outcome together with its
// queryable session record. Resolving a job that is not leased is an error —
// it would mean a runner finished a job it never held.
func (q *Queue) Resolve(id string, state State, detail string, sess *Session) error {
	if !state.Terminal() {
		return fmt.Errorf("queue: Resolve to non-terminal state %q", state)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return fmt.Errorf("queue: resolve of unknown job %q", id)
	}
	if j.State != Leased {
		return fmt.Errorf("queue: resolve of job %q in state %q (want leased)", id, j.State)
	}
	return q.appendLocked(Record{ID: id, State: state, Detail: detail, Session: sess})
}

// Requeue durably checkpoints a leased job back to pending — the drain path:
// an in-flight job that could not finish before the drain deadline goes back
// so the next daemon incarnation runs it.
func (q *Queue) Requeue(id, detail string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return fmt.Errorf("queue: requeue of unknown job %q", id)
	}
	if j.State != Leased {
		return fmt.Errorf("queue: requeue of job %q in state %q (want leased)", id, j.State)
	}
	return q.appendLocked(Record{ID: id, State: Pending, Detail: detail})
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Stats returns the per-state counts and recovery diagnostics.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Close closes the WAL. The queue must not be used afterwards.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.wal.Close()
}

// pendingRef orders the pending heap: highest priority first, then WAL
// sequence (submission / requeue order). A job requeued later keeps its
// place by priority but goes behind jobs already waiting at that priority.
type pendingRef struct {
	id       string
	priority int
	seq      int64
}

type pendingHeap []pendingRef

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(pendingRef)) }
func (h *pendingHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *pendingHeap) remove(id string) {
	for i := range *h {
		if (*h)[i].id == id {
			heap.Remove(h, i)
			return
		}
	}
}
