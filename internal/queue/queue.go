// Package queue is the aigred daemon's durable write-ahead job queue.
//
// Every state change is appended to a JSONL write-ahead log (via the
// internal/journal generic record layer, in fsync-on-append mode) *before*
// it takes effect in memory: a submission is durable before the client is
// acknowledged, a lease is durable before the job starts executing, and an
// outcome is durable before the job is reported terminal. On restart, Open
// replays the log and reconstructs the queue:
//
//   - jobs whose last record is pending are still pending — they run;
//   - jobs whose last record is leased were in flight when the process died —
//     they are checkpointed back to pending (with an explicit recovery
//     record) and re-run exactly once more;
//   - jobs with a terminal record (done, failed, quarantined, cancelled) are
//     never executed again, and their Session record remains queryable.
//
// Torn log records (a crash mid-append, or a partially persisted page) are
// skipped with a count, never failing recovery.
//
// # Weighted-fair leasing
//
// Lease order is multi-tenant fair, not globally priority-ordered: each
// client (Spec.Client) owns a pending queue ordered by priority then
// submission, and Lease picks between clients by stride scheduling — client
// c accumulates virtual time 1/weight(c) per lease, and the eligible client
// with the smallest virtual time leases next. A client with weight 3 leases
// three jobs for every one of a weight-1 client under saturation, and an
// idle client rejoining is aligned to the current virtual time rather than
// being allowed to bank credit and monopolize the runners. Per-client
// in-flight caps (Options.MaxInflight) make a client ineligible while it
// has that many jobs leased, regardless of weight. Priority therefore
// orders jobs *within* a client; it no longer lets one client starve the
// rest of the fleet.
//
// # Compaction
//
// The WAL would otherwise grow forever: every job contributes a submission
// record (with its full AIGER payload), a lease record per attempt, and a
// terminal record. Compact rewrites the log as one snapshot record per job
// — current state, lease count, session, and (for jobs that may still run)
// the payload; terminal jobs shed their payloads. The snapshot is written
// to a temp file, fsynced, and atomically renamed over the WAL, so a crash
// at any instant leaves either the complete old log or the complete new
// one — never a mix — and exactly-once lease accounting survives because
// snapshot records carry the accumulated lease count. Open compacts
// automatically when the replayed log carries redundant history;
// MaybeCompact applies a live size threshold once terminal records
// dominate.
package queue

import (
	"container/heap"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/journal"
	"aigre/internal/rcache"
)

// State is a job's queue state. Submissions start Pending, move to Leased
// when handed to a runner, and end in exactly one terminal state.
type State string

const (
	// Pending: submitted (or checkpointed back), waiting for a runner.
	Pending State = "pending"
	// Leased: handed to a runner; in flight.
	Leased State = "leased"
	// Done: completed successfully (terminal).
	Done State = "done"
	// Failed: completed with a permanent error (terminal).
	Failed State = "failed"
	// Quarantined: withdrawn as poison by the supervisor (terminal).
	Quarantined State = "quarantined"
	// Cancelled: withdrawn before completion by an operator (terminal).
	Cancelled State = "cancelled"
)

// Terminal reports whether s is a final state: a job in a terminal state is
// never leased (hence never executed) again.
func (s State) Terminal() bool {
	switch s {
	case Done, Failed, Quarantined, Cancelled:
		return true
	}
	return false
}

// Valid reports whether s is one of the six queue states. Handlers use it to
// reject unknown ?state= filters.
func (s State) Valid() bool {
	return s == Pending || s == Leased || s.Terminal()
}

// Spec describes one submitted job. It is stored whole in the submission's
// WAL record, so a replayed queue can re-run the job without any other state.
type Spec struct {
	// ID is the queue-unique job id (the daemon mints these; see NewID).
	ID string `json:"id"`
	// Name labels the job in reports (default: the id).
	Name string `json:"name,omitempty"`
	// Script is the optimization script, e.g. "b; rw; rf; b" or a preset.
	Script string `json:"script"`
	// Priority orders leasing within the submitting client: higher first,
	// ties in submission order. Leasing across clients is weighted-fair —
	// see the package comment.
	Priority int `json:"priority,omitempty"`
	// Parallel selects the GPU-model engines.
	Parallel bool `json:"parallel,omitempty"`
	// Workers caps the job's device lease (0 = whole pool).
	Workers int `json:"workers,omitempty"`
	// Client identifies the submitter: admission quotas, fair-share weights,
	// and in-flight caps all key on this.
	Client string `json:"client,omitempty"`
	// Inject is a chaos-testing facility: deterministic fault plans in the
	// CLI's "kernel-pattern:N:panic|corrupt|stall" syntax, injected into the
	// job's device leases.
	Inject []string `json:"inject,omitempty"`
	// AIGER is the input network payload (binary or ASCII AIGER bytes;
	// base64-encoded in the JSON record). Compaction drops it from terminal
	// jobs, which can never run again.
	AIGER []byte `json:"aiger,omitempty"`
	// Submitted is the admission time.
	Submitted time.Time `json:"submitted"`
}

// Session is the queryable after-the-fact record of a job's execution,
// persisted in the terminal WAL record so it survives daemon restarts.
type Session struct {
	Attempts    int `json:"attempts,omitempty"`
	Preemptions int `json:"preemptions,omitempty"`

	NodesBefore  int `json:"nodes_before,omitempty"`
	LevelsBefore int `json:"levels_before,omitempty"`
	NodesAfter   int `json:"nodes_after,omitempty"`
	LevelsAfter  int `json:"levels_after,omitempty"`

	QueuedNS  time.Duration `json:"queued_ns,omitempty"`
	WallNS    time.Duration `json:"wall_ns,omitempty"`
	ModeledNS time.Duration `json:"modeled_ns,omitempty"`

	// Result is the content address (SHA-256 digest) of the optimized AIGER
	// in the daemon's blob store, with its size; empty when the job produced
	// no output. The blob outlives the process alongside the WAL.
	Result      string `json:"result,omitempty"`
	ResultBytes int    `json:"result_bytes,omitempty"`

	// Incidents are the contained failures of the run, with their
	// supervision Class and Attempt stamps.
	Incidents []flow.Incident `json:"incidents,omitempty"`
	// Profile is the per-kernel device profile of a parallel run.
	Profile []gpu.KernelProfile `json:"profile,omitempty"`
	// Cache is the resynthesis-cache traffic observed while the job ran.
	Cache rcache.Stats `json:"cache"`
}

// Record is one WAL line: job ID moved to State. A record with a Spec is
// either a submission (Pending, Leases 0) or a compaction snapshot (any
// state, accumulated Leases); a Pending record without one is a checkpoint
// (drain requeue or crash recovery). Terminal records may carry the Session.
type Record struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	ID     string    `json:"id"`
	State  State     `json:"state"`
	Detail string    `json:"detail,omitempty"`
	// Leases carries the accumulated lease count on compaction snapshot
	// records, preserving exactly-once accounting across a compaction.
	Leases  int      `json:"leases,omitempty"`
	Spec    *Spec    `json:"spec,omitempty"`
	Session *Session `json:"session,omitempty"`
}

// Job is the in-memory view of a queued job.
type Job struct {
	Spec  Spec
	State State
	// Detail explains the latest transition (error text, recovery note).
	Detail string
	// Leases counts how many times the job was handed to a runner, across
	// every incarnation of the queue. A job completed before a crash keeps
	// Leases == 1 after recovery — the exactly-once evidence.
	Leases  int
	Session *Session
	Updated time.Time
}

// Stats counts jobs by state plus recovery diagnostics.
type Stats struct {
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"`
	Cancelled   int `json:"cancelled"`
	// Recovered counts leases abandoned by a crash that Open checkpointed
	// back to pending; Torn counts skipped torn WAL records.
	Recovered int `json:"recovered,omitempty"`
	Torn      int `json:"torn,omitempty"`
	// Compactions counts WAL snapshot-plus-truncate passes this incarnation
	// (including the one Open may run); WALBytes is the log's current size.
	Compactions int   `json:"compactions,omitempty"`
	WALBytes    int64 `json:"wal_bytes,omitempty"`
}

// Active is the queue depth: jobs not yet in a terminal state.
func (s Stats) Active() int { return s.Pending + s.Leased }

func (s Stats) terminal() int { return s.Done + s.Failed + s.Quarantined + s.Cancelled }

// ErrSaturated is returned by Submit when the queue is at MaxDepth.
var ErrSaturated = errors.New("queue: saturated")

// NewID mints a random job id ("j-" + 12 hex chars). Collisions are
// rejected by Submit, so a (vanishingly unlikely) duplicate is an error,
// not a silent overwrite.
func NewID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived id rather than panicking a daemon.
		return fmt.Sprintf("j-%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Options configures Open.
type Options struct {
	// MaxDepth bounds the number of active (pending + leased) jobs; Submit
	// beyond it returns ErrSaturated (0 = unbounded).
	MaxDepth int
	// Weights are the per-client fair-share weights (see the package
	// comment); DefaultWeight applies to clients not listed (0 = 1). A
	// weight-3 client leases three jobs for each job of a weight-1 client
	// while both have work pending.
	Weights       map[string]int
	DefaultWeight int
	// MaxInflight caps how many jobs a client may have leased at once;
	// DefaultMaxInflight applies to clients not listed (0 = unlimited).
	// A capped-out client is simply ineligible to lease, its jobs stay
	// durably pending, and other clients proceed.
	MaxInflight        map[string]int
	DefaultMaxInflight int
	// CompactBytes arms MaybeCompact: once the WAL exceeds this many bytes
	// and terminal jobs outnumber active ones, MaybeCompact snapshots and
	// truncates it (0 = live compaction off; Open-time compaction still
	// runs when the log carries redundant history).
	CompactBytes int64
	// Observer, when non-nil, is called — under the queue lock, in WAL
	// order, exactly once each — for every record that changes queue state:
	// replayed records during Open, then live appends. Compaction snapshots
	// are rewrites of already-observed state and are not re-observed. The
	// daemon's event bus hangs off this.
	Observer func(Record)
}

// Queue is a durable, concurrency-safe job queue. All methods are safe for
// concurrent use.
type Queue struct {
	mu       sync.Mutex
	wal      *journal.Journal
	path     string
	jobs     map[string]*Job
	order    []string // submission order, for listing
	clients  map[string]*clientQueue
	vtime    float64 // stride virtual time of the latest lease
	seq      int64
	maxDepth int
	opts     Options
	stats    Stats
}

// clientQueue is one tenant's scheduling state: its pending jobs (priority
// then submission order), its stride pass, and its in-flight count.
type clientQueue struct {
	name     string
	pending  pendingHeap
	pass     float64
	inflight int
}

// Open replays the WAL at path (creating it when missing) and returns the
// reconstructed queue. Leases abandoned by a crash are checkpointed back to
// pending with an explicit recovery record, so the in-flight jobs of a dead
// daemon re-run exactly once more; terminal jobs are never re-run. When the
// replayed log carries redundant history (any job with more than one record,
// or torn damage), Open finishes by compacting it.
func Open(path string, opts Options) (*Queue, error) {
	q := &Queue{
		path:     path,
		jobs:     make(map[string]*Job),
		clients:  make(map[string]*clientQueue),
		maxDepth: opts.MaxDepth,
		opts:     opts,
	}
	replayed := 0
	if f, err := os.Open(path); err == nil {
		recs, torn, rerr := journal.ReadRecords[Record](f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("queue: replay %s: %w", path, rerr)
		}
		q.stats.Torn = torn
		replayed = len(recs)
		for _, rec := range recs {
			q.apply(rec)
			if rec.Seq > q.seq {
				q.seq = rec.Seq
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("queue: %w", err)
	}
	wal, err := journal.CreateSync(path)
	if err != nil {
		return nil, err
	}
	q.wal = wal
	// Crash recovery: a job still marked leased was in flight when the
	// previous process died. Checkpoint it back to pending — durably, so a
	// second crash before it re-runs changes nothing.
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != Leased {
			continue
		}
		if err := q.appendLocked(Record{ID: id, State: Pending,
			Detail: "recovered: lease abandoned by crash"}); err != nil {
			q.wal.Close()
			return nil, err
		}
		q.stats.Recovered++
	}
	// Restart compaction: any redundant history (a job with several records,
	// torn damage, or terminal jobs still carrying payloads) is collapsed to
	// one snapshot record per job before the daemon starts serving.
	if replayed > len(q.jobs) || q.stats.Torn > 0 {
		if err := q.compactLocked(); err != nil {
			q.wal.Close()
			return nil, err
		}
	}
	return q, nil
}

// apply folds one replayed record into the in-memory state. Replay is
// deliberately forgiving: records that do not fit the state machine (a lease
// of a terminal job, an unknown id) are ignored — the WAL is evidence, not
// an oracle, and a terminal state always wins. Records that change state are
// passed to the observer, in order.
func (q *Queue) apply(rec Record) {
	j := q.jobs[rec.ID]
	switch {
	case rec.Spec != nil:
		// Submission (pending, no leases) or compaction snapshot (any state,
		// accumulated leases).
		if j != nil {
			return // duplicate submission record
		}
		j = &Job{Spec: *rec.Spec, State: rec.State, Detail: rec.Detail,
			Leases: rec.Leases, Session: rec.Session, Updated: rec.Time}
		q.jobs[rec.ID] = j
		q.order = append(q.order, rec.ID)
		q.count(rec.State, +1)
		switch rec.State {
		case Pending:
			q.pushPending(j, rec.Seq)
		case Leased:
			q.client(j.Spec.Client).inflight++
		}
	case j == nil || j.State.Terminal():
		// Unknown job or post-terminal record: ignore.
		return
	case rec.State == Leased:
		q.count(j.State, -1)
		q.count(Leased, +1)
		j.State = Leased
		j.Leases++
		j.Updated = rec.Time
		cq := q.client(j.Spec.Client)
		cq.pending.remove(rec.ID)
		cq.inflight++
	case rec.State == Pending: // checkpoint / recovery
		if j.State == Leased {
			q.client(j.Spec.Client).inflight--
		}
		q.count(j.State, -1)
		q.count(Pending, +1)
		j.State = Pending
		j.Detail = rec.Detail
		j.Updated = rec.Time
		q.pushPending(j, rec.Seq)
	case rec.State.Terminal():
		if j.State == Leased {
			q.client(j.Spec.Client).inflight--
		}
		q.count(j.State, -1)
		q.count(rec.State, +1)
		j.State = rec.State
		j.Detail = rec.Detail
		j.Session = rec.Session
		j.Updated = rec.Time
		q.client(j.Spec.Client).pending.remove(rec.ID)
	default:
		return
	}
	if q.opts.Observer != nil {
		q.opts.Observer(rec)
	}
}

// client returns (creating if needed) the scheduling state for name.
func (q *Queue) client(name string) *clientQueue {
	cq := q.clients[name]
	if cq == nil {
		cq = &clientQueue{name: name, pass: q.vtime}
		q.clients[name] = cq
	}
	return cq
}

// pushPending queues j on its client's pending heap. A client going from
// idle to active is aligned to the current virtual time so it cannot bank
// credit while idle and then monopolize the runners.
func (q *Queue) pushPending(j *Job, seq int64) {
	cq := q.client(j.Spec.Client)
	if cq.pending.Len() == 0 && cq.pass < q.vtime {
		cq.pass = q.vtime
	}
	heap.Push(&cq.pending, pendingRef{id: j.Spec.ID, priority: j.Spec.Priority, seq: seq})
}

// weightOf returns the fair-share weight of a client (>= 1).
func (q *Queue) weightOf(name string) int {
	if w, ok := q.opts.Weights[name]; ok && w > 0 {
		return w
	}
	if q.opts.DefaultWeight > 0 {
		return q.opts.DefaultWeight
	}
	return 1
}

// maxInflightOf returns the client's lease cap (0 = unlimited).
func (q *Queue) maxInflightOf(name string) int {
	if m, ok := q.opts.MaxInflight[name]; ok {
		return m
	}
	return q.opts.DefaultMaxInflight
}

func (q *Queue) count(s State, d int) {
	switch s {
	case Pending:
		q.stats.Pending += d
	case Leased:
		q.stats.Leased += d
	case Done:
		q.stats.Done += d
	case Failed:
		q.stats.Failed += d
	case Quarantined:
		q.stats.Quarantined += d
	case Cancelled:
		q.stats.Cancelled += d
	}
}

// appendLocked durably appends a record (stamping seq and time) and folds it
// into memory. The WAL write happens first: if it fails, the state does not
// change and the caller reports the error — write-ahead, never behind.
func (q *Queue) appendLocked(rec Record) error {
	q.seq++
	rec.Seq = q.seq
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if err := q.wal.AppendRecord(rec); err != nil {
		q.seq--
		return err
	}
	q.apply(rec)
	return nil
}

// Submit durably admits a job: the submission record is fsynced before
// Submit returns, so an acknowledgment built on it cannot be lost. Returns
// ErrSaturated at MaxDepth and an error on a duplicate or empty id.
func (q *Queue) Submit(spec Spec) error {
	if spec.ID == "" {
		return errors.New("queue: empty job id")
	}
	if spec.Submitted.IsZero() {
		spec.Submitted = time.Now()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, dup := q.jobs[spec.ID]; dup {
		return fmt.Errorf("queue: duplicate job id %q", spec.ID)
	}
	if q.maxDepth > 0 && q.stats.Active() >= q.maxDepth {
		return fmt.Errorf("%w: %d active jobs (max %d)", ErrSaturated, q.stats.Active(), q.maxDepth)
	}
	return q.appendLocked(Record{ID: spec.ID, State: Pending, Spec: &spec})
}

// Lease durably hands the next pending job to a runner, chosen weighted-fair
// across clients (stride scheduling; see the package comment) and by
// priority then submission order within the chosen client. The lease record
// hits disk before the spec is returned, so a crash during execution is
// recoverable: replay sees the lease and checkpoints the job back to
// pending. Returns (nil, nil) when no client is eligible — nothing pending,
// or every client with pending work is at its in-flight cap; a non-nil
// error means the WAL append failed and nothing was leased.
func (q *Queue) Lease() (*Spec, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		cq := q.pickClientLocked()
		if cq == nil {
			return nil, nil
		}
		for cq.pending.Len() > 0 {
			ref := cq.pending[0]
			j := q.jobs[ref.id]
			if j == nil || j.State != Pending {
				heap.Pop(&cq.pending) // stale ref (requeued under a newer one)
				continue
			}
			if err := q.appendLocked(Record{ID: ref.id, State: Leased}); err != nil {
				return nil, err
			}
			q.vtime = cq.pass
			cq.pass += 1 / float64(q.weightOf(cq.name))
			spec := j.Spec
			return &spec, nil
		}
		// The picked client's heap held only stale refs; re-pick.
	}
}

// pickClientLocked returns the eligible client with the smallest stride
// pass: it has pending refs and is under its in-flight cap. Ties break by
// name so the choice is deterministic across map iteration orders.
func (q *Queue) pickClientLocked() *clientQueue {
	var best *clientQueue
	for _, cq := range q.clients {
		if cq.pending.Len() == 0 {
			continue
		}
		if m := q.maxInflightOf(cq.name); m > 0 && cq.inflight >= m {
			continue
		}
		if best == nil || cq.pass < best.pass || (cq.pass == best.pass && cq.name < best.name) {
			best = cq
		}
	}
	return best
}

// Resolve durably records a leased job's terminal outcome together with its
// queryable session record. Resolving a job that is not leased is an error —
// it would mean a runner finished a job it never held.
func (q *Queue) Resolve(id string, state State, detail string, sess *Session) error {
	if !state.Terminal() {
		return fmt.Errorf("queue: Resolve to non-terminal state %q", state)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return fmt.Errorf("queue: resolve of unknown job %q", id)
	}
	if j.State != Leased {
		return fmt.Errorf("queue: resolve of job %q in state %q (want leased)", id, j.State)
	}
	return q.appendLocked(Record{ID: id, State: state, Detail: detail, Session: sess})
}

// Requeue durably checkpoints a leased job back to pending — the drain path:
// an in-flight job that could not finish before the drain deadline goes back
// so the next daemon incarnation runs it.
func (q *Queue) Requeue(id, detail string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return fmt.Errorf("queue: requeue of unknown job %q", id)
	}
	if j.State != Leased {
		return fmt.Errorf("queue: requeue of job %q in state %q (want leased)", id, j.State)
	}
	return q.appendLocked(Record{ID: id, State: Pending, Detail: detail})
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Filter selects jobs for List. The zero Filter matches everything.
type Filter struct {
	// State, when non-zero, matches only jobs in that state.
	State State
	// Client, when non-empty, matches only that client's jobs.
	Client string
	// Limit bounds the result to the most recently submitted n matching
	// jobs (0 = no bound). A long-lived daemon accumulates terminal
	// sessions without end; listings must not return them all by default.
	Limit int
}

// List returns snapshots of the matching jobs in submission order, bounded
// to the most recent Filter.Limit.
func (q *Queue) List(f Filter) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	matching := make([]string, 0, len(q.order))
	for _, id := range q.order {
		j := q.jobs[id]
		if f.State != "" && j.State != f.State {
			continue
		}
		if f.Client != "" && j.Spec.Client != f.Client {
			continue
		}
		matching = append(matching, id)
	}
	if f.Limit > 0 && len(matching) > f.Limit {
		matching = matching[len(matching)-f.Limit:]
	}
	out := make([]Job, 0, len(matching))
	for _, id := range matching {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Jobs returns snapshots of every job in submission order.
func (q *Queue) Jobs() []Job {
	return q.List(Filter{})
}

// Stats returns the per-state counts and recovery diagnostics.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.WALBytes = q.wal.Size()
	return st
}

// Compact snapshots the queue into a fresh WAL and atomically replaces the
// old one: one record per job carrying its current state, accumulated lease
// count, session, and — only for jobs that may still run — the AIGER
// payload. The snapshot is fully written and fsynced before the rename, so
// a crash mid-compaction leaves either the old log or the new one intact,
// and replaying either yields the same queue with the same lease counts.
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.compactLocked()
}

// MaybeCompact runs Compact when the WAL has outgrown Options.CompactBytes
// and terminal jobs outnumber active ones (so the snapshot actually
// shrinks it). It reports whether a compaction ran.
func (q *Queue) MaybeCompact() (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.opts.CompactBytes <= 0 || q.wal.Size() < q.opts.CompactBytes {
		return false, nil
	}
	if q.stats.terminal() <= q.stats.Active() {
		return false, nil
	}
	if err := q.compactLocked(); err != nil {
		return false, err
	}
	return true, nil
}

func (q *Queue) compactLocked() error {
	tmp := q.path + ".compact"
	os.Remove(tmp) // a stale temp from a crashed compaction is garbage
	snap, err := journal.Create(tmp)
	if err != nil {
		return fmt.Errorf("queue: compact: %w", err)
	}
	for _, id := range q.order {
		j := q.jobs[id]
		q.seq++
		rec := Record{Seq: q.seq, Time: j.Updated, ID: id, State: j.State,
			Detail: j.Detail, Leases: j.Leases, Session: j.Session}
		if rec.Time.IsZero() {
			rec.Time = j.Spec.Submitted
		}
		spec := j.Spec
		if j.State.Terminal() {
			spec.AIGER = nil // terminal jobs never re-run; shed the payload
		}
		rec.Spec = &spec
		if err := snap.AppendRecord(rec); err != nil {
			snap.Close()
			os.Remove(tmp)
			return fmt.Errorf("queue: compact: %w", err)
		}
	}
	if err := snap.Sync(); err != nil {
		snap.Close()
		os.Remove(tmp)
		return fmt.Errorf("queue: compact: %w", err)
	}
	if err := snap.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("queue: compact: %w", err)
	}
	// Atomic cutover: after the rename the WAL is wholly the snapshot;
	// before it, wholly the old log. fsync the directory so the rename
	// itself survives power loss.
	if err := q.wal.Close(); err != nil {
		return fmt.Errorf("queue: compact: %w", err)
	}
	if err := os.Rename(tmp, q.path); err != nil {
		// Old WAL is still in place; reopen it so the queue stays usable.
		if wal, rerr := journal.CreateSync(q.path); rerr == nil {
			q.wal = wal
		}
		return fmt.Errorf("queue: compact: %w", err)
	}
	syncDir(filepath.Dir(q.path))
	wal, err := journal.CreateSync(q.path)
	if err != nil {
		return fmt.Errorf("queue: compact: %w", err)
	}
	q.wal = wal
	q.stats.Compactions++
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's new name is durable.
// Best-effort: some filesystems refuse directory fsyncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close closes the WAL. The queue must not be used afterwards.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.wal.Close()
}

// pendingRef orders a client's pending heap: highest priority first, then
// WAL sequence (submission / requeue order). A job requeued later keeps its
// place by priority but goes behind jobs already waiting at that priority.
type pendingRef struct {
	id       string
	priority int
	seq      int64
}

type pendingHeap []pendingRef

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(pendingRef)) }
func (h *pendingHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *pendingHeap) remove(id string) {
	for i := range *h {
		if (*h)[i].id == id {
			heap.Remove(h, i)
			return
		}
	}
}
