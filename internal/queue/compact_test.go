package queue

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// bigPayload is a payload large enough that dropping it from terminal
// snapshot records visibly shrinks the WAL.
func bigPayload() []byte {
	return bytes.Repeat([]byte("aag 8 8 8 8 8\n"), 512)
}

// TestCompactShrinksAndReplaysEquivalently is the compaction contract: after
// Compact the WAL is smaller (terminal payloads and intermediate records are
// gone), and a replay of the compacted log reconstructs the same queue —
// same states, details, sessions, and exactly-once lease counts.
func TestCompactShrinksAndReplaysEquivalently(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"done", "failed", "inflight", "pending"} {
		err := q.Submit(Spec{ID: id, Script: "b; rw", Priority: 1, AIGER: bigPayload()})
		if err != nil {
			t.Fatal(err)
		}
	}
	a := mustLease(t, q)
	if err := q.Resolve(a.ID, Done, "ok", &Session{Attempts: 1, NodesAfter: 7}); err != nil {
		t.Fatal(err)
	}
	b := mustLease(t, q)
	if err := q.Resolve(b.ID, Failed, "boom", &Session{Attempts: 2}); err != nil {
		t.Fatal(err)
	}
	c := mustLease(t, q) // will be in flight across the compaction
	_ = c

	before := q.Stats().WALBytes
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	after := q.Stats()
	if after.WALBytes >= before {
		t.Fatalf("WAL grew across compaction: %d -> %d bytes", before, after.WALBytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", after.Compactions)
	}
	// The live queue is untouched by compaction.
	if after.Done != 1 || after.Failed != 1 || after.Leased != 1 || after.Pending != 1 {
		t.Fatalf("stats changed across compaction: %+v", after)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	st := q2.Stats()
	if st.Done != 1 || st.Failed != 1 || st.Pending != 2 || st.Recovered != 1 {
		t.Fatalf("replayed stats: %+v", st)
	}
	jd, _ := q2.Get("done")
	if jd.State != Done || jd.Leases != 1 || jd.Detail != "ok" ||
		jd.Session == nil || jd.Session.NodesAfter != 7 {
		t.Fatalf("done job after replay: %+v", jd)
	}
	if jd.Spec.AIGER != nil {
		t.Fatal("terminal job kept its payload across compaction")
	}
	jf, _ := q2.Get("failed")
	if jf.State != Failed || jf.Leases != 1 || jf.Detail != "boom" {
		t.Fatalf("failed job after replay: %+v", jf)
	}
	// Jobs that may still run keep their payloads and their lease history.
	jp, _ := q2.Get("pending")
	if jp.State != Pending || jp.Leases != 0 || !bytes.Equal(jp.Spec.AIGER, bigPayload()) {
		t.Fatalf("pending job after replay: state=%s leases=%d payload=%d bytes",
			jp.State, jp.Leases, len(jp.Spec.AIGER))
	}
	ji, _ := q2.Get(c.ID)
	if ji.State != Pending || ji.Leases != 1 {
		t.Fatalf("in-flight job after replay: state=%s leases=%d (want recovered pending, 1 lease)",
			ji.State, ji.Leases)
	}
}

// TestOpenCompactsRedundantHistory checks restart compaction: reopening a
// WAL that carries per-job history rewrites it as one record per job, and a
// further reopen of the compacted file yields the same queue.
func TestOpenCompactsRedundantHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "j1", 0)
	mustSubmit(t, q, "j2", 0)
	spec := mustLease(t, q)
	if err := q.Resolve(spec.ID, Done, "", &Session{Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path, Options{}) // 4 records, 2 jobs: compacts
	if err != nil {
		t.Fatal(err)
	}
	if st := q2.Stats(); st.Compactions != 1 {
		t.Fatalf("open did not compact: %+v", st)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	compacted, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("restart compaction did not shrink the WAL: %d -> %d", grown.Size(), compacted.Size())
	}

	q3, err := Open(path, Options{}) // 2 records, 2 jobs: already minimal
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	if st := q3.Stats(); st.Compactions != 0 {
		t.Fatalf("reopen of a compacted WAL compacted again: %+v", st)
	}
	if j, _ := q3.Get("j1"); j.State != Done || j.Leases != 1 {
		t.Fatalf("j1 after double replay: %+v", j)
	}
	if j, _ := q3.Get("j2"); j.State != Pending || j.Leases != 0 {
		t.Fatalf("j2 after double replay: %+v", j)
	}
}

// TestCrashDuringCompactionIgnoresStaleTemp simulates a crash after the
// snapshot temp file was partially written but before the atomic rename: the
// next Open must replay the intact old WAL and discard the temp.
func TestCrashDuringCompactionIgnoresStaleTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "j1", 0)
	spec := mustLease(t, q)
	if err := q.Resolve(spec.ID, Done, "", nil); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "j2", 0)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn snapshot, as a crash mid-compaction would leave behind.
	tmp := path + ".compact"
	if err := os.WriteFile(tmp, []byte(`{"seq":99,"id":"j1","state":"pe`), 0o644); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if st := q2.Stats(); st.Done != 1 || st.Pending != 1 {
		t.Fatalf("state after crashed compaction: %+v", st)
	}
	if j, _ := q2.Get("j1"); j.State != Done || j.Leases != 1 {
		t.Fatalf("j1: %+v", j)
	}
	// Open itself compacts (4 records > 2 jobs), which replaces the stale
	// temp; whatever remains at the temp path must not be the torn garbage.
	if data, err := os.ReadFile(tmp); err == nil && bytes.Contains(data, []byte(`"seq":99`)) {
		t.Fatal("stale compaction temp survived reopen")
	}
}

// TestMaybeCompactThreshold checks the live trigger: no compaction while the
// WAL is under the size threshold or while active jobs dominate; compaction
// once both conditions hold.
func TestMaybeCompactThreshold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{CompactBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "j1", 0)
	if ran, err := q.MaybeCompact(); err != nil || ran {
		t.Fatalf("compacted under threshold: ran=%v err=%v", ran, err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Open(path, Options{CompactBytes: 64}) // tiny threshold
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	mustSubmit(t, q2, "j2", 0)
	// Two active, none terminal: size threshold met but nothing to shed.
	if ran, err := q2.MaybeCompact(); err != nil || ran {
		t.Fatalf("compacted with zero terminal jobs: ran=%v err=%v", ran, err)
	}
	for i := 0; i < 2; i++ {
		spec := mustLease(t, q2)
		if err := q2.Resolve(spec.ID, Done, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	ran, err := q2.MaybeCompact()
	if err != nil || !ran {
		t.Fatalf("MaybeCompact with terminal majority over threshold: ran=%v err=%v", ran, err)
	}
	if st := q2.Stats(); st.Done != 2 || st.Compactions != 1 {
		t.Fatalf("after live compaction: %+v", st)
	}
}

// TestObserverSeesReplayAndLiveOnce checks the Observer contract: every
// state-changing record is observed exactly once, in WAL order — replayed
// records during Open, then live appends — and compaction snapshots are not
// re-observed.
func TestObserverSeesReplayAndLiveOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	var seen []Record
	obs := func(r Record) { seen = append(seen, r) }

	q, err := Open(path, Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "j1", 0)
	spec := mustLease(t, q)
	if err := q.Resolve(spec.ID, Done, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	states := func() []State {
		out := make([]State, len(seen))
		for i, r := range seen {
			out[i] = r.State
		}
		return out
	}
	if got := states(); len(got) != 3 || got[0] != Pending || got[1] != Leased || got[2] != Done {
		t.Fatalf("live observations: %v", got)
	}

	// Reopen: the observer sees the replayed history once (and Open's
	// compaction, which rewrites the same state, adds nothing).
	seen = nil
	q2, err := Open(path, Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if got := states(); len(got) != 3 || got[2] != Done {
		t.Fatalf("replayed observations: %v", got)
	}
	if seen[2].ID != "j1" || seen[2].Leases != 0 {
		// Raw history records carry per-transition deltas, not totals.
		t.Fatalf("replayed terminal record: %+v", seen[2])
	}
}
