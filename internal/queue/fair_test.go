package queue

import (
	"fmt"
	"path/filepath"
	"testing"
)

func submitFor(t *testing.T, q *Queue, client string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := q.Submit(Spec{ID: fmt.Sprintf("%s-%d", client, i), Script: "b; rw",
			Client: client, AIGER: []byte("aag 0 0 0 0 0\n")})
		if err != nil {
			t.Fatalf("submit %s-%d: %v", client, i, err)
		}
	}
}

// TestWeightedFairLeasing is the fairness property test: with clients
// weighted 1:3, both saturated, lease grants converge to a ~1:3 split —
// not a global FIFO, not starvation of the light client.
func TestWeightedFairLeasing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{Weights: map[string]int{"alice": 1, "bob": 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	submitFor(t, q, "alice", 20)
	submitFor(t, q, "bob", 20)

	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		spec := mustLease(t, q)
		counts[spec.Client]++
		// Resolve immediately so in-flight caps never interfere: this test
		// isolates the weighted share.
		if err := q.Resolve(spec.ID, Done, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if counts["alice"] < 4 || counts["alice"] > 6 {
		t.Errorf("alice (weight 1) leased %d of 20, want ~5", counts["alice"])
	}
	if counts["bob"] < 14 || counts["bob"] > 16 {
		t.Errorf("bob (weight 3) leased %d of 20, want ~15", counts["bob"])
	}
}

// TestInflightCapMakesClientIneligible checks the per-client concurrency
// cap: a capped client never holds more than its cap, however high its
// weight, and other clients lease past it while it is pinned.
func TestInflightCapMakesClientIneligible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{
		Weights:     map[string]int{"capped": 100},
		MaxInflight: map[string]int{"capped": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	submitFor(t, q, "capped", 5)
	submitFor(t, q, "other", 5)

	first := mustLease(t, q) // weight 100: capped goes first
	if first.Client != "capped" {
		t.Fatalf("first lease went to %q, want capped", first.Client)
	}
	// Capped is now at its cap: every further lease must be other's, and
	// once other is drained the queue reports empty despite capped having
	// pending jobs.
	for i := 0; i < 5; i++ {
		spec := mustLease(t, q)
		if spec.Client != "other" {
			t.Fatalf("lease %d went to %q while capped at max inflight", i, spec.Client)
		}
	}
	if spec, err := q.Lease(); err != nil || spec != nil {
		t.Fatalf("lease with all eligible work done: %v, %v (want nil, nil)", spec, err)
	}
	// Releasing the capped job makes the client eligible again.
	if err := q.Resolve(first.ID, Done, "", nil); err != nil {
		t.Fatal(err)
	}
	if spec := mustLease(t, q); spec.Client != "capped" {
		t.Fatalf("post-release lease went to %q, want capped", spec.Client)
	}
}

// TestIdleClientDoesNotBankCredit checks the stride alignment rule: a
// client that was idle while another worked joins at the current virtual
// time — it does not get a catch-up burst for the leases it never asked
// for, it just shares fairly from now on.
func TestIdleClientDoesNotBankCredit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	submitFor(t, q, "busy", 10)
	for i := 0; i < 6; i++ { // busy works alone for a while
		spec := mustLease(t, q)
		if err := q.Resolve(spec.ID, Done, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	submitFor(t, q, "late", 6)
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		spec := mustLease(t, q)
		counts[spec.Client]++
		if err := q.Resolve(spec.ID, Done, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Equal weights from here on: roughly half each, not a late-client
	// monopoly repaying its idle time.
	if counts["late"] < 3 || counts["late"] > 5 {
		t.Errorf("late client leased %d of 8 after joining, want ~4 (no banked credit)", counts["late"])
	}
}

// TestFairnessSurvivesReplay checks that per-client accounting rebuilds
// from the WAL: in-flight counts (for caps) and pending ownership survive a
// reopen, so a restarted daemon keeps honoring caps and shares.
func TestFairnessSurvivesReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	q, err := Open(path, Options{MaxInflight: map[string]int{"capped": 1}})
	if err != nil {
		t.Fatal(err)
	}
	submitFor(t, q, "capped", 3)
	spec := mustLease(t, q)
	if spec.Client != "capped" {
		t.Fatalf("lease went to %q", spec.Client)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the abandoned lease is checkpointed back to pending, so the
	// client is under its cap again and leases exactly one job at a time.
	q2, err := Open(path, Options{MaxInflight: map[string]int{"capped": 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if st := q2.Stats(); st.Recovered != 1 || st.Pending != 3 {
		t.Fatalf("after reopen: %+v", st)
	}
	if spec := mustLease(t, q2); spec.Client != "capped" {
		t.Fatalf("lease went to %q", spec.Client)
	}
	if spec, err := q2.Lease(); err != nil || spec != nil {
		t.Fatalf("cap not enforced after replay: %v, %v", spec, err)
	}
}
