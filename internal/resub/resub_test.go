package resub

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/cec"
	"aigre/internal/gpu"
)

func simEqual(a, b *aig.AIG) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i)*8737 + 11))
		ins[i] = []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

// dividendAIG builds a network with known resubstitution opportunities:
// two structurally different implementations of the same function, and a
// node expressible as the OR of two existing signals.
func dividendAIG() *aig.AIG {
	a := aig.New(4)
	a.EnableStrash()
	x, y, z, w := a.PI(0), a.PI(1), a.PI(2), a.PI(3)
	// f1 = (x&y)|(x&z) built flat; g = x&(y|z) built factored: same function.
	f1 := a.Or(a.NewAnd(x, y), a.NewAnd(x, z))
	g := a.NewAnd(x, a.Or(y, z))
	a.AddPO(a.NewAnd(f1, w)) // f1 has its own fanout cone
	a.AddPO(g.Not())
	// h = (x&y) | (y&z) rebuilt from scratch next to its ingredients.
	t1 := a.NewAnd(x, y)
	t2 := a.NewAnd(y, z)
	h := a.Or(a.Or(t1, t2), a.NewAnd(t1, z)) // redundant third term
	a.AddPO(h)
	return a
}

func TestSequentialFindsResubs(t *testing.T) {
	a := dividendAIG()
	out, st := Sequential(a, Options{})
	if st.ZeroResubs+st.OneResubs == 0 {
		t.Errorf("no substitutions found: %+v", st)
	}
	if out.NumAnds() >= a.NumAnds() {
		t.Errorf("no reduction: %d -> %d", a.NumAnds(), out.NumAnds())
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestParallelFindsResubs(t *testing.T) {
	a := dividendAIG()
	out, st := Parallel(gpu.New(1), a, Options{})
	if st.ZeroResubs+st.OneResubs == 0 {
		t.Errorf("no substitutions found: %+v", st)
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestQuickSequentialPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6+rng.Intn(4), 120+rng.Intn(200), 4).Rehash()
		out, _ := Sequential(a, Options{MaxCut: 4 + rng.Intn(5)})
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		return simEqual(a, out) && out.NumAnds() <= a.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickParallelPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6+rng.Intn(4), 120+rng.Intn(200), 4).Rehash()
		out, _ := Parallel(gpu.New(1+rng.Intn(4)), a, Options{})
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		return simEqual(a, out) && out.NumAnds() <= a.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestResubPassesCEC(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := aig.Random(rng, 12, 400, 6).Rehash()
	seqOut, _ := Sequential(a, Options{})
	parOut, _ := Parallel(gpu.New(2), a, Options{})
	for name, out := range map[string]*aig.AIG{"seq": seqOut, "par": parOut} {
		res, err := cec.Check(a, out, cec.Options{})
		if err != nil || !res.Equivalent {
			t.Fatalf("%s: %+v %v", name, res, err)
		}
	}
}

func TestDivisorClosureExcludesTFO(t *testing.T) {
	// The closure construction must never offer a divisor whose fanin cone
	// contains the target (cycle safety).
	rng := rand.New(rand.NewSource(4))
	a := aig.Random(rng, 6, 150, 4).Rehash()
	a.EnableStrash()
	a.EnableFanouts()
	fanouts := a.Fanouts
	counts := 0
	a.ForEachAnd(func(id int32) {
		if counts > 40 {
			return
		}
		counts++
		leaves := []int32{a.Fanin0(id).Var(), a.Fanin1(id).Var()}
		ds := collectDivisors(a, id, leaves, fanouts, map[int32]bool{id: true}, 32)
		for _, d := range ds.ids {
			if d == id {
				continue
			}
			if coneContainsAny(a, d, id) {
				t.Fatalf("divisor %d of node %d contains the target in its TFI", d, id)
			}
		}
	})
}

// coneContainsAny checks whether target is anywhere in the full TFI of root.
func coneContainsAny(a *aig.AIG, root, target int32) bool {
	seen := map[int32]bool{}
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		if seen[cur] || !a.IsAnd(cur) {
			continue
		}
		seen[cur] = true
		stack = append(stack, a.Fanin0(cur).Var(), a.Fanin1(cur).Var())
	}
	return false
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.normalized()
	if o.MaxCut != 8 || o.MaxDivisors != 64 {
		t.Errorf("defaults = %+v", o)
	}
}
