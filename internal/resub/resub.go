// Package resub implements resubstitution: re-expressing a node as a small
// function of existing divisor nodes, deleting its MFFC. The paper names
// parallel resubstitution as future work ("parallelizing more logic
// optimization algorithms such as resubstitution"); this package provides
// both the ABC-style sequential algorithm and a parallel version following
// the evaluation/replacement split the paper uses for rewriting: divisor
// search for all nodes runs as a device kernel, replacement is applied
// sequentially with on-the-fly revalidation.
//
// Supported substitutions: 0-resub (node equals an existing divisor up to
// complement) and 1-resub (node equals the AND/OR of two divisors up to
// complements). Divisors are gathered from the cut closure: starting from
// the cut leaves, any node both of whose fanins already lie in the closure
// is a divisor. This construction cannot reach the transitive fanout of the
// target (the target would have to be in a divisor's fanin cone, impossible
// in a DAG when the leaves lie in the target's fanin cone), so substitution
// can never create a cycle.
package resub

import (
	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/cut"
	"aigre/internal/gpu"
	"aigre/internal/truth"
)

// Options controls both engines.
type Options struct {
	// MaxCut bounds the cut size (default 8; ABC's rs uses K=8).
	MaxCut int
	// MaxDivisors bounds the divisor set per node (default 64; ABC uses 150).
	MaxDivisors int
}

func (o Options) normalized() Options {
	if o.MaxCut == 0 {
		o.MaxCut = 8
	}
	if o.MaxCut < 2 {
		o.MaxCut = 2
	}
	if o.MaxCut > truth.MaxVars {
		o.MaxCut = truth.MaxVars
	}
	if o.MaxDivisors == 0 {
		o.MaxDivisors = 64
	}
	return o
}

// Stats reports one resubstitution pass.
type Stats struct {
	NodesConsidered int
	ZeroResubs      int // node replaced by an existing divisor
	OneResubs       int // node replaced by a two-divisor AND/OR
	NodesBefore     int
	NodesAfter      int
}

// candidate describes one substitution found by evaluation.
type candidate struct {
	leaves []int32
	// kind 0: root := d0 (with complement); kind 1: root := d0 AND d1
	// (with operand/output complements encoding OR by De Morgan).
	kind   int
	d0, d1 aig.Lit // divisor literals (complements included)
	outNeg bool    // complement the result
	gain   int
}

// divisorSet is the cut closure with truth tables over the cut leaves.
type divisorSet struct {
	ids    []int32
	truths []truth.TT
}

// collectDivisors builds the closure of nodes computable from the leaves:
// every node whose two fanins are already in the closure. fanouts is a
// fanout index accessor (node -> fanout node ids). Nodes in exclude (the
// target's MFFC, which the substitution deletes) are not offered as
// divisors, but still belong to the closure so truths above them resolve —
// with the crucial exception of the target itself: admitting it would let
// the closure climb into the target's transitive fanout and offer divisors
// whose substitution creates a cycle. Blocking the target keeps the
// invariant "no closure member contains the target in its fanin cone" by
// induction from the leaves.
func collectDivisors(a *aig.AIG, target int32, leaves []int32, fanouts func(int32) []int32, exclude map[int32]bool, maxDiv int) divisorSet {
	n := len(leaves)
	inSet := make(map[int32]truth.TT, 2*maxDiv)
	var ds divisorSet
	queue := make([]int32, 0, 2*maxDiv)
	for i, l := range leaves {
		tt := truth.Var(n, i)
		inSet[l] = tt
		ds.ids = append(ds.ids, l)
		ds.truths = append(ds.truths, tt)
		queue = append(queue, l)
	}
	for len(queue) > 0 && len(ds.ids) < maxDiv {
		s := queue[0]
		queue = queue[1:]
		for _, f := range fanouts(s) {
			if f == target {
				continue // never climb through the target (see doc comment)
			}
			if _, ok := inSet[f]; ok || !a.IsAnd(f) || a.IsDeleted(f) {
				continue
			}
			f0, f1 := a.Fanin0(f), a.Fanin1(f)
			t0, ok0 := inSet[f0.Var()]
			t1, ok1 := inSet[f1.Var()]
			if !ok0 || !ok1 {
				continue
			}
			if f0.IsCompl() {
				t0 = truth.New(n).Not(t0)
			}
			if f1.IsCompl() {
				t1 = truth.New(n).Not(t1)
			}
			tt := truth.New(n).And(t0, t1)
			inSet[f] = tt
			queue = append(queue, f)
			if !exclude[f] {
				ds.ids = append(ds.ids, f)
				ds.truths = append(ds.truths, tt)
				if len(ds.ids) >= maxDiv {
					break
				}
			}
		}
	}
	return ds
}

// evaluateNode searches for the best substitution of node id. fanouts is a
// static fanout index of the current graph.
func evaluateNode(a *aig.AIG, rc *cut.Reconv, fanouts func(int32) []int32, id int32, opts Options) (candidate, bool, int64) {
	leaves := rc.Cut(id, opts.MaxCut)
	if len(leaves) < 2 {
		return candidate{}, false, 1
	}
	leaves = append([]int32(nil), leaves...) // rc reuses its buffer
	mffc := core.MffcMembers(a, id, leaves)
	ttN := cut.ConeTruth(a, aig.MakeLit(id, false), leaves)
	ds := collectDivisors(a, id, leaves, fanouts, mffc, opts.MaxDivisors)
	ops := int64(len(ds.ids)) * int64(len(ttN.Words)+2)

	notN := truth.New(ttN.NVars).Not(ttN)
	// 0-resub: any divisor equal to the target (gain = |MFFC|, always > 0).
	for i, d := range ds.ids {
		if d == id {
			continue
		}
		if ds.truths[i].Equal(ttN) {
			return candidate{leaves: leaves, kind: 0, d0: aig.MakeLit(d, false), gain: len(mffc)}, true, ops
		}
		if ds.truths[i].Equal(notN) {
			return candidate{leaves: leaves, kind: 0, d0: aig.MakeLit(d, true), gain: len(mffc)}, true, ops
		}
	}
	// 1-resub: target = ±(±di & ±dj); needs |MFFC| >= 2 for positive gain.
	if len(mffc) < 2 {
		return candidate{}, false, ops
	}
	n := ttN.NVars
	// Support-mask prefilter: complementation preserves support and
	// supp(x AND y) is contained in supp(x) OR supp(y), so a divisor pair
	// whose combined support does not cover the target's support can never
	// match in any phase. The masks are a host-side shortcut only — the
	// modeled device ops are charged exactly as without the filter.
	suppBuf := make([]int, 0, n)
	targetMask := supportMask(ttN, &suppBuf)
	divMask := make([]uint32, len(ds.truths))
	for i := range ds.truths {
		divMask[i] = supportMask(ds.truths[i], &suppBuf)
	}
	for i := 0; i < len(ds.ids); i++ {
		if ds.ids[i] == id {
			continue
		}
		for j := i + 1; j < len(ds.ids); j++ {
			if ds.ids[j] == id {
				continue
			}
			ops += 4
			if targetMask&^(divMask[i]|divMask[j]) != 0 {
				continue
			}
			for phase := 0; phase < 4; phase++ {
				ti := ds.truths[i]
				tj := ds.truths[j]
				if phase&1 != 0 {
					ti = truth.New(n).Not(ti)
				}
				and := andOf(n, ti, tj, phase&2 != 0)
				if and.Equal(ttN) || and.Equal(notN) {
					return candidate{
						leaves: leaves,
						kind:   1,
						d0:     aig.MakeLit(ds.ids[i], phase&1 != 0),
						d1:     aig.MakeLit(ds.ids[j], phase&2 != 0),
						outNeg: and.Equal(notN),
						gain:   len(mffc) - 1,
					}, true, ops
				}
			}
		}
	}
	return candidate{}, false, ops
}

// supportMask folds a table's support (via the allocation-free SupportInto)
// into a variable bitmask.
func supportMask(t truth.TT, buf *[]int) uint32 {
	*buf = t.SupportInto(*buf)
	m := uint32(0)
	for _, v := range *buf {
		m |= 1 << uint(v)
	}
	return m
}

func andOf(n int, ti, tj truth.TT, negJ bool) truth.TT {
	out := truth.New(n)
	if negJ {
		return out.AndNot(ti, tj)
	}
	return out.And(ti, tj)
}

// apply performs the substitution in place, revalidating against the
// current graph (leaves must still form a cut, the divisors must be live,
// and the identity must still hold).
func apply(work *aig.AIG, id int32, cand candidate, revalidate bool) bool {
	if work.IsDeleted(id) {
		return false
	}
	for _, l := range cand.leaves {
		if work.IsDeleted(l) {
			return false
		}
	}
	divs := []aig.Lit{cand.d0}
	if cand.kind == 1 {
		divs = append(divs, cand.d1)
	}
	for _, d := range divs {
		if work.IsDeleted(d.Var()) {
			return false
		}
	}
	if revalidate {
		ttN, ok := coneTruthSafe(work, aig.MakeLit(id, false), cand.leaves)
		if !ok {
			return false
		}
		// Earlier substitutions may have rerouted a divisor's cone through
		// the target itself; substituting would then create a cycle.
		for _, dl := range divs {
			if coneContains(work, dl.Var(), cand.leaves, id) {
				return false
			}
		}
		t0, ok := coneTruthSafe(work, cand.d0, cand.leaves)
		if !ok {
			return false
		}
		var expr truth.TT
		if cand.kind == 0 {
			expr = t0
		} else {
			t1, ok := coneTruthSafe(work, cand.d1, cand.leaves)
			if !ok {
				return false
			}
			expr = truth.New(ttN.NVars).And(t0, t1)
		}
		if cand.outNeg {
			expr = truth.New(ttN.NVars).Not(expr)
		}
		if !expr.Equal(ttN) {
			return false
		}
	}
	var newLit aig.Lit
	if cand.kind == 0 {
		newLit = cand.d0
	} else {
		newLit = work.NewAnd(cand.d0, cand.d1)
	}
	newLit = newLit.NotCond(cand.outNeg)
	if newLit.Var() == id {
		return false
	}
	work.ReplaceNode(id, newLit)
	return true
}

// coneContains reports whether the cone of root bounded by leaves contains
// the banned node.
func coneContains(a *aig.AIG, root int32, leaves []int32, banned int32) bool {
	isLeaf := make(map[int32]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	seen := map[int32]bool{}
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == banned {
			return true
		}
		if isLeaf[cur] || seen[cur] || !a.IsAnd(cur) {
			continue
		}
		seen[cur] = true
		if len(seen) > 4096 {
			return true // runaway region: treat as unsafe
		}
		stack = append(stack, a.Fanin0(cur).Var(), a.Fanin1(cur).Var())
	}
	return false
}

// coneTruthSafe evaluates a cone function, returning ok=false when the
// leaves no longer bound the cone.
func coneTruthSafe(a *aig.AIG, rootLit aig.Lit, leaves []int32) (t truth.TT, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return cut.ConeTruth(a, rootLit, leaves), true
}

// Sequential runs one ABC-style resubstitution pass (rs): nodes are visited
// in topological order and substitutions applied immediately.
func Sequential(a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	rc := cut.NewReconv(work)
	lastOriginal := int32(work.NumObjs())
	for id := int32(work.NumPIs() + 1); id < lastOriginal; id++ {
		if work.IsDeleted(id) {
			continue
		}
		st.NodesConsidered++
		// The managed mode keeps live fanout lists; use them directly so
		// evaluation always sees the current graph.
		cand, ok, _ := evaluateNode(work, rc, work.Fanouts, id, opts)
		if !ok {
			continue
		}
		if apply(work, id, cand, false) {
			if cand.kind == 0 {
				st.ZeroResubs++
			} else {
				st.OneResubs++
			}
		}
	}
	out, _ := work.Compact()
	work.ReleaseStrash()
	st.NodesAfter = out.NumAnds()
	return out, st
}

// Parallel runs resubstitution with the paper's evaluation/replacement
// split: one device thread evaluates each node on the immutable input
// graph; the host applies accepted substitutions sequentially with
// revalidation. (A fully parallel replacement as in Section III would
// require substitutions whose divisor regions are disjoint; the paper
// leaves this as future work, and this engine is the natural [9]-style
// baseline for it.)
func Parallel(d *gpu.Device, a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	nodes := make([]int32, 0, work.NumAnds())
	work.ForEachAnd(func(id int32) { nodes = append(nodes, id) })
	cands := make([]candidate, len(nodes))
	oks := make([]bool, len(nodes))
	// Reconvergence-driven cut computers are stateful; give each worker its
	// own through a pool indexed by a bounded worker count is not exposed,
	// so allocate per-thread (cheap relative to evaluation).
	d.Launch("resub/evaluate", len(nodes), func(tid int) int64 {
		rc := cut.NewReconv(work)
		cand, ok, ops := evaluateNode(work, rc, work.Fanouts, nodes[tid], opts)
		cands[tid] = cand
		oks[tid] = ok
		return ops
	})
	st.NodesConsidered = len(nodes)

	var seqOps int64
	for i, id := range nodes {
		seqOps++
		if !oks[i] {
			continue
		}
		seqOps += int64(8 + 4*len(cands[i].leaves))
		if apply(work, id, cands[i], true) {
			if cands[i].kind == 0 {
				st.ZeroResubs++
			} else {
				st.OneResubs++
			}
		}
	}
	d.AddOverhead("resub/seq-replace", seqOps)
	out, _ := work.Compact()
	work.ReleaseStrash()
	st.NodesAfter = out.NumAnds()
	return out, st
}
