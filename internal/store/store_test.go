package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPutGetRoundTrip checks the basic contract: Put returns the SHA-256
// digest, Get returns the exact bytes, Has agrees, and a missing or
// malformed digest is an os.ErrNotExist.
func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t)
	data := []byte("aig 3 1 0 1 2\n")
	digest, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if digest != Digest(data) || len(digest) != 64 {
		t.Fatalf("digest %q", digest)
	}
	got, err := s.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if !s.Has(digest) {
		t.Error("Has = false for stored blob")
	}
	missing := Digest([]byte("other"))
	if _, err := s.Get(missing); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing blob: %v, want ErrNotExist", err)
	}
	for _, bad := range []string{"", "xyz", "../../../etc/passwd", digest[:10]} {
		if _, err := s.Get(bad); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("bad digest %q: %v, want ErrNotExist", bad, err)
		}
		if s.Has(bad) {
			t.Errorf("Has(%q) = true", bad)
		}
	}
}

// TestPutDedup checks that identical contents share one blob: the second Put
// returns the same digest without growing the store.
func TestPutDedup(t *testing.T) {
	s := openTemp(t)
	data := []byte("same contents")
	d1, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Put(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digests differ: %s vs %s", d1, d2)
	}
	blobs, size, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if blobs != 1 || size != int64(len(data)) {
		t.Fatalf("stats after dedup: %d blobs, %d bytes", blobs, size)
	}
}

// TestSurvivesReopen checks the durability shape: a fresh Store over the
// same directory serves blobs written by the previous one.
func TestSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := s1.Put([]byte("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(digest)
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

// TestGC checks that unreferenced blobs and abandoned temp files are
// removed while referenced blobs survive.
func TestGC(t *testing.T) {
	s := openTemp(t)
	keep, err := s.Put([]byte("referenced"))
	if err != nil {
		t.Fatal(err)
	}
	drop, err := s.Put([]byte("orphaned"))
	if err != nil {
		t.Fatal(err)
	}
	// An abandoned temp file, as a crash mid-Put would leave behind.
	stray := filepath.Join(s.dir, keep[:2], "tmp-dead-123")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC(func(d string) bool { return d == keep })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("GC removed %d, want 2 (orphan + temp)", removed)
	}
	if !s.Has(keep) {
		t.Error("referenced blob removed")
	}
	if s.Has(drop) {
		t.Error("orphaned blob survived")
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file survived GC")
	}
}

// TestConcurrentPut hammers Put from many goroutines — duplicates and
// distinct blobs interleaved — and checks every digest resolves.
func TestConcurrentPut(t *testing.T) {
	s := openTemp(t)
	var wg sync.WaitGroup
	digests := make([]string, 64)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := []byte(fmt.Sprintf("blob-%d", i%8)) // 8 distinct contents
			d, err := s.Put(data)
			if err != nil {
				t.Error(err)
				return
			}
			digests[i] = d
		}(i)
	}
	wg.Wait()
	for i, d := range digests {
		got, err := s.Get(d)
		if err != nil {
			t.Fatalf("digest %d: %v", i, err)
		}
		if want := fmt.Sprintf("blob-%d", i%8); string(got) != want {
			t.Fatalf("digest %d: %q, want %q", i, got, want)
		}
	}
	blobs, _, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if blobs != 8 {
		t.Fatalf("stats: %d blobs, want 8 after dedup", blobs)
	}
}
