// Package store is a content-addressed blob store for the aigred daemon's
// durable job results.
//
// Blobs are keyed by the lowercase hex SHA-256 of their contents and laid
// out as objects/<digest[:2]>/<digest>, git-style, so a directory never
// accumulates an unbounded sibling count. Writes are crash-safe: the blob is
// written to a temp file in the same directory, fsynced, and atomically
// renamed into place — a reader never observes a partial blob, and a crash
// mid-Put leaves at worst a temp file that the next GC sweeps. Identical
// contents dedup to one blob (the second Put is a no-op that returns the
// same digest).
//
// The store holds no index: the filesystem is the index, which is what lets
// it survive daemon restarts alongside the write-ahead queue log. GC walks
// the object tree and removes every blob whose digest the caller does not
// vouch for — the daemon calls it at startup with the digests referenced by
// the replayed queue, reaping blobs orphaned by a crash between Put and the
// outcome record.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Store is a content-addressed blob store rooted at one directory. All
// methods are safe for concurrent use: distinct blobs never collide, and
// concurrent Puts of the same contents race only on an atomic rename to the
// same final name.
type Store struct {
	dir string // <root>/objects
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	objects := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: objects}, nil
}

// Digest returns the store key for data: lowercase hex SHA-256.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validDigest guards every path built from a caller-supplied digest, so a
// hostile "../../etc" key cannot escape the object tree.
func validDigest(d string) bool {
	if len(d) != 2*sha256.Size {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(digest string) string {
	return filepath.Join(s.dir, digest[:2], digest)
}

// Put stores data and returns its digest. The blob is durably on disk
// (written to a temp file, fsynced, atomically renamed) before Put returns,
// so a digest recorded in a write-ahead log after Put never dangles.
// Identical contents dedup: a blob that already exists is not rewritten.
func (s *Store) Put(data []byte) (string, error) {
	digest := Digest(data)
	final := s.path(digest)
	if _, err := os.Stat(final); err == nil {
		return digest, nil // dedup: identical contents already stored
	}
	dir := filepath.Dir(final)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "tmp-"+digest[:8]+"-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return digest, nil
}

// Get returns the blob with the given digest, or an os.ErrNotExist-wrapping
// error when it is absent (or the digest is malformed).
func (s *Store) Get(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: bad digest %q: %w", digest, os.ErrNotExist)
	}
	data, err := os.ReadFile(s.path(digest))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// Has reports whether the blob exists.
func (s *Store) Has(digest string) bool {
	if !validDigest(digest) {
		return false
	}
	_, err := os.Stat(s.path(digest))
	return err == nil
}

// GC removes every blob whose digest live does not report as referenced,
// together with temp files abandoned by a crashed Put. It returns how many
// blobs were removed. GC is safe against concurrent Puts of referenced
// contents only — the daemon runs it at startup, before serving.
func (s *Store) GC(live func(digest string) bool) (removed int, err error) {
	werr := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, "tmp-") || !validDigest(name) || !live(name) {
			if rerr := os.Remove(path); rerr == nil {
				removed++
			}
		}
		return nil
	})
	if werr != nil {
		return removed, fmt.Errorf("store: gc: %w", werr)
	}
	return removed, nil
}

// Stats walks the store and returns the blob count and total byte size.
func (s *Store) Stats() (blobs int, bytes int64, err error) {
	werr := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !validDigest(d.Name()) {
			return err
		}
		if info, ierr := d.Info(); ierr == nil {
			blobs++
			bytes += info.Size()
		}
		return nil
	})
	if werr != nil {
		return blobs, bytes, fmt.Errorf("store: %w", werr)
	}
	return blobs, bytes, nil
}
