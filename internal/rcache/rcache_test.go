package rcache

import (
	"math/rand"
	"sync"
	"testing"

	"aigre/internal/core"
	"aigre/internal/truth"
)

func ttOf(nVars int, words ...uint64) truth.TT {
	return truth.TT{NVars: nVars, Words: words}
}

func TestNpn4MatchesDirectCanonization(t *testing.T) {
	// The cached NPN result must round-trip the packed encoding exactly:
	// same canonical class and same transform as truth.Npn4Canon, for every
	// 16-bit function, both on the filling pass and the cached pass.
	c := New()
	for pass := 0; pass < 2; pass++ {
		for f := 0; f < 1<<16; f++ {
			canon, tr := truth.Npn4Canon(uint16(f))
			gotCanon, gotTr := c.Npn4(uint16(f))
			if gotCanon != canon {
				t.Fatalf("pass %d: Npn4(%04x) canon = %04x, want %04x", pass, f, gotCanon, canon)
			}
			if gotTr != tr {
				t.Fatalf("pass %d: Npn4(%04x) transform = %+v, want %+v", pass, f, gotTr, tr)
			}
		}
	}
	st := c.Snapshot()
	if st.NpnMisses != 1<<16 || st.NpnHits != 1<<16 {
		t.Errorf("npn counters = %d hits / %d misses, want 65536 / 65536", st.NpnHits, st.NpnMisses)
	}
}

func TestProgramLookupStoreCounts(t *testing.T) {
	c := New()
	tt := ttOf(6, 0xDEADBEEF12345678)
	if _, ok := c.Lookup(tt, 6); ok {
		t.Fatal("hit on empty cache")
	}
	e := Entry{Prog: core.Program{Root: core.ConstRef(true)}, Ops: 7}
	c.Store(tt, 6, e)
	got, ok := c.Lookup(tt, 6)
	if !ok || got.Ops != 7 {
		t.Fatalf("Lookup after Store = (%+v, %v)", got, ok)
	}
	// Same function under a different leaf count is a distinct key.
	if _, ok := c.Lookup(tt, 5); ok {
		t.Error("leaf count must be part of the key")
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 1 entry", st)
	}
	if st.HitRate() <= 0.33 || st.HitRate() >= 0.34 {
		t.Errorf("hit rate = %v, want 1/3", st.HitRate())
	}
}

func TestEvictionBoundsEntries(t *testing.T) {
	c := NewWithCapacity(64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		tt := ttOf(6, rng.Uint64())
		c.Store(tt, 6, Entry{Ops: int64(i)})
	}
	if n := c.Entries(); n > 64+numShards {
		t.Errorf("entries = %d, want bounded near 64", n)
	}
	if c.Snapshot().Evictions == 0 {
		t.Error("expected evictions on an overfull cache")
	}
}

func TestDisabledAndNilAreMissesOnly(t *testing.T) {
	for name, c := range map[string]*Cache{"disabled": Disabled(), "nil": nil} {
		tt := ttOf(6, 42)
		c.Store(tt, 6, Entry{Ops: 1})
		if _, ok := c.Lookup(tt, 6); ok {
			t.Errorf("%s cache returned a hit", name)
		}
		canon, tr := c.Npn4(0x1234)
		wantCanon, wantTr := truth.Npn4Canon(0x1234)
		if canon != wantCanon || tr != wantTr {
			t.Errorf("%s cache Npn4 diverged from direct canonization", name)
		}
	}
	d := Disabled()
	d.Lookup(ttOf(6, 1), 6)
	if st := d.Snapshot(); st.Misses != 1 || st.Entries != 0 {
		t.Errorf("disabled stats = %+v", st)
	}
}

func TestStatsSubDelta(t *testing.T) {
	a := Stats{Hits: 10, Misses: 4, Evictions: 2, NpnHits: 100, NpnMisses: 50, Entries: 9}
	b := Stats{Hits: 3, Misses: 1, Evictions: 0, NpnHits: 60, NpnMisses: 20, Entries: 5}
	d := a.Sub(b)
	if d.Hits != 7 || d.Misses != 3 || d.Evictions != 2 || d.NpnHits != 40 || d.NpnMisses != 30 {
		t.Errorf("delta = %+v", d)
	}
	if d.Entries != 9 {
		t.Errorf("delta keeps the receiver's Entries, got %d", d.Entries)
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// Hammer one cache from many goroutines mixing NPN lookups and program
	// store/lookup; correctness of each returned value is checked in-thread.
	c := NewWithCapacity(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				f := uint16(rng.Intn(1 << 16))
				canon, _ := c.Npn4(f)
				wantCanon, _ := truth.Npn4Canon(f)
				if canon != wantCanon {
					t.Errorf("Npn4(%04x) = %04x, want %04x", f, canon, wantCanon)
					return
				}
				w := rng.Uint64() % 512 // small key space to force hits
				tt := ttOf(6, w)
				if e, ok := c.Lookup(tt, 6); ok && e.Ops != int64(w) {
					t.Errorf("Lookup(%d) returned foreign entry with Ops=%d", w, e.Ops)
					return
				}
				c.Store(tt, 6, Entry{Ops: int64(w)})
			}
		}(int64(g) + 1)
	}
	wg.Wait()
}
