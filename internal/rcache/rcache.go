// Package rcache provides the cross-pass resynthesis cache: a memoized
// mapping from canonical cone functions to their factored implementations.
//
// Arithmetic circuits are built from repeated bit slices, so the same cone
// functions recur thousands of times — within one pass, across the repeated
// passes of resyn2/rf_resyn, and across concurrent jobs in the batch engine.
// ABC and mockturtle both ship a memoized resynthesis database for exactly
// this reason. The cache has two compartments tuned to the two consumers:
//
//   - 4-input rewrite cuts: the key is the raw 16-bit truth table and the
//     value its NPN-canonical representative plus the transform, stored in a
//     fixed 65536-entry array of packed uint32 words accessed atomically
//     (idempotent writes — Npn4Canon is deterministic, so racing writers
//     store identical values). Lookups are wait-free and allocation-free.
//
//   - Large refactor cones (up to truth.MaxVars leaves): the key is the
//     exact truth-table bit string plus the leaf count, the value the
//     factored core.Program and its operation estimate. Entries live in
//     mutex-protected shards selected by a 64-bit hash of the key; the map
//     lookup itself uses the compiler's no-allocation string(buf) form, so
//     hits allocate nothing. Keying on the full bit string (not the hash)
//     makes collisions impossible: a hit is always the same function, which
//     is what keeps cached and uncached runs bit-identical.
//
// Programs are immutable once built and Npn4Canon is deterministic, so the
// cache never needs invalidation: a cached entry is valid for the lifetime
// of the process, for any AIG, on any goroutine. Capacity is bounded per
// shard; insertion over the bound evicts an arbitrary resident entry
// (counted in Stats.Evictions), which affects only speed, never results.
package rcache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"aigre/internal/core"
	"aigre/internal/truth"
)

// numShards spreads concurrent jobs over independent locks. It scales with
// the host: a fixed 16 was fine for 16 workers sharing one cache, but eight
// partition jobs each launching multi-worker kernels put far more goroutines
// behind the locks than the machine has cores. Four shards per CPU (rounded
// up to a power of two, floored at the old 16) keeps the expected queue per
// lock short at any worker count; determined once at startup so every cache
// in the process agrees.
var numShards = func() int {
	n := 16
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	return n
}()

const (
	// DefaultMaxEntries bounds the resident program entries of New.
	// 12-leaf cones key at ~520 bytes plus the program; 32k entries keep
	// the worst case around tens of megabytes.
	DefaultMaxEntries = 32 << 10

	npnPermShift  = 16
	npnInNegShift = 21
	npnOutNegBit  = 1 << 25
	npnValidBit   = 1 << 26
)

// Entry is one memoized resynthesis result.
type Entry struct {
	// Prog is the factored implementation of the cone function. Programs
	// are immutable; sharing one across goroutines and AIGs is safe.
	Prog core.Program
	// Ops is the modeled operation count of the synthesis that produced
	// Prog. Hits charge it again: the paper's GPU threads do not share a
	// factoring cache, so the device model must account the full work.
	Ops int64
}

// Stats is a snapshot of the cache effectiveness counters.
type Stats struct {
	// Hits/Misses/Evictions count program-cache (refactor cone) traffic.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// NpnHits/NpnMisses count the 4-input NPN canonization compartment.
	NpnHits   int64 `json:"npn_hits"`
	NpnMisses int64 `json:"npn_misses"`
	// Entries is the number of resident program entries at snapshot time.
	Entries int `json:"entries"`
}

// Add returns s with o's counters added (Entries from o, the later snapshot).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		NpnHits:   s.NpnHits + o.NpnHits,
		NpnMisses: s.NpnMisses + o.NpnMisses,
		Entries:   o.Entries,
	}
}

// Sub returns the counter deltas s - o (Entries from s, the later snapshot).
// Use it to attribute cache traffic to one run of a shared cache; when other
// goroutines use the cache concurrently, their traffic is included.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		NpnHits:   s.NpnHits - o.NpnHits,
		NpnMisses: s.NpnMisses - o.NpnMisses,
		Entries:   s.Entries,
	}
}

// Lookups returns the total program-cache probes.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns Hits/Lookups for the program compartment (0 when idle).
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

type shard struct {
	mu sync.Mutex
	m  map[string]Entry
	// Pad to a cache line: neighboring shards' locks are taken by different
	// workers concurrently, and sharing a line would serialize them anyway.
	_ [48]byte
}

// Cache is a sharded, concurrency-safe resynthesis cache. The zero value is
// not usable; construct with New, NewWithCapacity, or Disabled. All methods
// are safe for concurrent use and tolerate a nil receiver (nil behaves like
// a disabled cache).
type Cache struct {
	disabled    bool
	maxPerShard int
	shards      []shard // len is numShards (a power of two); nil when disabled

	// npn is the packed 4-input canonization table: bits 0-15 the canonical
	// table, 16-20 the permutation index, 21-24 the input negation mask,
	// 25 the output negation, 26 the valid bit.
	npn [1 << 16]uint32

	hits, misses, evictions atomic.Int64
	npnHits, npnMisses      atomic.Int64
}

// New returns a cache with the default capacity bound.
func New() *Cache { return NewWithCapacity(DefaultMaxEntries) }

// NewWithCapacity returns a cache holding at most maxEntries program
// entries (0 or negative selects DefaultMaxEntries).
func NewWithCapacity(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	per := (maxEntries + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{maxPerShard: per, shards: make([]shard, numShards)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Entry)
	}
	return c
}

// Disabled returns a cache that never stores and never hits — every probe
// is a miss and Npn4 recanonizes from scratch. Used for cached-vs-uncached
// ablations; results are identical either way, only the work repeats.
func Disabled() *Cache { return &Cache{disabled: true} }

// Default is the process-wide cache used by engines that are handed no
// explicit cache (direct refactor/rewrite calls, flow.Run with a zero
// Config). Runs through the aigre public API get per-run caches instead.
var Default = New()

// keyPool recycles the key-building buffers; the longest key is one byte of
// leaf count plus truth.MaxVars worth of table words.
var keyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1+8*truth.WordCount(truth.MaxVars))
		return &b
	},
}

// appendKey serializes (tt, nLeaves) into dst. Only the first WordCount
// words matter; tables arrive normalized from cut.ConeTruth so the bits
// above 2^n for n < 6 are part of the deterministic representation.
func appendKey(dst []byte, tt truth.TT, nLeaves int) []byte {
	dst = append(dst, byte(nLeaves))
	for _, w := range tt.Words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// hashKey is FNV-1a over the key bytes; it selects the shard only (map
// lookup uses the exact key), so quality beyond even spread is irrelevant.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Lookup probes the program compartment for the cone function (tt, nLeaves).
// The hit path performs no allocation.
func (c *Cache) Lookup(tt truth.TT, nLeaves int) (Entry, bool) {
	if c == nil || c.disabled {
		if c != nil {
			c.misses.Add(1)
		}
		return Entry{}, false
	}
	bp := keyPool.Get().(*[]byte)
	key := appendKey((*bp)[:0], tt, nLeaves)
	s := &c.shards[hashKey(key)&uint64(len(c.shards)-1)]
	s.mu.Lock()
	e, ok := s.m[string(key)] // no-alloc map probe form
	s.mu.Unlock()
	*bp = key[:0]
	keyPool.Put(bp)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Store records the resynthesis result for (tt, nLeaves). When the shard is
// full an arbitrary resident entry is evicted first.
func (c *Cache) Store(tt truth.TT, nLeaves int, e Entry) {
	if c == nil || c.disabled {
		return
	}
	bp := keyPool.Get().(*[]byte)
	key := appendKey((*bp)[:0], tt, nLeaves)
	s := &c.shards[hashKey(key)&uint64(len(c.shards)-1)]
	s.mu.Lock()
	if _, exists := s.m[string(key)]; !exists && len(s.m) >= c.maxPerShard {
		for k := range s.m {
			delete(s.m, k)
			c.evictions.Add(1)
			break
		}
	}
	s.m[string(key)] = e
	s.mu.Unlock()
	*bp = key[:0]
	keyPool.Put(bp)
}

// Npn4 returns the NPN-canonical representative of tt and the transform
// mapping tt onto it, memoized in the packed table. Equivalent to
// truth.Npn4Canon (which enumerates all 768 transforms) on a miss.
func (c *Cache) Npn4(tt uint16) (uint16, truth.Npn4Transform) {
	if c == nil || c.disabled {
		if c != nil {
			c.npnMisses.Add(1)
		}
		return truth.Npn4Canon(tt)
	}
	if e := atomic.LoadUint32(&c.npn[tt]); e&npnValidBit != 0 {
		c.npnHits.Add(1)
		return uint16(e), truth.Npn4Transform{
			Perm:      truth.Npn4Perm(int(e >> npnPermShift & 31)),
			InputNeg:  uint8(e >> npnInNegShift & 15),
			OutputNeg: e&npnOutNegBit != 0,
		}
	}
	c.npnMisses.Add(1)
	canon, tr := truth.Npn4Canon(tt)
	e := uint32(canon) |
		uint32(truth.Npn4PermIndex(tr.Perm))<<npnPermShift |
		uint32(tr.InputNeg)<<npnInNegShift |
		npnValidBit
	if tr.OutputNeg {
		e |= npnOutNegBit
	}
	atomic.StoreUint32(&c.npn[tt], e)
	return canon, tr
}

// Entries returns the number of resident program entries.
func (c *Cache) Entries() int {
	if c == nil || c.disabled {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns the current counter values.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		NpnHits:   c.npnHits.Load(),
		NpnMisses: c.npnMisses.Load(),
		Entries:   c.Entries(),
	}
}
