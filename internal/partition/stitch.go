package partition

import (
	"fmt"
	"time"

	"aigre/internal/aig"
	"aigre/internal/flow"
	"aigre/internal/sched"
)

// rollbackIncident records a partition rollback as a classified incident, so
// the supervision journal and batch reports see seam repairs the same way
// they see contained kernel faults. Seam-gate rollbacks are transient — a
// fresh attempt re-partitions and usually lands clean ("Parallel AIG
// Refactoring via Conflict Breaking" treats conflicts as retryable) — while
// a local equivalence refutation is permanent.
func rollbackIncident(idx int, stage, class, detail string) flow.Incident {
	return flow.Incident{
		Index:   idx,
		Command: "partition",
		Stage:   stage,
		Action:  "rolled-back",
		Class:   class,
		Detail:  detail,
		Time:    time.Now(),
	}
}

// stitch replays the chosen cone of every partition into one fresh, fully
// strashed network. Partitions are replayed in index order (a partition's
// boundary inputs are produced by lower-indexed partitions or PIs), and the
// per-partition conflict counts report how many replayed nodes were broken
// at the seam: merged with a structural duplicate another partition already
// created, or simplified away against boundary constants. Dangling replay
// leftovers are compacted out.
func stitch(base *aig.AIG, parts []*part, chosen []*aig.AIG) (*aig.AIG, []int, error) {
	out := aig.NewCap(base.NumPIs(), base.NumObjs())
	out.EnableStrash()
	nobj := base.NumObjs()
	boundary := make([]aig.Lit, nobj) // base node id -> out literal (regular sense)
	have := make([]bool, nobj)
	have[0] = true
	boundary[0] = aig.ConstFalse
	for i := 0; i < base.NumPIs(); i++ {
		boundary[i+1] = base.PI(i)
		have[i+1] = true
	}
	conflicts := make([]int, len(parts))
	poLit := make([]aig.Lit, base.NumPOs())
	poSet := make([]bool, base.NumPOs())

	var local []aig.Lit
	for pi, p := range parts {
		c := chosen[pi]
		if cap(local) < c.NumObjs() {
			local = make([]aig.Lit, c.NumObjs())
		}
		local = local[:c.NumObjs()]
		local[0] = aig.ConstFalse
		if c.NumPIs() != len(p.inputs) {
			return nil, nil, fmt.Errorf("partition: part %d cone has %d PIs, want %d", pi, c.NumPIs(), len(p.inputs))
		}
		for j, in := range p.inputs {
			if !have[in] {
				return nil, nil, fmt.Errorf("partition: part %d input node %d not yet stitched", pi, in)
			}
			local[j+1] = boundary[in]
		}
		// Replay the cone's AND nodes. Optimized cones come out of the
		// guarded flow runner compacted (canonical topological id order);
		// deleted slots are skipped defensively.
		for id := int32(c.NumPIs() + 1); int(id) < c.NumObjs(); id++ {
			if c.IsDeleted(id) {
				continue
			}
			f0, f1 := c.Fanin0(id), c.Fanin1(id)
			l0 := local[f0.Var()].NotCond(f0.IsCompl())
			l1 := local[f1.Var()].NotCond(f1.IsCompl())
			before := out.NumObjs()
			lit := out.NewAnd(l0, l1)
			if out.NumObjs() == before {
				conflicts[pi]++
			}
			local[id] = lit
		}
		if c.NumPOs() != len(p.outputs)+len(p.poIdx) {
			return nil, nil, fmt.Errorf("partition: part %d cone has %d POs, want %d",
				pi, c.NumPOs(), len(p.outputs)+len(p.poIdx))
		}
		for j, outID := range p.outputs {
			l := c.PO(j)
			boundary[outID] = local[l.Var()].NotCond(l.IsCompl())
			have[outID] = true
		}
		for j, po := range p.poIdx {
			l := c.PO(len(p.outputs) + j)
			poLit[po] = local[l.Var()].NotCond(l.IsCompl())
			poSet[po] = true
		}
	}
	// POs not owned by any partition (const/PI-driven in cones mode, every
	// PO in levels mode) resolve through the boundary map.
	for i := 0; i < base.NumPOs(); i++ {
		if poSet[i] {
			continue
		}
		p := base.PO(i)
		if !have[p.Var()] {
			return nil, nil, fmt.Errorf("partition: PO %d driver node %d not stitched", i, p.Var())
		}
		poLit[i] = boundary[p.Var()].NotCond(p.IsCompl())
	}
	for _, l := range poLit {
		out.AddPO(l)
	}
	final, _ := out.Compact()
	out.ReleaseStrash()
	final.Name = base.Name
	return final, conflicts, nil
}

type resolveConfig struct {
	verify    bool
	rounds    int
	maxRounds int
	seed      int64
	mode      Mode
	pool      *sched.Pool
}

// doStitch picks the stitcher: cones-mode partitions have no cross-partition
// boundary edges, so they stitch through the two-phase parallel merge on the
// pool; levels mode keeps the sequential in-order replay its boundary chain
// requires.
func doStitch(base *aig.AIG, parts []*part, chosen []*aig.AIG, cfg resolveConfig) (*aig.AIG, []int, error) {
	if cfg.mode == Cones && cfg.pool != nil {
		return stitchParallel(base, parts, chosen, cfg.pool)
	}
	return stitch(base, parts, chosen)
}

// resolve runs the stitch / seam-gate / rollback loop. Each round stitches
// the currently chosen cones and gates the merged network against the base
// with the guarded runner's gate (aig.Check plus sampling equivalence, or
// full CEC under verify). On refutation it hunts the culprit with a deeper
// per-partition gate under a fresh seed, rolls it back to its
// pre-optimization cone, and re-stitches; past maxRounds (or when no culprit
// is found) every remaining optimized partition is rolled back at once,
// which makes the loop terminate: a stitch of nothing but pre-optimization
// cones reproduces the base network function exactly.
func resolve(base *aig.AIG, parts []*part, pres, chosen []*aig.AIG, cfg resolveConfig, res *Result) (*aig.AIG, error) {
	for round := 1; ; round++ {
		merged, conflicts, err := doStitch(base, parts, chosen, cfg)
		if err != nil {
			return nil, err
		}
		res.StitchRounds = round
		total := 0
		for _, c := range conflicts {
			total += c
		}
		res.ConflictsFound += total
		gerr := flow.EquivGate(base, merged, cfg.verify, cfg.rounds, cfg.seed+int64(round)*1009)
		if gerr == nil {
			res.ConflictsBroken = total
			for i := range parts {
				res.Parts[i].Conflicts = conflicts[i]
			}
			return merged, nil
		}
		allPre := true
		for i := range parts {
			if chosen[i] != pres[i] {
				allPre = false
				break
			}
		}
		if allPre {
			// Even the all-checkpoint stitch refuted: the failure is in the
			// stitcher or the base network itself, not in any partition.
			return nil, fmt.Errorf("partition: stitched checkpoint network refuted: %w", gerr)
		}
		rolled := false
		if round <= cfg.maxRounds {
			for i := range parts {
				if chosen[i] == pres[i] {
					continue
				}
				seed := cfg.seed + int64(round)*6151 + int64(i)*7919
				if flow.EquivGate(pres[i], chosen[i], cfg.verify, 4*cfg.rounds, seed) != nil {
					chosen[i] = pres[i]
					res.Parts[i].RolledBack = true
					res.Parts[i].Note = "refuted during seam conflict round"
					res.Rollbacks++
					res.Incidents = append(res.Incidents, rollbackIncident(i,
						"seam-gate", flow.ClassTransient, "refuted during seam conflict round"))
					rolled = true
					break
				}
			}
		}
		if !rolled {
			// No individual culprit (the failure emerges only at the seams)
			// or the round budget is spent: drop every optimized cone.
			for i := range parts {
				if chosen[i] == pres[i] {
					continue
				}
				chosen[i] = pres[i]
				res.Parts[i].RolledBack = true
				res.Parts[i].Note = "rolled back with all partitions after seam refutation"
				res.Rollbacks++
				res.Incidents = append(res.Incidents, rollbackIncident(i,
					"seam-gate", flow.ClassTransient, "rolled back with all partitions after seam refutation"))
			}
		}
	}
}
