package partition

import (
	"fmt"
	"testing"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/sched"
)

// isomorphic checks that a and b are the same DAG up to node renumbering: PIs
// correspond by index, POs by position, and the mapping forced by walking the
// PO cones is a bijection on AND nodes that preserves fanin complement bits.
// Fanin order may differ between the networks (normalization sorts by literal
// value, which depends on the numbering), so both pairings are tried, with
// backtracking for the rare ambiguous case where the complement bits match
// both ways.
func isomorphic(a, b *aig.AIG) error {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() || a.NumAnds() != b.NumAnds() {
		return fmt.Errorf("shape differs: %d/%d/%d PIs/POs/ANDs vs %d/%d/%d",
			a.NumPIs(), a.NumPOs(), a.NumAnds(), b.NumPIs(), b.NumPOs(), b.NumAnds())
	}
	mapAB := make([]int32, a.NumObjs())
	mapBA := make([]int32, b.NumObjs())
	for i := range mapAB {
		mapAB[i] = -1
	}
	for i := range mapBA {
		mapBA[i] = -1
	}
	mapAB[0], mapBA[0] = 0, 0
	for i := 0; i < a.NumPIs(); i++ {
		mapAB[i+1], mapBA[i+1] = int32(i+1), int32(i+1)
	}
	var trail []int32
	var match func(va, vb int32) bool
	match = func(va, vb int32) bool {
		if mapAB[va] != -1 || mapBA[vb] != -1 {
			return mapAB[va] == vb
		}
		if !a.IsAnd(va) || !b.IsAnd(vb) {
			return false // unmapped non-AND: PI index mismatch
		}
		mapAB[va], mapBA[vb] = vb, va
		trail = append(trail, va)
		mark := len(trail)
		f0a, f1a := a.Fanin0(va), a.Fanin1(va)
		try := func(x0, x1 aig.Lit) bool {
			if f0a.IsCompl() != x0.IsCompl() || f1a.IsCompl() != x1.IsCompl() {
				return false
			}
			if match(f0a.Var(), x0.Var()) && match(f1a.Var(), x1.Var()) {
				return true
			}
			for len(trail) > mark {
				ua := trail[len(trail)-1]
				trail = trail[:len(trail)-1]
				mapBA[mapAB[ua]] = -1
				mapAB[ua] = -1
			}
			return false
		}
		if try(b.Fanin0(vb), b.Fanin1(vb)) || try(b.Fanin1(vb), b.Fanin0(vb)) {
			return true
		}
		trail = trail[:len(trail)-1]
		mapAB[va], mapBA[vb] = -1, -1
		return false
	}
	for i := 0; i < a.NumPOs(); i++ {
		la, lb := a.PO(i), b.PO(i)
		if la.IsCompl() != lb.IsCompl() {
			return fmt.Errorf("PO %d polarity differs", i)
		}
		if !match(la.Var(), lb.Var()) {
			return fmt.Errorf("PO %d cones do not correspond", i)
		}
	}
	mapped := 0
	for id := int32(0); int(id) < a.NumObjs(); id++ {
		if a.IsAnd(id) && mapAB[id] != -1 {
			mapped++
		}
	}
	if mapped != a.NumAnds() {
		return fmt.Errorf("only %d of %d AND nodes mapped", mapped, a.NumAnds())
	}
	return nil
}

// sameAIG checks bit-identical structure (the determinism assertion: the
// parallel stitcher's output must not depend on the worker count).
func sameAIG(a, b *aig.AIG) error {
	if a.NumObjs() != b.NumObjs() || a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return fmt.Errorf("shape differs")
	}
	for id := int32(int32(a.NumPIs()) + 1); int(id) < a.NumObjs(); id++ {
		if a.Fanin0(id) != b.Fanin0(id) || a.Fanin1(id) != b.Fanin1(id) {
			return fmt.Errorf("node %d fanins differ: (%v,%v) vs (%v,%v)",
				id, a.Fanin0(id), a.Fanin1(id), b.Fanin0(id), b.Fanin1(id))
		}
	}
	for i := 0; i < a.NumPOs(); i++ {
		if a.PO(i) != b.PO(i) {
			return fmt.Errorf("PO %d differs", i)
		}
	}
	return nil
}

// TestParallelStitchMatchesSequential replays checkpoint cones of the
// many-output benchmark circuits through both stitchers and requires the same
// merged structure (up to renumbering — the level-synchronous merge picks
// different winner ids than the in-order replay, but the quotient DAG must be
// the same) and the same total conflict count.
func TestParallelStitchMatchesSequential(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, name := range []string{"multiplier", "mem_ctrl", "ac97_ctrl", "voter"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a, ok := bench.ByName(name, 1)
			if !ok {
				t.Fatalf("unknown circuit %q", name)
			}
			base := a
			if !canonicalOrder(a) {
				base, _ = a.Compact()
			}
			parts := buildCones(base, base.NumAnds()/6+1)
			if len(parts) < 2 {
				t.Skipf("%s yields %d partitions at this target", name, len(parts))
			}
			pres := extractAll(base, parts, pool)
			seq, seqConf, err := stitch(base, parts, pres)
			if err != nil {
				t.Fatal(err)
			}
			par, parConf, err := stitchParallel(base, parts, pres, pool)
			if err != nil {
				t.Fatal(err)
			}
			if err := aig.Check(par); err != nil {
				t.Fatal(err)
			}
			seqTotal, parTotal := 0, 0
			for i := range seqConf {
				seqTotal += seqConf[i]
				parTotal += parConf[i]
			}
			if seqTotal != parTotal {
				t.Errorf("conflict totals differ: sequential %d, parallel %d", seqTotal, parTotal)
			}
			if err := isomorphic(seq, par); err != nil {
				t.Errorf("stitched networks not isomorphic: %v", err)
			}
		})
	}
}

// TestParallelStitchWorkerIndependence pins the determinism contract of the
// InsertMin merge: the stitched network must be bit-identical across worker
// counts (and across repeated runs through the pooled scratch arrays).
func TestParallelStitchWorkerIndependence(t *testing.T) {
	a, ok := bench.ByName("mem_ctrl", 1)
	if !ok {
		t.Fatal("mem_ctrl missing from suite")
	}
	base := a
	if !canonicalOrder(a) {
		base, _ = a.Compact()
	}
	parts := buildCones(base, base.NumAnds()/8+1)
	pool1 := sched.NewPool(1)
	defer pool1.Close()
	pres := extractAll(base, parts, pool1)
	want, _, err := stitchParallel(base, parts, pres, pool1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		pool := sched.NewPool(w)
		for round := 0; round < 2; round++ {
			got, _, err := stitchParallel(base, parts, pres, pool)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameAIG(want, got); err != nil {
				t.Errorf("W=%d round %d: %v", w, round, err)
			}
		}
		pool.Close()
	}
}
