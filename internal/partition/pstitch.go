package partition

import (
	"fmt"
	"sync"
	"sync/atomic"

	"aigre/internal/aig"
	"aigre/internal/hashtable"
	"aigre/internal/mempool"
	"aigre/internal/sched"
)

// Pooled scratch for parallel extraction and stitching. The arrays are
// proportional to the base network (millions of entries), re-acquired on
// every stitch round of every partitioned job — recycling them keeps the
// steady-state allocation rate of the whole partition path near zero.
var (
	pLitPool mempool.SlicePool[aig.Lit]
	pI32Pool mempool.SlicePool[int32]
	pU64Pool mempool.SlicePool[uint64]
)

// stitchTablePool recycles the merge table between stitch rounds, reused
// only at the exact size a fresh table would have (the dedup pass uses the
// same discipline) so pooled and unpooled stitches behave identically.
var stitchTablePool sync.Pool

func acquireStitchTable(capacityHint int) *hashtable.Table {
	if t, _ := stitchTablePool.Get().(*hashtable.Table); t != nil && t.Cap() == hashtable.SizeFor(capacityHint) {
		t.Reset()
		return t
	}
	return hashtable.New(capacityHint)
}

// chunked fans fn over [0,n) in contiguous chunks on the pool, inline when
// the range is too small to be worth a goroutine handoff.
func chunked(pool *sched.Pool, n int, fn func(lo, hi int)) {
	const minChunk = 512
	w := pool.Workers()
	if n <= minChunk || w <= 1 {
		fn(0, n)
		return
	}
	chunks := (n + minChunk - 1) / minChunk
	if chunks > w {
		chunks = w
	}
	size := (n + chunks - 1) / chunks
	tasks := make([]func(), 0, chunks)
	for lo := 0; lo < n; lo += size {
		lo, hi := lo, lo+size
		if hi > n {
			hi = n
		}
		tasks = append(tasks, func() { fn(lo, hi) })
	}
	pool.Execute(tasks)
}

// stitchParallel is the cones-mode two-phase parallel replacement for
// stitch: it produces a network with the same merged structure and the same
// total conflict count, with the per-partition replay and the strash merge
// running on the pool instead of one goroutine.
//
// Cones-mode partitions read only primary inputs (buildCones closes every
// cluster under fanin), so the concatenation phase is embarrassingly
// parallel: each partition's cone is replayed into a reserved range of a
// shared node space with no cross-partition edges. The merge phase then
// plays the role the global strash table played in the sequential stitcher:
// nodes are processed level-synchronously (a node's fanins are strictly
// below it in its own cone, so by its batch they are final), each batch
// resolves structural duplicates through hashtable.InsertMin — the minimum
// node id in a batch of duplicates wins, and a class that first appeared at
// an earlier level keeps its established winner — and trivial nodes are
// simplified against their finalized fanins exactly as NewAnd would have.
// The winner policy is deterministic and independent of the worker count;
// the merged quotient graph (and therefore the compacted result, up to node
// renumbering) matches what the sequential replay builds, because both merge
// every class of structurally identical nodes completely and apply the same
// trivial-node simplification.
func stitchParallel(base *aig.AIG, parts []*part, chosen []*aig.AIG, pool *sched.Pool) (*aig.AIG, []int, error) {
	nPI := base.NumPIs()
	nParts := len(parts)

	// Reserve each partition a contiguous gid range after the shared PI
	// prefix: gid 0 is const-false, 1..nPI the base PIs, then the live AND
	// nodes of every chosen cone in partition index order (topological
	// within a cone), mirroring the sequential replay's first-encounter
	// order.
	offs := make([]int, nParts+1)
	offs[0] = 1 + nPI
	for i, c := range chosen {
		offs[i+1] = offs[i] + c.NumAnds()
	}
	totalLen := offs[nParts]

	f0s := pLitPool.Get(totalLen)
	f1s := pLitPool.Get(totalLen)
	remap := pLitPool.Get(totalLen)
	level := pI32Pool.GetZeroed(totalLen)
	partOf := pI32Pool.Get(totalLen)
	keys := pU64Pool.Get(totalLen)
	defer func() {
		pLitPool.Put(f0s)
		pLitPool.Put(f1s)
		pLitPool.Put(remap)
		pI32Pool.Put(level)
		pI32Pool.Put(partOf)
		pU64Pool.Put(keys)
	}()
	for v := 0; v <= nPI; v++ {
		remap[v] = aig.MakeLit(int32(v), false)
	}

	poGlobal := make([]aig.Lit, base.NumPOs())
	poSet := make([]bool, base.NumPOs())
	errs := make([]error, nParts)
	partMaxLev := make([]int32, nParts)

	// Phase 1: parallel concatenation. Each partition translates its cone
	// into the shared gid space; inputs are base PIs, so partitions touch
	// only their reserved range (plus their own PO slots).
	tasks := make([]func(), nParts)
	for pi := range parts {
		pi, p, c := pi, parts[pi], chosen[pi]
		tasks[pi] = func() {
			if c.NumPIs() != len(p.inputs) {
				errs[pi] = fmt.Errorf("partition: part %d cone has %d PIs, want %d", pi, c.NumPIs(), len(p.inputs))
				return
			}
			if c.NumPOs() != len(p.outputs)+len(p.poIdx) {
				errs[pi] = fmt.Errorf("partition: part %d cone has %d POs, want %d",
					pi, c.NumPOs(), len(p.outputs)+len(p.poIdx))
				return
			}
			if len(p.outputs) != 0 {
				errs[pi] = fmt.Errorf("partition: part %d exports boundary outputs in cones mode", pi)
				return
			}
			local := pLitPool.Get(c.NumObjs())
			defer pLitPool.Put(local)
			local[0] = aig.ConstFalse
			for j, in := range p.inputs {
				if int(in) > nPI {
					errs[pi] = fmt.Errorf("partition: part %d input node %d is not a PI", pi, in)
					return
				}
				local[j+1] = aig.MakeLit(in, false)
			}
			gid := int32(offs[pi])
			maxLev := int32(0)
			for id := int32(c.NumPIs() + 1); int(id) < c.NumObjs(); id++ {
				if c.IsDeleted(id) {
					continue
				}
				cf0, cf1 := c.Fanin0(id), c.Fanin1(id)
				g0 := local[cf0.Var()].NotCond(cf0.IsCompl())
				g1 := local[cf1.Var()].NotCond(cf1.IsCompl())
				f0s[gid], f1s[gid] = g0, g1
				lev := level[g0.Var()]
				if l1 := level[g1.Var()]; l1 > lev {
					lev = l1
				}
				lev++
				level[gid] = lev
				if lev > maxLev {
					maxLev = lev
				}
				partOf[gid] = int32(pi)
				local[id] = aig.MakeLit(gid, false)
				gid++
			}
			partMaxLev[pi] = maxLev
			for j, po := range p.poIdx {
				l := c.PO(len(p.outputs) + j)
				if epv := l.Var(); int(epv) < c.NumObjs() {
					poGlobal[po] = local[epv].NotCond(l.IsCompl())
					poSet[po] = true
				}
			}
		}
	}
	pool.Execute(tasks)
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	maxLev := int32(0)
	for _, l := range partMaxLev {
		if l > maxLev {
			maxLev = l
		}
	}

	// Bucket gids by level (counting sort keeps gid order within a level, so
	// batches are deterministic).
	nNodes := totalLen - (1 + nPI)
	order := pI32Pool.Get(nNodes)
	defer pI32Pool.Put(order)
	start := make([]int, maxLev+2)
	for gid := 1 + nPI; gid < totalLen; gid++ {
		start[level[gid]+1]++
	}
	for l := 1; l <= int(maxLev); l++ {
		start[l+1] += start[l]
	}
	fill := make([]int, maxLev+1)
	copy(fill, start[:maxLev+1])
	for gid := 1 + nPI; gid < totalLen; gid++ {
		l := level[gid]
		order[fill[l]] = int32(gid)
		fill[l]++
	}

	ht := acquireStitchTable(nNodes + 16)
	defer stitchTablePool.Put(ht)
	conflicts32 := make([]int32, nParts)

	// Phase 2: level-synchronous merge. Pass A finalizes each node's fanins
	// against the remap of the levels below, simplifies trivial nodes, and
	// registers survivors in the merge table; pass B resolves every node to
	// its class winner. Pass A is idempotent (InsertMin is monotone), so a
	// full table retries the batch after a rehash, like the dedup pass.
	for lev := int32(1); lev <= maxLev; lev++ {
		batch := order[start[lev]:start[lev+1]]
		if len(batch) == 0 {
			continue
		}
		for {
			var full atomic.Bool
			chunked(pool, len(batch), func(lo, hi int) {
				for _, gid := range batch[lo:hi] {
					l0 := f0s[gid]
					l1 := f1s[gid]
					g0 := remap[l0.Var()].NotCond(l0.IsCompl())
					g1 := remap[l1.Var()].NotCond(l1.IsCompl())
					if lit, ok := aig.SimplifyAnd(g0, g1); ok {
						remap[gid] = lit
						keys[gid] = 0 // trivial: no table entry
						continue
					}
					if g0 > g1 {
						g0, g1 = g1, g0
					}
					f0s[gid], f1s[gid] = g0, g1
					k := aig.Key(g0, g1)
					keys[gid] = k
					// A class that first appeared at an earlier level keeps
					// its established winner: later duplicates must not
					// lower the stored id, or nodes that already resolved
					// would silently split from their class.
					if w, ok := ht.Query(k); ok && level[w] < lev {
						continue
					}
					if err := ht.InsertMin(k, uint32(gid)); err != nil {
						full.Store(true)
						return
					}
				}
			})
			if !full.Load() {
				break
			}
			ht.Rehash(2*ht.Len() + len(batch))
		}
		chunked(pool, len(batch), func(lo, hi int) {
			for _, gid := range batch[lo:hi] {
				k := keys[gid]
				if k == 0 {
					atomic.AddInt32(&conflicts32[partOf[gid]], 1)
					continue // trivial, remapped in pass A
				}
				w, ok := ht.Query(k)
				if !ok {
					panic("partition: merge table lost a key")
				}
				if int32(w) == gid {
					remap[gid] = aig.MakeLit(gid, false)
					continue
				}
				remap[gid] = aig.MakeLit(int32(w), false)
				atomic.AddInt32(&conflicts32[partOf[gid]], 1)
			}
		})
	}

	// Final replay: winners only, in level order (a winner's finalized
	// fanins may carry a numerically higher gid from an earlier level, so id
	// order is not topological here). No hashing — the merge already
	// guaranteed uniqueness — and Compact drops the replay leftovers.
	gmap := pLitPool.Get(totalLen)
	defer pLitPool.Put(gmap)
	for v := 0; v <= nPI; v++ {
		gmap[v] = aig.MakeLit(int32(v), false)
	}
	out := aig.NewCap(nPI, totalLen)
	for _, gid := range order[:nNodes] {
		if remap[gid] != aig.MakeLit(gid, false) {
			continue // merged or simplified away
		}
		o0 := gmap[f0s[gid].Var()].NotCond(f0s[gid].IsCompl())
		o1 := gmap[f1s[gid].Var()].NotCond(f1s[gid].IsCompl())
		gmap[gid] = out.AddAndUnchecked(o0, o1)
	}
	for i := 0; i < base.NumPOs(); i++ {
		var l aig.Lit
		if poSet[i] {
			g := poGlobal[i]
			r := remap[g.Var()].NotCond(g.IsCompl())
			l = gmap[r.Var()].NotCond(r.IsCompl())
		} else {
			p := base.PO(i)
			if int(p.Var()) > nPI {
				return nil, nil, fmt.Errorf("partition: PO %d driver node %d not stitched", i, p.Var())
			}
			l = p
		}
		out.AddPO(l)
	}
	final, _ := out.Compact()
	final.Name = base.Name

	conflicts := make([]int, nParts)
	for i, c := range conflicts32 {
		conflicts[i] = int(c)
	}
	return final, conflicts, nil
}
