package partition

import (
	"fmt"

	"aigre/internal/aig"
	"aigre/internal/sched"
)

// part is one partition of the base network, described in base node ids.
type part struct {
	index int
	// inputs are the boundary driver nodes feeding the partition, in the
	// order the extracted cone's PIs are laid out: original PIs in cones
	// mode, PIs and lower-window AND nodes in levels mode.
	inputs []int32
	// members are the partition's AND nodes in topological order.
	members []int32
	// outputs are the member nodes whose functions the partition exports to
	// higher windows or POs (levels mode; empty in cones mode).
	outputs []int32
	// poIdx are the original PO indices the partition drives (cones mode;
	// empty in levels mode, where POs resolve through the boundary map).
	poIdx []int
	// levelLo/levelHi is the level range (levels mode).
	levelLo, levelHi int
}

// buildCones clusters primary outputs greedily into size-bounded partitions:
// POs are taken in order, each PO's fanin cone is added to the current
// cluster, and the cluster is closed when adding the next cone would push it
// past target (an oversize single cone still becomes one partition). Logic
// shared between clusters is duplicated into each; the stitcher merges the
// copies back by re-strashing.
func buildCones(a *aig.AIG, target int) []*part {
	nobj := a.NumObjs()
	mark := make([]int32, nobj)  // node -> cluster number (1-based; 0 = none)
	probe := make([]int32, nobj) // probe epoch, one per measured PO
	var stack []int32
	var parts []*part
	var cur *part
	cluster := int32(0)
	probeID := int32(0)

	flush := func() {
		if cur != nil && len(cur.members) > 0 {
			parts = append(parts, cur)
		}
		cur = nil
	}
	open := func() {
		cluster++
		cur = &part{index: len(parts)}
	}

	for i := 0; i < a.NumPOs(); i++ {
		root := a.PO(i).Var()
		if !a.IsAnd(root) {
			continue // const/PI-driven POs map directly at stitch time
		}
		if cur == nil {
			open()
		}
		// Probe: how many AND nodes would this cone add to the cluster?
		probeID++
		added := 0
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !a.IsAnd(id) || mark[id] == cluster || probe[id] == probeID {
				continue
			}
			probe[id] = probeID
			added++
			stack = append(stack, a.Fanin0(id).Var(), a.Fanin1(id).Var())
		}
		if len(cur.members) > 0 && len(cur.members)+added > target {
			flush()
			open()
		}
		commitCone(a, root, cluster, mark, cur, &stack)
		cur.poIdx = append(cur.poIdx, i)
		if len(cur.members) >= target {
			flush()
		}
	}
	flush()
	return parts
}

// commitCone adds the fanin cone of root to the cluster: a postorder DFS
// appends unassigned AND nodes to cur.members (topological within the
// cluster) and records first-seen support PIs as cluster inputs.
func commitCone(a *aig.AIG, root, cluster int32, mark []int32, cur *part, stackp *[]int32) {
	stack := append((*stackp)[:0], root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		if mark[id] == cluster {
			stack = stack[:len(stack)-1]
			continue
		}
		if !a.IsAnd(id) {
			mark[id] = cluster
			if a.IsPI(id) {
				cur.inputs = append(cur.inputs, id)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if v0 := a.Fanin0(id).Var(); mark[v0] != cluster {
			stack = append(stack, v0)
			continue
		}
		if v1 := a.Fanin1(id).Var(); mark[v1] != cluster {
			stack = append(stack, v1)
			continue
		}
		mark[id] = cluster
		cur.members = append(cur.members, id)
		stack = stack[:len(stack)-1]
	}
	*stackp = stack
}

// buildWindows slices the network into contiguous level windows of about
// target AND nodes each. Every live AND node lands in exactly one window
// (no duplication); a window's inputs are the PIs and lower-window nodes its
// members read, and its outputs are the members read by higher windows or
// POs.
func buildWindows(a *aig.AIG, target int) []*part {
	levels := a.NodeLevels()
	maxLev := int32(0)
	a.ForEachAnd(func(id int32) {
		if levels[id] > maxLev {
			maxLev = levels[id]
		}
	})
	if maxLev == 0 {
		return nil // no AND logic
	}
	count := make([]int, maxLev+1)
	a.ForEachAnd(func(id int32) { count[levels[id]]++ })

	// Greedy contiguous windows: accumulate levels until the target is met.
	winOf := make([]int32, maxLev+1)
	var parts []*part
	acc, lo := 0, 1
	for l := 1; l <= int(maxLev); l++ {
		winOf[l] = int32(len(parts))
		acc += count[l]
		if acc >= target && l < int(maxLev) {
			parts = append(parts, &part{index: len(parts), levelLo: lo, levelHi: l})
			lo, acc = l+1, 0
		}
	}
	parts = append(parts, &part{index: len(parts), levelLo: lo, levelHi: int(maxLev)})

	// Membership in id order: the base network is in canonical topological
	// id order, so members sorted by id are topological within the window.
	a.ForEachAnd(func(id int32) {
		p := parts[winOf[levels[id]]]
		p.members = append(p.members, id)
	})

	// Outputs: members referenced from a different (necessarily higher)
	// window, or driving a PO.
	isOut := make([]bool, a.NumObjs())
	a.ForEachAnd(func(id int32) {
		w := winOf[levels[id]]
		for _, f := range [2]aig.Lit{a.Fanin0(id), a.Fanin1(id)} {
			if v := f.Var(); a.IsAnd(v) && winOf[levels[v]] != w {
				isOut[v] = true
			}
		}
	})
	for _, p := range a.POs() {
		if v := p.Var(); a.IsAnd(v) {
			isOut[v] = true
		}
	}

	// Inputs (deduplicated per window) and the window's own output list.
	seen := make([]int32, a.NumObjs()) // window number + 1
	for _, p := range parts {
		w := int32(p.index)
		for _, id := range p.members {
			for _, f := range [2]aig.Lit{a.Fanin0(id), a.Fanin1(id)} {
				v := f.Var()
				if v == 0 || (a.IsAnd(v) && winOf[levels[v]] == w) {
					continue // constant, or an in-window fanin
				}
				if seen[v] == w+1 {
					continue
				}
				seen[v] = w + 1
				p.inputs = append(p.inputs, v)
			}
			if isOut[id] {
				p.outputs = append(p.outputs, id)
			}
		}
	}
	return parts
}

// extractAll builds each partition's standalone cone: a fresh AIG whose PIs
// are the partition inputs (in order), whose AND nodes replay the members,
// and whose POs export first the outputs (regular polarity), then the
// original PO literals of poIdx. The extracted cone doubles as the
// checkpoint the partition rolls back to.
//
// Extraction is a pure read of the base network, so the partitions fan out
// over the pool; each task's translation scratch comes from the shared
// free-lists (one dirty literal array gated by a zeroed seen array, the same
// epoch discipline the sequential version used).
func extractAll(base *aig.AIG, parts []*part, pool *sched.Pool) []*aig.AIG {
	nobj := base.NumObjs()
	cones := make([]*aig.AIG, len(parts))
	tasks := make([]func(), len(parts))
	for pi := range parts {
		pi, p := pi, parts[pi]
		tasks[pi] = func() {
			local := pLitPool.Get(nobj)
			seen := pI32Pool.GetZeroed(nobj)
			defer func() {
				pLitPool.Put(local)
				pI32Pool.Put(seen)
			}()
			c := aig.NewCap(len(p.inputs), len(p.inputs)+1+len(p.members))
			c.Name = fmt.Sprintf("%s.part%d", base.Name, pi)
			local[0], seen[0] = aig.ConstFalse, 1
			for j, in := range p.inputs {
				local[in], seen[in] = c.PI(j), 1
			}
			at := func(f aig.Lit) aig.Lit {
				if seen[f.Var()] == 0 {
					panic(fmt.Sprintf("partition: part %d member references unextracted node %d", pi, f.Var()))
				}
				return local[f.Var()].NotCond(f.IsCompl())
			}
			for _, id := range p.members {
				lit := c.AddAndUnchecked(at(base.Fanin0(id)), at(base.Fanin1(id)))
				local[id], seen[id] = lit, 1
			}
			for _, outID := range p.outputs {
				c.AddPO(local[outID])
			}
			for _, po := range p.poIdx {
				l := base.PO(po)
				c.AddPO(at(l))
			}
			cones[pi] = c
		}
	}
	pool.Execute(tasks)
	return cones
}
