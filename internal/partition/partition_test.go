package partition

import (
	"context"
	"math/rand"
	"testing"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/cec"
	"aigre/internal/flow"
	"aigre/internal/sched"
)

// fullCEC asserts functional equivalence with the complete checker (random
// refutation, exhaustive simulation, SAT sweeping) — no sampling shortcuts.
func fullCEC(t *testing.T, a, b *aig.AIG) {
	t.Helper()
	res, err := cec.Check(a, b, cec.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("networks differ on PO %d (%s)", res.FailingOutput, res.Method)
	}
}

func TestPartitionModesEquivalence(t *testing.T) {
	// Cones mode needs many POs to cluster; levels mode needs depth.
	circuits := map[Mode][]string{
		Cones:  {"multiplier", "mem_ctrl", "ac97_ctrl"},
		Levels: {"voter", "sin", "mem_ctrl"},
	}
	for mode, names := range circuits {
		for _, name := range names {
			mode, name := mode, name
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				a, ok := bench.ByName(name, 1)
				if !ok {
					t.Fatalf("unknown circuit %q", name)
				}
				res, err := Run(context.Background(), a, "b; rw", Options{
					Mode:       mode,
					TargetSize: a.NumAnds()/6 + 1,
					Workers:    4,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Parts) < 2 {
					t.Fatalf("expected multiple partitions, got %d", len(res.Parts))
				}
				if err := aig.Check(res.AIG); err != nil {
					t.Fatal(err)
				}
				fullCEC(t, a, res.AIG)
				if mode == Levels {
					if res.SharedNodes != 0 {
						t.Errorf("levels mode duplicated %d nodes", res.SharedNodes)
					}
					// Without duplication, partitioned optimization never
					// grows the network (cones mode may: duplicated shared
					// logic can diverge structurally and stop re-merging).
					if res.NodesOut > res.NodesIn {
						t.Errorf("optimization grew the network: %d -> %d", res.NodesIn, res.NodesOut)
					}
				}
			})
		}
	}
}

// TestStitchCheckpointIdentity pins the rollback contract's foundation: a
// stitch of nothing but pre-optimization cones must reproduce the base
// network's function exactly, in both modes.
func TestStitchCheckpointIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := aig.Random(rng, 12, 600, 9)
	pool := sched.NewPool(2)
	defer pool.Close()
	for _, mode := range []Mode{Cones, Levels} {
		var parts []*part
		if mode == Cones {
			parts = buildCones(a, 120)
		} else {
			parts = buildWindows(a, 120)
		}
		pres := extractAll(a, parts, pool)
		merged, _, err := stitch(a, parts, pres)
		if err != nil {
			t.Fatal(err)
		}
		if err := aig.Check(merged); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		fullCEC(t, a, merged)
		if mode == Cones {
			pmerged, _, err := stitchParallel(a, parts, pres, pool)
			if err != nil {
				t.Fatal(err)
			}
			if err := aig.Check(pmerged); err != nil {
				t.Fatalf("%v parallel: %v", mode, err)
			}
			fullCEC(t, a, pmerged)
		}
	}
}

// TestResolveRollsBackCorruptPartition injects a functionally wrong
// "optimized" cone (a complemented PO) past the local gate and checks that
// the seam gate catches it, rolls exactly that partition back, and still
// produces an equivalent network.
func TestResolveRollsBackCorruptPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := aig.Random(rng, 10, 500, 8)
	parts := buildCones(a, 100)
	if len(parts) < 2 {
		t.Fatalf("expected multiple partitions, got %d", len(parts))
	}
	pool := sched.NewPool(2)
	defer pool.Close()
	pres := extractAll(a, parts, pool)
	chosen := make([]*aig.AIG, len(parts))
	copy(chosen, pres)
	bad := chosen[1].Clone()
	bad.SetPO(0, bad.PO(0).Not())
	chosen[1] = bad

	res := Result{Parts: make([]PartStat, len(parts))}
	merged, err := resolve(a, parts, pres, chosen, resolveConfig{rounds: 4, maxRounds: 2, seed: 5}, &res)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollbacks == 0 || !res.Parts[1].RolledBack {
		t.Errorf("corrupt partition not rolled back: %+v", res.Parts[1])
	}
	if res.StitchRounds < 2 {
		t.Errorf("expected at least 2 stitch rounds, got %d", res.StitchRounds)
	}
	fullCEC(t, a, merged)
}

// TestPartitionStressRace is the check.sh -race stress row: 8 partitions
// racing over a 2-worker pool in parallel mode, sharing one cache, must
// produce an equivalent network.
func TestPartitionStressRace(t *testing.T) {
	a, ok := bench.ByName("ac97_ctrl", 1)
	if !ok {
		t.Fatal("ac97_ctrl missing from suite")
	}
	res, err := Run(context.Background(), a, "b; rw; rwz", Options{
		Mode:       Cones,
		TargetSize: a.NumAnds()/8 + 1,
		Workers:    2,
		Flow:       flow.Config{Parallel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) < 2 {
		t.Fatalf("expected several partitions, got %d", len(res.Parts))
	}
	fullCEC(t, a, res.AIG)
}

func TestPartitionCancellation(t *testing.T) {
	a, ok := bench.ByName("sin", 1)
	if !ok {
		t.Fatal("sin missing from suite")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, a, "b; rw", Options{Mode: Cones, TargetSize: 500, Workers: 2})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if res.AIG != a {
		t.Error("cancelled run should hand back the original network")
	}
}

// TestPartitionEditedInput pins the canonicalization path: a network with
// deleted nodes and non-topological ids from in-place editing partitions
// and stitches correctly.
func TestPartitionEditedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := aig.Random(rng, 8, 300, 6)
	a.EnableStrash()
	a.EnableFanouts()
	for k := 0; k < 5; k++ {
		var live []int32
		a.ForEachAnd(func(id int32) { live = append(live, id) })
		if len(live) == 0 {
			break
		}
		id := live[rng.Intn(len(live))]
		a.ReplaceNode(id, a.Fanin0(id))
	}
	res, err := Run(context.Background(), a, "b", Options{Mode: Levels, TargetSize: 60, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fullCEC(t, a.Rehash(), res.AIG)
}
