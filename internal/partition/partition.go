// Package partition implements partition-parallel optimization of large
// AIGs. The network is split into size-bounded partitions — output-cone
// clusters or level-window slices — each partition is optimized as an
// independent prioritized job on the batch engine (internal/sched, largest
// partition first, sharing one resynthesis cache), and the optimized
// partitions are stitched back together with conflict breaking at the
// seams: duplicate structure created by independent jobs is merged by
// re-strashing the whole network during the replay, and the stitched result
// must pass the structural invariant check plus the sampling-equivalence
// gate of the guarded flow runner. A partition that refutes is rolled back
// to its pre-optimization cone.
//
// This is the layer that turns the batch engine's many-small-jobs
// parallelism into one-huge-job parallelism ("Parallel AIG Refactoring via
// Conflict Breaking" supplies the recipe): the script commands themselves
// parallelize only within a level, so a deep, narrow million-node AIG
// starves kernel-level parallelism — but its output cones are embarrassingly
// parallel jobs.
package partition

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"

	"aigre/internal/aig"
	"aigre/internal/flow"
	"aigre/internal/journal"
	"aigre/internal/rcache"
	"aigre/internal/sched"
)

// Mode selects how the network is split.
type Mode int

const (
	// Cones clusters primary outputs greedily: each partition is the union
	// of consecutive PO fanin cones, closed under fanin (its only inputs are
	// PIs). Logic shared between clusters is duplicated into each — the
	// stitcher's re-strashing merges the copies back.
	Cones Mode = iota
	// Levels slices the network into contiguous level windows: each
	// partition holds every AND node whose level falls in its range, its
	// inputs are PIs and lower-window nodes, and it exports the nodes that
	// higher windows or POs read.
	Levels
)

func (m Mode) String() string {
	switch m {
	case Cones:
		return "cones"
	case Levels:
		return "levels"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures a partition-parallel run.
type Options struct {
	// Mode selects the partitioning strategy.
	Mode Mode
	// TargetSize is the partition size bound in AND nodes (default 100000).
	// A single PO cone larger than the bound still becomes one partition.
	TargetSize int
	// MaxConflictRounds bounds the stitch/rollback loop: each round that the
	// merged network fails the seam gate rolls back at least one refuted
	// partition and re-stitches; past the bound every remaining optimized
	// partition is rolled back at once (default 2).
	MaxConflictRounds int
	// Workers is the host worker budget: the pool size backing the
	// partition jobs and the bound on concurrently running jobs
	// (0 = GOMAXPROCS, or the shared pool's size when Pool is set).
	Workers int
	// Pool, when non-nil, is a shared worker pool to draw from instead of a
	// private one (the batch engine passes its own so a partitioned job
	// cannot oversubscribe the host). The pool is not closed by Run.
	Pool *sched.Pool
	// Flow is the per-partition execution config (mode, cut limits, gate
	// settings, cache). Flow.Device is ignored: parallel partitions lease
	// device capacity from the pool. Flow.Cache is shared across every
	// partition job (nil = rcache.Default).
	Flow flow.Config
	// Seed makes the gate sampling deterministic (0 = 1).
	Seed int64
	// Supervise is the supervision policy for the per-partition jobs
	// (deadline, retry budget, watchdog). A partitioned batch job passes a
	// policy whose Budget is shared with its own outer attempts, so
	// per-partition retries draw down the job's allowance rather than
	// multiplying it by the partition count.
	Supervise sched.Policy
	// Journal, when non-nil, receives the partition jobs' supervision
	// events (and this layer's seam-gate rollback incidents go to the
	// aggregated Result.Incidents regardless).
	Journal *journal.Journal
}

func (o Options) normalized() Options {
	if o.TargetSize <= 0 {
		o.TargetSize = 100_000
	}
	if o.TargetSize < 16 {
		o.TargetSize = 16
	}
	if o.MaxConflictRounds <= 0 {
		o.MaxConflictRounds = 2
	}
	if o.Workers <= 0 {
		if o.Pool != nil {
			o.Workers = o.Pool.Workers()
		} else {
			o.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Flow.Cache == nil {
		o.Flow.Cache = rcache.Default
	}
	o.Flow.Device = nil
	return o
}

// PartStat reports one partition of a run.
type PartStat struct {
	Index int `json:"index"`
	// POs is the number of primary outputs the partition drives (cones
	// mode); LevelLo/LevelHi is the level range (levels mode).
	POs     int `json:"pos,omitempty"`
	LevelLo int `json:"level_lo,omitempty"`
	LevelHi int `json:"level_hi,omitempty"`
	// NodesIn and NodesOut count the partition's AND nodes before
	// optimization and as finally stitched (after any rollback).
	NodesIn  int `json:"nodes_in"`
	NodesOut int `json:"nodes_out"`
	// Conflicts is the number of seam conflicts broken while replaying this
	// partition into the merged network in the final stitch round: nodes
	// merged with already-present duplicates or simplified away.
	Conflicts int `json:"conflicts_broken"`
	// RolledBack reports that the partition's optimized cone was discarded
	// (job failure, local gate refutation, or seam-round refutation) and the
	// pre-optimization cone stitched instead; Note carries the reason.
	RolledBack bool   `json:"rolled_back,omitempty"`
	Note       string `json:"note,omitempty"`
	// Queued and Wall are the partition job's scheduling delay and host run
	// time; Incidents counts contained failures inside the job; Attempts is
	// how many supervised attempts the job took (1 with no retries).
	Queued    time.Duration `json:"queued_ns"`
	Wall      time.Duration `json:"wall_ns"`
	Incidents int           `json:"incidents,omitempty"`
	Attempts  int           `json:"attempts,omitempty"`
}

// Result is the outcome of a partition-parallel run.
type Result struct {
	// AIG is the stitched optimized network (the original input when the
	// run was cancelled).
	AIG   *aig.AIG
	Mode  Mode
	Parts []PartStat
	// NodesIn/NodesOut are whole-network AND counts before and after.
	NodesIn, NodesOut int
	// SharedNodes is the duplication cost of the split: the sum of
	// partition sizes minus the live network size (cones mode duplicates
	// logic shared between clusters; levels mode never duplicates).
	SharedNodes int
	// ConflictsFound counts seam conflicts detected across every stitch
	// round; ConflictsBroken those resolved in the final accepted stitch.
	ConflictsFound, ConflictsBroken int
	// Rollbacks counts partitions whose optimized cone was discarded.
	Rollbacks int
	// StitchRounds is the number of stitch attempts (1 = no seam refutation).
	StitchRounds int
	Wall         time.Duration
	Modeled      time.Duration
	// Incidents aggregates the contained failures of every partition job.
	Incidents []flow.Incident
	// CacheStats is the shared resynthesis-cache traffic during the run.
	CacheStats rcache.Stats
}

// Run optimizes a with the script, partition-parallel. The input is never
// mutated. The returned network is functionally equivalent to the input as
// screened by the same gates the guarded flow runner uses (sampling by
// default, full CEC when Flow.Verify is set); any partition that fails its
// gate is stitched from its pre-optimization cone instead.
func Run(ctx context.Context, a *aig.AIG, script string, opts Options) (Result, error) {
	if _, err := flow.Parse(script); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalized()
	start := time.Now()
	cacheBefore := opts.Flow.Cache.Snapshot()

	// Partitioning assumes canonical id order; in-place-edited inputs are
	// compacted first (POs and functions preserved).
	base := a
	if !canonicalOrder(a) {
		base, _ = a.Compact()
	}

	res := Result{Mode: opts.Mode, NodesIn: base.NumAnds()}
	finish := func() {
		res.Wall = time.Since(start)
		res.CacheStats = opts.Flow.Cache.Snapshot().Sub(cacheBefore)
	}

	var parts []*part
	switch opts.Mode {
	case Cones:
		parts = buildCones(base, opts.TargetSize)
	case Levels:
		parts = buildWindows(base, opts.TargetSize)
	default:
		return Result{}, fmt.Errorf("partition: unknown mode %v", opts.Mode)
	}
	for _, p := range parts {
		res.SharedNodes += len(p.members)
	}
	res.SharedNodes -= base.NumAnds()

	pool := opts.Pool
	if pool == nil {
		pool = sched.NewPool(opts.Workers)
		defer pool.Close()
	}

	// Profiler labels mark the orchestration phases (the per-partition jobs
	// themselves are labeled by the engine): a CPU profile of a partitioned
	// run separates extraction, optimization, and seam stitching.
	var pres []*aig.AIG
	pprof.Do(ctx, pprof.Labels("partition_phase", "extract"), func(context.Context) {
		pres = extractAll(base, parts, pool)
	})
	jobs := make([]sched.Job, len(parts))
	for i, p := range parts {
		jobs[i] = sched.Job{
			Name:     pres[i].Name,
			AIG:      pres[i],
			Script:   script,
			Priority: len(p.members), // largest partition first (LPT)
			Config:   opts.Flow,
		}
	}
	results, _ := sched.RunSupervised(ctx, pool, jobs, sched.Options{
		MaxConcurrentJobs: opts.Workers,
		Policy:            opts.Supervise,
		Journal:           opts.Journal,
	})

	gateRounds := opts.Flow.GateRounds
	if gateRounds == 0 {
		gateRounds = 4
	}
	chosen := make([]*aig.AIG, len(parts))
	res.Parts = make([]PartStat, len(parts))
	for i, r := range results {
		if r.Cancelled || ctx.Err() != nil {
			res.AIG = a
			finish()
			err := r.Err
			if err == nil {
				err = ctx.Err()
			}
			return res, fmt.Errorf("partition: cancelled: %w", err)
		}
		st := &res.Parts[i]
		st.Index = i
		st.POs = len(parts[i].poIdx)
		st.LevelLo, st.LevelHi = parts[i].levelLo, parts[i].levelHi
		st.NodesIn = pres[i].NumAnds()
		st.Queued, st.Wall = r.Queued, r.Wall
		st.Incidents = len(r.Incidents)
		st.Attempts = r.Attempts
		res.Incidents = append(res.Incidents, r.Incidents...)
		res.Modeled += r.Modeled
		if r.Err != nil {
			// Defensive: flow.Run fails only on parse or cancellation, both
			// handled above — but a failed job must never corrupt the stitch.
			chosen[i] = pres[i]
			st.RolledBack = true
			st.Note = r.Err.Error()
			res.Rollbacks++
			continue
		}
		// Local gate: the partition alone must already be equivalent to its
		// pre-optimization cone before it is allowed near the seams.
		seed := opts.Seed + int64(i)*7919 + 101
		if err := flow.EquivGate(pres[i], r.AIG, opts.Flow.Verify, gateRounds, seed); err != nil {
			chosen[i] = pres[i]
			st.RolledBack = true
			st.Note = err.Error()
			res.Rollbacks++
			res.Incidents = append(res.Incidents,
				rollbackIncident(i, "equivalence", flow.ClassPermanent, err.Error()))
			continue
		}
		chosen[i] = r.AIG
	}

	var merged *aig.AIG
	var err error
	pprof.Do(ctx, pprof.Labels("partition_phase", "stitch"), func(context.Context) {
		merged, err = resolve(base, parts, pres, chosen, resolveConfig{
			verify:    opts.Flow.Verify,
			rounds:    gateRounds,
			maxRounds: opts.MaxConflictRounds,
			seed:      opts.Seed,
			mode:      opts.Mode,
			pool:      pool,
		}, &res)
	})
	if err != nil {
		res.AIG = a
		finish()
		return res, err
	}
	for i := range res.Parts {
		res.Parts[i].NodesOut = chosen[i].NumAnds()
	}
	res.AIG = merged
	res.NodesOut = merged.NumAnds()
	finish()
	return res, nil
}

// canonicalOrder reports whether the network has no deleted nodes and every
// fanin id is below its node id (the invariant the builders walk under).
func canonicalOrder(a *aig.AIG) bool {
	if a.NumObjs() != a.NumPIs()+1+a.NumAnds() {
		return false
	}
	ok := true
	a.ForEachAnd(func(id int32) {
		if a.Fanin0(id).Var() >= id || a.Fanin1(id).Var() >= id {
			ok = false
		}
	})
	return ok
}
