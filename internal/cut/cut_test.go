package cut

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/truth"
)

// buildDiamond creates a small reconvergent AIG:
// n1=a&b, n2=b&c, n3=n1&n2, PO=n3.
func buildDiamond() (*aig.AIG, aig.Lit) {
	a := aig.New(3)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(a.PI(1), a.PI(2))
	n3 := a.NewAnd(n1, n2)
	a.AddPO(n3)
	return a, n3
}

func TestReconvCutFindsReconvergence(t *testing.T) {
	a, n3 := buildDiamond()
	r := NewReconv(a)
	leaves := r.Cut(n3.Var(), 3)
	// Expanding through both n1 and n2 reaches {a,b,c}: 3 leaves for a
	// 3-node cone thanks to reconvergence on b.
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v", leaves)
	}
	seen := map[int32]bool{}
	for _, l := range leaves {
		seen[l] = true
	}
	for i := 0; i < 3; i++ {
		if !seen[a.PI(i).Var()] {
			t.Errorf("PI %d missing from cut %v", i, leaves)
		}
	}
}

func TestReconvCutRespectsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := aig.Random(rng, 10, 300, 5)
	r := NewReconv(a)
	for _, k := range []int{2, 4, 8, 12} {
		a.ForEachAnd(func(id int32) {
			leaves := r.Cut(id, k)
			if len(leaves) > k {
				t.Fatalf("cut size %d exceeds limit %d", len(leaves), k)
			}
		})
	}
}

func TestReconvCutIsCut(t *testing.T) {
	// Every PI-to-root path must pass through a leaf: equivalently, the
	// cone truth over the leaves must reproduce the root function.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 100, 3)
		r := NewReconv(a)
		ok := true
		a.ForEachAnd(func(id int32) {
			if !ok {
				return
			}
			leaves := r.Cut(id, 6)
			tt := ConeTruth(a, aig.MakeLit(id, false), leaves)
			// Verify by simulation: for random PI assignments, evaluating
			// the cone truth on leaf values must equal the node value.
			for trial := 0; trial < 8; trial++ {
				in := make([]bool, a.NumPIs())
				for i := range in {
					in[i] = rng.Intn(2) == 0
				}
				vals := evalAll(a, in)
				m := 0
				for i, l := range leaves {
					if vals[l] {
						m |= 1 << i
					}
				}
				if tt.Bit(m) != vals[id] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// evalAll computes the value of every node for one input assignment.
func evalAll(a *aig.AIG, in []bool) []bool {
	vals := make([]bool, a.NumObjs())
	for i := 0; i < a.NumPIs(); i++ {
		vals[i+1] = in[i]
	}
	for _, id := range a.TopoOrder(false) {
		f0, f1 := a.Fanin0(id), a.Fanin1(id)
		v0 := vals[f0.Var()] != f0.IsCompl()
		v1 := vals[f1.Var()] != f1.IsCompl()
		vals[id] = v0 && v1
	}
	return vals
}

func TestConeNodesTopological(t *testing.T) {
	a, n3 := buildDiamond()
	leaves := []int32{a.PI(0).Var(), a.PI(1).Var(), a.PI(2).Var()}
	nodes := ConeNodes(a, n3.Var(), leaves)
	if len(nodes) != 3 {
		t.Fatalf("cone = %v, want 3 nodes", nodes)
	}
	if nodes[len(nodes)-1] != n3.Var() {
		t.Errorf("root must come last: %v", nodes)
	}
}

func TestConeTruthComplementedRoot(t *testing.T) {
	a, n3 := buildDiamond()
	leaves := []int32{a.PI(0).Var(), a.PI(1).Var(), a.PI(2).Var()}
	tt := ConeTruth(a, n3.Not(), leaves)
	want := truth.New(3).And(truth.Var(3, 0), truth.Var(3, 1))
	want.And(want, truth.Var(3, 2)) // a&b & b&c == a&b&c
	want.Not(want)
	if !tt.Equal(want) {
		t.Errorf("complemented cone truth wrong")
	}
}

func TestEnumCuts4Basic(t *testing.T) {
	a, n3 := buildDiamond()
	cuts := EnumCuts4(a, 8)
	cs := cuts[n3.Var()]
	if len(cs) == 0 {
		t.Fatal("no cuts for root")
	}
	// Must contain the PI cut {a,b,c} with truth a&b&c = 0x80 pattern over
	// 3 vars, padded to 4.
	found := false
	for _, c := range cs {
		if c.NLeaves == 3 {
			want := uint16(0x8080) // minterms where x0&x1&x2, any x3
			if c.TT == want {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("PI cut with correct truth not found: %+v", cs)
	}
}

func TestEnumCuts4TruthCorrect(t *testing.T) {
	// Cut truths carry circuit-consistent semantics (see Cut4 docs), so the
	// check evaluates realizable assignments: for random PI vectors, the
	// node's value must equal TT applied to the leaves' values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 5, 60, 2)
		cuts := EnumCuts4(a, 8)
		for trial := 0; trial < 16; trial++ {
			in := make([]bool, a.NumPIs())
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			vals := evalAll(a, in)
			bad := false
			a.ForEachAnd(func(id int32) {
				if bad {
					return
				}
				for _, c := range cuts[id] {
					if c.NLeaves == 0 {
						continue
					}
					m := 0
					for i, l := range c.LeafSlice() {
						if vals[l] {
							m |= 1 << i
						}
					}
					if (c.TT>>uint(m)&1 != 0) != vals[id] {
						bad = true
						return
					}
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEnumCuts4Limit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := aig.Random(rng, 8, 200, 4)
	for _, limit := range []int{2, 4, 8} {
		cuts := EnumCuts4(a, limit)
		a.ForEachAnd(func(id int32) {
			if len(cuts[id]) > limit {
				t.Fatalf("node %d has %d cuts, limit %d", id, len(cuts[id]), limit)
			}
		})
	}
}

func TestDominates(t *testing.T) {
	a := Cut4{Leaves: [4]int32{1, 3}, NLeaves: 2}
	b := Cut4{Leaves: [4]int32{1, 2, 3}, NLeaves: 3}
	if !dominates(&a, &b) {
		t.Errorf("{1,3} must dominate {1,2,3}")
	}
	if dominates(&b, &a) {
		t.Errorf("{1,2,3} must not dominate {1,3}")
	}
	c := Cut4{Leaves: [4]int32{1, 4}, NLeaves: 2}
	if dominates(&a, &c) || dominates(&c, &a) {
		t.Errorf("incomparable cuts")
	}
}
