package cut

import (
	"aigre/internal/aig"
	"aigre/internal/truth"
)

// Scratch amortizes cone-evaluation working memory: traversal-stamped node
// arrays replace the per-call maps of ConeTruth16/ConeTruth, and wide truth
// tables come from a per-leaf-count arena instead of truth.New. Results
// returned by ConeTruth are owned by the scratch and valid only until its
// next call. A Scratch is not safe for concurrent use; parallel kernels
// draw one per worker from a sync.Pool.
type Scratch struct {
	stamp  []int32 // node id -> trav when the node has a value this cone
	trav   int32
	val16  []uint16   // node value for the 16-bit path
	nodeTT []truth.TT // node value for the wide path
	stack  []int32

	// arenas[n] recycles truth tables for n-leaf cones. Reconvergence cut
	// sizes vary call to call, so one arena per leaf count keeps reuse
	// effective without reallocation churn.
	arenas [truth.MaxVars + 1]ttArena
}

type ttArena struct {
	free int
	tts  [][]uint64
}

// NewScratch returns an empty scratch; arrays grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) ensure(n int) {
	if n <= len(s.stamp) {
		return
	}
	c := 2 * len(s.stamp)
	if c < n {
		c = n
	}
	s.stamp = make([]int32, c)
	s.trav = 0
	if s.val16 != nil {
		s.val16 = make([]uint16, c)
	}
	if s.nodeTT != nil {
		s.nodeTT = make([]truth.TT, c)
	}
}

func (s *Scratch) allocTT(n int) truth.TT {
	ar := &s.arenas[n]
	if ar.free < len(ar.tts) {
		w := ar.tts[ar.free]
		ar.free++
		return truth.TT{NVars: n, Words: w}
	}
	w := make([]uint64, truth.WordCount(n))
	ar.tts = append(ar.tts, w)
	ar.free++
	return truth.TT{NVars: n, Words: w}
}

// ConeTruth16 is ConeTruth16 with scratch reuse: identical semantics,
// no allocation.
func (s *Scratch) ConeTruth16(a *aig.AIG, rootLit aig.Lit, leaves []int32) (uint16, bool) {
	var leafTT = [4]uint16{0xAAAA, 0xCCCC, 0xF0F0, 0xFF00}
	s.ensure(a.NumObjs())
	if s.val16 == nil {
		s.val16 = make([]uint16, len(s.stamp))
	}
	s.trav++
	s.stamp[0] = s.trav
	s.val16[0] = 0
	count := 1
	for i, l := range leaves {
		if s.stamp[l] != s.trav {
			count++
		}
		s.stamp[l] = s.trav
		s.val16[l] = leafTT[i]
	}
	root := rootLit.Var()
	st := s.stack[:0]
	defer func() { s.stack = st }()
	if s.stamp[root] != s.trav {
		st = append(st, root)
		for len(st) > 0 {
			cur := st[len(st)-1]
			if s.stamp[cur] == s.trav {
				st = st[:len(st)-1]
				continue
			}
			if !a.IsAnd(cur) {
				return 0, false // reached a PI outside the cut
			}
			f0, f1 := a.Fanin0(cur), a.Fanin1(cur)
			if s.stamp[f0.Var()] != s.trav {
				st = append(st, f0.Var())
				continue
			}
			if s.stamp[f1.Var()] != s.trav {
				st = append(st, f1.Var())
				continue
			}
			t0, t1 := s.val16[f0.Var()], s.val16[f1.Var()]
			if f0.IsCompl() {
				t0 = ^t0
			}
			if f1.IsCompl() {
				t1 = ^t1
			}
			s.val16[cur] = t0 & t1
			s.stamp[cur] = s.trav
			st = st[:len(st)-1]
			count++
			if count > 4096 {
				return 0, false // runaway cone: not a valid small cut
			}
		}
	}
	res := s.val16[root]
	if rootLit.IsCompl() {
		res = ^res
	}
	return res, true
}

// ConeTruth is ConeTruth with scratch reuse: identical semantics and bit
// patterns, no allocation in steady state. The returned table is owned by
// the scratch — callers must copy anything they keep past the next call.
func (s *Scratch) ConeTruth(a *aig.AIG, rootLit aig.Lit, leaves []int32) truth.TT {
	n := len(leaves)
	s.ensure(a.NumObjs())
	if s.nodeTT == nil {
		s.nodeTT = make([]truth.TT, len(s.stamp))
	}
	s.trav++
	s.arenas[n].free = 0
	s.stamp[0] = s.trav
	s.nodeTT[0] = s.allocTT(n).Fill(false)
	for i, l := range leaves {
		s.stamp[l] = s.trav
		s.nodeTT[l] = s.allocTT(n).SetVar(i)
	}
	root := rootLit.Var()
	st := s.stack[:0]
	if s.stamp[root] != s.trav {
		st = append(st, root)
		for len(st) > 0 {
			cur := st[len(st)-1]
			if s.stamp[cur] == s.trav {
				st = st[:len(st)-1]
				continue
			}
			if !a.IsAnd(cur) {
				panic("cut: cone escapes the leaf boundary")
			}
			f0, f1 := a.Fanin0(cur), a.Fanin1(cur)
			if s.stamp[f0.Var()] != s.trav {
				st = append(st, f0.Var())
				continue
			}
			if s.stamp[f1.Var()] != s.trav {
				st = append(st, f1.Var())
				continue
			}
			s.nodeTT[cur] = s.allocTT(n).AndCompl(
				s.nodeTT[f0.Var()], f0.IsCompl(),
				s.nodeTT[f1.Var()], f1.IsCompl())
			s.stamp[cur] = s.trav
			st = st[:len(st)-1]
		}
	}
	s.stack = st
	res := s.nodeTT[root]
	if rootLit.IsCompl() {
		// Complement into a fresh arena slot: the node's own table may be
		// shared with other fanouts inside the cone.
		return s.allocTT(n).Not(res)
	}
	return res
}

// ValidCut reports whether every path from root toward the PIs crosses the
// leaf set, visiting at most budget AND nodes — the revalidation used by
// sequential replacement, without the per-call maps.
func (s *Scratch) ValidCut(a *aig.AIG, root int32, leaves []int32, budget int) bool {
	s.ensure(a.NumObjs())
	s.trav++
	for _, l := range leaves {
		s.stamp[l] = s.trav
	}
	count := 0
	st := append(s.stack[:0], root)
	defer func() { s.stack = st }()
	for len(st) > 0 {
		cur := st[len(st)-1]
		st = st[:len(st)-1]
		if s.stamp[cur] == s.trav {
			continue
		}
		if !a.IsAnd(cur) {
			return false // escaped to a PI or constant
		}
		s.stamp[cur] = s.trav
		count++
		if count > budget {
			return false
		}
		st = append(st, a.Fanin0(cur).Var(), a.Fanin1(cur).Var())
	}
	return true
}
