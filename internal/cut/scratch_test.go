package cut

import (
	"math/rand"
	"testing"

	"aigre/internal/aig"
)

// TestScratchConeTruthMatchesMapVersion checks the scratch-based cone
// evaluation against the allocating reference implementation, bit for bit —
// the cache keys on these words, so any divergence would split cache entries
// or, worse, alias distinct functions.
func TestScratchConeTruthMatchesMapVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewScratch()
	for trial := 0; trial < 30; trial++ {
		a := aig.Random(rng, 8, 200, 4).Rehash()
		a.EnableFanouts()
		rc := NewReconv(a)
		for id := int32(a.NumPIs() + 1); id < int32(a.NumObjs()); id++ {
			if !a.IsAnd(id) || a.IsDeleted(id) {
				continue
			}
			leaves := rc.Cut(id, 8)
			if len(leaves) < 2 {
				continue
			}
			for _, neg := range []bool{false, true} {
				lit := aig.MakeLit(id, neg)
				want := ConeTruth(a, lit, leaves)
				got := s.ConeTruth(a, lit, leaves)
				if got.NVars != want.NVars || len(got.Words) != len(want.Words) {
					t.Fatalf("shape mismatch: %d/%d vars", got.NVars, want.NVars)
				}
				for w := range want.Words {
					if got.Words[w] != want.Words[w] {
						t.Fatalf("node %d word %d: scratch %016x, reference %016x", id, w, got.Words[w], want.Words[w])
					}
				}
			}
			if len(leaves) <= 4 {
				want16, wantOK := ConeTruth16(a, aig.MakeLit(id, false), leaves)
				got16, gotOK := s.ConeTruth16(a, aig.MakeLit(id, false), leaves)
				if want16 != got16 || wantOK != gotOK {
					t.Fatalf("node %d: ConeTruth16 scratch (%04x,%v) vs reference (%04x,%v)",
						id, got16, gotOK, want16, wantOK)
				}
			}
		}
	}
}

func TestScratchConeTruth16RejectsEscapingCone(t *testing.T) {
	a := aig.New(3)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(n1, a.PI(2))
	a.AddPO(n2)
	s := NewScratch()
	// Leaves {n1} do not bound the cone of n2 (PI 2 escapes).
	if _, ok := s.ConeTruth16(a, n2, []int32{n1.Var()}); ok {
		t.Error("escaping cone accepted")
	}
	// A proper cut evaluates fine right after the failed attempt.
	if tt, ok := s.ConeTruth16(a, n2, []int32{n1.Var(), a.PI(2).Var()}); !ok || tt != 0x8888 {
		t.Errorf("valid cut after failure: (%04x, %v), want (8888, true)", tt, ok)
	}
}

func TestScratchValidCut(t *testing.T) {
	a := aig.New(4)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(a.PI(2), a.PI(3))
	n3 := a.NewAnd(n1, n2)
	a.AddPO(n3)
	s := NewScratch()
	if !s.ValidCut(a, n3.Var(), []int32{n1.Var(), n2.Var()}, 16) {
		t.Error("valid cut rejected")
	}
	if s.ValidCut(a, n3.Var(), []int32{n1.Var()}, 16) {
		t.Error("escaping cut accepted")
	}
	if s.ValidCut(a, n3.Var(), []int32{n1.Var(), n2.Var()}, 0) {
		t.Error("budget 0 must reject a cut with internal nodes")
	}
}
