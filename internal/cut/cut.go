// Package cut provides cut computation on AIGs: the reconvergence-driven
// large cuts used by (sequential) refactoring, cone collection and cone
// truth-table evaluation, and 4-feasible cut enumeration with truth tables
// for rewriting.
package cut

import (
	"aigre/internal/aig"
	"aigre/internal/truth"
)

// Reconv computes reconvergence-driven cuts (ABC-style): starting from the
// trivial cut {root}, it repeatedly expands the leaf whose replacement by
// its fanins increases the cut size least, stopping when every possible
// expansion would exceed maxLeaves. A Reconv value amortizes scratch memory
// across calls; it is not safe for concurrent use.
type Reconv struct {
	a      *aig.AIG
	travID int32
	trav   []int32 // node id -> last traversal id that visited it
	leaves []int32
}

// NewReconv creates a cut computer for a.
func NewReconv(a *aig.AIG) *Reconv {
	return &Reconv{a: a, trav: make([]int32, a.NumObjs())}
}

func (r *Reconv) visited(id int32) bool { return r.trav[id] == r.travID }
func (r *Reconv) visit(id int32)        { r.trav[id] = r.travID }

// Cut returns the leaves of a reconvergence-driven cut of root with at most
// maxLeaves leaves. The returned slice is reused by the next call.
func (r *Reconv) Cut(root int32, maxLeaves int) []int32 {
	if n := r.a.NumObjs(); n > len(r.trav) {
		// The AIG has grown since the last call (in-place editing).
		grown := make([]int32, n)
		copy(grown, r.trav)
		r.trav = grown
	}
	r.travID++
	r.leaves = r.leaves[:0]
	r.leaves = append(r.leaves, root)
	r.visit(root)
	for {
		best := -1
		bestCost := 3
		for i, leaf := range r.leaves {
			if !r.a.IsAnd(leaf) {
				continue
			}
			cost := r.expandCost(leaf)
			if cost < bestCost {
				bestCost = cost
				best = i
				if cost == 0 {
					break
				}
			}
		}
		if best < 0 || len(r.leaves)+bestCost > maxLeaves {
			break // no expandable leaf, or expansion would exceed the limit
		}
		r.expand(best)
	}
	return r.leaves
}

// expandCost returns how many new leaves replacing leaf by its fanins adds
// (-1, 0 or +1).
func (r *Reconv) expandCost(leaf int32) int {
	cost := -1
	for _, f := range [2]aig.Lit{r.a.Fanin0(leaf), r.a.Fanin1(leaf)} {
		if !r.visited(f.Var()) {
			cost++
		}
	}
	return cost
}

// expand replaces leaves[i] by its unvisited fanins.
func (r *Reconv) expand(i int) {
	leaf := r.leaves[i]
	r.leaves[i] = r.leaves[len(r.leaves)-1]
	r.leaves = r.leaves[:len(r.leaves)-1]
	for _, f := range [2]aig.Lit{r.a.Fanin0(leaf), r.a.Fanin1(leaf)} {
		v := f.Var()
		if !r.visited(v) {
			r.visit(v)
			r.leaves = append(r.leaves, v)
		}
	}
}

// ConeNodes returns the AND nodes of the logic cone of root bounded by
// leaves, in topological order with root last. The constant node and leaves
// themselves are not included.
func ConeNodes(a *aig.AIG, root int32, leaves []int32) []int32 {
	isLeaf := make(map[int32]bool, len(leaves))
	for _, l := range leaves {
		isLeaf[l] = true
	}
	var order []int32
	visited := map[int32]bool{}
	var stack []int32
	stack = append(stack, root)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		if visited[cur] || isLeaf[cur] || !a.IsAnd(cur) {
			stack = stack[:len(stack)-1]
			continue
		}
		v0, v1 := a.Fanin0(cur).Var(), a.Fanin1(cur).Var()
		ready := true
		for _, v := range [2]int32{v0, v1} {
			if !visited[v] && !isLeaf[v] && a.IsAnd(v) {
				stack = append(stack, v)
				ready = false
			}
		}
		if !ready {
			continue
		}
		visited[cur] = true
		order = append(order, cur)
		stack = stack[:len(stack)-1]
	}
	return order
}

// ConeTruth16 evaluates the function of rootLit over at most four leaves as
// a 16-bit truth table (leaf i is variable i), the fast path for rewriting.
// ok is false when the cone escapes the leaf boundary (the leaves do not
// form a cut).
func ConeTruth16(a *aig.AIG, rootLit aig.Lit, leaves []int32) (uint16, bool) {
	var leafTT = [4]uint16{0xAAAA, 0xCCCC, 0xF0F0, 0xFF00}
	tts := make(map[int32]uint16, 8)
	tts[0] = 0
	for i, l := range leaves {
		tts[l] = leafTT[i]
	}
	root := rootLit.Var()
	if _, ok := tts[root]; !ok {
		// Iterative post-order evaluation bounded by the leaves.
		stack := []int32{root}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			if _, done := tts[cur]; done {
				stack = stack[:len(stack)-1]
				continue
			}
			if !a.IsAnd(cur) {
				return 0, false // reached a PI outside the cut
			}
			f0, f1 := a.Fanin0(cur), a.Fanin1(cur)
			t0, ok0 := tts[f0.Var()]
			t1, ok1 := tts[f1.Var()]
			if !ok0 {
				stack = append(stack, f0.Var())
				continue
			}
			if !ok1 {
				stack = append(stack, f1.Var())
				continue
			}
			if f0.IsCompl() {
				t0 = ^t0
			}
			if f1.IsCompl() {
				t1 = ^t1
			}
			tts[cur] = t0 & t1
			stack = stack[:len(stack)-1]
			if len(tts) > 4096 {
				return 0, false // runaway cone: not a valid small cut
			}
		}
	}
	res := tts[root]
	if rootLit.IsCompl() {
		res = ^res
	}
	return res, true
}

// ConeTruth evaluates the function of rootLit over the given leaves: leaf i
// is variable i. Every path from root to a PI must pass through a leaf
// (otherwise the function would depend on signals outside the leaf set; the
// constant node is permitted and evaluates to false).
func ConeTruth(a *aig.AIG, rootLit aig.Lit, leaves []int32) truth.TT {
	n := len(leaves)
	tts := make(map[int32]truth.TT, 2*n)
	tts[0] = truth.Const(n, false)
	for i, l := range leaves {
		tts[l] = truth.Var(n, i)
	}
	root := rootLit.Var()
	if _, ok := tts[root]; !ok {
		for _, id := range ConeNodes(a, root, leaves) {
			f0, f1 := a.Fanin0(id), a.Fanin1(id)
			t0, ok0 := tts[f0.Var()]
			t1, ok1 := tts[f1.Var()]
			if !ok0 || !ok1 {
				panic("cut: cone escapes the leaf boundary")
			}
			if f0.IsCompl() {
				t0 = truth.New(n).Not(t0)
			}
			if f1.IsCompl() {
				t1 = truth.New(n).Not(t1)
			}
			tts[id] = truth.New(n).And(t0, t1)
		}
	}
	res := tts[root].Clone()
	if rootLit.IsCompl() {
		res.Not(res)
	}
	return res
}
