package cut

// 4-feasible cut enumeration with truth tables, the front end of rewriting.

import (
	"aigre/internal/aig"
)

// Cut4 is a cut with at most four leaves and the 16-bit truth table of its
// root over those leaves (leaf i is variable i; unused variables are
// don't-care in TT's padding).
//
// TT carries circuit-consistent semantics, as in ABC's cut enumeration:
// when one leaf lies inside the cone bounded by the other leaves, TT is the
// composition through that leaf's function, which agrees with the circuit on
// every realizable leaf assignment but may differ from the
// independent-variable cone function on infeasible ones. A subgraph built
// from TT on the leaf signals is therefore functionally correct in place.
type Cut4 struct {
	Leaves  [4]int32
	NLeaves uint8
	TT      uint16
}

// LeafSlice returns the active leaves.
func (c *Cut4) LeafSlice() []int32 { return c.Leaves[:c.NLeaves] }

// sameLeaves reports whether two cuts have identical leaf sets.
func sameLeaves(a, b *Cut4) bool {
	if a.NLeaves != b.NLeaves {
		return false
	}
	for i := uint8(0); i < a.NLeaves; i++ {
		if a.Leaves[i] != b.Leaves[i] {
			return false
		}
	}
	return true
}

// mergeLeaves unions two sorted leaf sets into out, returning false when the
// union exceeds four leaves.
func mergeLeaves(a, b *Cut4, out *Cut4) bool {
	i, j := uint8(0), uint8(0)
	n := uint8(0)
	for i < a.NLeaves || j < b.NLeaves {
		if n == 4 {
			return false
		}
		var next int32
		switch {
		case i >= a.NLeaves:
			next = b.Leaves[j]
			j++
		case j >= b.NLeaves:
			next = a.Leaves[i]
			i++
		case a.Leaves[i] < b.Leaves[j]:
			next = a.Leaves[i]
			i++
		case a.Leaves[i] > b.Leaves[j]:
			next = b.Leaves[j]
			j++
		default:
			next = a.Leaves[i]
			i++
			j++
		}
		out.Leaves[n] = next
		n++
	}
	out.NLeaves = n
	return true
}

// expand16 remaps tt from the variable order of cut c onto the union cut u
// (whose leaves are a superset of c's).
func expand16(tt uint16, c, u *Cut4) uint16 {
	// posMap[i] = position of c's leaf i within u's leaves.
	var posMap [4]uint8
	j := uint8(0)
	for i := uint8(0); i < c.NLeaves; i++ {
		for u.Leaves[j] != c.Leaves[i] {
			j++
		}
		posMap[i] = j
	}
	var out uint16
	for m := 0; m < 16; m++ {
		orig := 0
		for i := uint8(0); i < c.NLeaves; i++ {
			if m>>posMap[i]&1 != 0 {
				orig |= 1 << i
			}
		}
		if tt>>uint(orig)&1 != 0 {
			out |= 1 << uint(m)
		}
	}
	return out
}

const var0TT = uint16(0xAAAA)

// EnumCuts4 enumerates up to maxCuts 4-feasible cuts per node (the trivial
// cut included) for all live nodes, in increasing node id order (the AIG
// must be in topological id order). cuts[id] lists the cuts of node id.
func EnumCuts4(a *aig.AIG, maxCuts int) [][]Cut4 {
	if maxCuts < 2 {
		maxCuts = 2
	}
	n := a.NumObjs()
	cuts := make([][]Cut4, n)
	cuts[0] = []Cut4{{NLeaves: 0, TT: 0}}
	for i := 1; i <= a.NumPIs(); i++ {
		cuts[i] = []Cut4{trivialCut(int32(i))}
	}
	for id := int32(a.NumPIs() + 1); int(id) < n; id++ {
		if a.IsDeleted(id) {
			continue
		}
		cuts[id] = enumNode(a, id, cuts, maxCuts)
	}
	return cuts
}

func trivialCut(id int32) Cut4 {
	return Cut4{Leaves: [4]int32{id}, NLeaves: 1, TT: var0TT}
}

func enumNode(a *aig.AIG, id int32, cuts [][]Cut4, maxCuts int) []Cut4 {
	f0, f1 := a.Fanin0(id), a.Fanin1(id)
	c0s, c1s := cuts[f0.Var()], cuts[f1.Var()]
	result := make([]Cut4, 0, maxCuts)
	for i := range c0s {
		for j := range c1s {
			var u Cut4
			if !mergeLeaves(&c0s[i], &c1s[j], &u) {
				continue
			}
			t0 := expand16(c0s[i].TT, &c0s[i], &u)
			t1 := expand16(c1s[j].TT, &c1s[j], &u)
			if f0.IsCompl() {
				t0 = ^t0
			}
			if f1.IsCompl() {
				t1 = ^t1
			}
			u.TT = t0 & t1
			result = insertCut(result, u, maxCuts-1)
		}
	}
	// The trivial cut is always kept (needed to seed fanout merges).
	result = append(result, trivialCut(id))
	return result
}

// insertCut adds u to the size-bounded cut set, preferring smaller cuts and
// dropping duplicates and dominated cuts (a cut whose leaves are a superset
// of another's is redundant).
func insertCut(set []Cut4, u Cut4, limit int) []Cut4 {
	for i := range set {
		if sameLeaves(&set[i], &u) || dominates(&set[i], &u) {
			return set
		}
	}
	// Remove cuts dominated by u.
	kept := set[:0]
	for i := range set {
		if !dominates(&u, &set[i]) {
			kept = append(kept, set[i])
		}
	}
	set = kept
	if len(set) < limit {
		return append(set, u)
	}
	// Replace the largest cut if u is smaller.
	worst := -1
	for i := range set {
		if worst < 0 || set[i].NLeaves > set[worst].NLeaves {
			worst = i
		}
	}
	if worst >= 0 && u.NLeaves < set[worst].NLeaves {
		set[worst] = u
	}
	return set
}

// dominates reports whether a's leaves are a subset of b's.
func dominates(a, b *Cut4) bool {
	if a.NLeaves > b.NLeaves {
		return false
	}
	j := uint8(0)
	for i := uint8(0); i < a.NLeaves; i++ {
		for j < b.NLeaves && b.Leaves[j] < a.Leaves[i] {
			j++
		}
		if j >= b.NLeaves || b.Leaves[j] != a.Leaves[i] {
			return false
		}
		j++
	}
	return true
}
