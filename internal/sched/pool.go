// Package sched is the batch-optimization engine: it runs many (AIG,
// script) jobs concurrently over a shared, bounded host worker budget.
//
// The paper's system optimizes one AIG per invocation and sizes its worker
// pool to the whole machine; a service optimizing N designs at once would
// oversubscribe the host N-fold. Here a Pool owns the host worker
// budget once, jobs lease capped sub-devices from it (gpu.NewLeased),
// and an Engine admits jobs by priority, runs each through the guarded
// flow.Run with per-job and engine-wide context cancellation, and
// aggregates per-job Results plus fleet Metrics.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aigre/internal/gpu"
)

// Pool is a fixed budget of W concurrent worker slots shared by every device
// leased from it. Kernel launches of leased devices draw their worker bodies
// from it, so the total host concurrency across any number of concurrent
// jobs never exceeds the pool size.
//
// The budget is a slot semaphore rather than a set of resident worker
// goroutines: a single-body launch — the whole traffic of a W=1 lease, which
// is what every partition sub-job holds — runs inline on the calling
// goroutine after claiming a slot, costing no channel handoff or context
// switch. The earlier resident-worker design paid two scheduler switches per
// task, which at eight concurrent partition jobs on a saturated host turned
// the pool itself into a contention source. Multi-body launches spawn one
// goroutine per extra body; each claims its own slot, so the W bound holds
// regardless of how many jobs launch at once.
type Pool struct {
	size int
	sem  chan int // buffered with slot ids 0..size-1

	closeOnce sync.Once
	running   atomic.Int32 // slots currently executing a task
	peak      atomic.Int32 // high-water mark of running
	busy      []slotClock  // per-slot busy time, indexed by slot id
}

// slotClock is one slot's busy-time accumulator, padded to a cache line so
// concurrent slots don't false-share — BusyTime is read rarely, but the
// accumulators are written once per task by every worker.
type slotClock struct {
	ns atomic.Int64
	_  [56]byte
}

// NewPool creates a pool with the given number of worker slots
// (0 = GOMAXPROCS). Close releases the budget.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size: workers,
		sem:  make(chan int, workers),
		busy: make([]slotClock, workers),
	}
	for i := 0; i < workers; i++ {
		p.sem <- i
	}
	return p
}

// runOn executes fn while holding slot, maintaining the concurrency
// statistics.
func (p *Pool) runOn(slot int, fn func()) {
	cur := p.running.Add(1)
	for {
		peak := p.peak.Load()
		if cur <= peak || p.peak.CompareAndSwap(peak, cur) {
			break
		}
	}
	start := time.Now()
	fn()
	p.busy[slot].ns.Add(int64(time.Since(start)))
	p.running.Add(-1)
}

// Workers returns the pool size W: the hard bound on concurrently running
// leased kernel workers.
func (p *Pool) Workers() int { return p.size }

// PeakWorkers returns the high-water mark of concurrently executing worker
// bodies observed so far — by construction never above Workers(). Tests use
// it to assert the shared-budget invariant.
func (p *Pool) PeakWorkers() int { return int(p.peak.Load()) }

// BusyTime returns the summed execution time of all tasks run so far, the
// numerator of worker utilization.
func (p *Pool) BusyTime() time.Duration {
	var total int64
	for i := range p.busy {
		total += p.busy[i].ns.Load()
	}
	return time.Duration(total)
}

// Execute implements gpu.Executor: it runs every task under the pool's slot
// budget and returns when all have completed. Tasks may be enqueued from
// many jobs' orchestration goroutines concurrently; each blocks only until a
// slot frees up. The first task runs inline on the caller — the single-task
// launch is the fast path and costs no goroutine switch.
func (p *Pool) Execute(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	var done sync.WaitGroup
	done.Add(len(tasks) - 1)
	for _, fn := range tasks[1:] {
		go func(fn func()) {
			defer done.Done()
			slot := <-p.sem
			p.runOn(slot, fn)
			p.sem <- slot
		}(fn)
	}
	slot := <-p.sem
	p.runOn(slot, tasks[0])
	p.sem <- slot
	done.Wait()
}

// Close retires the worker budget: it claims every slot, which waits for all
// in-flight tasks to finish. No device leased from the pool may launch
// kernels afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for i := 0; i < p.size; i++ {
			<-p.sem
		}
	})
}

// Lease returns a device drawing its launch workers from the pool, capped
// at max worker bodies per launch (0 or anything above the pool size means
// the whole pool). The leased device records its own work/span/profile
// stats, so per-job accounting is identical to a private device.
//
// The lease stays valid until the pool is closed; leasing is cheap enough
// to do per job.
func (p *Pool) Lease(max int) *gpu.Device {
	if max <= 0 || max > p.size {
		max = p.size
	}
	return gpu.NewLeased(max, p)
}
