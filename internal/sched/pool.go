// Package sched is the batch-optimization engine: it runs many (AIG,
// script) jobs concurrently over a shared, bounded host worker budget.
//
// The paper's system optimizes one AIG per invocation and sizes its worker
// pool to the whole machine; a service optimizing N designs at once would
// oversubscribe the host N-fold. Here a Pool owns the host worker
// goroutines once, jobs lease capped sub-devices from it (gpu.NewLeased),
// and an Engine admits jobs by priority, runs each through the guarded
// flow.Run with per-job and engine-wide context cancellation, and
// aggregates per-job Results plus fleet Metrics.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aigre/internal/gpu"
)

// Pool is a fixed set of host worker goroutines shared by every device
// leased from it. Kernel launches of leased devices enqueue their worker
// bodies here, so the total host concurrency across any number of
// concurrent jobs never exceeds the pool size.
type Pool struct {
	size  int
	tasks chan poolTask
	wg    sync.WaitGroup // worker goroutines

	closeOnce sync.Once
	running   atomic.Int32 // workers currently executing a task
	peak      atomic.Int32 // high-water mark of running
	busyNS    atomic.Int64 // summed task execution time
}

type poolTask struct {
	fn   func()
	done *sync.WaitGroup
}

// NewPool starts a pool of the given number of worker goroutines
// (0 = GOMAXPROCS). Close must be called to release them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: workers, tasks: make(chan poolTask)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		cur := p.running.Add(1)
		for {
			peak := p.peak.Load()
			if cur <= peak || p.peak.CompareAndSwap(peak, cur) {
				break
			}
		}
		start := time.Now()
		t.fn()
		p.busyNS.Add(int64(time.Since(start)))
		p.running.Add(-1)
		t.done.Done()
	}
}

// Workers returns the pool size W: the hard bound on concurrently running
// leased kernel workers.
func (p *Pool) Workers() int { return p.size }

// PeakWorkers returns the high-water mark of concurrently executing worker
// bodies observed so far — by construction never above Workers(). Tests use
// it to assert the shared-budget invariant.
func (p *Pool) PeakWorkers() int { return int(p.peak.Load()) }

// BusyTime returns the summed execution time of all tasks run so far, the
// numerator of worker utilization.
func (p *Pool) BusyTime() time.Duration { return time.Duration(p.busyNS.Load()) }

// Execute implements gpu.Executor: it runs every task on the pool workers
// and returns when all have completed. Tasks may be enqueued from many
// jobs' orchestration goroutines concurrently; each blocks only until a
// worker picks its task up.
func (p *Pool) Execute(tasks []func()) {
	var done sync.WaitGroup
	done.Add(len(tasks))
	for _, fn := range tasks {
		p.tasks <- poolTask{fn: fn, done: &done}
	}
	done.Wait()
}

// Lease returns a device drawing its launch workers from the pool, capped
// at max worker bodies per launch (0 or anything above the pool size means
// the whole pool). The leased device records its own work/span/profile
// stats, so per-job accounting is identical to a private device.
//
// The lease stays valid until the pool is closed; leasing is cheap enough
// to do per job.
func (p *Pool) Lease(max int) *gpu.Device {
	if max <= 0 || max > p.size {
		max = p.size
	}
	return gpu.NewLeased(max, p)
}

// Close shuts the pool down after all enqueued tasks finish and waits for
// the worker goroutines to exit. No device leased from the pool may launch
// kernels afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}
