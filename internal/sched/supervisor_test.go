package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/hashtable"
	"aigre/internal/journal"
)

// customJob wraps a Custom func into a Job with the fields supervision needs.
func customJob(name string, a func(ctx context.Context, pool *Pool) (flow.Result, error)) Job {
	return Job{Name: name, AIG: testAIG(1), Script: "b", Custom: a}
}

// TestClassify pins the error taxonomy the retry loop is built on.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{ErrStuck, ClassStuck},
		{context.DeadlineExceeded, ClassTimeout},
		{context.Canceled, ClassCancelled},
		{&gpu.LaunchError{Kernel: "k", Value: "boom"}, ClassTransient},
		{&gpu.LaunchError{Kernel: "k", Value: hashtable.ErrTableFull}, ClassTransient},
		{hashtable.ErrTableFull, ClassTransient},
		{errors.New("parse error"), ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	for _, c := range []struct {
		cls  Class
		want bool
	}{{ClassTransient, true}, {ClassTimeout, true}, {ClassStuck, true},
		{ClassPermanent, false}, {ClassCancelled, false}, {ClassNone, false}} {
		if got := c.cls.Retryable(); got != c.want {
			t.Errorf("%v.Retryable() = %v, want %v", c.cls, got, c.want)
		}
	}
}

// TestRetryTransientToSuccess checks that a job failing with a transient
// class is retried within its budget and lands as Finished, with the attempt
// history journaled.
func TestRetryTransientToSuccess(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var buf bytes.Buffer
	jour := journal.New(&buf)

	var calls atomic.Int64
	job := customJob("flaky", func(ctx context.Context, _ *Pool) (flow.Result, error) {
		if calls.Add(1) < 3 {
			return flow.Result{}, &gpu.LaunchError{Kernel: "rewrite/evaluate", Value: "boom"}
		}
		return flow.Result{AIG: testAIG(1)}, nil
	})
	pol := Policy{Retries: 3, Backoff: time.Millisecond, Seed: 42}
	res, m := RunSupervised(context.Background(), pool, []Job{job}, Options{Policy: pol, Journal: jour})
	if res[0].Err != nil {
		t.Fatalf("retried job failed: %v", res[0].Err)
	}
	if res[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res[0].Attempts)
	}
	if m.Finished != 1 || m.Retries != 2 || m.Quarantined != 0 {
		t.Errorf("metrics = %+v", m)
	}
	entries, _, err := journal.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	for _, e := range entries {
		events = append(events, e.Event)
	}
	want := []string{"attempt", "retry", "attempt", "retry", "attempt", "done"}
	if len(events) != len(want) {
		t.Fatalf("journal events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("journal events %v, want %v", events, want)
		}
	}
}

// TestQuarantineOnExhaustedBudget checks that a job failing transiently on
// every attempt is quarantined, not merely failed.
func TestQuarantineOnExhaustedBudget(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var buf bytes.Buffer
	job := customJob("poison", func(ctx context.Context, _ *Pool) (flow.Result, error) {
		return flow.Result{}, &gpu.LaunchError{Kernel: "k", Value: hashtable.ErrTableFull}
	})
	pol := Policy{Retries: 2, Backoff: time.Millisecond}
	res, m := RunSupervised(context.Background(), pool, []Job{job},
		Options{Policy: pol, Journal: journal.New(&buf)})
	if !res[0].Quarantined {
		t.Fatalf("poison job not quarantined: %+v err=%v", res[0], res[0].Err)
	}
	if res[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", res[0].Attempts)
	}
	if m.Quarantined != 1 || m.Failed != 0 {
		t.Errorf("metrics = %+v", m)
	}
	entries, _, _ := journal.Read(&buf)
	last := entries[len(entries)-1]
	if last.Event != journal.EventQuarantine {
		t.Errorf("last journal event %q, want quarantine", last.Event)
	}
}

// TestPermanentFailureNotRetried checks that a permanent-class error consumes
// no retry tokens.
func TestPermanentFailureNotRetried(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	job := customJob("broken", func(ctx context.Context, _ *Pool) (flow.Result, error) {
		return flow.Result{}, errors.New("equivalence refuted")
	})
	pol := Policy{Retries: 3, Backoff: time.Millisecond}
	res, m := RunSupervised(context.Background(), pool, []Job{job}, Options{Policy: pol})
	if res[0].Attempts != 1 {
		t.Errorf("permanent failure retried: %d attempts", res[0].Attempts)
	}
	if res[0].Quarantined || res[0].Err == nil {
		t.Errorf("unexpected result %+v", res[0])
	}
	if m.Failed != 1 || m.Quarantined != 0 || m.Retries != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestJobTimeoutDistinctFromCancel checks the satellite fix: a job killed by
// its own deadline reports TimedOut, an externally cancelled one Cancelled.
func TestJobTimeoutDistinctFromCancel(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	hang := func(ctx context.Context, _ *Pool) (flow.Result, error) {
		<-ctx.Done()
		return flow.Result{}, ctx.Err()
	}
	// Deadline kill, no retries: TimedOut, not Cancelled, not Quarantined.
	pol := Policy{JobTimeout: 20 * time.Millisecond}
	res, m := RunSupervised(context.Background(), pool, []Job{customJob("slow", hang)}, Options{Policy: pol})
	if !res[0].TimedOut || res[0].Cancelled || res[0].Quarantined {
		t.Fatalf("deadline kill misclassified: %+v err=%v", res[0], res[0].Err)
	}
	if m.TimedOut != 1 || m.Cancelled != 0 {
		t.Errorf("metrics = %+v", m)
	}
	// External cancel: Cancelled, not TimedOut.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	res2, m2 := RunSupervised(ctx, pool, []Job{customJob("cancelled", hang)}, Options{})
	if !res2[0].Cancelled || res2[0].TimedOut {
		t.Fatalf("external cancel misclassified: %+v err=%v", res2[0], res2[0].Err)
	}
	if m2.Cancelled != 1 || m2.TimedOut != 0 {
		t.Errorf("metrics = %+v", m2)
	}
}

// TestDeadlineRetriesThenQuarantine checks that with retries enabled a job
// that keeps blowing its deadline is eventually quarantined as poison.
func TestDeadlineRetriesThenQuarantine(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	hang := func(ctx context.Context, _ *Pool) (flow.Result, error) {
		<-ctx.Done()
		return flow.Result{}, ctx.Err()
	}
	pol := Policy{JobTimeout: 10 * time.Millisecond, Retries: 2, Backoff: time.Millisecond}
	res, m := RunSupervised(context.Background(), pool, []Job{customJob("poison", hang)}, Options{Policy: pol})
	if !res[0].Quarantined || !res[0].TimedOut {
		t.Fatalf("repeated deadline kills not quarantined: %+v err=%v", res[0], res[0].Err)
	}
	if res[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res[0].Attempts)
	}
	if m.Quarantined != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestWatchdogPreemptsStuckJob checks that an attempt that stops beating is
// preempted with cause ErrStuck and quarantined.
func TestWatchdogPreemptsStuckJob(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var buf bytes.Buffer
	stuck := customJob("stuck", func(ctx context.Context, _ *Pool) (flow.Result, error) {
		// Never beats: the watchdog must fire. Block until preempted.
		<-ctx.Done()
		return flow.Result{}, context.Cause(ctx)
	})
	pol := Policy{StuckTimeout: 25 * time.Millisecond, Retries: 1, Backoff: time.Millisecond}
	res, m := RunSupervised(context.Background(), pool, []Job{stuck},
		Options{Policy: pol, Journal: journal.New(&buf)})
	if !res[0].Quarantined {
		t.Fatalf("stuck job not quarantined: %+v err=%v", res[0], res[0].Err)
	}
	if res[0].Preemptions != 2 {
		t.Errorf("Preemptions = %d, want 2 (initial + retry)", res[0].Preemptions)
	}
	if !errors.Is(res[0].Err, ErrStuck) {
		t.Errorf("Err does not trace to ErrStuck: %v", res[0].Err)
	}
	if m.Quarantined != 1 {
		t.Errorf("metrics = %+v", m)
	}
	entries, _, _ := journal.Read(&buf)
	preempts := 0
	for _, e := range entries {
		if e.Event == journal.EventPreempt {
			preempts++
		}
	}
	if preempts != 2 {
		t.Errorf("journaled %d preempt events, want 2", preempts)
	}
}

// TestWatchdogSparesBeatingJob checks that a job whose heartbeat keeps
// advancing is never preempted even when it runs far past StuckTimeout.
func TestWatchdogSparesBeatingJob(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	beating := customJob("alive", func(ctx context.Context, _ *Pool) (flow.Result, error) {
		hb := HeartbeatFrom(ctx)
		if hb == nil {
			return flow.Result{}, errors.New("no heartbeat in context")
		}
		for i := 0; i < 10; i++ {
			if ctx.Err() != nil {
				return flow.Result{}, context.Cause(ctx)
			}
			hb.Beat()
			time.Sleep(5 * time.Millisecond)
		}
		return flow.Result{AIG: testAIG(1)}, nil
	})
	pol := Policy{StuckTimeout: 20 * time.Millisecond}
	res, _ := RunSupervised(context.Background(), pool, []Job{beating}, Options{Policy: pol})
	if res[0].Err != nil {
		t.Fatalf("beating job preempted: %v", res[0].Err)
	}
	if res[0].Preemptions != 0 {
		t.Errorf("Preemptions = %d, want 0", res[0].Preemptions)
	}
}

// TestRetryDegraded checks that a completed-but-degraded attempt (transient
// incidents) is discarded and re-run when the policy asks for it.
func TestRetryDegraded(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	var calls atomic.Int64
	job := customJob("degraded", func(ctx context.Context, _ *Pool) (flow.Result, error) {
		if calls.Add(1) == 1 {
			return flow.Result{AIG: testAIG(1), Incidents: []flow.Incident{{
				Index: 0, Command: "rw", Stage: "launch", Kernel: "rewrite/evaluate",
				Action: "retried-sequential", Class: flow.ClassTransient,
			}}}, nil
		}
		return flow.Result{AIG: testAIG(1)}, nil
	})
	pol := Policy{Retries: 2, RetryDegraded: true, Backoff: time.Millisecond}
	res, _ := RunSupervised(context.Background(), pool, []Job{job}, Options{Policy: pol})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (degraded attempt discarded)", res[0].Attempts)
	}
	// The first attempt's incidents stay on the record, attempt-stamped.
	if len(res[0].Incidents) != 1 || res[0].Incidents[0].Attempt != 1 {
		t.Errorf("incident history lost: %+v", res[0].Incidents)
	}
	if res[0].Incidents[0].Time.IsZero() {
		t.Errorf("incident not timestamped")
	}
}

// TestSharedBudget checks that two jobs drawing from one RetryBudget cannot
// exceed it jointly.
func TestSharedBudget(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	budget := NewRetryBudget(2)
	fail := func(ctx context.Context, _ *Pool) (flow.Result, error) {
		return flow.Result{}, &gpu.LaunchError{Kernel: "k", Value: "boom"}
	}
	pol := Policy{Budget: budget, Backoff: time.Millisecond}
	jobs := []Job{customJob("a", fail), customJob("b", fail)}
	res, m := RunSupervised(context.Background(), pool, jobs, Options{Policy: pol})
	total := 0
	for _, r := range res {
		total += r.Attempts
		if !r.Quarantined {
			t.Errorf("job %s not quarantined: %+v", r.Name, r.Err)
		}
	}
	if total != 4 {
		t.Errorf("total attempts = %d, want 4 (2 initial + 2 shared retries)", total)
	}
	if budget.Remaining() != 0 {
		t.Errorf("budget remaining = %d, want 0", budget.Remaining())
	}
	if m.Retries != 2 {
		t.Errorf("metrics retries = %d, want 2", m.Retries)
	}
}

// TestFaultPlanCarryOver checks that a supervised flow job's fault plans
// carry fire-progress across attempts: a plan that fired in attempt 1 does
// not fire again in attempt 2, so the retry succeeds cleanly.
func TestFaultPlanCarryOver(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	job := Job{
		Name:   "faulted",
		AIG:    testAIG(7),
		Script: "rw",
		Config: flow.Config{Parallel: true, GateRounds: 8},
		FaultPlans: []gpu.FaultPlan{
			{Kernel: "rewrite/evaluate", Kind: gpu.FaultPanic},
		},
	}
	pol := Policy{Retries: 2, RetryDegraded: true, Backoff: time.Millisecond}
	res, m := RunSupervised(context.Background(), pool, []Job{job}, Options{Policy: pol})
	if res[0].Err != nil {
		t.Fatalf("supervised flow job failed: %v", res[0].Err)
	}
	if res[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (degraded then clean)", res[0].Attempts)
	}
	// Attempt 1 contains the fault as a degraded incident; attempt 2 must
	// run clean because the plan already fired.
	for _, inc := range res[0].Incidents {
		if inc.Attempt != 1 {
			t.Errorf("incident on attempt %d, want all on attempt 1: %+v", inc.Attempt, inc)
		}
	}
	if m.Finished != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestBackoffShape pins the exponential-with-jitter schedule: doubling from
// Backoff, capped at MaxBackoff, jitter within ±50%, deterministic per seed.
func TestBackoffShape(t *testing.T) {
	pol := Policy{Backoff: 8 * time.Millisecond, MaxBackoff: 40 * time.Millisecond, Seed: 3}
	prevCapped := false
	for attempt := 1; attempt <= 5; attempt++ {
		d := pol.backoffFor(attempt)
		base := 8 * time.Millisecond << (attempt - 1)
		if base > 40*time.Millisecond {
			base = 40 * time.Millisecond
			prevCapped = true
		}
		lo, hi := base/2, base+base/2
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
		}
		if d != pol.backoffFor(attempt) {
			t.Errorf("attempt %d: backoff not deterministic", attempt)
		}
	}
	if !prevCapped {
		t.Errorf("cap never reached in 5 attempts")
	}
}

// TestConcurrentIncidentAppendStress hammers one shared journal from many
// concurrently supervised jobs that all contain an injected kernel fault:
// every incident must come back Attempt- and Time-stamped, every journal
// entry must land intact with a unique sequence number, and the run must be
// clean under -race. This is the concurrency contract partition jobs rely on
// when they funnel per-partition incidents into the batch journal.
func TestConcurrentIncidentAppendStress(t *testing.T) {
	const jobsN = 16
	pool := NewPool(4)
	defer pool.Close()
	var buf bytes.Buffer
	jour := journal.New(&buf)
	jobs := make([]Job, jobsN)
	for i := range jobs {
		jobs[i] = Job{
			Name:   fmt.Sprintf("stress%d", i),
			AIG:    testAIG(int64(i + 1)),
			Script: "rw",
			Config: flow.Config{Parallel: true, GateRounds: 2},
			FaultPlans: []gpu.FaultPlan{
				{Kernel: "rewrite/evaluate", Kind: gpu.FaultPanic},
			},
		}
	}
	res, m := RunSupervised(context.Background(), pool, jobs,
		Options{MaxConcurrentJobs: jobsN, Journal: jour})
	total := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if len(r.Incidents) == 0 {
			t.Fatalf("job %d: fault was not contained as an incident", i)
		}
		for _, inc := range r.Incidents {
			if inc.Attempt != 1 {
				t.Errorf("job %d: incident Attempt = %d, want 1", i, inc.Attempt)
			}
			if inc.Time.IsZero() {
				t.Errorf("job %d: incident Time not stamped", i)
			}
		}
		total += len(r.Incidents)
	}
	if m.Finished != jobsN {
		t.Errorf("metrics = %+v, want %d finished", m, jobsN)
	}
	entries, _, err := journal.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	logged := 0
	for _, e := range entries {
		if seen[e.Seq] {
			t.Fatalf("duplicate journal seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Event == journal.EventIncident {
			logged++
			if e.Incident == nil || e.Incident.Time.IsZero() {
				t.Errorf("journaled incident entry missing stamped incident: %+v", e)
			}
		}
	}
	if logged != total {
		t.Errorf("journal has %d incident entries, results carried %d incidents", logged, total)
	}
}
