// Job supervision: deadlines, classified retry with backoff, watchdog
// preemption of stuck attempts, quarantine of poison jobs, and a durable
// journal of every lifecycle event.
//
// The flow layer (PR 2) contains faults *within* one script run — a kernel
// panic degrades a command, it does not kill the job. The supervisor is the
// fleet-level complement: it decides what a whole job's attempt outcome means
// (retry it, quarantine it, report it timed out) and leaves a replayable
// record. The planned aigred daemon fronts exactly this loop.
package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/journal"
)

// supervise runs q's job under pol until an attempt succeeds, the retry
// budget runs dry, or a non-retryable failure lands, filling res with the
// final outcome and the accumulated attempt history.
func (e *Engine) supervise(outer context.Context, q *queuedJob, pol Policy, res *Result) {
	budget := pol.Budget
	if budget == nil && pol.Retries > 0 {
		budget = NewRetryBudget(pol.Retries)
	}
	// Fault plans carry across attempts with their fire-progress, so a plan
	// armed for the Nth matching launch counts launches cumulatively over
	// the job, not per attempt.
	faults := append([]gpu.FaultPlan(nil), q.job.FaultPlans...)
	// Sequential non-custom jobs never reach a launch boundary, so they
	// produce no heartbeat; watching them would always preempt.
	watched := pol.StuckTimeout > 0 && (q.job.Config.Parallel || q.job.Custom != nil)

	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt, Event: journal.EventAttempt})

		fres, dev, err, cls := e.attempt(outer, q, pol, watched, faults)

		for i := range fres.Incidents {
			fres.Incidents[i].Attempt = attempt
			if fres.Incidents[i].Time.IsZero() {
				fres.Incidents[i].Time = time.Now()
			}
			inc := fres.Incidents[i]
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventIncident, Class: inc.Class, Detail: inc.Detail, Incident: &inc})
		}
		res.Incidents = append(res.Incidents, fres.Incidents...)
		res.Modeled += fres.TotalModeled
		res.Timings = fres.Timings
		res.CacheStats = fres.CacheStats
		if dev != nil {
			res.Profile = dev.Profile()
			faults = dev.Faults()
		}
		if fres.AIG != nil || res.AIG == nil {
			res.AIG = fres.AIG
		}

		if err == nil {
			transient := 0
			for _, inc := range fres.Incidents {
				if inc.Class == flow.ClassTransient {
					transient++
				}
			}
			if pol.RetryDegraded && transient > 0 && outer.Err() == nil && budget.Take() {
				d := pol.backoffFor(attempt)
				e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
					Event: journal.EventRetry, Class: flow.ClassTransient, Backoff: d,
					Detail: fmt.Sprintf("discarding result degraded by %d transient incident(s)", transient)})
				if !sleepInterruptible(outer, d) {
					e.finish(q, res, ClassCancelled, cancelErrFor(outer, q.job.Name), attempt, pol)
					return
				}
				continue
			}
			res.Err = nil
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt, Event: journal.EventDone})
			return
		}

		// External shutdown dominates every other outcome: the batch window
		// expired or the engine is closing. Never retried.
		if oerr := outer.Err(); oerr != nil {
			if errors.Is(oerr, context.DeadlineExceeded) {
				res.TimedOut = true
				res.Err = err
				e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
					Event: journal.EventTimeout, Class: cls.String(), Detail: err.Error()})
			} else {
				res.Cancelled = true
				res.Err = err
				e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
					Event: journal.EventCancel, Detail: err.Error()})
			}
			return
		}

		switch cls {
		case ClassStuck:
			res.Preemptions++
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventPreempt, Class: cls.String(), Detail: err.Error()})
		case ClassTimeout:
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventTimeout, Class: cls.String(), Detail: err.Error()})
		}

		if cls.Retryable() && budget.Take() {
			d := pol.backoffFor(attempt)
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventRetry, Class: cls.String(), Detail: err.Error(), Backoff: d})
			if !sleepInterruptible(outer, d) {
				e.finish(q, res, ClassCancelled, cancelErrFor(outer, q.job.Name), attempt, pol)
				return
			}
			continue
		}

		e.finish(q, res, cls, err, attempt, pol)
		return
	}
}

// finish records a terminal failure outcome: cancelled, timed out, failed,
// or — when a retryable class ran the budget dry (or the watchdog caught the
// job) — quarantined.
func (e *Engine) finish(q *queuedJob, res *Result, cls Class, err error, attempt int, pol Policy) {
	switch cls {
	case ClassCancelled:
		if errors.Is(err, context.DeadlineExceeded) {
			res.TimedOut = true
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventTimeout, Detail: err.Error()})
		} else {
			res.Cancelled = true
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventCancel, Detail: err.Error()})
		}
	case ClassStuck:
		// A stuck job is poison by definition: quarantine even when the
		// policy granted no retries.
		res.Quarantined = true
	case ClassTimeout:
		res.TimedOut = true
		res.Quarantined = pol.retriesEnabled()
	case ClassTransient:
		res.Quarantined = pol.retriesEnabled()
		if !res.Quarantined {
			e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
				Event: journal.EventFail, Class: cls.String(), Detail: err.Error()})
		}
	default:
		e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
			Event: journal.EventFail, Class: cls.String(), Detail: err.Error()})
	}
	if res.Quarantined {
		err = fmt.Errorf("sched: job %q quarantined after %d attempt(s): %w", q.job.Name, attempt, err)
		e.jour.Append(journal.Entry{Job: q.job.Name, Attempt: attempt,
			Event: journal.EventQuarantine, Class: cls.String(), Detail: err.Error()})
	}
	res.Err = err
}

// attempt executes one supervised attempt under its own deadline and
// watchdog, returning the flow result, the leased device (nil for custom or
// sequential jobs), the attempt error, and its supervision class.
func (e *Engine) attempt(outer context.Context, q *queuedJob, pol Policy, watched bool, faults []gpu.FaultPlan) (flow.Result, *gpu.Device, error, Class) {
	start := time.Now()
	base, preempt := context.WithCancelCause(outer)
	defer preempt(nil)
	ctx := context.Context(base)
	if pol.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pol.JobTimeout)
		defer cancel()
	}

	if watched {
		// Reuse a heartbeat installed by an outer supervisor (a partitioned
		// job's sub-jobs run under the parent's watchdog); otherwise mint
		// one and thread it through the context for nested engines.
		hb := HeartbeatFrom(ctx)
		if hb == nil {
			hb = &gpu.Heartbeat{}
			ctx = WithHeartbeat(ctx, hb)
		}
		watchDone := make(chan struct{})
		defer close(watchDone)
		go watch(ctx, watchDone, hb, start, pol.StuckTimeout, preempt)
	}

	cfg := q.job.Config
	cfg.Device = nil
	var dev *gpu.Device
	var fres flow.Result
	var err error
	if q.job.Custom != nil {
		fres, err = q.job.Custom(ctx, e.pool)
	} else {
		if cfg.Parallel {
			dev = e.pool.Lease(q.job.Workers)
			if hb := HeartbeatFrom(ctx); hb != nil {
				dev.SetHeartbeat(hb)
			}
			if len(faults) > 0 {
				dev.InjectFaults(faults...)
			}
			cfg.Device = dev
		}
		fres, err = flow.Run(ctx, q.job.AIG, q.job.Script, cfg)
	}

	cls := Classify(err)
	if err != nil && errors.Is(context.Cause(ctx), ErrStuck) {
		cls = ClassStuck
		err = fmt.Errorf("%w (no heartbeat for %v)", ErrStuck, pol.StuckTimeout)
	}
	return fres, dev, err, cls
}

// watch preempts the attempt when the heartbeat goes quiet for limit.
func watch(ctx context.Context, done <-chan struct{}, hb *gpu.Heartbeat, start time.Time, limit time.Duration, preempt context.CancelCauseFunc) {
	interval := limit / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			last := hb.Last()
			if last.IsZero() {
				last = start
			}
			if time.Since(last) >= limit {
				preempt(ErrStuck)
				return
			}
		}
	}
}

// sleepInterruptible pauses for d, returning false when ctx was cancelled
// before the pause completed.
func sleepInterruptible(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// cancelErrFor wraps the outer context error observed while a job named name
// was between attempts.
func cancelErrFor(outer context.Context, name string) error {
	err := outer.Err()
	if err == nil {
		err = context.Canceled
	}
	return fmt.Errorf("sched: job %q cancelled during backoff: %w", name, err)
}
