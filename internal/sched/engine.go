package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"aigre/internal/aig"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/journal"
	"aigre/internal/rcache"
)

// Job is one batch-optimization request: run Script over AIG under Config.
// The input AIG is never mutated (pass engines clone before editing).
type Job struct {
	// Name labels the job in results and reports (default: the AIG name).
	Name string
	// AIG is the input network.
	AIG *aig.AIG
	// Script is the flow command script, e.g. flow.Resyn2.
	Script string
	// Priority orders admission: higher-priority jobs start first.
	// Ties run in submission order.
	Priority int
	// Workers caps the job's device lease: how many pool workers one kernel
	// launch of this job may occupy (0 = the whole pool). The cap shapes
	// scheduling fairness, not the budget — the pool bounds total
	// concurrency regardless.
	Workers int
	// Config selects execution mode and engine options. Config.Device is
	// ignored: parallel jobs always run on a device leased from the
	// engine's pool.
	Config flow.Config
	// Custom, when non-nil, replaces the flow.Run invocation for this job.
	// It runs on the job's runner goroutine under the merged per-job and
	// engine-wide context and draws any device capacity from its own leases
	// of the given pool. AIG is still required (it sizes the before-stats),
	// and Script still labels the job. The partition-parallel batch path
	// uses this to fan a job's sub-partitions onto the engine's pool.
	Custom func(ctx context.Context, pool *Pool) (flow.Result, error)
	// Policy, when non-nil, overrides the engine-wide supervision policy
	// for this job.
	Policy *Policy
	// FaultPlans is a chaos/test facility: the plans are injected into each
	// attempt's leased device, with fire-progress carried across attempts.
	// Ignored for Custom jobs, which manage their own leases.
	FaultPlans []gpu.FaultPlan
}

// Result reports one finished job.
type Result struct {
	Name   string
	Script string
	// AIG is the optimized network; on a cancelled job it is the partial
	// result (the network after the last completed command), and nil only
	// when the script failed to parse.
	AIG *aig.AIG
	// Err is nil on success, the (wrapped) context error when the job was
	// cancelled, or the script error. Contained engine failures do not set
	// Err — they are listed in Incidents.
	Err error
	// Cancelled reports that Err traces back to external cancellation (the
	// batch or engine shut down). Deadline expiries set TimedOut instead.
	Cancelled bool
	// TimedOut reports that Err traces back to an expired deadline — the
	// job's own Policy.JobTimeout or the batch-wide one.
	TimedOut bool
	// Quarantined reports that the job was poison: a retryable failure
	// class exhausted its retry budget (or the watchdog caught it stuck),
	// and the supervisor withdrew it rather than let it starve the pool.
	Quarantined bool
	// Attempts is how many supervised attempts ran (1 with no retries).
	Attempts int
	// Preemptions is how many attempts the watchdog preempted as stuck.
	Preemptions int

	Queued  time.Duration // submission -> start
	Wall    time.Duration // start -> finish, host time
	Modeled time.Duration // modeled device time (parallel jobs)

	NodesBefore, LevelsBefore int
	NodesAfter, LevelsAfter   int

	Timings   []flow.CommandTiming
	Incidents []flow.Incident
	Profile   []gpu.KernelProfile
	// CacheStats is the resynthesis-cache traffic observed during the job
	// (cache-global delta: with a shared cache it includes concurrent jobs').
	CacheStats rcache.Stats
}

// Metrics aggregates an engine's fleet statistics.
type Metrics struct {
	Workers   int // pool size W backing the engine
	Submitted int
	Started   int
	Finished  int // completed without error
	Failed    int
	Cancelled int
	// TimedOut counts jobs killed by a deadline (their own or the batch's);
	// Quarantined counts poison jobs withdrawn by the supervisor. Both are
	// disjoint from Failed and Cancelled.
	TimedOut    int
	Quarantined int
	// Retries counts extra attempts beyond the first, fleet-wide.
	Retries int
	// QueueDepth is the number of jobs still waiting at the time of the
	// Metrics call; PeakQueueDepth the high-water mark.
	QueueDepth     int
	PeakQueueDepth int
	// PeakWorkers is the pool's observed concurrency high-water mark
	// (never above Workers: the shared-budget invariant).
	PeakWorkers int
	// Wall spans the first submission to the last job completion. JobWall
	// sums per-job host time — their ratio is the job-level concurrency.
	Wall    time.Duration
	JobWall time.Duration
	// Modeled sums the modeled device time of all jobs.
	Modeled time.Duration
	// WorkerBusy sums the time pool workers spent executing kernel bodies.
	WorkerBusy time.Duration
}

// Utilization is the fraction of the worker budget kept busy:
// WorkerBusy / (Wall * Workers). Zero before any job finishes.
func (m Metrics) Utilization() float64 {
	if m.Wall <= 0 || m.Workers == 0 {
		return 0
	}
	return m.WorkerBusy.Seconds() / (m.Wall.Seconds() * float64(m.Workers))
}

// Options configures an Engine.
type Options struct {
	// MaxConcurrentJobs bounds how many jobs run at once (0 = the pool's
	// worker count). The pool already bounds host parallelism; this knob
	// bounds memory held by in-flight jobs and keeps the priority queue
	// meaningful.
	MaxConcurrentJobs int
	// Policy is the engine-wide supervision policy (zero = one attempt, no
	// deadline, no watchdog). Job.Policy overrides it per job.
	Policy Policy
	// Journal, when non-nil, receives every supervision event durably.
	Journal *journal.Journal
}

// Ticket is the handle Submit returns; Wait blocks for the job's Result.
type Ticket struct {
	done chan struct{}
	res  Result
}

// Wait blocks until the job finishes and returns its result.
func (t *Ticket) Wait() Result {
	<-t.done
	return t.res
}

// Done is closed when the job has finished.
func (t *Ticket) Done() <-chan struct{} { return t.done }

type queuedJob struct {
	job       Job
	ctx       context.Context
	ticket    *Ticket
	submitted time.Time
	seq       int // FIFO tie-break within a priority
	index     int // heap bookkeeping
}

// Engine admits jobs by priority onto a bounded set of job runners, leasing
// device capacity for each from the shared pool.
type Engine struct {
	pool   *Pool
	ctx    context.Context // engine-wide cancellation
	policy Policy
	jour   *journal.Journal

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	closed  bool
	seq     int
	metrics Metrics
	first   time.Time // first submission
	last    time.Time // latest completion

	runners sync.WaitGroup
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: engine closed")

// ErrDrained resolves the tickets of jobs that were still queued when
// Shutdown drained the engine: they never started and were not run.
var ErrDrained = errors.New("sched: engine drained before the job started")

// NewEngine starts an engine over pool. ctx, when non-nil, cancels every
// job (queued and running) engine-wide when it is done.
func NewEngine(ctx context.Context, pool *Pool, opts Options) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Engine{pool: pool, ctx: ctx, policy: opts.Policy, jour: opts.Journal}
	e.cond = sync.NewCond(&e.mu)
	e.metrics.Workers = pool.Workers()
	n := opts.MaxConcurrentJobs
	if n <= 0 {
		n = pool.Workers()
	}
	e.runners.Add(n)
	for i := 0; i < n; i++ {
		go e.runner()
	}
	return e
}

// Submit enqueues a job. ctx, when non-nil, cancels this job alone; the
// engine-wide context still applies. The returned Ticket resolves when the
// job finishes (or is cancelled while queued).
func (e *Engine) Submit(ctx context.Context, job Job) (*Ticket, error) {
	if job.AIG == nil {
		return nil, fmt.Errorf("sched: job %q has no input AIG", job.Name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if job.Name == "" {
		job.Name = job.AIG.Name
	}
	t := &Ticket{done: make(chan struct{})}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	now := time.Now()
	if e.metrics.Submitted == 0 {
		e.first = now
	}
	e.metrics.Submitted++
	q := &queuedJob{job: job, ctx: ctx, ticket: t, submitted: now, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, q)
	if d := len(e.queue); d > e.metrics.PeakQueueDepth {
		e.metrics.PeakQueueDepth = d
	}
	e.cond.Signal()
	return t, nil
}

// Close stops admission, drains the queue, and waits for every job to
// finish. Safe to call once; Submit afterwards returns ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.runners.Wait()
}

// Shutdown is the serve-mode drain: it stops admission, withdraws every job
// still waiting in the queue *without running it* — their tickets resolve
// Cancelled with an error wrapping ErrDrained, so a durable queue feeding
// the engine can checkpoint them — and waits for the in-flight jobs to
// finish until ctx is done.
//
// It returns how many queued jobs were dropped and whether every in-flight
// job finished before the deadline. On ok == false the stragglers are still
// running: cancel the engine-wide context to force them to stop at the next
// kernel-launch boundary, then Close (which waits) to reap them.
func (e *Engine) Shutdown(ctx context.Context) (dropped int, ok bool) {
	e.mu.Lock()
	e.closed = true
	for len(e.queue) > 0 {
		q := heap.Pop(&e.queue).(*queuedJob)
		res := Result{
			Name:      q.job.Name,
			Script:    q.job.Script,
			Err:       fmt.Errorf("sched: job %q: %w", q.job.Name, ErrDrained),
			Cancelled: true,
			Queued:    time.Since(q.submitted),
		}
		res.NodesBefore = q.job.AIG.NumAnds()
		res.LevelsBefore = q.job.AIG.Levels()
		e.metrics.Cancelled++
		e.jour.Append(journal.Entry{Job: q.job.Name, Event: journal.EventCancel,
			Detail: ErrDrained.Error()})
		q.ticket.res = res
		close(q.ticket.done)
		dropped++
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.runners.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return dropped, true
	case <-ctx.Done():
		return dropped, false
	}
}

// Metrics returns a snapshot of the fleet statistics.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.metrics
	m.QueueDepth = len(e.queue)
	if !e.first.IsZero() && e.last.After(e.first) {
		m.Wall = e.last.Sub(e.first)
	}
	m.PeakWorkers = e.pool.PeakWorkers()
	m.WorkerBusy = e.pool.BusyTime()
	return m
}

func (e *Engine) runner() {
	defer e.runners.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		q := heap.Pop(&e.queue).(*queuedJob)
		e.metrics.Started++
		e.mu.Unlock()
		res := e.run(q)
		e.mu.Lock()
		switch {
		case res.Quarantined:
			e.metrics.Quarantined++
		case res.TimedOut:
			e.metrics.TimedOut++
		case res.Cancelled:
			e.metrics.Cancelled++
		case res.Err != nil:
			e.metrics.Failed++
		default:
			e.metrics.Finished++
		}
		if res.Attempts > 1 {
			e.metrics.Retries += res.Attempts - 1
		}
		e.metrics.JobWall += res.Wall
		e.metrics.Modeled += res.Modeled
		e.last = time.Now()
		e.mu.Unlock()
		q.ticket.res = res
		close(q.ticket.done)
	}
}

// run executes one job under the merged per-job + engine-wide context,
// delegating the attempt loop to the supervisor (a zero policy runs exactly
// one attempt with no deadline or watchdog).
func (e *Engine) run(q *queuedJob) Result {
	res := Result{Name: q.job.Name, Script: q.job.Script}
	res.NodesBefore = q.job.AIG.NumAnds()
	res.LevelsBefore = q.job.AIG.Levels()
	start := time.Now()
	res.Queued = start.Sub(q.submitted)

	outer, cancel := context.WithCancel(q.ctx)
	defer cancel()
	stop := context.AfterFunc(e.ctx, cancel)
	defer stop()
	// AfterFunc fires asynchronously; if the engine-wide context is already
	// done, cancel synchronously so a queued job cannot slip through and run
	// to completion before the callback goroutine is scheduled.
	if e.ctx.Err() != nil {
		cancel()
	}

	pol := e.policy
	if q.job.Policy != nil {
		pol = *q.job.Policy
	}
	// Profiler labels: every sample taken inside this job's attempts — and in
	// any goroutine they spawn, worker bodies included — carries the job name,
	// so a CPU profile of a batch run breaks down by job out of the box.
	pprof.Do(outer, pprof.Labels("sched_job", q.job.Name), func(outer context.Context) {
		e.supervise(outer, q, pol, &res)
	})
	res.Wall = time.Since(start)
	if res.AIG != nil {
		res.NodesAfter = res.AIG.NumAnds()
		res.LevelsAfter = res.AIG.Levels()
	}
	return res
}

// RunJobs is the one-shot convenience: it runs jobs over a fresh engine on
// pool (engine-wide cancellation from ctx) and returns the results in
// submission order together with the fleet metrics. maxConcurrent bounds
// simultaneous jobs (0 = pool workers).
func RunJobs(ctx context.Context, pool *Pool, jobs []Job, maxConcurrent int) ([]Result, Metrics) {
	return RunSupervised(ctx, pool, jobs, Options{MaxConcurrentJobs: maxConcurrent})
}

// RunSupervised is RunJobs with full engine options: a supervision policy
// governing every job (per-job overrides via Job.Policy) and an optional
// durable journal receiving the fleet's lifecycle events.
func RunSupervised(ctx context.Context, pool *Pool, jobs []Job, opts Options) ([]Result, Metrics) {
	e := NewEngine(ctx, pool, opts)
	tickets := make([]*Ticket, len(jobs))
	for i, j := range jobs {
		t, err := e.Submit(ctx, j)
		if err != nil {
			tickets[i] = &Ticket{done: closedChan, res: Result{Name: j.Name, Script: j.Script, Err: err}}
			continue
		}
		tickets[i] = t
	}
	e.Close()
	out := make([]Result, len(jobs))
	for i, t := range tickets {
		out[i] = t.Wait()
	}
	return out, e.Metrics()
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// jobHeap is a max-heap on (Priority, -seq): highest priority first,
// submission order within a priority.
type jobHeap []*queuedJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *jobHeap) Push(x any) {
	q := x.(*queuedJob)
	q.index = len(*h)
	*h = append(*h, q)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	q := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return q
}
