package sched

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/hashtable"
)

// ErrStuck is the cancellation cause the watchdog sets when it preempts an
// attempt whose heartbeat went quiet. The attempt observes it as an ordinary
// context cancellation; the supervisor recovers the cause with context.Cause
// and classifies the attempt ClassStuck.
var ErrStuck = errors.New("sched: job preempted: heartbeat stalled")

// Class is the supervision class of a job failure: it decides whether a
// fresh attempt is worth a retry token.
type Class int

const (
	// ClassNone: no failure.
	ClassNone Class = iota
	// ClassTransient faults can plausibly clear on a fresh attempt: an
	// aborted kernel launch (*gpu.LaunchError), a full hash table, a
	// seam-gate rollback.
	ClassTransient
	// ClassPermanent faults reproduce on retry: equivalence refutations,
	// structural invariant violations, script parse errors, non-kernel
	// engine panics.
	ClassPermanent
	// ClassTimeout: the attempt's own deadline (Policy.JobTimeout) expired.
	ClassTimeout
	// ClassStuck: the watchdog preempted the attempt (heartbeat stalled).
	ClassStuck
	// ClassCancelled: cancellation from outside the supervisor — the batch
	// or engine shut down. Never retried.
	ClassCancelled
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return flow.ClassTransient
	case ClassPermanent:
		return flow.ClassPermanent
	case ClassTimeout:
		return "timeout"
	case ClassStuck:
		return "stuck"
	case ClassCancelled:
		return "cancelled"
	}
	return "unknown"
}

// Retryable reports whether a failure of this class may draw a retry token.
// Timeouts and watchdog preemptions are retryable: under fleet contention
// they are often transient, and the retry budget bounds the damage when they
// are not (the job is then quarantined).
func (c Class) Retryable() bool {
	return c == ClassTransient || c == ClassTimeout || c == ClassStuck
}

// Classify maps an attempt error to its supervision class.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var le *gpu.LaunchError
	switch {
	case errors.Is(err, ErrStuck):
		return ClassStuck
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCancelled
	case errors.Is(err, hashtable.ErrTableFull):
		return ClassTransient
	case errors.As(err, &le):
		return ClassTransient
	}
	return ClassPermanent
}

// Policy governs one supervised job: deadline, retry budget, backoff shape,
// and watchdog threshold. The zero Policy supervises nothing — one attempt,
// no deadline, no watchdog — so unsupervised callers pay nothing.
type Policy struct {
	// JobTimeout is the per-attempt deadline (0 = none). Distinct from
	// whole-batch cancellation: an expired attempt may be retried.
	JobTimeout time.Duration
	// Retries is the job's retry budget: how many extra attempts retryable
	// failures may consume (0 = fail/quarantine on the first failure).
	Retries int
	// RetryDegraded treats an attempt that completed but recorded
	// transient-class incidents (a contained kernel fault degraded a
	// command) as retryable: the degraded result is discarded and the job
	// re-runs, hoping for a clean pass. When the budget runs out the last
	// degraded result stands.
	RetryDegraded bool
	// Backoff is the delay before the first retry; each further retry
	// doubles it (default 5ms when retries are enabled).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 500ms).
	MaxBackoff time.Duration
	// StuckTimeout arms the watchdog: an attempt whose device heartbeat
	// advances nothing for this long is preempted (0 = no watchdog). Only
	// parallel and custom jobs are watched — sequential jobs never beat.
	StuckTimeout time.Duration
	// Seed makes retry jitter deterministic (tests); 0 is a valid seed.
	Seed int64
	// Budget, when non-nil, replaces the per-job budget minted from
	// Retries. A partitioned job shares one budget between its outer
	// attempts and its per-partition inner attempts, so partition retries
	// draw down the same allowance.
	Budget *RetryBudget
}

// enabled reports whether the policy asks for any supervision beyond a bare
// single attempt.
func (p Policy) enabled() bool {
	return p.JobTimeout > 0 || p.Retries > 0 || p.StuckTimeout > 0 ||
		p.RetryDegraded || p.Budget != nil
}

// retriesEnabled reports whether the policy carries a nonzero retry
// allowance (its own or a shared budget).
func (p Policy) retriesEnabled() bool {
	return p.Retries > 0 || p.Budget != nil
}

// backoffFor returns the pause before retrying after the given (1-based)
// failed attempt: exponential doubling from Backoff, capped at MaxBackoff,
// with deterministic ±50% jitter so synchronized retries de-correlate.
func (p Policy) backoffFor(attempt int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = 500 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	rng := rand.New(rand.NewSource(p.Seed*1000003 + int64(attempt)))
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// RetryBudget is a shared pool of retry tokens. A partitioned job hands one
// budget to both its outer supervisor and its per-partition jobs, so however
// the faults land, the job's total retry allowance is bounded.
type RetryBudget struct {
	n atomic.Int64
}

// NewRetryBudget mints a budget of n tokens.
func NewRetryBudget(n int) *RetryBudget {
	b := &RetryBudget{}
	b.n.Store(int64(n))
	return b
}

// Take claims one token; it reports false when the budget is exhausted.
// A nil budget has nothing to give.
func (b *RetryBudget) Take() bool {
	if b == nil {
		return false
	}
	for {
		cur := b.n.Load()
		if cur <= 0 {
			return false
		}
		if b.n.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Remaining reports the tokens left.
func (b *RetryBudget) Remaining() int {
	if b == nil {
		return 0
	}
	return int(b.n.Load())
}

// hbKey carries a *gpu.Heartbeat through a context so nested engines (a
// partitioned job fanning sub-jobs onto the same pool) attach their device
// leases to the supervising watchdog's heartbeat.
type hbKey struct{}

// WithHeartbeat returns a context carrying hb.
func WithHeartbeat(ctx context.Context, hb *gpu.Heartbeat) context.Context {
	return context.WithValue(ctx, hbKey{}, hb)
}

// HeartbeatFrom extracts the heartbeat installed by WithHeartbeat, or nil.
func HeartbeatFrom(ctx context.Context) *gpu.Heartbeat {
	hb, _ := ctx.Value(hbKey{}).(*gpu.Heartbeat)
	return hb
}
