package sched

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"aigre/internal/aig"
	"aigre/internal/flow"
)

func testAIG(seed int64) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	return aig.Random(rng, 10, 600, 6).Rehash()
}

// TestPoolExecuteBudget drives Execute directly and checks the budget
// invariant at its source: however many tasks one call carries, and however
// many calls run at once, no more than W bodies execute concurrently.
func TestPoolExecuteBudget(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]func(), 8)
			for i := range tasks {
				tasks[i] = func() { time.Sleep(time.Millisecond) }
			}
			p.Execute(tasks)
		}()
	}
	wg.Wait()
	if peak := p.PeakWorkers(); peak > 3 {
		t.Errorf("peak concurrency %d exceeds pool size 3", peak)
	}
	if p.BusyTime() <= 0 {
		t.Error("pool recorded no busy time")
	}
}

// TestEngineSharedBudgetStress is the acceptance criterion for the shared
// worker budget: many concurrent parallel jobs over a 2-worker pool must
// never occupy more than 2 host workers, and each job's result must equal
// the same script run alone (the parallel engines are deterministic, so
// scheduling may not change the optimization outcome).
func TestEngineSharedBudgetStress(t *testing.T) {
	const njobs = 8
	jobs := make([]Job, njobs)
	want := make([]int, njobs)
	for i := range jobs {
		a := testAIG(int64(100 + i%3)) // a few distinct circuits, reused
		jobs[i] = Job{
			Name:   a.Name,
			AIG:    a,
			Script: flow.RfResyn,
			Config: flow.Config{Parallel: true},
		}
		// Reference: the same job alone over its own fresh pool.
		ref, _ := RunJobs(context.Background(), mustPool(t, 2), []Job{jobs[i]}, 1)
		if ref[0].Err != nil {
			t.Fatalf("reference run failed: %v", ref[0].Err)
		}
		want[i] = ref[0].NodesAfter
	}

	pool := NewPool(2)
	defer pool.Close()
	results, m := RunJobs(context.Background(), pool, jobs, 0)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.NodesAfter != want[i] {
			t.Errorf("job %d: %d nodes under contention, %d alone", i, r.NodesAfter, want[i])
		}
		if r.AIG == nil || r.Timings == nil || r.Profile == nil {
			t.Errorf("job %d: incomplete result %+v", i, r)
		}
	}
	if m.PeakWorkers > 2 {
		t.Errorf("peak workers %d exceeds the pool budget 2", m.PeakWorkers)
	}
	if m.Finished != njobs || m.Failed != 0 || m.Cancelled != 0 {
		t.Errorf("metrics %+v, want %d finished", m, njobs)
	}
	if m.Workers != 2 {
		t.Errorf("metrics workers = %d, want 2", m.Workers)
	}
	if m.Submitted != njobs || m.Started != njobs {
		t.Errorf("submitted/started = %d/%d, want %d", m.Submitted, m.Started, njobs)
	}
}

func mustPool(t *testing.T, w int) *Pool {
	t.Helper()
	p := NewPool(w)
	t.Cleanup(p.Close)
	return p
}

// TestEngineCancellation cancels jobs mid-run and checks the contract: the
// job stops promptly, Err wraps context.Canceled, the result is marked
// Cancelled in the metrics, the input network is untouched, and no
// goroutines are left behind.
func TestEngineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	a := testAIG(7)
	nodesBefore := a.NumAnds()
	pool := NewPool(2)
	e := NewEngine(context.Background(), pool, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	// A long job: many repetitions of the full sequence.
	script := strings.Repeat(flow.Resyn2+"; ", 50) + "b"
	tk, err := e.Submit(ctx, Job{AIG: a, Script: script, Config: flow.Config{Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let it start
	cancel()
	start := time.Now()
	res := tk.Wait()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancelled job took %v to return", waited)
	}
	if res.Err == nil || !errors.Is(res.Err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", res.Err)
	}
	if !res.Cancelled {
		t.Error("result not marked Cancelled")
	}
	if a.NumAnds() != nodesBefore {
		t.Errorf("input mutated: %d -> %d nodes", nodesBefore, a.NumAnds())
	}
	e.Close()
	pool.Close()

	m := e.Metrics()
	if m.Cancelled != 1 {
		t.Errorf("metrics cancelled = %d, want 1", m.Cancelled)
	}
	if _, err := e.Submit(context.Background(), Job{AIG: a, Script: "b"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}

	// Goroutine-leak check: everything the engine and pool started must be
	// gone. Allow slack for runtime background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// TestEngineWideCancellation checks that cancelling the engine context
// cancels queued jobs too.
func TestEngineWideCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pool := NewPool(1)
	defer pool.Close()
	e := NewEngine(ctx, pool, Options{MaxConcurrentJobs: 1})
	script := strings.Repeat(flow.Resyn2+"; ", 50) + "b"
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := e.Submit(context.Background(), Job{AIG: testAIG(9), Script: script, Config: flow.Config{Parallel: true}})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	time.Sleep(10 * time.Millisecond)
	cancel()
	e.Close()
	cancelled := 0
	for _, tk := range tickets {
		if r := tk.Wait(); r.Cancelled {
			cancelled++
		}
	}
	if cancelled != 4 {
		t.Errorf("cancelled %d of 4 jobs", cancelled)
	}
}

// TestEnginePriorityOrder checks admission order on a single runner:
// priority first, submission order within a priority. The queue is built up
// while the runner is still blocked on the first job, and start order is
// read off the heap-pop sequence through per-job wall timestamps.
func TestEnginePriorityOrder(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	e := NewEngine(context.Background(), pool, Options{MaxConcurrentJobs: 1})

	// A blocker occupies the single runner long enough for the four probe
	// jobs to all be queued before any of them can start.
	blocker, err := e.Submit(context.Background(),
		Job{Name: "blocker", AIG: testAIG(1), Script: flow.Resyn2, Config: flow.Config{Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(name string, prio int) *Ticket {
		tk, err := e.Submit(context.Background(), Job{Name: name, AIG: testAIG(2), Script: "b; rw; b", Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		return tk
	}
	low1 := submit("low-1", 0)
	high := submit("high", 5)
	low2 := submit("low-2", 0)
	mid := submit("mid", 3)
	e.Close()
	if r := blocker.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}

	// With one runner the jobs execute strictly one after another, so the
	// queue delay orders them: first started = shortest wait. All four were
	// submitted within microseconds, while each run takes far longer.
	waits := map[string]time.Duration{}
	for _, tk := range []*Ticket{low1, high, low2, mid} {
		r := tk.Wait()
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		waits[r.Name] = r.Queued
	}
	if !(waits["high"] < waits["mid"] && waits["mid"] < waits["low-1"] && waits["low-1"] < waits["low-2"]) {
		t.Errorf("admission order by queue delay: high=%v mid=%v low-1=%v low-2=%v",
			waits["high"], waits["mid"], waits["low-1"], waits["low-2"])
	}
	if m := e.Metrics(); m.PeakQueueDepth < 4 {
		t.Errorf("peak queue depth %d, want >= 4", m.PeakQueueDepth)
	}
}

// TestLeaseClamp pins the lease bounds: never wider than the pool, never
// less than one worker.
func TestLeaseClamp(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ req, want int }{{0, 4}, {-1, 4}, {2, 2}, {99, 4}} {
		if got := p.Lease(tc.req).Workers(); got != tc.want {
			t.Errorf("Lease(%d).Workers() = %d, want %d", tc.req, got, tc.want)
		}
	}
}
