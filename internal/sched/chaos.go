package sched

import (
	"math/rand"
	"time"

	"aigre/internal/gpu"
	"aigre/internal/hashtable"
)

// chaosKernels is the fault-injection vocabulary: kernel-name substrings that
// every script built from the standard commands launches, so a plan aimed at
// any of them is guaranteed a target. Panic-kind plans may hit all of them;
// corrupt-kind plans are pinned to "balance/gather" because that is the
// launch whose lost writes the per-command equivalence gate provably catches
// (silent corruption elsewhere could slip past sampling and poison a run in
// a way no supervisor can classify).
var chaosKernels = []string{
	"rewrite/evaluate",
	"refactor/resynth",
	"balance/insert-pass",
	"balance/gather",
	"dedup/level",
}

// ChaosSchedule builds a deterministic pseudo-random fault schedule of n
// plans for chaos tests: each plan targets a random kernel from the standard
// vocabulary and either panics with the generic injected-fault error, panics
// with hashtable.ErrTableFull (modeling a typed device-side failure), or
// silently corrupts a balance/gather launch. The same seed always yields the
// same schedule, so a chaos run is exactly reproducible.
func ChaosSchedule(seed int64, n int) []gpu.FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	plans := make([]gpu.FaultPlan, 0, n)
	for i := 0; i < n; i++ {
		p := gpu.FaultPlan{
			Kernel: chaosKernels[rng.Intn(len(chaosKernels))],
			Nth:    1 + rng.Intn(3),
			Kind:   gpu.FaultPanic,
		}
		switch rng.Intn(3) {
		case 1:
			p.Panic = hashtable.ErrTableFull
		case 2:
			p.Kernel = "balance/gather"
			p.Kind = gpu.FaultCorrupt
		}
		plans = append(plans, p)
	}
	return plans
}

// StallSchedule builds a poison-job schedule: hits launches of the kernel
// each stall for the given duration, so every supervised attempt of the job
// goes quiet again and the watchdog must preempt it anew. Every plan is
// armed at Nth 1: a launch fires the first unspent plan and leaves the rest
// untouched (injection stops at the firing plan), so the schedule burns one
// plan per stalled launch no matter how attempts slice the launch sequence.
// Sizing hits above the retry budget guarantees the job ends up quarantined.
func StallSchedule(kernel string, hits int, stall time.Duration) []gpu.FaultPlan {
	plans := make([]gpu.FaultPlan, hits)
	for i := range plans {
		plans[i] = gpu.FaultPlan{Kernel: kernel, Nth: 1, Kind: gpu.FaultStall, Stall: stall}
	}
	return plans
}
