package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"aigre/internal/flow"
)

// TestShutdownDrainsQueuedAndWaitsInFlight is the serve-mode drain contract:
// Shutdown withdraws queued jobs without running them (tickets resolve with
// ErrDrained), keeps in-flight jobs running, and reports whether they beat
// the deadline.
func TestShutdownDrainsQueuedAndWaitsInFlight(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	e := NewEngine(context.Background(), pool, Options{MaxConcurrentJobs: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	ran := make(map[string]bool)
	mk := func(name string) Job {
		a := testAIG(1)
		return Job{Name: name, AIG: a, Script: "b", Custom: func(ctx context.Context, p *Pool) (flow.Result, error) {
			ran[name] = true // MaxConcurrentJobs=1 serializes runners
			if name == "slow" {
				close(started)
				<-release
			}
			return flow.Result{AIG: a}, nil
		}}
	}
	slow, err := e.Submit(context.Background(), mk("slow"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // slow is in flight; the rest will sit in the queue
	q1, err := e.Submit(context.Background(), mk("queued1"))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Submit(context.Background(), mk("queued2"))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	dropped, ok := e.Shutdown(ctx)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if ok {
		t.Fatal("Shutdown reported ok with a job still in flight")
	}
	for _, tk := range []*Ticket{q1, q2} {
		res := tk.Wait()
		if !errors.Is(res.Err, ErrDrained) || !res.Cancelled {
			t.Fatalf("queued job result: err=%v cancelled=%v, want ErrDrained", res.Err, res.Cancelled)
		}
		if res.NodesBefore == 0 {
			t.Error("drained result lost the before-stats")
		}
	}
	if ran["queued1"] || ran["queued2"] {
		t.Fatal("a drained job was executed")
	}

	// Admission is closed.
	if _, err := e.Submit(context.Background(), mk("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown: %v, want ErrClosed", err)
	}

	// Release the in-flight job: it must finish normally, and a second
	// Shutdown (nothing queued, nothing running) must report ok.
	close(release)
	if res := slow.Wait(); res.Err != nil {
		t.Fatalf("in-flight job after drain: %v", res.Err)
	}
	if _, ok := e.Shutdown(context.Background()); !ok {
		t.Fatal("second Shutdown with idle engine not ok")
	}
	m := e.Metrics()
	if m.Cancelled != 2 || m.Finished != 1 {
		t.Fatalf("metrics = %+v, want 2 cancelled / 1 finished", m)
	}
}

// TestShutdownCompletesInFlightInTime checks the clean-drain path: with a
// generous deadline, Shutdown returns ok once the running job finishes.
func TestShutdownCompletesInFlightInTime(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	e := NewEngine(context.Background(), pool, Options{MaxConcurrentJobs: 1})
	a := testAIG(2)
	started := make(chan struct{})
	tk, err := e.Submit(context.Background(), Job{Name: "j", AIG: a, Script: "b",
		Custom: func(ctx context.Context, p *Pool) (flow.Result, error) {
			close(started)
			time.Sleep(20 * time.Millisecond)
			return flow.Result{AIG: a}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dropped, ok := e.Shutdown(ctx)
	if dropped != 0 || !ok {
		t.Fatalf("Shutdown = (%d, %v), want (0, true)", dropped, ok)
	}
	if res := tk.Wait(); res.Err != nil {
		t.Fatalf("drained in-flight job: %v", res.Err)
	}
}
