package aig

import "fmt"

// Check validates the structural invariants of an AIG and returns the first
// violation found, or nil. It is the integrity gate run by the guarded flow
// layer on every pass output, so it must accept every legal network state
// (including mid-edit states with deleted nodes and non-topological id
// order) while rejecting anything a downstream consumer could trip over:
//
//   - fanin literals of live AND nodes are in range, do not reference the
//     node itself, and do not reference deleted nodes;
//   - the live subgraph is acyclic (a topological order exists);
//   - PO literals are in range and do not reference deleted nodes;
//   - when structural hashing is enabled, every live table entry's key
//     matches the normalized fanin pair of the node it names;
//   - when fanout tracking is enabled, the fanout lists and PO reference
//     counts agree exactly with the fanin edges and PO literals.
func Check(a *AIG) error {
	n := int32(len(a.fanin0))
	if int(a.numPIs)+1 > len(a.fanin0) {
		return fmt.Errorf("aig: %d PIs but only %d objects", a.numPIs, len(a.fanin0))
	}
	for id := a.numPIs + 1; id < n; id++ {
		if a.IsDeleted(id) {
			continue
		}
		for _, f := range [2]Lit{a.fanin0[id], a.fanin1[id]} {
			v := f.Var()
			if v < 0 || v >= n {
				return fmt.Errorf("aig: node %d fanin literal %d out of range", id, f)
			}
			if v == id {
				return fmt.Errorf("aig: node %d references itself", id)
			}
			if a.IsDeleted(v) {
				return fmt.Errorf("aig: node %d references deleted node %d", id, v)
			}
		}
	}
	for i, p := range a.pos {
		if v := p.Var(); v < 0 || v >= n {
			return fmt.Errorf("aig: PO %d literal %d out of range", i, p)
		} else if a.IsDeleted(v) {
			return fmt.Errorf("aig: PO %d references deleted node %d", i, v)
		}
	}
	if err := a.checkAcyclic(); err != nil {
		return err
	}
	if a.strash != nil {
		if err := a.checkStrash(); err != nil {
			return err
		}
	}
	if a.fanouts != nil {
		if err := a.checkFanouts(); err != nil {
			return err
		}
	}
	return nil
}

// Check validates structural invariants; see the package-level Check.
func (a *AIG) Check() error { return Check(a) }

// checkAcyclic verifies that a topological order of the live AND nodes
// exists, via an iterative three-color depth-first search.
func (a *AIG) checkAcyclic() error {
	const (
		white = byte(0) // unvisited
		grey  = byte(1) // on the DFS path
		black = byte(2) // finished
	)
	n := int32(len(a.fanin0))
	color := make([]byte, n)
	for id := int32(0); id <= a.numPIs; id++ {
		color[id] = black
	}
	var stack []int32
	for root := a.numPIs + 1; root < n; root++ {
		if a.IsDeleted(root) || color[root] != white {
			continue
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			if color[cur] == black {
				stack = stack[:len(stack)-1]
				continue
			}
			color[cur] = grey
			advanced := false
			for _, f := range [2]Lit{a.fanin0[cur], a.fanin1[cur]} {
				v := f.Var()
				switch color[v] {
				case grey:
					return fmt.Errorf("aig: cycle through node %d (fanin %d)", cur, v)
				case white:
					stack = append(stack, v)
					advanced = true
				}
			}
			if !advanced {
				color[cur] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// checkStrash verifies that every structural-hashing entry naming a live AND
// node carries that node's normalized fanin key. Entries naming deleted
// nodes are tolerated (Lookup skips them), but an entry must never name a
// non-AND object, and a node's recorded key must match its actual fanins —
// a mismatch means lookups would alias distinct functions.
func (a *AIG) checkStrash() error {
	var err error
	a.strash.forEach(func(k uint64, id int32) {
		if err != nil {
			return
		}
		if !a.IsAnd(id) {
			err = fmt.Errorf("aig: strash key %#x names non-AND object %d", k, id)
			return
		}
		if a.IsDeleted(id) {
			return
		}
		if got := Key(a.fanin0[id], a.fanin1[id]); got != k {
			err = fmt.Errorf("aig: strash key %#x names node %d whose fanin key is %#x", k, id, got)
		}
	})
	return err
}

// checkFanouts verifies that fanout lists and PO reference counts agree with
// the fanin edges: each live AND contributes one fanout entry per fanin edge
// (two entries when both fanins reference the same node), deleted nodes have
// no fanout entries, and nPORefs matches the PO literals exactly.
func (a *AIG) checkFanouts() error {
	n := int32(len(a.fanin0))
	expected := make([]int32, n)
	for id := a.numPIs + 1; id < n; id++ {
		if a.IsDeleted(id) {
			continue
		}
		expected[a.fanin0[id].Var()]++
		expected[a.fanin1[id].Var()]++
	}
	for v := int32(0); v < n; v++ {
		fos := a.fanouts[v]
		if int32(len(fos)) != expected[v] {
			return fmt.Errorf("aig: node %d has %d fanout entries, want %d", v, len(fos), expected[v])
		}
		for _, f := range fos {
			if !a.IsAnd(f) || a.IsDeleted(f) {
				return fmt.Errorf("aig: node %d lists dead fanout %d", v, f)
			}
			if a.fanin0[f].Var() != v && a.fanin1[f].Var() != v {
				return fmt.Errorf("aig: node %d lists fanout %d that does not reference it", v, f)
			}
		}
	}
	poRefs := make([]int32, n)
	for _, p := range a.pos {
		poRefs[p.Var()]++
	}
	for v := int32(0); v < n; v++ {
		if a.nPORefs[v] != poRefs[v] {
			return fmt.Errorf("aig: node %d has PO refcount %d, want %d", v, a.nPORefs[v], poRefs[v])
		}
	}
	return nil
}
