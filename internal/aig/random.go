package aig

import "math/rand"

// Random builds a pseudo-random strashed AIG with the given number of PIs,
// roughly nAnds AND nodes, and nPOs primary outputs. The generator combines
// recent signals preferentially, producing DAGs with realistic depth and
// reconvergence, in the spirit of the EPFL "MtM" (more-than-a-million)
// random-function benchmarks. Structural hashing may make the result
// slightly smaller than nAnds.
func Random(rng *rand.Rand, nPIs, nAnds, nPOs int) *AIG {
	a := NewCap(nPIs, nPIs+1+nAnds)
	a.EnableStrash()
	lits := make([]Lit, 0, nPIs+nAnds)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, a.PI(i))
	}
	for a.NumAnds() < nAnds {
		// Bias toward recent nodes to build depth, with occasional long
		// back-edges for reconvergence.
		i := pickBiased(rng, len(lits))
		j := pickBiased(rng, len(lits))
		f0 := lits[i].NotCond(rng.Intn(2) == 0)
		f1 := lits[j].NotCond(rng.Intn(2) == 0)
		l := a.NewAnd(f0, f1)
		if a.IsAnd(l.Var()) {
			lits = append(lits, l)
		}
	}
	// Drive POs from the most recent signals so most of the graph is
	// reachable.
	for i := 0; i < nPOs; i++ {
		idx := len(lits) - 1 - rng.Intn(min(len(lits), 4*nPOs))
		if idx < 0 {
			idx = rng.Intn(len(lits))
		}
		a.AddPO(lits[idx].NotCond(rng.Intn(2) == 0))
	}
	return a
}

func pickBiased(rng *rand.Rand, n int) int {
	if n == 1 {
		return 0
	}
	if rng.Intn(4) == 0 {
		return rng.Intn(n) // uniform back-edge
	}
	w := n / 4
	if w < 1 {
		w = 1
	}
	return n - 1 - rng.Intn(w)
}

func min(x, y int) int {
	if x < y {
		return x
	}
	return y
}
