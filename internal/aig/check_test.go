package aig

import (
	"math/rand"
	"strings"
	"testing"
)

// validNet builds a small valid strashed network with fanout tracking.
func validNet() *AIG {
	a := New(3)
	a.EnableStrash()
	x, y, z := a.PI(0), a.PI(1), a.PI(2)
	a.AddPO(a.Or(a.NewAnd(x, y), a.NewAnd(y.Not(), z)))
	a.EnableFanouts()
	return a
}

func TestCheckAcceptsValidNetworks(t *testing.T) {
	if err := Check(validNet()); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	r := Random(rng, 8, 300, 4)
	if err := Check(r); err != nil {
		t.Fatalf("random network rejected: %v", err)
	}
	if err := r.Check(); err != nil { // method delegates
		t.Fatalf("method Check rejected: %v", err)
	}
}

func TestCheckDetectsCycle(t *testing.T) {
	a := New(2)
	l1 := a.AddAndUnchecked(a.PI(0), a.PI(1))
	l2 := a.AddAndUnchecked(l1, a.PI(0))
	a.AddPO(l2)
	// Close a cycle: l1's fanin becomes l2.
	a.SetFanins(l1.Var(), l2, a.PI(1))
	err := Check(a)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestCheckDetectsSelfReference(t *testing.T) {
	a := New(1)
	l := a.AddAndUnchecked(a.PI(0), a.PI(0).Not())
	a.AddPO(l)
	a.SetFanins(l.Var(), l, a.PI(0))
	err := Check(a)
	if err == nil || !strings.Contains(err.Error(), "references itself") {
		t.Fatalf("self-reference not detected: %v", err)
	}
}

func TestCheckDetectsOutOfRangeFanin(t *testing.T) {
	a := New(1)
	l := a.AddAndUnchecked(a.PI(0), a.PI(0))
	a.AddPO(l)
	a.SetFanins(l.Var(), MakeLit(999, false), a.PI(0))
	err := Check(a)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range fanin not detected: %v", err)
	}
}

func TestCheckDetectsBadPO(t *testing.T) {
	a := New(1)
	a.AddPO(MakeLit(50, true))
	err := Check(a)
	if err == nil || !strings.Contains(err.Error(), "PO") {
		t.Fatalf("bad PO not detected: %v", err)
	}
}

func TestCheckDetectsStrashMismatch(t *testing.T) {
	a := New(3)
	a.EnableStrash()
	and := a.NewAnd(a.PI(0), a.PI(1))
	a.AddPO(and)
	// Corrupt the node's fanins behind the table's back.
	a.SetFanins(and.Var(), a.PI(1), a.PI(2))
	err := Check(a)
	if err == nil || !strings.Contains(err.Error(), "strash") {
		t.Fatalf("strash mismatch not detected: %v", err)
	}
}

func TestCheckDetectsFanoutInconsistency(t *testing.T) {
	// No strash here: the corruption below must be caught by the fanout
	// check, not masked by the strash one.
	a := New(3)
	and1 := a.AddAndUnchecked(a.PI(0), a.PI(1))
	and2 := a.AddAndUnchecked(and1, a.PI(1).Not())
	a.AddPO(and2)
	a.EnableFanouts()
	if err := Check(a); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	// Corrupt: rewire a node's fanin without updating fanout lists.
	var target int32
	a.ForEachAnd(func(id int32) { target = id })
	f0 := a.Fanin0(target)
	// Swap in a complemented PI edge the fanout lists don't know about.
	a.fanin0[target] = a.PI(2).Not()
	err := Check(a)
	if err == nil || !strings.Contains(err.Error(), "fanout") {
		t.Fatalf("fanout inconsistency not detected: %v", err)
	}
	a.fanin0[target] = f0
	if err := Check(a); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	// Corrupt the PO refcount.
	a.nPORefs[a.POs()[0].Var()]++
	err = Check(a)
	if err == nil || !strings.Contains(err.Error(), "PO refcount") {
		t.Fatalf("PO refcount inconsistency not detected: %v", err)
	}
}

func TestCheckToleratesDeletedNodesAndMidEditStates(t *testing.T) {
	a := New(2)
	a.EnableStrash()
	and1 := a.NewAnd(a.PI(0), a.PI(1))
	and2 := a.NewAnd(and1, a.PI(0).Not())
	a.AddPO(and2)
	a.EnableFanouts()
	// In-place replacement leaves deleted nodes behind; Check must accept.
	a.ReplaceNode(and2.Var(), and1)
	if err := Check(a); err != nil {
		t.Fatalf("mid-edit state rejected: %v", err)
	}
}
