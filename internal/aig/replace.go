package aig

import "fmt"

// replPair is one pending in-place replacement.
type replPair struct {
	old int32
	new Lit
}

// ReplaceNode performs an in-place replacement of node old by literal new:
// all fanouts and POs of old are redirected to new (preserving edge
// complementation), and the MFFC of old is deleted. If redirecting a fanout
// makes it trivial (constant propagation) or a structural duplicate of an
// existing node, the fanout is replaced in turn, cascading as in ABC's
// Abc_AigReplace. Requires EnableStrash and EnableFanouts.
//
// new must be a live node (or constant/PI literal) that is not in the
// transitive fanout of old.
func (a *AIG) ReplaceNode(old int32, new Lit) {
	if a.strash == nil || a.fanouts == nil {
		panic("aig: ReplaceNode requires EnableStrash and EnableFanouts")
	}
	if !a.IsAnd(old) {
		panic(fmt.Sprintf("aig: ReplaceNode target %d is not an AND node", old))
	}
	stack := []replPair{{old, new}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stack = a.replaceOne(p.old, p.new, stack)
	}
}

func (a *AIG) replaceOne(old int32, new Lit, stack []replPair) []replPair {
	if a.IsDeleted(old) {
		return stack // already removed by an earlier cascade
	}
	if new.Var() == old {
		if new.IsCompl() {
			panic("aig: replacing a node by its own complement")
		}
		return stack
	}
	if a.IsDeleted(new.Var()) {
		// The scheduled replacement target was deleted by an earlier cascade
		// (its last reference sat inside a removed cone). Keep old as the
		// surviving copy and re-register its key, which the duplicate merge
		// had ceded to the now-deleted node.
		a.strash.setIfAbsent(Key(a.fanin0[old], a.fanin1[old]), old)
		return stack
	}
	// Redirect AND fanouts. Iterate over a snapshot: patchFanin mutates the
	// fanout list of old.
	fos := append([]int32(nil), a.fanouts[old]...)
	for _, f := range fos {
		if a.IsDeleted(f) {
			continue
		}
		stack = a.patchFanin(f, old, new, stack)
	}
	// Redirect POs.
	if a.nPORefs[old] > 0 {
		for i, p := range a.pos {
			if p.Var() == old {
				a.SetPO(i, new.NotCond(p.IsCompl()))
			}
		}
	}
	// old is now unreferenced; delete its MFFC.
	if a.FanoutCount(old) == 0 {
		a.deleteCone(old)
	}
	return stack
}

// patchFanin rewrites every fanin edge of node f that points at old so that
// it points at new (preserving complementation), maintaining the strash
// table and fanout lists, and scheduling a cascaded replacement when f
// becomes trivial or duplicate.
func (a *AIG) patchFanin(f, old int32, new Lit, stack []replPair) []replPair {
	of0, of1 := a.fanin0[f], a.fanin1[f]
	nf0, nf1 := of0, of1
	if of0.Var() == old {
		nf0 = new.NotCond(of0.IsCompl())
	}
	if of1.Var() == old {
		nf1 = new.NotCond(of1.IsCompl())
	}
	if nf0 == of0 && nf1 == of1 {
		return stack // f may appear in the snapshot after an earlier patch
	}
	if nf0 > nf1 {
		nf0, nf1 = nf1, nf0
	}
	// Unhook the old key and fanout edges.
	a.strash.delIf(Key(of0, of1), f)
	a.removeFanout(of0.Var(), f)
	a.removeFanout(of1.Var(), f)
	// Hook up the new fanins.
	a.fanin0[f] = nf0
	a.fanin1[f] = nf1
	a.addFanout(nf0.Var(), f)
	a.addFanout(nf1.Var(), f)

	if lit, ok := SimplifyAnd(nf0, nf1); ok {
		// f became trivial; replace it by the simplified literal.
		return append(stack, replPair{f, lit})
	}
	newKey := Key(nf0, nf1)
	if g, ok := a.strash.get(newKey); ok && g != f && !a.IsDeleted(g) {
		// f became a structural duplicate of g.
		return append(stack, replPair{f, MakeLit(g, false)})
	}
	a.strash.set(newKey, f)
	return stack
}

// deleteCone removes root and, recursively, fanins whose reference count
// drops to zero (root's MFFC). Nodes are unhooked from the strash table and
// the fanout lists and marked deleted.
func (a *AIG) deleteCone(root int32) {
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.IsDeleted(cur) || !a.IsAnd(cur) {
			continue
		}
		if a.FanoutCount(cur) != 0 {
			continue
		}
		f0, f1 := a.fanin0[cur], a.fanin1[cur]
		a.strash.delIf(Key(f0, f1), cur)
		a.removeFanout(f0.Var(), cur)
		a.removeFanout(f1.Var(), cur)
		a.deleted[cur] = true
		a.numDead++
		a.fanouts[cur] = nil
		if v := f0.Var(); a.IsAnd(v) && a.FanoutCount(v) == 0 {
			stack = append(stack, v)
		}
		if v := f1.Var(); a.IsAnd(v) && a.FanoutCount(v) == 0 && v != f0.Var() {
			stack = append(stack, v)
		}
	}
}

// RemoveIfDangling deletes the cone of id when id has no references left
// (convenience for callers that speculatively built nodes). Requires
// EnableFanouts.
func (a *AIG) RemoveIfDangling(id int32) {
	if a.IsAnd(id) && !a.IsDeleted(id) && a.FanoutCount(id) == 0 {
		a.deleteCone(id)
	}
}

// SweepDangling deletes every AND node that is not referenced by any PO or
// live node, in place. Requires EnableFanouts. Returns the number of nodes
// removed.
func (a *AIG) SweepDangling() int {
	if a.fanouts == nil {
		panic("aig: SweepDangling requires EnableFanouts")
	}
	before := a.NumAnds()
	for id := a.numPIs + 1; int(id) < len(a.fanin0); id++ {
		if !a.IsDeleted(id) && a.FanoutCount(id) == 0 {
			a.deleteCone(id)
		}
	}
	return before - a.NumAnds()
}
