package aig

import (
	"strings"
	"testing"
)

// TestCompactSafeAcceptsValid pins that the checked path matches Compact on
// well-formed networks, including ones with deleted nodes.
func TestCompactSafeAcceptsValid(t *testing.T) {
	a := New(2)
	a.EnableStrash()
	keep := a.NewAnd(a.PI(0), a.PI(1))
	a.NewAnd(a.PI(0), a.PI(1).Not()) // dangling
	a.AddPO(keep.Not())
	a.EnableFanouts()
	a.SweepDangling()

	want, _ := a.Compact()
	got, _, err := a.CompactSafe()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAnds() != want.NumAnds() || got.NumPOs() != want.NumPOs() {
		t.Fatalf("CompactSafe shape %v, Compact shape %v", got.Stats(), want.Stats())
	}
}

func TestCompactSafeRejectsDeletedPORef(t *testing.T) {
	a := New(2)
	n := a.AddAndUnchecked(a.PI(0), a.PI(1))
	a.EnableFanouts()
	a.SweepDangling() // n has no references yet: deleted
	a.AddPO(n)        // PO now points at the deleted node
	if _, _, err := a.CompactSafe(); err == nil || !strings.Contains(err.Error(), "deleted") {
		t.Fatalf("want deleted-node error, got %v", err)
	}
}

// TestCompactSafeRejectsCycle pins termination on cyclic input: plain
// Compact's traversal never terminates on this network, so before the
// checked variant existed there was no safe way to reject it.
func TestCompactSafeRejectsCycle(t *testing.T) {
	a := New(1)
	first := a.ExtendSlots(2)
	a.SetFanins(first, MakeLit(first+1, false), a.PI(0))
	a.SetFanins(first+1, MakeLit(first, false), a.PI(0))
	a.AddPO(MakeLit(first, false))
	if _, _, err := a.CompactSafe(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestCompactSafeRejectsOutOfRangePO(t *testing.T) {
	a := New(1)
	a.AddPO(MakeLit(9, false))
	if _, _, err := a.CompactSafe(); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}
