// Package aig implements the And-Inverter Graph (AIG) substrate used by all
// optimization algorithms in this repository.
//
// An AIG is a Boolean network in which every internal node is a two-input AND
// gate whose fanin signals may be complemented. Signals are encoded as
// literals in the AIGER convention: literal = 2*node + complement. Node 0 is
// the constant-false node, so literal 0 is constant false and literal 1 is
// constant true.
//
// Node ids are allocated as: 0 (constant), 1..NumPIs (primary inputs),
// NumPIs+1.. (AND nodes). Newly created AND nodes always reference existing
// nodes, so an AIG is in topological id order unless in-place replacement
// (ReplaceNode) has been used; Compact restores topological order.
package aig

import (
	"fmt"
	"math/bits"
)

// Lit is a signal literal: 2*node | complement.
type Lit uint32

// ConstFalse and ConstTrue are the two literals of the constant node 0.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MakeLit builds the literal for node id with the given complement flag.
func MakeLit(id int32, compl bool) Lit {
	l := Lit(uint32(id) << 1)
	if compl {
		l |= 1
	}
	return l
}

// Var returns the node id of the literal.
func (l Lit) Var() int32 { return int32(l >> 1) }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 != 0 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotCond returns the literal complemented when c is true.
func (l Lit) NotCond(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Regular returns the non-complemented literal of the same node.
func (l Lit) Regular() Lit { return l &^ 1 }

func (l Lit) String() string {
	if l.IsCompl() {
		return fmt.Sprintf("!%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// AIG is an And-Inverter Graph. The zero value is not usable; construct with
// New.
//
// The basic structure (fanins, POs) is always available. Optional features
// are enabled on demand:
//
//   - structural hashing (EnableStrash / NewAnd) guarantees node uniqueness;
//   - fanout tracking (EnableFanouts) supports in-place replacement and
//     MFFC computation.
type AIG struct {
	Name string

	numPIs int32
	fanin0 []Lit // indexed by node id; zero for const and PIs
	fanin1 []Lit
	pos    []Lit // primary output literals

	// optional features
	strash  *strashTable // (fanin0,fanin1) -> node id (see strash.go)
	fanouts [][]int32    // node id -> fanout node ids (POs not included)
	nPORefs []int32      // node id -> number of POs referencing it
	deleted []bool       // node id -> node has been removed (in-place editing)
	numDead int32        // number of deleted AND nodes
}

// New creates an AIG with numPIs primary inputs and no AND nodes.
func New(numPIs int) *AIG {
	a := &AIG{
		numPIs: int32(numPIs),
		fanin0: make([]Lit, numPIs+1, 2*(numPIs+1)),
		fanin1: make([]Lit, numPIs+1, 2*(numPIs+1)),
	}
	return a
}

// NewCap creates an AIG with numPIs primary inputs, reserving capacity for
// about capNodes total nodes.
func NewCap(numPIs, capNodes int) *AIG {
	if capNodes < numPIs+1 {
		capNodes = numPIs + 1
	}
	a := &AIG{
		numPIs: int32(numPIs),
		fanin0: make([]Lit, numPIs+1, capNodes),
		fanin1: make([]Lit, numPIs+1, capNodes),
	}
	return a
}

// NumPIs returns the number of primary inputs.
func (a *AIG) NumPIs() int { return int(a.numPIs) }

// NumPOs returns the number of primary outputs.
func (a *AIG) NumPOs() int { return len(a.pos) }

// NumObjs returns the total number of objects: constant + PIs + AND nodes
// (including deleted ones, if any). Valid node ids are 0..NumObjs()-1.
func (a *AIG) NumObjs() int { return len(a.fanin0) }

// NumAnds returns the number of live AND nodes.
func (a *AIG) NumAnds() int { return len(a.fanin0) - int(a.numPIs) - 1 - int(a.numDead) }

// IsConst reports whether id is the constant node.
func (a *AIG) IsConst(id int32) bool { return id == 0 }

// IsPI reports whether id is a primary input node.
func (a *AIG) IsPI(id int32) bool { return id >= 1 && id <= a.numPIs }

// IsAnd reports whether id is an AND node (possibly deleted).
func (a *AIG) IsAnd(id int32) bool { return id > a.numPIs && int(id) < len(a.fanin0) }

// IsDeleted reports whether the node has been removed by in-place editing.
func (a *AIG) IsDeleted(id int32) bool {
	return a.deleted != nil && a.deleted[id]
}

// PI returns the literal of the i-th primary input (0-based, non-complemented).
func (a *AIG) PI(i int) Lit {
	if i < 0 || int32(i) >= a.numPIs {
		panic(fmt.Sprintf("aig: PI index %d out of range (%d PIs)", i, a.numPIs))
	}
	return MakeLit(int32(i+1), false)
}

// PO returns the literal driving the i-th primary output.
func (a *AIG) PO(i int) Lit { return a.pos[i] }

// POs returns the slice of primary output literals. The caller must not
// modify it.
func (a *AIG) POs() []Lit { return a.pos }

// SetPO redirects the i-th primary output to drive lit.
func (a *AIG) SetPO(i int, lit Lit) {
	old := a.pos[i]
	a.pos[i] = lit
	if a.nPORefs != nil {
		a.nPORefs[old.Var()]--
		a.nPORefs[lit.Var()]++
	}
}

// AddPO appends a primary output driven by lit and returns its index.
func (a *AIG) AddPO(lit Lit) int {
	a.pos = append(a.pos, lit)
	if a.nPORefs != nil {
		a.nPORefs[lit.Var()]++
	}
	return len(a.pos) - 1
}

// Fanin0 returns the first fanin literal of an AND node.
func (a *AIG) Fanin0(id int32) Lit { return a.fanin0[id] }

// Fanin1 returns the second fanin literal of an AND node.
func (a *AIG) Fanin1(id int32) Lit { return a.fanin1[id] }

// Key packs a normalized fanin pair into a structural-hashing key. Fanins are
// ordered so that the smaller literal comes first, matching NewAnd's
// normalization.
func Key(f0, f1 Lit) uint64 {
	if f0 > f1 {
		f0, f1 = f1, f0
	}
	return uint64(f0)<<32 | uint64(f1)
}

// KeyUnpack splits a structural-hashing key back into its fanin literals.
func KeyUnpack(k uint64) (f0, f1 Lit) {
	return Lit(k >> 32), Lit(k & 0xffffffff)
}

// HashKey mixes a structural key into a table slot hash. Exported so that the
// concurrent hash table and the sequential strash map can agree on hashing
// behaviour in tests.
func HashKey(k uint64) uint64 {
	// 64-bit finalizer (splitmix64).
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// EnableStrash builds the structural-hashing table for the current nodes,
// pre-sized for the network's remaining append capacity (strash.go documents
// the sizing discipline). Subsequent NewAnd calls reuse existing nodes with
// identical fanin pairs. If duplicate pairs already exist, the first
// occurrence wins.
func (a *AIG) EnableStrash() { a.enableStrash() }

// HasStrash reports whether structural hashing is enabled.
func (a *AIG) HasStrash() bool { return a.strash != nil }

// Lookup returns the existing node literal for an AND of f0 and f1 after
// constant propagation, without creating a node. The boolean result reports
// whether such a literal exists (a trivial simplification applies or the
// strash table already contains the pair).
func (a *AIG) Lookup(f0, f1 Lit) (Lit, bool) {
	if lit, ok := SimplifyAnd(f0, f1); ok {
		return lit, true
	}
	if a.strash == nil {
		return 0, false
	}
	if id, ok := a.strash.get(Key(f0, f1)); ok && !a.IsDeleted(id) {
		return MakeLit(id, false), true
	}
	return 0, false
}

// SimplifyAnd applies the trivial AND simplifications (x&x=x, x&!x=0,
// x&0=0, x&1=x), returning the simplified literal and whether one applied.
func SimplifyAnd(f0, f1 Lit) (Lit, bool) {
	if f0 == f1 {
		return f0, true
	}
	if f0 == f1.Not() {
		return ConstFalse, true
	}
	if f0 == ConstFalse || f1 == ConstFalse {
		return ConstFalse, true
	}
	if f0 == ConstTrue {
		return f1, true
	}
	if f1 == ConstTrue {
		return f0, true
	}
	return 0, false
}

// NewAnd returns a literal for the AND of f0 and f1, creating a node if
// needed. Trivial cases are simplified; when structural hashing is enabled,
// an existing node with the same fanins is reused.
func (a *AIG) NewAnd(f0, f1 Lit) Lit {
	if lit, ok := SimplifyAnd(f0, f1); ok {
		return lit
	}
	if f0 > f1 {
		f0, f1 = f1, f0
	}
	if a.strash != nil {
		if id, ok := a.strash.get(Key(f0, f1)); ok && !a.IsDeleted(id) {
			return MakeLit(id, false)
		}
	}
	id := a.addAndRaw(f0, f1)
	if a.strash != nil {
		a.strash.set(Key(f0, f1), id)
	}
	return MakeLit(id, false)
}

// addAndRaw appends an AND node without simplification or hashing, updating
// fanout structures when enabled.
func (a *AIG) addAndRaw(f0, f1 Lit) int32 {
	id := int32(len(a.fanin0))
	a.fanin0 = append(a.fanin0, f0)
	a.fanin1 = append(a.fanin1, f1)
	if a.fanouts != nil {
		a.fanouts = append(a.fanouts, nil)
		a.nPORefs = append(a.nPORefs, 0)
		a.addFanout(f0.Var(), id)
		a.addFanout(f1.Var(), id)
	}
	if a.deleted != nil {
		a.deleted = append(a.deleted, false)
	}
	return id
}

// AddAndUnchecked appends an AND node with the given fanins without any
// simplification, normalization, or structural hashing. It is intended for
// bulk loaders (AIGER reader, parallel replacement engine) that guarantee
// validity themselves.
func (a *AIG) AddAndUnchecked(f0, f1 Lit) Lit {
	if f0 > f1 {
		f0, f1 = f1, f0
	}
	return MakeLit(a.addAndRaw(f0, f1), false)
}

// ExtendSlots appends n uninitialized AND-node slots (fanins constant-false)
// and returns the id of the first. This is a low-level bulk-allocation hook
// for the parallel replacement engine: slots are later filled concurrently
// with SetFanins, and slots that lose a sharing race stay unused until the
// next Compact. Not compatible with enabled strash/fanout tracking.
func (a *AIG) ExtendSlots(n int) int32 {
	if a.strash != nil || a.fanouts != nil {
		panic("aig: ExtendSlots requires plain mode (no strash/fanout tracking)")
	}
	first := int32(len(a.fanin0))
	a.fanin0 = append(a.fanin0, make([]Lit, n)...)
	a.fanin1 = append(a.fanin1, make([]Lit, n)...)
	if a.deleted != nil {
		a.deleted = append(a.deleted, make([]bool, n)...)
	}
	return first
}

// SetFanins overwrites the fanins of an AND node. Low-level: no
// simplification, hashing, or fanout bookkeeping is performed.
func (a *AIG) SetFanins(id int32, f0, f1 Lit) {
	if f0 > f1 {
		f0, f1 = f1, f0
	}
	a.fanin0[id] = f0
	a.fanin1[id] = f1
}

// Or returns a literal for the OR of f0 and f1 (De Morgan on NewAnd).
func (a *AIG) Or(f0, f1 Lit) Lit { return a.NewAnd(f0.Not(), f1.Not()).Not() }

// Xor returns a literal for the XOR of f0 and f1, built from three AND nodes
// (or fewer after simplification/strashing).
func (a *AIG) Xor(f0, f1 Lit) Lit {
	// f0 ^ f1 = !(f0 & f1) & !( !f0 & !f1 )
	return a.NewAnd(a.NewAnd(f0, f1).Not(), a.NewAnd(f0.Not(), f1.Not()).Not())
}

// Mux returns a literal for: if sel then t else e.
func (a *AIG) Mux(sel, t, e Lit) Lit {
	return a.NewAnd(a.NewAnd(sel, t).Not(), a.NewAnd(sel.Not(), e).Not()).Not()
}

// Maj3 returns the majority of three literals.
func (a *AIG) Maj3(x, y, z Lit) Lit {
	return a.Or(a.NewAnd(x, y), a.Or(a.NewAnd(x, z), a.NewAnd(y, z)))
}

// ForEachAnd calls fn for every live AND node id in increasing id order.
func (a *AIG) ForEachAnd(fn func(id int32)) {
	for id := a.numPIs + 1; int(id) < len(a.fanin0); id++ {
		if a.IsDeleted(id) {
			continue
		}
		fn(id)
	}
}

// Stats summarizes an AIG.
type Stats struct {
	PIs    int
	POs    int
	Ands   int
	Levels int
}

// Stats returns the network statistics (the level computation walks the
// graph).
func (a *AIG) Stats() Stats {
	return Stats{
		PIs:    int(a.numPIs),
		POs:    len(a.pos),
		Ands:   a.NumAnds(),
		Levels: a.Levels(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("i/o = %d/%d  and = %d  lev = %d", s.PIs, s.POs, s.Ands, s.Levels)
}

// Clone returns a deep copy of the AIG's basic structure (fanins and POs).
// Optional features (strash, fanouts) are not copied; re-enable them on the
// clone if needed.
func (a *AIG) Clone() *AIG {
	c := &AIG{
		Name:   a.Name,
		numPIs: a.numPIs,
		fanin0: append([]Lit(nil), a.fanin0...),
		fanin1: append([]Lit(nil), a.fanin1...),
		pos:    append([]Lit(nil), a.pos...),
	}
	if a.deleted != nil {
		c.deleted = append([]bool(nil), a.deleted...)
		c.numDead = a.numDead
	}
	return c
}

// MemoryFootprint returns an estimate of the memory used by the basic
// structure in bytes, for reporting.
func (a *AIG) MemoryFootprint() int64 {
	b := int64(len(a.fanin0))*8 + int64(len(a.pos))*4
	return b
}

// ceilLog2 returns ceil(log2(x)) for x >= 1.
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}
