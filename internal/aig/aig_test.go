package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLiteralEncoding(t *testing.T) {
	l := MakeLit(7, true)
	if l.Var() != 7 || !l.IsCompl() {
		t.Fatalf("MakeLit(7,true) = %v", l)
	}
	if l.Not().IsCompl() {
		t.Errorf("Not should clear complement")
	}
	if l.Regular() != MakeLit(7, false) {
		t.Errorf("Regular = %v", l.Regular())
	}
	if l.NotCond(false) != l || l.NotCond(true) != l.Not() {
		t.Errorf("NotCond wrong")
	}
	if ConstTrue != ConstFalse.Not() {
		t.Errorf("const literals inconsistent")
	}
}

func TestTrivialSimplifications(t *testing.T) {
	a := New(2)
	x, y := a.PI(0), a.PI(1)
	cases := []struct {
		f0, f1, want Lit
	}{
		{x, x, x},
		{x, x.Not(), ConstFalse},
		{x, ConstFalse, ConstFalse},
		{ConstFalse, y, ConstFalse},
		{x, ConstTrue, x},
		{ConstTrue, y, y},
	}
	for _, c := range cases {
		if got := a.NewAnd(c.f0, c.f1); got != c.want {
			t.Errorf("NewAnd(%v,%v) = %v, want %v", c.f0, c.f1, got, c.want)
		}
	}
	if a.NumAnds() != 0 {
		t.Errorf("trivial cases must not create nodes, got %d", a.NumAnds())
	}
}

func TestStrashReuse(t *testing.T) {
	a := New(2)
	a.EnableStrash()
	x, y := a.PI(0), a.PI(1)
	l1 := a.NewAnd(x, y)
	l2 := a.NewAnd(y, x) // commuted
	l3 := a.NewAnd(x.Not(), y)
	if l1 != l2 {
		t.Errorf("strash must merge commuted fanins: %v vs %v", l1, l2)
	}
	if l1 == l3 {
		t.Errorf("different functions must not merge")
	}
	if a.NumAnds() != 2 {
		t.Errorf("NumAnds = %d, want 2", a.NumAnds())
	}
}

func TestGateSemantics(t *testing.T) {
	a := New(3)
	a.EnableStrash()
	x, y, z := a.PI(0), a.PI(1), a.PI(2)
	a.AddPO(a.NewAnd(x, y))
	a.AddPO(a.Or(x, y))
	a.AddPO(a.Xor(x, y))
	a.AddPO(a.Mux(x, y, z))
	a.AddPO(a.Maj3(x, y, z))
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		out := a.EvalOnce(in)
		if out[0] != (in[0] && in[1]) {
			t.Errorf("AND(%v) = %v", in, out[0])
		}
		if out[1] != (in[0] || in[1]) {
			t.Errorf("OR(%v) = %v", in, out[1])
		}
		if out[2] != (in[0] != in[1]) {
			t.Errorf("XOR(%v) = %v", in, out[2])
		}
		wantMux := in[2]
		if in[0] {
			wantMux = in[1]
		}
		if out[3] != wantMux {
			t.Errorf("MUX(%v) = %v", in, out[3])
		}
		maj := (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2])
		if out[4] != maj {
			t.Errorf("MAJ(%v) = %v", in, out[4])
		}
	}
}

func TestLevels(t *testing.T) {
	a := New(4)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(a.PI(2), a.PI(3))
	n3 := a.NewAnd(n1, n2)
	n4 := a.NewAnd(n3, a.PI(0))
	a.AddPO(n4)
	lv := a.NodeLevels()
	if lv[n1.Var()] != 1 || lv[n2.Var()] != 1 || lv[n3.Var()] != 2 || lv[n4.Var()] != 3 {
		t.Errorf("levels = %v", lv)
	}
	if a.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", a.Levels())
	}
}

func TestTopoOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := Random(rng, 6, 80, 4)
		order := a.TopoOrder(false)
		pos := make(map[int32]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range order {
			for _, f := range [2]Lit{a.Fanin0(id), a.Fanin1(id)} {
				v := f.Var()
				if a.IsAnd(v) && pos[v] >= pos[id] {
					t.Fatalf("trial %d: fanin %d not before node %d", trial, v, id)
				}
			}
		}
	}
}

func TestCompactRemovesDangling(t *testing.T) {
	a := New(3)
	a.EnableStrash()
	used := a.NewAnd(a.PI(0), a.PI(1))
	a.NewAnd(a.PI(1), a.PI(2)) // dangling
	a.AddPO(used.Not())
	c, mp := a.Compact()
	if c.NumAnds() != 1 {
		t.Fatalf("compact NumAnds = %d, want 1", c.NumAnds())
	}
	if got := mp[used.Var()]; got.Var() == 0 {
		t.Errorf("live node mapped to constant")
	}
	if c.PO(0).IsCompl() != true {
		t.Errorf("PO complement lost")
	}
}

func TestRehashMergesDuplicates(t *testing.T) {
	a := New(2)
	x, y := a.PI(0), a.PI(1)
	// Two structurally identical nodes created without strashing.
	d1 := a.AddAndUnchecked(x, y)
	d2 := a.AddAndUnchecked(x, y)
	top := a.AddAndUnchecked(d1, d2.Not())
	a.AddPO(top)
	r := a.Rehash()
	// d1 & !d2 == f & !f == const0, so everything collapses.
	if r.NumAnds() != 0 {
		t.Errorf("rehash NumAnds = %d, want 0", r.NumAnds())
	}
	if r.PO(0) != ConstFalse {
		t.Errorf("rehash PO = %v, want const0", r.PO(0))
	}
}

func TestFanoutCountsAndMffc(t *testing.T) {
	// Reproduce the paper's Figure 2 structure in spirit:
	// node 3 drives both node 7's cone and an external node, so it is not
	// in the MFFC of 7.
	a := New(4)
	a.EnableStrash()
	n3 := a.NewAnd(a.PI(0), a.PI(1))
	n4 := a.NewAnd(a.PI(1), a.PI(2))
	n5 := a.NewAnd(n3, n4)
	n7 := a.NewAnd(n5, a.PI(3))
	n6 := a.NewAnd(n3, a.PI(3)) // external fanout of n3
	a.AddPO(n7)
	a.AddPO(n6)
	counts := a.FanoutCounts()
	size := MffcSize(a, n7.Var(), counts)
	// MFFC of n7 = {n7, n5, n4}: n3 has an external fanout (n6).
	if size != 3 {
		t.Errorf("MffcSize = %d, want 3", size)
	}
	nodes := MffcCollect(a, n7.Var(), counts)
	if len(nodes) != 3 {
		t.Errorf("MffcCollect = %v", nodes)
	}
	seen := map[int32]bool{}
	for _, id := range nodes {
		seen[id] = true
	}
	if !seen[n7.Var()] || !seen[n5.Var()] || !seen[n4.Var()] || seen[n3.Var()] {
		t.Errorf("MFFC members wrong: %v", nodes)
	}
	// counts must be restored.
	for i, c := range a.FanoutCounts() {
		if counts[i] != c {
			t.Fatalf("counts not restored at %d: %d vs %d", i, counts[i], c)
		}
	}
}

func TestReplaceNodeCascades(t *testing.T) {
	// Figure 4 scenario: replacing a node makes two of its fanouts become
	// structural duplicates, which must cascade.
	a := New(3)
	a.EnableStrash()
	x, y, z := a.PI(0), a.PI(1), a.PI(2)
	n2 := a.NewAnd(x, y)
	n5 := a.NewAnd(y, z)
	n3 := a.NewAnd(n2, z)         // fanout of n2
	n4 := a.NewAnd(n5, z)         // fanout of n5 — duplicate of n3 after replace
	top := a.NewAnd(n3, n4.Not()) // uses both
	a.AddPO(top)
	a.EnableFanouts()
	// Replace n2 by n5: n3 becomes (n5 & z), a duplicate of n4, so the
	// cascade replaces n3 by n4, making top = n4 & !n4 = const0.
	a.ReplaceNode(n2.Var(), n5)
	if err := a.Check(); err != nil {
		t.Fatalf("Check after replace: %v", err)
	}
	if a.PO(0) != ConstFalse {
		t.Errorf("PO = %v, want const0 after cascade", a.PO(0))
	}
}

func TestReplaceNodePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		a := Random(rng, 5, 60, 3)
		a.EnableStrash()
		a.EnableFanouts()
		// Find an AND node with an equivalent rebuilt literal: pick a node
		// and replace it with a freshly built copy of itself (same fanins).
		var target int32 = -1
		a.ForEachAnd(func(id int32) {
			if target < 0 && a.FanoutCount(id) > 0 {
				target = id
			}
		})
		if target < 0 {
			continue
		}
		before := collectSim(a, rng.Int63())
		// Build an equivalent node: AND of the same fanins through
		// double negation — yields the same node by strashing, so instead
		// replace with a re-expressed version: n = !(!f0 | !f1) is the same
		// node. Use the node's fanin pair to build an equivalent 2-node
		// structure: m = f0 & f1 (strash returns target itself), so test
		// replacement with an equal node from a manual duplicate.
		dup := a.AddAndUnchecked(a.Fanin0(target), a.Fanin1(target))
		a.EnableStrash() // rebuild: AddAndUnchecked bypassed hashing
		a.EnableFanouts()
		a.ReplaceNode(target, dup)
		if err := a.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after := collectSim(a, rng.Int63())
		_ = before
		_ = after
		// Same seed-independent check: compare on common patterns.
		if !sameSim(a, trial, before) {
			t.Fatalf("trial %d: function changed by ReplaceNode", trial)
		}
	}
}

// collectSim simulates the AIG on patterns derived deterministically from
// the PI index, so results are comparable across structurally different but
// functionally equal AIGs.
func collectSim(a *AIG, _ int64) [][]uint64 {
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i) * 7919))
		ins[i] = []uint64{r.Uint64(), r.Uint64()}
	}
	return a.Simulate(ins)
}

func sameSim(a *AIG, _ int, want [][]uint64) bool {
	got := collectSim(a, 0)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSweepDangling(t *testing.T) {
	a := New(2)
	a.EnableStrash()
	keep := a.NewAnd(a.PI(0), a.PI(1))
	d1 := a.NewAnd(a.PI(0), a.PI(1).Not())
	a.NewAnd(d1, a.PI(1)) // dangling chain
	a.AddPO(keep)
	a.EnableFanouts()
	removed := a.SweepDangling()
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if a.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", a.NumAnds())
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	a := New(1)
	a.EnableStrash()
	l := a.NewAnd(a.PI(0), a.PI(0).Not())
	_ = l
	a.fanin0 = append(a.fanin0, Lit(9999))
	a.fanin1 = append(a.fanin1, Lit(2))
	if err := a.Check(); err == nil {
		t.Errorf("Check missed out-of-range fanin")
	}
}

func TestQuickCompactPreservesFunction(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 6, 120, 5)
		want := collectSim(a, 0)
		c, _ := a.Compact()
		return sameSim(c, 0, want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRehashPreservesFunction(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, 7, 150, 4)
		want := collectSim(a, 0)
		r := a.Rehash()
		if r.NumAnds() > a.NumAnds() {
			return false // rehash must never grow the network
		}
		return sameSim(r, 0, want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRandomIsTopo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(rng, 8, 200, 6)
	if !a.isTopoByID() {
		t.Errorf("Random must produce id-topological AIGs")
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2)
	a.EnableStrash()
	a.AddPO(a.NewAnd(a.PI(0), a.PI(1)))
	c := a.Clone()
	c.EnableStrash()
	c.AddPO(c.NewAnd(c.PI(0), c.PI(1).Not()))
	if a.NumPOs() != 1 || c.NumPOs() != 2 {
		t.Errorf("clone not independent: %d, %d", a.NumPOs(), c.NumPOs())
	}
}
