package aig

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStrashTableBasics exercises the open-addressed table directly:
// map-assignment set semantics, guarded delete, tombstone reuse, and growth.
func TestStrashTableBasics(t *testing.T) {
	tb := newStrashTable(4)
	defer tb.release()

	if _, ok := tb.get(42); ok {
		t.Fatal("empty table reported a hit")
	}
	// Key zero is legal (unlike the concurrent hashtable's reserved slot).
	tb.set(0, 7)
	if v, ok := tb.get(0); !ok || v != 7 {
		t.Fatalf("get(0) = %d,%v, want 7,true", v, ok)
	}
	// Overwrite semantics.
	tb.set(0, 9)
	if v, _ := tb.get(0); v != 9 {
		t.Fatalf("overwrite: got %d, want 9", v)
	}
	// setIfAbsent keeps the existing binding.
	if v, inserted := tb.setIfAbsent(0, 11); inserted || v != 9 {
		t.Fatalf("setIfAbsent on present key: got %d,%v", v, inserted)
	}
	if v, inserted := tb.setIfAbsent(5, 11); !inserted || v != 11 {
		t.Fatalf("setIfAbsent on absent key: got %d,%v", v, inserted)
	}
	// delIf only removes when the stored id matches.
	tb.delIf(5, 99)
	if _, ok := tb.get(5); !ok {
		t.Fatal("delIf with wrong id removed the entry")
	}
	tb.delIf(5, 11)
	if _, ok := tb.get(5); ok {
		t.Fatal("delIf with matching id left the entry")
	}
	// Growth: push far past the initial size.
	for i := uint64(1); i <= 10_000; i++ {
		tb.set(i, int32(i))
	}
	for i := uint64(1); i <= 10_000; i++ {
		if v, ok := tb.get(i); !ok || v != int32(i) {
			t.Fatalf("after growth get(%d) = %d,%v", i, v, ok)
		}
	}
	if tb.live != 10_001 {
		t.Fatalf("live = %d, want 10001", tb.live)
	}
}

// TestStrashTableNilSafe checks the nil-receiver read/delete paths that stand
// in for nil-map semantics (deleteCone runs with strash disabled).
func TestStrashTableNilSafe(t *testing.T) {
	var tb *strashTable
	if _, ok := tb.get(1); ok {
		t.Fatal("nil get reported a hit")
	}
	tb.delIf(1, 1) // must not panic
}

// TestStrashTableTombstoneChurn deletes and reinserts through the same table
// long enough that growth must purge tombstones rather than expand forever.
func TestStrashTableTombstoneChurn(t *testing.T) {
	tb := newStrashTable(8)
	defer tb.release()
	rng := rand.New(rand.NewSource(1))
	live := map[uint64]int32{}
	for round := 0; round < 50_000; round++ {
		k := uint64(rng.Intn(500))
		if id, ok := live[k]; ok && rng.Intn(2) == 0 {
			tb.delIf(k, id)
			delete(live, k)
		} else {
			id := int32(rng.Intn(1000) + 1)
			tb.set(k, id)
			live[k] = id
		}
	}
	if len(tb.keys) > 4096 {
		t.Fatalf("table ballooned to %d slots for <=500 live keys", len(tb.keys))
	}
	for k, id := range live {
		if v, ok := tb.get(k); !ok || v != id {
			t.Fatalf("get(%d) = %d,%v, want %d,true", k, v, ok, id)
		}
	}
	if tb.live != len(live) {
		t.Fatalf("live = %d, want %d", tb.live, len(live))
	}
}

// buildStrashed builds a deterministic pseudo-random network with hashing on
// and returns a stable fingerprint of its structure.
func buildStrashed(seed int64, ands int) (*AIG, string) {
	rng := rand.New(rand.NewSource(seed))
	a := New(8)
	a.EnableStrash()
	lits := make([]Lit, 0, ands+9)
	for i := int32(1); i <= 8; i++ {
		lits = append(lits, MakeLit(i, false))
	}
	for i := 0; i < ands; i++ {
		f0 := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		f1 := lits[rng.Intn(len(lits))].NotCond(rng.Intn(2) == 0)
		lits = append(lits, a.NewAnd(f0, f1))
	}
	a.AddPO(lits[len(lits)-1])
	return a, fmt.Sprintf("%d/%v", a.NumAnds(), lits[len(lits)-8:])
}

// TestStrashPoolDeterminism runs many concurrent strashed builds through the
// shared mempool-backed free-lists (the partition-parallel usage pattern:
// every worker builds, releases, and rebuilds tables whose arrays are recycled
// across goroutines) and checks that every build of the same seed produces an
// identical structure — i.e. reuse-after-Put leaks no state. Run under -race
// this also stress-tests the pool handoff.
func TestStrashPoolDeterminism(t *testing.T) {
	const workers = 8
	const rounds = 6
	want := make([]string, workers)
	for w := range want {
		a, fp := buildStrashed(int64(w), 4000)
		a.ReleaseStrash()
		want[w] = fp
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a, fp := buildStrashed(int64(w), 4000)
				if fp != want[w] {
					errs <- fmt.Errorf("worker %d round %d: fingerprint %s, want %s", w, r, fp, want[w])
				}
				if err := a.Check(); err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
				}
				a.RebuildStrash() // rebuild over a released+reacquired table
				if err := a.Check(); err != nil {
					errs <- fmt.Errorf("worker %d round %d post-rebuild: %v", w, r, err)
				}
				a.ReleaseStrash()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRebuildStrashSizing verifies the satellite fix: after deleting most of
// the network in place, RebuildStrash sizes by the live count, not by the raw
// object count, and skips deleted ids entirely.
func TestRebuildStrashSizing(t *testing.T) {
	a, _ := buildStrashed(7, 20_000)
	a.EnableFanouts()
	// Point the PO at a tiny subgraph and sweep everything else.
	a.SetPO(0, MakeLit(1, false))
	a.SweepDangling()
	if a.NumAnds() != 0 {
		t.Fatalf("expected empty network, have %d ANDs", a.NumAnds())
	}
	a.RebuildStrash()
	if got := len(a.strash.keys); got > 64 {
		t.Fatalf("rebuild after mass deletion allocated %d slots, want live-count sizing", got)
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	a.ReleaseStrash()
}
