package aig

// Simulate performs 64-way bit-parallel simulation. piValues holds w words
// per PI (piValues[i] are the patterns of PI i); all PIs must have the same
// word count. It returns one slice of w words per PO.
func (a *AIG) Simulate(piValues [][]uint64) [][]uint64 {
	if len(piValues) != int(a.numPIs) {
		panic("aig: Simulate needs one value slice per PI")
	}
	w := 0
	if a.numPIs > 0 {
		w = len(piValues[0])
	}
	n := len(a.fanin0)
	vals := make([][]uint64, n)
	vals[0] = make([]uint64, w) // constant false
	for i := 0; i < int(a.numPIs); i++ {
		if len(piValues[i]) != w {
			panic("aig: Simulate input width mismatch")
		}
		vals[i+1] = piValues[i]
	}
	order := a.TopoOrder(false)
	buf := make([]uint64, len(order)*w)
	for _, id := range order {
		v := buf[:w:w]
		buf = buf[w:]
		f0, f1 := a.fanin0[id], a.fanin1[id]
		v0, v1 := vals[f0.Var()], vals[f1.Var()]
		m0 := maskOf(f0)
		m1 := maskOf(f1)
		for j := 0; j < w; j++ {
			v[j] = (v0[j] ^ m0) & (v1[j] ^ m1)
		}
		vals[id] = v
	}
	out := make([][]uint64, len(a.pos))
	for i, p := range a.pos {
		o := make([]uint64, w)
		pv := vals[p.Var()]
		m := maskOf(p)
		for j := 0; j < w; j++ {
			o[j] = pv[j] ^ m
		}
		out[i] = o
	}
	return out
}

func maskOf(l Lit) uint64 {
	if l.IsCompl() {
		return ^uint64(0)
	}
	return 0
}

// EvalOnce evaluates the AIG on a single Boolean input assignment and
// returns the PO values. Intended for small tests; use Simulate for bulk
// evaluation.
func (a *AIG) EvalOnce(inputs []bool) []bool {
	words := make([][]uint64, a.numPIs)
	for i := range words {
		w := uint64(0)
		if inputs[i] {
			w = 1
		}
		words[i] = []uint64{w}
	}
	sim := a.Simulate(words)
	out := make([]bool, len(sim))
	for i := range sim {
		out[i] = sim[i][0]&1 != 0
	}
	return out
}
