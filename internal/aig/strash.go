package aig

import "aigre/internal/mempool"

// strashTable is the structural-hashing table behind EnableStrash/NewAnd: an
// open-addressed linear-probing map from packed fanin keys (Key) to AND node
// ids. It replaces the earlier map[uint64]int32, whose per-entry overhead and
// rehash allocations dominated the partition-parallel memory profile — eight
// concurrent partition jobs each rebuilding a million-entry Go map serialized
// on the allocator and the GC. The backing arrays are recycled through
// mempool free-lists (ReleaseStrash), so in steady state a rebuild allocates
// nothing.
//
// Slot states live in vals: 0 = empty, < 0 = tombstone, > 0 = node id (AND
// ids are always >= 1, so 0 is free as the empty marker and keys need no
// reserved values — a key of 0 is legal). Probing follows aig.HashKey, the
// same splitmix64 finalizer the concurrent hashtable package uses, so the
// sequential and kernel-side tables agree on hashing behavior.
type strashTable struct {
	keys []uint64
	vals []int32
	mask uint64
	live int // entries with a node id
	used int // live entries plus tombstones (probe-chain occupancy)
}

var (
	strashKeyPool mempool.SlicePool[uint64]
	strashValPool mempool.SlicePool[int32]
)

// strashSizeFor returns the slot count for a capacity hint: the next power of
// two holding hint entries at a load factor of at most 1/2 (the exact-sizing
// discipline of hashtable.SizeFor, so pooled arrays match across rebuilds of
// same-sized networks).
func strashSizeFor(hint int) int {
	if hint < 8 {
		hint = 8
	}
	size := 1
	for size < 2*hint {
		size <<= 1
	}
	return size
}

// newStrashTable acquires a table sized for hint entries from the pools. The
// key array is left dirty (vals gate slot validity); the val array is zeroed.
func newStrashTable(hint int) *strashTable {
	size := strashSizeFor(hint)
	return &strashTable{
		keys: strashKeyPool.Get(size),
		vals: strashValPool.GetZeroed(size),
		mask: uint64(size - 1),
	}
}

// release returns the backing arrays to the pools. The table must not be used
// afterwards.
func (t *strashTable) release() {
	strashKeyPool.Put(t.keys)
	strashValPool.Put(t.vals)
	t.keys, t.vals = nil, nil
}

// get returns the node id stored for k. Probe loops terminate because grow
// keeps at least a quarter of the slots empty. Like a nil-map read, get on a
// nil table reports absence.
func (t *strashTable) get(k uint64) (int32, bool) {
	if t == nil {
		return 0, false
	}
	i := HashKey(k) & t.mask
	for {
		v := t.vals[i]
		if v == 0 {
			return 0, false
		}
		if v > 0 && t.keys[i] == k {
			return v, true
		}
		i = (i + 1) & t.mask
	}
}

// set stores id for k, overwriting an existing entry (map-assignment
// semantics). New entries reuse the first tombstone on the probe path.
func (t *strashTable) set(k uint64, id int32) {
	i := HashKey(k) & t.mask
	tomb := -1
	for {
		v := t.vals[i]
		if v == 0 {
			if tomb >= 0 {
				i = uint64(tomb)
			} else {
				t.used++
			}
			t.keys[i] = k
			t.vals[i] = id
			t.live++
			t.maybeGrow()
			return
		}
		if v < 0 {
			if tomb < 0 {
				tomb = int(i)
			}
		} else if t.keys[i] == k {
			t.vals[i] = id
			return
		}
		i = (i + 1) & t.mask
	}
}

// setIfAbsent stores id for k unless k is present, returning the value now
// associated with k and whether this call inserted it.
func (t *strashTable) setIfAbsent(k uint64, id int32) (int32, bool) {
	i := HashKey(k) & t.mask
	tomb := -1
	for {
		v := t.vals[i]
		if v == 0 {
			if tomb >= 0 {
				i = uint64(tomb)
			} else {
				t.used++
			}
			t.keys[i] = k
			t.vals[i] = id
			t.live++
			t.maybeGrow()
			return id, true
		}
		if v < 0 {
			if tomb < 0 {
				tomb = int(i)
			}
		} else if t.keys[i] == k {
			return v, false
		}
		i = (i + 1) & t.mask
	}
}

// delIf removes the entry for k when it names exactly id (the guarded-delete
// idiom of in-place editing: a key is unhooked only by the node that owns
// it). The slot becomes a tombstone so longer probe chains stay intact. Like
// a nil-map delete, delIf on a nil table is a no-op — deleteCone runs with
// strash disabled when only fanout tracking is on.
func (t *strashTable) delIf(k uint64, id int32) {
	if t == nil {
		return
	}
	i := HashKey(k) & t.mask
	for {
		v := t.vals[i]
		if v == 0 {
			return
		}
		if v > 0 && t.keys[i] == k {
			if v == id {
				t.vals[i] = -1
				t.live--
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// forEach calls fn for every live entry (iteration order is unspecified, as
// with the map it replaced).
func (t *strashTable) forEach(fn func(k uint64, id int32)) {
	for i, v := range t.vals {
		if v > 0 {
			fn(t.keys[i], v)
		}
	}
}

// maybeGrow rehashes once probe-chain occupancy (live entries plus
// tombstones) passes 3/4 of the slots, sizing the new table by the live
// count alone — a rebuild after heavy deletion purges the tombstones and can
// shrink occupancy well below the trigger.
func (t *strashTable) maybeGrow() {
	if t.used*4 < len(t.keys)*3 {
		return
	}
	old := *t
	size := strashSizeFor(2*t.live + 8)
	t.keys = strashKeyPool.Get(size)
	t.vals = strashValPool.GetZeroed(size)
	t.mask = uint64(size - 1)
	t.live, t.used = 0, 0
	for i, v := range old.vals {
		if v > 0 {
			t.set(old.keys[i], v)
		}
	}
	strashKeyPool.Put(old.keys)
	strashValPool.Put(old.vals)
}

// RebuildStrash (re)builds the structural-hashing table from the current
// network, sized by the live-node count (NumAnds, which already excludes
// deleted nodes) — not by the raw object count, which oversizes the table
// when most nodes have been deleted in place. Deleted ids are skipped without
// hashing them. If duplicate fanin pairs exist, the first (lowest-id)
// occurrence wins. Subsequent NewAnd calls reuse existing nodes with
// identical fanin pairs.
func (a *AIG) RebuildStrash() { a.rebuildStrash(a.NumAnds()) }

// enableStrash is the build-ahead variant behind EnableStrash: a network
// fresh from NewCap carries its expected final size as unused append
// capacity, so sizing the table for it up front avoids every growth rehash
// during construction.
func (a *AIG) enableStrash() {
	a.rebuildStrash(a.NumAnds() + (cap(a.fanin0) - len(a.fanin0)))
}

func (a *AIG) rebuildStrash(hint int) {
	if a.strash != nil {
		a.strash.release()
	}
	a.strash = newStrashTable(hint)
	for id := a.numPIs + 1; int(id) < len(a.fanin0); id++ {
		if a.IsDeleted(id) {
			continue
		}
		a.strash.setIfAbsent(Key(a.fanin0[id], a.fanin1[id]), id)
	}
}

// ReleaseStrash disables structural hashing and returns the table's backing
// arrays to the package free-lists for the next EnableStrash anywhere in the
// process. Hot paths that build a strashed network per pass call it once the
// network is final (typically right after Compact); forgetting to call it is
// safe — the arrays are simply garbage collected.
func (a *AIG) ReleaseStrash() {
	if a.strash != nil {
		a.strash.release()
		a.strash = nil
	}
}
