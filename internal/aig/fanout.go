package aig

import "fmt"

// EnableFanouts builds fanout lists and PO reference counts for the current
// network. Fanout tracking is required by in-place editing (ReplaceNode) and
// by reference-count based MFFC computation. NewAnd keeps the structures up
// to date once enabled.
func (a *AIG) EnableFanouts() {
	n := len(a.fanin0)
	a.fanouts = make([][]int32, n)
	a.nPORefs = make([]int32, n)
	if a.deleted == nil {
		a.deleted = make([]bool, n)
	}
	// Build in CSR style: count exact fanout degrees, carve one shared arena
	// into per-node slices (three-index, so a later append past a node's
	// initial degree reallocates just that node's slice), then fill. The
	// per-node append of the naive build was close to one allocation per
	// edge — about 0.9M allocs on a million-node network, repeated by every
	// partition job — and the resulting pointer-chased headers false-shared
	// across workers.
	counts := make([]int32, n)
	for id := a.numPIs + 1; int(id) < n; id++ {
		if a.deleted[id] {
			continue
		}
		counts[a.fanin0[id].Var()]++
		counts[a.fanin1[id].Var()]++
	}
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	arena := make([]int32, total)
	off := 0
	for v := range counts {
		c := int(counts[v])
		a.fanouts[v] = arena[off : off : off+c]
		off += c
	}
	for id := a.numPIs + 1; int(id) < n; id++ {
		if a.deleted[id] {
			continue
		}
		a.addFanout(a.fanin0[id].Var(), id)
		a.addFanout(a.fanin1[id].Var(), id)
	}
	for _, p := range a.pos {
		a.nPORefs[p.Var()]++
	}
}

// HasFanouts reports whether fanout tracking is enabled.
func (a *AIG) HasFanouts() bool { return a.fanouts != nil }

func (a *AIG) addFanout(v, fanout int32) {
	a.fanouts[v] = append(a.fanouts[v], fanout)
}

func (a *AIG) removeFanout(v, fanout int32) {
	fo := a.fanouts[v]
	for i, f := range fo {
		if f == fanout {
			fo[i] = fo[len(fo)-1]
			a.fanouts[v] = fo[:len(fo)-1]
			return
		}
	}
	panic(fmt.Sprintf("aig: fanout %d not found on node %d", fanout, v))
}

// FanoutCount returns the number of references to node id: AND fanout edges
// plus PO references. A node whose two fanins are the same counts twice.
// Requires EnableFanouts.
func (a *AIG) FanoutCount(id int32) int {
	return len(a.fanouts[id]) + int(a.nPORefs[id])
}

// Fanouts returns the AND fanout node ids of id (PO references excluded).
// The returned slice is owned by the AIG and must not be modified.
func (a *AIG) Fanouts(id int32) []int32 { return a.fanouts[id] }

// PORefs returns the number of primary outputs referencing node id.
func (a *AIG) PORefs(id int32) int { return int(a.nPORefs[id]) }

// FanoutCounts returns a freshly computed reference count per node (AND
// fanout edges plus PO references) without requiring fanout tracking. The
// result is suitable as the counts argument of MffcSize / MffcCollect.
func (a *AIG) FanoutCounts() []int32 {
	counts := make([]int32, len(a.fanin0))
	for id := a.numPIs + 1; int(id) < len(a.fanin0); id++ {
		if a.IsDeleted(id) {
			continue
		}
		counts[a.fanin0[id].Var()]++
		counts[a.fanin1[id].Var()]++
	}
	for _, p := range a.pos {
		counts[p.Var()]++
	}
	return counts
}

// MffcSize returns the size (number of AND nodes, including the root) of the
// maximum fanout-free cone of root. counts must hold the current reference
// counts (see FanoutCounts); it is modified during the computation and fully
// restored before returning.
func MffcSize(a *AIG, root int32, counts []int32) int {
	size, touched := mffcDeref(a, root, counts, nil)
	for _, v := range touched {
		counts[v]++
	}
	return size
}

// MffcCollect returns the node ids of the MFFC of root (root included),
// restoring counts before returning.
func MffcCollect(a *AIG, root int32, counts []int32) []int32 {
	nodes := []int32{root}
	_, touched := mffcDeref(a, root, counts, func(v int32) {
		nodes = append(nodes, v)
	})
	for _, v := range touched {
		counts[v]++
	}
	return nodes
}

// mffcDeref dereferences the cone below root, counting nodes whose reference
// count drops to zero (they belong to the MFFC). It returns the MFFC size
// and the list of nodes whose count was decremented (for restoration).
// onMember, when non-nil, is called for every MFFC member except the root.
func mffcDeref(a *AIG, root int32, counts []int32, onMember func(int32)) (int, []int32) {
	size := 1
	touched := make([]int32, 0, 16)
	stack := []int32{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range [2]Lit{a.fanin0[cur], a.fanin1[cur]} {
			v := f.Var()
			if !a.IsAnd(v) {
				continue
			}
			counts[v]--
			touched = append(touched, v)
			if counts[v] == 0 {
				size++
				if onMember != nil {
					onMember(v)
				}
				stack = append(stack, v)
			}
		}
	}
	return size, touched
}
