package aig

import "fmt"

// NodeLevels returns the level (delay) of every node: PIs and the constant
// are level 0, an AND node is 1 + max(level of fanins). The computation is
// iterative and tolerates non-topological id order (after in-place edits).
// Deleted nodes have level 0.
func (a *AIG) NodeLevels() []int32 {
	n := len(a.fanin0)
	level := make([]int32, n)
	if a.isTopoByID() {
		for id := int(a.numPIs) + 1; id < n; id++ {
			if a.IsDeleted(int32(id)) {
				continue
			}
			l0 := level[a.fanin0[id].Var()]
			l1 := level[a.fanin1[id].Var()]
			level[id] = max32(l0, l1) + 1
		}
		return level
	}
	done := make([]bool, n)
	done[0] = true
	for id := int32(1); id <= a.numPIs; id++ {
		done[id] = true
	}
	var stack []int32
	for id := a.numPIs + 1; int(id) < n; id++ {
		if done[id] || a.IsDeleted(id) {
			continue
		}
		stack = append(stack[:0], id)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			v0 := a.fanin0[cur].Var()
			v1 := a.fanin1[cur].Var()
			if !done[v0] {
				stack = append(stack, v0)
				continue
			}
			if !done[v1] {
				stack = append(stack, v1)
				continue
			}
			level[cur] = max32(level[v0], level[v1]) + 1
			done[cur] = true
			stack = stack[:len(stack)-1]
		}
	}
	return level
}

// Levels returns the delay of the AIG: the maximum level over all POs.
func (a *AIG) Levels() int {
	level := a.NodeLevels()
	var m int32
	for _, p := range a.pos {
		if l := level[p.Var()]; l > m {
			m = l
		}
	}
	return int(m)
}

// isTopoByID reports whether every AND node's fanins have smaller ids, which
// holds for freshly constructed AIGs and allows linear-scan algorithms.
func (a *AIG) isTopoByID() bool {
	for id := int(a.numPIs) + 1; id < len(a.fanin0); id++ {
		if a.IsDeleted(int32(id)) {
			continue
		}
		if int(a.fanin0[id].Var()) >= id || int(a.fanin1[id].Var()) >= id {
			return false
		}
	}
	return true
}

// TopoOrder returns the live AND node ids in a topological order (fanins
// before fanouts), restricted to nodes reachable from the POs when
// reachableOnly is true.
func (a *AIG) TopoOrder(reachableOnly bool) []int32 {
	n := len(a.fanin0)
	order := make([]int32, 0, a.NumAnds())
	visited := make([]bool, n)
	visited[0] = true
	for id := int32(1); id <= a.numPIs; id++ {
		visited[id] = true
	}
	var stack []int32
	visit := func(root int32) {
		if visited[root] {
			return
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			if visited[cur] {
				stack = stack[:len(stack)-1]
				continue
			}
			v0 := a.fanin0[cur].Var()
			v1 := a.fanin1[cur].Var()
			if !visited[v0] {
				stack = append(stack, v0)
				continue
			}
			if !visited[v1] {
				stack = append(stack, v1)
				continue
			}
			visited[cur] = true
			order = append(order, cur)
			stack = stack[:len(stack)-1]
		}
	}
	if reachableOnly {
		for _, p := range a.pos {
			if a.IsAnd(p.Var()) {
				visit(p.Var())
			}
		}
	} else {
		for id := a.numPIs + 1; int(id) < n; id++ {
			if !a.IsDeleted(id) {
				visit(id)
			}
		}
	}
	return order
}

// CountReachable returns the number of AND nodes reachable from the POs.
func (a *AIG) CountReachable() int {
	return len(a.TopoOrder(true))
}

// TopoOrderChecked returns the AND node ids reachable from the POs in
// topological order, like TopoOrder(true), but validates the network while
// walking: an out-of-range fanin or PO literal, a reference to a deleted
// node, or a combinational cycle yields an error. TopoOrder silently
// mis-handles such networks — deleted fanins are traversed as if alive and a
// cycle hangs the walk — so consumers that cannot trust their input (the
// AIGER writers) use this variant.
func (a *AIG) TopoOrderChecked() ([]int32, error) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the DFS stack
		black = 2 // done
	)
	n := int32(len(a.fanin0))
	order := make([]int32, 0, a.NumAnds())
	color := make([]byte, n)
	color[0] = black
	for id := int32(1); id <= a.numPIs; id++ {
		color[id] = black
	}
	var stack []int32
	visit := func(root int32) error {
		if color[root] == black {
			return nil
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			if color[cur] == black {
				stack = stack[:len(stack)-1]
				continue
			}
			color[cur] = grey
			advanced := false
			for _, f := range [2]Lit{a.fanin0[cur], a.fanin1[cur]} {
				v := f.Var()
				if v >= n {
					return fmt.Errorf("aig: node %d fanin references out-of-range node %d", cur, v)
				}
				if a.IsDeleted(v) {
					return fmt.Errorf("aig: node %d fanin references deleted node %d", cur, v)
				}
				switch color[v] {
				case grey:
					return fmt.Errorf("aig: combinational cycle through node %d", v)
				case white:
					stack = append(stack, v)
					advanced = true
				}
			}
			if !advanced {
				color[cur] = black
				order = append(order, cur)
				stack = stack[:len(stack)-1]
			}
		}
		return nil
	}
	for i, p := range a.pos {
		v := p.Var()
		if v >= n {
			return nil, fmt.Errorf("aig: PO %d references out-of-range node %d", i, v)
		}
		if a.IsDeleted(v) {
			return nil, fmt.Errorf("aig: PO %d references deleted node %d", i, v)
		}
		if a.IsAnd(v) {
			if err := visit(v); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// CompactSafe is Compact with validation: it returns an error instead of a
// silently corrupt network when the traversal encounters an out-of-range
// literal, a reference to a deleted node, or a combinational cycle (on which
// plain Compact would not terminate).
func (a *AIG) CompactSafe() (*AIG, []Lit, error) {
	order, err := a.TopoOrderChecked()
	if err != nil {
		return nil, nil, err
	}
	out, mp := a.compactOrder(order)
	return out, mp, nil
}

// Compact returns a new AIG containing only the nodes reachable from the
// POs, renumbered in topological order, along with a literal map from old
// node ids to new literals (old dangling nodes map to ConstFalse). This is
// the "dangling node removal" primitive: nodes not reachable from any PO are
// dropped.
func (a *AIG) Compact() (*AIG, []Lit) {
	return a.compactOrder(a.TopoOrder(true))
}

// compactOrder replays the given topological order of reachable AND nodes
// into a fresh network; shared by Compact and CompactSafe.
func (a *AIG) compactOrder(order []int32) (*AIG, []Lit) {
	out := NewCap(int(a.numPIs), int(a.numPIs)+1+len(order))
	out.Name = a.Name
	mp := make([]Lit, len(a.fanin0))
	mp[0] = ConstFalse
	for id := int32(1); id <= a.numPIs; id++ {
		mp[id] = MakeLit(id, false)
	}
	for _, id := range order {
		f0 := a.fanin0[id]
		f1 := a.fanin1[id]
		n0 := mp[f0.Var()].NotCond(f0.IsCompl())
		n1 := mp[f1.Var()].NotCond(f1.IsCompl())
		mp[id] = out.AddAndUnchecked(n0, n1)
	}
	for _, p := range a.pos {
		out.AddPO(mp[p.Var()].NotCond(p.IsCompl()))
	}
	return out, mp
}

// Rehash returns a new AIG rebuilt with full structural hashing and constant
// propagation, removing duplicate and dangling nodes in one pass. It is the
// sequential reference for the parallel de-duplication pass.
func (a *AIG) Rehash() *AIG {
	order := a.TopoOrder(true)
	out := NewCap(int(a.numPIs), int(a.numPIs)+1+len(order))
	out.Name = a.Name
	out.EnableStrash()
	mp := make([]Lit, len(a.fanin0))
	mp[0] = ConstFalse
	for id := int32(1); id <= a.numPIs; id++ {
		mp[id] = MakeLit(id, false)
	}
	for _, id := range order {
		f0 := a.fanin0[id]
		f1 := a.fanin1[id]
		n0 := mp[f0.Var()].NotCond(f0.IsCompl())
		n1 := mp[f1.Var()].NotCond(f1.IsCompl())
		mp[id] = out.NewAnd(n0, n1)
	}
	for _, p := range a.pos {
		out.AddPO(mp[p.Var()].NotCond(p.IsCompl()))
	}
	final, _ := out.Compact()
	out.ReleaseStrash()
	return final
}

func max32(x, y int32) int32 {
	if x > y {
		return x
	}
	return y
}
