// Package flow runs optimization command sequences ("scripts") over AIGs,
// in either the sequential ABC-style mode or the paper's GPU-parallel mode,
// and records the per-command runtime breakdown used by Figure 8.
//
// The command vocabulary matches the paper: b (AND-balancing), rw / rwz
// (rewriting, z = accept zero gain), rf / rfz (refactoring). In parallel
// mode rf and rfz are identical, because the parallel gain is a lower bound
// and zero-gain replacements are always accepted (Section III-D), and every
// parallel rw/rf command is followed by the de-duplication and dangling-node
// cleanup pass, timed separately (Sections III-F, V-B).
package flow

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aigre/internal/aig"
	"aigre/internal/balance"
	"aigre/internal/dedup"
	"aigre/internal/gpu"
	"aigre/internal/rcache"
	"aigre/internal/refactor"
	"aigre/internal/resub"
	"aigre/internal/rewrite"
)

// Well-known scripts from the paper, plus a resubstitution-enriched
// sequence exercising the future-work extension.
const (
	// Resyn2 is ABC's resyn2: b; rw; rf; b; rw; rwz; b; rfz; rwz; b.
	Resyn2 = "b; rw; rf; b; rw; rwz; b; rfz; rwz; b"
	// RfResyn is the paper's rf_resyn (resyn with rw replaced by rf):
	// b; rf; rfz; b; rfz; b.
	RfResyn = "b; rf; rfz; b; rfz; b"
	// CompressRS is a compress2rs-style sequence interleaving
	// resubstitution (the paper's future-work algorithm) with the others.
	CompressRS = "b; rs; rw; rs; rf; rs; b; rwz; rs; b"
)

// Config selects the execution mode and engine options.
type Config struct {
	// Parallel selects the GPU-parallel algorithms; otherwise the
	// sequential ABC-style baselines run.
	Parallel bool
	// Device used in parallel mode (nil = a fresh default device).
	Device *gpu.Device
	// MaxCut is the refactoring cut-size limit (paper: 12; 11 for log2).
	MaxCut int
	// RwzPasses is the number of parallel rewriting passes per rwz command
	// (the paper uses 2 in GPU resyn2). Default 1.
	RwzPasses int
	// RfPasses is the number of parallel refactoring passes per rf/rfz
	// command (the paper uses 2 in the single-algorithm Table II
	// comparison, 1 inside sequences). Default 1.
	RfPasses int
	// SkipDedup disables the cleanup pass after parallel rw/rf (for
	// ablation only).
	SkipDedup bool
	// ZeroGain makes the sequential rw and rf commands accept zero-gain
	// replacements, as rwz/rfz do. Parallel engines always accept zero gain
	// (Section III-D), so it has no effect in parallel mode.
	ZeroGain bool
	// GateRounds is the number of 64-pattern random-simulation rounds used
	// by the per-command equivalence gate (default 4). Negative disables the
	// gate (ablation only); the structural invariant check always runs.
	GateRounds int
	// Verify upgrades the per-command equivalence gate from sampling to a
	// full combinational equivalence check (exhaustive simulation or SAT via
	// internal/cec). This is the CLI -verify flag; it is complete but can be
	// much slower than the default sampling gate.
	Verify bool
	// Cache is the resynthesis cache shared by the rewriting and refactoring
	// commands (nil = the process-wide rcache.Default). Optimization results
	// are identical with or without it; it only cuts host wall-clock.
	Cache *rcache.Cache
}

func (c Config) normalized() Config {
	if c.Device == nil && c.Parallel {
		c.Device = gpu.New(0)
	}
	if c.RwzPasses == 0 {
		c.RwzPasses = 1
	}
	if c.RfPasses == 0 {
		c.RfPasses = 1
	}
	if c.GateRounds == 0 {
		c.GateRounds = 4
	}
	if c.Cache == nil {
		c.Cache = rcache.Default
	}
	return c
}

// CommandTiming is the per-command record behind Figure 8.
type CommandTiming struct {
	Command      string
	Wall         time.Duration
	Modeled      time.Duration // device-modeled time (parallel mode only)
	DedupWall    time.Duration
	DedupModeled time.Duration
	NodesAfter   int
	LevelsAfter  int
	// Kernels is the per-kernel device profile of this command, including
	// its cleanup pass when one ran (dedup kernels carry "dedup/" names).
	// Parallel mode only; the modeled times sum to Modeled + DedupModeled.
	Kernels []gpu.KernelProfile
}

// Result is the outcome of running a script.
type Result struct {
	AIG          *aig.AIG
	Timings      []CommandTiming
	TotalWall    time.Duration
	TotalModeled time.Duration
	// Incidents lists every contained failure: commands whose attempt
	// aborted (kernel panic, full hash table), or whose output failed the
	// structural invariant check or the equivalence gate, and what the
	// guarded runner did about it. Empty on a clean run.
	Incidents []Incident
	// CacheStats is the resynthesis-cache traffic observed during this run
	// (a before/after delta of the configured cache). When the cache is
	// shared with concurrently running jobs the delta includes their traffic
	// too — the counters are cache-global.
	CacheStats rcache.Stats
}

// Parse splits a script like "b; rw; rfz" into commands, validating names.
func Parse(script string) ([]string, error) {
	var cmds []string
	for _, tok := range strings.Split(script, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		switch tok {
		case "b", "rw", "rwz", "rf", "rfz", "rs":
			cmds = append(cmds, tok)
		default:
			return nil, fmt.Errorf("flow: unknown command %q", tok)
		}
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("flow: empty script")
	}
	return cmds, nil
}

// Run executes the script on a copy of the input and returns the optimized
// AIG with the per-command breakdown.
//
// Every command runs guarded: the input AIG serves as a checkpoint (engines
// never mutate their input), the output must pass the structural invariant
// check (aig.Check) and the equivalence gate, and a kernel panic aborts only
// the command. On any of those failures the runner rolls back to the
// checkpoint and degrades — in parallel mode it retries the command on the
// sequential engine, otherwise it skips the command — and records an
// Incident.
//
// ctx cancels the run: between commands, and (in parallel mode, where ctx
// is bound to the device) at every kernel-launch boundary. A cancelled Run
// returns the partial Result — the network after the last completed
// command, with that prefix's timings — alongside an error wrapping
// ctx.Err(). The only other error cause is a script Parse rejects.
func Run(ctx context.Context, a *aig.AIG, script string, cfg Config) (Result, error) {
	cmds, err := Parse(script)
	if err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.normalized()
	if cfg.Device != nil {
		cfg.Device.Bind(ctx)
	}
	cacheBefore := cfg.Cache.Snapshot()
	cur := a
	var res Result
	for i, cmd := range cmds {
		if cerr := ctx.Err(); cerr != nil {
			res.AIG = cur
			res.CacheStats = cfg.Cache.Snapshot().Sub(cacheBefore)
			return res, fmt.Errorf("flow: script cancelled before command %d (%s): %w", i, cmd, cerr)
		}
		next, t, incs, err := runGuarded(ctx, cur, cmd, i, cfg)
		if err != nil {
			res.AIG = cur
			res.CacheStats = cfg.Cache.Snapshot().Sub(cacheBefore)
			return res, err
		}
		res.Incidents = append(res.Incidents, incs...)
		t.NodesAfter = next.NumAnds()
		t.LevelsAfter = next.Levels()
		res.Timings = append(res.Timings, t)
		res.TotalWall += t.Wall + t.DedupWall
		res.TotalModeled += t.Modeled + t.DedupModeled
		cur = next
	}
	res.AIG = cur
	res.CacheStats = cfg.Cache.Snapshot().Sub(cacheBefore)
	return res, nil
}

// runSequential executes one command on the sequential engines. Unknown
// commands are rejected by Parse, so the error return is defense in depth —
// never a panic, since flow input is user input.
func runSequential(a *aig.AIG, cmd string, cfg Config) (*aig.AIG, error) {
	switch cmd {
	case "b":
		out, _ := balance.Sequential(a)
		return out, nil
	case "rw":
		out, _ := rewrite.Sequential(a, rewrite.Options{ZeroGain: cfg.ZeroGain, Cache: cfg.Cache})
		return out, nil
	case "rwz":
		out, _ := rewrite.Sequential(a, rewrite.Options{ZeroGain: true, Cache: cfg.Cache})
		return out, nil
	case "rf":
		out, _ := refactor.Sequential(a, refactor.Options{MaxCut: cfg.MaxCut, ZeroGain: cfg.ZeroGain, Cache: cfg.Cache})
		return out, nil
	case "rfz":
		out, _ := refactor.Sequential(a, refactor.Options{MaxCut: cfg.MaxCut, ZeroGain: true, Cache: cfg.Cache})
		return out, nil
	case "rs":
		out, _ := resub.Sequential(a, resub.Options{})
		return out, nil
	}
	return nil, fmt.Errorf("flow: unknown command %q", cmd)
}

func runParallel(a *aig.AIG, cmd string, cfg Config) (*aig.AIG, CommandTiming, error) {
	d := cfg.Device
	t := CommandTiming{Command: cmd}
	snap := d.Stats()
	profSnap := d.Profile()
	start := time.Now()
	needDedup := false
	switch cmd {
	case "b":
		a, _ = balance.Parallel(d, a)
	case "rw", "rwz":
		passes := 1
		if cmd == "rwz" {
			passes = cfg.RwzPasses
		}
		for p := 0; p < passes; p++ {
			a, _ = rewrite.Parallel(d, a, rewrite.Options{ZeroGain: cmd == "rwz", Cache: cfg.Cache})
		}
		needDedup = true
	case "rf", "rfz":
		for p := 0; p < cfg.RfPasses; p++ {
			a, _ = refactor.Parallel(d, a, refactor.Options{MaxCut: cfg.MaxCut, Cache: cfg.Cache})
		}
		needDedup = true
	case "rs":
		a, _ = resub.Parallel(d, a, resub.Options{})
		needDedup = true
	default:
		return nil, t, fmt.Errorf("flow: unknown command %q", cmd)
	}
	t.Wall = time.Since(start)
	afterCmd := d.Stats()
	t.Modeled = afterCmd.Sub(snap).ModeledTime
	if needDedup && !cfg.SkipDedup {
		dstart := time.Now()
		a, _ = dedup.Run(d, a)
		t.DedupWall = time.Since(dstart)
		t.DedupModeled = d.Stats().Sub(afterCmd).ModeledTime
	}
	t.Kernels = gpu.DiffProfile(d.Profile(), profSnap)
	return a, t, nil
}

// Breakdown aggregates timings by command kind (b, rw, rf, dedup), the
// Figure 8 data series.
func Breakdown(timings []CommandTiming) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range timings {
		kind := canonicalKind(t.Command)
		out[kind] += t.Modeled
		out["dedup"] += t.DedupModeled
	}
	return out
}

// BreakdownWall is Breakdown over wall-clock times.
func BreakdownWall(timings []CommandTiming) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range timings {
		kind := canonicalKind(t.Command)
		out[kind] += t.Wall
		out["dedup"] += t.DedupWall
	}
	return out
}

// canonicalKind folds zero-gain variants into their base command for
// breakdown aggregation.
func canonicalKind(cmd string) string {
	switch cmd {
	case "rwz":
		return "rw"
	case "rfz":
		return "rf"
	}
	return cmd
}
