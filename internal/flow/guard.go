// Guarded command execution: checkpoint, validate, roll back, degrade.
//
// The paper argues its parallel passes are race-free and equivalence-
// preserving; this layer is what makes the pipeline survive the cases where
// that argument fails in practice — a panicking kernel, a full hash table, a
// structurally corrupt or functionally wrong pass output. Each command runs
// against an immutable checkpoint (pass engines never mutate their input, so
// the checkpoint is a plain reference), its output is screened by the
// structural invariant checker and an equivalence gate, and any failure
// rolls the AIG back and degrades the command instead of killing the run.
package flow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aigre/internal/aig"
	"aigre/internal/cec"
	"aigre/internal/gpu"
)

// Incident records one contained failure during a guarded run.
type Incident struct {
	// Index is the position of the failing command in the parsed script.
	Index int `json:"index"`
	// Command is the script command that failed ("b", "rf", ...).
	Command string `json:"command"`
	// Stage identifies what failed: "launch" (a kernel aborted via
	// *gpu.LaunchError), "panic" (a non-kernel panic in the engine),
	// "invariant" (aig.Check rejected the output), or "equivalence" (the
	// functional gate refuted the output).
	Stage string `json:"stage"`
	// Kernel is the failing kernel's name for launch-stage incidents.
	Kernel string `json:"kernel,omitempty"`
	// Action is what the runner did: "retried-sequential" (rolled back and
	// re-ran on the sequential engine), "skipped" (rolled back and moved
	// on to the next command), or "rolled-back" (a partition's result was
	// discarded after a seam gate refuted the stitch).
	Action string `json:"action"`
	// Detail is a one-line human-readable description of the failure.
	Detail string `json:"detail"`
	// Class is the supervision class of the failure: ClassTransient for
	// faults a fresh attempt can plausibly clear (aborted kernel launches,
	// full hash tables, seam-gate rollbacks), ClassPermanent for faults
	// that will reproduce on retry (invariant violations, equivalence
	// refutations, non-kernel engine panics).
	Class string `json:"class,omitempty"`
	// Attempt is the 1-based supervised attempt of the job that recorded
	// the incident; 0 when the run was not supervised.
	Attempt int `json:"attempt,omitempty"`
	// Time is the wall-clock moment the incident was recorded, so journal
	// entries from concurrent jobs order correctly.
	Time time.Time `json:"time"`
}

// Supervision classes of an Incident.
const (
	ClassTransient = "transient"
	ClassPermanent = "permanent"
)

func (inc Incident) String() string {
	s := fmt.Sprintf("command %d (%s): %s failure, %s", inc.Index, inc.Command, inc.Stage, inc.Action)
	if inc.Detail != "" {
		s += ": " + inc.Detail
	}
	return s
}

// gateError marks a validation failure of a structurally intact pass output,
// carrying which gate rejected it.
type gateError struct {
	stage string // "invariant" or "equivalence"
	err   error
}

func (e *gateError) Error() string { return "flow: " + e.stage + " gate: " + e.err.Error() }
func (e *gateError) Unwrap() error { return e.err }

// runGuarded executes one command with checkpoint/rollback semantics and
// returns the resulting AIG (the checkpoint itself when the command was
// skipped), the command timing, and any incidents recorded.
//
// Cancellation is not a fault: when an attempt fails because ctx was
// cancelled (the device refuses further kernel launches), the runner does
// not degrade to the sequential engine — it returns the checkpoint and an
// error wrapping ctx.Err() so the caller can stop the script.
func runGuarded(ctx context.Context, checkpoint *aig.AIG, cmd string, idx int, cfg Config) (*aig.AIG, CommandTiming, []Incident, error) {
	// Deterministic per-command gate seed, so failures reproduce.
	seed := int64(idx)*7919 + 1

	if cfg.Parallel {
		out, t, err := attempt(checkpoint, cmd, cfg, true)
		if err == nil {
			err = gate(checkpoint, out, cfg, seed)
		}
		if err == nil {
			return out, t, nil, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return checkpoint, t, nil, cancelErr(idx, cmd, cerr)
		}
		// Roll back and retry on the sequential engine.
		first := newIncident(idx, cmd, err)
		first.Action = "retried-sequential"
		out2, t2, err2 := attempt(checkpoint, cmd, cfg, false)
		if err2 == nil {
			err2 = gate(checkpoint, out2, cfg, seed)
		}
		if err2 == nil {
			// The failed parallel attempt's wall time is part of this
			// command's cost; its modeled time stays zero (the launch was
			// aborted, not completed).
			t2.Wall += t.Wall
			t2.DedupWall += t.DedupWall
			return out2, t2, []Incident{first}, nil
		}
		second := newIncident(idx, cmd, err2)
		second.Action = "skipped"
		t.Command = cmd
		return checkpoint, t, []Incident{first, second}, nil
	}

	out, t, err := attempt(checkpoint, cmd, cfg, false)
	if err == nil {
		err = gate(checkpoint, out, cfg, seed)
	}
	if err == nil {
		return out, t, nil, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return checkpoint, t, nil, cancelErr(idx, cmd, cerr)
	}
	inc := newIncident(idx, cmd, err)
	inc.Action = "skipped"
	t.Command = cmd
	return checkpoint, t, []Incident{inc}, nil
}

// cancelErr wraps a context error with the command position it interrupted.
func cancelErr(idx int, cmd string, cerr error) error {
	return fmt.Errorf("flow: command %d (%s) cancelled: %w", idx, cmd, cerr)
}

// attempt runs one engine attempt, containing panics: a *gpu.LaunchError
// (kernel panic, full hash table surfaced through a kernel) or any other
// engine panic becomes an error return instead of killing the process.
func attempt(a *aig.AIG, cmd string, cfg Config, parallel bool) (out *aig.AIG, t CommandTiming, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			t.Command = cmd
			if le, ok := r.(*gpu.LaunchError); ok {
				err = le
				return
			}
			if ce, ok := r.(*gpu.CancelledError); ok {
				err = ce
				return
			}
			if e, ok := r.(error); ok {
				err = fmt.Errorf("flow: engine panic: %w", e)
				return
			}
			err = fmt.Errorf("flow: engine panic: %v", r)
		}
	}()
	if parallel {
		return runParallel(a, cmd, cfg)
	}
	start := time.Now()
	out, err = runSequential(a, cmd, cfg)
	t = CommandTiming{Command: cmd, Wall: time.Since(start)}
	t.Modeled = t.Wall
	return out, t, err
}

// gate validates a pass output against its input: structural invariants
// first (always), then the functional equivalence gate — sampling by
// default, a full equivalence check when cfg.Verify is set, nothing when
// GateRounds is negative.
func gate(before, after *aig.AIG, cfg Config, seed int64) error {
	return EquivGate(before, after, cfg.Verify, cfg.GateRounds, seed)
}

// EquivGate is the guarded runner's validation gate, exported for the
// partition stitcher, which re-runs the same gate across partition seams:
// structural invariants first (always), then the functional equivalence gate
// — sampling with the given number of rounds by default, a full equivalence
// check when verify is set, nothing when rounds is negative.
func EquivGate(before, after *aig.AIG, verify bool, rounds int, seed int64) error {
	if err := aig.Check(after); err != nil {
		return &gateError{stage: "invariant", err: err}
	}
	if verify {
		res, err := cec.Check(before, after, cec.Options{Seed: seed})
		if err != nil {
			return &gateError{stage: "equivalence", err: err}
		}
		if !res.Equivalent {
			return &gateError{stage: "equivalence",
				err: fmt.Errorf("output differs from input on PO %d (%s)", res.FailingOutput, res.Method)}
		}
		return nil
	}
	if rounds < 0 {
		return nil
	}
	if res, refuted := cec.SampleRefute(before, after, rounds, seed); refuted {
		return &gateError{stage: "equivalence",
			err: fmt.Errorf("output differs from input on PO %d (%s)", res.FailingOutput, res.Method)}
	}
	return nil
}

// newIncident classifies an attempt or gate error into an incident record
// (without an Action, which the caller decides).
func newIncident(idx int, cmd string, err error) Incident {
	inc := Incident{Index: idx, Command: cmd, Detail: err.Error(), Time: time.Now()}
	var le *gpu.LaunchError
	var ge *gateError
	switch {
	case errors.As(err, &le):
		// Aborted launches — kernel panics, full hash tables — are faults a
		// fresh attempt can plausibly clear.
		inc.Stage = "launch"
		inc.Kernel = le.Kernel
		inc.Class = ClassTransient
	case errors.As(err, &ge):
		// A gate refutation means the pass produced wrong output from this
		// input; rerunning the same pass will reproduce it.
		inc.Stage = ge.stage
		inc.Class = ClassPermanent
	default:
		inc.Stage = "panic"
		inc.Class = ClassPermanent
	}
	return inc
}
