package flow

import (
	"context"
	"testing"

	"aigre/internal/aig"
	"aigre/internal/cec"
	"aigre/internal/gpu"
)

// TestFaultInjectionRecovery drives a deterministic fault into each parallel
// command's kernels mid-script and asserts the guarantee of the guarded
// layer: the run completes, the output is equivalent to the input and passes
// the structural invariants, and the incident is recorded with the command,
// failing kernel, and action taken.
func TestFaultInjectionRecovery(t *testing.T) {
	cases := []struct {
		name      string
		script    string
		plan      gpu.FaultPlan
		wantCmd   string
		wantStage string
	}{
		{"refactor-kernel-panic", RfResyn,
			gpu.FaultPlan{Kernel: "refactor/resynth", Nth: 1, Kind: gpu.FaultPanic}, "rf", "launch"},
		{"balance-kernel-panic", RfResyn,
			gpu.FaultPlan{Kernel: "balance/insert-pass", Nth: 1, Kind: gpu.FaultPanic}, "b", "launch"},
		{"rewrite-kernel-panic", "b; rw; rwz; b",
			gpu.FaultPlan{Kernel: "rewrite/evaluate", Nth: 1, Kind: gpu.FaultPanic}, "rw", "launch"},
		{"dedup-kernel-panic", RfResyn,
			gpu.FaultPlan{Kernel: "dedup/level", Nth: 1, Kind: gpu.FaultPanic}, "rf", "launch"},
		// A lost gather write leaves one subtree with no collected inputs, so
		// reconstruction rebuilds it as a constant — structurally valid but
		// functionally wrong, which only the equivalence gate can catch.
		{"balance-gather-corruption", RfResyn,
			gpu.FaultPlan{Kernel: "balance/gather", Nth: 1, Kind: gpu.FaultCorrupt}, "b", "equivalence"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := testAIG()
			d := gpu.New(4)
			d.InjectFaults(tc.plan)
			res, err := Run(context.Background(), a, tc.script, Config{Parallel: true, Device: d})
			if err != nil {
				t.Fatalf("guarded run failed outright: %v", err)
			}
			if d.FaultsArmed() != 0 {
				t.Fatalf("fault never fired (kernel %q not launched?)", tc.plan.Kernel)
			}
			if len(res.Incidents) != 1 {
				t.Fatalf("incidents = %+v, want exactly 1", res.Incidents)
			}
			inc := res.Incidents[0]
			if inc.Command != tc.wantCmd {
				t.Errorf("incident command = %q, want %q", inc.Command, tc.wantCmd)
			}
			if inc.Stage != tc.wantStage {
				t.Errorf("incident stage = %q, want %q (%s)", inc.Stage, tc.wantStage, inc)
			}
			if inc.Action != "retried-sequential" {
				t.Errorf("incident action = %q, want retried-sequential", inc.Action)
			}
			if tc.wantStage == "launch" && inc.Kernel == "" {
				t.Errorf("launch incident lacks kernel name: %s", inc)
			}
			if err := aig.Check(res.AIG); err != nil {
				t.Errorf("final output fails invariants: %v", err)
			}
			eq, err := cec.Check(a, res.AIG, cec.Options{})
			if err != nil || !eq.Equivalent {
				t.Errorf("final output not equivalent to input: %+v %v", eq, err)
			}
			if res.AIG.NumAnds() > a.NumAnds() {
				t.Errorf("degraded run grew the AIG: %d -> %d", a.NumAnds(), res.AIG.NumAnds())
			}
		})
	}
}

// TestFaultInjectionSequentialMode checks the non-parallel degradation path:
// with no sequential engine to fall back to, a failing command is skipped
// and the AIG rolls back to the checkpoint.
func TestGuardSkipsWhenBothEnginesFail(t *testing.T) {
	// An unknown command slips past Parse only through runGuarded directly;
	// both attempts must fail and the checkpoint must come back untouched.
	a := testAIG()
	cfg := Config{Parallel: true}.normalized()
	out, _, incs, err := runGuarded(context.Background(), a, "frobnicate", 3, cfg)
	if err != nil {
		t.Fatalf("non-cancellation failure surfaced as an error: %v", err)
	}
	if out != a {
		t.Errorf("skip did not return the checkpoint")
	}
	if len(incs) != 2 {
		t.Fatalf("incidents = %+v, want 2 (failed attempt + failed retry)", incs)
	}
	if incs[0].Action != "retried-sequential" || incs[1].Action != "skipped" {
		t.Errorf("actions = %q, %q", incs[0].Action, incs[1].Action)
	}
	if incs[0].Index != 3 || incs[1].Index != 3 {
		t.Errorf("incident indices = %d, %d, want 3", incs[0].Index, incs[1].Index)
	}
}

// TestRunSequentialUnknownCommandNoPanic pins the former
// panic("flow: unreachable command") as a plain error return.
func TestRunSequentialUnknownCommandNoPanic(t *testing.T) {
	if _, err := runSequential(testAIG(), "frobnicate", Config{}.normalized()); err == nil {
		t.Error("unknown command did not error")
	}
	cfg := Config{Parallel: true}.normalized()
	if _, _, err := runParallel(testAIG(), "frobnicate", cfg); err == nil {
		t.Error("unknown parallel command did not error")
	}
}

// TestVerifyModeFullCheck runs the opt-in full equivalence gate end to end.
func TestVerifyModeFullCheck(t *testing.T) {
	a := testAIG()
	res, err := Run(context.Background(), a, "b; rf", Config{Parallel: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incidents) != 0 {
		t.Errorf("clean verified run recorded incidents: %+v", res.Incidents)
	}
	eq, err := cec.Check(a, res.AIG, cec.Options{})
	if err != nil || !eq.Equivalent {
		t.Fatalf("equivalence: %+v %v", eq, err)
	}
}

// TestCheckPassesAfterEveryCommand is the acceptance criterion that every
// command output in resyn2 and rf_resyn satisfies the structural invariants
// (the guard would skip a violating command, so a clean incident list plus a
// command count check proves it).
func TestCheckPassesAfterEveryCommand(t *testing.T) {
	for _, script := range []string{Resyn2, RfResyn} {
		for _, parallel := range []bool{false, true} {
			a := testAIG()
			res, err := Run(context.Background(), a, script, Config{Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Incidents) != 0 {
				t.Errorf("script %q parallel=%v: incidents %+v", script, parallel, res.Incidents)
			}
		}
	}
}
