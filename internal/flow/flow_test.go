package flow

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/cec"
	"aigre/internal/gpu"
)

func TestParse(t *testing.T) {
	cmds, err := Parse(Resyn2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "rw", "rf", "b", "rw", "rwz", "b", "rfz", "rwz", "b"}
	if len(cmds) != len(want) {
		t.Fatalf("cmds = %v", cmds)
	}
	for i := range want {
		if cmds[i] != want[i] {
			t.Fatalf("cmds = %v", cmds)
		}
	}
	if _, err := Parse("b; frobnicate"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := Parse("  ;  "); err == nil {
		t.Error("empty script accepted")
	}
}

func testAIG() *aig.AIG {
	rng := rand.New(rand.NewSource(42))
	return aig.Random(rng, 10, 600, 6).Rehash()
}

func TestSequentialResyn2PreservesFunctionAndImproves(t *testing.T) {
	a := testAIG()
	res, err := Run(context.Background(), a, Resyn2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AIG.NumAnds() > a.NumAnds() {
		t.Errorf("resyn2 grew the AIG: %d -> %d", a.NumAnds(), res.AIG.NumAnds())
	}
	eq, err := cec.Check(a, res.AIG, cec.Options{})
	if err != nil || !eq.Equivalent {
		t.Fatalf("equivalence: %+v %v", eq, err)
	}
	if len(res.Timings) != 10 {
		t.Errorf("timings = %d commands", len(res.Timings))
	}
}

func TestParallelResyn2PreservesFunction(t *testing.T) {
	a := testAIG()
	res, err := Run(context.Background(), a, Resyn2, Config{Parallel: true, RwzPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := cec.Check(a, res.AIG, cec.Options{})
	if err != nil || !eq.Equivalent {
		t.Fatalf("equivalence: %+v %v", eq, err)
	}
	if res.AIG.NumAnds() > a.NumAnds() {
		t.Errorf("parallel resyn2 grew the AIG: %d -> %d", a.NumAnds(), res.AIG.NumAnds())
	}
	if res.TotalModeled <= 0 {
		t.Errorf("no modeled time recorded")
	}
}

func TestRfResynBothModes(t *testing.T) {
	a, _ := bench.ByName("sin", 1)
	seq, err := Run(context.Background(), a, RfResyn, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), a, RfResyn, Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]*aig.AIG{"seq": seq.AIG, "par": par.AIG} {
		eq, err := cec.Check(a, out, cec.Options{})
		if err != nil || !eq.Equivalent {
			t.Fatalf("%s: %+v %v", name, eq, err)
		}
		if out.NumAnds() >= a.NumAnds() {
			t.Errorf("%s rf_resyn did not reduce: %d -> %d", name, a.NumAnds(), out.NumAnds())
		}
	}
}

func TestBreakdownAggregation(t *testing.T) {
	a := testAIG()
	res, err := Run(context.Background(), a, "b; rf; rwz", Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	bd := Breakdown(res.Timings)
	if bd["b"] <= 0 || bd["rf"] <= 0 || bd["rw"] <= 0 {
		t.Errorf("breakdown missing entries: %v", bd)
	}
	if _, ok := bd["dedup"]; !ok {
		t.Errorf("dedup not tracked")
	}
	wd := BreakdownWall(res.Timings)
	if wd["rf"] <= 0 {
		t.Errorf("wall breakdown missing rf")
	}
}

func TestBalanceCommandMatchesLevels(t *testing.T) {
	// After b, parallel and sequential runs must agree on levels
	// (Property 3 at the flow level).
	a := testAIG()
	seq, _ := Run(context.Background(), a, "b", Config{})
	par, _ := Run(context.Background(), a, "b", Config{Parallel: true})
	if seq.AIG.Levels() != par.AIG.Levels() {
		t.Errorf("levels differ: %d vs %d", seq.AIG.Levels(), par.AIG.Levels())
	}
}

// TestPerCommandKernelBreakdown checks the profiler threading: every
// parallel command carries a per-kernel breakdown whose modeled times sum to
// the command's Modeled + DedupModeled exactly, and the union of all
// breakdowns reconciles with the device's total profile.
func TestPerCommandKernelBreakdown(t *testing.T) {
	a := testAIG()
	d := gpu.New(2)
	res, err := Run(context.Background(), a, "b; rw; rfz", Config{Parallel: true, Device: d})
	if err != nil {
		t.Fatal(err)
	}
	var sumAll time.Duration
	for _, ct := range res.Timings {
		if len(ct.Kernels) == 0 {
			t.Fatalf("command %q has no kernel breakdown", ct.Command)
		}
		perCmd := gpu.TotalProfile(ct.Kernels).Modeled
		if perCmd != ct.Modeled+ct.DedupModeled {
			t.Errorf("command %q: kernel sum %v != modeled %v + dedup %v",
				ct.Command, perCmd, ct.Modeled, ct.DedupModeled)
		}
		sumAll += perCmd
		if ct.Command != "b" {
			found := false
			for _, k := range ct.Kernels {
				if strings.HasPrefix(k.Kernel, "dedup/") {
					found = true
				}
			}
			if found == false {
				t.Errorf("command %q breakdown lacks dedup kernels: %v", ct.Command, ct.Kernels)
			}
		}
	}
	if total := d.Stats().ModeledTime; sumAll != total {
		t.Errorf("per-command kernel sums %v != device modeled total %v", sumAll, total)
	}
	if got := gpu.TotalProfile(d.Profile()).Modeled; got != d.Stats().ModeledTime {
		t.Errorf("device profile total %v != stats modeled %v", got, d.Stats().ModeledTime)
	}
}

// TestSequentialZeroGainConfig checks that the ZeroGain config reaches the
// sequential rw/rf engines: a zero-gain run must still be equivalent and can
// only differ by accepting zero-gain replacements.
func TestSequentialZeroGainConfig(t *testing.T) {
	a := testAIG()
	res, err := Run(context.Background(), a, "rw; rf", Config{ZeroGain: true})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := cec.Check(a, res.AIG, cec.Options{})
	if err != nil || !eq.Equivalent {
		t.Fatalf("zero-gain sequential run not equivalent: %+v %v", eq, err)
	}
	if res.AIG.NumAnds() > a.NumAnds() {
		t.Errorf("zero-gain run grew the AIG: %d -> %d", a.NumAnds(), res.AIG.NumAnds())
	}
}
