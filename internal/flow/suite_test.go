package flow

import (
	"context"
	"testing"

	"aigre/internal/aig"
	"aigre/internal/balance"
	"aigre/internal/bench"
	"aigre/internal/cec"
	"aigre/internal/gpu"
)

// TestSuiteIntegration is the end-to-end check over real benchmark
// families: for a representative subset of the paper's suite, both
// execution modes of rf_resyn must preserve the function (CEC), parallel
// balancing must reproduce sequential levels exactly (Property 3), and the
// parallel flow must not increase area.
func TestSuiteIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("suite integration is a multi-second test")
	}
	names := []string{"twenty", "div", "multiplier", "voter", "vga_lcd"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			a, ok := bench.ByName(name, 1)
			if !ok {
				t.Fatalf("unknown benchmark %s", name)
			}
			// Property 3 on the real circuit.
			seqB, _ := balance.Sequential(a)
			parB, _ := balance.Parallel(gpu.New(0), a)
			if seqB.Levels() != parB.Levels() {
				t.Fatalf("Property 3 violated: %d vs %d levels", seqB.Levels(), parB.Levels())
			}
			// Full sequences in both modes.
			seq, err := Run(context.Background(), a, RfResyn, Config{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(context.Background(), a, RfResyn, Config{Parallel: true})
			if err != nil {
				t.Fatal(err)
			}
			if par.AIG.NumAnds() > a.NumAnds() {
				t.Errorf("parallel rf_resyn grew the AIG: %d -> %d", a.NumAnds(), par.AIG.NumAnds())
			}
			for mode, out := range map[string]*aig.AIG{"sequential": seq.AIG, "parallel": par.AIG} {
				res, err := cec.Check(a, out, cec.Options{})
				if err != nil {
					t.Fatalf("%s CEC inconclusive: %v", mode, err)
				}
				if !res.Equivalent {
					t.Fatalf("%s rf_resyn NOT equivalent (output %d)", mode, res.FailingOutput)
				}
			}
		})
	}
}
