package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/gpu"
	"aigre/internal/truth"
)

func simEqual(a, b *aig.AIG) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i)*5417 + 1))
		ins[i] = []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

func TestLibraryImplementationsCorrect(t *testing.T) {
	// Every synthesized library entry must implement its canonical function.
	lib := NewLibrary()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		tt := uint16(rng.Intn(1 << 16))
		canon, _ := truth.Npn4Canon(tt)
		prog, cost := lib.Best(canon)
		if cost != prog.NumAnds() && cost < prog.NumAnds() {
			t.Fatalf("cost %d below op count %d", cost, prog.NumAnds())
		}
		a := aig.New(4)
		a.EnableStrash()
		leaves := []aig.Lit{a.PI(0), a.PI(1), a.PI(2), a.PI(3)}
		results := make([]aig.Lit, len(prog.Ops))
		for i, op := range prog.Ops {
			results[i] = a.NewAnd(core.Resolve(op.A, leaves, results), core.Resolve(op.B, leaves, results))
		}
		a.AddPO(core.Resolve(prog.Root, leaves, results))
		for m := 0; m < 16; m++ {
			in := []bool{m&1 != 0, m&2 != 0, m&4 != 0, m&8 != 0}
			if a.EvalOnce(in)[0] != (canon>>uint(m)&1 != 0) {
				t.Fatalf("class %04x: wrong at minterm %d", canon, m)
			}
		}
	}
}

func TestMapLeavesRoundTrip(t *testing.T) {
	// Building the canonical program with mapped leaves must implement the
	// original function.
	rng := rand.New(rand.NewSource(3))
	lib := NewLibrary()
	for trial := 0; trial < 60; trial++ {
		orig := uint16(rng.Intn(1 << 16))
		canon, tr := truth.Npn4Canon(orig)
		prog, _ := lib.Best(canon)
		a := aig.New(4)
		a.EnableStrash()
		leaves := []int32{1, 2, 3, 4} // PI node ids
		mapped, outNeg := mapLeaves(leaves, tr)
		results := make([]aig.Lit, len(prog.Ops))
		for i, op := range prog.Ops {
			results[i] = a.NewAnd(core.Resolve(op.A, mapped[:], results), core.Resolve(op.B, mapped[:], results))
		}
		root := core.Resolve(prog.Root, mapped[:], results).NotCond(outNeg)
		a.AddPO(root)
		for m := 0; m < 16; m++ {
			in := []bool{m&1 != 0, m&2 != 0, m&4 != 0, m&8 != 0}
			if a.EvalOnce(in)[0] != (orig>>uint(m)&1 != 0) {
				t.Fatalf("trial %d (tt %04x): wrong at minterm %d", trial, orig, m)
			}
		}
	}
}

func TestPad16(t *testing.T) {
	// A 2-variable AND (tt 0x8) padded to 4 vars is 0x8888.
	if got := pad16(0x8, 2); got != 0x8888 {
		t.Errorf("pad16 = %04x, want 8888", got)
	}
	// A 1-variable identity (tt 0b10) padded is 0xAAAA.
	if got := pad16(0x2, 1); got != 0xAAAA {
		t.Errorf("pad16 = %04x, want AAAA", got)
	}
}

func TestEnumLocalCuts(t *testing.T) {
	a := aig.New(4)
	a.EnableStrash()
	n1 := a.NewAnd(a.PI(0), a.PI(1))
	n2 := a.NewAnd(a.PI(2), a.PI(3))
	n3 := a.NewAnd(n1, n2)
	a.AddPO(n3)
	s := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(s)
	cuts := enumLocalCuts(a, n3.Var(), 8, s)
	// Expect {n1,n2}, {n1,x2,x3}, {x0,x1,n2}, {x0,x1,x2,x3}.
	if len(cuts) != 4 {
		t.Errorf("cuts = %v, want 4", cuts)
	}
	for _, c := range cuts {
		if len(c) > 4 || len(c) < 2 {
			t.Errorf("bad cut size: %v", c)
		}
	}
}

// muxHeavyAIG builds an AIG full of naively constructed XOR/MUX structures
// with redundant expansion that rewriting should compress.
func muxHeavyAIG(rng *rand.Rand, nPIs int, nOps int) *aig.AIG {
	a := aig.New(nPIs)
	a.EnableStrash()
	lits := make([]aig.Lit, 0, nPIs+nOps)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, a.PI(i))
	}
	for i := 0; i < nOps; i++ {
		x := lits[rng.Intn(len(lits))]
		y := lits[rng.Intn(len(lits))]
		z := lits[rng.Intn(len(lits))]
		var l aig.Lit
		switch rng.Intn(3) {
		case 0: // unfactored SOP: (x&y)|(x&z), optimally x&(y|z)
			l = a.Or(a.NewAnd(x, y), a.NewAnd(x, z))
		case 1: // unfactored POS variant sharing !x
			l = a.Or(a.NewAnd(x.Not(), y), a.NewAnd(x.Not(), z.Not()))
		default:
			l = a.NewAnd(x, y.Not())
		}
		lits = append(lits, l)
	}
	for i := 0; i < 4; i++ {
		a.AddPO(lits[len(lits)-1-rng.Intn(4)])
	}
	return a
}

func TestSequentialPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 120, 4).Rehash()
		out, _ := Sequential(a, Options{ZeroGain: rng.Intn(2) == 0})
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		return simEqual(a, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSequentialNeverIncreasesArea(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 7, 150, 4).Rehash()
		out, _ := Sequential(a, Options{})
		return out.NumAnds() <= a.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestParallelPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 120, 4).Rehash()
		out, _ := Parallel(gpu.New(1+rng.Intn(4)), a, Options{})
		if err := out.Check(); err != nil {
			t.Log(err)
			return false
		}
		return simEqual(a, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRewriteReducesVerboseStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := muxHeavyAIG(rng, 8, 40)
	seqOut, seqSt := Sequential(a, Options{})
	if seqOut.NumAnds() > a.NumAnds() {
		t.Errorf("sequential rewrite grew the AIG: %d -> %d", a.NumAnds(), seqOut.NumAnds())
	}
	if seqSt.NodesRewritten == 0 {
		t.Errorf("no nodes rewritten on a redundant AIG")
	}
	if !simEqual(a, seqOut) {
		t.Errorf("sequential changed function")
	}
	parOut, _ := Parallel(gpu.New(2), a, Options{})
	if !simEqual(a, parOut) {
		t.Errorf("parallel changed function")
	}
}

func TestZeroGainEnablesMoreRewrites(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := aig.Random(rng, 8, 300, 5).Rehash()
	_, noZ := Sequential(a, Options{})
	_, withZ := Sequential(a, Options{ZeroGain: true})
	if withZ.NodesRewritten < noZ.NodesRewritten {
		t.Errorf("zero-gain rewrote fewer nodes: %d < %d", withZ.NodesRewritten, noZ.NodesRewritten)
	}
}
