// Package rewrite implements DAG-aware AIG rewriting with 4-input cuts and
// an NPN-canonical subgraph library.
//
// Sequential is the ABC-style baseline (drw): nodes are visited in
// topological order, 4-feasible cuts are enumerated, each cut function is
// looked up in the library, and the best replacement is applied immediately
// when its DAG-aware gain is acceptable. Parallel follows the earlier GPU
// rewriting work [9] that the paper integrates for its full-GPU resyn2: the
// evaluation of all nodes runs in parallel on the device, while the
// replacement step remains sequential (the paper's Table I baseline), and a
// de-duplication pass cleans up afterwards.
package rewrite

import (
	"sync"

	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/factor"
	"aigre/internal/truth"
)

// Library maps canonical NPN classes of 4-variable functions to optimized
// implementations. ABC ships a precomputed library; this one is synthesized
// on first use per class (best of ISOP-factoring and Shannon/mux
// decomposition, both memoized) — see DESIGN.md for the substitution note.
type Library struct {
	mu      sync.RWMutex
	entries map[uint16]libEntry
}

type libEntry struct {
	prog core.Program // over the canonical function's 4 variables
	cost int          // AND nodes without sharing
}

// NewLibrary creates an empty lazily-filled library.
func NewLibrary() *Library {
	return &Library{entries: make(map[uint16]libEntry, 256)}
}

// DefaultLibrary is the process-wide shared library (classes accumulate
// across passes, like ABC's static rewriting data).
var DefaultLibrary = NewLibrary()

// Best returns an implementation program and its node cost for the
// canonical function canon. Safe for concurrent use.
func (l *Library) Best(canon uint16) (core.Program, int) {
	l.mu.RLock()
	e, ok := l.entries[canon]
	l.mu.RUnlock()
	if ok {
		return e.prog, e.cost
	}
	prog, cost := synthesize(canon)
	l.mu.Lock()
	if prev, ok := l.entries[canon]; ok {
		l.mu.Unlock()
		return prev.prog, prev.cost
	}
	l.entries[canon] = libEntry{prog, cost}
	l.mu.Unlock()
	return prog, cost
}

// Size returns the number of cached classes.
func (l *Library) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// synthesize builds the best known implementation of a 4-variable function:
// the cheaper of the algebraically factored form and a Shannon (mux)
// decomposition.
func synthesize(tt uint16) (core.Program, int) {
	ft := factoredTree(tt)
	st := shannonTree(tt)
	best := ft
	if st.NumAnds() < ft.NumAnds() {
		best = st
	}
	prog := core.Linearize(best, false)
	return prog, best.NumAnds()
}

// to4 converts a 16-bit table to the truth package representation.
func to4(tt uint16) truth.TT {
	t := truth.New(4)
	t.Words[0] = uint64(tt) | uint64(tt)<<16 | uint64(tt)<<32 | uint64(tt)<<48
	return t
}

// factoredTree returns the min-phase factored form of tt as a tree
// implementing tt exactly (complement folded in).
func factoredTree(tt uint16) *factor.Tree {
	tree, compl := factor.FactorTT(to4(tt))
	if compl {
		tree = notTree(tree)
	}
	return tree
}

// notTree complements a factored tree by De Morgan push-down on single
// literals/constants, or by wrapping: since factored trees have no NOT node,
// complement the root by rebuilding from the complement function when
// needed. For simplicity the complement is realized at the leaf level when
// the tree is a literal or constant, and otherwise by factoring the
// complement function directly.
func notTree(t *factor.Tree) *factor.Tree {
	switch t.Kind {
	case factor.KindConst0:
		return &factor.Tree{Kind: factor.KindConst1}
	case factor.KindConst1:
		return &factor.Tree{Kind: factor.KindConst0}
	case factor.KindLit:
		return &factor.Tree{Kind: factor.KindLit, Var: t.Var, Neg: !t.Neg}
	}
	// De Morgan: complement an AND into an OR of complements and vice versa.
	cs := make([]*factor.Tree, len(t.Children))
	for i, c := range t.Children {
		cs[i] = notTree(c)
	}
	kind := factor.KindAnd
	if t.Kind == factor.KindAnd {
		kind = factor.KindOr
	}
	return &factor.Tree{Kind: kind, Children: cs}
}

// shannonTree decomposes tt by recursive Shannon expansion on the best
// variable, producing a mux tree. Memoization would require a shared cache;
// depth is at most 4, so recomputation is cheap.
func shannonTree(tt uint16) *factor.Tree {
	switch tt {
	case 0:
		return &factor.Tree{Kind: factor.KindConst0}
	case 0xFFFF:
		return &factor.Tree{Kind: factor.KindConst1}
	}
	f := to4(tt)
	// Literal?
	for v := 0; v < 4; v++ {
		vt := truth.Var(4, v)
		if f.Equal(vt) {
			return &factor.Tree{Kind: factor.KindLit, Var: v}
		}
		if truth.New(4).Not(vt).Equal(f) {
			return &factor.Tree{Kind: factor.KindLit, Var: v, Neg: true}
		}
	}
	bestVar, bestCost := -1, 1<<30
	var bestT0, bestT1 *factor.Tree
	for v := 0; v < 4; v++ {
		if !f.DependsOn(v) {
			continue
		}
		c0 := truth.New(4).Cofactor0(f, v)
		c1 := truth.New(4).Cofactor1(f, v)
		t0 := shannonTree(ttOf(c0))
		t1 := shannonTree(ttOf(c1))
		cost := t0.NumAnds() + t1.NumAnds() + 3
		if cost < bestCost {
			bestVar, bestCost = v, cost
			bestT0, bestT1 = t0, t1
		}
	}
	// f = v*t1 + !v*t0
	v := &factor.Tree{Kind: factor.KindLit, Var: bestVar}
	nv := &factor.Tree{Kind: factor.KindLit, Var: bestVar, Neg: true}
	return &factor.Tree{Kind: factor.KindOr, Children: []*factor.Tree{
		{Kind: factor.KindAnd, Children: []*factor.Tree{v, bestT1}},
		{Kind: factor.KindAnd, Children: []*factor.Tree{nv, bestT0}},
	}}
}

func ttOf(t truth.TT) uint16 { return uint16(t.Words[0]) }

// mapLeaves computes the cut-leaf literals feeding the canonical program:
// canonical variable i reads original leaf Perm[i], complemented per
// InputNeg; the program root is complemented when OutputNeg.
func mapLeaves(leaves []int32, tr truth.Npn4Transform) (mapped [4]aig.Lit, outNeg bool) {
	for i := 0; i < 4; i++ {
		orig := int(tr.Perm[i])
		if orig < len(leaves) {
			neg := tr.InputNeg>>uint(orig)&1 != 0
			mapped[i] = aig.MakeLit(leaves[orig], neg)
		} else {
			mapped[i] = aig.ConstFalse // padding variable (function cannot depend on it)
		}
	}
	return mapped, tr.OutputNeg
}
