package rewrite

import (
	"sort"
	"sync"

	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/cut"
	"aigre/internal/gpu"
	"aigre/internal/truth"
)

// canonCache memoizes NPN canonization (768 transforms per miss) across all
// rewriting passes; at most 65536 entries.
var canonCache sync.Map // uint16 -> canonEntry

type canonEntry struct {
	canon uint16
	tr    truth.Npn4Transform
}

func canonize(tt uint16) (uint16, truth.Npn4Transform) {
	if e, ok := canonCache.Load(tt); ok {
		ce := e.(canonEntry)
		return ce.canon, ce.tr
	}
	canon, tr := truth.Npn4Canon(tt)
	canonCache.Store(tt, canonEntry{canon, tr})
	return canon, tr
}

// Options controls both engines.
type Options struct {
	// ZeroGain accepts replacements that do not reduce the node count
	// (ABC's rwz / the paper's modified [9]).
	ZeroGain bool
	// MaxCutsPerNode bounds the local cut enumeration. Default 8.
	MaxCutsPerNode int
	// Library overrides the NPN subgraph library (nil = DefaultLibrary).
	Library *Library
}

func (o Options) normalized() Options {
	if o.MaxCutsPerNode == 0 {
		o.MaxCutsPerNode = 8
	}
	if o.Library == nil {
		o.Library = DefaultLibrary
	}
	return o
}

// Stats reports one rewriting pass.
type Stats struct {
	NodesConsidered int
	NodesRewritten  int
	NodesBefore     int
	NodesAfter      int
}

// enumLocalCuts enumerates 4-feasible cuts of n on the current graph by
// breadth-first leaf expansion (the trivial cut excluded). Results are leaf
// id sets, sorted, deduplicated, capped at maxCuts.
func enumLocalCuts(a *aig.AIG, n int32, maxCuts int) [][]int32 {
	type key [4]int32
	mk := func(ls []int32) key {
		var k key
		copy(k[:], ls)
		return k
	}
	seen := map[key]bool{}
	var cuts [][]int32
	queue := [][]int32{{a.Fanin0(n).Var(), a.Fanin1(n).Var()}}
	for len(queue) > 0 && len(cuts) < maxCuts {
		cur := queue[0]
		queue = queue[1:]
		sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
		// Remove duplicates within the leaf set.
		ls := cur[:0]
		for i, v := range cur {
			if i == 0 || v != cur[i-1] {
				ls = append(ls, v)
			}
		}
		if seen[mk(ls)] {
			continue
		}
		seen[mk(ls)] = true
		hasConst := len(ls) > 0 && ls[0] == 0
		if !hasConst && len(ls) >= 2 {
			cuts = append(cuts, append([]int32(nil), ls...))
		}
		// Expand each AND leaf.
		for i, v := range ls {
			if !a.IsAnd(v) {
				continue
			}
			next := make([]int32, 0, len(ls)+1)
			next = append(next, ls[:i]...)
			next = append(next, ls[i+1:]...)
			next = append(next, a.Fanin0(v).Var(), a.Fanin1(v).Var())
			// Bound before dedup: the union can shrink back under 4.
			uniq := map[int32]bool{}
			for _, u := range next {
				uniq[u] = true
			}
			if len(uniq) <= 4 {
				queue = append(queue, next)
			}
		}
	}
	return cuts
}

// candidate is the best rewriting found for a node.
type candidate struct {
	leaves []int32
	tt     uint16 // cut function (padded to 4 vars), for revalidation
	prog   core.Program
	mapped [4]aig.Lit
	outNeg bool
	gain   int
}

// evaluateNode finds the best library-based rewriting of node n on the
// current graph. Requires live fanout counts on a. Returns ok=false when no
// cut yields acceptable gain.
func evaluateNode(a *aig.AIG, n int32, opts Options) (candidate, bool, int64) {
	var best candidate
	found := false
	cuts := enumLocalCuts(a, n, opts.MaxCutsPerNode)
	// Cut enumeration explores roughly a handful of expansions per kept cut.
	ops := int64(1 + 20*len(cuts))
	for _, leaves := range cuts {
		tt16, ok := cut.ConeTruth16(a, aig.MakeLit(n, false), leaves)
		if !ok {
			continue
		}
		ops += int64(30 + 4*len(leaves))
		padded := pad16(tt16, len(leaves))
		canon, tr := canonize(padded)
		prog, _ := opts.Library.Best(canon)
		mapped, outNeg := mapLeaves(leaves, tr)
		mffcMembers := core.MffcMembers(a, n, leaves)
		gain := len(mffcMembers) - core.DryRunCost(a, progWithOutput(prog, outNeg), mapped[:], mffcMembers)
		ops += int64(2*len(prog.Ops) + len(mffcMembers))
		if !found || gain > best.gain {
			best = candidate{
				leaves: leaves,
				tt:     padded,
				prog:   progWithOutput(prog, outNeg),
				mapped: mapped,
				outNeg: outNeg,
				gain:   gain,
			}
			found = true
		}
	}
	if !found {
		return candidate{}, false, ops
	}
	if best.gain < 0 || (best.gain == 0 && !opts.ZeroGain) {
		return candidate{}, false, ops
	}
	return best, true, ops
}

// progWithOutput folds the output complement into the program root.
func progWithOutput(p core.Program, neg bool) core.Program {
	if !neg {
		return p
	}
	return core.Program{Ops: p.Ops, Root: p.Root.Not()}
}

// pad16 replicates the meaningful low bits of a k-variable table (k <= 4)
// across the full 16-bit 4-variable representation.
func pad16(w uint16, k int) uint16 {
	switch k {
	case 0:
		w &= 1
		w |= w << 1
		fallthrough
	case 1:
		w &= 3
		w |= w << 2
		fallthrough
	case 2:
		w &= 0xF
		w |= w << 4
		fallthrough
	case 3:
		w &= 0xFF
		w |= w << 8
	}
	return w
}

// applyCandidate validates cand against the current graph and applies it in
// place. Returns whether the node was rewritten.
func applyCandidate(work *aig.AIG, n int32, cand candidate, opts Options, revalidate bool) bool {
	if work.IsDeleted(n) {
		return false
	}
	for _, l := range cand.leaves {
		if work.IsDeleted(l) {
			return false
		}
	}
	if revalidate {
		// The graph may have changed since evaluation: check the cut still
		// bounds the cone and computes the same function, and recompute the
		// gain (the on-the-fly re-evaluation of [9]).
		tt16, ok := cut.ConeTruth16(work, aig.MakeLit(n, false), cand.leaves)
		if !ok || pad16(tt16, len(cand.leaves)) != cand.tt {
			return false
		}
		mffcMembers := core.MffcMembers(work, n, cand.leaves)
		gain := len(mffcMembers) - core.DryRunCost(work, cand.prog, cand.mapped[:], mffcMembers)
		if gain < 0 || (gain == 0 && !opts.ZeroGain) {
			return false
		}
	}
	newRoot, ok := core.BuildProgramAvoiding(work, cand.prog, cand.mapped[:], n)
	if !ok || newRoot.Var() == n {
		return false
	}
	work.ReplaceNode(n, newRoot)
	return true
}

// Sequential runs one pass of ABC-style DAG-aware rewriting (drw; drw -z
// with ZeroGain).
func Sequential(a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	lastOriginal := int32(work.NumObjs())
	for id := int32(work.NumPIs() + 1); id < lastOriginal; id++ {
		if work.IsDeleted(id) {
			continue
		}
		st.NodesConsidered++
		cand, ok, _ := evaluateNode(work, id, opts)
		if !ok {
			continue
		}
		if applyCandidate(work, id, cand, opts, false) {
			st.NodesRewritten++
		}
	}
	out, _ := work.Compact()
	st.NodesAfter = out.NumAnds()
	return out, st
}

// Parallel runs one pass of GPU rewriting in the style of [9]: the cut
// evaluation of all nodes runs as a device kernel; the replacement step is
// sequential on the host (accounted as sequential time — the Table I
// baseline) with on-the-fly re-evaluation; duplicates left behind are
// handled by the caller's dedup pass (Section III-F).
func Parallel(d *gpu.Device, a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()

	// Parallel evaluation kernel: one thread per AND node.
	n := work.NumObjs()
	nodes := make([]int32, 0, work.NumAnds())
	work.ForEachAnd(func(id int32) { nodes = append(nodes, id) })
	cands := make([]candidate, len(nodes))
	oks := make([]bool, len(nodes))
	d.Launch("rewrite/evaluate", len(nodes), func(tid int) int64 {
		cand, ok, ops := evaluateNode(work, nodes[tid], opts)
		cands[tid] = cand
		oks[tid] = ok
		return ops
	})
	st.NodesConsidered = len(nodes)
	_ = n

	// Sequential replacement with re-evaluation (the data-race-avoiding
	// step of [9]); accounted as host-sequential time.
	var seqOps int64
	for i, id := range nodes {
		seqOps += 2
		if !oks[i] {
			continue
		}
		// Re-evaluation (cone truth, MFFC, dry run) plus the replacement
		// itself are host-sequential work in [9].
		seqOps += int64(40 + 3*len(cands[i].prog.Ops))
		if applyCandidate(work, id, cands[i], opts, true) {
			st.NodesRewritten++
			seqOps += int64(2*len(cands[i].prog.Ops) + 16)
		}
	}
	d.AddOverhead("rewrite/seq-replace", seqOps)

	out, _ := work.Compact()
	st.NodesAfter = out.NumAnds()
	return out, st
}
