package rewrite

import (
	"sync"

	"aigre/internal/aig"
	"aigre/internal/core"
	"aigre/internal/cut"
	"aigre/internal/gpu"
	"aigre/internal/rcache"
)

// Options controls both engines.
type Options struct {
	// ZeroGain accepts replacements that do not reduce the node count
	// (ABC's rwz / the paper's modified [9]).
	ZeroGain bool
	// MaxCutsPerNode bounds the local cut enumeration. Default 8.
	MaxCutsPerNode int
	// Library overrides the NPN subgraph library (nil = DefaultLibrary).
	Library *Library
	// Cache memoizes NPN canonization (768 transforms per miss) across
	// passes and runs (nil = the process-wide rcache.Default).
	Cache *rcache.Cache
}

func (o Options) normalized() Options {
	if o.MaxCutsPerNode == 0 {
		o.MaxCutsPerNode = 8
	}
	if o.Library == nil {
		o.Library = DefaultLibrary
	}
	if o.Cache == nil {
		o.Cache = rcache.Default
	}
	return o
}

// Stats reports one rewriting pass.
type Stats struct {
	NodesConsidered int
	NodesRewritten  int
	NodesBefore     int
	NodesAfter      int
}

// evalScratch bundles the reusable working memory of one evaluation worker:
// cut enumeration storage, cone-truth stamps, and MFFC/dry-run stamps.
// In steady state a node evaluation allocates only the winning candidate's
// leaf copy.
type evalScratch struct {
	cs cut.Scratch
	es core.EvalScratch

	seen   map[[4]int32]bool
	qbuf   []int32 // flat queue storage; item i is qbuf[qoff[i]:qoff[i+1]]
	qoff   []int32
	cutBuf []int32   // flat storage of accepted cuts
	cuts   [][]int32 // headers into cutBuf, reused across nodes
}

var scratchPool = sync.Pool{
	New: func() any { return &evalScratch{seen: make(map[[4]int32]bool, 32)} },
}

// enumLocalCuts enumerates 4-feasible cuts of n on the current graph by
// breadth-first leaf expansion (the trivial cut excluded). Results are leaf
// id sets, sorted, deduplicated, capped at maxCuts; the returned slices are
// owned by the scratch and valid until its next call.
func enumLocalCuts(a *aig.AIG, n int32, maxCuts int, s *evalScratch) [][]int32 {
	clear(s.seen)
	s.qbuf = append(s.qbuf[:0], a.Fanin0(n).Var(), a.Fanin1(n).Var())
	s.qoff = append(s.qoff[:0], 0, 2)
	s.cutBuf = s.cutBuf[:0]
	s.cuts = s.cuts[:0]
	head := 0
	for head < len(s.qoff)-1 && len(s.cuts) < maxCuts {
		cur := s.qbuf[s.qoff[head]:s.qoff[head+1]]
		head++
		sortInt32(cur)
		// Remove duplicates within the leaf set.
		ls := cur[:0]
		for i, v := range cur {
			if i == 0 || v != cur[i-1] {
				ls = append(ls, v)
			}
		}
		var k [4]int32
		copy(k[:], ls)
		if s.seen[k] {
			continue
		}
		s.seen[k] = true
		hasConst := len(ls) > 0 && ls[0] == 0
		if !hasConst && len(ls) >= 2 {
			off := len(s.cutBuf)
			s.cutBuf = append(s.cutBuf, ls...)
			s.cuts = append(s.cuts, s.cutBuf[off:len(s.cutBuf):len(s.cutBuf)])
		}
		// Expand each AND leaf.
		for i, v := range ls {
			if !a.IsAnd(v) {
				continue
			}
			off := len(s.qbuf)
			s.qbuf = append(s.qbuf, ls[:i]...)
			s.qbuf = append(s.qbuf, ls[i+1:]...)
			s.qbuf = append(s.qbuf, a.Fanin0(v).Var(), a.Fanin1(v).Var())
			// Bound before dedup: the union can shrink back under 4.
			if uniqueCount(s.qbuf[off:]) <= 4 {
				s.qoff = append(s.qoff, int32(len(s.qbuf)))
			} else {
				s.qbuf = s.qbuf[:off]
			}
		}
	}
	return s.cuts
}

// sortInt32 sorts tiny leaf sets (at most five entries) by insertion.
func sortInt32(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// uniqueCount counts distinct values in a tiny slice.
func uniqueCount(v []int32) int {
	n := 0
	for i, x := range v {
		dup := false
		for _, y := range v[:i] {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			n++
		}
	}
	return n
}

// candidate is the best rewriting found for a node.
type candidate struct {
	leaves []int32
	tt     uint16 // cut function (padded to 4 vars), for revalidation
	prog   core.Program
	mapped [4]aig.Lit
	outNeg bool
	gain   int
}

// evaluateNode finds the best library-based rewriting of node n on the
// current graph. Requires live fanout counts on a. Returns ok=false when no
// cut yields acceptable gain.
func evaluateNode(a *aig.AIG, n int32, opts Options, s *evalScratch) (candidate, bool, int64) {
	var best candidate
	var bestLeaves []int32
	found := false
	cuts := enumLocalCuts(a, n, opts.MaxCutsPerNode, s)
	// Cut enumeration explores roughly a handful of expansions per kept cut.
	ops := int64(1 + 20*len(cuts))
	for _, leaves := range cuts {
		tt16, ok := s.cs.ConeTruth16(a, aig.MakeLit(n, false), leaves)
		if !ok {
			continue
		}
		ops += int64(30 + 4*len(leaves))
		padded := pad16(tt16, len(leaves))
		canon, tr := opts.Cache.Npn4(padded)
		prog, _ := opts.Library.Best(canon)
		mapped, outNeg := mapLeaves(leaves, tr)
		members := s.es.MffcMembers(a, n, leaves)
		gain := len(members) - s.es.DryRunCost(a, progWithOutput(prog, outNeg), mapped[:])
		ops += int64(2*len(prog.Ops) + len(members))
		if !found || gain > best.gain {
			best = candidate{
				tt:     padded,
				prog:   progWithOutput(prog, outNeg),
				mapped: mapped,
				outNeg: outNeg,
				gain:   gain,
			}
			bestLeaves = leaves
			found = true
		}
	}
	if !found {
		return candidate{}, false, ops
	}
	if best.gain < 0 || (best.gain == 0 && !opts.ZeroGain) {
		return candidate{}, false, ops
	}
	// The winning cut escapes the scratch (candidates outlive the evaluation
	// kernel); copy it once here instead of copying every enumerated cut.
	best.leaves = append([]int32(nil), bestLeaves...)
	return best, true, ops
}

// progWithOutput folds the output complement into the program root.
func progWithOutput(p core.Program, neg bool) core.Program {
	if !neg {
		return p
	}
	return core.Program{Ops: p.Ops, Root: p.Root.Not()}
}

// pad16 replicates the meaningful low bits of a k-variable table (k <= 4)
// across the full 16-bit 4-variable representation.
func pad16(w uint16, k int) uint16 {
	switch k {
	case 0:
		w &= 1
		w |= w << 1
		fallthrough
	case 1:
		w &= 3
		w |= w << 2
		fallthrough
	case 2:
		w &= 0xF
		w |= w << 4
		fallthrough
	case 3:
		w &= 0xFF
		w |= w << 8
	}
	return w
}

// applyCandidate validates cand against the current graph and applies it in
// place. Returns whether the node was rewritten.
func applyCandidate(work *aig.AIG, n int32, cand candidate, opts Options, revalidate bool, s *evalScratch) bool {
	if work.IsDeleted(n) {
		return false
	}
	for _, l := range cand.leaves {
		if work.IsDeleted(l) {
			return false
		}
	}
	if revalidate {
		// The graph may have changed since evaluation: check the cut still
		// bounds the cone and computes the same function, and recompute the
		// gain (the on-the-fly re-evaluation of [9]).
		tt16, ok := s.cs.ConeTruth16(work, aig.MakeLit(n, false), cand.leaves)
		if !ok || pad16(tt16, len(cand.leaves)) != cand.tt {
			return false
		}
		members := s.es.MffcMembers(work, n, cand.leaves)
		gain := len(members) - s.es.DryRunCost(work, cand.prog, cand.mapped[:])
		if gain < 0 || (gain == 0 && !opts.ZeroGain) {
			return false
		}
	}
	newRoot, ok := s.es.BuildProgramAvoiding(work, cand.prog, cand.mapped[:], n)
	if !ok || newRoot.Var() == n {
		return false
	}
	work.ReplaceNode(n, newRoot)
	return true
}

// Sequential runs one pass of ABC-style DAG-aware rewriting (drw; drw -z
// with ZeroGain).
func Sequential(a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()
	s := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(s)
	lastOriginal := int32(work.NumObjs())
	for id := int32(work.NumPIs() + 1); id < lastOriginal; id++ {
		if work.IsDeleted(id) {
			continue
		}
		st.NodesConsidered++
		cand, ok, _ := evaluateNode(work, id, opts, s)
		if !ok {
			continue
		}
		if applyCandidate(work, id, cand, opts, false, s) {
			st.NodesRewritten++
		}
	}
	out, _ := work.Compact()
	work.ReleaseStrash()
	st.NodesAfter = out.NumAnds()
	return out, st
}

// Parallel runs one pass of GPU rewriting in the style of [9]: the cut
// evaluation of all nodes runs as a device kernel; the replacement step is
// sequential on the host (accounted as sequential time — the Table I
// baseline) with on-the-fly re-evaluation; duplicates left behind are
// handled by the caller's dedup pass (Section III-F).
func Parallel(d *gpu.Device, a *aig.AIG, opts Options) (*aig.AIG, Stats) {
	opts = opts.normalized()
	st := Stats{NodesBefore: a.NumAnds()}
	work := a.Rehash()
	work.EnableStrash()
	work.EnableFanouts()

	// Parallel evaluation kernel: one thread per AND node.
	nodes := make([]int32, 0, work.NumAnds())
	work.ForEachAnd(func(id int32) { nodes = append(nodes, id) })
	cands := make([]candidate, len(nodes))
	oks := make([]bool, len(nodes))
	d.Launch("rewrite/evaluate", len(nodes), func(tid int) int64 {
		s := scratchPool.Get().(*evalScratch)
		cand, ok, ops := evaluateNode(work, nodes[tid], opts, s)
		scratchPool.Put(s)
		cands[tid] = cand
		oks[tid] = ok
		return ops
	})
	st.NodesConsidered = len(nodes)

	// Sequential replacement with re-evaluation (the data-race-avoiding
	// step of [9]); accounted as host-sequential time.
	s := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(s)
	var seqOps int64
	for i, id := range nodes {
		seqOps += 2
		if !oks[i] {
			continue
		}
		// Re-evaluation (cone truth, MFFC, dry run) plus the replacement
		// itself are host-sequential work in [9].
		seqOps += int64(40 + 3*len(cands[i].prog.Ops))
		if applyCandidate(work, id, cands[i], opts, true, s) {
			st.NodesRewritten++
			seqOps += int64(2*len(cands[i].prog.Ops) + 16)
		}
	}
	d.AddOverhead("rewrite/seq-replace", seqOps)

	out, _ := work.Compact()
	work.ReleaseStrash()
	st.NodesAfter = out.NumAnds()
	return out, st
}
