package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
	"aigre/internal/gpu"
)

func simEqual(a, b *aig.AIG) bool {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false
	}
	ins := make([][]uint64, a.NumPIs())
	for i := range ins {
		r := rand.New(rand.NewSource(int64(i)*2713 + 5))
		ins[i] = []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	}
	sa, sb := a.Simulate(ins), b.Simulate(ins)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

// chainAIG builds a deliberately unbalanced AND chain over n PIs
// (depth n-1), which balancing must reduce to depth ceil(log2 n).
func chainAIG(n int) *aig.AIG {
	a := aig.New(n)
	a.EnableStrash()
	acc := a.PI(0)
	for i := 1; i < n; i++ {
		acc = a.NewAnd(acc, a.PI(i))
	}
	a.AddPO(acc)
	return a
}

func TestSequentialBalancesChain(t *testing.T) {
	a := chainAIG(8)
	out, st := Sequential(a)
	if out.Levels() != 3 {
		t.Errorf("levels = %d, want 3", out.Levels())
	}
	if out.NumAnds() != 7 {
		t.Errorf("nodes = %d, want 7", out.NumAnds())
	}
	if st.LevelsBefore != 7 || st.LevelsAfter != 3 {
		t.Errorf("stats = %+v", st)
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestParallelBalancesChain(t *testing.T) {
	a := chainAIG(8)
	out, _ := Parallel(gpu.New(1), a)
	if out.Levels() != 3 {
		t.Errorf("levels = %d, want 3", out.Levels())
	}
	if !simEqual(a, out) {
		t.Errorf("function changed")
	}
}

func TestDelayAwareOrdering(t *testing.T) {
	// Paper Figure 5: inputs with smaller delays are combined first. A
	// supergate with input delays {2,0,0} must give delay 3 (combine the
	// two delay-0 inputs first), not 4 (chaining through the deep input).
	// The complemented edge stops supergate expansion at `deep`.
	a := aig.New(5)
	a.EnableStrash()
	deep := a.NewAnd(a.NewAnd(a.PI(0), a.PI(1)), a.PI(2)).Not() // delay 2, complemented
	top := a.NewAnd(a.NewAnd(deep, a.PI(3)), a.PI(4))           // original delay 4
	a.AddPO(top)
	if a.Levels() != 4 {
		t.Fatalf("setup levels = %d, want 4", a.Levels())
	}
	seq, _ := Sequential(a)
	par, _ := Parallel(gpu.New(1), a)
	if seq.Levels() != 3 {
		t.Errorf("sequential levels = %d, want 3", seq.Levels())
	}
	if par.Levels() != 3 {
		t.Errorf("parallel levels = %d, want 3", par.Levels())
	}
}

func TestProperty3ParallelMatchesSequentialLevels(t *testing.T) {
	// Property 3: the delays produced by parallel balancing equal those of
	// the sequential algorithm regardless of reconstruction order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 5+rng.Intn(6), 80+rng.Intn(300), 3+rng.Intn(4)).Rehash()
		s, _ := Sequential(a)
		p, _ := Parallel(gpu.New(1+rng.Intn(4)), a)
		if s.Levels() != p.Levels() {
			t.Logf("levels differ: seq %d vs par %d", s.Levels(), p.Levels())
			return false
		}
		return simEqual(a, p) && simEqual(a, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBalanceNeverIncreasesDelay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := aig.Random(rng, 6, 200, 5).Rehash()
		s, _ := Sequential(a)
		p, _ := Parallel(gpu.New(2), a)
		return s.Levels() <= a.Levels() && p.Levels() <= a.Levels()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBalanceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := aig.Random(rng, 8, 300, 4).Rehash()
	once, _ := Sequential(a)
	twice, _ := Sequential(once)
	if once.Levels() != twice.Levels() {
		t.Errorf("levels changed on rebalance: %d -> %d", once.Levels(), twice.Levels())
	}
}

func TestNormalizeInputs(t *testing.T) {
	x := aig.MakeLit(5, false)
	y := aig.MakeLit(6, false)
	// duplicates collapse
	red, _, collapsed := normalizeInputs([]item{{0, x}, {1, y}, {0, x}})
	if collapsed || len(red) != 2 {
		t.Errorf("dedup failed: %v %v", red, collapsed)
	}
	// complementary pair -> const0
	_, single, collapsed := normalizeInputs([]item{{0, x}, {0, x.Not()}})
	if !collapsed || single.lit != aig.ConstFalse {
		t.Errorf("x & !x must collapse to const0")
	}
	// const1 neutral
	red, _, collapsed = normalizeInputs([]item{{0, x}, {0, aig.ConstTrue}, {2, y}})
	if collapsed || len(red) != 2 {
		t.Errorf("const1 not dropped: %v", red)
	}
	// const0 dominates
	_, single, collapsed = normalizeInputs([]item{{0, x}, {0, aig.ConstFalse}})
	if !collapsed || single.lit != aig.ConstFalse {
		t.Errorf("const0 must dominate")
	}
	// single survivor
	_, single, collapsed = normalizeInputs([]item{{3, x}, {3, x}})
	if !collapsed || single.lit != x || single.delay != 3 {
		t.Errorf("single survivor = %+v", single)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := heapOf([]item{{5, 10}, {1, 20}, {3, 30}, {1, 8}})
	prev := h.pop()
	for h.len() > 0 {
		cur := h.pop()
		if itemLess(cur, prev) {
			t.Fatalf("heap order violated: %+v after %+v", cur, prev)
		}
		prev = cur
	}
}

func TestParallelHandlesMultiPO(t *testing.T) {
	a := aig.New(3)
	a.EnableStrash()
	n := a.NewAnd(a.PI(0), a.PI(1))
	a.AddPO(n)
	a.AddPO(n.Not())
	a.AddPO(a.PI(2))
	a.AddPO(aig.ConstTrue)
	out, _ := Parallel(gpu.New(1), a)
	if !simEqual(a, out) {
		t.Errorf("multi-PO function changed")
	}
}

func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := aig.Random(rng, 8, 400, 5).Rehash()
	r1, _ := Parallel(gpu.New(1), a)
	r2, _ := Parallel(gpu.New(4), a)
	if r1.NumAnds() != r2.NumAnds() || r1.Levels() != r2.Levels() {
		t.Errorf("worker count changed result: %v vs %v", r1.Stats(), r2.Stats())
	}
}
