package balance

// itemHeap is a binary min-heap over (delay, literal), the per-subtree
// reconstruction table entry ordering. Ties break on the literal value so
// reconstruction is deterministic regardless of worker count.
type itemHeap struct{ s []item }

func itemLess(a, b item) bool {
	if a.delay != b.delay {
		return a.delay < b.delay
	}
	return a.lit < b.lit
}

// heapOf heapifies items in place.
func heapOf(items []item) *itemHeap {
	h := &itemHeap{s: items}
	h.heapify()
	return h
}

// heapify re-establishes the heap invariant over the current slice in place,
// so a preallocated itemHeap value can be rebound to a new item set without
// allocating.
func (h *itemHeap) heapify() {
	for i := len(h.s)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *itemHeap) len() int { return len(h.s) }

func (h *itemHeap) push(it item) {
	h.s = append(h.s, it)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(h.s[i], h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *itemHeap) pop() item {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *itemHeap) down(i int) {
	n := len(h.s)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && itemLess(h.s[l], h.s[smallest]) {
			smallest = l
		}
		if r < n && itemLess(h.s[r], h.s[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.s[i], h.s[smallest] = h.s[smallest], h.s[i]
		i = smallest
	}
}
