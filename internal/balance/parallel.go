package balance

import (
	"sync/atomic"

	"aigre/internal/aig"
	"aigre/internal/gpu"
	"aigre/internal/hashtable"
	"aigre/internal/mempool"
)

// Reusable per-subtree working memory: gathered input literals, traversal
// stacks, and reconstruction-table item slices. Pooling these removes the
// dominant per-subtree allocations of the parallel engine.
var (
	litPool  mempool.SlicePool[aig.Lit]
	i32Pool  mempool.SlicePool[int32]
	itemPool mempool.SlicePool[item]
)

// combineStep ANDs two reconstruction items, creating a node through mk
// only when no trivial simplification applies, and propagating delays.
func combineStep(a, b item, mk func(f0, f1 aig.Lit) aig.Lit) item {
	if l, ok := aig.SimplifyAnd(a.lit, b.lit); ok {
		switch l {
		case a.lit:
			return a
		case b.lit:
			return b
		default:
			return item{lit: l} // constant, delay 0
		}
	}
	return item{delay: max32(a.delay, b.delay) + 1, lit: mk(a.lit, b.lit)}
}

// Parallel balances the AIG with the paper's GPU algorithm (Section IV-B/C):
// subtree collapse in parallel, then level-wise reconstruction from PIs to
// POs where each insertion pass concurrently creates one node per subtree
// through the shared hash table.
func Parallel(d *gpu.Device, a *aig.AIG) (*aig.AIG, Stats) {
	st := Stats{NodesBefore: a.NumAnds(), LevelsBefore: a.Levels()}
	n := a.NumObjs()
	reach := a.TopoOrder(true)

	// Collapse step 1: reference counts and complemented-fanout flags, one
	// thread per reachable node (atomic increments, as a GPU kernel would).
	refs := make([]int32, n)
	complOut := make([]uint32, n)
	d.Launch("balance/refs", len(reach), func(tid int) int64 {
		id := reach[tid]
		for _, f := range [2]aig.Lit{a.Fanin0(id), a.Fanin1(id)} {
			atomic.AddInt32(&refs[f.Var()], 1)
			if f.IsCompl() {
				atomic.StoreUint32(&complOut[f.Var()], 1)
			}
		}
		return 2
	})
	poDriver := make([]uint32, n)
	pos := a.POs()
	d.Launch1("balance/po-refs", len(pos), func(tid int) {
		v := pos[tid].Var()
		atomic.AddInt32(&refs[v], 1)
		atomic.StoreUint32(&poDriver[v], 1)
	})

	// Collapse step 2: classify subtree roots. A node roots a subtree when
	// it cannot be absorbed into its (unique) fanout's cluster: it drives a
	// PO, has multiple references, or its single fanout edge is
	// complemented.
	isRoot := make([]bool, n)
	d.Launch1("balance/classify", len(reach), func(tid int) {
		id := reach[tid]
		if poDriver[id] == 1 || refs[id] != 1 || complOut[id] == 1 {
			isRoot[id] = true
		}
	})
	roots := gpu.Compact(d, "balance/roots", reach, boolsOf(isRoot, reach))

	// Collapse step 3: gather the n-ary AND inputs of every subtree.
	inputs := make([][]aig.Lit, len(roots))
	d.Launch("balance/gather", len(roots), func(tid int) int64 {
		stk := i32Pool.Get(0)
		inputs[tid], stk = gatherSubtree(a, refs, roots[tid], litPool.Get(0), stk)
		i32Pool.Put(stk)
		return int64(len(inputs[tid]))
	})
	st.Subtrees = len(roots)

	// Dependency levels of the collapsed network (the level of a subtree is
	// 1 + the maximum level of the subtrees feeding it). Computed on the
	// host in topological order; on a real GPU this falls out of the
	// POs-to-PIs collapse itself.
	level := make([]int32, n)
	rootIdx := make([]int32, n)
	for i := range rootIdx {
		rootIdx[i] = -1
	}
	maxLevel := int32(0)
	for i, r := range roots {
		rootIdx[r] = int32(i)
	}
	for _, r := range reach { // topological: inputs precede roots
		if rootIdx[r] < 0 {
			continue
		}
		var lv int32
		for _, f := range inputs[rootIdx[r]] {
			if l := level[f.Var()]; l >= lv {
				lv = l + 1
			}
		}
		level[r] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	for i, r := range roots {
		byLevel[level[r]] = append(byLevel[level[r]], int32(i))
	}

	// Reconstruction: allocate the output network and the shared hash
	// table. Each subtree with k inputs needs at most k-1 nodes.
	counts := make([]int32, len(roots))
	for i := range roots {
		if k := len(inputs[i]); k > 1 {
			counts[i] = int32(k - 1)
		}
	}
	offsets, totalSlots := d.ExclusiveScan("balance/slot-scan", counts)
	out := aig.NewCap(a.NumPIs(), a.NumPIs()+1+int(totalSlots))
	out.Name = a.Name
	base := out.ExtendSlots(int(totalSlots))
	ht := hashtable.New(int(totalSlots) + 16)

	newItem := make([]item, n) // balanced (literal, delay) per original node
	for i := 1; i <= a.NumPIs(); i++ {
		newItem[i] = item{lit: aig.MakeLit(int32(i), false)}
	}
	used := make([]int32, len(roots))
	heaps := make([]*itemHeap, len(roots))
	heapStore := make([]itemHeap, len(roots)) // heap headers preallocated once

	for lv := int32(1); lv <= maxLevel; lv++ {
		batch := byLevel[lv]
		// Initialize the reconstruction table for this batch (Figure 6a).
		d.Launch("balance/recon-init", len(batch), func(tid int) int64 {
			ri := batch[tid]
			ins := inputs[ri]
			items := itemPool.Get(len(ins))
			for j, f := range ins {
				m := newItem[f.Var()]
				items[j] = item{delay: m.delay, lit: m.lit.NotCond(f.IsCompl())}
			}
			reduced, single, collapsed := normalizeInputs(items)
			if collapsed {
				newItem[roots[ri]] = single
				heaps[ri] = nil
				itemPool.Put(items)
				return int64(len(ins))
			}
			// reduced aliases items' backing array; the heap owns it until the
			// batch publishes, when it is returned to the pool.
			h := &heapStore[ri]
			h.s = reduced
			h.heapify()
			heaps[ri] = h
			return int64(len(ins))
		})
		// Insertion passes: one new node per subtree per pass (Figure 6b-c)
		// until every subtree in the batch is reduced to a single literal.
		for {
			active := 0
			for _, ri := range batch {
				if heaps[ri] != nil && heaps[ri].len() > 1 {
					active++
				}
			}
			if active == 0 {
				break
			}
			d.Launch("balance/insert-pass", len(batch), func(tid int) int64 {
				ri := batch[tid]
				h := heaps[ri]
				if h == nil || h.len() < 2 {
					return 1
				}
				x := h.pop()
				y := h.pop()
				res := combineStep(x, y, func(f0, f1 aig.Lit) aig.Lit {
					provisional := base + offsets[ri] + used[ri]
					got, inserted, err := ht.InsertUnique(aig.Key(f0, f1), uint32(provisional))
					if err != nil {
						panic(err)
					}
					if inserted {
						out.SetFanins(provisional, f0, f1)
						used[ri]++
						return aig.MakeLit(provisional, false)
					}
					return aig.MakeLit(int32(got), false)
				})
				h.push(res)
				return 4
			})
		}
		// Publish batch results and recycle the item backing arrays.
		d.Launch1("balance/publish", len(batch), func(tid int) {
			ri := batch[tid]
			if heaps[ri] != nil {
				newItem[roots[ri]] = heaps[ri].pop()
				itemPool.Put(heaps[ri].s)
				heaps[ri].s = nil
				heaps[ri] = nil
			}
		})
	}

	for _, p := range a.POs() {
		m := newItem[p.Var()]
		out.AddPO(m.lit.NotCond(p.IsCompl()))
	}
	for i := range inputs {
		litPool.Put(inputs[i])
		inputs[i] = nil
	}
	final, _ := out.Compact()
	st.NodesAfter = final.NumAnds()
	st.LevelsAfter = final.Levels()
	return final, st
}

// boolsOf projects the keep flags of the given ids into a parallel slice.
func boolsOf(flags []bool, ids []int32) []bool {
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = flags[id]
	}
	return out
}
