// Package balance implements AND-balancing for delay optimization
// (Section IV of the paper).
//
// Sequential is the ABC-style recursive algorithm: clusters of single-fanout,
// non-complemented AND nodes are collapsed into n-input AND gates whose
// (recursively balanced) inputs are recombined in a delay-optimal order.
// Parallel is the paper's reformulation: the collapse and reconstruction
// steps are separated, subtrees are identified in parallel, and
// reconstruction proceeds level-wise from PIs to POs with synchronous
// insertion passes through the concurrent hash table — one new node per
// subtree per pass. Property 3 guarantees both produce the same delays.
package balance

import (
	"slices"

	"aigre/internal/aig"
)

// Stats reports one balancing pass.
type Stats struct {
	Subtrees     int
	NodesBefore  int
	NodesAfter   int
	LevelsBefore int
	LevelsAfter  int
}

// item is one pending input of a subtree under reconstruction.
type item struct {
	delay int32
	lit   aig.Lit
}

// combineInputs reduces a set of balanced inputs to a single literal by
// iteratively ANDing the two smallest-delay items (Huffman-style), creating
// nodes through mk. It assumes inputs has already been deduplicated. h is
// caller-owned heap scratch, rebound to inputs in place so the per-subtree
// heap costs no allocation.
func combineInputs(inputs []item, h *itemHeap, mk func(f0, f1 aig.Lit) aig.Lit) item {
	h.s = inputs
	h.heapify()
	for h.len() > 1 {
		a := h.pop()
		b := h.pop()
		lit := mk(a.lit, b.lit)
		h.push(item{delay: max32(a.delay, b.delay) + 1, lit: lit})
	}
	return h.pop()
}

// normalizeInputs removes duplicate literals and detects complementary
// pairs and constants in an n-input AND's balanced inputs. When the product
// collapses to a single literal or constant, it returns (nil, that item,
// true).
func normalizeInputs(items []item) ([]item, item, bool) {
	slices.SortFunc(items, func(a, b item) int {
		if a.lit < b.lit {
			return -1
		}
		if a.lit > b.lit {
			return 1
		}
		return 0
	})
	out := items[:0]
	for _, it := range items {
		if it.lit == aig.ConstTrue {
			continue // neutral element
		}
		if it.lit == aig.ConstFalse {
			return nil, item{lit: aig.ConstFalse}, true
		}
		if n := len(out); n > 0 {
			if out[n-1].lit == it.lit {
				continue // x & x = x
			}
			if out[n-1].lit == it.lit.Not() {
				return nil, item{lit: aig.ConstFalse}, true // x & !x = 0
			}
		}
		out = append(out, it)
	}
	if len(out) == 0 {
		return nil, item{lit: aig.ConstTrue}, true // empty product
	}
	if len(out) == 1 {
		return nil, out[0], true
	}
	return out, item{}, false
}

// gatherSubtree collects the n-ary AND inputs of the subtree rooted at
// root: expansion follows non-complemented edges into single-fanout AND
// nodes; everything else becomes an input (Section IV-A). stack is reusable
// traversal scratch; the (possibly grown) stack is returned for reuse.
func gatherSubtree(a *aig.AIG, refs []int32, root int32, out []aig.Lit, stack []int32) ([]aig.Lit, []int32) {
	stack = append(stack[:0], root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range [2]aig.Lit{a.Fanin0(n), a.Fanin1(n)} {
			v := f.Var()
			if !f.IsCompl() && a.IsAnd(v) && refs[v] == 1 {
				stack = append(stack, v)
			} else {
				out = append(out, f)
			}
		}
	}
	return out, stack
}

// Sequential balances the AIG with the ABC algorithm (implemented
// iteratively to tolerate very deep networks) and returns a freshly built
// network.
func Sequential(a *aig.AIG) (*aig.AIG, Stats) {
	st := Stats{NodesBefore: a.NumAnds(), LevelsBefore: a.Levels()}
	refs := a.FanoutCounts()
	out := aig.NewCap(a.NumPIs(), a.NumObjs())
	out.Name = a.Name
	out.EnableStrash()

	memo := make([]item, a.NumObjs())
	done := make([]bool, a.NumObjs())
	done[0] = true // const maps to const (lit 0, delay 0)
	for i := 1; i <= a.NumPIs(); i++ {
		memo[i] = item{lit: aig.MakeLit(int32(i), false)}
		done[i] = true
	}

	type frame struct {
		id   int32
		raw  []aig.Lit // subtree inputs (original literals)
		next int       // inputs resolved so far
	}
	// Allocation discipline: balancing visits ~one subtree per AND node, and
	// a fresh raw slice, item slice, heap box, and NewAnd method value per
	// subtree made this loop the dominant allocation site of the whole
	// partition-parallel flow (~84% of allocs/op on the million-node bench).
	// raw slices cycle through a freelist (frames at different depths hold
	// theirs concurrently), while the item buffer and heap are singletons —
	// only the top frame reduces at any moment, and nothing retains them.
	var stack []frame
	var gstack []int32
	var rawFree [][]aig.Lit
	var itemsBuf []item
	var heap itemHeap
	mk := out.NewAnd
	balance := func(root int32) item {
		if done[root] {
			return memo[root]
		}
		stack = append(stack[:0], frame{id: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.raw == nil {
				st.Subtrees++
				raw := []aig.Lit(nil)
				if n := len(rawFree); n > 0 {
					raw = rawFree[n-1][:0]
					rawFree = rawFree[:n-1]
				} else {
					raw = make([]aig.Lit, 0, 8)
				}
				f.raw, gstack = gatherSubtree(a, refs, f.id, raw, gstack)
			}
			// Resolve remaining inputs, descending where needed.
			descended := false
			for f.next < len(f.raw) {
				v := f.raw[f.next].Var()
				if !done[v] {
					stack = append(stack, frame{id: v})
					descended = true
					break
				}
				f.next++
			}
			if descended {
				continue
			}
			itemsBuf = itemsBuf[:0]
			for _, rl := range f.raw {
				m := memo[rl.Var()]
				itemsBuf = append(itemsBuf, item{delay: m.delay, lit: m.lit.NotCond(rl.IsCompl())})
			}
			reduced, single, collapsed := normalizeInputs(itemsBuf)
			var res item
			if collapsed {
				res = single
			} else {
				res = combineInputs(reduced, &heap, mk)
			}
			memo[f.id] = res
			done[f.id] = true
			rawFree = append(rawFree, f.raw)
			stack = stack[:len(stack)-1]
		}
		return memo[root]
	}

	for _, p := range a.POs() {
		m := balance(p.Var())
		out.AddPO(m.lit.NotCond(p.IsCompl()))
	}
	final, _ := out.Compact()
	out.ReleaseStrash()
	st.NodesAfter = final.NumAnds()
	st.LevelsAfter = final.Levels()
	return final, st
}

func max32(x, y int32) int32 {
	if x > y {
		return x
	}
	return y
}
