package bench

import (
	"fmt"
	"math/rand"

	"aigre/internal/aig"
)

// Adder builds a W-bit ripple-carry adder (sum + carry-out POs).
func Adder(w int) *aig.AIG {
	b := NewBuilder(w, w)
	sum, carry := b.Add(b.Input(0), b.Input(1), aig.ConstFalse)
	b.Output(sum)
	b.A.AddPO(carry)
	b.A.Name = fmt.Sprintf("adder%d", w)
	return finish(b)
}

// Multiplier builds a WxW array multiplier with a 2W-bit product.
func Multiplier(w int) *aig.AIG {
	b := NewBuilder(w, w)
	b.Output(b.Mul(b.Input(0), b.Input(1)))
	b.A.Name = fmt.Sprintf("multiplier%d", w)
	return finish(b)
}

// Square builds the square of a W-bit word.
func Square(w int) *aig.AIG {
	b := NewBuilder(w)
	x := b.Input(0)
	b.Output(b.Mul(x, x))
	b.A.Name = fmt.Sprintf("square%d", w)
	return finish(b)
}

// Div builds a W-bit restoring divider (quotient and remainder POs); like
// the EPFL div it is very deep.
func Div(w int) *aig.AIG {
	b := NewBuilder(w, w)
	q, r := b.DivMod(b.Input(0), b.Input(1))
	b.Output(q)
	b.Output(r)
	b.A.Name = fmt.Sprintf("div%d", w)
	return finish(b)
}

// Sqrt builds a W-bit integer square root (deep dependent chain).
func Sqrt(w int) *aig.AIG {
	b := NewBuilder(w)
	b.Output(b.Sqrt(b.Input(0)))
	b.A.Name = fmt.Sprintf("sqrt%d", w)
	return finish(b)
}

// Hyp builds sqrt(a^2 + b^2), the hypotenuse function — the deepest circuit
// of the suite, like EPFL hyp.
func Hyp(w int) *aig.AIG {
	b := NewBuilder(w, w)
	a2 := b.Mul(b.Input(0), b.Input(0))
	b2 := b.Mul(b.Input(1), b.Input(1))
	sum, carry := b.Add(a2, b2, aig.ConstFalse)
	b.Output(b.Sqrt(append(sum, carry)))
	b.A.Name = fmt.Sprintf("hyp%d", w)
	return finish(b)
}

// Log2 builds a fixed-point base-2 logarithm: a priority encoder for the
// integer part plus a barrel normalizer whose mantissa provides fraction
// bits (linear approximation), mixing encoder, shifter and adder structure
// like the EPFL log2.
func Log2(w int) *aig.AIG {
	b := NewBuilder(w)
	x := b.Input(0)
	msb, found := b.PriorityEncode(x)
	// Normalize: x << (w-1 - msb) brings the leading one to the top.
	shifted := b.BarrelShiftLeft(x, b.Not(msb)) // (w-1)-msb when w is a power of two
	frac := shifted[:len(shifted)-1]            // bits below the leading one
	b.Output(msb)
	b.A.AddPO(found)
	// A refinement stage: frac + frac^2/2 truncated (one multiplier).
	sq := b.Mul(frac, frac)
	ref, _ := b.Add(frac, b.ShiftRightConst(sq[len(frac):], 1), aig.ConstFalse)
	b.Output(ref)
	b.A.Name = fmt.Sprintf("log2_%d", w)
	return finish(b)
}

// Sin builds a fixed-point polynomial approximation of sine:
// s = x - x^3/6 + x^5/120 with power-of-two reciprocal scaling, a
// multiplier-dominated circuit like the EPFL sin.
func Sin(w int) *aig.AIG {
	b := NewBuilder(w)
	x := b.Input(0)
	x2 := b.Mul(x, x)[:w]
	x3 := b.Mul(x2, x)[:w]
	x5 := b.Mul(x3, x2)[:w]
	// 1/6 ~ 1/8 + 1/32, 1/120 ~ 1/128: shift-add reciprocals.
	t3, _ := b.Add(b.ShiftRightConst(x3, 3), b.ShiftRightConst(x3, 5), aig.ConstFalse)
	t5 := b.ShiftRightConst(x5, 7)
	d, _ := b.Sub(x, t3)
	s, _ := b.Add(d, t5, aig.ConstFalse)
	b.Output(s)
	b.A.Name = fmt.Sprintf("sin%d", w)
	return finish(b)
}

// Voter builds an n-input majority (popcount + threshold compare), like the
// EPFL voter: wide and shallow.
func Voter(n int) *aig.AIG {
	b := NewBuilder(n)
	count := b.Popcount(b.Input(0))
	threshold := b.Const(len(count), uint64(n/2))
	b.A.AddPO(b.Ult(threshold, count))
	b.A.Name = fmt.Sprintf("voter%d", n)
	return finish(b)
}

// controlStyle builds seeded, structured control logic: address decoders,
// comparators against constants, and mux trees driven by opcode fields —
// wide and shallow like the IWLS-2005 OpenCores controllers.
func controlStyle(name string, seed int64, nWords, w int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	widths := make([]int, nWords)
	for i := range widths {
		widths[i] = w
	}
	b := NewBuilder(widths...)
	var signals []aig.Lit
	for o := 0; o < nWords*2; o++ {
		x := b.Input(rng.Intn(nWords))
		y := b.Input(rng.Intn(nWords))
		var l aig.Lit
		switch rng.Intn(4) {
		case 0: // decode against a random constant
			l = b.Eq(x, b.Const(w, uint64(rng.Intn(1<<uint(min(w, 16))))))
		case 1: // magnitude compare
			l = b.Ult(x, y)
		case 2: // parity of a masked field
			l = b.ReduceXor(b.And(x, y))
		default: // mux-selected bit
			sel := b.Ult(x, b.Const(w, uint64(rng.Intn(1<<uint(min(w, 16))))))
			m := b.MuxWord(sel, x, y)
			l = m[rng.Intn(w)]
		}
		signals = append(signals, l)
	}
	// Next-state style outputs: small AND-OR clouds over the signals.
	for o := 0; o < nWords; o++ {
		acc := aig.ConstFalse
		for t := 0; t < 4; t++ {
			term := aig.ConstTrue
			for k := 0; k < 3; k++ {
				s := signals[rng.Intn(len(signals))].NotCond(rng.Intn(2) == 0)
				term = b.A.NewAnd(term, s)
			}
			acc = b.A.Or(acc, term)
		}
		b.A.AddPO(acc)
	}
	b.A.Name = name
	return finish(b)
}

// MemCtrl builds a mem_ctrl-style control circuit.
func MemCtrl(scale int) *aig.AIG {
	return controlStyle("mem_ctrl", 1005, 12*scale, 16)
}

// AC97Ctrl builds an ac97_ctrl-style control circuit (very shallow).
func AC97Ctrl(scale int) *aig.AIG {
	return controlStyle("ac97_ctrl", 97, 16*scale, 8)
}

// VGALcd builds a vga_lcd-style control circuit.
func VGALcd(scale int) *aig.AIG {
	return controlStyle("vga_lcd", 640, 10*scale, 12)
}

// MtM builds an EPFL MtM-style random-function benchmark. The EPFL MtM
// circuits are synthesized from random Boolean functions and are therefore
// largely tree-shaped (modest fanout sharing, shallow-ish): the generator
// combines random signals and mostly consumes them, yielding wide forests
// with occasional sharing, unlike datapath circuits.
func MtM(name string, seed int64, nodes int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	// The EPFL MtM circuits are shallow and very wide with large PI counts
	// (e.g. twentythree: 23M nodes, 176 levels); a generous PI pool keeps
	// cone functions non-degenerate (few repeated leaves per cone).
	nPIs := nodes / 6
	if nPIs < 64 {
		nPIs = 64
	}
	a := aig.NewCap(nPIs, nPIs+1+nodes)
	a.EnableStrash()
	pool := make([]aig.Lit, 0, nodes)
	// pick selects an operand: a PI half of the time, otherwise a uniformly
	// chosen tree root that is usually consumed (fanout stays near one, the
	// forest combines like a random binary tree: logarithmic depth). The
	// pool index to consume is returned so that consumption happens only
	// when a real node is created — otherwise trees would leak into
	// dangling logic.
	pick := func() (aig.Lit, int) {
		if len(pool) > 0 && rng.Intn(100) >= 35 {
			i := rng.Intn(len(pool))
			if rng.Intn(100) < 60 {
				return pool[i], i // consume the root
			}
			return pool[i], -1 // reuse without consuming (fanout sharing)
		}
		return a.PI(rng.Intn(nPIs)), -1
	}
	for a.NumAnds() < nodes {
		l0, i0 := pick()
		l1, i1 := pick()
		l0 = l0.NotCond(rng.Intn(2) == 0)
		l1 = l1.NotCond(rng.Intn(2) == 0)
		before := a.NumObjs()
		var l aig.Lit
		// Mix connectives: AND-only random trees drift toward constant
		// functions; XOR keeps the function distribution unbiased, as for
		// genuine random Boolean functions.
		switch r := rng.Intn(100); {
		case r < 50:
			l = a.NewAnd(l0, l1)
		case r < 70:
			l = a.Or(l0, l1)
		default:
			l = a.Xor(l0, l1)
		}
		if a.NumObjs() == before {
			continue // simplified or shared: leave the pool untouched
		}
		// Remove consumed roots, higher index first so swap-removal keeps
		// the lower index valid; a doubly-picked entry is consumed once.
		if i0 == i1 {
			i1 = -1
		}
		if i0 < i1 {
			i0, i1 = i1, i0
		}
		for _, i := range [2]int{i0, i1} {
			if i >= 0 {
				pool[i] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			}
		}
		pool = append(pool, l)
	}
	// The surviving pool entries are the tree roots.
	for _, l := range pool {
		a.AddPO(l)
	}
	a.Name = name
	out := a.Rehash()
	out.Name = name
	return out
}

// Double returns a network containing two disjoint copies of a (fresh PIs
// and POs), the ABC `double` command used by the paper to enlarge
// benchmarks. Node count and PO count double; levels are unchanged.
func Double(a *aig.AIG) *aig.AIG {
	out := aig.NewCap(2*a.NumPIs(), 2*a.NumObjs())
	out.Name = a.Name + "_d"
	for copyIdx := 0; copyIdx < 2; copyIdx++ {
		base := int32(copyIdx * a.NumPIs())
		mp := make([]aig.Lit, a.NumObjs())
		mp[0] = aig.ConstFalse
		for i := 1; i <= a.NumPIs(); i++ {
			mp[i] = aig.MakeLit(base+int32(i), false)
		}
		for _, id := range a.TopoOrder(true) {
			f0, f1 := a.Fanin0(id), a.Fanin1(id)
			mp[id] = out.AddAndUnchecked(
				mp[f0.Var()].NotCond(f0.IsCompl()),
				mp[f1.Var()].NotCond(f1.IsCompl()),
			)
		}
		for _, p := range a.POs() {
			out.AddPO(mp[p.Var()].NotCond(p.IsCompl()))
		}
	}
	return out
}

// DoubleN applies Double n times (2^n copies), like the paper's "_nxd"
// benchmark naming.
func DoubleN(a *aig.AIG, n int) *aig.AIG {
	name := a.Name
	for i := 0; i < n; i++ {
		a = Double(a)
	}
	a.Name = fmt.Sprintf("%s_%dxd", name, n)
	return a
}

// finish compacts the built network (dropping any dangling scaffolding).
func finish(b *Builder) *aig.AIG {
	out, _ := b.A.Compact()
	out.Name = b.A.Name
	return out
}

func min(x, y int) int {
	if x < y {
		return x
	}
	return y
}
