package bench

import "aigre/internal/aig"

// Case is one named benchmark in the experiment suite.
type Case struct {
	Name  string
	Build func() *aig.AIG
}

// Suite returns the 14 benchmark families of the paper's Table II, scaled
// by the given factor (1 = smallest, suitable for unit-scale runs; larger
// factors enlarge the circuits with MtM size scaling and ABC-style
// doubling). The mix matches the paper: three MtM random functions, nine
// arithmetic circuits, two (three with vga_lcd) control circuits.
func Suite(scale int) []Case {
	if scale < 1 {
		scale = 1
	}
	dbl := 0
	for s := scale; s > 1; s >>= 1 {
		dbl++
	}
	d := func(build func() *aig.AIG) func() *aig.AIG {
		return func() *aig.AIG { return DoubleN(build(), dbl) }
	}
	return []Case{
		{"twentythree", func() *aig.AIG { return MtM("twentythree", 23, 2300*scale) }},
		{"twenty", func() *aig.AIG { return MtM("twenty", 20, 2000*scale) }},
		{"sixteen", func() *aig.AIG { return MtM("sixteen", 16, 1600*scale) }},
		{"div", d(func() *aig.AIG { return Div(24) })},
		{"hyp", d(func() *aig.AIG { return Hyp(16) })},
		{"mem_ctrl", d(func() *aig.AIG { return MemCtrl(2) })},
		{"log2", d(func() *aig.AIG { return Log2(32) })},
		{"multiplier", d(func() *aig.AIG { return Multiplier(32) })},
		{"sqrt", d(func() *aig.AIG { return Sqrt(48) })},
		{"square", d(func() *aig.AIG { return Square(32) })},
		{"voter", func() *aig.AIG { return Voter(401 * scale) }},
		{"sin", d(func() *aig.AIG { return Sin(16) })},
		{"ac97_ctrl", d(func() *aig.AIG { return AC97Ctrl(4) })},
		{"vga_lcd", d(func() *aig.AIG { return VGALcd(3) })},
	}
}

// ByName builds a single suite case; ok is false for unknown names.
func ByName(name string, scale int) (*aig.AIG, bool) {
	for _, c := range Suite(scale) {
		if c.Name == name {
			return c.Build(), true
		}
	}
	return nil, false
}

// Names lists the suite benchmark names in table order.
func Names() []string {
	cases := Suite(1)
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.Name
	}
	return out
}
