// Package bench generates the benchmark circuits used by the experiments:
// from-scratch equivalents of the EPFL arithmetic suite (adder, multiplier,
// square, div, sqrt, hyp, log2, sin), the EPFL voter, IWLS-2005-style
// control circuits (mem_ctrl, ac97_ctrl, vga_lcd), and EPFL MtM-style random
// functions, plus ABC's `double` network replication used to enlarge them
// (see DESIGN.md for the substitution rationale). It is built on a word-level
// circuit construction substrate.
package bench

import (
	"fmt"

	"aigre/internal/aig"
)

// Word is a little-endian vector of signal literals (bit 0 first).
type Word []aig.Lit

// Builder constructs word-level datapaths on an underlying AIG.
type Builder struct {
	A      *aig.AIG
	inputs []Word
}

// NewBuilder creates a builder whose primary inputs are pre-allocated as
// words of the given widths (AIG PIs must precede AND nodes).
func NewBuilder(widths ...int) *Builder {
	total := 0
	for _, w := range widths {
		total += w
	}
	a := aig.New(total)
	a.EnableStrash()
	b := &Builder{A: a}
	idx := 0
	for _, w := range widths {
		word := make(Word, w)
		for i := 0; i < w; i++ {
			word[i] = a.PI(idx)
			idx++
		}
		b.inputs = append(b.inputs, word)
	}
	return b
}

// Input returns the i-th input word.
func (b *Builder) Input(i int) Word { return b.inputs[i] }

// Output drives primary outputs with every bit of w.
func (b *Builder) Output(w Word) {
	for _, l := range w {
		b.A.AddPO(l)
	}
}

// Const builds a constant word.
func (b *Builder) Const(width int, value uint64) Word {
	w := make(Word, width)
	for i := range w {
		if value>>uint(i)&1 != 0 {
			w[i] = aig.ConstTrue
		} else {
			w[i] = aig.ConstFalse
		}
	}
	return w
}

// Zext zero-extends (or truncates) w to width bits.
func (b *Builder) Zext(w Word, width int) Word {
	out := make(Word, width)
	for i := range out {
		if i < len(w) {
			out[i] = w[i]
		} else {
			out[i] = aig.ConstFalse
		}
	}
	return out
}

// Not complements every bit.
func (b *Builder) Not(w Word) Word {
	out := make(Word, len(w))
	for i, l := range w {
		out[i] = l.Not()
	}
	return out
}

// And, Or, Xor are bitwise operations over equal-width words.
func (b *Builder) And(x, y Word) Word { return b.bitwise(x, y, b.A.NewAnd) }
func (b *Builder) Or(x, y Word) Word  { return b.bitwise(x, y, b.A.Or) }
func (b *Builder) Xor(x, y Word) Word { return b.bitwise(x, y, b.A.Xor) }

func (b *Builder) bitwise(x, y Word, op func(aig.Lit, aig.Lit) aig.Lit) Word {
	if len(x) != len(y) {
		panic(fmt.Sprintf("bench: width mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Word, len(x))
	for i := range x {
		out[i] = op(x[i], y[i])
	}
	return out
}

// fullAdder returns (sum, carry) of three bits.
func (b *Builder) fullAdder(x, y, c aig.Lit) (aig.Lit, aig.Lit) {
	s := b.A.Xor(b.A.Xor(x, y), c)
	co := b.A.Maj3(x, y, c)
	return s, co
}

// Add returns x+y (width max(len)) and the carry-out (ripple-carry).
func (b *Builder) Add(x, y Word, cin aig.Lit) (Word, aig.Lit) {
	width := len(x)
	if len(y) > width {
		width = len(y)
	}
	x = b.Zext(x, width)
	y = b.Zext(y, width)
	out := make(Word, width)
	c := cin
	for i := 0; i < width; i++ {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

// Sub returns x-y and a borrow-free flag (1 when x >= y).
func (b *Builder) Sub(x, y Word) (Word, aig.Lit) {
	width := len(x)
	if len(y) > width {
		width = len(y)
	}
	diff, carry := b.Add(b.Zext(x, width), b.Not(b.Zext(y, width)), aig.ConstTrue)
	return diff, carry
}

// MuxWord selects t when sel else e.
func (b *Builder) MuxWord(sel aig.Lit, t, e Word) Word {
	if len(t) != len(e) {
		panic("bench: mux width mismatch")
	}
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.A.Mux(sel, t[i], e[i])
	}
	return out
}

// Mul returns the full 2W-bit product of two W-bit words (array multiplier:
// AND partial products summed by ripple adders).
func (b *Builder) Mul(x, y Word) Word {
	w := len(x)
	acc := b.Const(len(x)+len(y), 0)
	for i := 0; i < len(y); i++ {
		pp := make(Word, len(x)+len(y))
		for j := range pp {
			pp[j] = aig.ConstFalse
		}
		for j := 0; j < w; j++ {
			if i+j < len(pp) {
				pp[i+j] = b.A.NewAnd(x[j], y[i])
			}
		}
		acc, _ = b.Add(acc, pp, aig.ConstFalse)
	}
	return acc
}

// ShiftLeftConst shifts w left by k bits, keeping the width.
func (b *Builder) ShiftLeftConst(w Word, k int) Word {
	out := make(Word, len(w))
	for i := range out {
		if i-k >= 0 {
			out[i] = w[i-k]
		} else {
			out[i] = aig.ConstFalse
		}
	}
	return out
}

// ShiftRightConst shifts w right by k bits, keeping the width.
func (b *Builder) ShiftRightConst(w Word, k int) Word {
	out := make(Word, len(w))
	for i := range out {
		if i+k < len(w) {
			out[i] = w[i+k]
		} else {
			out[i] = aig.ConstFalse
		}
	}
	return out
}

// BarrelShiftLeft shifts value left by the amount encoded in amt (a log-W
// stage barrel shifter).
func (b *Builder) BarrelShiftLeft(value Word, amt Word) Word {
	out := value
	for s := 0; s < len(amt); s++ {
		shifted := b.ShiftLeftConst(out, 1<<uint(s))
		out = b.MuxWord(amt[s], shifted, out)
	}
	return out
}

// BarrelShiftRight is the right-shifting counterpart.
func (b *Builder) BarrelShiftRight(value Word, amt Word) Word {
	out := value
	for s := 0; s < len(amt); s++ {
		shifted := b.ShiftRightConst(out, 1<<uint(s))
		out = b.MuxWord(amt[s], shifted, out)
	}
	return out
}

// Eq returns the equality of two words.
func (b *Builder) Eq(x, y Word) aig.Lit {
	res := aig.ConstTrue
	for i := range x {
		res = b.A.NewAnd(res, b.A.Xor(x[i], y[i]).Not())
	}
	return res
}

// Ult returns 1 when x < y (unsigned).
func (b *Builder) Ult(x, y Word) aig.Lit {
	_, geq := b.Sub(x, y)
	return geq.Not()
}

// ReduceOr ORs all bits.
func (b *Builder) ReduceOr(w Word) aig.Lit {
	res := aig.ConstFalse
	for _, l := range w {
		res = b.A.Or(res, l)
	}
	return res
}

// ReduceXor XORs all bits.
func (b *Builder) ReduceXor(w Word) aig.Lit {
	res := aig.ConstFalse
	for _, l := range w {
		res = b.A.Xor(res, l)
	}
	return res
}

// Popcount sums the bits of w into a count word (adder tree).
func (b *Builder) Popcount(w Word) Word {
	// Reduce words pairwise: start from 1-bit counts.
	counts := make([]Word, len(w))
	for i, l := range w {
		counts[i] = Word{l}
	}
	for len(counts) > 1 {
		var next []Word
		for i := 0; i+1 < len(counts); i += 2 {
			width := len(counts[i])
			if len(counts[i+1]) > width {
				width = len(counts[i+1])
			}
			sum, carry := b.Add(b.Zext(counts[i], width), b.Zext(counts[i+1], width), aig.ConstFalse)
			next = append(next, append(sum, carry))
		}
		if len(counts)%2 == 1 {
			next = append(next, counts[len(counts)-1])
		}
		counts = next
	}
	return counts[0]
}

// DivMod computes the restoring division q = x/y, r = x%y for W-bit words.
// The structure is long and narrow (O(W) dependent subtract stages), like
// the EPFL div benchmark.
func (b *Builder) DivMod(x, y Word) (q, r Word) {
	w := len(x)
	r = b.Const(w, 0)
	q = make(Word, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		r = append(Word{x[i]}, r[:w-1]...)
		diff, geq := b.Sub(r, y)
		q[i] = geq
		r = b.MuxWord(geq, diff, r)
	}
	return q, r
}

// Sqrt computes the W/2-bit integer square root of a W-bit word by the
// digit-by-digit (restoring) method, again a long dependent chain like the
// EPFL sqrt benchmark.
func (b *Builder) Sqrt(x Word) Word {
	w := len(x)
	resBits := (w + 1) / 2
	root := b.Const(w, 0)  // current root estimate
	rem := b.Const(w+2, 0) // running remainder
	for i := resBits - 1; i >= 0; i-- {
		// Bring down two bits of x.
		hi := aig.ConstFalse
		lo := aig.ConstFalse
		if 2*i+1 < w {
			hi = x[2*i+1]
		}
		if 2*i < w {
			lo = x[2*i]
		}
		rem = append(Word{lo, hi}, rem[:len(rem)-2]...)
		// Trial subtractor value: 4*root + 1.
		trial := b.ShiftLeftConst(b.Zext(root, len(rem)), 2)
		trial[0] = aig.ConstTrue
		diff, geq := b.Sub(rem, trial)
		rem = b.MuxWord(geq, diff, rem)
		// root = (root << 1) | geq
		root = append(Word{geq}, root[:len(root)-1]...)
	}
	return root[:resBits]
}

// PriorityEncode returns the index of the most significant set bit of w (0
// when none) and a "found" flag.
func (b *Builder) PriorityEncode(w Word) (Word, aig.Lit) {
	width := 0
	for 1<<width < len(w) {
		width++
	}
	// Scan from the MSB down, keeping the first hit.
	idx := b.Const(width, 0)
	found := aig.ConstFalse
	for i := len(w) - 1; i >= 0; i-- {
		take := b.A.NewAnd(w[i], found.Not())
		idx = b.MuxWord(take, b.Const(width, uint64(i)), idx)
		found = b.A.Or(found, w[i])
	}
	return idx, found
}
