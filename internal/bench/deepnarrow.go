package bench

import (
	"fmt"

	"aigre/internal/aig"
)

// DeepNarrow builds the adversarial deep-and-narrow circuit used by the
// partition-parallel benchmarks: chains independent primary-output cones,
// each a chain of steps XOR-accumulator stages over a small rotating window
// of 32 shared primary inputs. Each stage spends 4 AND nodes (one gating AND
// plus a 3-AND XOR), so the network has about 4*chains*steps AND nodes and
// about 2*steps levels — 64 chains of 4000 steps is a million-node AIG.
//
// The shape is the worst case for kernel-level parallelism (a level holds at
// most a few nodes per chain, so a parallel command launches thousands of
// nearly-empty kernels) and the best case for cone partitioning (the chains
// are functionally independent, so every partition seam is conflict-free).
// XOR accumulation keeps the chains incompressible: optimization cannot
// collapse the depth, only tidy locally.
func DeepNarrow(chains, steps int) *aig.AIG {
	if chains < 1 {
		chains = 1
	}
	if steps < 1 {
		steps = 1
	}
	const npi = 32
	a := aig.NewCap(npi, npi+1+4*chains*steps)
	a.Name = fmt.Sprintf("deep_narrow_%dx%d", chains, steps)
	for c := 0; c < chains; c++ {
		acc := a.PI((c * 7) % npi)
		side := a.PI((c*13 + 5) % npi).NotCond(c%2 == 1)
		for k := 0; k < steps; k++ {
			pi := a.PI((c*31 + k*17 + 3) % npi)
			gate := a.AddAndUnchecked(pi, side)
			// acc ^= gate, spelled in AND gates.
			t0 := a.AddAndUnchecked(acc, gate.Not())
			t1 := a.AddAndUnchecked(acc.Not(), gate)
			side = acc
			acc = a.AddAndUnchecked(t0.Not(), t1.Not()).Not()
		}
		a.AddPO(acc)
	}
	return a
}
