package bench

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"aigre/internal/aig"
)

// evalWords evaluates the AIG on concrete input words and returns the PO
// bits (little-endian over all POs).
func evalWords(a *aig.AIG, widths []int, values []uint64) []bool {
	in := make([]bool, a.NumPIs())
	idx := 0
	for w, width := range widths {
		for i := 0; i < width; i++ {
			in[idx] = values[w]>>uint(i)&1 != 0
			idx++
		}
	}
	return a.EvalOnce(in)
}

func toUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestAdder(t *testing.T) {
	const w = 16
	a := Adder(w)
	f := func(x, y uint16) bool {
		out := evalWords(a, []int{w, w}, []uint64{uint64(x), uint64(y)})
		sum := toUint(out[:w])
		carry := out[w]
		want := uint64(x) + uint64(y)
		return sum == want&0xFFFF && carry == (want>>16 != 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiplier(t *testing.T) {
	const w = 10
	a := Multiplier(w)
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&0x3FF, uint64(y)&0x3FF
		out := evalWords(a, []int{w, w}, []uint64{xv, yv})
		return toUint(out[:2*w]) == xv*yv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSquare(t *testing.T) {
	const w = 10
	a := Square(w)
	f := func(x uint16) bool {
		xv := uint64(x) & 0x3FF
		out := evalWords(a, []int{w}, []uint64{xv})
		return toUint(out[:2*w]) == xv*xv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	const w = 12
	a := Div(w)
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&0xFFF, uint64(y)&0xFFF
		if yv == 0 {
			return true // division by zero unspecified
		}
		out := evalWords(a, []int{w, w}, []uint64{xv, yv})
		q := toUint(out[:w])
		r := toUint(out[w : 2*w])
		return q == xv/yv && r == xv%yv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSqrtCircuit(t *testing.T) {
	const w = 12
	a := Sqrt(w)
	f := func(x uint16) bool {
		xv := uint64(x) & 0xFFF
		out := evalWords(a, []int{w}, []uint64{xv})
		got := toUint(out[:(w+1)/2])
		want := uint64(isqrt(xv))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func isqrt(x uint64) uint64 {
	var r uint64
	for r*r <= x {
		r++
	}
	return r - 1
}

func TestHypFunction(t *testing.T) {
	const w = 8
	a := Hyp(w)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		x := uint64(rng.Intn(1 << w))
		y := uint64(rng.Intn(1 << w))
		out := evalWords(a, []int{w, w}, []uint64{x, y})
		got := toUint(out)
		want := isqrt(x*x + y*y)
		if got != want {
			t.Fatalf("hyp(%d,%d) = %d, want %d", x, y, got, want)
		}
	}
}

func TestVoterMajority(t *testing.T) {
	const n = 15
	a := Voter(n)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		in := make([]bool, n)
		count := 0
		for i := range in {
			in[i] = rng.Intn(2) == 0
			if in[i] {
				count++
			}
		}
		got := a.EvalOnce(in)[0]
		want := count > n/2
		if got != want {
			t.Fatalf("voter(%v) = %v, want %v (count %d)", in, got, want, count)
		}
	}
}

func TestLog2IntegerPart(t *testing.T) {
	const w = 16
	a := Log2(w)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		x := uint64(rng.Intn(1<<w-1) + 1)
		out := evalWords(a, []int{w}, []uint64{x})
		// First ceil(log2(w)) bits: MSB index; next bit: found flag.
		idxBits := bits.Len(uint(w - 1))
		got := toUint(out[:idxBits])
		found := out[idxBits]
		want := uint64(bits.Len64(x) - 1)
		if !found || got != want {
			t.Fatalf("log2(%d): idx=%d found=%v, want %d", x, got, found, want)
		}
	}
}

func TestPopcount(t *testing.T) {
	b := NewBuilder(13)
	count := b.Popcount(b.Input(0))
	b.Output(count)
	a := finish(b)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		x := uint64(rng.Intn(1 << 13))
		out := evalWords(a, []int{13}, []uint64{x})
		if toUint(out) != uint64(bits.OnesCount64(x)) {
			t.Fatalf("popcount(%b) = %d", x, toUint(out))
		}
	}
}

func TestBarrelShifter(t *testing.T) {
	b := NewBuilder(16, 4)
	b.Output(b.BarrelShiftLeft(b.Input(0), b.Input(1)))
	b.Output(b.BarrelShiftRight(b.Input(0), b.Input(1)))
	a := finish(b)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		x := uint64(rng.Intn(1 << 16))
		s := uint64(rng.Intn(16))
		out := evalWords(a, []int{16, 4}, []uint64{x, s})
		left := toUint(out[:16])
		right := toUint(out[16:32])
		if left != (x<<s)&0xFFFF {
			t.Fatalf("left shift %d<<%d = %d", x, s, left)
		}
		if right != x>>s {
			t.Fatalf("right shift %d>>%d = %d", x, s, right)
		}
	}
}

func TestComparators(t *testing.T) {
	b := NewBuilder(8, 8)
	b.A.AddPO(b.Eq(b.Input(0), b.Input(1)))
	b.A.AddPO(b.Ult(b.Input(0), b.Input(1)))
	a := finish(b)
	f := func(x, y uint8) bool {
		out := evalWords(a, []int{8, 8}, []uint64{uint64(x), uint64(y)})
		return out[0] == (x == y) && out[1] == (x < y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDoublePreservesLevelsDoublesNodes(t *testing.T) {
	a := Multiplier(12)
	d := Double(a)
	if d.NumAnds() != 2*a.NumAnds() {
		t.Errorf("nodes %d -> %d, want exact doubling", a.NumAnds(), d.NumAnds())
	}
	if d.Levels() != a.Levels() {
		t.Errorf("levels changed: %d -> %d", a.Levels(), d.Levels())
	}
	if d.NumPIs() != 2*a.NumPIs() || d.NumPOs() != 2*a.NumPOs() {
		t.Errorf("interface not doubled")
	}
	// Both copies behave like the original.
	rng := rand.New(rand.NewSource(6))
	x := uint64(rng.Intn(1 << 12))
	y := uint64(rng.Intn(1 << 12))
	out := evalWords(d, []int{12, 12, 12, 12}, []uint64{x, y, y, x})
	if toUint(out[:24]) != x*y || toUint(out[24:48]) != y*x {
		t.Errorf("copies compute wrong product")
	}
}

func TestSuiteBuilds(t *testing.T) {
	for _, c := range Suite(1) {
		a := c.Build()
		if err := a.Check(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if a.NumAnds() < 100 {
			t.Errorf("%s suspiciously small: %d nodes", c.Name, a.NumAnds())
		}
	}
}

func TestSuiteShapes(t *testing.T) {
	// The families must preserve the paper's structural contrasts:
	// div/sqrt/hyp deep, controllers shallow.
	get := func(name string) *aig.AIG {
		a, ok := ByName(name, 1)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return a
	}
	deep := []int{get("div").Levels(), get("sqrt").Levels(), get("hyp").Levels()}
	shallow := []int{get("ac97_ctrl").Levels(), get("vga_lcd").Levels(), get("voter").Levels()}
	for _, d := range deep {
		for _, s := range shallow {
			if d <= 2*s {
				t.Errorf("deep/shallow contrast lost: deep %v shallow %v", deep, shallow)
				return
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("nonexistent", 1); ok {
		t.Error("unknown benchmark accepted")
	}
	if len(Names()) != 14 {
		t.Errorf("suite has %d cases, want 14", len(Names()))
	}
}

func TestScaleGrowsSuite(t *testing.T) {
	small, _ := ByName("multiplier", 1)
	big, _ := ByName("multiplier", 4)
	if big.NumAnds() != 4*small.NumAnds() {
		t.Errorf("scale 4 nodes = %d, want %d", big.NumAnds(), 4*small.NumAnds())
	}
	if big.Levels() != small.Levels() {
		t.Errorf("doubling changed levels")
	}
}

// TestDeepNarrow pins the adversarial generator's shape: exact node count,
// one PO per chain, structural validity, and a depth of 2 levels per step —
// deep and narrow by construction.
func TestDeepNarrow(t *testing.T) {
	a := DeepNarrow(4, 50)
	if err := aig.Check(a); err != nil {
		t.Fatal(err)
	}
	if got, want := a.NumAnds(), 4*4*50; got != want {
		t.Errorf("NumAnds = %d, want %d", got, want)
	}
	if a.NumPOs() != 4 {
		t.Errorf("NumPOs = %d, want 4", a.NumPOs())
	}
	if lev := a.Levels(); lev < 2*50 {
		t.Errorf("Levels = %d, want >= %d (deep chains)", lev, 2*50)
	}
	// The chains must be functionally independent and non-constant: the
	// strashed, optimizable form keeps all four outputs.
	r := a.Rehash()
	if r.NumAnds() < 4*4*50/2 {
		t.Errorf("strash collapsed the chains: %d of %d nodes survive", r.NumAnds(), a.NumAnds())
	}
}
