.PHONY: check build test race bench

check: ## tier-1: build + vet + race-detector test suite
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...
