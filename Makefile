.PHONY: check build test race bench

check: ## tier-1: build + vet + race-detector test suite
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench: ## paper-table + partition benchmarks + regression gate vs scripts/bench_baseline.txt -> BENCH_<scripts/pr_sequence>.json
	./scripts/bench.sh

bench-all:
	go test -bench=. -benchmem ./...
