module aigre

go 1.22
