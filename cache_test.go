package aigre_test

import (
	"context"
	"fmt"
	"testing"

	"aigre"
	"aigre/internal/aig"
	"aigre/internal/bench"
)

// cacheCases are arithmetic circuits — the workloads where a resynthesis
// cache pays off, because carry chains and partial products repeat the same
// cone functions hundreds of times. (Random networks are useless here: resyn2
// collapses an 8-PI random AIG to constants before refactor sees a cone.)
func cacheCases() map[string]*aig.AIG {
	return map[string]*aig.AIG{
		"adder32": bench.Adder(32),
		"mult8":   bench.Multiplier(8),
	}
}

// TestCachedRunsMatchUncached is the correctness contract of the
// resynthesis cache: a cached run must produce an AIG with statistics
// bit-identical to the uncached run and remain equivalent to the input —
// the cache is a pure memoization, never a behavioral knob.
func TestCachedRunsMatchUncached(t *testing.T) {
	for name, raw := range cacheCases() {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/parallel=%v", name, parallel), func(t *testing.T) {
				n := aigre.FromInternal(raw)

				cold, err := n.Resyn2(context.Background(), aigre.Options{
					Parallel: parallel, Cache: aigre.DisabledCache(),
				})
				if err != nil {
					t.Fatal(err)
				}
				cache := aigre.NewCache()
				warm, err := n.Resyn2(context.Background(), aigre.Options{
					Parallel: parallel, Cache: cache,
				})
				if err != nil {
					t.Fatal(err)
				}

				cs, ws := cold.AIG.Stats(), warm.AIG.Stats()
				if cs.Nodes != ws.Nodes || cs.Levels != ws.Levels || cs.POs != ws.POs {
					t.Fatalf("cached stats %+v != uncached %+v", ws, cs)
				}
				if eq, err := warm.AIG.EquivalentTo(n); err != nil || !eq {
					t.Fatalf("cached result not equivalent (err=%v)", err)
				}
				if cold.CacheStats.Hits != 0 || cold.CacheStats.NpnHits != 0 {
					t.Errorf("disabled cache reported hits: %+v", cold.CacheStats)
				}
				if warm.CacheStats.Misses == 0 {
					t.Errorf("fresh cache saw no program traffic: %+v", warm.CacheStats)
				}
				if warm.CacheStats.Hits == 0 {
					t.Errorf("arithmetic circuit produced no within-run hits: %+v", warm.CacheStats)
				}

				// A second run over the same network hits the now-warm cache
				// and still produces the identical result.
				again, err := n.Resyn2(context.Background(), aigre.Options{
					Parallel: parallel, Cache: cache,
				})
				if err != nil {
					t.Fatal(err)
				}
				if as := again.AIG.Stats(); as.Nodes != cs.Nodes || as.Levels != cs.Levels {
					t.Fatalf("warm rerun stats %+v != cold %+v", as, cs)
				}
				if again.CacheStats.Hits <= warm.CacheStats.Hits {
					t.Errorf("warm rerun hits %d not above cold-run hits %d",
						again.CacheStats.Hits, warm.CacheStats.Hits)
				}
			})
		}
	}
}

// TestSharedCacheBatchStress hammers one shared cache from concurrent batch
// jobs (run under -race by scripts/check.sh) and checks every job's result
// against an isolated-cache reference run.
func TestSharedCacheBatchStress(t *testing.T) {
	const jobs = 8
	shared := aigre.NewCache()
	batch := make([]aigre.Batch, jobs)
	for i := range batch {
		// Pairs of jobs share a circuit so the cache sees genuinely
		// concurrent lookups of the same cone functions.
		var raw *aig.AIG
		switch i % 4 {
		case 0:
			raw = bench.Adder(24)
		case 1:
			raw = bench.Multiplier(6)
		case 2:
			raw = bench.Square(8)
		default:
			raw = bench.Voter(9)
		}
		batch[i] = aigre.Batch{
			Name:    fmt.Sprintf("job%d", i),
			AIG:     aigre.FromInternal(raw),
			Script:  "b; rw; rfz; b",
			Options: aigre.Options{Parallel: true},
		}
	}
	results, metrics, err := aigre.RunBatch(context.Background(), batch,
		aigre.BatchOptions{Workers: 4, SharedCache: shared})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		ref, err := batch[i].AIG.Run(context.Background(), batch[i].Script, aigre.Options{
			Parallel: true, Cache: aigre.DisabledCache(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, ss := ref.AIG.Stats(), r.AIG.Stats()
		if rs.Nodes != ss.Nodes || rs.Levels != ss.Levels {
			t.Errorf("job %d: shared-cache stats %+v != isolated %+v", i, ss, rs)
		}
	}
	if metrics.CacheStats.Misses == 0 {
		t.Errorf("shared cache saw no traffic: %+v", metrics.CacheStats)
	}
	if metrics.CacheStats.Hits == 0 {
		t.Errorf("duplicate jobs produced no shared-cache hits: %+v", metrics.CacheStats)
	}
}
