package aigre_test

import (
	"context"
	"errors"
	"flag"
	"path/filepath"
	"testing"
	"time"

	"aigre"
	"aigre/internal/bench"
	"aigre/internal/journal"
	"aigre/internal/sched"
)

// chaosSeed makes the fault schedules reproducible while letting the chaos
// gate in scripts/check.sh sweep fresh schedules (-chaos-seed=$RANDOM).
var chaosSeed = flag.Int64("chaos-seed", 1, "base seed for the chaos fault schedules")

func chaosFleet() []*aigre.Network {
	return []*aigre.Network{
		aigre.FromInternal(bench.Adder(16)),
		aigre.FromInternal(bench.Multiplier(8)),
		aigre.FromInternal(bench.Voter(6)),
		aigre.FromInternal(bench.Square(8)),
		aigre.FromInternal(bench.Log2(8)),
		aigre.FromInternal(bench.Adder(24)),
		aigre.FromInternal(bench.MemCtrl(1)),
		aigre.FromInternal(bench.Multiplier(6)),
	}
}

// TestChaosBatchSupervision is the supervision acceptance criterion: an
// 8-job batch with injected kernel panics (including typed hashtable-full
// failures), silent corruptions, and one deliberately stuck job must come
// out with every transient casualty retried to success, the stuck job
// watchdog-preempted and quarantined, every surviving output CEC-equivalent
// to a fault-free run, and the journal replaying the full supervision
// history after the run has ended.
func TestChaosBatchSupervision(t *testing.T) {
	const script = "b; rw; rf"
	const stuckIdx = 5
	opts := aigre.Options{Parallel: true}

	// Fault-free baseline: same fleet, same script, no supervision needed.
	fleet := chaosFleet()
	jobs := make([]aigre.Batch, len(fleet))
	for i, n := range fleet {
		jobs[i] = aigre.Batch{AIG: n, Script: script, Options: opts}
	}
	baseline, _, err := aigre.RunBatch(context.Background(), jobs, aigre.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline job %d (%s): %v", i, r.Name, r.Err)
		}
	}

	// Chaos run: every job gets a randomized (but seeded, hence reproducible)
	// fault schedule; job stuckIdx is poisoned with enough stalls to outlast
	// its retry budget.
	for i := range jobs {
		o := opts
		if i == stuckIdx {
			o.FaultPlans = sched.StallSchedule("rewrite/evaluate", 8, 400*time.Millisecond)
		} else {
			o.FaultPlans = sched.ChaosSchedule(*chaosSeed*8191+int64(i), 2)
		}
		jobs[i].Options = o
	}
	jpath := filepath.Join(t.TempDir(), "chaos.jsonl")
	results, m, err := aigre.RunBatch(context.Background(), jobs, aigre.BatchOptions{
		Workers:     4,
		JournalPath: jpath,
		Policy: aigre.Policy{
			Retries:       2,
			RetryDegraded: true,
			StuckTimeout:  120 * time.Millisecond,
			Backoff:       time.Millisecond,
			MaxBackoff:    8 * time.Millisecond,
			Seed:          *chaosSeed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	retriedOK := 0
	for i, r := range results {
		if i == stuckIdx {
			if !r.Quarantined {
				t.Fatalf("stuck job %s: not quarantined (err=%v)", r.Name, r.Err)
			}
			if !errors.Is(r.Err, sched.ErrStuck) {
				t.Errorf("stuck job %s: err %v, want ErrStuck", r.Name, r.Err)
			}
			if r.Preemptions == 0 {
				t.Errorf("stuck job %s: watchdog never preempted it", r.Name)
			}
			if r.Attempts != 3 {
				t.Errorf("stuck job %s: %d attempts, want 3 (1 + Retries)", r.Name, r.Attempts)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("chaos job %d (%s): %v (attempts=%d)", i, r.Name, r.Err, r.Attempts)
		}
		// A retry that landed clean keeps its attempt-1 incident history but
		// records none on the final attempt.
		clean := true
		for _, inc := range r.Incidents {
			if inc.Attempt == r.Attempts {
				clean = false
			}
		}
		if r.Attempts > 1 && clean {
			retriedOK++
		}
		eq, err := r.AIG.EquivalentTo(baseline[i].AIG)
		if err != nil {
			t.Fatalf("job %d (%s): CEC: %v", i, r.Name, err)
		}
		if !eq {
			t.Errorf("job %d (%s): chaos output not equivalent to fault-free output", i, r.Name)
		}
	}
	if retriedOK == 0 {
		t.Error("no transient job was retried to a clean success")
	}
	if m.Quarantined != 1 {
		t.Errorf("metrics: %d quarantined, want 1", m.Quarantined)
	}
	if m.Finished != len(jobs)-1 {
		t.Errorf("metrics: %d finished, want %d", m.Finished, len(jobs)-1)
	}
	if m.Retries == 0 {
		t.Error("metrics: no retries recorded")
	}

	// The journal must replay the full history now that RunBatch has closed
	// it: a start and a terminal event for every job, preemptions and the
	// quarantine for the stuck job, and strictly increasing sequence numbers.
	entries, _, err := journal.Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	attempts := map[string]int{}
	terminal := map[string]string{}
	preempts, retries := 0, 0
	lastSeq := int64(0)
	for i, e := range entries {
		if i > 0 && e.Seq <= lastSeq {
			t.Fatalf("journal entry %d: seq %d not increasing (prev %d)", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Event {
		case journal.EventAttempt:
			attempts[e.Job]++
		case journal.EventPreempt:
			preempts++
		case journal.EventRetry:
			retries++
		case journal.EventDone, journal.EventFail, journal.EventQuarantine, journal.EventCancel:
			terminal[e.Job] = e.Event
		}
	}
	for i, r := range results {
		if attempts[r.Name] != r.Attempts {
			t.Errorf("journal: job %s has %d attempt entries, result says %d", r.Name, attempts[r.Name], r.Attempts)
		}
		want := journal.EventDone
		if i == stuckIdx {
			want = journal.EventQuarantine
		}
		if terminal[r.Name] != want {
			t.Errorf("journal: job %s terminal event %q, want %q", r.Name, terminal[r.Name], want)
		}
	}
	if preempts == 0 {
		t.Error("journal: no preempt events recorded")
	}
	if retries != m.Retries {
		t.Errorf("journal: %d retry events, metrics counted %d", retries, m.Retries)
	}
}
