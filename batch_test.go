package aigre_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"aigre"
	"aigre/internal/bench"
)

// TestRunBatchMatchesSequential is the batch-vs-sequential acceptance
// criterion: optimizing the example circuits through resyn2 as one
// concurrent batch over a small shared pool must yield node counts
// identical to running each network alone, one at a time.
func TestRunBatchMatchesSequential(t *testing.T) {
	nets := []*aigre.Network{
		aigre.FromInternal(bench.Multiplier(8)),
		aigre.FromInternal(bench.Voter(6)),
		aigre.FromInternal(bench.Adder(16)),
		aigre.FromInternal(bench.MemCtrl(1)),
	}
	opts := aigre.Options{Parallel: true}

	want := make([]int, len(nets))
	for i, n := range nets {
		res, err := n.Resyn2(context.Background(), opts)
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		want[i] = res.AIG.Stats().Nodes
	}

	jobs := make([]aigre.Batch, len(nets))
	for i, n := range nets {
		jobs[i] = aigre.Batch{AIG: n, Script: aigre.ScriptResyn2, Options: opts}
	}
	results, m, err := aigre.RunBatch(context.Background(), jobs, aigre.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch job %d (%s): %v", i, r.Name, r.Err)
		}
		if got := r.AIG.Stats().Nodes; got != want[i] {
			t.Errorf("job %d (%s): %d nodes in batch, %d alone", i, r.Name, got, want[i])
		}
		if r.NodesAfter != r.AIG.Stats().Nodes || r.NodesBefore != nets[i].Stats().Nodes {
			t.Errorf("job %d: node bookkeeping %d->%d vs %d->%d", i,
				r.NodesBefore, r.NodesAfter, nets[i].Stats().Nodes, r.AIG.Stats().Nodes)
		}
	}
	if m.PeakWorkers > 2 {
		t.Errorf("peak workers %d exceeds the 2-worker budget", m.PeakWorkers)
	}
	if m.Finished != len(nets) || m.Failed != 0 || m.Cancelled != 0 {
		t.Errorf("metrics %+v, want %d finished", m, len(nets))
	}
	if m.Utilization <= 0 || m.Utilization > 1.01 {
		t.Errorf("utilization %v out of range", m.Utilization)
	}
}

// TestRunBatchCancellation cancels a running batch and checks the report:
// jobs stop promptly with a wrapped context error, the metrics account for
// them, and the inputs are untouched.
func TestRunBatchCancellation(t *testing.T) {
	n := aigre.FromInternal(bench.Multiplier(8))
	nodesBefore := n.Stats().Nodes
	long := strings.Repeat(aigre.ScriptResyn2+"; ", 50) + "b"
	jobs := []aigre.Batch{
		{Name: "a", AIG: n, Script: long, Options: aigre.Options{Parallel: true}},
		{Name: "b", AIG: n, Script: long, Options: aigre.Options{Parallel: true}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, m, err := aigre.RunBatch(ctx, jobs, aigre.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Errorf("cancelled batch took %v to return", wall)
	}
	for i, r := range results {
		if !r.Cancelled {
			t.Errorf("job %d not marked cancelled (err = %v)", i, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d err = %v, want wrapped context.Canceled", i, r.Err)
		}
	}
	if m.Cancelled != len(jobs) {
		t.Errorf("metrics cancelled = %d, want %d", m.Cancelled, len(jobs))
	}
	if n.Stats().Nodes != nodesBefore {
		t.Errorf("input mutated: %d -> %d nodes", nodesBefore, n.Stats().Nodes)
	}
}

// TestRunBatchValidation pins the upfront batch checks.
func TestRunBatchValidation(t *testing.T) {
	ctx := context.Background()
	if _, _, err := aigre.RunBatch(ctx, nil, aigre.BatchOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := aigre.RunBatch(ctx, []aigre.Batch{{Script: "b"}}, aigre.BatchOptions{}); err == nil {
		t.Error("nil network accepted")
	}
	n := aigre.FromInternal(bench.Adder(4))
	if _, _, err := aigre.RunBatch(ctx, []aigre.Batch{{AIG: n, Script: "b; frobnicate"}}, aigre.BatchOptions{}); err == nil {
		t.Error("bad script accepted")
	}
}

// TestCancelledSingleRunReturnsPartial checks the ctx-first single-network
// API: cancelling mid-script returns the partial result and a wrapped
// context error within one command boundary.
func TestCancelledSingleRunReturnsPartial(t *testing.T) {
	n := aigre.FromInternal(bench.Multiplier(8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := n.Run(ctx, aigre.ScriptResyn2, aigre.Options{Parallel: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res.AIG == nil {
		t.Fatal("cancelled run lost the partial result")
	}
	if got := res.AIG.Stats().Nodes; got != n.Stats().Nodes {
		t.Errorf("pre-cancelled run still optimized: %d vs %d nodes", got, n.Stats().Nodes)
	}

	// Balance goes through runAlgo rather than flow; same contract.
	if _, err := n.Balance(ctx, aigre.Options{Parallel: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("Balance err = %v, want wrapped context.Canceled", err)
	}
}

// TestNetworkCheck exercises the public invariant validator alongside the
// unstable Internal/FromInternal escape hatches.
func TestNetworkCheck(t *testing.T) {
	n := aigre.FromInternal(bench.Adder(8))
	if err := n.Check(); err != nil {
		t.Fatalf("well-formed network fails Check: %v", err)
	}
	if n.Internal() == nil {
		t.Fatal("Internal returned nil")
	}
}
