// Datapath example: generate realistic arithmetic circuits (the workloads
// the paper's introduction motivates — multipliers, dividers, square roots),
// write them to AIGER, and compare sequential vs parallel optimization on
// each, including the delay guarantee of balancing (Property 3).
//
//	go run ./examples/datapath
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aigre"
	"aigre/internal/bench"
)

func main() {
	dir, err := os.MkdirTemp("", "aigre-datapath")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	for _, c := range []struct {
		name string
		n    *aigre.Network
	}{
		{"multiplier16", aigre.FromInternal(bench.Multiplier(16))},
		{"div16", aigre.FromInternal(bench.Div(16))},
		{"sqrt24", aigre.FromInternal(bench.Sqrt(24))},
	} {
		// Round-trip through AIGER like a real flow would.
		path := filepath.Join(dir, c.name+".aig")
		if err := c.n.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		n, err := aigre.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", n.Stats())

		// Delay optimization: sequential and parallel balancing give the
		// same levels (the paper's Property 3).
		seqB, _ := n.Balance(context.Background(), aigre.Options{})
		parB, _ := n.Balance(context.Background(), aigre.Options{Parallel: true})
		fmt.Printf("  balance levels: sequential %d, parallel %d (must match)\n",
			seqB.AIG.Stats().Levels, parB.AIG.Stats().Levels)
		if seqB.AIG.Stats().Levels != parB.AIG.Stats().Levels {
			log.Fatal("Property 3 violated")
		}

		// Area optimization: two passes of parallel refactoring.
		rf, _ := n.Refactor(context.Background(), aigre.Options{Parallel: true, Passes: 2})
		fmt.Printf("  refactor:  %d -> %d nodes (modeled device time %v)\n",
			n.Stats().Nodes, rf.AIG.Stats().Nodes, rf.Modeled)

		eq, err := rf.AIG.EquivalentTo(n)
		if err != nil || !eq {
			log.Fatalf("equivalence check failed: %v", err)
		}
		fmt.Println("  equivalence: ok")
	}
}
