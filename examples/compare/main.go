// Sequence comparison example: run the paper's optimization sequences
// (resyn2 and rf_resyn) in both execution modes on a control-logic circuit
// and print a side-by-side quality/runtime comparison with the per-command
// breakdown — a miniature of the paper's Table III and Figure 8.
//
//	go run ./examples/compare
package main

import (
	"context"
	"fmt"
	"log"

	"aigre"
	"aigre/internal/bench"
	"aigre/internal/flow"
)

func main() {
	n := aigre.FromInternal(bench.MemCtrl(3))
	fmt.Println("input:", n.Stats())

	for _, seq := range []struct{ name, script string }{
		{"rf_resyn", flow.RfResyn},
		{"resyn2", flow.Resyn2},
	} {
		fmt.Printf("\n--- %s (%q) ---\n", seq.name, seq.script)
		var results []*aigre.Network
		for _, parallel := range []bool{false, true} {
			opts := aigre.Options{Parallel: parallel}
			if parallel && seq.name == "resyn2" {
				opts.RwzPasses = 2 // the paper's GPU resyn2 setting
			}
			res, err := n.Run(context.Background(), seq.script, opts)
			if err != nil {
				log.Fatal(err)
			}
			mode := "sequential"
			if parallel {
				mode = "parallel  "
			}
			fmt.Printf("%s: %5d nodes %3d levels  wall=%-12v modeled=%v\n",
				mode, res.AIG.Stats().Nodes, res.AIG.Stats().Levels, res.Wall, res.Modeled)
			if parallel {
				bd := flow.Breakdown(res.Timings)
				fmt.Printf("  modeled breakdown: b=%v rw=%v rf=%v dedup=%v\n",
					bd["b"], bd["rw"], bd["rf"], bd["dedup"])
			}
			results = append(results, res.AIG)
		}
		for _, r := range results {
			eq, err := r.EquivalentTo(n)
			if err != nil || !eq {
				log.Fatalf("equivalence check failed: %v", err)
			}
		}
		fmt.Println("equivalence: both results verified")
	}
}
