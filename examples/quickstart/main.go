// Quickstart: build a small circuit with the public API, optimize it with
// the paper's parallel algorithms, and verify equivalence.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"aigre"
)

func main() {
	// Build a deliberately clumsy circuit: a wide AND chain (deep), an
	// unfactored sum of products, and a few XORs — the kinds of structure
	// balancing, refactoring, and rewriting each know how to fix.
	const nPIs = 24
	n := aigre.New(nPIs)
	rng := rand.New(rand.NewSource(7))

	// Deep AND chain over all inputs (depth 23; balancing gets depth 5).
	chain := n.PI(0)
	for i := 1; i < nPIs; i++ {
		chain = n.AddAnd(chain, n.PI(i))
	}
	n.AddPO(chain)

	// Unfactored sums of products sharing divisors (refactoring compresses).
	for o := 0; o < 4; o++ {
		sum := aigre.Const0
		x := n.PI(rng.Intn(nPIs))
		for c := 0; c < 5; c++ {
			y := n.PI(rng.Intn(nPIs))
			sum = n.AddOr(sum, n.AddAnd(x, y))
		}
		n.AddPO(sum)
	}

	// Some XOR trees (rewriting recognizes their optimal forms).
	x := n.PI(0)
	for i := 1; i < 8; i++ {
		x = n.AddXor(x, n.PI(i))
	}
	n.AddPO(x)

	fmt.Println("original: ", n.Stats())

	// Run the paper's fully parallel resyn2 sequence.
	res, err := n.Resyn2(context.Background(), aigre.Options{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resyn2:   ", res.AIG.Stats())
	fmt.Printf("wall time %v, modeled device time %v\n", res.Wall, res.Modeled)
	for _, t := range res.Timings {
		fmt.Printf("  %-4s -> %5d nodes, %3d levels\n", t.Command, t.NodesAfter, t.LevelsAfter)
	}

	// Always verify: combinational equivalence checking (simulation + SAT).
	eq, err := res.AIG.EquivalentTo(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent:", eq)
}
