package aigre_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"aigre"
	"aigre/internal/bench"
)

// TestPartitionedResyn2MatchesWhole is the stitch-equivalence acceptance
// test: on Table-III circuit families, running resyn2 partition-parallel
// must produce a network fully combinationally equivalent (random +
// exhaustive simulation, then SAT) to the whole-network resyn2 result.
func TestPartitionedResyn2MatchesWhole(t *testing.T) {
	cases := []struct {
		name string
		mode aigre.PartitionMode
	}{
		{"multiplier", aigre.PartitionCones},
		{"mem_ctrl", aigre.PartitionCones},
		{"sin", aigre.PartitionLevels},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name+"/"+c.mode.String(), func(t *testing.T) {
			t.Parallel()
			a, ok := bench.ByName(c.name, 1)
			if !ok {
				t.Fatalf("unknown circuit %q", c.name)
			}
			n := aigre.FromInternal(a)
			whole, err := n.Resyn2(context.Background(), aigre.Options{})
			if err != nil {
				t.Fatal(err)
			}
			part, err := n.Resyn2(context.Background(), aigre.Options{
				Workers: 4,
				Partition: aigre.PartitionOptions{
					Mode:       c.mode,
					TargetSize: a.NumAnds()/5 + 1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := part.Partition
			if rep == nil {
				t.Fatal("partitioned run returned no partition report")
			}
			if len(rep.Parts) < 2 {
				t.Fatalf("expected multiple partitions, got %d", len(rep.Parts))
			}
			if err := part.AIG.Check(); err != nil {
				t.Fatal(err)
			}
			eq, err := part.AIG.EquivalentTo(whole.AIG)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("partitioned resyn2 differs from whole-network resyn2 (%+v)", rep)
			}
		})
	}
}

// TestPartitionMillionNodeSmoke optimizes a million-node deep/narrow AIG
// partition-parallel — the adversarial shape that starves kernel-level
// parallelism but cone-partitions perfectly. Guarded by -short: the run
// takes a few seconds.
func TestPartitionMillionNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node smoke skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("million-node smoke skipped under -race; check.sh runs it without")
	}
	a := bench.DeepNarrow(64, 4000)
	if a.NumAnds() < 1_000_000 {
		t.Fatalf("generator undershot: %d AND nodes", a.NumAnds())
	}
	n := aigre.FromInternal(a)
	res, err := n.Run(context.Background(), "b", aigre.Options{
		Workers: 8,
		Partition: aigre.PartitionOptions{
			Mode:       aigre.PartitionCones,
			TargetSize: 1 << 17,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Partition
	if rep == nil || len(rep.Parts) < 2 {
		t.Fatalf("expected a multi-partition run, got %+v", rep)
	}
	if rep.Rollbacks != 0 {
		t.Errorf("unexpected rollbacks: %+v", rep)
	}
	if err := res.AIG.Check(); err != nil {
		t.Fatal(err)
	}
	if got := res.AIG.Stats().Nodes; got == 0 || got > a.NumAnds() {
		t.Fatalf("suspicious node count after balance: %d (in %d)", got, a.NumAnds())
	}
}

// TestPartitionScalingSmoke is the fast multicore gate: a reduced deep/narrow
// network (~100k nodes, same shape as the million-node benchmark) is optimized
// partition-parallel at one worker and at four, and the four-worker run must
// finish faster. Runners with fewer than four CPUs cannot show a wall-time
// speedup, so the test skips there; the full scaling picture lives in the
// BenchmarkPartitionMillionW* rows.
func TestPartitionScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("scaling smoke skipped under -race; timings are not meaningful")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling smoke needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	a := bench.DeepNarrow(16, 1500)
	n := aigre.FromInternal(a)
	opts := func(workers int) aigre.Options {
		return aigre.Options{
			Workers: workers,
			Partition: aigre.PartitionOptions{
				Mode:       aigre.PartitionCones,
				TargetSize: a.NumAnds()/8 + 1,
			},
		}
	}
	// Best-of-two per worker count damps scheduler noise without turning the
	// smoke into a benchmark.
	wall := func(workers int) time.Duration {
		best := time.Duration(0)
		for round := 0; round < 2; round++ {
			start := time.Now()
			res, err := n.Run(context.Background(), "b; rw", opts(workers))
			if err != nil {
				t.Fatal(err)
			}
			if res.Partition == nil || len(res.Partition.Parts) < 2 {
				t.Fatalf("expected a multi-partition run, got %+v", res.Partition)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	w1 := wall(1)
	w4 := wall(4)
	if w4 >= w1 {
		t.Errorf("no wall-time speedup from workers: W1 %v, W4 %v (speedup %.2fx)",
			w1, w4, float64(w1)/float64(w4))
	} else {
		t.Logf("W1 %v, W4 %v (speedup %.2fx)", w1, w4, float64(w1)/float64(w4))
	}
}

// TestPartitionedBatchJob pins the batch integration: a job with
// Options.Partition set fans its partitions onto the batch's shared pool and
// reports per-partition rows next to its ordinary batch statistics.
func TestPartitionedBatchJob(t *testing.T) {
	a, ok := bench.ByName("ac97_ctrl", 1)
	if !ok {
		t.Fatal("ac97_ctrl missing from suite")
	}
	n := aigre.FromInternal(a)
	jobs := []aigre.Batch{
		{Name: "whole", AIG: n, Script: "b; rw"},
		{Name: "parted", AIG: n, Script: "b; rw", Options: aigre.Options{
			Partition: aigre.PartitionOptions{Mode: aigre.PartitionCones, TargetSize: a.NumAnds()/4 + 1},
		}},
	}
	results, _, err := aigre.RunBatch(context.Background(), jobs, aigre.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Partition != nil {
		t.Error("unpartitioned job grew a partition report")
	}
	r := results[1]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Partition == nil || len(r.Partition.Parts) < 2 {
		t.Fatalf("partitioned job reported no partitions: %+v", r.Partition)
	}
	if r.NodesAfter == 0 {
		t.Error("batch result missing after-stats")
	}
	eq, err := r.AIG.EquivalentTo(n)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("partitioned batch job result not equivalent to input")
	}
}

func TestParsePartitionMode(t *testing.T) {
	for s, want := range map[string]aigre.PartitionMode{
		"off": aigre.PartitionOff, "": aigre.PartitionOff,
		"cones": aigre.PartitionCones, "levels": aigre.PartitionLevels,
	} {
		got, err := aigre.ParsePartitionMode(s)
		if err != nil || got != want {
			t.Errorf("ParsePartitionMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := aigre.ParsePartitionMode("diag"); err == nil {
		t.Error("ParsePartitionMode accepted an unknown mode")
	}
}
