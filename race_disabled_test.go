//go:build !race

package aigre_test

// raceEnabled reports whether the binary was built with -race. Tests too
// large for the race detector's constant-factor slowdown (the million-node
// smoke) skip themselves when it is set; check.sh re-runs them without -race.
const raceEnabled = false
