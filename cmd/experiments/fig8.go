package main

import (
	"fmt"
	"time"

	"aigre/internal/flow"
)

// fig8 reproduces Figure 8: the per-command runtime breakdown (b, rw, rf,
// dedup) of the GPU rf_resyn and resyn2 sequences on every benchmark. The
// paper observes that b and dedup take a large share despite sequential
// balancing being cheap — both are level-wise parallel, so deep AIGs pay one
// kernel launch per level.
func fig8() {
	for _, script := range []struct{ name, cmds string }{
		{"GPU rf_resyn", flow.RfResyn},
		{"GPU resyn2", flow.Resyn2},
	} {
		fmt.Printf("\n--- %s: modeled time share per command ---\n", script.name)
		fmt.Printf("%-14s %8s %8s %8s %8s   %s\n", "Benchmark", "b%", "rw%", "rf%", "dedup%", "total model (s)")
		for _, c := range suiteCases() {
			a := c.Build()
			rwz := 1
			if script.cmds == flow.Resyn2 {
				rwz = 2
			}
			_, _, _, timings := runParScript(a, script.cmds, rwz, 1)
			bd := flow.Breakdown(timings)
			total := time.Duration(0)
			for _, v := range bd {
				total += v
			}
			pct := func(k string) float64 {
				if total == 0 {
					return 0
				}
				return 100 * bd[k].Seconds() / total.Seconds()
			}
			fmt.Printf("%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%%   %s\n",
				c.Name, pct("b"), pct("rw"), pct("rf"), pct("dedup"), fmtDur(total))
		}
	}
	fmt.Println("\n(paper: b and dedup dominate on deep AIGs due to level-wise parallelism)")
}
