package main

import (
	"fmt"
	"time"

	"aigre/internal/dedup"
	"aigre/internal/refactor"
	"aigre/internal/rewrite"
)

// table1 reproduces Table I: the normalized modeled runtime of the
// host-sequential part of three parallel algorithms, averaged over the
// benchmark suite. In the paper: GPU rewriting 1.0 (its replacement step is
// sequential), refactoring with sequential replacement 1.6, and the proposed
// refactoring 0.6 (only post-processing remains sequential; in this
// reproduction the cleanup pass is also a parallel kernel, so the proposed
// sequential part is smaller still).
func table1() {
	var rwSeq, rfSeqRepl, rfProposed time.Duration
	n := 0
	for _, c := range suiteCases() {
		a := c.Build()

		dRW := device()
		rewrite.Parallel(dRW, a, rewrite.Options{})
		rwSeq += dRW.Stats().SeqTime

		dSR := device()
		refactor.Parallel(dSR, a, refactor.Options{SequentialReplacement: true})
		rfSeqRepl += dSR.Stats().SeqTime

		dP := device()
		out, _ := refactor.Parallel(dP, a, refactor.Options{})
		dedup.Run(dP, out)
		rfProposed += dP.Stats().SeqTime
		n++
		fmt.Printf("  %-14s rw-seq-part=%-12v rf-seqrepl-part=%-12v rf-proposed-part=%v\n",
			c.Name, dRW.Stats().SeqTime.Round(time.Microsecond), dSR.Stats().SeqTime.Round(time.Microsecond), dP.Stats().SeqTime.Round(time.Microsecond))
	}
	base := rwSeq.Seconds() / float64(n)
	fmt.Println()
	fmt.Println("TABLE I: Normalized sequential part runtimes (average over suite)")
	fmt.Printf("%-28s %-12s %s\n", "Algorithm", "Norm. seq.", "(paper)")
	fmt.Printf("%-28s %-12.2f %s\n", "GPU rw [9]", rwSeq.Seconds()/float64(n)/base, "1.0")
	fmt.Printf("%-28s %-12.2f %s\n", "rf w/ seq. replace", rfSeqRepl.Seconds()/float64(n)/base, "1.6")
	fmt.Printf("%-28s %-12.2f %s\n", "rf (proposed)", rfProposed.Seconds()/float64(n)/base, "0.6")
}
