package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/cec"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/sched"
)

// suiteCases returns the benchmark list honoring -quick.
func suiteCases() []bench.Case {
	cases := bench.Suite(*scaleFlag)
	if !*quickFlag {
		return cases
	}
	keep := map[string]bool{"twenty": true, "div": true, "multiplier": true, "voter": true, "ac97_ctrl": true}
	var out []bench.Case
	for _, c := range cases {
		if keep[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// pool is the shared host worker budget behind every experiment; main
// creates it after flag parsing and closes it on exit. All devices — the
// direct leases below and those of engine-scheduled jobs — draw their
// kernel-launch parallelism from this one bounded pool.
var pool *sched.Pool

// device leases a fresh simulated device from the shared pool. Stats and
// profile are per-lease, so concurrent callers do not mix measurements.
func device() *gpu.Device { return pool.Lease(0) }

// verify optionally equivalence-checks an optimization result.
func verify(name string, in, out *aig.AIG) {
	if !*cecFlag {
		return
	}
	res, err := cec.Check(in, out, cec.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "  CEC %-14s inconclusive: %v\n", name, err)
		return
	}
	if !res.Equivalent {
		fmt.Fprintf(os.Stderr, "  CEC %-14s FAILED (output %d)\n", name, res.FailingOutput)
		os.Exit(1)
	}
}

// reportIncidents surfaces contained failures of a guarded run: experiment
// numbers from a degraded run are still valid results, but the reader must
// know a command fell back or was skipped.
func reportIncidents(name string, incs []flow.Incident) {
	for _, inc := range incs {
		fmt.Fprintf(os.Stderr, "  incident %-14s %s\n", name, inc)
	}
}

// runSeqScript times a sequential (ABC-style) script.
func runSeqScript(a *aig.AIG, script string) (*aig.AIG, time.Duration) {
	start := time.Now()
	res, err := flow.Run(context.Background(), a, script, flow.Config{})
	if err != nil {
		panic(err)
	}
	reportIncidents(a.Name, res.Incidents)
	return res.AIG, time.Since(start)
}

// parJob describes one parallel script run for the batch engine.
type parJob struct {
	a                   *aig.AIG
	script              string
	rwzPasses, rfPasses int
}

// runParJobs runs parallel scripts through the scheduling engine over the
// shared pool — all jobs at once when concurrent, one at a time otherwise
// (timing-sensitive experiments need exclusive use of the worker budget) —
// and returns the per-job results in submission order.
func runParJobs(jobs []parJob, concurrent bool) []sched.Result {
	sjobs := make([]sched.Job, len(jobs))
	for i, j := range jobs {
		sjobs[i] = sched.Job{
			Name:   j.a.Name,
			AIG:    j.a,
			Script: j.script,
			Config: flow.Config{Parallel: true, RwzPasses: j.rwzPasses, RfPasses: j.rfPasses},
		}
	}
	maxConcurrent := 0
	if !concurrent {
		maxConcurrent = 1
	}
	results, _ := sched.RunJobs(context.Background(), pool, sjobs, maxConcurrent)
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
		reportIncidents(r.Name, r.Incidents)
		if *profileFlag {
			fmt.Printf("  per-kernel device profile (%s, %d workers):\n", r.Name, pool.Workers())
			fmt.Print(gpu.FormatProfile(r.Profile))
		}
	}
	return results
}

// runParScript runs one parallel script on a leased device, returning the
// result, host wall time, modeled device time and the timings.
func runParScript(a *aig.AIG, script string, rwzPasses, rfPasses int) (*aig.AIG, time.Duration, time.Duration, []flow.CommandTiming) {
	r := runParJobs([]parJob{{a, script, rwzPasses, rfPasses}}, false)[0]
	return r.AIG, r.Wall, r.Modeled, r.Timings
}

// geo accumulates a geometric mean.
type geo struct {
	logSum float64
	n      int
}

func (g *geo) add(ratio float64) {
	if ratio > 0 {
		g.logSum += math.Log(ratio)
		g.n++
	}
}

func (g *geo) mean() float64 {
	if g.n == 0 {
		return 1
	}
	return math.Exp(g.logSum / float64(g.n))
}

// fmtDur prints a duration in seconds with millisecond resolution, matching
// the paper's tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
