package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/cec"
	"aigre/internal/flow"
	"aigre/internal/gpu"
)

// suiteCases returns the benchmark list honoring -quick.
func suiteCases() []bench.Case {
	cases := bench.Suite(*scaleFlag)
	if !*quickFlag {
		return cases
	}
	keep := map[string]bool{"twenty": true, "div": true, "multiplier": true, "voter": true, "ac97_ctrl": true}
	var out []bench.Case
	for _, c := range cases {
		if keep[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// device builds a fresh simulated device.
func device() *gpu.Device { return gpu.New(*workersFlag) }

// verify optionally equivalence-checks an optimization result.
func verify(name string, in, out *aig.AIG) {
	if !*cecFlag {
		return
	}
	res, err := cec.Check(in, out, cec.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "  CEC %-14s inconclusive: %v\n", name, err)
		return
	}
	if !res.Equivalent {
		fmt.Fprintf(os.Stderr, "  CEC %-14s FAILED (output %d)\n", name, res.FailingOutput)
		os.Exit(1)
	}
}

// reportIncidents surfaces contained failures of a guarded run: experiment
// numbers from a degraded run are still valid results, but the reader must
// know a command fell back or was skipped.
func reportIncidents(name string, incs []flow.Incident) {
	for _, inc := range incs {
		fmt.Fprintf(os.Stderr, "  incident %-14s %s\n", name, inc)
	}
}

// runSeqScript times a sequential (ABC-style) script.
func runSeqScript(a *aig.AIG, script string) (*aig.AIG, time.Duration) {
	start := time.Now()
	res, err := flow.Run(a, script, flow.Config{})
	if err != nil {
		panic(err)
	}
	reportIncidents(a.Name, res.Incidents)
	return res.AIG, time.Since(start)
}

// runParScript runs a parallel script on a fresh device, returning the
// result, host wall time, modeled device time and the timings.
func runParScript(a *aig.AIG, script string, rwzPasses, rfPasses int) (*aig.AIG, time.Duration, time.Duration, []flow.CommandTiming) {
	d := device()
	start := time.Now()
	res, err := flow.Run(a, script, flow.Config{
		Parallel:  true,
		Device:    d,
		RwzPasses: rwzPasses,
		RfPasses:  rfPasses,
	})
	if err != nil {
		panic(err)
	}
	reportIncidents(a.Name, res.Incidents)
	if *profileFlag {
		fmt.Printf("  per-kernel device profile (%s, %d workers):\n", a.Name, d.Workers())
		fmt.Print(gpu.FormatProfile(d.Profile()))
	}
	return res.AIG, time.Since(start), d.Stats().ModeledTime, res.Timings
}

// geo accumulates a geometric mean.
type geo struct {
	logSum float64
	n      int
}

func (g *geo) add(ratio float64) {
	if ratio > 0 {
		g.logSum += math.Log(ratio)
		g.n++
	}
}

func (g *geo) mean() float64 {
	if g.n == 0 {
		return 1
	}
	return math.Exp(g.logSum / float64(g.n))
}

// fmtDur prints a duration in seconds with millisecond resolution, matching
// the paper's tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
