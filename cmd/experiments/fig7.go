package main

import (
	"fmt"
	"os"

	"aigre/internal/bench"
	"aigre/internal/flow"
)

// fig7 reproduces Figure 7: the acceleration of GPU rf_resyn over the
// ABC-style baseline as a function of AIG size, obtained by enlarging one
// benchmark through repeated doubling. The paper's curve starts below 1x for
// AIGs under ~30k nodes (kernel launch overhead dominates) and rises
// monotonically with size; the same shape emerges from the device cost
// model.
func fig7() {
	base := bench.Multiplier(12) // ~2.5k nodes, doubled upward
	maxDoubles := 6
	if *scaleFlag > 1 {
		maxDoubles = 8
	}
	// Warm the shared resynthesis caches so the first timed point does not
	// pay the one-time factoring cost.
	runSeqScript(base, flow.RfResyn)
	var csv *os.File
	if *csvFlag != "" {
		f, err := os.Create(*csvFlag)
		if err == nil {
			csv = f
			defer csv.Close()
			fmt.Fprintln(csv, "nodes,levels,abc_wall_s,gpu_model_s,accel")
		}
	}
	fmt.Printf("%-12s %-10s %-14s %-14s %-10s\n", "#nodes", "levels", "ABC wall (s)", "GPU model (s)", "accel")
	for d := 0; d <= maxDoubles; d++ {
		a := base
		for i := 0; i < d; i++ {
			a = bench.Double(a)
		}
		seqOut, seqWall := runSeqScript(a, flow.RfResyn)
		parOut, _, parModel, _ := runParScript(a, flow.RfResyn, 1, 1)
		_ = seqOut
		_ = parOut
		accel := seqWall.Seconds() / parModel.Seconds()
		fmt.Printf("%-12d %-10d %-14s %-14s %8.2fx\n",
			a.NumAnds(), a.Levels(), fmtDur(seqWall), fmtDur(parModel), accel)
		if csv != nil {
			fmt.Fprintf(csv, "%d,%d,%.6f,%.6f,%.3f\n",
				a.NumAnds(), a.Levels(), seqWall.Seconds(), parModel.Seconds(), accel)
		}
	}
	fmt.Println("\n(paper: <1x below ~30k nodes, rising to >40x beyond 10M nodes)")
}
