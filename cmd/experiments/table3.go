package main

import (
	"fmt"

	"aigre/internal/flow"
)

// table3 reproduces Table III: the rf_resyn and resyn2 optimization
// sequences, ABC-style sequential versus full-GPU. Per the paper, the GPU
// resyn2 runs two rewriting passes for each rwz command and one pass for
// every other command, and GPU refactoring commands run a single pass inside
// sequences.
func table3() {
	fmt.Printf("%-14s | %-24s | %-10s | %-24s | %-12s | %-8s || %-24s | %-10s | %-24s | %-12s | %-8s\n",
		"Benchmark", "ABC rf_resyn (and/lev)", "time (s)", "GPU rf_resyn (and/lev)", "model (s)", "accel",
		"ABC resyn2 (and/lev)", "time (s)", "GPU resyn2 (and/lev)", "model (s)", "accel")

	var rfNodeR, rfLevR, rfAccel, r2NodeR, r2LevR, r2Accel geo
	for _, c := range suiteCases() {
		a := c.Build()

		seqRF, seqRFWall := runSeqScript(a, flow.RfResyn)
		parRF, _, parRFModel, _ := runParScript(a, flow.RfResyn, 1, 1)
		verify(c.Name+"/rf_resyn", a, parRF)

		seqR2, seqR2Wall := runSeqScript(a, flow.Resyn2)
		parR2, _, parR2Model, _ := runParScript(a, flow.Resyn2, 2, 1)
		verify(c.Name+"/resyn2", a, parR2)

		accelRF := seqRFWall.Seconds() / parRFModel.Seconds()
		accelR2 := seqR2Wall.Seconds() / parR2Model.Seconds()
		fmt.Printf("%-14s | %9d /%5d          | %-10s | %9d /%5d          | %-12s | %7.1fx || %9d /%5d          | %-10s | %9d /%5d          | %-12s | %7.1fx\n",
			c.Name,
			seqRF.NumAnds(), seqRF.Levels(), fmtDur(seqRFWall),
			parRF.NumAnds(), parRF.Levels(), fmtDur(parRFModel), accelRF,
			seqR2.NumAnds(), seqR2.Levels(), fmtDur(seqR2Wall),
			parR2.NumAnds(), parR2.Levels(), fmtDur(parR2Model), accelR2)

		rfNodeR.add(ratio(parRF.NumAnds(), seqRF.NumAnds()))
		rfLevR.add(ratio(parRF.Levels(), seqRF.Levels()))
		rfAccel.add(accelRF)
		r2NodeR.add(ratio(parR2.NumAnds(), seqR2.NumAnds()))
		r2LevR.add(ratio(parR2.Levels(), seqR2.Levels()))
		r2Accel.add(accelR2)
	}
	fmt.Println()
	fmt.Println("TABLE III geomean ratios, GPU vs ABC-style (paper: rf_resyn 0.996/1.000 @39.5x; resyn2 1.003/0.982 @45.9x)")
	fmt.Printf("  rf_resyn:  nodes %.3f  levels %.3f  accel %.1fx\n", rfNodeR.mean(), rfLevR.mean(), rfAccel.mean())
	fmt.Printf("  resyn2:    nodes %.3f  levels %.3f  accel %.1fx\n", r2NodeR.mean(), r2LevR.mean(), r2Accel.mean())
}
