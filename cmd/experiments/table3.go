package main

import (
	"fmt"

	"aigre/internal/aig"
	"aigre/internal/flow"
)

// table3 reproduces Table III: the rf_resyn and resyn2 optimization
// sequences, ABC-style sequential versus full-GPU. Per the paper, the GPU
// resyn2 runs two rewriting passes for each rwz command and one pass for
// every other command, and GPU refactoring commands run a single pass inside
// sequences.
//
// The sequential baselines run one at a time (their wall times are the
// table's denominators), then every GPU job goes through the scheduling
// engine at once over the shared worker budget: the modeled device times are
// wall-clock-independent, so batching the jobs changes nothing in the table
// while exercising the batch path end to end.
func table3() {
	fmt.Printf("%-14s | %-24s | %-10s | %-24s | %-12s | %-8s || %-24s | %-10s | %-24s | %-12s | %-8s\n",
		"Benchmark", "ABC rf_resyn (and/lev)", "time (s)", "GPU rf_resyn (and/lev)", "model (s)", "accel",
		"ABC resyn2 (and/lev)", "time (s)", "GPU resyn2 (and/lev)", "model (s)", "accel")

	cases := suiteCases()
	inputs := make([]*aig.AIG, len(cases))
	var jobs []parJob
	for i, c := range cases {
		inputs[i] = c.Build()
		jobs = append(jobs,
			parJob{inputs[i], flow.RfResyn, 1, 1},
			parJob{inputs[i], flow.Resyn2, 2, 1})
	}
	par := runParJobs(jobs, true)

	var rfNodeR, rfLevR, rfAccel, r2NodeR, r2LevR, r2Accel geo
	for i, c := range cases {
		a := inputs[i]
		parRF, parR2 := par[2*i], par[2*i+1]
		verify(c.Name+"/rf_resyn", a, parRF.AIG)
		verify(c.Name+"/resyn2", a, parR2.AIG)

		seqRF, seqRFWall := runSeqScript(a, flow.RfResyn)
		seqR2, seqR2Wall := runSeqScript(a, flow.Resyn2)

		accelRF := seqRFWall.Seconds() / parRF.Modeled.Seconds()
		accelR2 := seqR2Wall.Seconds() / parR2.Modeled.Seconds()
		fmt.Printf("%-14s | %9d /%5d          | %-10s | %9d /%5d          | %-12s | %7.1fx || %9d /%5d          | %-10s | %9d /%5d          | %-12s | %7.1fx\n",
			c.Name,
			seqRF.NumAnds(), seqRF.Levels(), fmtDur(seqRFWall),
			parRF.NodesAfter, parRF.LevelsAfter, fmtDur(parRF.Modeled), accelRF,
			seqR2.NumAnds(), seqR2.Levels(), fmtDur(seqR2Wall),
			parR2.NodesAfter, parR2.LevelsAfter, fmtDur(parR2.Modeled), accelR2)

		rfNodeR.add(ratio(parRF.NodesAfter, seqRF.NumAnds()))
		rfLevR.add(ratio(parRF.LevelsAfter, seqRF.Levels()))
		rfAccel.add(accelRF)
		r2NodeR.add(ratio(parR2.NodesAfter, seqR2.NumAnds()))
		r2LevR.add(ratio(parR2.LevelsAfter, seqR2.Levels()))
		r2Accel.add(accelR2)
	}
	fmt.Println()
	fmt.Println("TABLE III geomean ratios, GPU vs ABC-style (paper: rf_resyn 0.996/1.000 @39.5x; resyn2 1.003/0.982 @45.9x)")
	fmt.Printf("  rf_resyn:  nodes %.3f  levels %.3f  accel %.1fx\n", rfNodeR.mean(), rfLevR.mean(), rfAccel.mean())
	fmt.Printf("  resyn2:    nodes %.3f  levels %.3f  accel %.1fx\n", r2NodeR.mean(), r2LevR.mean(), r2Accel.mean())
}
