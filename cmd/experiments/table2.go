package main

import (
	"fmt"
	"time"

	"aigre/internal/balance"
	"aigre/internal/dedup"
	"aigre/internal/refactor"
)

// table2 reproduces Table II: single optimization algorithms, the sequential
// ABC-style implementation versus the GPU algorithm, on the 14-benchmark
// suite. Balancing runs once per side; refactoring runs twice on the GPU
// side (the paper's "GPU rf (x2)": parallel resynthesis cannot see earlier
// replacements within a pass, so a second pass catches up) against one
// sequential drf pass.
func table2() {
	fmt.Printf("%-14s | %-22s | %-10s | %-22s | %-12s | %-8s || %-22s | %-10s | %-22s | %-12s | %-8s\n",
		"Benchmark", "stats", "ABC b (s)", "GPU b nodes/lev", "GPU b model", "accel",
		"ABC drf nodes/lev", "drf (s)", "GPU rf x2 nodes/lev", "rf model", "accel")

	var bNodeR, bLevR, bAccel, rfNodeR, rfLevR, rfAccel geo
	for _, c := range suiteCases() {
		a := c.Build()
		stats := a.Stats()

		// Balancing.
		startSeqB := time.Now()
		outSeqB, _ := balance.Sequential(a)
		seqBWall := time.Since(startSeqB)
		dB := device()
		outParB, _ := balance.Parallel(dB, a)
		parBModel := dB.Stats().ModeledTime
		verify(c.Name+"/b", a, outParB)

		// Refactoring: sequential drf (1 pass) vs GPU rf (2 passes + cleanup).
		startRF := time.Now()
		outSeqRF, _ := refactor.Sequential(a, refactor.Options{})
		seqRFWall := time.Since(startRF)
		dRF := device()
		cur := a
		for p := 0; p < 2; p++ {
			cur, _ = refactor.Parallel(dRF, cur, refactor.Options{})
		}
		outParRF, _ := dedup.Run(dRF, cur)
		parRFModel := dRF.Stats().ModeledTime
		verify(c.Name+"/rf", a, outParRF)

		accelB := seqBWall.Seconds() / parBModel.Seconds()
		accelRF := seqRFWall.Seconds() / parRFModel.Seconds()
		fmt.Printf("%-14s | %-22s | %-10s | %7d /%5d         | %-12s | %7.1fx || %7d /%5d          | %-10s | %7d /%5d          | %-12s | %7.1fx\n",
			c.Name,
			fmt.Sprintf("%d/%d", stats.Ands, stats.Levels),
			fmtDur(seqBWall),
			outParB.NumAnds(), outParB.Levels(), fmtDur(parBModel), accelB,
			outSeqRF.NumAnds(), outSeqRF.Levels(), fmtDur(seqRFWall),
			outParRF.NumAnds(), outParRF.Levels(), fmtDur(parRFModel), accelRF)

		bNodeR.add(ratio(outParB.NumAnds(), outSeqB.NumAnds()))
		bLevR.add(ratio(outParB.Levels(), outSeqB.Levels()))
		bAccel.add(accelB)
		rfNodeR.add(ratio(outParRF.NumAnds(), outSeqRF.NumAnds()))
		rfLevR.add(ratio(outParRF.Levels(), outSeqRF.Levels()))
		rfAccel.add(accelRF)
	}
	fmt.Println()
	fmt.Println("TABLE II geomean ratios, GPU vs ABC-style (paper: b 0.999/1.000 @14.8x; rf 0.983/0.980 @42.7x)")
	fmt.Printf("  balance:   nodes %.3f  levels %.3f  accel %.1fx\n", bNodeR.mean(), bLevR.mean(), bAccel.mean())
	fmt.Printf("  refactor:  nodes %.3f  levels %.3f  accel %.1fx\n", rfNodeR.mean(), rfLevR.mean(), rfAccel.mean())
}
