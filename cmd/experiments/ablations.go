package main

import (
	"fmt"
	"time"

	"aigre/internal/aig"
	"aigre/internal/bench"
	"aigre/internal/dedup"
	"aigre/internal/flow"
	"aigre/internal/hashtable"
	"aigre/internal/refactor"
	"aigre/internal/resub"
)

// ablations exercises the design choices called out in DESIGN.md:
//
//  1. cut-size limit of the FFC collapse (quality/time trade-off),
//  2. the de-duplication pass of Section III-F (what it removes),
//  3. linear-probing vs chained hash table ([9]'s design),
//  4. the resubstitution extension (the paper's future work) inside a
//     compress2rs-style sequence.
func ablations() {
	a, _ := bench.ByName("multiplier", *scaleFlag)

	fmt.Println("--- Ablation 1: refactoring cut-size limit (GPU rf x1, no cleanup) ---")
	fmt.Printf("%-8s %-10s %-10s %-12s\n", "maxcut", "nodes", "levels", "model (s)")
	for _, k := range []int{4, 6, 8, 10, 12, 14} {
		d := device()
		out, _ := refactor.Parallel(d, a, refactor.Options{MaxCut: k})
		fmt.Printf("%-8d %-10d %-10d %-12s\n", k, out.NumAnds(), out.Levels(), fmtDur(d.Stats().ModeledTime))
	}

	fmt.Println("\n--- Ablation 2: the Section III-F cleanup pass after GPU rf ---")
	d := device()
	raw, _ := refactor.Parallel(d, a, refactor.Options{})
	cleaned, st := dedup.Run(d, raw)
	fmt.Printf("after rf: %d nodes; after cleanup: %d nodes (merged %d duplicates, %d trivial, %d dangling)\n",
		raw.NumAnds(), cleaned.NumAnds(), st.DuplicatesMerged, st.TriviallyReduced, st.DanglingRemoved)

	fmt.Println("\n--- Ablation 3: linear probing vs chaining (hash table of [9]) ---")
	keys := make([]uint64, 0, a.NumAnds())
	a.ForEachAnd(func(id int32) {
		keys = append(keys, aig.Key(a.Fanin0(id), a.Fanin1(id)))
	})
	lin := timeIt(func() {
		ht := hashtable.New(len(keys))
		for j, k := range keys {
			ht.InsertUnique(k, uint32(j))
		}
		for _, k := range keys {
			ht.Query(k)
		}
	})
	cha := timeIt(func() {
		ct := hashtable.NewChained(2 * len(keys))
		for j, k := range keys {
			ct.InsertUnique(k, uint32(j))
		}
		for _, k := range keys {
			ct.Query(k)
		}
	})
	fmt.Printf("%d keys: linear %v, chained %v (%.2fx)\n", len(keys), lin, cha, float64(cha)/float64(lin))

	fmt.Println("\n--- Ablation 4: resubstitution extension (paper future work) ---")
	dRS := device()
	rsOut, rsSt := resub.Parallel(dRS, a, resub.Options{})
	fmt.Printf("parallel rs: %d -> %d nodes (%d zero-resubs, %d one-resubs), model %s\n",
		a.NumAnds(), rsOut.NumAnds(), rsSt.ZeroResubs, rsSt.OneResubs, fmtDur(dRS.Stats().ModeledTime))
	r2, _ := runSeqScript(a, flow.Resyn2)
	crs, _ := runSeqScript(a, flow.CompressRS)
	fmt.Printf("sequential resyn2:      %d nodes / %d levels\n", r2.NumAnds(), r2.Levels())
	fmt.Printf("sequential compress-rs: %d nodes / %d levels\n", crs.NumAnds(), crs.Levels())
	pr2, _, _, _ := runParScript(a, flow.Resyn2, 2, 1)
	pcrs, _, _, _ := runParScript(a, flow.CompressRS, 1, 1)
	fmt.Printf("parallel resyn2:        %d nodes / %d levels\n", pr2.NumAnds(), pr2.Levels())
	fmt.Printf("parallel compress-rs:   %d nodes / %d levels\n", pcrs.NumAnds(), pcrs.Levels())
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
