// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index and EXPERIMENTS.md
// for paper-vs-measured results):
//
//	table1 — normalized sequential-part runtimes (GPU rw vs rf variants)
//	table2 — single algorithms: balancing and refactoring, ABC-style vs GPU
//	table3 — sequences: rf_resyn and resyn2, ABC-style vs GPU
//	fig7   — GPU rf_resyn acceleration as a function of AIG size
//	fig8   — per-command runtime breakdown of the GPU sequences
//
// Times reported: "ABC-style" columns are measured wall-clock of the
// sequential Go baselines; "GPU" columns show the modeled device time of the
// simulated massively-parallel device (the machine-independent reproduction
// of the paper's CUDA measurements; see DESIGN.md) next to honest host
// wall-clock. Accel = sequential wall / modeled device time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aigre/internal/sched"
)

var (
	scaleFlag   = flag.Int("scale", 1, "benchmark size scale (1 = unit tests scale; 8+ = slower, larger)")
	workersFlag = flag.Int("workers", 0, "host worker goroutines for the device (0 = GOMAXPROCS)")
	cecFlag     = flag.Bool("cec", false, "equivalence-check every optimized AIG against its input")
	quickFlag   = flag.Bool("quick", false, "run on a 5-benchmark subset")
	csvFlag     = flag.String("csv", "", "write figure-7 data points to this CSV file")
	profileFlag = flag.Bool("profile", false, "print the per-kernel device profile after each parallel script run")
)

func main() {
	exp := flag.String("experiment", "all", "table1|table2|table3|fig7|fig8|ablations|all")
	flag.Parse()
	pool = sched.NewPool(*workersFlag)
	defer pool.Close()
	run := func(name string, fn func()) {
		fmt.Printf("\n================ %s ================\n", strings.ToUpper(name))
		fn()
	}
	switch *exp {
	case "table1":
		run("table I", table1)
	case "table2":
		run("table II", table2)
	case "table3":
		run("table III", table3)
	case "fig7":
		run("figure 7", fig7)
	case "fig8":
		run("figure 8", fig8)
	case "ablations":
		run("ablations", ablations)
	case "all":
		run("table I", table1)
		run("table II", table2)
		run("table III", table3)
		run("figure 7", fig7)
		run("figure 8", fig8)
		run("ablations", ablations)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
