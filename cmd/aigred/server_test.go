package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aigre"
	"aigre/internal/bench"
	"aigre/internal/queue"
)

// aigerBytes renders a small benchmark network as binary AIGER, the payload
// shape clients POST.
func aigerBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aigre.FromInternal(bench.Adder(8)).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.queuePath == "" {
		cfg.queuePath = filepath.Join(t.TempDir(), "queue.jsonl")
	}
	if cfg.maxJobs == 0 {
		cfg.maxJobs = 1
	}
	cfg.batch.Workers = 2
	cfg.batch.MaxConcurrentJobs = cfg.maxJobs
	s, err := newServer(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ts.Close()
		s.drain(10 * time.Second)
		s.close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes(), resp.Header
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestSubmitValidation checks that malformed submissions are rejected with
// 400 before anything reaches the durable queue.
func TestSubmitValidation(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	aig := aigerBytes(t)
	cases := []submitRequest{
		{Script: "", AIGER: aig},                                       // missing script
		{Script: "b; zz", AIGER: aig},                                  // unparsable script
		{Script: "b; rw"},                                              // missing payload
		{Script: "b; rw", AIGER: []byte("not aiger")},                  // bad payload
		{Script: "b; rw", AIGER: aig, Inject: []string{"rewrite:bad"}}, // bad inject
	}
	for i, req := range cases {
		code, body, _ := postJSON(t, ts.URL+"/jobs", req)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, code, body)
		}
	}
	if st := s.q.Stats(); st.Active() != 0 || st.Done != 0 {
		t.Errorf("rejected submissions reached the queue: %+v", st)
	}
}

// TestDebugPprofEndpoints checks that the profiling mux is reachable: the
// index and the cheap text endpoints respond 200 on the daemon's own mux
// (net/http/pprof's init only registers on http.DefaultServeMux).
func TestDebugPprofEndpoints(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/symbol",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestSubmitRunsJob is the in-process round trip: a valid submission is
// acknowledged 202 with an id, runs to done, and its session becomes
// queryable (without the AIGER payload echoed back).
func TestSubmitRunsJob(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	code, body, _ := postJSON(t, ts.URL+"/jobs", submitRequest{
		Name: "adder", Script: "b; rw; rf", AIGER: aigerBytes(t)})
	if code != http.StatusAccepted {
		t.Fatalf("status %d (%s), want 202", code, body)
	}
	var ack map[string]string
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	id := ack["id"]
	if !strings.HasPrefix(id, "j-") {
		t.Fatalf("ack id %q", id)
	}
	var jv jobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/jobs/"+id, &jv); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, code)
		}
		if queue.State(jv.State).Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv.State != queue.Done {
		t.Fatalf("job ended %q (%s), want done", jv.State, jv.Detail)
	}
	if jv.Leases != 1 {
		t.Errorf("leases = %d, want 1", jv.Leases)
	}
	if jv.Session == nil || jv.Session.NodesAfter == 0 || jv.Session.Attempts != 1 {
		t.Errorf("session not queryable: %+v", jv.Session)
	}
	if jv.Name != "adder" {
		t.Errorf("name %q", jv.Name)
	}
	if getJSON(t, ts.URL+"/jobs/j-nonexistent00", nil) != http.StatusNotFound {
		t.Error("missing job did not 404")
	}
}

// TestSubmitSaturation checks the bounded-depth admission: with MaxDepth 1
// and a slow job holding the queue, the next submission gets 503 with a
// Retry-After.
func TestSubmitSaturation(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxDepth: 1})
	slow := submitRequest{Script: "b; rw; rf; b", AIGER: aigerBytes(t),
		Parallel: ptr(true), Inject: []string{"rewrite/evaluate:1:stall"}}
	if code, body, _ := postJSON(t, ts.URL+"/jobs", slow); code != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", code, body)
	}
	code, _, hdr := postJSON(t, ts.URL+"/jobs", submitRequest{Script: "b", AIGER: aigerBytes(t)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("second submit: %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestSubmitRateLimited checks the per-client token bucket: burst 1 admits
// one submission and 429s the next, while a different client is unaffected.
func TestSubmitRateLimited(t *testing.T) {
	_, ts := testServer(t, serverConfig{rate: 0.0001, burst: 1})
	aig := aigerBytes(t)
	if code, body, _ := postJSON(t, ts.URL+"/jobs",
		submitRequest{Script: "b", AIGER: aig, Client: "alice"}); code != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", code, body)
	}
	code, _, hdr := postJSON(t, ts.URL+"/jobs", submitRequest{Script: "b", AIGER: aig, Client: "alice"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code, _, _ := postJSON(t, ts.URL+"/jobs",
		submitRequest{Script: "b", AIGER: aig, Client: "bob"}); code != http.StatusAccepted {
		t.Errorf("other client's submit: %d, want 202", code)
	}
}

// TestSubmitWhileDraining checks that a draining daemon refuses new work
// with 503 but still answers queries.
func TestSubmitWhileDraining(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	code, _, hdr := postJSON(t, ts.URL+"/jobs", submitRequest{Script: "b", AIGER: aigerBytes(t)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", code)
	}
	if health["draining"] != true {
		t.Errorf("healthz = %v", health)
	}
}

// TestLimiterRefill checks the token-bucket arithmetic with a synthetic
// clock: an exhausted bucket refuses with a sensible Retry-After and refills
// at the configured rate.
func TestLimiterRefill(t *testing.T) {
	l := newLimiter(2, 2) // 2/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("c", now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	wait, ok := l.allow("c", now)
	if ok || wait < 1 {
		t.Fatalf("empty bucket: ok=%v wait=%d", ok, wait)
	}
	if _, ok := l.allow("c", now.Add(600*time.Millisecond)); !ok {
		t.Error("token not refilled after 600ms at 2/s")
	}
	if _, ok := l.allow("other", now); !ok {
		t.Error("fresh client refused")
	}
	unlimited := newLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if _, ok := unlimited.allow("c", now); !ok {
			t.Fatal("zero-rate limiter refused")
		}
	}
}

func ptr[T any](v T) *T { return &v }
