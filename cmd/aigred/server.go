package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aigre"
	"aigre/internal/bus"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/queue"
	"aigre/internal/rcache"
	"aigre/internal/store"
)

// maxBody bounds a submission body (the AIGER payload dominates).
const maxBody = 64 << 20

type serverConfig struct {
	queuePath string
	storePath string // result blob store root ("" = queuePath + ".store")
	maxDepth  int
	maxJobs   int
	rate      float64
	burst     int
	// weights/maxInflight are the per-client fair-share weights and lease
	// caps; defWeight/defMaxInflight apply to unlisted clients.
	weights      map[string]int
	maxInflight  map[string]int
	defWeight    int
	defMaxInfl   int
	compactBytes int64
	parallel     bool
	verbose      bool
	batch        aigre.BatchOptions
}

// server wires the durable queue to the batch engine: an HTTP front end
// admits jobs into the queue, the pump leases them into the engine one
// in-flight slot at a time, and runners resolve each lease to a durable
// terminal record. The engine's own admission queue stays empty by
// construction — everything waiting lives in the durable queue, where a
// drain or crash can checkpoint it.
type server struct {
	cfg  serverConfig
	q    *queue.Queue
	st   *store.Store
	bus  *bus.Bus
	eng  *aigre.Engine
	lim  *limiter
	http *http.Server

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	leases   int // leases this incarnation (crash-hook bookkeeping)

	slots    chan struct{} // in-flight capacity
	wake     chan struct{} // new work / freed slot
	inflight sync.WaitGroup

	casualties atomic.Int64 // failed + quarantined this incarnation
	degraded   atomic.Int64 // done, but with contained incidents
}

func newServer(ctx context.Context, cfg serverConfig) (*server, error) {
	if cfg.storePath == "" {
		cfg.storePath = cfg.queuePath + ".store"
	}
	// The bus exists before the queue so replayed WAL records seed each
	// job's event history: an SSE client reconnecting after a restart
	// replays the job's (possibly compacted) durable lifecycle.
	b := bus.New(bootToken())
	q, err := queue.Open(cfg.queuePath, queue.Options{
		MaxDepth:           cfg.maxDepth,
		Weights:            cfg.weights,
		DefaultWeight:      cfg.defWeight,
		MaxInflight:        cfg.maxInflight,
		DefaultMaxInflight: cfg.defMaxInfl,
		CompactBytes:       cfg.compactBytes,
		Observer: func(rec queue.Record) {
			b.Publish(rec.ID, bus.Event{
				Type: string(rec.State), Detail: rec.Detail, Time: rec.Time,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	st, err := store.Open(cfg.storePath)
	if err != nil {
		q.Close()
		return nil, err
	}
	// Reap blobs orphaned by a crash between a store Put and the outcome
	// record that would have referenced it.
	live := make(map[string]bool)
	for _, j := range q.Jobs() {
		if j.Session != nil && j.Session.Result != "" {
			live[j.Session.Result] = true
		}
	}
	if removed, err := st.GC(func(d string) bool { return live[d] }); err != nil {
		fmt.Fprintln(os.Stderr, "aigred: store gc:", err)
	} else if removed > 0 {
		fmt.Fprintf(os.Stderr, "aigred: store gc: removed %d unreferenced blobs\n", removed)
	}
	// The engine's supervision stream (attempts, incidents, retries,
	// preemptions) feeds the same bus. Terminal journal events are skipped:
	// the durable queue record is the authoritative end of a job's stream.
	cfg.batch.OnEvent = func(ev aigre.JobEvent) {
		switch ev.Event {
		case "done", "fail", "cancel":
			return
		}
		b.Publish(ev.Job, bus.Event{
			Type: ev.Event, Attempt: ev.Attempt, Class: ev.Class,
			Detail: ev.Detail, Time: ev.Time,
		})
	}
	eng, err := aigre.NewEngine(ctx, cfg.batch)
	if err != nil {
		q.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	s := &server{
		cfg:    cfg,
		q:      q,
		st:     st,
		bus:    b,
		eng:    eng,
		lim:    newLimiter(cfg.rate, cfg.burst),
		ctx:    ctx,
		cancel: cancel,
		slots:  make(chan struct{}, cfg.maxJobs),
		wake:   make(chan struct{}, 1),
	}
	go s.pump()
	return s, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// Live profiling of a running daemon: the standard net/http/pprof
	// handlers, registered explicitly (the package's init registers on
	// http.DefaultServeMux, which this server does not use). CPU profiles of
	// in-flight jobs carry the engine's sched_job / partition_phase labels.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	// Pre-v1 flat routes, kept as deprecated aliases: same handlers, plus
	// RFC 8594-style headers pointing clients at the successor.
	mux.HandleFunc("POST /jobs", deprecated("/v1/jobs", s.handleSubmit))
	mux.HandleFunc("GET /jobs", deprecated("/v1/jobs", s.handleList))
	mux.HandleFunc("GET /jobs/{id}", deprecated("/v1/jobs/{id}", s.handleGet))
	mux.HandleFunc("GET /stats", deprecated("/v1/stats", s.handleStats))
	return mux
}

// deprecated wraps a v1 handler for its legacy flat route, stamping the
// response with deprecation headers so clients can find the successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// bootToken names one daemon incarnation; it prefixes every SSE event id so
// resume can tell same-incarnation ids (exact) from older ones (replay).
func bootToken() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("b%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// API error codes of the v1 JSON error envelope.
const (
	codeSaturated   = "saturated"
	codeRateLimited = "rate_limited"
	codeDraining    = "draining"
	codeNotFound    = "not_found"
	codeInvalidArg  = "invalid_argument"
	codeNotReady    = "not_ready"
	codeNoResult    = "no_result"
	codeInternal    = "internal"
)

// apiError is the v1 error envelope body: {"error": {...}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS hints when retrying may succeed (rate limits,
	// saturation, drain). Zero means retrying is pointless.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// writeErr emits the typed error envelope (and, when retryAfter is set, the
// conventional Retry-After header for proxies and generic clients).
func writeErr(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": {
		Code: code, Message: msg, RetryAfterMS: retryAfter.Milliseconds(),
	}})
}

func (s *server) serveHTTP(ln net.Listener) error {
	s.http = &http.Server{Handler: s.mux()}
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// pump is the dispatcher: one loop that acquires an in-flight slot, leases
// the next pending job, and hands it to a runner. It stops at drain or
// shutdown; slots free as runners finish.
func (s *server) pump() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case s.slots <- struct{}{}:
		}
		if !s.leaseOne() {
			<-s.slots
			return
		}
	}
}

// leaseOne blocks until a job is leased and its runner launched (true), or
// the daemon starts draining or shuts down (false). The draining check,
// the durable lease, and the in-flight registration happen under one lock,
// so drain's inflight.Wait can never miss a runner that was just launched.
func (s *server) leaseOne() bool {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return false
		}
		spec, err := s.q.Lease()
		if spec != nil {
			s.leases++
			if n := crashAfterLeases(); n > 0 && s.leases >= n {
				// Simulated crash for the recovery tests: the lease is on
				// disk, the job never runs, no checkpoint is written.
				os.Exit(2)
			}
			s.inflight.Add(1)
			s.mu.Unlock()
			if s.cfg.verbose {
				fmt.Fprintf(os.Stderr, "aigred: job %s: leased (%s)\n", spec.ID, spec.Script)
			}
			go s.runJob(spec)
			return true
		}
		s.mu.Unlock()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigred: lease:", err)
		}
		select {
		case <-s.ctx.Done():
			return false
		case <-s.wake:
		}
	}
}

// runJob executes one leased job through the engine and durably resolves the
// lease: success and permanent failures become terminal records carrying the
// queryable session; a forced-drain cancellation checkpoints the job back to
// pending for the next incarnation.
func (s *server) runJob(spec *queue.Spec) {
	defer func() {
		s.inflight.Done()
		<-s.slots
		s.wakeUp()
	}()
	b, err := specBatch(spec, s.cfg)
	if err != nil {
		// The spec was validated at submission, so this is a payload rotted
		// on disk — a permanent failure, not a retry.
		s.resolve(spec.ID, queue.Failed, fmt.Sprintf("unrunnable spec: %v", err), nil)
		return
	}
	tk, err := s.eng.Submit(s.ctx, b)
	if err != nil {
		// Engine already closed under us (forced drain): checkpoint.
		s.requeue(spec.ID, "drain: engine closed before the job started")
		return
	}
	r := tk.Wait()
	sess := sessionOf(r)
	switch {
	case r.Quarantined:
		s.casualties.Add(1)
		s.resolve(spec.ID, queue.Quarantined, errText(r.Err), sess)
	case r.Cancelled:
		s.requeue(spec.ID, "drain: cancelled in flight; checkpointed back to pending")
	case r.Err != nil:
		s.casualties.Add(1)
		detail := errText(r.Err)
		if r.TimedOut {
			detail = "deadline: " + detail
		}
		s.resolve(spec.ID, queue.Failed, detail, sess)
	default:
		if len(r.Incidents) > 0 {
			s.degraded.Add(1)
		}
		// Persist the optimized network to the content-addressed store
		// before the outcome record references it: a digest in the WAL
		// never dangles. A crash after the Put but before the Resolve
		// leaves an orphan blob, which the next startup's GC reaps.
		if r.AIG != nil {
			var buf bytes.Buffer
			if werr := r.AIG.Write(&buf); werr != nil {
				fmt.Fprintf(os.Stderr, "aigred: job %s: serialize result: %v\n", spec.ID, werr)
			} else if digest, perr := s.st.Put(buf.Bytes()); perr != nil {
				fmt.Fprintf(os.Stderr, "aigred: job %s: store result: %v\n", spec.ID, perr)
			} else {
				sess.Result = digest
				sess.ResultBytes = buf.Len()
			}
		}
		s.resolve(spec.ID, queue.Done, "", sess)
	}
}

func (s *server) resolve(id string, st queue.State, detail string, sess *queue.Session) {
	if err := s.q.Resolve(id, st, detail, sess); err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return
	}
	if s.cfg.verbose {
		fmt.Fprintf(os.Stderr, "aigred: job %s: %s %s\n", id, st, detail)
	}
	// Terminal records are what bloat the WAL; check the live compaction
	// threshold each time one lands.
	if ran, err := s.q.MaybeCompact(); err != nil {
		fmt.Fprintln(os.Stderr, "aigred: compact:", err)
	} else if ran && s.cfg.verbose {
		fmt.Fprintf(os.Stderr, "aigred: queue WAL compacted (%d bytes)\n", s.q.Stats().WALBytes)
	}
}

func (s *server) requeue(id, detail string) {
	if err := s.q.Requeue(id, detail); err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return
	}
	if s.cfg.verbose {
		fmt.Fprintf(os.Stderr, "aigred: job %s: requeued: %s\n", id, detail)
	}
}

func (s *server) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// drain is the graceful shutdown: stop leasing, 503 new submissions, let
// in-flight jobs finish until the deadline, then force-cancel the stragglers
// — which checkpoints them back to pending — and report the exit code.
func (s *server) drain(timeout time.Duration) int {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.wakeUp() // unblock the pump so it observes the drain

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	forced := false
	select {
	case <-done:
	case <-time.After(timeout):
		// Cancel the engine-wide context: in-flight jobs stop at the next
		// kernel-launch boundary, come back Cancelled, and their runners
		// requeue them durably.
		forced = true
		fmt.Fprintln(os.Stderr, "aigred: drain deadline exceeded; checkpointing in-flight jobs")
		s.cancel()
		<-done
	}
	if s.http != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.http.Shutdown(sctx)
		scancel()
	}
	st := s.q.Stats()
	fmt.Fprintf(os.Stderr, "aigred: drained (forced=%v): %d done, %d failed, %d quarantined, %d pending checkpointed\n",
		forced, st.Done, st.Failed, st.Quarantined, st.Pending)
	switch {
	case s.casualties.Load() > 0:
		return 4
	case s.degraded.Load() > 0:
		return 3
	}
	return 0
}

func (s *server) close() {
	s.cancel()
	s.eng.Close()
	if err := s.q.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
	}
}

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Name     string `json:"name,omitempty"`
	Script   string `json:"script"`
	Priority int    `json:"priority,omitempty"`
	// Parallel overrides the daemon's -parallel default when present.
	Parallel *bool    `json:"parallel,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	Client   string   `json:"client,omitempty"`
	Inject   []string `json:"inject,omitempty"`
	// AIGER is the input network, base64-encoded (encoding/json's []byte).
	AIGER []byte `json:"aiger"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, codeDraining,
			"draining: not accepting new jobs", time.Minute)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidArg, "bad request body: "+err.Error(), 0)
		return
	}
	client := req.Client
	if client == "" {
		client, _, _ = strings.Cut(r.RemoteAddr, ":")
	}
	if wait, ok := s.lim.allow(client, time.Now()); !ok {
		writeErr(w, http.StatusTooManyRequests, codeRateLimited,
			"rate limit exceeded for client "+client, time.Duration(wait)*time.Second)
		return
	}
	spec, err := validateSubmit(&req, s.cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, codeInvalidArg, err.Error(), 0)
		return
	}
	spec.Client = client
	if err := s.q.Submit(*spec); err != nil {
		if errors.Is(err, queue.ErrSaturated) {
			writeErr(w, http.StatusServiceUnavailable, codeSaturated, err.Error(), time.Second)
			return
		}
		writeErr(w, http.StatusInternalServerError, codeInternal, err.Error(), 0)
		return
	}
	// The submission record is on disk: the job now survives any crash.
	s.wakeUp()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": spec.ID, "state": string(queue.Pending)})
}

// validateSubmit rejects malformed submissions before anything is admitted:
// the script must parse, the AIGER payload must decode, and every inject
// spec must be well-formed.
func validateSubmit(req *submitRequest, cfg serverConfig) (*queue.Spec, error) {
	if req.Script == "" {
		return nil, errors.New("missing script")
	}
	if _, err := flow.Parse(req.Script); err != nil {
		return nil, err
	}
	if len(req.AIGER) == 0 {
		return nil, errors.New("missing aiger payload")
	}
	if _, err := aigre.Read(bytes.NewReader(req.AIGER)); err != nil {
		return nil, fmt.Errorf("bad aiger payload: %w", err)
	}
	for _, inj := range req.Inject {
		if _, err := parseInject(inj); err != nil {
			return nil, err
		}
	}
	parallel := cfg.parallel
	if req.Parallel != nil {
		parallel = *req.Parallel
	}
	id := queue.NewID()
	spec := &queue.Spec{
		ID:       id,
		Name:     req.Name,
		Script:   req.Script,
		Priority: req.Priority,
		Parallel: parallel,
		Workers:  req.Workers,
		Inject:   req.Inject,
		AIGER:    req.AIGER,
	}
	if spec.Name == "" {
		spec.Name = id
	}
	return spec, nil
}

// specBatch rebuilds the engine job from a durable spec.
func specBatch(spec *queue.Spec, cfg serverConfig) (aigre.Batch, error) {
	n, err := aigre.Read(bytes.NewReader(spec.AIGER))
	if err != nil {
		return aigre.Batch{}, err
	}
	opts := aigre.Options{Parallel: spec.Parallel}
	for _, inj := range spec.Inject {
		plan, err := parseInject(inj)
		if err != nil {
			return aigre.Batch{}, err
		}
		opts.FaultPlans = append(opts.FaultPlans, plan)
	}
	return aigre.Batch{
		// The engine job is named by the queue id, not the user-chosen
		// name: supervision events key by Batch.Name, and the id is what
		// the event bus and SSE streams address jobs by.
		Name:     spec.ID,
		AIG:      n,
		Script:   spec.Script,
		Priority: spec.Priority,
		Workers:  spec.Workers,
		Options:  opts,
	}, nil
}

// sessionOf converts an engine result to the queryable session record
// persisted with the job's terminal state.
func sessionOf(r aigre.BatchResult) *queue.Session {
	return &queue.Session{
		Attempts:     r.Attempts,
		Preemptions:  r.Preemptions,
		NodesBefore:  r.NodesBefore,
		LevelsBefore: r.LevelsBefore,
		NodesAfter:   r.NodesAfter,
		LevelsAfter:  r.LevelsAfter,
		QueuedNS:     r.Queued,
		WallNS:       r.Wall,
		ModeledNS:    r.Modeled,
		Incidents:    r.Incidents,
		Profile:      r.Profile,
		Cache: rcache.Stats{
			Hits: r.CacheStats.Hits, Misses: r.CacheStats.Misses,
			Evictions: r.CacheStats.Evictions, NpnHits: r.CacheStats.NpnHits,
			NpnMisses: r.CacheStats.NpnMisses, Entries: r.CacheStats.Entries,
		},
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// jobView is the JSON shape of GET /jobs responses: the queue job without
// its AIGER payload (which can be megabytes and is never needed back).
type jobView struct {
	ID        string         `json:"id"`
	Name      string         `json:"name"`
	Script    string         `json:"script"`
	State     queue.State    `json:"state"`
	Detail    string         `json:"detail,omitempty"`
	Priority  int            `json:"priority,omitempty"`
	Parallel  bool           `json:"parallel,omitempty"`
	Client    string         `json:"client,omitempty"`
	Leases    int            `json:"leases"`
	Submitted time.Time      `json:"submitted"`
	Updated   time.Time      `json:"updated"`
	Session   *queue.Session `json:"session,omitempty"`
}

func viewOf(j queue.Job) jobView {
	return jobView{
		ID:        j.Spec.ID,
		Name:      j.Spec.Name,
		Script:    j.Spec.Script,
		State:     j.State,
		Detail:    j.Detail,
		Priority:  j.Spec.Priority,
		Parallel:  j.Spec.Parallel,
		Client:    j.Spec.Client,
		Leases:    j.Leases,
		Submitted: j.Spec.Submitted,
		Updated:   j.Updated,
		Session:   j.Session,
	}
}

// defaultListLimit bounds GET /v1/jobs when the client does not pass
// ?limit=: a long-lived daemon accumulates terminal sessions without end.
const defaultListLimit = 500

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	f := queue.Filter{Client: r.URL.Query().Get("client"), Limit: defaultListLimit}
	if st := queue.State(r.URL.Query().Get("state")); st != "" {
		if !st.Valid() {
			writeErr(w, http.StatusBadRequest, codeInvalidArg,
				fmt.Sprintf("unknown state %q", st), 0)
			return
		}
		f.State = st
	}
	if lim := r.URL.Query().Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, codeInvalidArg,
				fmt.Sprintf("bad limit %q (want a positive integer)", lim), 0)
			return
		}
		f.Limit = n
	}
	jobs := s.q.List(f)
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = viewOf(j)
	}
	writeJSON(w, views)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, "no such job", 0)
		return
	}
	writeJSON(w, viewOf(j))
}

// handleResult serves a finished job's optimized AIGER from the blob store:
// binary by default, JSON (with the payload base64-encoded) on request.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.q.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, "no such job", 0)
		return
	}
	if !j.State.Terminal() {
		writeErr(w, http.StatusConflict, codeNotReady,
			fmt.Sprintf("job is %s; results exist once the job is terminal", j.State), time.Second)
		return
	}
	if j.Session == nil || j.Session.Result == "" {
		writeErr(w, http.StatusNotFound, codeNoResult,
			fmt.Sprintf("job ended %s with no stored result", j.State), 0)
		return
	}
	data, err := s.st.Get(j.Session.Result)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, codeInternal,
			"result blob missing from store: "+err.Error(), 0)
		return
	}
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, map[string]any{
			"id": id, "digest": j.Session.Result, "bytes": len(data), "aiger": data,
		})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Aigred-Digest", j.Session.Result)
	w.Write(data)
}

// handleEvents streams a job's lifecycle as Server-Sent Events: the durable
// queue transitions interleaved with the engine's live supervision events.
// A reconnecting client presents Last-Event-ID and the stream resumes with
// no gap; the stream ends after the terminal queue event.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.q.Get(id); !ok {
		writeErr(w, http.StatusNotFound, codeNotFound, "no such job", 0)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, codeInternal,
			"response writer cannot stream", 0)
		return
	}
	last := r.Header.Get("Last-Event-ID")
	if last == "" {
		last = r.URL.Query().Get("last_event_id")
	}
	sub := s.bus.Subscribe(id, last)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		case e, ok := <-sub.C:
			if !ok {
				// Overflow cut: the client reconnects with its last id.
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %s\nevent: %s\ndata: %s\n\n", e.ID, e.Type, data)
			fl.Flush()
			if queue.State(e.Type).Terminal() {
				return // the durable outcome is the end of the stream
			}
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	blobs, bytes, _ := s.st.Stats()
	writeJSON(w, map[string]any{
		"queue":    s.q.Stats(),
		"engine":   s.eng.Metrics(),
		"store":    map[string]any{"blobs": blobs, "bytes": bytes},
		"draining": s.isDraining(),
	})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "draining": s.isDraining()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// limiter is a per-client token bucket: rate tokens/second up to burst.
// A zero rate admits everything.
type limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if b <= 0 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &limiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from client's bucket. When the bucket is empty it
// returns false and the whole seconds to wait for the next token.
func (l *limiter) allow(client string, now time.Time) (retryAfter int, ok bool) {
	if l.rate <= 0 {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := (1 - b.tokens) / l.rate
	return int(wait) + 1, false
}

// parseInject parses the "kernel-pattern:N:kind" fault spec — the same
// syntax as cmd/aigre's -inject flag.
func parseInject(s string) (gpu.FaultPlan, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return gpu.FaultPlan{}, fmt.Errorf("bad inject %q, want \"kernel-pattern:N:panic|corrupt|stall\"", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return gpu.FaultPlan{}, fmt.Errorf("bad inject launch ordinal %q (want >= 1)", parts[1])
	}
	var kind gpu.FaultKind
	switch parts[2] {
	case "panic":
		kind = gpu.FaultPanic
	case "corrupt":
		kind = gpu.FaultCorrupt
	case "stall":
		kind = gpu.FaultStall
	default:
		return gpu.FaultPlan{}, fmt.Errorf("bad inject kind %q (want panic, corrupt, or stall)", parts[2])
	}
	return gpu.FaultPlan{Kernel: parts[0], Nth: n, Kind: kind}, nil
}
