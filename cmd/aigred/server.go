package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aigre"
	"aigre/internal/flow"
	"aigre/internal/gpu"
	"aigre/internal/queue"
	"aigre/internal/rcache"
)

// maxBody bounds a submission body (the AIGER payload dominates).
const maxBody = 64 << 20

type serverConfig struct {
	queuePath string
	maxDepth  int
	maxJobs   int
	rate      float64
	burst     int
	parallel  bool
	verbose   bool
	batch     aigre.BatchOptions
}

// server wires the durable queue to the batch engine: an HTTP front end
// admits jobs into the queue, the pump leases them into the engine one
// in-flight slot at a time, and runners resolve each lease to a durable
// terminal record. The engine's own admission queue stays empty by
// construction — everything waiting lives in the durable queue, where a
// drain or crash can checkpoint it.
type server struct {
	cfg  serverConfig
	q    *queue.Queue
	eng  *aigre.Engine
	lim  *limiter
	http *http.Server

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	leases   int // leases this incarnation (crash-hook bookkeeping)

	slots    chan struct{} // in-flight capacity
	wake     chan struct{} // new work / freed slot
	inflight sync.WaitGroup

	casualties atomic.Int64 // failed + quarantined this incarnation
	degraded   atomic.Int64 // done, but with contained incidents
}

func newServer(ctx context.Context, cfg serverConfig) (*server, error) {
	q, err := queue.Open(cfg.queuePath, queue.Options{MaxDepth: cfg.maxDepth})
	if err != nil {
		return nil, err
	}
	eng, err := aigre.NewEngine(ctx, cfg.batch)
	if err != nil {
		q.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	s := &server{
		cfg:    cfg,
		q:      q,
		eng:    eng,
		lim:    newLimiter(cfg.rate, cfg.burst),
		ctx:    ctx,
		cancel: cancel,
		slots:  make(chan struct{}, cfg.maxJobs),
		wake:   make(chan struct{}, 1),
	}
	go s.pump()
	return s, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *server) serveHTTP(ln net.Listener) error {
	s.http = &http.Server{Handler: s.mux()}
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// pump is the dispatcher: one loop that acquires an in-flight slot, leases
// the next pending job, and hands it to a runner. It stops at drain or
// shutdown; slots free as runners finish.
func (s *server) pump() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case s.slots <- struct{}{}:
		}
		if !s.leaseOne() {
			<-s.slots
			return
		}
	}
}

// leaseOne blocks until a job is leased and its runner launched (true), or
// the daemon starts draining or shuts down (false). The draining check,
// the durable lease, and the in-flight registration happen under one lock,
// so drain's inflight.Wait can never miss a runner that was just launched.
func (s *server) leaseOne() bool {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return false
		}
		spec, err := s.q.Lease()
		if spec != nil {
			s.leases++
			if n := crashAfterLeases(); n > 0 && s.leases >= n {
				// Simulated crash for the recovery tests: the lease is on
				// disk, the job never runs, no checkpoint is written.
				os.Exit(2)
			}
			s.inflight.Add(1)
			s.mu.Unlock()
			if s.cfg.verbose {
				fmt.Fprintf(os.Stderr, "aigred: job %s: leased (%s)\n", spec.ID, spec.Script)
			}
			go s.runJob(spec)
			return true
		}
		s.mu.Unlock()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigred: lease:", err)
		}
		select {
		case <-s.ctx.Done():
			return false
		case <-s.wake:
		}
	}
}

// runJob executes one leased job through the engine and durably resolves the
// lease: success and permanent failures become terminal records carrying the
// queryable session; a forced-drain cancellation checkpoints the job back to
// pending for the next incarnation.
func (s *server) runJob(spec *queue.Spec) {
	defer func() {
		s.inflight.Done()
		<-s.slots
		s.wakeUp()
	}()
	b, err := specBatch(spec, s.cfg)
	if err != nil {
		// The spec was validated at submission, so this is a payload rotted
		// on disk — a permanent failure, not a retry.
		s.resolve(spec.ID, queue.Failed, fmt.Sprintf("unrunnable spec: %v", err), nil)
		return
	}
	tk, err := s.eng.Submit(s.ctx, b)
	if err != nil {
		// Engine already closed under us (forced drain): checkpoint.
		s.requeue(spec.ID, "drain: engine closed before the job started")
		return
	}
	r := tk.Wait()
	sess := sessionOf(r)
	switch {
	case r.Quarantined:
		s.casualties.Add(1)
		s.resolve(spec.ID, queue.Quarantined, errText(r.Err), sess)
	case r.Cancelled:
		s.requeue(spec.ID, "drain: cancelled in flight; checkpointed back to pending")
	case r.Err != nil:
		s.casualties.Add(1)
		detail := errText(r.Err)
		if r.TimedOut {
			detail = "deadline: " + detail
		}
		s.resolve(spec.ID, queue.Failed, detail, sess)
	default:
		if len(r.Incidents) > 0 {
			s.degraded.Add(1)
		}
		s.resolve(spec.ID, queue.Done, "", sess)
	}
}

func (s *server) resolve(id string, st queue.State, detail string, sess *queue.Session) {
	if err := s.q.Resolve(id, st, detail, sess); err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return
	}
	if s.cfg.verbose {
		fmt.Fprintf(os.Stderr, "aigred: job %s: %s %s\n", id, st, detail)
	}
}

func (s *server) requeue(id, detail string) {
	if err := s.q.Requeue(id, detail); err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return
	}
	if s.cfg.verbose {
		fmt.Fprintf(os.Stderr, "aigred: job %s: requeued: %s\n", id, detail)
	}
}

func (s *server) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// drain is the graceful shutdown: stop leasing, 503 new submissions, let
// in-flight jobs finish until the deadline, then force-cancel the stragglers
// — which checkpoints them back to pending — and report the exit code.
func (s *server) drain(timeout time.Duration) int {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.wakeUp() // unblock the pump so it observes the drain

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	forced := false
	select {
	case <-done:
	case <-time.After(timeout):
		// Cancel the engine-wide context: in-flight jobs stop at the next
		// kernel-launch boundary, come back Cancelled, and their runners
		// requeue them durably.
		forced = true
		fmt.Fprintln(os.Stderr, "aigred: drain deadline exceeded; checkpointing in-flight jobs")
		s.cancel()
		<-done
	}
	if s.http != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.http.Shutdown(sctx)
		scancel()
	}
	st := s.q.Stats()
	fmt.Fprintf(os.Stderr, "aigred: drained (forced=%v): %d done, %d failed, %d quarantined, %d pending checkpointed\n",
		forced, st.Done, st.Failed, st.Quarantined, st.Pending)
	switch {
	case s.casualties.Load() > 0:
		return 4
	case s.degraded.Load() > 0:
		return 3
	}
	return 0
}

func (s *server) close() {
	s.cancel()
	s.eng.Close()
	if err := s.q.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
	}
}

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Name     string `json:"name,omitempty"`
	Script   string `json:"script"`
	Priority int    `json:"priority,omitempty"`
	// Parallel overrides the daemon's -parallel default when present.
	Parallel *bool    `json:"parallel,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	Client   string   `json:"client,omitempty"`
	Inject   []string `json:"inject,omitempty"`
	// AIGER is the input network, base64-encoded (encoding/json's []byte).
	AIGER []byte `json:"aiger"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		w.Header().Set("Retry-After", "60")
		http.Error(w, "draining: not accepting new jobs", http.StatusServiceUnavailable)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	client := req.Client
	if client == "" {
		client, _, _ = strings.Cut(r.RemoteAddr, ":")
	}
	if wait, ok := s.lim.allow(client, time.Now()); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(wait))
		http.Error(w, "rate limit exceeded for client "+client, http.StatusTooManyRequests)
		return
	}
	spec, err := validateSubmit(&req, s.cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec.Client = client
	if err := s.q.Submit(*spec); err != nil {
		if errors.Is(err, queue.ErrSaturated) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The submission record is on disk: the job now survives any crash.
	s.wakeUp()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": spec.ID, "state": string(queue.Pending)})
}

// validateSubmit rejects malformed submissions before anything is admitted:
// the script must parse, the AIGER payload must decode, and every inject
// spec must be well-formed.
func validateSubmit(req *submitRequest, cfg serverConfig) (*queue.Spec, error) {
	if req.Script == "" {
		return nil, errors.New("missing script")
	}
	if _, err := flow.Parse(req.Script); err != nil {
		return nil, err
	}
	if len(req.AIGER) == 0 {
		return nil, errors.New("missing aiger payload")
	}
	if _, err := aigre.Read(bytes.NewReader(req.AIGER)); err != nil {
		return nil, fmt.Errorf("bad aiger payload: %w", err)
	}
	for _, inj := range req.Inject {
		if _, err := parseInject(inj); err != nil {
			return nil, err
		}
	}
	parallel := cfg.parallel
	if req.Parallel != nil {
		parallel = *req.Parallel
	}
	id := queue.NewID()
	spec := &queue.Spec{
		ID:       id,
		Name:     req.Name,
		Script:   req.Script,
		Priority: req.Priority,
		Parallel: parallel,
		Workers:  req.Workers,
		Inject:   req.Inject,
		AIGER:    req.AIGER,
	}
	if spec.Name == "" {
		spec.Name = id
	}
	return spec, nil
}

// specBatch rebuilds the engine job from a durable spec.
func specBatch(spec *queue.Spec, cfg serverConfig) (aigre.Batch, error) {
	n, err := aigre.Read(bytes.NewReader(spec.AIGER))
	if err != nil {
		return aigre.Batch{}, err
	}
	opts := aigre.Options{Parallel: spec.Parallel}
	for _, inj := range spec.Inject {
		plan, err := parseInject(inj)
		if err != nil {
			return aigre.Batch{}, err
		}
		opts.FaultPlans = append(opts.FaultPlans, plan)
	}
	return aigre.Batch{
		Name:     spec.Name,
		AIG:      n,
		Script:   spec.Script,
		Priority: spec.Priority,
		Workers:  spec.Workers,
		Options:  opts,
	}, nil
}

// sessionOf converts an engine result to the queryable session record
// persisted with the job's terminal state.
func sessionOf(r aigre.BatchResult) *queue.Session {
	return &queue.Session{
		Attempts:     r.Attempts,
		Preemptions:  r.Preemptions,
		NodesBefore:  r.NodesBefore,
		LevelsBefore: r.LevelsBefore,
		NodesAfter:   r.NodesAfter,
		LevelsAfter:  r.LevelsAfter,
		QueuedNS:     r.Queued,
		WallNS:       r.Wall,
		ModeledNS:    r.Modeled,
		Incidents:    r.Incidents,
		Profile:      r.Profile,
		Cache: rcache.Stats{
			Hits: r.CacheStats.Hits, Misses: r.CacheStats.Misses,
			Evictions: r.CacheStats.Evictions, NpnHits: r.CacheStats.NpnHits,
			NpnMisses: r.CacheStats.NpnMisses, Entries: r.CacheStats.Entries,
		},
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// jobView is the JSON shape of GET /jobs responses: the queue job without
// its AIGER payload (which can be megabytes and is never needed back).
type jobView struct {
	ID        string         `json:"id"`
	Name      string         `json:"name"`
	Script    string         `json:"script"`
	State     queue.State    `json:"state"`
	Detail    string         `json:"detail,omitempty"`
	Priority  int            `json:"priority,omitempty"`
	Parallel  bool           `json:"parallel,omitempty"`
	Client    string         `json:"client,omitempty"`
	Leases    int            `json:"leases"`
	Submitted time.Time      `json:"submitted"`
	Updated   time.Time      `json:"updated"`
	Session   *queue.Session `json:"session,omitempty"`
}

func viewOf(j queue.Job) jobView {
	return jobView{
		ID:        j.Spec.ID,
		Name:      j.Spec.Name,
		Script:    j.Spec.Script,
		State:     j.State,
		Detail:    j.Detail,
		Priority:  j.Spec.Priority,
		Parallel:  j.Spec.Parallel,
		Client:    j.Spec.Client,
		Leases:    j.Leases,
		Submitted: j.Spec.Submitted,
		Updated:   j.Updated,
		Session:   j.Session,
	}
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.q.Jobs()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = viewOf(j)
	}
	writeJSON(w, views)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.q.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, viewOf(j))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"queue":    s.q.Stats(),
		"engine":   s.eng.Metrics(),
		"draining": s.isDraining(),
	})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "draining": s.isDraining()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// limiter is a per-client token bucket: rate tokens/second up to burst.
// A zero rate admits everything.
type limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if b <= 0 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &limiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from client's bucket. When the bucket is empty it
// returns false and the whole seconds to wait for the next token.
func (l *limiter) allow(client string, now time.Time) (retryAfter int, ok bool) {
	if l.rate <= 0 {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := (1 - b.tokens) / l.rate
	return int(wait) + 1, false
}

// parseInject parses the "kernel-pattern:N:kind" fault spec — the same
// syntax as cmd/aigre's -inject flag.
func parseInject(s string) (gpu.FaultPlan, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return gpu.FaultPlan{}, fmt.Errorf("bad inject %q, want \"kernel-pattern:N:panic|corrupt|stall\"", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return gpu.FaultPlan{}, fmt.Errorf("bad inject launch ordinal %q (want >= 1)", parts[1])
	}
	var kind gpu.FaultKind
	switch parts[2] {
	case "panic":
		kind = gpu.FaultPanic
	case "corrupt":
		kind = gpu.FaultCorrupt
	case "stall":
		kind = gpu.FaultStall
	default:
		return gpu.FaultPlan{}, fmt.Errorf("bad inject kind %q (want panic, corrupt, or stall)", parts[2])
	}
	return gpu.FaultPlan{Kernel: parts[0], Nth: n, Kind: kind}, nil
}
