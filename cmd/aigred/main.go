// Command aigred is the crash-recoverable optimization daemon: an HTTP/JSON
// front end over the aigre batch engine with a durable write-ahead job queue.
//
// Jobs are submitted as JSON (an AIGER payload plus a script) and are
// fsync-appended to the queue's write-ahead log *before* the submission is
// acknowledged, so an acknowledged job survives a daemon crash: on restart
// the log is replayed, jobs that were in flight are checkpointed back to
// pending and re-run exactly once more, and completed jobs — whose session
// records remain queryable — are never executed again.
//
// Optimized networks are persisted to a content-addressed blob store at
// outcome time, so results survive restarts and remain fetchable for as
// long as their jobs' records do. The WAL is compacted — snapshot, fsync,
// atomic rename — on restart and once it outgrows -compact-bytes with
// mostly-terminal records, so neither log nor store grows without bound.
//
// Usage:
//
//	aigred -queue /var/lib/aigred/queue.jsonl -addr 127.0.0.1:8080 \
//	       -parallel -workers 8 -retries 2 -stuck-timeout 2s \
//	       -client-weight batch=1 -client-weight interactive=4
//
// Endpoints (v1; the flat pre-v1 routes remain as deprecated aliases):
//
//	POST /v1/jobs              submit a job; 202 {"id": "..."} once durable
//	GET  /v1/jobs              list jobs; ?state= ?client= ?limit= filters
//	GET  /v1/jobs/{id}         one job's state, incidents, profile, cache stats
//	GET  /v1/jobs/{id}/result  the optimized AIGER (binary; ?format=json for base64)
//	GET  /v1/jobs/{id}/events  live progress as SSE; Last-Event-ID resumes
//	GET  /v1/stats             queue depths, engine metrics, store size
//	GET  /healthz              liveness (reports draining)
//
// Errors are a typed JSON envelope {"error": {"code", "message",
// "retry_after_ms"}} with machine-readable codes (saturated, rate_limited,
// draining, not_found, invalid_argument, ...).
//
// Admission control: -max-depth bounds the active queue (503 + Retry-After
// beyond it) and -rate/-burst give each client a token bucket (429 +
// Retry-After when empty). Scheduling across clients is weighted-fair:
// -client-weight name=N sets fair-share weights (stride scheduling; a
// weight-4 client leases 4 jobs per weight-1 job under saturation) and
// -client-max name=N caps a client's concurrently leased jobs; use name '*'
// for the default applied to unlisted clients.
//
// Shutdown: the first SIGTERM/SIGINT starts a graceful drain — new
// submissions get 503, in-flight jobs finish under -drain-timeout, jobs
// that cannot finish are durably checkpointed back to pending for the next
// incarnation. A second signal exits immediately with code 1.
//
// Exit codes (for automation):
//
//	0  clean drain: every executed job completed without incidents
//	1  hard error, or a second signal forced an immediate exit
//	2  usage error
//	3  degraded: jobs completed, but contained incidents were recorded
//	4  job casualty: at least one job failed or was quarantined
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aigre"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main's testable body: it parses args, serves until a drain signal,
// and returns the process exit code. The e2e tests re-exec the test binary
// into run via the AIGRED_CHILD environment hook.
func run(args []string) int {
	fs := flag.NewFlagSet("aigred", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:0", "listen address")
		queueF   = fs.String("queue", "", "durable queue WAL path (required; created if missing)")
		storeF   = fs.String("store", "", "result blob store directory (default: <queue>.store)")
		portFile = fs.String("port-file", "", "write the bound address to this file once listening")
		workers  = fs.Int("workers", 0, "worker goroutines for the shared device pool (0 = GOMAXPROCS)")
		maxJobs  = fs.Int("max-jobs", 1, "max concurrently executing jobs")
		maxDepth = fs.Int("max-depth", 0, "max active (pending+leased) jobs before 503 (0 = unbounded)")
		rate     = fs.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst    = fs.Int("burst", 0, "per-client burst allowance (0 = max(1, rate))")
		drainTmo = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline for in-flight jobs")
		jobTmo   = fs.Duration("job-timeout", 0, "per-attempt deadline of one job (0 = none)")
		retries  = fs.Int("retries", 0, "retry budget per job for transient faults, timeouts, and stuck preemptions")
		stuckTmo = fs.Duration("stuck-timeout", 0, "watchdog threshold: preempt a job whose kernel heartbeat stalls this long (0 = off)")
		shCache  = fs.Bool("shared-cache", false, "share one resynthesis cache across all jobs")
		parallel = fs.Bool("parallel", false, "default jobs to the parallel (GPU-model) engines")
		compactB = fs.Int64("compact-bytes", 8<<20, "compact the queue WAL once it exceeds this size and terminal jobs dominate (0 = never live-compact)")
		verbose  = fs.Bool("v", false, "log every job transition")
	)
	weights := map[string]int{}
	defWeight := 0
	fs.Func("client-weight", "fair-share weight, name=N (repeatable; name '*' sets the default)",
		clientFlag(weights, &defWeight, 1))
	maxInfl := map[string]int{}
	defMaxInfl := 0
	fs.Func("client-max", "max concurrently leased jobs, name=N (repeatable; name '*' sets the default)",
		clientFlag(maxInfl, &defMaxInfl, 1))
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *queueF == "" {
		fmt.Fprintln(os.Stderr, "aigred: -queue is required")
		fs.Usage()
		return 2
	}
	if *maxJobs < 1 || *retries < 0 || *rate < 0 || *burst < 0 || *maxDepth < 0 || *compactB < 0 {
		fmt.Fprintln(os.Stderr, "aigred: negative or zero capacity flags")
		return 2
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bopts := aigre.BatchOptions{
		Workers:           *workers,
		MaxConcurrentJobs: *maxJobs,
		Policy: aigre.Policy{
			JobTimeout:    *jobTmo,
			Retries:       *retries,
			StuckTimeout:  *stuckTmo,
			RetryDegraded: *retries > 0,
		},
	}
	if *shCache {
		bopts.SharedCache = aigre.NewCache()
	}
	srv, err := newServer(ctx, serverConfig{
		queuePath:    *queueF,
		storePath:    *storeF,
		maxDepth:     *maxDepth,
		maxJobs:      *maxJobs,
		rate:         *rate,
		burst:        *burst,
		weights:      weights,
		maxInflight:  maxInfl,
		defWeight:    defWeight,
		defMaxInfl:   defMaxInfl,
		compactBytes: *compactB,
		parallel:     *parallel,
		verbose:      *verbose,
		batch:        bopts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return 1
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aigred:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "aigred: listening on %s (queue %s, %s)\n",
		ln.Addr(), *queueF, recoveryNote(srv))

	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.serveHTTP(ln) }()

	// First SIGTERM/SIGINT starts the graceful drain; a second one exits
	// immediately with code 1 (the queue stays consistent: every accepted
	// state change is already on disk).
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "aigred: %s: draining (signal again to exit immediately)\n", sig)
		go func() {
			s := <-sigs
			fmt.Fprintf(os.Stderr, "aigred: %s: immediate exit\n", s)
			os.Exit(1)
		}()
	case err := <-httpDone:
		fmt.Fprintln(os.Stderr, "aigred:", err)
		return 1
	}

	code := srv.drain(*drainTmo)
	cancel()
	srv.close()
	return code
}

// clientFlag parses one "name=N" occurrence of a repeatable per-client
// flag into m, routing the '*' pseudo-client to *def. N must be >= min.
func clientFlag(m map[string]int, def *int, min int) func(string) error {
	return func(v string) error {
		name, nstr, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=N, got %q", v)
		}
		n, err := strconv.Atoi(nstr)
		if err != nil || n < min {
			return fmt.Errorf("bad value %q (want an integer >= %d)", nstr, min)
		}
		if name == "*" {
			*def = n
		} else {
			m[name] = n
		}
		return nil
	}
}

// recoveryNote summarizes what Open found in the replayed WAL.
func recoveryNote(s *server) string {
	st := s.q.Stats()
	return fmt.Sprintf("replayed: %d pending, %d recovered, %d done, %d torn",
		st.Pending, st.Recovered, st.Done, st.Torn)
}

// crashAfterLeases is a test hook: when the AIGRED_CRASH_AFTER_LEASES
// environment variable is a positive N, the daemon hard-exits (os.Exit,
// no drain, no checkpoint) immediately after the Nth lease — simulating a
// crash with a job in flight.
func crashAfterLeases() int {
	n, _ := strconv.Atoi(os.Getenv("AIGRED_CRASH_AFTER_LEASES"))
	return n
}
