package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aigre/internal/queue"
)

// TestMain doubles as the daemon's entry point for the e2e tests: the tests
// re-exec this binary with AIGRED_CHILD=1 and real aigred flags, and the
// child runs the daemon instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("AIGRED_CHILD") == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// daemon is one child aigred process under test.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *strings.Builder
}

// startDaemon launches the test binary as an aigred child on a random port
// and waits until it is listening.
func startDaemon(t *testing.T, qpath string, env []string, extra ...string) *daemon {
	t.Helper()
	portFile := filepath.Join(t.TempDir(), "port")
	args := append([]string{"-queue", qpath, "-addr", "127.0.0.1:0", "-port-file", portFile}, extra...)
	d := &daemon{cmd: exec.Command(os.Args[0], args...), stderr: &strings.Builder{}}
	d.cmd.Env = append(os.Environ(), "AIGRED_CHILD=1")
	d.cmd.Env = append(d.cmd.Env, env...)
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			d.addr = "http://" + string(b)
			return d
		}
		if time.Now().After(deadline) {
			d.cmd.Process.Kill()
			t.Fatalf("daemon never came up; stderr:\n%s", d.stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// wait reaps the child and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	t.Fatalf("daemon wait: %v; stderr:\n%s", err, d.stderr)
	return -1
}

func (d *daemon) submit(t *testing.T, req submitRequest) (string, int) {
	t.Helper()
	code, body, _ := postJSON(t, d.addr+"/jobs", req)
	var ack map[string]string
	json.Unmarshal(body, &ack)
	return ack["id"], code
}

func (d *daemon) jobs(t *testing.T) map[string]jobView {
	t.Helper()
	var views []jobView
	if code := getJSON(t, d.addr+"/jobs", &views); code != http.StatusOK {
		t.Fatalf("GET /jobs: %d", code)
	}
	out := make(map[string]jobView, len(views))
	for _, v := range views {
		out[v.ID] = v
	}
	return out
}

// waitIdle polls /stats until no job is pending or leased.
func (d *daemon) waitIdle(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st struct {
			Queue queue.Stats `json:"queue"`
		}
		if code := getJSON(t, d.addr+"/stats", &st); code != http.StatusOK {
			t.Fatalf("GET /stats: %d", code)
		}
		if st.Queue.Active() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never went idle: %+v; stderr:\n%s", st.Queue, d.stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonCrashRecovery is the tentpole acceptance test: submit jobs, kill
// the daemon mid-run without any shutdown handling, restart it against the
// same queue file, and verify every job reaches exactly one terminal state —
// the job finished before the crash is not re-executed, the job in flight at
// the crash re-runs exactly once more, and the untouched job runs normally.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	qpath := filepath.Join(t.TempDir(), "queue.jsonl")
	aig := aigerBytes(t)

	// Incarnation 1: hard-exits (os.Exit, no checkpoint) right after the
	// second lease — job 1 done, job 2 leased but never run, job 3 pending.
	d1 := startDaemon(t, qpath, []string{"AIGRED_CRASH_AFTER_LEASES=2"}, "-max-jobs", "1")
	var ids [3]string
	for i := range ids {
		req := submitRequest{Name: fmt.Sprintf("job%d", i+1), Script: "b; rw", AIGER: aig}
		if i == 0 {
			// Stall job 1 (~250ms) so the crash-triggering second lease
			// cannot happen until all three submissions are acknowledged.
			req.Parallel = ptr(true)
			req.Inject = []string{"rewrite/evaluate:1:stall"}
		}
		id, code := d1.submit(t, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d; stderr:\n%s", i, code, d1.stderr)
		}
		ids[i] = id
	}
	if code := d1.wait(t); code != 2 {
		t.Fatalf("crashed daemon exit %d, want 2; stderr:\n%s", code, d1.stderr)
	}

	// Incarnation 2: replays the WAL, checkpoints the abandoned lease back
	// to pending, runs the backlog, and keeps terminal jobs terminal.
	d2 := startDaemon(t, qpath, nil, "-max-jobs", "1")
	d2.waitIdle(t, 60*time.Second)
	jobs := d2.jobs(t)
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	for i, id := range ids {
		jv, ok := jobs[id]
		if !ok {
			t.Fatalf("job %d (%s) lost across restart", i, id)
		}
		if jv.State != queue.Done {
			t.Errorf("job %d: state %q (%s), want done", i, jv.State, jv.Detail)
		}
		if jv.Session == nil || jv.Session.NodesAfter == 0 {
			t.Errorf("job %d: session not queryable after restart: %+v", i, jv.Session)
		}
	}
	// Exactly-once evidence: the job that completed before the crash was
	// never leased again; the in-flight casualty ran exactly once more.
	if l := jobs[ids[0]].Leases; l != 1 {
		t.Errorf("pre-crash job re-executed: %d leases, want 1", l)
	}
	if l := jobs[ids[1]].Leases; l != 2 {
		t.Errorf("crashed in-flight job: %d leases, want 2", l)
	}
	if l := jobs[ids[2]].Leases; l != 1 {
		t.Errorf("backlog job: %d leases, want 1", l)
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(t); code != 0 {
		t.Fatalf("clean drain exit %d, want 0; stderr:\n%s", code, d2.stderr)
	}

	// The WAL itself must replay to the same terminal picture.
	q, err := queue.Open(qpath, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	st := q.Stats()
	if st.Done != 3 || st.Active() != 0 || st.Failed != 0 || st.Torn != 0 {
		t.Fatalf("replayed WAL: %+v, want 3 done", st)
	}
}

// TestDaemonDrainSmoke is the graceful-drain acceptance test: SIGTERM with
// one job in flight and one waiting. The in-flight job finishes, a
// submission during the drain gets 503, the waiting job is left durably
// pending for the next incarnation, and the daemon exits 0.
func TestDaemonDrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	qpath := filepath.Join(t.TempDir(), "queue.jsonl")
	aig := aigerBytes(t)
	d := startDaemon(t, qpath, nil, "-max-jobs", "1", "-workers", "2", "-drain-timeout", "60s")

	// The in-flight job stalls on its first four rewrite evaluations
	// (~250ms each), holding the single slot open long enough to land a
	// SIGTERM while it runs.
	slow := submitRequest{Name: "slow", Script: "b; rw; rf; b", Parallel: ptr(true), AIGER: aig,
		Inject: []string{"rewrite/evaluate:1:stall", "rewrite/evaluate:2:stall",
			"rewrite/evaluate:3:stall", "rewrite/evaluate:4:stall"}}
	slowID, code := d.submit(t, slow)
	if code != http.StatusAccepted {
		t.Fatalf("slow submit: %d", code)
	}
	waitID, code := d.submit(t, submitRequest{Name: "waiting", Script: "b", AIGER: aig})
	if code != http.StatusAccepted {
		t.Fatalf("waiting submit: %d", code)
	}
	// Wait for the slow job to be leased so the SIGTERM lands mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for d.jobs(t)[slowID].State != queue.Leased {
		if time.Now().After(deadline) {
			t.Fatalf("slow job never leased; stderr:\n%s", d.stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for the drain to be observable (the stalled job holds the slot
	// open for ~1s), then check that new submissions are refused with 503.
	for deadline := time.Now().Add(10 * time.Second); ; {
		var health map[string]any
		getJSON(t, d.addr+"/healthz", &health)
		if health["draining"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never started draining; stderr:\n%s", d.stderr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, body, hdr := postJSON(t, d.addr+"/jobs", submitRequest{Script: "b", AIGER: aig})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain exit %d, want 0; stderr:\n%s", code, d.stderr)
	}

	// The WAL replays: the in-flight job completed, the waiting job is
	// still pending (never leased) for the next incarnation to run.
	q, err := queue.Open(qpath, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if st := q.Stats(); st.Done != 1 || st.Pending != 1 || st.Recovered != 0 {
		t.Fatalf("replayed WAL after drain: %+v, want 1 done + 1 pending", st)
	}
	slowJob, _ := q.Get(slowID)
	if slowJob.State != queue.Done || slowJob.Leases != 1 {
		t.Errorf("slow job: state %q leases %d, want done/1", slowJob.State, slowJob.Leases)
	}
	waitJob, _ := q.Get(waitID)
	if waitJob.State != queue.Pending || waitJob.Leases != 0 {
		t.Errorf("waiting job: state %q leases %d, want pending/0", waitJob.State, waitJob.Leases)
	}
}
