package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aigre"
	"aigre/client"
	"aigre/internal/bench"
	"aigre/internal/queue"
)

// TestMain doubles as the daemon's entry point for the e2e tests: the tests
// re-exec this binary with AIGRED_CHILD=1 and real aigred flags, and the
// child runs the daemon instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("AIGRED_CHILD") == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// daemon is one child aigred process under test, driven through the public
// Go client — the same client any other program would use.
type daemon struct {
	cmd    *exec.Cmd
	api    *client.Client
	stderr *strings.Builder
}

// startDaemon launches the test binary as an aigred child on a random port
// and waits until it is listening.
func startDaemon(t *testing.T, qpath string, env []string, extra ...string) *daemon {
	t.Helper()
	portFile := filepath.Join(t.TempDir(), "port")
	args := append([]string{"-queue", qpath, "-addr", "127.0.0.1:0", "-port-file", portFile}, extra...)
	d := &daemon{cmd: exec.Command(os.Args[0], args...), stderr: &strings.Builder{}}
	d.cmd.Env = append(os.Environ(), "AIGRED_CHILD=1")
	d.cmd.Env = append(d.cmd.Env, env...)
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			d.api = client.New("http://" + string(b))
			return d
		}
		if time.Now().After(deadline) {
			d.cmd.Process.Kill()
			t.Fatalf("daemon never came up; stderr:\n%s", d.stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// wait reaps the child and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	t.Fatalf("daemon wait: %v; stderr:\n%s", err, d.stderr)
	return -1
}

// submit enqueues one job through the client and returns its id.
func (d *daemon) submit(t *testing.T, req client.SubmitRequest) string {
	t.Helper()
	ack, err := d.api.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("submit: %v; stderr:\n%s", err, d.stderr)
	}
	return ack.ID
}

// jobs lists every job keyed by id.
func (d *daemon) jobs(t *testing.T) map[string]client.Job {
	t.Helper()
	views, err := d.api.List(context.Background(), client.ListOptions{})
	if err != nil {
		t.Fatalf("list jobs: %v", err)
	}
	out := make(map[string]client.Job, len(views))
	for _, v := range views {
		out[v.ID] = v
	}
	return out
}

// waitIdle polls stats until no job is pending or leased.
func (d *daemon) waitIdle(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := d.api.Stats(context.Background())
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Queue.Active() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never went idle: %+v; stderr:\n%s", st.Queue, d.stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// bigAigerBytes renders a benchmark network large enough that AIGER payloads
// dominate the WAL — which is what makes compaction's size win observable.
func bigAigerBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := aigre.FromInternal(bench.Adder(256)).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonCrashRecovery is the tentpole acceptance test: submit jobs, kill
// the daemon mid-run without any shutdown handling, restart it against the
// same queue file, and verify every job reaches exactly one terminal state —
// the job finished before the crash is not re-executed, the job in flight at
// the crash re-runs exactly once more, and the untouched job runs normally.
// The restart also forces WAL compaction, after which every completed job's
// optimized network must still be retrievable from the result store, and the
// SSE event stream must resume across a disconnect with no gap.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	ctx := context.Background()
	qpath := filepath.Join(t.TempDir(), "queue.jsonl")
	aig := bigAigerBytes(t)

	// Incarnation 1: hard-exits (os.Exit, no checkpoint) right after the
	// second lease — job 1 done, job 2 leased but never run, job 3 pending.
	d1 := startDaemon(t, qpath, []string{"AIGRED_CRASH_AFTER_LEASES=2"}, "-max-jobs", "1")
	var ids [3]string
	for i := range ids {
		req := client.SubmitRequest{Name: fmt.Sprintf("job%d", i+1), Script: "b; rw", AIGER: aig}
		if i == 0 {
			// Stall job 1 (~250ms) so the crash-triggering second lease
			// cannot happen until all three submissions are acknowledged.
			req.Parallel = ptr(true)
			req.Inject = []string{"rewrite/evaluate:1:stall"}
		}
		ids[i] = d1.submit(t, req)
	}
	if code := d1.wait(t); code != 2 {
		t.Fatalf("crashed daemon exit %d, want 2; stderr:\n%s", code, d1.stderr)
	}
	preCompact, err := os.Stat(qpath)
	if err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: replays the WAL, compacts it, checkpoints the abandoned
	// lease back to pending, runs the backlog, and keeps terminal jobs
	// terminal. -compact-bytes 1 arms live compaction as outcomes land.
	d2 := startDaemon(t, qpath, nil, "-max-jobs", "1", "-compact-bytes", "1")
	d2.waitIdle(t, 60*time.Second)
	jobs := d2.jobs(t)
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	for i, id := range ids {
		jv, ok := jobs[id]
		if !ok {
			t.Fatalf("job %d (%s) lost across restart", i, id)
		}
		if jv.State != client.StateDone {
			t.Errorf("job %d: state %q (%s), want done", i, jv.State, jv.Detail)
		}
		if jv.Session == nil || jv.Session.NodesAfter == 0 {
			t.Errorf("job %d: session not queryable after restart: %+v", i, jv.Session)
		}
	}
	// Exactly-once evidence: the job that completed before the crash was
	// never leased again; the in-flight casualty ran exactly once more.
	if l := jobs[ids[0]].Leases; l != 1 {
		t.Errorf("pre-crash job re-executed: %d leases, want 1", l)
	}
	if l := jobs[ids[1]].Leases; l != 2 {
		t.Errorf("crashed in-flight job: %d leases, want 2", l)
	}
	if l := jobs[ids[2]].Leases; l != 1 {
		t.Errorf("backlog job: %d leases, want 1", l)
	}
	// Every completed job's optimized network is retrievable from the
	// durable result store — including job 1's, which was computed and
	// stored by the incarnation that crashed.
	for i, id := range ids {
		data, digest, err := d2.api.Result(ctx, id)
		if err != nil {
			t.Fatalf("job %d result: %v", i, err)
		}
		if digest == "" || digest != jobs[id].Session.Result {
			t.Errorf("job %d: digest %q vs session %q", i, digest, jobs[id].Session.Result)
		}
		n, err := aigre.Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("job %d: result is not AIGER: %v", i, err)
		}
		if got := n.Stats().Nodes; got != jobs[id].Session.NodesAfter {
			t.Errorf("job %d: result has %d nodes, session says %d", i, got, jobs[id].Session.NodesAfter)
		}
	}
	// Compaction ran (at open, and again live as terminal records landed),
	// and the WAL is now smaller than the crash left it even though three
	// more sessions' worth of history happened since.
	st, err := d2.api.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queue.Compactions < 1 {
		t.Errorf("no compaction ran on restart: %+v", st.Queue)
	}
	if st.Queue.WALBytes >= preCompact.Size() {
		t.Errorf("WAL not smaller after compaction: %d -> %d bytes",
			preCompact.Size(), st.Queue.WALBytes)
	}
	// SSE resume with no gap: stream the crashed job's full history —
	// which spans both incarnations — then disconnect and reconnect with
	// an early Last-Event-ID; the resumed stream must replay exactly the
	// suffix, ending in the durable terminal event.
	full := collectEvents(t, d2, ids[1], "")
	if len(full) < 3 {
		t.Fatalf("crashed job's history too short: %+v", full)
	}
	for i, ev := range full {
		if ev.Seq != i+1 {
			t.Fatalf("event gap in full history: %+v", full)
		}
	}
	if last := full[len(full)-1]; last.Type != client.StateDone {
		t.Fatalf("history ends %q, want done", last.Type)
	}
	resumed := collectEvents(t, d2, ids[1], full[0].ID)
	if len(resumed) != len(full)-1 {
		t.Fatalf("resume after %s: %d events, want %d", full[0].ID, len(resumed), len(full)-1)
	}
	for i, ev := range resumed {
		if ev.ID != full[i+1].ID || ev.Seq != full[i+1].Seq {
			t.Fatalf("resume gap/duplicate at %d: got %+v, want %+v", i, ev, full[i+1])
		}
	}

	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(t); code != 0 {
		t.Fatalf("clean drain exit %d, want 0; stderr:\n%s", code, d2.stderr)
	}
	finalWAL, err := os.Stat(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if finalWAL.Size() >= preCompact.Size() {
		t.Errorf("final WAL not smaller than pre-compaction: %d -> %d bytes",
			preCompact.Size(), finalWAL.Size())
	}

	// The WAL itself must replay to the same terminal picture.
	q, err := queue.Open(qpath, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	qst := q.Stats()
	if qst.Done != 3 || qst.Active() != 0 || qst.Failed != 0 || qst.Torn != 0 {
		t.Fatalf("replayed WAL: %+v, want 3 done", qst)
	}
}

// collectEvents drains one SSE subscription of a terminal job: the daemon
// replays from lastID and closes the stream at the terminal event.
func collectEvents(t *testing.T, d *daemon, id, lastID string) []client.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stream, err := d.api.Events(ctx, id, lastID)
	if err != nil {
		t.Fatalf("events %s: %v", id, err)
	}
	defer stream.Close()
	var evs []client.Event
	for ev := range stream.C {
		evs = append(evs, ev)
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("events %s: %v", id, err)
	}
	return evs
}

// TestDaemonDrainSmoke is the graceful-drain acceptance test: SIGTERM with
// one job in flight and one waiting. The in-flight job finishes, a
// submission during the drain gets a typed "draining" refusal, the waiting
// job is left durably pending for the next incarnation, and the daemon
// exits 0.
func TestDaemonDrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	ctx := context.Background()
	qpath := filepath.Join(t.TempDir(), "queue.jsonl")
	aig := aigerBytes(t)
	d := startDaemon(t, qpath, nil, "-max-jobs", "1", "-workers", "2", "-drain-timeout", "60s")

	// The in-flight job stalls on its first four rewrite evaluations
	// (~250ms each), holding the single slot open long enough to land a
	// SIGTERM while it runs.
	slowID := d.submit(t, client.SubmitRequest{Name: "slow", Script: "b; rw; rf; b",
		Parallel: ptr(true), AIGER: aig,
		Inject: []string{"rewrite/evaluate:1:stall", "rewrite/evaluate:2:stall",
			"rewrite/evaluate:3:stall", "rewrite/evaluate:4:stall"}})
	waitID := d.submit(t, client.SubmitRequest{Name: "waiting", Script: "b", AIGER: aig})
	// Wait for the slow job to be leased so the SIGTERM lands mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for d.jobs(t)[slowID].State != client.StateLeased {
		if time.Now().After(deadline) {
			t.Fatalf("slow job never leased; stderr:\n%s", d.stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Wait for the drain to be observable (the stalled job holds the slot
	// open for ~1s), then check that new submissions are refused with the
	// typed draining error.
	for deadline := time.Now().Add(10 * time.Second); ; {
		st, err := d.api.Stats(ctx)
		if err == nil && st.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never started draining; stderr:\n%s", d.stderr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err := d.api.Submit(ctx, client.SubmitRequest{Script: "b", AIGER: aig})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != "draining" {
		t.Fatalf("submit during drain: %v, want 503/draining", err)
	}
	if !apiErr.IsRetryable() {
		t.Error("draining refusal without a retry hint")
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain exit %d, want 0; stderr:\n%s", code, d.stderr)
	}

	// The WAL replays: the in-flight job completed, the waiting job is
	// still pending (never leased) for the next incarnation to run.
	q, err := queue.Open(qpath, queue.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if st := q.Stats(); st.Done != 1 || st.Pending != 1 || st.Recovered != 0 {
		t.Fatalf("replayed WAL after drain: %+v, want 1 done + 1 pending", st)
	}
	slowJob, _ := q.Get(slowID)
	if slowJob.State != queue.Done || slowJob.Leases != 1 {
		t.Errorf("slow job: state %q leases %d, want done/1", slowJob.State, slowJob.Leases)
	}
	waitJob, _ := q.Get(waitID)
	if waitJob.State != queue.Pending || waitJob.Leases != 0 {
		t.Errorf("waiting job: state %q leases %d, want pending/0", waitJob.State, waitJob.Leases)
	}
}
