package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"aigre"
	"aigre/client"
)

// api wraps an in-process test server in the public Go client.
func api(ts string) *client.Client { return client.New(ts) }

// submitAndWait runs one job to its terminal state through the v1 API.
func submitAndWait(t *testing.T, c *client.Client, req client.SubmitRequest) client.Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ack, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j, err := c.Wait(ctx, ack.ID)
	if err != nil {
		t.Fatalf("wait %s: %v", ack.ID, err)
	}
	return j
}

// TestV1RoutesAndDeprecation checks that the flat pre-v1 routes still work
// but carry deprecation headers pointing at their successors, while the v1
// routes answer clean.
func TestV1RoutesAndDeprecation(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	for _, tc := range []struct{ path, successor string }{
		{"/jobs", "/v1/jobs"},
		{"/stats", "/v1/stats"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", tc.path, resp.StatusCode)
		}
		if d := resp.Header.Get("Deprecation"); d != "true" {
			t.Errorf("GET %s: Deprecation header %q, want true", tc.path, d)
		}
		if link := resp.Header.Get("Link"); link != `<`+tc.successor+`>; rel="successor-version"` {
			t.Errorf("GET %s: Link header %q", tc.path, link)
		}
	}
	for _, path := range []string{"/v1/jobs", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("GET %s carries a Deprecation header", path)
		}
	}
}

// TestErrorEnvelope checks that v1 failures arrive as the typed JSON
// envelope, decodable by the client package.
func TestErrorEnvelope(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	c := api(ts.URL)
	ctx := context.Background()

	_, err := c.Get(ctx, "j-nonexistent00")
	var e *client.Error
	if !errors.As(err, &e) || e.Status != 404 || e.Code != "not_found" {
		t.Errorf("missing job: %#v, want 404/not_found", err)
	}
	_, err = c.Submit(ctx, client.SubmitRequest{Script: "b; zz", AIGER: aigerBytes(t)})
	if !errors.As(err, &e) || e.Status != 400 || e.Code != "invalid_argument" || e.Message == "" {
		t.Errorf("bad script: %#v, want 400/invalid_argument", err)
	}
	_, err = c.List(ctx, client.ListOptions{State: "bogus"})
	if !errors.As(err, &e) || e.Status != 400 || e.Code != "invalid_argument" {
		t.Errorf("bad state filter: %#v, want 400/invalid_argument", err)
	}
}

// TestListFilters checks GET /v1/jobs server-side filtering: by client, by
// state, and bounded pagination returning the most recent submissions.
func TestListFilters(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxJobs: 2})
	c := api(ts.URL)
	ctx := context.Background()
	aig := aigerBytes(t)
	var ids []string
	for _, owner := range []string{"alice", "alice", "bob"} {
		j := submitAndWait(t, c, client.SubmitRequest{Script: "b", Client: owner, AIGER: aig})
		ids = append(ids, j.ID)
	}

	all, err := c.List(ctx, client.ListOptions{})
	if err != nil || len(all) != 3 {
		t.Fatalf("unfiltered list: %d jobs, err %v", len(all), err)
	}
	alices, err := c.List(ctx, client.ListOptions{Client: "alice"})
	if err != nil || len(alices) != 2 {
		t.Fatalf("client filter: %d jobs, err %v", len(alices), err)
	}
	for _, j := range alices {
		if j.Client != "alice" {
			t.Errorf("client filter leaked %q's job", j.Client)
		}
	}
	done, err := c.List(ctx, client.ListOptions{State: client.StateDone})
	if err != nil || len(done) != 3 {
		t.Fatalf("state filter: %d jobs, err %v", len(done), err)
	}
	if none, err := c.List(ctx, client.ListOptions{State: client.StateFailed}); err != nil || len(none) != 0 {
		t.Fatalf("failed filter: %d jobs, err %v", len(none), err)
	}
	last, err := c.List(ctx, client.ListOptions{Limit: 1})
	if err != nil || len(last) != 1 {
		t.Fatalf("limit: %d jobs, err %v", len(last), err)
	}
	if last[0].ID != ids[2] {
		t.Errorf("limit=1 returned %s, want most recent %s", last[0].ID, ids[2])
	}
}

// TestResultEndpoint checks the durable result store end to end: the binary
// fetch matches the stored digest and parses as AIGER, the JSON shape
// round-trips the same bytes, a running job is 409 not_ready, and an unknown
// job 404s.
func TestResultEndpoint(t *testing.T) {
	s, ts := testServer(t, serverConfig{maxJobs: 2})
	c := api(ts.URL)
	ctx := context.Background()

	j := submitAndWait(t, c, client.SubmitRequest{Script: "b; rw", AIGER: aigerBytes(t)})
	if j.State != client.StateDone || j.Session == nil || j.Session.Result == "" {
		t.Fatalf("job did not produce a result: %+v", j)
	}
	data, digest, err := c.Result(ctx, j.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if digest != j.Session.Result || len(data) != j.Session.ResultBytes {
		t.Errorf("result %s (%d bytes) vs session %s (%d bytes)",
			digest, len(data), j.Session.Result, j.Session.ResultBytes)
	}
	n, err := aigre.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("result is not AIGER: %v", err)
	}
	if got := n.Stats().Nodes; got != j.Session.NodesAfter {
		t.Errorf("result has %d nodes, session says %d", got, j.Session.NodesAfter)
	}
	// The blob survives in the content-addressed store.
	if blobs, _, err := s.st.Stats(); err != nil || blobs == 0 {
		t.Errorf("store empty after a completed job: blobs=%d err=%v", blobs, err)
	}

	// JSON shape carries the same bytes, base64 under "aiger".
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var jr struct {
		ID     string `json:"id"`
		Digest string `json:"digest"`
		Bytes  int    `json:"bytes"`
		AIGER  []byte `json:"aiger"`
	}
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil || jr.ID != j.ID || jr.Digest != digest || !bytes.Equal(jr.AIGER, data) {
		t.Errorf("json result: %+v (err %v), want %d identical bytes", jr, err, len(data))
	}

	// A job still running has no result yet: 409 with a retry hint.
	ack, err := c.Submit(ctx, client.SubmitRequest{Script: "b; rw", AIGER: aigerBytes(t),
		Parallel: ptr(true), Inject: []string{"rewrite/evaluate:1:stall"}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jv, err := c.Get(ctx, ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jv.State == client.StateLeased {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled job never leased: %+v", jv)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, _, err = c.Result(ctx, ack.ID)
	var e *client.Error
	if !errors.As(err, &e) || e.Status != 409 || e.Code != "not_ready" || !e.IsRetryable() {
		t.Errorf("running job's result: %#v, want 409/not_ready with retry hint", err)
	}
	if _, _, err := c.Result(ctx, "j-nonexistent00"); !errors.As(err, &e) || e.Status != 404 {
		t.Errorf("missing job's result: %#v, want 404", err)
	}
}

// TestSSEResume checks the progress stream contract: the full history is
// gap-free and terminal-capped, a resumed subscription with Last-Event-ID
// replays exactly the missed suffix, and supervision events from the engine
// appear between the queue transitions.
func TestSSEResume(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	c := api(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	j := submitAndWait(t, c, client.SubmitRequest{Script: "b; rw", AIGER: aigerBytes(t)})

	stream, err := c.Events(ctx, j.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	var full []client.Event
	for ev := range stream.C {
		full = append(full, ev)
	}
	stream.Close()
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	// pending, leased, at least one supervision "attempt", done.
	if len(full) < 4 {
		t.Fatalf("history too short: %+v", full)
	}
	for i, ev := range full {
		if ev.Seq != i+1 || ev.Job != j.ID {
			t.Fatalf("gap or foreign event at %d: %+v", i, full)
		}
	}
	if full[0].Type != client.StatePending || full[1].Type != client.StateLeased {
		t.Errorf("history starts %q,%q, want pending,leased", full[0].Type, full[1].Type)
	}
	attempts := 0
	for _, ev := range full {
		if ev.Type == "attempt" {
			attempts++
		}
	}
	if attempts == 0 {
		t.Errorf("no supervision events in stream: %+v", full)
	}
	if last := full[len(full)-1]; last.Type != client.StateDone {
		t.Errorf("stream did not end at the terminal event: %+v", last)
	}

	// Resume from midway: exactly the suffix, no gap, no duplicate.
	resumed, err := c.Events(ctx, j.ID, full[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	var suffix []client.Event
	for ev := range resumed.C {
		suffix = append(suffix, ev)
	}
	resumed.Close()
	if len(suffix) != len(full)-2 {
		t.Fatalf("resume after %s: %d events, want %d", full[1].ID, len(suffix), len(full)-2)
	}
	for i, ev := range suffix {
		if ev.ID != full[i+2].ID {
			t.Fatalf("resume mismatch at %d: got %s, want %s", i, ev.ID, full[i+2].ID)
		}
	}

	// An unknown event id from another daemon incarnation replays the full
	// history rather than silently dropping events.
	foreign, err := c.Events(ctx, j.ID, "deadbeef-99")
	if err != nil {
		t.Fatal(err)
	}
	var replayed []client.Event
	for ev := range foreign.C {
		replayed = append(replayed, ev)
	}
	foreign.Close()
	if len(replayed) != len(full) {
		t.Fatalf("foreign-boot resume: %d events, want full %d", len(replayed), len(full))
	}

	// Unknown jobs refuse the subscription outright.
	if _, err := c.Events(ctx, "j-nonexistent00", ""); err == nil {
		t.Error("events for a missing job did not error")
	}
}
